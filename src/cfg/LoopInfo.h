//===- cfg/LoopInfo.h - Natural loops ---------------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection from dominator-identified back edges. Used by
/// tests to cross-check that the region tree's loop regions agree with the
/// CFG, and by the ablation benches to report loop nesting depths.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CFG_LOOPINFO_H
#define RAP_CFG_LOOPINFO_H

#include "cfg/Cfg.h"
#include "cfg/Dominators.h"

#include <vector>

namespace rap {

struct NaturalLoop {
  unsigned Header = 0;
  std::vector<unsigned> Blocks; ///< sorted block ids, including the header
};

class LoopInfo {
public:
  LoopInfo(const Cfg &G, const DominatorTree &Dom);

  const std::vector<NaturalLoop> &loops() const { return Loops; }

  /// Number of loops containing \p Block.
  unsigned loopDepth(unsigned Block) const { return DepthOfBlock[Block]; }

private:
  std::vector<NaturalLoop> Loops;
  std::vector<unsigned> DepthOfBlock;
};

} // namespace rap

#endif // RAP_CFG_LOOPINFO_H
