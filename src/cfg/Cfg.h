//===- cfg/Cfg.h - Control-flow graph ---------------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks over the linearized ILOC stream. Blocks are index ranges
/// [Begin, End) into LinearCode::Instrs; the entry block is block 0.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CFG_CFG_H
#define RAP_CFG_CFG_H

#include "ir/Linearize.h"

#include <string>
#include <vector>

namespace rap {

struct BasicBlock {
  unsigned Begin = 0; ///< first instruction index (inclusive)
  unsigned End = 0;   ///< one past the last instruction index
  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;
};

class Cfg {
public:
  /// Builds the CFG of \p Code. The function must be nonempty.
  explicit Cfg(const LinearCode &Code);

  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }
  const BasicBlock &block(unsigned Id) const { return Blocks[Id]; }

  /// The block containing instruction index \p Pos.
  unsigned blockOf(unsigned Pos) const { return BlockOfInstr[Pos]; }

  /// Block ids whose terminator leaves the function (Ret/Halt or a jump to
  /// the end-of-function position).
  const std::vector<unsigned> &exitBlocks() const { return Exits; }

  std::string str() const;

private:
  std::vector<BasicBlock> Blocks;
  std::vector<unsigned> BlockOfInstr;
  std::vector<unsigned> Exits;
};

} // namespace rap

#endif // RAP_CFG_CFG_H
