//===- cfg/Dominators.cpp - (Post)dominator trees --------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "cfg/Dominators.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace rap;

DominatorTree::DominatorTree(const Cfg &G, bool Post) : Post(Post) {
  unsigned N = G.numBlocks();
  unsigned Total = Post ? N + 1 : N;
  Root = Post ? N : 0;

  // Analysis-direction adjacency. For postdominators the graph is the
  // reverse CFG rooted at a virtual exit node with id N.
  std::vector<std::vector<unsigned>> Succ(Total), Pred(Total);
  for (unsigned B = 0; B != N; ++B) {
    for (unsigned S : G.block(B).Succs) {
      if (Post) {
        Succ[S].push_back(B);
        Pred[B].push_back(S);
      } else {
        Succ[B].push_back(S);
        Pred[S].push_back(B);
      }
    }
  }
  if (Post) {
    for (unsigned E : G.exitBlocks()) {
      Succ[Root].push_back(E);
      Pred[E].push_back(Root);
    }
  }

  // Reverse postorder from the root.
  std::vector<int> PostOrderIdx(Total, -1);
  std::vector<unsigned> Order; // postorder
  {
    std::vector<char> Visited(Total, 0);
    // Iterative DFS with explicit stack of (node, next child index).
    std::vector<std::pair<unsigned, size_t>> Stack;
    Stack.push_back({Root, 0});
    Visited[Root] = 1;
    while (!Stack.empty()) {
      auto &[Node, Child] = Stack.back();
      if (Child < Succ[Node].size()) {
        unsigned Next = Succ[Node][Child++];
        if (!Visited[Next]) {
          Visited[Next] = 1;
          Stack.push_back({Next, 0});
        }
        continue;
      }
      PostOrderIdx[Node] = static_cast<int>(Order.size());
      Order.push_back(Node);
      Stack.pop_back();
    }
  }

  std::vector<int> IdomAll(Total, -1);
  IdomAll[Root] = static_cast<int>(Root); // temporarily self, per CHK

  auto Intersect = [&](int A, int B) {
    while (A != B) {
      while (PostOrderIdx[A] < PostOrderIdx[B])
        A = IdomAll[A];
      while (PostOrderIdx[B] < PostOrderIdx[A])
        B = IdomAll[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Reverse postorder = reverse of Order, skipping the root.
    for (auto It = Order.rbegin(), E = Order.rend(); It != E; ++It) {
      unsigned B = *It;
      if (B == Root)
        continue;
      int NewIdom = -1;
      for (unsigned P : Pred[B]) {
        if (PostOrderIdx[P] < 0 || IdomAll[P] < 0)
          continue; // unreachable or not yet processed
        NewIdom = NewIdom < 0 ? static_cast<int>(P)
                              : Intersect(NewIdom, static_cast<int>(P));
      }
      if (NewIdom >= 0 && IdomAll[B] != NewIdom) {
        IdomAll[B] = NewIdom;
        Changed = true;
      }
    }
  }
  IdomAll[Root] = -1;

  Idom.assign(N, -1);
  for (unsigned B = 0; B != N; ++B)
    Idom[B] = IdomAll[B];

  // Depths for dominates() queries; the virtual root has depth 0.
  Depth.assign(N, -1);
  std::function<int(unsigned)> DepthOf = [&](unsigned B) -> int {
    if (Depth[B] >= 0)
      return Depth[B];
    int Parent = Idom[B];
    if (Parent < 0)
      return Depth[B] = (B == Root) ? 0 : (PostOrderIdx[B] >= 0 ? 1 : -1);
    if (static_cast<unsigned>(Parent) == Root)
      return Depth[B] = 1;
    int PD = DepthOf(static_cast<unsigned>(Parent));
    return Depth[B] = PD < 0 ? -1 : PD + 1;
  };
  for (unsigned B = 0; B != N; ++B)
    if (PostOrderIdx[B] >= 0)
      DepthOf(B);
}

bool DominatorTree::dominates(unsigned A, unsigned B) const {
  unsigned N = static_cast<unsigned>(Idom.size());
  auto DepthOf = [&](unsigned Node) {
    return Node == Root ? 0 : Depth[Node];
  };
  if (A == B)
    return true;
  if (A == Root)
    return B == Root || (B < N && Depth[B] >= 0);
  if (B == Root)
    return false;
  assert(A < N && B < N && "block id out of range");
  if (Depth[A] < 0 || Depth[B] < 0)
    return false;
  unsigned Cur = B;
  while (DepthOf(Cur) > DepthOf(A)) {
    int Next = Cur == Root ? -1 : Idom[Cur];
    if (Next < 0)
      return false;
    Cur = static_cast<unsigned>(Next);
  }
  return Cur == A;
}
