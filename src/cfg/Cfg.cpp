//===- cfg/Cfg.cpp - Control-flow graph -----------------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace rap;

Cfg::Cfg(const LinearCode &Code) {
  unsigned N = static_cast<unsigned>(Code.Instrs.size());
  // An empty function (a reduced or degenerate input can lower to one) gets
  // an empty graph; every consumer iterates over blocks and sees none.
  // Found by rapfuzz: this used to be an assert, i.e. a process abort on a
  // compilable input.
  if (N == 0)
    return;

  // Compute leaders: entry, branch targets, and instructions after branches.
  std::vector<char> IsLeader(N, 0);
  IsLeader[0] = 1;
  for (unsigned P : Code.LabelPos)
    if (P < N)
      IsLeader[P] = 1;
  for (unsigned I = 0; I != N; ++I)
    if (isBranchOpcode(Code.Instrs[I]->Op) && I + 1 < N)
      IsLeader[I + 1] = 1;

  // Carve blocks.
  std::vector<unsigned> Starts;
  for (unsigned I = 0; I != N; ++I)
    if (IsLeader[I])
      Starts.push_back(I);
  BlockOfInstr.assign(N, 0);
  for (size_t I = 0; I != Starts.size(); ++I) {
    BasicBlock B;
    B.Begin = Starts[I];
    B.End = I + 1 < Starts.size() ? Starts[I + 1] : N;
    for (unsigned P = B.Begin; P != B.End; ++P)
      BlockOfInstr[P] = static_cast<unsigned>(Blocks.size());
    Blocks.push_back(B);
  }

  // Wire edges.
  auto TargetBlock = [&](int Label) -> int {
    unsigned P = Code.LabelPos[Label];
    if (P >= N)
      return -1; // label at end of function: falls out
    return static_cast<int>(BlockOfInstr[P]);
  };

  for (unsigned BId = 0; BId != Blocks.size(); ++BId) {
    BasicBlock &B = Blocks[BId];
    const Instr *Last = Code.Instrs[B.End - 1];
    bool IsExit = false;
    switch (Last->Op) {
    case Opcode::Jmp: {
      int T = TargetBlock(Last->Label0);
      if (T >= 0)
        B.Succs.push_back(static_cast<unsigned>(T));
      else
        IsExit = true;
      break;
    }
    case Opcode::Cbr: {
      int T = TargetBlock(Last->Label0);
      int FT = TargetBlock(Last->Label1);
      if (T >= 0)
        B.Succs.push_back(static_cast<unsigned>(T));
      if (FT >= 0 && FT != T)
        B.Succs.push_back(static_cast<unsigned>(FT));
      if (T < 0 || FT < 0)
        IsExit = true;
      break;
    }
    case Opcode::Ret:
    case Opcode::Halt:
      IsExit = true;
      break;
    default:
      if (B.End < N)
        B.Succs.push_back(BlockOfInstr[B.End]);
      else
        IsExit = true;
      break;
    }
    if (IsExit)
      Exits.push_back(BId);
  }

  for (unsigned BId = 0; BId != Blocks.size(); ++BId)
    for (unsigned S : Blocks[BId].Succs)
      Blocks[S].Preds.push_back(BId);
}

std::string Cfg::str() const {
  std::ostringstream OS;
  for (unsigned BId = 0; BId != Blocks.size(); ++BId) {
    const BasicBlock &B = Blocks[BId];
    OS << "B" << BId << " [" << B.Begin << "," << B.End << ") ->";
    for (unsigned S : B.Succs)
      OS << " B" << S;
    OS << "\n";
  }
  return OS.str();
}
