//===- cfg/Liveness.cpp - Per-instruction liveness --------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "cfg/Liveness.h"

#include "support/Env.h"

#include <cassert>

using namespace rap;

namespace {
bool verifyLivenessEnv() {
  static const bool V = env::flag("RAP_VERIFY_LIVENESS");
  return V;
}
} // namespace

void Liveness::computeBlockSets(const LinearCode &Code, const Cfg &G,
                                unsigned NumVRegs) {
  unsigned NumBlocks = G.numBlocks();
  Use.assign(NumBlocks, BitVector(NumVRegs));
  Def.assign(NumBlocks, BitVector(NumVRegs));
  Succs.resize(NumBlocks);
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = G.block(B);
    for (unsigned P = BB.Begin; P != BB.End; ++P) {
      const Instr *I = Code.Instrs[P];
      for (Reg R : I->Src)
        if (!Def[B].test(R))
          Use[B].set(R);
      if (I->hasDef())
        Def[B].set(I->Dst);
    }
    Succs[B] = BB.Succs;
  }
}

void Liveness::solve(const Cfg &G) {
  unsigned NumBlocks = G.numBlocks();
  BitVector NewOut(Use.empty() ? 0 : Use[0].size());
  BitVector NewIn(NewOut.size());
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned BI = NumBlocks; BI-- > 0;) {
      NewOut.clear();
      for (unsigned S : G.block(BI).Succs)
        NewOut.unionWith(In[S]);
      NewIn = NewOut;
      NewIn.subtract(Def[BI]);
      NewIn.unionWith(Use[BI]);
      if (NewOut != Out[BI] || NewIn != In[BI]) {
        Out[BI] = NewOut;
        In[BI] = NewIn;
        Changed = true;
      }
    }
  }
}

void Liveness::refine(const LinearCode &Code, const Cfg &G,
                      unsigned NumVRegs) {
  unsigned N = static_cast<unsigned>(Code.Instrs.size());
  // Recycle per-position sets scavenged from a consumed previous solution
  // (see the incremental constructor): vector::assign would reallocate
  // every element once the position count grows past the old capacity, so
  // reshape the survivors in place and only construct the tail.
  auto Reshape = [NumVRegs](std::vector<BitVector> &V, unsigned Count) {
    if (V.size() > Count)
      V.resize(Count);
    for (BitVector &B : V)
      B.resetUniverse(NumVRegs);
    V.reserve(Count);
    while (V.size() < Count)
      V.emplace_back(NumVRegs);
  };
  Reshape(Before, N + 1);
  Reshape(After, N);
  BitVector Live;
  for (unsigned B = 0, E = G.numBlocks(); B != E; ++B) {
    const BasicBlock &BB = G.block(B);
    Live = Out[B];
    for (unsigned P = BB.End; P-- > BB.Begin;) {
      const Instr *I = Code.Instrs[P];
      After[P] = Live;
      if (I->hasDef())
        Live.reset(I->Dst);
      for (Reg R : I->Src)
        Live.set(R);
      Before[P] = Live;
    }
    assert(Live == In[B] && "per-instruction refinement disagrees with "
                            "block-level dataflow");
  }
}

bool Liveness::sameShape(const Liveness &Prev, const Cfg &G) const {
  if (Prev.Succs.size() != G.numBlocks())
    return false;
  for (unsigned B = 0, E = G.numBlocks(); B != E; ++B)
    if (Prev.Succs[B] != G.block(B).Succs)
      return false;
  return true;
}

Liveness::Liveness(const LinearCode &Code, const Cfg &G, unsigned NumVRegs) {
  computeBlockSets(Code, G, NumVRegs);
  In.assign(G.numBlocks(), BitVector(NumVRegs));
  Out.assign(G.numBlocks(), BitVector(NumVRegs));
  solve(G);
  refine(Code, G, NumVRegs);
}

Liveness::Liveness(const LinearCode &Code, const Cfg &G, unsigned NumVRegs,
                   Liveness *Prev) {
  computeBlockSets(Code, G, NumVRegs);
  unsigned NumBlocks = G.numBlocks();
  if (Prev && sameShape(*Prev, G)) {
    // Liveness is independent per register bit: a register whose use/def
    // bits are identical in every block (over unchanged CFG edges) has the
    // same equations as before, so its old In/Out bits are already the
    // least fixpoint. Only registers with changed equations — including
    // every register created since Prev, whose old bits are zero — restart
    // from bottom; the fixpoint then re-converges in O(changed) work.
    BitVector ChangedRegs(NumVRegs);
    for (unsigned B = 0; B != NumBlocks; ++B) {
      ChangedRegs.unionWithXorOf(Use[B], Prev->Use[B]);
      ChangedRegs.unionWithXorOf(Def[B], Prev->Def[B]);
    }
    In = std::move(Prev->In);
    Out = std::move(Prev->Out);
    for (unsigned B = 0; B != NumBlocks; ++B) {
      In[B].growTo(NumVRegs);
      Out[B].growTo(NumVRegs);
      In[B].subtract(ChangedRegs);
      Out[B].subtract(ChangedRegs);
    }
    WarmStarted = true;
  } else {
    In.assign(NumBlocks, BitVector(NumVRegs));
    Out.assign(NumBlocks, BitVector(NumVRegs));
  }
  if (Prev) {
    // Scavenge the consumed solution's per-position buffers; refine()'s
    // assign() then mostly reuses their heap storage instead of
    // reallocating ~2 bitsets per instruction on every spill round.
    Before = std::move(Prev->Before);
    After = std::move(Prev->After);
  }
  solve(G);
  refine(Code, G, NumVRegs);

  if (WarmStarted && verifyLivenessEnv()) {
    Liveness Cold(Code, G, NumVRegs);
    if (!(*this == Cold)) {
      assert(false && "incremental liveness diverged from cold recompute");
      std::abort(); // keep the check meaningful even if NDEBUG sneaks in
    }
  }
}
