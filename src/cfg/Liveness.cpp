//===- cfg/Liveness.cpp - Per-instruction liveness --------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "cfg/Liveness.h"

#include <cassert>

using namespace rap;

Liveness::Liveness(const LinearCode &Code, const Cfg &G, unsigned NumVRegs) {
  unsigned N = static_cast<unsigned>(Code.Instrs.size());
  unsigned NumBlocks = G.numBlocks();

  // Block-level use (upward exposed) and def sets.
  std::vector<BitVector> Use(NumBlocks, BitVector(NumVRegs));
  std::vector<BitVector> Def(NumBlocks, BitVector(NumVRegs));
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = G.block(B);
    for (unsigned P = BB.Begin; P != BB.End; ++P) {
      const Instr *I = Code.Instrs[P];
      for (Reg R : I->Src)
        if (!Def[B].test(R))
          Use[B].set(R);
      if (I->hasDef())
        Def[B].set(I->Dst);
    }
  }

  // Backward fixpoint over blocks.
  std::vector<BitVector> In(NumBlocks, BitVector(NumVRegs));
  std::vector<BitVector> Out(NumBlocks, BitVector(NumVRegs));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned BI = NumBlocks; BI-- > 0;) {
      BitVector NewOut(NumVRegs);
      for (unsigned S : G.block(BI).Succs)
        NewOut.unionWith(In[S]);
      BitVector NewIn = NewOut;
      NewIn.subtract(Def[BI]);
      NewIn.unionWith(Use[BI]);
      if (NewOut != Out[BI] || NewIn != In[BI]) {
        Out[BI] = std::move(NewOut);
        In[BI] = std::move(NewIn);
        Changed = true;
      }
    }
  }

  // Refine to instruction positions.
  Before.assign(N + 1, BitVector(NumVRegs));
  After.assign(N, BitVector(NumVRegs));
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = G.block(B);
    BitVector Live = Out[B];
    for (unsigned P = BB.End; P-- > BB.Begin;) {
      const Instr *I = Code.Instrs[P];
      After[P] = Live;
      if (I->hasDef())
        Live.reset(I->Dst);
      for (Reg R : I->Src)
        Live.set(R);
      Before[P] = Live;
    }
    assert(Live == In[B] && "per-instruction refinement disagrees with "
                            "block-level dataflow");
  }
}
