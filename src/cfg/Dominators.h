//===- cfg/Dominators.h - (Post)dominator trees -----------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative dominator and postdominator computation (Cooper-Harvey-Kennedy
/// style "engineered" algorithm over reverse postorder). Postdominators use
/// a virtual exit node joining all CFG exit blocks, which is required by the
/// Ferrante-Ottenstein-Warren control-dependence construction in src/pdg.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CFG_DOMINATORS_H
#define RAP_CFG_DOMINATORS_H

#include "cfg/Cfg.h"

#include <vector>

namespace rap {

/// Immediate-dominator tree over CFG blocks.
class DominatorTree {
public:
  /// When \p Post is true, computes postdominators: the tree is rooted at a
  /// virtual exit whose id is numBlocks() (virtualRoot()).
  DominatorTree(const Cfg &G, bool Post);

  /// Immediate dominator of \p Block, or -1 for the root (and for blocks
  /// unreachable in the direction of the analysis).
  int idom(unsigned Block) const { return Idom[Block]; }

  bool isPostDom() const { return Post; }

  /// Id of the virtual root: entry block 0 for dominators, the virtual exit
  /// node for postdominators.
  unsigned root() const { return Root; }

  /// True if \p A dominates (or postdominates) \p B; reflexive.
  bool dominates(unsigned A, unsigned B) const;

private:
  bool Post;
  unsigned Root;
  std::vector<int> Idom;  ///< indexed by block id; Root's entry is -1
  std::vector<int> Depth; ///< tree depth, -1 if unreachable
};

} // namespace rap

#endif // RAP_CFG_DOMINATORS_H
