//===- cfg/LoopInfo.cpp - Natural loops ------------------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "cfg/LoopInfo.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

using namespace rap;

LoopInfo::LoopInfo(const Cfg &G, const DominatorTree &Dom) {
  DepthOfBlock.assign(G.numBlocks(), 0);

  // Collect back edges (Tail -> Header where Header dominates Tail) and
  // merge the bodies of back edges sharing a header into one natural loop.
  std::map<unsigned, std::set<unsigned>> BodyOfHeader;
  for (unsigned B = 0; B != G.numBlocks(); ++B) {
    for (unsigned S : G.block(B).Succs) {
      if (!Dom.dominates(S, B))
        continue;
      // Natural loop of back edge B -> S: S plus everything that reaches B
      // without passing through S.
      std::set<unsigned> &Body = BodyOfHeader[S];
      Body.insert(S);
      std::vector<unsigned> Work;
      if (!Body.count(B)) {
        Body.insert(B);
        Work.push_back(B);
      }
      while (!Work.empty()) {
        unsigned Cur = Work.back();
        Work.pop_back();
        for (unsigned P : G.block(Cur).Preds) {
          if (Body.insert(P).second)
            Work.push_back(P);
        }
      }
    }
  }

  for (auto &[Header, Body] : BodyOfHeader) {
    NaturalLoop L;
    L.Header = Header;
    L.Blocks.assign(Body.begin(), Body.end());
    for (unsigned B : L.Blocks)
      ++DepthOfBlock[B];
    Loops.push_back(std::move(L));
  }
}
