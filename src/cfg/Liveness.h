//===- cfg/Liveness.h - Per-instruction liveness ----------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward liveness dataflow over virtual registers, refined to every
/// instruction position. This is the single liveness oracle shared by both
/// allocators: interference construction, the region-level live-in/live-out
/// queries of RAP's calc_spill_costs (paper Figure 5), and spill-code
/// placement all read from here.
///
/// Because structured regions are single-entry and fall through to their
/// linear successor, LiveIn(region) = liveBefore(LinBegin) and
/// LiveOut(region) = liveBefore(LinEnd).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CFG_LIVENESS_H
#define RAP_CFG_LIVENESS_H

#include "cfg/Cfg.h"
#include "ir/RegionTree.h"
#include "support/BitVector.h"

#include <vector>

namespace rap {

class Liveness {
public:
  /// Computes liveness for \p Code (a linearization of a function with
  /// \p NumVRegs virtual registers) over \p G.
  Liveness(const LinearCode &Code, const Cfg &G, unsigned NumVRegs);

  /// Registers live immediately before instruction position \p Pos. The
  /// position may equal the instruction count (function end: empty set).
  const BitVector &liveBefore(unsigned Pos) const { return Before[Pos]; }

  /// Registers live immediately after instruction position \p Pos. For a
  /// block terminator this is the union of the successors' live-ins, not the
  /// live-before of the next linear position.
  const BitVector &liveAfter(unsigned Pos) const { return After[Pos]; }

  /// Region-level queries (see file comment).
  const BitVector &liveInOf(const PdgNode &Region) const {
    return Before[Region.LinBegin];
  }
  const BitVector &liveOutOf(const PdgNode &Region) const {
    return Before[Region.LinEnd];
  }

private:
  /// Before[i] = live before instruction i; Before[N] = empty.
  std::vector<BitVector> Before;
  /// After[i] = live after instruction i.
  std::vector<BitVector> After;
};

} // namespace rap

#endif // RAP_CFG_LIVENESS_H
