//===- cfg/Liveness.h - Per-instruction liveness ----------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward liveness dataflow over virtual registers, refined to every
/// instruction position. This is the single liveness oracle shared by both
/// allocators: interference construction, the region-level live-in/live-out
/// queries of RAP's calc_spill_costs (paper Figure 5), and spill-code
/// placement all read from here.
///
/// Because structured regions are single-entry and fall through to their
/// linear successor, LiveIn(region) = liveBefore(LinBegin) and
/// LiveOut(region) = liveBefore(LinEnd).
///
/// Liveness is computed once per function and *reused* across code edits:
/// the incremental constructor re-seeds the block-level fixpoint from a
/// previous solution, resetting only the registers whose block use/def sets
/// changed (liveness is bitwise-independent per register, so untouched
/// registers are already at their least fixpoint). Spill insertion edits
/// straight-line code only, so the block structure — and therefore the old
/// solution's shape — survives; when it does not (block count or branch
/// structure changed), the constructor falls back to a cold solve. Setting
/// RAP_VERIFY_LIVENESS in the environment cross-checks every incremental
/// result against a cold recompute.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CFG_LIVENESS_H
#define RAP_CFG_LIVENESS_H

#include "cfg/Cfg.h"
#include "ir/RegionTree.h"
#include "support/BitVector.h"

#include <vector>

namespace rap {

class Liveness {
public:
  /// Computes liveness for \p Code (a linearization of a function with
  /// \p NumVRegs virtual registers) over \p G from scratch.
  Liveness(const LinearCode &Code, const Cfg &G, unsigned NumVRegs);

  /// Computes liveness for edited code, warm-starting the block-level
  /// fixpoint from \p Prev (a solution for the same function before the
  /// edit). Produces exactly the cold-computed solution; \p Prev may be
  /// null, and a structural change falls back to the cold path. \p Prev is
  /// consumed: its buffers are scavenged into the new solution (callers
  /// discard the old CodeInfo right after rebuilding, so the storage would
  /// be freed anyway).
  Liveness(const LinearCode &Code, const Cfg &G, unsigned NumVRegs,
           Liveness *Prev);

  /// Registers live immediately before instruction position \p Pos. The
  /// position may equal the instruction count (function end: empty set).
  const BitVector &liveBefore(unsigned Pos) const { return Before[Pos]; }

  /// Registers live immediately after instruction position \p Pos. For a
  /// block terminator this is the union of the successors' live-ins, not the
  /// live-before of the next linear position.
  const BitVector &liveAfter(unsigned Pos) const { return After[Pos]; }

  /// Region-level queries (see file comment).
  const BitVector &liveInOf(const PdgNode &Region) const {
    return Before[Region.LinBegin];
  }
  const BitVector &liveOutOf(const PdgNode &Region) const {
    return Before[Region.LinEnd];
  }

  /// True when the last construction reused a previous block solution
  /// instead of solving from scratch (exposed for tests).
  bool reusedPreviousSolution() const { return WarmStarted; }

  bool operator==(const Liveness &O) const {
    return Before == O.Before && After == O.After;
  }

private:
  void computeBlockSets(const LinearCode &Code, const Cfg &G,
                        unsigned NumVRegs);
  /// Runs the backward fixpoint over In/Out from their current contents.
  void solve(const Cfg &G);
  void refine(const LinearCode &Code, const Cfg &G, unsigned NumVRegs);
  /// True when \p Prev's solution has the same block structure and may seed
  /// this one.
  bool sameShape(const Liveness &Prev, const Cfg &G) const;

  /// Before[i] = live before instruction i; Before[N] = empty.
  std::vector<BitVector> Before;
  /// After[i] = live after instruction i.
  std::vector<BitVector> After;

  /// Block-level sets, kept after construction so the next (incremental)
  /// computation can diff and re-seed from them.
  std::vector<BitVector> Use, Def, In, Out;
  /// Successor lists snapshot: a warm start additionally requires identical
  /// edges, not just an identical block count.
  std::vector<std::vector<unsigned>> Succs;
  bool WarmStarted = false;
};

} // namespace rap

#endif // RAP_CFG_LIVENESS_H
