//===- interp/Interpreter.cpp - ILOC interpreter ----------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// This file holds the interpreter's shell (construction, run setup, trap
// rendering) and the reference switch engine. The reference engine is the
// behavioral specification: it executes the linearized stream one
// instruction at a time with a fuel check before each, and every other
// execution strategy must be observationally equal to it. It is written for
// clarity over speed — the direct-threaded engine (Threaded.cpp) is the fast
// path, and hands runs to this engine when the fuel budget nears exhaustion.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "interp/Engine.h"
#include "interp/WrapMath.h"
#include "support/Env.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <sstream>

using namespace rap;
using namespace rap::interp;

const char *rap::trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None:
    return "none";
  case TrapKind::DivideByZero:
    return "div-by-zero";
  case TrapKind::OutOfBounds:
    return "out-of-bounds";
  case TrapKind::FuelExhausted:
    return "fuel-exhausted";
  case TrapKind::StackOverflow:
    return "stack-overflow";
  case TrapKind::NoEntry:
    return "no-entry";
  case TrapKind::BadCall:
    return "bad-call";
  }
  return "unknown";
}

std::string Trap::str() const {
  std::string Out = trapKindName(Kind);
  if (!Function.empty())
    Out += " @" + Function + "+" + std::to_string(PC);
  if (!Detail.empty())
    Out += ": " + Detail;
  return Out;
}

DispatchKind rap::defaultInterpDispatch() {
  const std::optional<std::string> &V = env::get("RAP_INTERP");
  if (V && *V == "switch")
    return DispatchKind::Switch;
  return DispatchKind::Threaded;
}

Interpreter::Interpreter(const IlocProgram &Prog, InterpOptions Opts)
    : Prog(Prog), Dispatch(Opts.Dispatch) {
  Funcs.reserve(Prog.functions().size());
  for (const auto &F : Prog.functions()) {
    CachedFunc C;
    C.F = F.get();
    C.Code = linearize(*F);
    C.RegCount = F->isAllocated() ? F->numPhysRegs() : F->numVRegs();
    C.SpillCount = static_cast<uint32_t>(F->numSpillSlots());
    if (Dispatch == DispatchKind::Threaded)
      C.Dec = decodeFunction(Prog, *F, C.Code, DecodeArena);
    Funcs.push_back(std::move(C));
  }
  GlobalEnd.assign(static_cast<size_t>(Prog.globalMemorySize()), -1);
  for (const GlobalVar &G : Prog.globals())
    GlobalEnd[G.Addr] = G.Addr + G.Size;
}

Interpreter::~Interpreter() = default;

uint64_t Interpreter::fusedCmpCbr() const {
  uint64_t N = 0;
  for (const CachedFunc &C : Funcs)
    N += C.Dec.FusedCmpCbr;
  return N;
}

uint64_t Interpreter::fusedLoadIOp() const {
  uint64_t N = 0;
  for (const CachedFunc &C : Funcs)
    N += C.Dec.FusedLoadIOp;
  return N;
}

uint64_t Interpreter::fusedSpillTriples() const {
  uint64_t N = 0;
  for (const CachedFunc &C : Funcs)
    N += C.Dec.FusedSpillTriple;
  return N;
}

uint64_t Interpreter::fusedPairs() const {
  uint64_t N = 0;
  for (const CachedFunc &C : Funcs)
    N += C.Dec.FusedPair;
  return N;
}

uint64_t Interpreter::decodedOpCount(const char *Name) const {
  uint64_t N = 0;
  for (const CachedFunc &C : Funcs)
    for (uint32_t I = 0; I != C.Dec.NumOps; ++I)
      if (std::strcmp(dopName(C.Dec.Ops[I].Op), Name) == 0)
        ++N;
  return N;
}

RunResult Interpreter::run(const std::string &Entry, uint64_t Fuel,
                           bool CollectPerFunction) {
  RunResult Setup;
  const IlocFunction *EntryF = Prog.findFunction(Entry);
  if (!EntryF) {
    Setup.Error = "entry function '" + Entry + "' not found";
    Setup.TrapInfo = {TrapKind::NoEntry, 0, Entry, Setup.Error};
    return Setup;
  }
  int EntryId = Prog.functionId(EntryF);
  if (EntryF->numParams() != 0) {
    Setup.Error = "entry function '" + Entry + "' must take no parameters";
    Setup.TrapInfo = {TrapKind::NoEntry, 0, Entry, Setup.Error};
    return Setup;
  }

  Glob.assign(static_cast<size_t>(Prog.globalMemorySize()),
              RtValue::makeInt(0));

  Engine E{Funcs, Glob, GlobalEnd, Fuel, CollectPerFunction,
           {}, {}, 0, {}, {}};
  if (CollectPerFunction)
    E.PerF.assign(Funcs.size(), ExecStats());
  E.pushFrame(EntryId, NoReg);
  E.Res.Stats.MaxCallDepth = 1;

  if (Dispatch == DispatchKind::Threaded)
    E.runThreaded();
  else
    E.runSwitch();
  return std::move(E.Res);
}

//===----------------------------------------------------------------------===//
// The reference switch engine.
//===----------------------------------------------------------------------===//

void Engine::runSwitch() {
  ExecStats &S = Res.Stats;

  auto Fail = [&](TrapKind Kind, const Instr *I, const std::string &Msg) {
    std::ostringstream OS;
    OS << Msg << " (at '" << I->str() << "')";
    Res.Ok = false;
    Res.Error = OS.str();
    Res.TrapInfo.Kind = Kind;
    Res.TrapInfo.Detail = Msg;
    if (!Stack.empty()) {
      Res.TrapInfo.PC = Stack.back().PC;
      Res.TrapInfo.Function = Funcs[Stack.back().FuncId].F->name();
    }
  };

  // Performs a return: pops the frame and writes the value into the caller.
  auto DoReturn = [&](RtValue V) {
    Frame Popped = Stack.back();
    Stack.pop_back();
    CellTop = Popped.Base;
    if (!Stack.empty() && Popped.ReturnDst != NoReg)
      Cells[Stack.back().Base + Popped.ReturnDst] = V;
    return V;
  };

  while (!Stack.empty()) {
    Frame &Fr = Stack.back();
    const CachedFunc &C = Funcs[Fr.FuncId];
    const auto &Instrs = C.Code.Instrs;

    if (Fr.PC >= Instrs.size()) {
      // Fell off the end: implicit void return.
      Res.ReturnValue = DoReturn(RtValue::makeInt(0));
      continue;
    }
    if (S.Cycles >= Fuel) {
      Res.Error = "fuel exhausted: possible infinite loop";
      Res.TrapInfo = {TrapKind::FuelExhausted, Fr.PC, C.F->name(),
                      "executed " + std::to_string(S.Cycles) +
                          " instructions without halting"};
      return;
    }

    const Instr *I = Instrs[Fr.PC];
    ++S.Cycles;
    if (isLoadOpcode(I->Op)) {
      ++S.Loads;
      S.SpillLoads += I->Op == Opcode::LdSpill;
    }
    if (isStoreOpcode(I->Op)) {
      ++S.Stores;
      S.SpillStores += I->Op == Opcode::StSpill;
    }
    if (I->Op == Opcode::Mv)
      ++S.Copies;
    if (CollectPerFunction) {
      ExecStats &P = PerF[Fr.FuncId];
      ++P.Cycles;
      if (isLoadOpcode(I->Op)) {
        ++P.Loads;
        P.SpillLoads += I->Op == Opcode::LdSpill;
      }
      if (isStoreOpcode(I->Op)) {
        ++P.Stores;
        P.SpillStores += I->Op == Opcode::StSpill;
      }
      P.Copies += I->Op == Opcode::Mv;
      P.Calls += I->Op == Opcode::Call;
    }

    // The frame's register window: registers first, then spill slots.
    RtValue *Regs = Cells.data() + Fr.Base;
    RtValue *Spill = Regs + C.RegCount;
    auto R = [&](unsigned Idx) -> RtValue & { return Regs[I->Src[Idx]]; };
    unsigned NextPC = Fr.PC + 1;

    switch (I->Op) {
    case Opcode::LoadI:
    case Opcode::LoadF:
      Regs[I->Dst] = I->Imm;
      break;
    case Opcode::Mv:
      Regs[I->Dst] = R(0);
      break;
    case Opcode::Add:
      Regs[I->Dst] = RtValue::makeInt(wrapAdd(R(0).asInt(), R(1).asInt()));
      break;
    case Opcode::Sub:
      Regs[I->Dst] = RtValue::makeInt(wrapSub(R(0).asInt(), R(1).asInt()));
      break;
    case Opcode::Mul:
      Regs[I->Dst] = RtValue::makeInt(wrapMul(R(0).asInt(), R(1).asInt()));
      break;
    case Opcode::Div:
      if (R(1).asInt() == 0)
        return Fail(TrapKind::DivideByZero, I, "integer division by zero");
      Regs[I->Dst] = RtValue::makeInt(wrapDiv(R(0).asInt(), R(1).asInt()));
      break;
    case Opcode::Mod:
      if (R(1).asInt() == 0)
        return Fail(TrapKind::DivideByZero, I, "integer modulo by zero");
      Regs[I->Dst] = RtValue::makeInt(wrapMod(R(0).asInt(), R(1).asInt()));
      break;
    case Opcode::Neg:
      Regs[I->Dst] = RtValue::makeInt(wrapSub(0, R(0).asInt()));
      break;
    case Opcode::And:
      Regs[I->Dst] =
          RtValue::makeInt((R(0).asInt() != 0 && R(1).asInt() != 0) ? 1 : 0);
      break;
    case Opcode::Or:
      Regs[I->Dst] =
          RtValue::makeInt((R(0).asInt() != 0 || R(1).asInt() != 0) ? 1 : 0);
      break;
    case Opcode::Not:
      Regs[I->Dst] = RtValue::makeInt(R(0).asInt() == 0 ? 1 : 0);
      break;
    case Opcode::FAdd:
      Regs[I->Dst] = RtValue::makeFloat(R(0).asFloat() + R(1).asFloat());
      break;
    case Opcode::FSub:
      Regs[I->Dst] = RtValue::makeFloat(R(0).asFloat() - R(1).asFloat());
      break;
    case Opcode::FMul:
      Regs[I->Dst] = RtValue::makeFloat(R(0).asFloat() * R(1).asFloat());
      break;
    case Opcode::FDiv:
      if (R(1).asFloat() == 0.0)
        return Fail(TrapKind::DivideByZero, I,
                    "floating-point division by zero");
      Regs[I->Dst] = RtValue::makeFloat(R(0).asFloat() / R(1).asFloat());
      break;
    case Opcode::FNeg:
      Regs[I->Dst] = RtValue::makeFloat(-R(0).asFloat());
      break;
    case Opcode::CmpEQ:
      Regs[I->Dst] = RtValue::makeInt(R(0) == R(1) ? 1 : 0);
      break;
    case Opcode::CmpNE:
      Regs[I->Dst] = RtValue::makeInt(R(0) != R(1) ? 1 : 0);
      break;
    case Opcode::CmpLT:
      Regs[I->Dst] =
          RtValue::makeInt(R(0).asNumber() < R(1).asNumber() ? 1 : 0);
      break;
    case Opcode::CmpLE:
      Regs[I->Dst] =
          RtValue::makeInt(R(0).asNumber() <= R(1).asNumber() ? 1 : 0);
      break;
    case Opcode::CmpGT:
      Regs[I->Dst] =
          RtValue::makeInt(R(0).asNumber() > R(1).asNumber() ? 1 : 0);
      break;
    case Opcode::CmpGE:
      Regs[I->Dst] =
          RtValue::makeInt(R(0).asNumber() >= R(1).asNumber() ? 1 : 0);
      break;
    case Opcode::I2F:
      Regs[I->Dst] = RtValue::makeFloat(static_cast<double>(R(0).asInt()));
      break;
    case Opcode::F2I:
      Regs[I->Dst] = RtValue::makeInt(static_cast<int64_t>(R(0).asFloat()));
      break;
    case Opcode::LdSpill:
      Regs[I->Dst] = Spill[I->Slot];
      break;
    case Opcode::StSpill:
      Spill[I->Slot] = R(0);
      break;
    case Opcode::LdGlob:
      Regs[I->Dst] = Glob[I->Addr];
      break;
    case Opcode::StGlob:
      Glob[I->Addr] = R(0);
      break;
    case Opcode::LdIdx: {
      int64_t Off = R(0).asInt();
      int End = GlobalEnd[I->Addr];
      if (Off < 0 || End < 0 || I->Addr + Off >= End)
        return Fail(TrapKind::OutOfBounds, I,
                    "array load out of bounds (index " + std::to_string(Off) +
                        ")");
      Regs[I->Dst] = Glob[I->Addr + Off];
      break;
    }
    case Opcode::StIdx: {
      int64_t Off = R(0).asInt();
      int End = GlobalEnd[I->Addr];
      if (Off < 0 || End < 0 || I->Addr + Off >= End)
        return Fail(TrapKind::OutOfBounds, I,
                    "array store out of bounds (index " + std::to_string(Off) +
                        ")");
      Glob[I->Addr + Off] = R(1);
      break;
    }
    case Opcode::Jmp:
      NextPC = C.Code.LabelPos[I->Label0];
      break;
    case Opcode::Cbr:
      NextPC = R(0).asInt() != 0 ? C.Code.LabelPos[I->Label0]
                                 : C.Code.LabelPos[I->Label1];
      break;
    case Opcode::Call: {
      ++S.Calls;
      if (Stack.size() >= MaxCallStack)
        return Fail(TrapKind::StackOverflow, I, "call stack overflow");
      const IlocFunction *Callee = Funcs[I->Callee].F;
      if (I->Src.size() != Callee->numParams())
        return Fail(TrapKind::BadCall, I,
                    "call passes " + std::to_string(I->Src.size()) +
                        " arguments to '" + Callee->name() + "' expecting " +
                        std::to_string(Callee->numParams()));
      Fr.PC = NextPC; // resume point after return
      pushFrame(I->Callee, I->Dst); // invalidates Fr/Regs
      Frame &Caller = Stack[Stack.size() - 2];
      RtValue *CallerRegs = Cells.data() + Caller.Base;
      RtValue *CalleeRegs = Cells.data() + Stack.back().Base;
      for (unsigned A = 0; A != I->Src.size(); ++A) {
        // NoReg marks a parameter the callee never reads; writing it anyway
        // would clobber whichever live register the allocator reused.
        Reg PR = Callee->paramReg(A);
        if (PR != NoReg)
          CalleeRegs[PR] = CallerRegs[I->Src[A]];
      }
      S.MaxCallDepth = std::max<uint64_t>(S.MaxCallDepth, Stack.size());
      continue;
    }
    case Opcode::Ret: {
      RtValue V = I->Src.empty() ? RtValue::makeInt(0) : Regs[I->Src[0]];
      Res.ReturnValue = DoReturn(V);
      continue;
    }
    case Opcode::Halt:
      finish();
      return;
    }
    Fr.PC = NextPC;
  }

  finish();
}
