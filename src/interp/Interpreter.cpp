//===- interp/Interpreter.cpp - ILOC interpreter ----------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

using namespace rap;

namespace {

// MiniC integers are a 64-bit two's-complement machine word: arithmetic
// wraps on overflow. Computing through uint64_t keeps that wraparound
// well-defined (signed overflow is UB and aborts sanitized builds).
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
// INT64_MIN / -1 (and % -1) is the one overflowing division; it traps on
// x86, so define it to the wrapped quotient INT64_MIN (remainder 0).
int64_t wrapDiv(int64_t A, int64_t B) {
  if (B == -1)
    return wrapSub(0, A);
  return A / B;
}
int64_t wrapMod(int64_t A, int64_t B) {
  if (B == -1)
    return 0;
  return A % B;
}

} // namespace

const char *rap::trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None:
    return "none";
  case TrapKind::DivideByZero:
    return "div-by-zero";
  case TrapKind::OutOfBounds:
    return "out-of-bounds";
  case TrapKind::FuelExhausted:
    return "fuel-exhausted";
  case TrapKind::StackOverflow:
    return "stack-overflow";
  case TrapKind::NoEntry:
    return "no-entry";
  case TrapKind::BadCall:
    return "bad-call";
  }
  return "unknown";
}

std::string Trap::str() const {
  std::string Out = trapKindName(Kind);
  if (!Function.empty())
    Out += " @" + Function + "+" + std::to_string(PC);
  if (!Detail.empty())
    Out += ": " + Detail;
  return Out;
}

Interpreter::Interpreter(const IlocProgram &Prog) : Prog(Prog) {
  Funcs.reserve(Prog.functions().size());
  for (const auto &F : Prog.functions()) {
    CachedFunc C;
    C.F = F.get();
    C.Code = linearize(*F);
    Funcs.push_back(std::move(C));
  }
  GlobalEnd.assign(static_cast<size_t>(Prog.globalMemorySize()), -1);
  for (const GlobalVar &G : Prog.globals())
    GlobalEnd[G.Addr] = G.Addr + G.Size;
}

RunResult Interpreter::run(const std::string &Entry, uint64_t Fuel,
                           bool CollectPerFunction) {
  RunResult Res;
  const IlocFunction *EntryF = Prog.findFunction(Entry);
  if (!EntryF) {
    Res.Error = "entry function '" + Entry + "' not found";
    Res.TrapInfo = {TrapKind::NoEntry, 0, Entry, Res.Error};
    return Res;
  }
  int EntryId = Prog.functionId(EntryF);
  if (EntryF->numParams() != 0) {
    Res.Error = "entry function '" + Entry + "' must take no parameters";
    Res.TrapInfo = {TrapKind::NoEntry, 0, Entry, Res.Error};
    return Res;
  }

  Glob.assign(static_cast<size_t>(Prog.globalMemorySize()),
              RtValue::makeInt(0));

  std::vector<Frame> Stack;
  auto Fail = [&](TrapKind Kind, const Instr *I, const std::string &Msg) {
    std::ostringstream OS;
    OS << Msg << " (at '" << I->str() << "')";
    Res.Ok = false;
    Res.Error = OS.str();
    Res.TrapInfo.Kind = Kind;
    Res.TrapInfo.Detail = Msg;
    if (!Stack.empty()) {
      Res.TrapInfo.PC = Stack.back().PC;
      Res.TrapInfo.Function = Funcs[Stack.back().FuncId].F->name();
    }
    return Res;
  };

  auto MakeFrame = [&](int FuncId) {
    const IlocFunction *F = Funcs[FuncId].F;
    Frame Fr;
    Fr.FuncId = FuncId;
    Fr.PC = 0;
    unsigned RegCount =
        F->isAllocated() ? F->numPhysRegs() : F->numVRegs();
    Fr.Regs.assign(RegCount, RtValue::makeInt(0));
    Fr.Spill.assign(static_cast<size_t>(F->numSpillSlots()),
                    RtValue::makeInt(0));
    return Fr;
  };

  Stack.push_back(MakeFrame(EntryId));
  ExecStats &S = Res.Stats;
  S.MaxCallDepth = 1;
  std::vector<ExecStats> PerF(CollectPerFunction ? Funcs.size() : 0);
  auto FinishPerFunction = [&] {
    for (size_t Id = 0; Id != PerF.size(); ++Id)
      if (PerF[Id].Cycles)
        Res.PerFunction.emplace_back(Funcs[Id].F->name(), PerF[Id]);
  };

  // Performs a return: pops the frame and writes the value into the caller.
  auto DoReturn = [&](RtValue V) {
    Reg Dst = Stack.back().ReturnDst;
    Stack.pop_back();
    if (!Stack.empty() && Dst != NoReg)
      Stack.back().Regs[Dst] = V;
    return V;
  };

  while (!Stack.empty()) {
    Frame &Fr = Stack.back();
    const CachedFunc &C = Funcs[Fr.FuncId];
    const auto &Instrs = C.Code.Instrs;

    if (Fr.PC >= Instrs.size()) {
      // Fell off the end: implicit void return.
      Res.ReturnValue = DoReturn(RtValue::makeInt(0));
      continue;
    }
    if (S.Cycles >= Fuel) {
      Res.Error = "fuel exhausted: possible infinite loop";
      Res.TrapInfo = {TrapKind::FuelExhausted, Fr.PC, C.F->name(),
                      "executed " + std::to_string(S.Cycles) +
                          " instructions without halting"};
      return Res;
    }

    const Instr *I = Instrs[Fr.PC];
    ++S.Cycles;
    if (isLoadOpcode(I->Op)) {
      ++S.Loads;
      S.SpillLoads += I->Op == Opcode::LdSpill;
    }
    if (isStoreOpcode(I->Op)) {
      ++S.Stores;
      S.SpillStores += I->Op == Opcode::StSpill;
    }
    if (I->Op == Opcode::Mv)
      ++S.Copies;
    if (CollectPerFunction) {
      ExecStats &P = PerF[Fr.FuncId];
      ++P.Cycles;
      if (isLoadOpcode(I->Op)) {
        ++P.Loads;
        P.SpillLoads += I->Op == Opcode::LdSpill;
      }
      if (isStoreOpcode(I->Op)) {
        ++P.Stores;
        P.SpillStores += I->Op == Opcode::StSpill;
      }
      P.Copies += I->Op == Opcode::Mv;
      P.Calls += I->Op == Opcode::Call;
    }

    auto R = [&](unsigned Idx) -> RtValue & { return Fr.Regs[I->Src[Idx]]; };
    unsigned NextPC = Fr.PC + 1;

    switch (I->Op) {
    case Opcode::LoadI:
    case Opcode::LoadF:
      Fr.Regs[I->Dst] = I->Imm;
      break;
    case Opcode::Mv:
      Fr.Regs[I->Dst] = R(0);
      break;
    case Opcode::Add:
      Fr.Regs[I->Dst] = RtValue::makeInt(wrapAdd(R(0).asInt(), R(1).asInt()));
      break;
    case Opcode::Sub:
      Fr.Regs[I->Dst] = RtValue::makeInt(wrapSub(R(0).asInt(), R(1).asInt()));
      break;
    case Opcode::Mul:
      Fr.Regs[I->Dst] = RtValue::makeInt(wrapMul(R(0).asInt(), R(1).asInt()));
      break;
    case Opcode::Div:
      if (R(1).asInt() == 0)
        return Fail(TrapKind::DivideByZero, I, "integer division by zero");
      Fr.Regs[I->Dst] = RtValue::makeInt(wrapDiv(R(0).asInt(), R(1).asInt()));
      break;
    case Opcode::Mod:
      if (R(1).asInt() == 0)
        return Fail(TrapKind::DivideByZero, I, "integer modulo by zero");
      Fr.Regs[I->Dst] = RtValue::makeInt(wrapMod(R(0).asInt(), R(1).asInt()));
      break;
    case Opcode::Neg:
      Fr.Regs[I->Dst] = RtValue::makeInt(wrapSub(0, R(0).asInt()));
      break;
    case Opcode::And:
      Fr.Regs[I->Dst] =
          RtValue::makeInt((R(0).asInt() != 0 && R(1).asInt() != 0) ? 1 : 0);
      break;
    case Opcode::Or:
      Fr.Regs[I->Dst] =
          RtValue::makeInt((R(0).asInt() != 0 || R(1).asInt() != 0) ? 1 : 0);
      break;
    case Opcode::Not:
      Fr.Regs[I->Dst] = RtValue::makeInt(R(0).asInt() == 0 ? 1 : 0);
      break;
    case Opcode::FAdd:
      Fr.Regs[I->Dst] = RtValue::makeFloat(R(0).asFloat() + R(1).asFloat());
      break;
    case Opcode::FSub:
      Fr.Regs[I->Dst] = RtValue::makeFloat(R(0).asFloat() - R(1).asFloat());
      break;
    case Opcode::FMul:
      Fr.Regs[I->Dst] = RtValue::makeFloat(R(0).asFloat() * R(1).asFloat());
      break;
    case Opcode::FDiv:
      if (R(1).asFloat() == 0.0)
        return Fail(TrapKind::DivideByZero, I, "floating-point division by zero");
      Fr.Regs[I->Dst] = RtValue::makeFloat(R(0).asFloat() / R(1).asFloat());
      break;
    case Opcode::FNeg:
      Fr.Regs[I->Dst] = RtValue::makeFloat(-R(0).asFloat());
      break;
    case Opcode::CmpEQ:
      Fr.Regs[I->Dst] = RtValue::makeInt(R(0) == R(1) ? 1 : 0);
      break;
    case Opcode::CmpNE:
      Fr.Regs[I->Dst] = RtValue::makeInt(R(0) != R(1) ? 1 : 0);
      break;
    case Opcode::CmpLT:
      Fr.Regs[I->Dst] =
          RtValue::makeInt(R(0).asNumber() < R(1).asNumber() ? 1 : 0);
      break;
    case Opcode::CmpLE:
      Fr.Regs[I->Dst] =
          RtValue::makeInt(R(0).asNumber() <= R(1).asNumber() ? 1 : 0);
      break;
    case Opcode::CmpGT:
      Fr.Regs[I->Dst] =
          RtValue::makeInt(R(0).asNumber() > R(1).asNumber() ? 1 : 0);
      break;
    case Opcode::CmpGE:
      Fr.Regs[I->Dst] =
          RtValue::makeInt(R(0).asNumber() >= R(1).asNumber() ? 1 : 0);
      break;
    case Opcode::I2F:
      Fr.Regs[I->Dst] =
          RtValue::makeFloat(static_cast<double>(R(0).asInt()));
      break;
    case Opcode::F2I:
      Fr.Regs[I->Dst] =
          RtValue::makeInt(static_cast<int64_t>(R(0).asFloat()));
      break;
    case Opcode::LdSpill:
      Fr.Regs[I->Dst] = Fr.Spill[I->Slot];
      break;
    case Opcode::StSpill:
      Fr.Spill[I->Slot] = R(0);
      break;
    case Opcode::LdGlob:
      Fr.Regs[I->Dst] = Glob[I->Addr];
      break;
    case Opcode::StGlob:
      Glob[I->Addr] = R(0);
      break;
    case Opcode::LdIdx: {
      int64_t Off = R(0).asInt();
      int End = GlobalEnd[I->Addr];
      if (Off < 0 || End < 0 || I->Addr + Off >= End)
        return Fail(TrapKind::OutOfBounds, I,
                    "array load out of bounds (index " + std::to_string(Off) +
                        ")");
      Fr.Regs[I->Dst] = Glob[I->Addr + Off];
      break;
    }
    case Opcode::StIdx: {
      int64_t Off = R(0).asInt();
      int End = GlobalEnd[I->Addr];
      if (Off < 0 || End < 0 || I->Addr + Off >= End)
        return Fail(TrapKind::OutOfBounds, I,
                    "array store out of bounds (index " + std::to_string(Off) +
                        ")");
      Glob[I->Addr + Off] = R(1);
      break;
    }
    case Opcode::Jmp:
      NextPC = C.Code.LabelPos[I->Label0];
      break;
    case Opcode::Cbr:
      NextPC = R(0).asInt() != 0 ? C.Code.LabelPos[I->Label0]
                                 : C.Code.LabelPos[I->Label1];
      break;
    case Opcode::Call: {
      ++S.Calls;
      if (Stack.size() >= 100000)
        return Fail(TrapKind::StackOverflow, I, "call stack overflow");
      const IlocFunction *Callee = Funcs[I->Callee].F;
      Frame NewFr = MakeFrame(I->Callee);
      NewFr.ReturnDst = I->Dst;
      if (I->Src.size() != Callee->numParams())
        return Fail(TrapKind::BadCall, I,
                    "call passes " + std::to_string(I->Src.size()) +
                        " arguments to '" + Callee->name() + "' expecting " +
                        std::to_string(Callee->numParams()));
      for (unsigned A = 0; A != I->Src.size(); ++A) {
        // NoReg marks a parameter the callee never reads; writing it anyway
        // would clobber whichever live register the allocator reused.
        Reg PR = Callee->paramReg(A);
        if (PR != NoReg)
          NewFr.Regs[PR] = Fr.Regs[I->Src[A]];
      }
      Fr.PC = NextPC; // resume point after return
      Stack.push_back(std::move(NewFr));
      S.MaxCallDepth = std::max<uint64_t>(S.MaxCallDepth, Stack.size());
      continue;
    }
    case Opcode::Ret: {
      RtValue V =
          I->Src.empty() ? RtValue::makeInt(0) : Fr.Regs[I->Src[0]];
      Res.ReturnValue = DoReturn(V);
      continue;
    }
    case Opcode::Halt:
      Res.Ok = true;
      FinishPerFunction();
      return Res;
    }
    Fr.PC = NextPC;
  }

  Res.Ok = true;
  FinishPerFunction();
  return Res;
}
