//===- interp/Threaded.cpp - Direct-threaded execution engine -------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// The fast path of the interpreter (DESIGN.md §11). Executes the pre-decoded
// op buffers produced by Decode.cpp with computed-goto dispatch where the
// compiler supports labels-as-values (each handler ends in its own indirect
// jump, so the branch predictor learns per-op successor patterns) and a
// portable switch loop otherwise. The handler bodies are written once; the
// VM_* macros select the dispatch mechanism.
//
// Fuel is checked per stretch, not per instruction: VM_ENTER — used at
// function entry, branch targets, and post-call/post-return resume points —
// compares the op's SuffixCycles (cost through the stretch's terminator)
// against the remaining budget. Inside a stretch no check is needed: the
// entry check proved the whole stretch fits. When a stretch does not fit,
// the run is guaranteed to end within it (each op costs one cycle, so the
// budget expires before the terminator), and the engine bails out to the
// reference switch engine, which finishes with per-instruction checks and
// produces the exact trap the original interpreter would have.
//
// Cycles are charged in bulk at stretch entry (the stretch's SuffixCycles),
// not per handler: a stretch, once entered, runs to its terminator unless a
// trap ends the program, and VM_FAIL refunds the cycles of the instructions
// past the trapping one, landing on exactly the reference engine's count.
// The memory/copy/call counters are still bumped per handler at the same
// points the reference engine does, per component for superinstructions.
//
//===----------------------------------------------------------------------===//

#include "interp/Engine.h"
#include "interp/WrapMath.h"

#include <cassert>

using namespace rap;
using namespace rap::interp;

// Configure-time dispatch selection (-DRAP_INTERP_COMPUTED_GOTO=ON/OFF maps
// to 1/0). Default when CMake did not decide: use computed goto on
// toolchains with the labels-as-values extension.
#ifndef RAP_INTERP_COMPUTED_GOTO
#if defined(__GNUC__) || defined(__clang__)
#define RAP_INTERP_COMPUTED_GOTO 1
#else
#define RAP_INTERP_COMPUTED_GOTO 0
#endif
#endif

#if RAP_INTERP_COMPUTED_GOTO
/// Handlers are plain labels; dispatch is an indirect goto through the
/// label-address table, replicated at the end of every handler.
#define VM_CASE(N) lbl_##N:
#define VM_JUMP() goto *JumpTable[static_cast<unsigned>(D->Op)]
#else
/// Handlers are cases of one switch; dispatch re-enters the switch.
#define VM_CASE(N) case DOp::N:
#define VM_JUMP() goto dispatch
#endif

/// Advance to the next op in the current stretch (no fuel check: the
/// stretch's entry check covered it).
#define VM_NEXT()                                                              \
  do {                                                                         \
    ++D;                                                                       \
    VM_JUMP();                                                                 \
  } while (0)

/// Transfer control to decoded index \p TargetIdx — an entry point. Checks
/// that the remaining fuel covers the stretch starting there; bails out to
/// the reference engine otherwise (the run necessarily ends inside it).
/// When the stretch fits, its entire cycle cost is charged here in bulk:
/// handlers then bump only their memory/copy/call counters, and the only
/// exit that can interrupt a stretch mid-way — a trap — refunds the
/// unexecuted remainder (see VM_FAIL).
#define VM_ENTER(TargetOff)                                                    \
  do {                                                                         \
    D = reinterpret_cast<const DecOp *>(reinterpret_cast<const char *>(Ops) + \
                                        (TargetOff));                          \
    const uint32_t Sfx_ = D->SuffixCycles;                                     \
    if (Sfx_ > Fuel - S.Cycles)                                                \
      goto bail;                                                               \
    S.Cycles += Sfx_;                                                          \
    if constexpr (WithPerF)                                                    \
      PerFP[FId].Cycles += Sfx_;                                               \
    VM_JUMP();                                                                 \
  } while (0)

/// Reload the per-function execution context after a frame push/pop (both
/// can reallocate Cells, invalidating the window pointers).
#define VM_LOAD_FRAME()                                                        \
  do {                                                                         \
    const Frame &Fr_ = Stack.back();                                           \
    FId = Fr_.FuncId;                                                          \
    const CachedFunc &C_ = Funcs[FId];                                         \
    Ops = C_.Dec.Ops;                                                          \
    Consts = C_.Dec.Consts;                                                    \
    Pairs = C_.Dec.ArgPairs;                                                   \
    Frm = Cells.data() + Fr_.Base;                                             \
    Spill = Frm + C_.RegCount;                                                 \
  } while (0)

/// Bump a global counter, and its per-function twin when collecting.
#ifdef RAP_DIAG_NO_COUNT
#define VM_COUNT(Field, N) (void)0
#else
#define VM_COUNT(Field, N)                                                     \
  do {                                                                         \
    S.Field += (N);                                                            \
    if constexpr (WithPerF)                                                    \
      PerFP[FId].Field += (N);                                                 \
  } while (0)
#endif

/// Operand accessors. Decoded operand fields are pre-scaled byte offsets
/// (Decode.cpp scaleOffsets): register and spill-slot fields are offsets
/// into the frame window / spill area, constant-pool fields are offsets
/// into the pool, so the address computation here is a plain add — no
/// shift on the operand path. Fields the reference engine shares (Ret's
/// value register, Call's marshalling pairs, global addresses) stay plain
/// indexes and are accessed directly.
#define VM_REG(Off)                                                            \
  (*reinterpret_cast<RtValue *>(reinterpret_cast<char *>(Frm) + (Off)))
#define VM_SPILL(Off)                                                          \
  (*reinterpret_cast<RtValue *>(reinterpret_cast<char *>(Spill) + (Off)))
#define VM_CONST(Off)                                                          \
  (*reinterpret_cast<const RtValue *>(                                         \
      reinterpret_cast<const char *>(Consts) + (Off)))

/// Abort the run with a trap at linear position \p LinPC of the current
/// function. The stretch's cycles were charged in full at entry, but only
/// the instructions up to and including the trapping one actually ran (the
/// reference engine charges each before executing it, the trapping one
/// included) — refund the rest, then flush the counters.
#define VM_FAIL(Kind, LinPC, Msg)                                              \
  do {                                                                         \
    const uint32_t Over_ =                                                     \
        D->SuffixCycles - ((LinPC)-D->LinPos + 1);                             \
    S.Cycles -= Over_;                                                         \
    if constexpr (WithPerF)                                                    \
      PerFP[FId].Cycles -= Over_;                                              \
    E.Res.Stats = S;                                                           \
    E.fail(TrapKind::Kind, FId, (LinPC), (Msg));                               \
    return;                                                                    \
  } while (0)

namespace {

template <bool WithPerF> void runLoop(Engine &E) {
  const std::vector<CachedFunc> &Funcs = E.Funcs;
  std::vector<Frame> &Stack = E.Stack;
  std::vector<RtValue> &Cells = E.Cells;
  RtValue *GlobV = E.Glob.data(); // stable: Glob never grows during a run
  const int *GEnd = E.GlobalEnd.data();
  ExecStats *PerFP = E.PerF.data();
  (void)PerFP;
  const uint64_t Fuel = E.Fuel;
  // Counters accumulate in locals the compiler can keep in registers; every
  // exit path (halt, trap, bail-out, final return) flushes them to Res.
  ExecStats S = E.Res.Stats;

  int FId = 0;
  const DecOp *Ops = nullptr;
  const RtValue *Consts = nullptr;
  const uint32_t *Pairs = nullptr;
  RtValue *Frm = nullptr;
  RtValue *Spill = nullptr;
  const DecOp *D = nullptr;
  RtValue RetV;

#if RAP_INTERP_COMPUTED_GOTO
  static const void *JumpTable[] = {
#define RAP_DOP_LABEL(N) &&lbl_##N,
      RAP_DOP_LIST(RAP_DOP_LABEL)
#undef RAP_DOP_LABEL
  };
#endif

  VM_LOAD_FRAME();
  VM_ENTER(Stack.back().PC * sizeof(DecOp));

#if !RAP_INTERP_COMPUTED_GOTO
dispatch:
  switch (D->Op)
#endif
  {
    VM_CASE(LoadImm) {
      VM_REG(D->Dst) = VM_CONST(D->Aux);
      VM_NEXT();
    }
    VM_CASE(Mv) {
      VM_COUNT(Copies, 1);
      VM_REG(D->Dst) = VM_REG(D->A);
      VM_NEXT();
    }
    VM_CASE(Add) {
      VM_REG(D->Dst) =
          RtValue::makeInt(wrapAdd(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt()));
      VM_NEXT();
    }
    VM_CASE(Sub) {
      VM_REG(D->Dst) =
          RtValue::makeInt(wrapSub(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt()));
      VM_NEXT();
    }
    VM_CASE(Mul) {
      VM_REG(D->Dst) =
          RtValue::makeInt(wrapMul(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt()));
      VM_NEXT();
    }
    VM_CASE(Div) {
      const int64_t Bv = VM_REG(D->B).rawInt();
      if (Bv == 0)
        VM_FAIL(DivideByZero, D->LinPos, "integer division by zero");
      VM_REG(D->Dst) = RtValue::makeInt(wrapDiv(VM_REG(D->A).rawInt(), Bv));
      VM_NEXT();
    }
    VM_CASE(Mod) {
      const int64_t Bv = VM_REG(D->B).rawInt();
      if (Bv == 0)
        VM_FAIL(DivideByZero, D->LinPos, "integer modulo by zero");
      VM_REG(D->Dst) = RtValue::makeInt(wrapMod(VM_REG(D->A).rawInt(), Bv));
      VM_NEXT();
    }
    VM_CASE(Neg) {
      VM_REG(D->Dst) = RtValue::makeInt(wrapSub(0, VM_REG(D->A).rawInt()));
      VM_NEXT();
    }
    VM_CASE(And) {
      VM_REG(D->Dst) = RtValue::makeInt(
          (VM_REG(D->A).rawInt() != 0 && VM_REG(D->B).rawInt() != 0) ? 1 : 0);
      VM_NEXT();
    }
    VM_CASE(Or) {
      VM_REG(D->Dst) = RtValue::makeInt(
          (VM_REG(D->A).rawInt() != 0 || VM_REG(D->B).rawInt() != 0) ? 1 : 0);
      VM_NEXT();
    }
    VM_CASE(Not) {
      VM_REG(D->Dst) = RtValue::makeInt(VM_REG(D->A).rawInt() == 0 ? 1 : 0);
      VM_NEXT();
    }
    VM_CASE(FAdd) {
      VM_REG(D->Dst) =
          RtValue::makeFloat(VM_REG(D->A).rawFloat() + VM_REG(D->B).rawFloat());
      VM_NEXT();
    }
    VM_CASE(FSub) {
      VM_REG(D->Dst) =
          RtValue::makeFloat(VM_REG(D->A).rawFloat() - VM_REG(D->B).rawFloat());
      VM_NEXT();
    }
    VM_CASE(FMul) {
      VM_REG(D->Dst) =
          RtValue::makeFloat(VM_REG(D->A).rawFloat() * VM_REG(D->B).rawFloat());
      VM_NEXT();
    }
    VM_CASE(FDiv) {
      const double Bv = VM_REG(D->B).rawFloat();
      if (Bv == 0.0)
        VM_FAIL(DivideByZero, D->LinPos, "floating-point division by zero");
      VM_REG(D->Dst) = RtValue::makeFloat(VM_REG(D->A).rawFloat() / Bv);
      VM_NEXT();
    }
    VM_CASE(FNeg) {
      VM_REG(D->Dst) = RtValue::makeFloat(-VM_REG(D->A).rawFloat());
      VM_NEXT();
    }
    VM_CASE(CmpEQ) {
      VM_REG(D->Dst) = RtValue::makeInt(VM_REG(D->A) == VM_REG(D->B) ? 1 : 0);
      VM_NEXT();
    }
    VM_CASE(CmpNE) {
      VM_REG(D->Dst) = RtValue::makeInt(VM_REG(D->A) != VM_REG(D->B) ? 1 : 0);
      VM_NEXT();
    }
    VM_CASE(CmpLT) {
      VM_REG(D->Dst) = RtValue::makeInt(
          VM_REG(D->A).asNumber() < VM_REG(D->B).asNumber() ? 1 : 0);
      VM_NEXT();
    }
    VM_CASE(CmpLE) {
      VM_REG(D->Dst) = RtValue::makeInt(
          VM_REG(D->A).asNumber() <= VM_REG(D->B).asNumber() ? 1 : 0);
      VM_NEXT();
    }
    VM_CASE(CmpGT) {
      VM_REG(D->Dst) = RtValue::makeInt(
          VM_REG(D->A).asNumber() > VM_REG(D->B).asNumber() ? 1 : 0);
      VM_NEXT();
    }
    VM_CASE(CmpGE) {
      VM_REG(D->Dst) = RtValue::makeInt(
          VM_REG(D->A).asNumber() >= VM_REG(D->B).asNumber() ? 1 : 0);
      VM_NEXT();
    }
    VM_CASE(I2F) {
      VM_REG(D->Dst) =
          RtValue::makeFloat(static_cast<double>(VM_REG(D->A).rawInt()));
      VM_NEXT();
    }
    VM_CASE(F2I) {
      VM_REG(D->Dst) =
          RtValue::makeInt(static_cast<int64_t>(VM_REG(D->A).rawFloat()));
      VM_NEXT();
    }
    VM_CASE(LdSpill) {
      VM_COUNT(Loads, 1);
      VM_COUNT(SpillLoads, 1);
      VM_REG(D->Dst) = VM_SPILL(D->X);
      VM_NEXT();
    }
    VM_CASE(StSpill) {
      VM_COUNT(Stores, 1);
      VM_COUNT(SpillStores, 1);
      VM_SPILL(D->X) = VM_REG(D->A);
      VM_NEXT();
    }
    VM_CASE(LdGlob) {
      VM_COUNT(Loads, 1);
      VM_REG(D->Dst) = GlobV[D->X];
      VM_NEXT();
    }
    VM_CASE(StGlob) {
      VM_COUNT(Stores, 1);
      GlobV[D->X] = VM_REG(D->A);
      VM_NEXT();
    }
    VM_CASE(LdIdx) {
      VM_COUNT(Loads, 1);
      const int64_t Off = VM_REG(D->A).rawInt();
      const int End = GEnd[D->X];
      if (Off < 0 || End < 0 || D->X + Off >= End)
        VM_FAIL(OutOfBounds, D->LinPos,
                "array load out of bounds (index " + std::to_string(Off) +
                    ")");
      VM_REG(D->Dst) = GlobV[D->X + Off];
      VM_NEXT();
    }
    VM_CASE(StIdx) {
      VM_COUNT(Stores, 1);
      const int64_t Off = VM_REG(D->A).rawInt();
      const int End = GEnd[D->X];
      if (Off < 0 || End < 0 || D->X + Off >= End)
        VM_FAIL(OutOfBounds, D->LinPos,
                "array store out of bounds (index " + std::to_string(Off) +
                    ")");
      GlobV[D->X + Off] = VM_REG(D->B);
      VM_NEXT();
    }
    VM_CASE(Jmp) {
      VM_ENTER(D->Aux);
    }
    VM_CASE(Cbr) {
      VM_ENTER(VM_REG(D->A).rawInt() != 0 ? D->Aux : D->B);
    }
    VM_CASE(Call) {
      VM_COUNT(Calls, 1);
      if (Stack.size() >= MaxCallStack)
        VM_FAIL(StackOverflow, D->LinPos, "call stack overflow");
      Stack.back().PC = static_cast<uint32_t>(D - Ops) + 1; // resume point
      const uint32_t NPairs = D->B;
      const uint32_t *P = Pairs + D->Aux;
      const uint32_t CallerBase = Stack.back().Base;
      E.pushFrame(D->X, D->Dst); // invalidates Frm/Spill
      RtValue *CallerW = Cells.data() + CallerBase;
      RtValue *CalleeW = Cells.data() + Stack.back().Base;
      for (uint32_t K = 0; K != NPairs; ++K, P += 2)
        CalleeW[P[0]] = CallerW[P[1]];
      if (Stack.size() > S.MaxCallDepth)
        S.MaxCallDepth = Stack.size();
      VM_LOAD_FRAME();
      VM_ENTER(0);
    }
    VM_CASE(BadCall) {
      // Arity mismatch discovered at decode time; executing it reproduces
      // the reference order: count the call, overflow check, then the trap.
      VM_COUNT(Calls, 1);
      if (Stack.size() >= MaxCallStack)
        VM_FAIL(StackOverflow, D->LinPos, "call stack overflow");
      const IlocFunction *Callee = Funcs[D->X].F;
      VM_FAIL(BadCall, D->LinPos,
              "call passes " + std::to_string(D->B) + " arguments to '" +
                  Callee->name() + "' expecting " +
                  std::to_string(Callee->numParams()));
    }
    VM_CASE(Ret) {
      RetV = D->A == NoReg ? RtValue::makeInt(0) : Frm[D->A];
      goto do_return;
    }
    VM_CASE(Halt) {
      E.Res.Stats = S;
      E.finish();
      return;
    }
    VM_CASE(ImplicitRet) {
      // Fell off the end (or a label bound past the last instruction):
      // implicit void return, free of charge — same as the reference.
      RetV = RtValue::makeInt(0);
      goto do_return;
    }

    //===------------------------------------------------------------------===//
    // Superinstructions. Each performs every component's register write and
    // charges every component's counters, so fusion is observable only in
    // wall-clock time.
    //===------------------------------------------------------------------===//

    VM_CASE(CmpEQCbr) {
      const bool T = VM_REG(D->A) == VM_REG(D->B);
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : static_cast<uint32_t>(D->X));
    }
    VM_CASE(CmpNECbr) {
      const bool T = VM_REG(D->A) != VM_REG(D->B);
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : static_cast<uint32_t>(D->X));
    }
    VM_CASE(CmpLTCbr) {
      const bool T = VM_REG(D->A).asNumber() < VM_REG(D->B).asNumber();
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : static_cast<uint32_t>(D->X));
    }
    VM_CASE(CmpLECbr) {
      const bool T = VM_REG(D->A).asNumber() <= VM_REG(D->B).asNumber();
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : static_cast<uint32_t>(D->X));
    }
    VM_CASE(CmpGTCbr) {
      const bool T = VM_REG(D->A).asNumber() > VM_REG(D->B).asNumber();
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : static_cast<uint32_t>(D->X));
    }
    VM_CASE(CmpGECbr) {
      const bool T = VM_REG(D->A).asNumber() >= VM_REG(D->B).asNumber();
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : static_cast<uint32_t>(D->X));
    }
    VM_CASE(LoadIAdd) {
      // Add commutes, so the constant is consumed straight from the pool
      // (D->Y holds the other operand) — no reload of the value just
      // stored to the frame.
      const RtValue C = VM_CONST(D->Aux);
      VM_REG(D->X) = C; // the loadI's own def
      VM_REG(D->Dst) = RtValue::makeInt(wrapAdd(C.rawInt(), VM_REG(D->Y).rawInt()));
      VM_NEXT();
    }
    VM_CASE(LoadISub) {
      VM_REG(D->X) = VM_CONST(D->Aux);
      VM_REG(D->Dst) =
          RtValue::makeInt(wrapSub(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt()));
      VM_NEXT();
    }
    VM_CASE(LoadIMul) {
      const RtValue C = VM_CONST(D->Aux); // mul commutes; see LoadIAdd
      VM_REG(D->X) = C;
      VM_REG(D->Dst) = RtValue::makeInt(wrapMul(C.rawInt(), VM_REG(D->Y).rawInt()));
      VM_NEXT();
    }
    VM_CASE(LoadIDiv) {
      VM_REG(D->X) = VM_CONST(D->Aux);
      const int64_t Bv = VM_REG(D->B).rawInt();
      if (Bv == 0) // trap at the div component, one past the loadI
        VM_FAIL(DivideByZero, D->LinPos + 1, "integer division by zero");
      VM_REG(D->Dst) = RtValue::makeInt(wrapDiv(VM_REG(D->A).rawInt(), Bv));
      VM_NEXT();
    }
    VM_CASE(LoadIMod) {
      VM_REG(D->X) = VM_CONST(D->Aux);
      const int64_t Bv = VM_REG(D->B).rawInt();
      if (Bv == 0)
        VM_FAIL(DivideByZero, D->LinPos + 1, "integer modulo by zero");
      VM_REG(D->Dst) = RtValue::makeInt(wrapMod(VM_REG(D->A).rawInt(), Bv));
      VM_NEXT();
    }
    VM_CASE(LdAddSt) {
      VM_COUNT(Loads, 1);
      VM_COUNT(SpillLoads, 1);
      VM_COUNT(Stores, 1);
      VM_COUNT(SpillStores, 1);
      VM_REG(D->Aux) = VM_SPILL(D->X); // the ldm's own def
      const RtValue R =
          RtValue::makeInt(wrapAdd(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt()));
      VM_REG(D->Dst) = R;
      VM_SPILL(D->Y) = R;
      VM_NEXT();
    }
    VM_CASE(LdSubSt) {
      VM_COUNT(Loads, 1);
      VM_COUNT(SpillLoads, 1);
      VM_COUNT(Stores, 1);
      VM_COUNT(SpillStores, 1);
      VM_REG(D->Aux) = VM_SPILL(D->X);
      const RtValue R =
          RtValue::makeInt(wrapSub(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt()));
      VM_REG(D->Dst) = R;
      VM_SPILL(D->Y) = R;
      VM_NEXT();
    }
    VM_CASE(LdMulSt) {
      VM_COUNT(Loads, 1);
      VM_COUNT(SpillLoads, 1);
      VM_COUNT(Stores, 1);
      VM_COUNT(SpillStores, 1);
      VM_REG(D->Aux) = VM_SPILL(D->X);
      const RtValue R =
          RtValue::makeInt(wrapMul(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt()));
      VM_REG(D->Dst) = R;
      VM_SPILL(D->Y) = R;
      VM_NEXT();
    }
    VM_CASE(LoadICmpEQCbr) {
      // The constant is compared straight from the pool (the frame store
      // still happens first, so aliased operands read the same value).
      const RtValue C = VM_CONST(D->Y);
      VM_REG(D->X) = C; // the loadI's own def
      const bool T = VM_REG(D->A) == C;
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : D->B);
    }
    VM_CASE(LoadICmpNECbr) {
      const RtValue C = VM_CONST(D->Y);
      VM_REG(D->X) = C;
      const bool T = VM_REG(D->A) != C;
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : D->B);
    }
    VM_CASE(LoadICmpLTCbr) {
      const RtValue C = VM_CONST(D->Y);
      VM_REG(D->X) = C;
      const bool T = VM_REG(D->A).asNumber() < C.asNumber();
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : D->B);
    }
    VM_CASE(LoadICmpLECbr) {
      const RtValue C = VM_CONST(D->Y);
      VM_REG(D->X) = C;
      const bool T = VM_REG(D->A).asNumber() <= C.asNumber();
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : D->B);
    }
    VM_CASE(LoadICmpGTCbr) {
      const RtValue C = VM_CONST(D->Y);
      VM_REG(D->X) = C;
      const bool T = VM_REG(D->A).asNumber() > C.asNumber();
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : D->B);
    }
    VM_CASE(LoadICmpGECbr) {
      const RtValue C = VM_CONST(D->Y);
      VM_REG(D->X) = C;
      const bool T = VM_REG(D->A).asNumber() >= C.asNumber();
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : D->B);
    }
    VM_CASE(MulAdd) {
      const int64_t M = wrapMul(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt());
      VM_REG(D->X) = RtValue::makeInt(M); // the mul's own def
      VM_REG(D->Dst) = RtValue::makeInt(wrapAdd(M, VM_REG(D->Y).rawInt()));
      VM_NEXT();
    }
    VM_CASE(AddLdIdx) {
      VM_COUNT(Loads, 1);
      const int64_t Off = wrapAdd(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt());
      VM_REG(D->Y) = RtValue::makeInt(Off); // the add's own def
      const int End = GEnd[D->X];
      if (Off < 0 || End < 0 || D->X + Off >= End)
        VM_FAIL(OutOfBounds, D->LinPos + 1,
                "array load out of bounds (index " + std::to_string(Off) +
                    ")");
      VM_REG(D->Dst) = GlobV[D->X + Off];
      VM_NEXT();
    }
    VM_CASE(AddMv) {
      VM_COUNT(Copies, 1);
      VM_REG(D->X) =
          RtValue::makeInt(wrapAdd(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt()));
      VM_REG(D->Dst) = VM_REG(D->Aux);
      VM_NEXT();
    }
    VM_CASE(MvJmp) {
      VM_COUNT(Copies, 1);
      VM_REG(D->Dst) = VM_REG(D->A);
      VM_ENTER(D->Aux);
    }
    VM_CASE(LdIdxLoadI) {
      VM_COUNT(Loads, 1);
      const int64_t Off = VM_REG(D->A).rawInt();
      const int End = GEnd[D->X];
      if (Off < 0 || End < 0 || D->X + Off >= End)
        VM_FAIL(OutOfBounds, D->LinPos,
                "array load out of bounds (index " + std::to_string(Off) +
                    ")");
      VM_REG(D->Dst) = GlobV[D->X + Off];
      VM_REG(D->Y) = VM_CONST(D->Aux);
      VM_NEXT();
    }
    VM_CASE(LoadILdSpill) {
      VM_COUNT(Loads, 1);
      VM_COUNT(SpillLoads, 1);
      VM_REG(D->Y) = VM_CONST(D->Aux); // the loadI's own def
      VM_REG(D->Dst) = VM_SPILL(D->X);
      VM_NEXT();
    }
    VM_CASE(LoadIStIdx) {
      VM_COUNT(Stores, 1);
      VM_REG(D->Y) = VM_CONST(D->Aux); // the loadI's own def
      const int64_t Off = VM_REG(D->A).rawInt();
      const int End = GEnd[D->X];
      if (Off < 0 || End < 0 || D->X + Off >= End)
        VM_FAIL(OutOfBounds, D->LinPos + 1,
                "array store out of bounds (index " + std::to_string(Off) +
                    ")");
      GlobV[D->X + Off] = VM_REG(D->B);
      VM_NEXT();
    }
    VM_CASE(StIdxLoadI) {
      VM_COUNT(Stores, 1);
      const int64_t Off = VM_REG(D->A).rawInt();
      const int End = GEnd[D->X];
      if (Off < 0 || End < 0 || D->X + Off >= End)
        VM_FAIL(OutOfBounds, D->LinPos,
                "array store out of bounds (index " + std::to_string(Off) +
                    ")");
      GlobV[D->X + Off] = VM_REG(D->B);
      VM_REG(D->Y) = VM_CONST(D->Aux);
      VM_NEXT();
    }
    VM_CASE(LoadImm2) {
      VM_REG(D->Dst) = VM_CONST(D->Aux);
      VM_REG(D->Y) = VM_CONST(D->B);
      VM_NEXT();
    }
    VM_CASE(LdSpillAdd) {
      VM_COUNT(Loads, 1);
      VM_COUNT(SpillLoads, 1);
      VM_REG(D->Aux) = VM_SPILL(D->X); // the ldm's own def
      VM_REG(D->Dst) =
          RtValue::makeInt(wrapAdd(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt()));
      VM_NEXT();
    }
    VM_CASE(LdSpillMul) {
      VM_COUNT(Loads, 1);
      VM_COUNT(SpillLoads, 1);
      VM_REG(D->Aux) = VM_SPILL(D->X);
      VM_REG(D->Dst) =
          RtValue::makeInt(wrapMul(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt()));
      VM_NEXT();
    }

    // 3-4 instruction chains. All component register writes still happen,
    // in original order, but values a later component consumes flow through
    // host registers rather than being reloaded from the frame.

    VM_CASE(LoadIAddMvJmp) {
      VM_COUNT(Copies, 1);
      const RtValue C = VM_CONST(D->Aux);
      VM_REG(D->X) = C; // the loadI's own def
      const RtValue R =
          RtValue::makeInt(wrapAdd(C.rawInt(), VM_REG(D->A).rawInt()));
      VM_REG(D->Dst) = R; // the add's own def
      VM_REG(D->Y) = R;   // the mv copies the add result
      VM_ENTER(D->B);
    }
    VM_CASE(LoadILdSpillMulAdd) {
      VM_COUNT(Loads, 1);
      VM_COUNT(SpillLoads, 1);
      const RtValue C = VM_CONST(D->Aux);
      VM_REG(D->X) = C; // the loadI's own def
      const RtValue V = VM_SPILL(D->B);
      VM_REG(D->Z) = V; // the ldm's own def
      const int64_t M = wrapMul(C.rawInt(), V.rawInt());
      VM_REG(D->Y) = RtValue::makeInt(M); // the mul's own def
      VM_REG(D->Dst) = RtValue::makeInt(wrapAdd(M, VM_REG(D->A).rawInt()));
      VM_NEXT();
    }
    VM_CASE(MulAddLdIdx) {
      VM_COUNT(Loads, 1);
      const int64_t M = wrapMul(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt());
      VM_REG(D->X) = RtValue::makeInt(M); // the mul's own def
      const int64_t Off = wrapAdd(M, VM_REG(D->Y).rawInt());
      VM_REG(D->Z) = RtValue::makeInt(Off); // the add's own def
      const int End = GEnd[D->Aux];
      if (Off < 0 || End < 0 || D->Aux + Off >= End)
        VM_FAIL(OutOfBounds, D->LinPos + 2,
                "array load out of bounds (index " + std::to_string(Off) +
                    ")");
      VM_REG(D->Dst) = GlobV[D->Aux + Off];
      VM_NEXT();
    }
    VM_CASE(AddMvJmp) {
      VM_COUNT(Copies, 1);
      VM_REG(D->X) =
          RtValue::makeInt(wrapAdd(VM_REG(D->A).rawInt(), VM_REG(D->B).rawInt()));
      VM_REG(D->Dst) = VM_REG(D->Aux); // the mv (its source may be the add dst)
      VM_ENTER(D->Z);
    }
    VM_CASE(LdGlobLoadIAddStGlob) {
      VM_COUNT(Loads, 1);
      const RtValue V = GlobV[D->X];
      VM_REG(D->Z) = V; // the ldg's own def
      const RtValue C = VM_CONST(D->Aux);
      VM_REG(D->Y) = C; // the loadI's own def
      const RtValue R = RtValue::makeInt(wrapAdd(V.rawInt(), C.rawInt()));
      VM_REG(D->Dst) = R;
      VM_COUNT(Stores, 1);
      GlobV[D->B] = R; // the stg stores the add result
      VM_NEXT();
    }
    VM_CASE(LdGlobCmpLTCbr) {
      VM_COUNT(Loads, 1);
      VM_REG(D->Z) = GlobV[D->Y]; // the ldg's own def (may feed the compare)
      const bool T = VM_REG(D->A).asNumber() < VM_REG(D->B).asNumber();
      VM_REG(D->Dst) = RtValue::makeInt(T ? 1 : 0);
      VM_ENTER(T ? D->Aux : static_cast<uint32_t>(D->X));
    }
    VM_CASE(LdIdx2) {
      VM_COUNT(Loads, 1);
      const int64_t Off1 = VM_REG(D->A).rawInt();
      const int End1 = GEnd[D->X];
      if (Off1 < 0 || End1 < 0 || D->X + Off1 >= End1)
        VM_FAIL(OutOfBounds, D->LinPos,
                "array load out of bounds (index " + std::to_string(Off1) +
                    ")");
      VM_REG(D->Dst) = GlobV[D->X + Off1];
      VM_COUNT(Loads, 1);
      const int64_t Off2 = VM_REG(D->B).rawInt(); // may be the first load's dst
      const int End2 = GEnd[D->Aux];
      if (Off2 < 0 || End2 < 0 || D->Aux + Off2 >= End2)
        VM_FAIL(OutOfBounds, D->LinPos + 1,
                "array load out of bounds (index " + std::to_string(Off2) +
                    ")");
      VM_REG(D->Y) = GlobV[D->Aux + Off2];
      VM_NEXT();
    }
    VM_CASE(LdIdxStIdx) {
      VM_COUNT(Loads, 1);
      const int64_t Off1 = VM_REG(D->A).rawInt();
      const int End1 = GEnd[D->X];
      if (Off1 < 0 || End1 < 0 || D->X + Off1 >= End1)
        VM_FAIL(OutOfBounds, D->LinPos,
                "array load out of bounds (index " + std::to_string(Off1) +
                    ")");
      VM_REG(D->Dst) = GlobV[D->X + Off1];
      VM_COUNT(Stores, 1);
      const int64_t Off2 = VM_REG(D->B).rawInt(); // store operands may be the
      const RtValue Val = VM_REG(D->Z);           // load's dst
      const int End2 = GEnd[D->Aux];
      if (Off2 < 0 || End2 < 0 || D->Aux + Off2 >= End2)
        VM_FAIL(OutOfBounds, D->LinPos + 1,
                "array store out of bounds (index " + std::to_string(Off2) +
                    ")");
      GlobV[D->Aux + Off2] = Val;
      VM_NEXT();
    }
    VM_CASE(StIdx2) {
      VM_COUNT(Stores, 1);
      const int64_t Off1 = VM_REG(D->A).rawInt();
      const int End1 = GEnd[D->X];
      if (Off1 < 0 || End1 < 0 || D->X + Off1 >= End1)
        VM_FAIL(OutOfBounds, D->LinPos,
                "array store out of bounds (index " + std::to_string(Off1) +
                    ")");
      GlobV[D->X + Off1] = VM_REG(D->B);
      VM_COUNT(Stores, 1);
      const int64_t Off2 = VM_REG(D->Y).rawInt();
      const int End2 = GEnd[D->Aux];
      if (Off2 < 0 || End2 < 0 || D->Aux + Off2 >= End2)
        VM_FAIL(OutOfBounds, D->LinPos + 1,
                "array store out of bounds (index " + std::to_string(Off2) +
                    ")");
      GlobV[D->Aux + Off2] = VM_REG(D->Z);
      VM_NEXT();
    }
  }
  // All handlers transfer control explicitly; reaching here means a
  // corrupted op stream.
  assert(false && "unhandled decoded op");
  return;

do_return: {
  E.Res.ReturnValue = RetV;
  const Frame Popped = Stack.back();
  Stack.pop_back();
  E.CellTop = Popped.Base;
  if (Stack.empty()) {
    E.Res.Stats = S;
    E.finish();
    return;
  }
  VM_LOAD_FRAME();
  if (Popped.ReturnDst != NoReg)
    Frm[Popped.ReturnDst] = RetV;
  VM_ENTER(Stack.back().PC * sizeof(DecOp));
}

bail: {
  // The stretch at D does not fit the remaining budget, so the run ends
  // within it. Convert every stacked PC from decoded to linear coordinates
  // and let the reference engine finish with per-instruction fuel checks —
  // it produces the exact trap (or completion) the original interpreter
  // would have.
  Stack.back().PC = static_cast<uint32_t>(D - Ops);
  for (Frame &Fr : Stack)
    Fr.PC = Funcs[Fr.FuncId].Dec.Ops[Fr.PC].LinPos;
  E.Res.Stats = S;
  E.runSwitch();
  return;
}
}

} // namespace

void Engine::runThreaded() {
  if (CollectPerFunction)
    runLoop<true>(*this);
  else
    runLoop<false>(*this);
}
