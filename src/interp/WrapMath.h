//===- interp/WrapMath.h - Wrapping integer semantics -----------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniC integer semantics shared by the reference switch engine and the
/// direct-threaded engine: a 64-bit two's-complement machine word whose
/// arithmetic wraps on overflow. Computing through uint64_t keeps the
/// wraparound well-defined (signed overflow is UB and aborts sanitized
/// builds). Both engines must agree bit-for-bit — the differential test
/// compares their results over the fuzz corpus.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_INTERP_WRAPMATH_H
#define RAP_INTERP_WRAPMATH_H

#include <cstdint>

namespace rap::interp {

inline int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
inline int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
inline int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
// INT64_MIN / -1 (and % -1) is the one overflowing division; it traps on
// x86, so define it to the wrapped quotient INT64_MIN (remainder 0).
inline int64_t wrapDiv(int64_t A, int64_t B) {
  if (B == -1)
    return wrapSub(0, A);
  return A / B;
}
inline int64_t wrapMod(int64_t A, int64_t B) {
  if (B == -1)
    return 0;
  return A % B;
}

} // namespace rap::interp

#endif // RAP_INTERP_WRAPMATH_H
