//===- interp/Decode.h - Pre-decoded ILOC for threaded dispatch -*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoded-op execution format of the direct-threaded interpreter
/// (DESIGN.md §11). Each linearized function is translated once into a flat
/// buffer of fixed-size DecOps: operands resolved to register slots,
/// immediates interned into a constant pool, branch targets pre-mapped to
/// buffer indices, and common idioms fused into superinstructions:
///
///   * cmp + cbr            (the branch shape every predicate emits)
///   * loadI + cmp + cbr    (bounded-loop exit tests)
///   * loadI + int op       (immediate operands)
///   * ldm + int op + stm   (the spill triple the allocators emit around
///                           memory-resident values)
///   * hot adjacent pairs   (mul+add address math, add+ldx, add+mv, mv+jmp
///                           loop latches, ldx/stx+loadI, loadI+ldm/stx,
///                           loadI+loadI, ldm+add/mul, ldx+ldx, ldx+stx,
///                           stx+stx — chosen from the dynamic digram
///                           profile of the Table 1 corpus)
///   * 3-4 instr chains     (loadI+add+mv+jmp loop latches,
///                           loadI+ldm+mul+add spill address math,
///                           mul+add+ldx indexed loads, add+mv+jmp,
///                           ldg+loadI+add+stg global increments,
///                           ldg+cmp+cbr global tests — the hottest
///                           decoded-op adjacencies; component results
///                           that later components consume stay in host
///                           registers instead of round-tripping through
///                           the frame)
///
/// Fusion never changes observable behavior: fused ops still perform every
/// component's register write, charge every component's cycle and memory
/// counters at the same point the unfused sequence would, and report traps
/// with the component instruction's own linear PC. An instruction sequence
/// is only fused when no label can target its interior.
///
/// Fuel bookkeeping is hoisted out of the per-op path: SuffixCycles gives,
/// for every op, the cycle cost from it through its stretch's terminator
/// (branch/call/ret/halt). The engine debits that in bulk at each control
/// transfer; when the remaining budget cannot cover a stretch, the run is
/// guaranteed to end inside it, and execution falls back to the reference
/// switch engine for an exactly-per-instruction finish.
///
/// All decode storage lives in an Arena owned by the Interpreter: built
/// once per Interpreter, freed together, never touched by the global heap
/// during execution.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_INTERP_DECODE_H
#define RAP_INTERP_DECODE_H

#include "ir/IlocProgram.h"
#include "ir/Linearize.h"
#include "support/Arena.h"

#include <cstdint>

namespace rap::interp {

/// Decoded opcodes. The X-macro keeps the enum, the threaded engine's jump
/// table, and its switch fallback in one authoritative order.
#define RAP_DOP_LIST(X)                                                        \
  /* one-to-one translations of Opcode */                                      \
  X(LoadImm)                                                                   \
  X(Mv)                                                                        \
  X(Add)                                                                       \
  X(Sub)                                                                       \
  X(Mul)                                                                       \
  X(Div)                                                                       \
  X(Mod)                                                                       \
  X(Neg)                                                                       \
  X(And)                                                                       \
  X(Or)                                                                        \
  X(Not)                                                                       \
  X(FAdd)                                                                      \
  X(FSub)                                                                      \
  X(FMul)                                                                      \
  X(FDiv)                                                                      \
  X(FNeg)                                                                      \
  X(CmpEQ)                                                                     \
  X(CmpNE)                                                                     \
  X(CmpLT)                                                                     \
  X(CmpLE)                                                                     \
  X(CmpGT)                                                                     \
  X(CmpGE)                                                                     \
  X(I2F)                                                                       \
  X(F2I)                                                                       \
  X(LdSpill)                                                                   \
  X(StSpill)                                                                   \
  X(LdGlob)                                                                    \
  X(StGlob)                                                                    \
  X(LdIdx)                                                                     \
  X(StIdx)                                                                     \
  X(Jmp)                                                                       \
  X(Cbr)                                                                       \
  X(Call)                                                                      \
  X(BadCall) /* call whose arity mismatches: traps when executed */            \
  X(Ret)                                                                       \
  X(Halt)                                                                      \
  X(ImplicitRet) /* sentinel appended after the last op: fell off the end */   \
  /* superinstructions: cmp + cbr */                                           \
  X(CmpEQCbr)                                                                  \
  X(CmpNECbr)                                                                  \
  X(CmpLTCbr)                                                                  \
  X(CmpLECbr)                                                                  \
  X(CmpGTCbr)                                                                  \
  X(CmpGECbr)                                                                  \
  /* superinstructions: loadI + int op */                                      \
  X(LoadIAdd)                                                                  \
  X(LoadISub)                                                                  \
  X(LoadIMul)                                                                  \
  X(LoadIDiv)                                                                  \
  X(LoadIMod)                                                                  \
  /* superinstructions: ldm + int op + stm (spill triple) */                   \
  X(LdAddSt)                                                                   \
  X(LdSubSt)                                                                   \
  X(LdMulSt)                                                                   \
  /* superinstructions: loadI + cmp + cbr (bounded-loop back edges) */         \
  X(LoadICmpEQCbr)                                                             \
  X(LoadICmpNECbr)                                                             \
  X(LoadICmpLTCbr)                                                             \
  X(LoadICmpLECbr)                                                             \
  X(LoadICmpGTCbr)                                                             \
  X(LoadICmpGECbr)                                                             \
  /* superinstructions: hot adjacent pairs of the Table 1 corpus */            \
  X(MulAdd)      /* mul feeding one add operand (array address math) */        \
  X(AddLdIdx)    /* add feeding an indexed load's offset */                    \
  X(AddMv)       /* add, then any register copy */                             \
  X(MvJmp)       /* loop-latch copy + back edge; ends a stretch */             \
  X(LdIdxLoadI)  /* indexed load, then any immediate load */                   \
  X(LoadILdSpill) /* immediate load, then a spill reload */                    \
  X(LoadIStIdx)  /* immediate load, then an indexed store */                   \
  X(StIdxLoadI)  /* indexed store, then any immediate load */                  \
  X(LoadImm2)    /* two adjacent immediate loads */                            \
  X(LdSpillAdd)  /* spill reload, then an add */                               \
  X(LdSpillMul)  /* spill reload, then a mul */                                \
  /* superinstructions: longer chains; intermediates stay in host registers */ \
  X(LoadIAddMvJmp)     /* loop latch: i' = i + c ; i = i' ; jmp head */        \
  X(LoadILdSpillMulAdd) /* addr math: c * spilled ; + base */                  \
  X(MulAddLdIdx)       /* a[i*w + j] indexed load */                           \
  X(AddMvJmp)          /* add, copy, back edge; ends a stretch */              \
  X(LdGlobLoadIAddStGlob) /* global increment: g' = g + c */                   \
  X(LdGlobCmpLTCbr)    /* global load feeding a < test; ends a stretch */      \
  X(LdIdx2)            /* two adjacent indexed loads */                        \
  X(LdIdxStIdx)        /* indexed load, then indexed store */                  \
  X(StIdx2)            /* two adjacent indexed stores */

enum class DOp : uint8_t {
#define RAP_DOP_ENUM(N) N,
  RAP_DOP_LIST(RAP_DOP_ENUM)
#undef RAP_DOP_ENUM
};

/// Stable mnemonic ("cmp_lt_cbr", "ld_add_st", ...) for tests and dumps.
const char *dopName(DOp Op);

/// One decoded operation. Field roles by opcode (unlisted fields unused):
///
///   LoadImm        Dst; Aux = constant-pool index
///   unary ops      Dst, A
///   binary ops     Dst, A, B
///   LdSpill        Dst; X = slot          StSpill   A; X = slot
///   LdGlob         Dst; X = addr          StGlob    A; X = addr
///   LdIdx          Dst, A = index; X = addr
///   StIdx          A = index, B = value; X = addr
///   Jmp            Aux = target
///   Cbr            A = cond; Aux = true target, B = false target
///   Call           Dst = return dst; X = callee id; Aux = arg-pair offset,
///                  B = arg-pair count
///   BadCall        X = callee id; B = argument count (for the message)
///   Ret            A = value reg, or NoReg for void
///   CmpXXCbr       Dst, A, B (the compare); Aux = true target, X = false
///                  target
///   LoadIOpXX      Dst, A, B (the op); Aux = constant-pool index,
///                  X = the loadI's dst reg
///   LdOpStXX       Dst, A, B (the op); Aux = the ldm's dst reg,
///                  X = load slot, Y = store slot
///   LoadICmpXXCbr  Dst = cmp dst, A = non-constant cmp operand; Aux = true
///                  target, B = false target; X = the loadI's dst reg
///                  (holds the constant operand), Y = constant-pool index.
///                  Decode normalizes the constant to the right operand,
///                  mirroring the compare (LT<->GT, LE<->GE) when needed.
///   MulAdd         Dst = add dst; A, B = mul operands; X = mul dst,
///                  Y = the add's other operand
///   AddLdIdx       Dst = load dst; A, B = add operands; X = addr,
///                  Y = add dst (the load's offset)
///   AddMv          Dst = mv dst; A, B = add operands; X = add dst,
///                  Aux = mv src
///   MvJmp          Dst, A (the mv); Aux = target
///   LdIdxLoadI     Dst, A = index; X = addr; Y = loadI dst,
///                  Aux = constant-pool index
///   LoadILdSpill   Dst = ldm dst; X = slot; Y = loadI dst,
///                  Aux = constant-pool index
///   LoadIStIdx     A = index, B = value; X = addr; Y = loadI dst,
///                  Aux = constant-pool index
///   StIdxLoadI     A = index, B = value; X = addr; Y = loadI dst,
///                  Aux = constant-pool index
///   LoadImm2       Dst; Aux = constant-pool index (first load);
///                  Y = second dst, B = second constant-pool index
///   LdSpillOpXX    Dst, A, B (the op); Aux = the ldm's dst reg, X = slot
///   LoadIAddMvJmp  Aux = constant-pool index, X = loadI dst; A = the add's
///                  other operand (the add must use the loadI dst),
///                  Dst = add dst; Y = mv dst (mv src == add dst);
///                  B = jump target
///   LoadILdSpillMulAdd
///                  Aux = constant-pool index, X = loadI dst; B = spill
///                  slot, Z = ldm dst; Y = mul dst (mul operands are
///                  exactly {loadI dst, ldm dst}, which must differ);
///                  A = the add's other operand, Dst = add dst
///   MulAddLdIdx    A, B = mul operands, X = mul dst; Y = the add's other
///                  operand, Z = add dst (the load's offset); Aux = addr,
///                  Dst = load dst
///   AddMvJmp       A, B = add operands, X = add dst; Aux = mv src,
///                  Dst = mv dst; Z = jump target
///   LdGlobLoadIAddStGlob
///                  X = ldg address, Z = ldg dst; Aux = constant-pool
///                  index, Y = loadI dst; Dst = add dst (add operands are
///                  exactly {ldg dst, loadI dst}, which must differ);
///                  B = stg address (stg src == add dst)
///   LdGlobCmpLTCbr Y = ldg address, Z = ldg dst; Dst, A, B (the compare);
///                  Aux = true target, X = false target
///   LdIdx2         Dst, A (off), X (addr) = first load;
///                  Y, B (off), Aux (addr) = second load
///   LdIdxStIdx     Dst, A (off), X (addr) = the load;
///                  B (off), Z (value), Aux (addr) = the store
///   StIdx2         A (off), B (value), X (addr) = first store;
///                  Y (off), Z (value), Aux (addr) = second store
struct DecOp {
  DOp Op = DOp::Halt;
  /// Original instructions this op covers (1..4; 0 for the sentinel).
  uint8_t NumInstrs = 0;
  uint32_t Dst = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t Aux = 0;
  int32_t X = 0;
  int32_t Y = 0;
  /// Seventh operand field, used only by the four-instruction chains and
  /// MulAddLdIdx/AddMvJmp above.
  int32_t Z = 0;
  /// Linear position of the first covered instruction (== LinearCode size
  /// for the sentinel). Traps report LinPos + component index; the fuel
  /// bail-out resumes the reference engine here.
  uint32_t LinPos = 0;
  /// Cycle cost from this op through its stretch's terminator, inclusive.
  uint32_t SuffixCycles = 0;
};

/// One function in decoded form. All pointers live in the decode Arena.
struct DecodedFunc {
  const DecOp *Ops = nullptr;
  uint32_t NumOps = 0; ///< includes the ImplicitRet sentinel
  /// Interned LoadI/LoadF immediates (DecOp::Aux indexes).
  const RtValue *Consts = nullptr;
  /// Call argument marshalling plan: flattened (calleeReg, callerReg)
  /// pairs; params the callee never reads (NoReg) are already dropped.
  const uint32_t *ArgPairs = nullptr;
  /// Superinstructions emitted, by kind — decode-time telemetry for tests
  /// and the throughput harness.
  uint32_t FusedCmpCbr = 0;
  uint32_t FusedLoadIOp = 0;
  uint32_t FusedSpillTriple = 0;
  /// loadI+cmp+cbr triples, the two-op adjacent pairs, and the 3-4 instr
  /// chains, combined.
  uint32_t FusedPair = 0;
};

/// Decodes \p Code (the linearization of \p F under \p Prog) into \p A.
/// The program must outlive the decoded form; callee paramReg maps are
/// resolved at decode time, so the program must not be reallocated between
/// decoding and execution (the Interpreter's existing contract).
DecodedFunc decodeFunction(const IlocProgram &Prog, const IlocFunction &F,
                           const LinearCode &Code, Arena &A);

/// One cached function of the interpreter: the linearized stream (reference
/// engine, trap rendering) plus the decoded buffer (threaded engine) and
/// its frame-window geometry.
struct CachedFunc {
  const IlocFunction *F = nullptr;
  LinearCode Code;
  DecodedFunc Dec;
  /// Registers in a frame window (physical count once allocated).
  uint32_t RegCount = 0;
  /// Spill slots in a frame window; the window is RegCount + SpillCount
  /// cells, registers first.
  uint32_t SpillCount = 0;
};

} // namespace rap::interp

#endif // RAP_INTERP_DECODE_H
