//===- interp/Engine.h - Shared interpreter run state -----------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution state shared by the interpreter's two engines (DESIGN.md
/// §11): the direct-threaded engine that runs pre-decoded ops, and the
/// reference switch engine that walks the linearized instruction stream one
/// instruction at a time. Both operate on the same frame stack and cell
/// array, so the threaded engine can hand a run over to the reference engine
/// mid-flight (the fuel bail-out) and the result is indistinguishable from a
/// pure reference run.
///
/// Frames live in one contiguous cell stack: each activation owns the window
/// [Base, Base + RegCount + SpillCount) of Cells, registers first, spill
/// slots after. Pushing a frame zero-fills its window (the contract the
/// per-frame vectors of the original interpreter provided); any RtValue
/// pointer into Cells is invalidated by a push.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_INTERP_ENGINE_H
#define RAP_INTERP_ENGINE_H

#include "interp/Decode.h"
#include "interp/Interpreter.h"

#include <cstring>
#include <string>
#include <vector>

namespace rap::interp {

/// One activation record. PC is an index into the decoded op buffer while
/// the threaded engine is driving and into the linearized instruction stream
/// under the reference engine; the bail-out converts every stacked PC from
/// decoded to linear (DecOp::LinPos) before switching drivers.
struct Frame {
  int FuncId = -1;
  uint32_t PC = 0;
  uint32_t Base = 0;     ///< first cell of this frame's window
  Reg ReturnDst = NoReg; ///< caller register receiving the return value
};

/// Call stack depth cap: the StackOverflow trap threshold.
inline constexpr size_t MaxCallStack = 100000;

/// One run's mutable state plus the immutable program context it executes
/// against. Constructed per run() by the Interpreter; the engine entry
/// points drive it to completion and leave the outcome in Res.
struct Engine {
  const std::vector<CachedFunc> &Funcs;
  std::vector<RtValue> &Glob;
  const std::vector<int> &GlobalEnd;
  const uint64_t Fuel;
  const bool CollectPerFunction;

  std::vector<Frame> Stack;
  std::vector<RtValue> Cells;
  size_t CellTop = 0; ///< cells in use; Cells keeps its high-water size
  std::vector<ExecStats> PerF; ///< sized to Funcs when CollectPerFunction
  RunResult Res;

  /// Pushes a zero-initialized activation of \p FuncId. Invalidates cell
  /// pointers. The caller's resume PC must already be saved.
  ///
  /// The cell stack grows to its high-water mark once and stays there
  /// (popping only lowers CellTop), so in steady state a push is a memset
  /// of the window rather than a vector resize. The memset is sound:
  /// RtValue is trivially copyable and its all-zero-bytes pattern is
  /// exactly makeInt(0), the value the zero-fill contract requires.
  void pushFrame(int FuncId, Reg ReturnDst) {
    const CachedFunc &C = Funcs[FuncId];
    const size_t Win = static_cast<size_t>(C.RegCount) + C.SpillCount;
    Frame Fr;
    Fr.FuncId = FuncId;
    Fr.Base = static_cast<uint32_t>(CellTop);
    Fr.ReturnDst = ReturnDst;
    CellTop += Win;
    if (CellTop > Cells.size())
      Cells.resize(CellTop);
    std::memset(static_cast<void *>(Cells.data() + Fr.Base), 0,
                Win * sizeof(RtValue));
    Stack.push_back(Fr);
  }

  /// Runs pre-decoded ops with block-granular fuel checks; bails out to
  /// runSwitch() when the remaining budget cannot cover a stretch.
  void runThreaded();

  /// The reference engine: executes the linearized stream per instruction
  /// from the current state (frame PCs in linear coordinates) until the run
  /// completes or traps. Also the resumption target of the fuel bail-out.
  void runSwitch();

  /// Successful completion: publishes per-function stats in program order.
  void finish() {
    Res.Ok = true;
    for (size_t Id = 0; Id != PerF.size(); ++Id)
      if (PerF[Id].Cycles)
        Res.PerFunction.emplace_back(Funcs[Id].F->name(), PerF[Id]);
  }

  /// Trap at linear position \p LinPC of \p FuncId: mirrors the reference
  /// engine's error rendering exactly ("Msg (at 'instr')" plus structured
  /// TrapInfo).
  void fail(TrapKind Kind, int FuncId, uint32_t LinPC, const std::string &Msg) {
    const CachedFunc &C = Funcs[FuncId];
    Res.Ok = false;
    Res.Error = Msg + " (at '" + C.Code.Instrs[LinPC]->str() + "')";
    Res.TrapInfo.Kind = Kind;
    Res.TrapInfo.Detail = Msg;
    Res.TrapInfo.PC = LinPC;
    Res.TrapInfo.Function = C.F->name();
  }
};

} // namespace rap::interp

#endif // RAP_INTERP_ENGINE_H
