//===- interp/Decode.cpp - Pre-decoded ILOC for threaded dispatch ---------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "interp/Decode.h"

#include <cassert>
#include <type_traits>
#include <vector>

using namespace rap;
using namespace rap::interp;

const char *rap::interp::dopName(DOp Op) {
  switch (Op) {
  case DOp::LoadImm:
    return "load_imm";
  case DOp::Mv:
    return "mv";
  case DOp::Add:
    return "add";
  case DOp::Sub:
    return "sub";
  case DOp::Mul:
    return "mul";
  case DOp::Div:
    return "div";
  case DOp::Mod:
    return "mod";
  case DOp::Neg:
    return "neg";
  case DOp::And:
    return "and";
  case DOp::Or:
    return "or";
  case DOp::Not:
    return "not";
  case DOp::FAdd:
    return "fadd";
  case DOp::FSub:
    return "fsub";
  case DOp::FMul:
    return "fmul";
  case DOp::FDiv:
    return "fdiv";
  case DOp::FNeg:
    return "fneg";
  case DOp::CmpEQ:
    return "cmp_eq";
  case DOp::CmpNE:
    return "cmp_ne";
  case DOp::CmpLT:
    return "cmp_lt";
  case DOp::CmpLE:
    return "cmp_le";
  case DOp::CmpGT:
    return "cmp_gt";
  case DOp::CmpGE:
    return "cmp_ge";
  case DOp::I2F:
    return "i2f";
  case DOp::F2I:
    return "f2i";
  case DOp::LdSpill:
    return "ldm";
  case DOp::StSpill:
    return "stm";
  case DOp::LdGlob:
    return "ldg";
  case DOp::StGlob:
    return "stg";
  case DOp::LdIdx:
    return "ldx";
  case DOp::StIdx:
    return "stx";
  case DOp::Jmp:
    return "jmp";
  case DOp::Cbr:
    return "cbr";
  case DOp::Call:
    return "call";
  case DOp::BadCall:
    return "bad_call";
  case DOp::Ret:
    return "ret";
  case DOp::Halt:
    return "halt";
  case DOp::ImplicitRet:
    return "implicit_ret";
  case DOp::CmpEQCbr:
    return "cmp_eq_cbr";
  case DOp::CmpNECbr:
    return "cmp_ne_cbr";
  case DOp::CmpLTCbr:
    return "cmp_lt_cbr";
  case DOp::CmpLECbr:
    return "cmp_le_cbr";
  case DOp::CmpGTCbr:
    return "cmp_gt_cbr";
  case DOp::CmpGECbr:
    return "cmp_ge_cbr";
  case DOp::LoadIAdd:
    return "loadi_add";
  case DOp::LoadISub:
    return "loadi_sub";
  case DOp::LoadIMul:
    return "loadi_mul";
  case DOp::LoadIDiv:
    return "loadi_div";
  case DOp::LoadIMod:
    return "loadi_mod";
  case DOp::LdAddSt:
    return "ld_add_st";
  case DOp::LdSubSt:
    return "ld_sub_st";
  case DOp::LdMulSt:
    return "ld_mul_st";
  case DOp::LoadICmpEQCbr:
    return "loadi_cmp_eq_cbr";
  case DOp::LoadICmpNECbr:
    return "loadi_cmp_ne_cbr";
  case DOp::LoadICmpLTCbr:
    return "loadi_cmp_lt_cbr";
  case DOp::LoadICmpLECbr:
    return "loadi_cmp_le_cbr";
  case DOp::LoadICmpGTCbr:
    return "loadi_cmp_gt_cbr";
  case DOp::LoadICmpGECbr:
    return "loadi_cmp_ge_cbr";
  case DOp::MulAdd:
    return "mul_add";
  case DOp::AddLdIdx:
    return "add_ldx";
  case DOp::AddMv:
    return "add_mv";
  case DOp::MvJmp:
    return "mv_jmp";
  case DOp::LdIdxLoadI:
    return "ldx_loadi";
  case DOp::LoadILdSpill:
    return "loadi_ldm";
  case DOp::LoadIStIdx:
    return "loadi_stx";
  case DOp::StIdxLoadI:
    return "stx_loadi";
  case DOp::LoadImm2:
    return "loadi_loadi";
  case DOp::LdSpillAdd:
    return "ldm_add";
  case DOp::LdSpillMul:
    return "ldm_mul";
  case DOp::LoadIAddMvJmp:
    return "loadi_add_mv_jmp";
  case DOp::LoadILdSpillMulAdd:
    return "loadi_ldm_mul_add";
  case DOp::MulAddLdIdx:
    return "mul_add_ldx";
  case DOp::AddMvJmp:
    return "add_mv_jmp";
  case DOp::LdGlobLoadIAddStGlob:
    return "ldg_loadi_add_stg";
  case DOp::LdGlobCmpLTCbr:
    return "ldg_cmp_lt_cbr";
  case DOp::LdIdx2:
    return "ldx_ldx";
  case DOp::LdIdxStIdx:
    return "ldx_stx";
  case DOp::StIdx2:
    return "stx_stx";
  }
  return "unknown";
}

namespace {

/// True for decoded ops that end a fuel stretch: execution after them
/// resumes at an entry point where the engine re-checks the budget.
bool endsStretch(DOp Op) {
  switch (Op) {
  case DOp::Jmp:
  case DOp::Cbr:
  case DOp::Call:
  case DOp::BadCall:
  case DOp::Ret:
  case DOp::Halt:
  case DOp::ImplicitRet:
  case DOp::CmpEQCbr:
  case DOp::CmpNECbr:
  case DOp::CmpLTCbr:
  case DOp::CmpLECbr:
  case DOp::CmpGTCbr:
  case DOp::CmpGECbr:
  case DOp::LoadICmpEQCbr:
  case DOp::LoadICmpNECbr:
  case DOp::LoadICmpLTCbr:
  case DOp::LoadICmpLECbr:
  case DOp::LoadICmpGTCbr:
  case DOp::LoadICmpGECbr:
  case DOp::MvJmp:
  case DOp::LoadIAddMvJmp:
  case DOp::AddMvJmp:
  case DOp::LdGlobCmpLTCbr:
    return true;
  default:
    return false;
  }
}

/// loadI + cmp + cbr variant for a compare, with the constant operand
/// normalized to the right-hand side. \p Swapped selects the mirrored
/// compare for a constant that was on the left (a < b == b > a, so the
/// written predicate value is unchanged).
DOp loadICmpCbrFor(Opcode Op, bool Swapped) {
  switch (Op) {
  case Opcode::CmpEQ:
    return DOp::LoadICmpEQCbr;
  case Opcode::CmpNE:
    return DOp::LoadICmpNECbr;
  case Opcode::CmpLT:
    return Swapped ? DOp::LoadICmpGTCbr : DOp::LoadICmpLTCbr;
  case Opcode::CmpLE:
    return Swapped ? DOp::LoadICmpGECbr : DOp::LoadICmpLECbr;
  case Opcode::CmpGT:
    return Swapped ? DOp::LoadICmpLTCbr : DOp::LoadICmpGTCbr;
  case Opcode::CmpGE:
    return Swapped ? DOp::LoadICmpLECbr : DOp::LoadICmpGECbr;
  default:
    return DOp::Halt;
  }
}

/// Fused-compare variant of a compare opcode, or the plain translation.
DOp cmpCbrFor(Opcode Op) {
  switch (Op) {
  case Opcode::CmpEQ:
    return DOp::CmpEQCbr;
  case Opcode::CmpNE:
    return DOp::CmpNECbr;
  case Opcode::CmpLT:
    return DOp::CmpLTCbr;
  case Opcode::CmpLE:
    return DOp::CmpLECbr;
  case Opcode::CmpGT:
    return DOp::CmpGTCbr;
  case Opcode::CmpGE:
    return DOp::CmpGECbr;
  default:
    return DOp::Halt;
  }
}

bool isCompare(Opcode Op) {
  return Op == Opcode::CmpEQ || Op == Opcode::CmpNE || Op == Opcode::CmpLT ||
         Op == Opcode::CmpLE || Op == Opcode::CmpGT || Op == Opcode::CmpGE;
}

bool isIntBinOp(Opcode Op) {
  return Op == Opcode::Add || Op == Opcode::Sub || Op == Opcode::Mul ||
         Op == Opcode::Div || Op == Opcode::Mod;
}

DOp loadIOpFor(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return DOp::LoadIAdd;
  case Opcode::Sub:
    return DOp::LoadISub;
  case Opcode::Mul:
    return DOp::LoadIMul;
  case Opcode::Div:
    return DOp::LoadIDiv;
  case Opcode::Mod:
    return DOp::LoadIMod;
  default:
    return DOp::Halt;
  }
}

/// Spill triples fuse only non-trapping arithmetic, so the single possible
/// mid-superinstruction trap site stays the LoadIDiv/LoadIMod divide check.
DOp spillTripleFor(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return DOp::LdAddSt;
  case Opcode::Sub:
    return DOp::LdSubSt;
  case Opcode::Mul:
    return DOp::LdMulSt;
  default:
    return DOp::Halt;
  }
}

bool uses(const Instr *I, Reg R) {
  for (Reg S : I->Src)
    if (S == R)
      return true;
  return false;
}

/// LoadI and LoadF both decode to LoadImm; pair fusions that only shuttle
/// the interned constant accept either.
bool isImmLoad(Opcode Op) { return Op == Opcode::LoadI || Op == Opcode::LoadF; }

/// Converts a finished op's operand fields from indexes to byte offsets
/// (see the pre-scaling note in decodeFunction). Field roles per opcode are
/// documented on DecOp; every role except "shared with the reference
/// engine" and "global address" scales.
void scaleOffsets(DecOp &D) {
  // One stride fits registers, constant-pool entries, and spill slots (all
  // RtValue arrays); targets stride by decoded-op size.
  const auto Cell = [](auto &F) {
    F = static_cast<std::remove_reference_t<decltype(F)>>(
        F * sizeof(RtValue));
  };
  const auto R = Cell, C = Cell, S = Cell;
  const auto Tgt = [](auto &F) {
    F = static_cast<std::remove_reference_t<decltype(F)>>(F * sizeof(DecOp));
  };
  const auto T = Tgt;
  switch (D.Op) {
  case DOp::LoadImm:
    R(D.Dst);
    C(D.Aux);
    break;
  case DOp::Mv:
  case DOp::Neg:
  case DOp::Not:
  case DOp::FNeg:
  case DOp::I2F:
  case DOp::F2I:
    R(D.Dst);
    R(D.A);
    break;
  case DOp::Add:
  case DOp::Sub:
  case DOp::Mul:
  case DOp::Div:
  case DOp::Mod:
  case DOp::And:
  case DOp::Or:
  case DOp::FAdd:
  case DOp::FSub:
  case DOp::FMul:
  case DOp::FDiv:
  case DOp::CmpEQ:
  case DOp::CmpNE:
  case DOp::CmpLT:
  case DOp::CmpLE:
  case DOp::CmpGT:
  case DOp::CmpGE:
    R(D.Dst);
    R(D.A);
    R(D.B);
    break;
  case DOp::LdSpill:
    R(D.Dst);
    S(D.X);
    break;
  case DOp::StSpill:
    R(D.A);
    S(D.X);
    break;
  case DOp::LdGlob:
    R(D.Dst); // X is a global address: unscaled
    break;
  case DOp::StGlob:
    R(D.A);
    break;
  case DOp::LdIdx:
    R(D.Dst);
    R(D.A);
    break;
  case DOp::StIdx:
    R(D.A);
    R(D.B);
    break;
  case DOp::Jmp:
    T(D.Aux);
    break;
  case DOp::Cbr:
    R(D.A);
    T(D.Aux);
    T(D.B);
    break;
  case DOp::Call:
  case DOp::BadCall:
  case DOp::Ret:
  case DOp::Halt:
  case DOp::ImplicitRet:
    break; // shared with the reference engine / no register fields
  case DOp::CmpEQCbr:
  case DOp::CmpNECbr:
  case DOp::CmpLTCbr:
  case DOp::CmpLECbr:
  case DOp::CmpGTCbr:
  case DOp::CmpGECbr:
    R(D.Dst);
    R(D.A);
    R(D.B);
    T(D.Aux);
    T(D.X);
    break;
  case DOp::LoadIAdd:
  case DOp::LoadISub:
  case DOp::LoadIMul:
  case DOp::LoadIDiv:
  case DOp::LoadIMod:
    R(D.Dst);
    R(D.A);
    R(D.B);
    C(D.Aux);
    R(D.X);
    R(D.Y); // other-operand shortcut (add/mul); zero otherwise
    break;
  case DOp::LdAddSt:
  case DOp::LdSubSt:
  case DOp::LdMulSt:
    R(D.Dst);
    R(D.A);
    R(D.B);
    R(D.Aux);
    S(D.X);
    S(D.Y);
    break;
  case DOp::LoadICmpEQCbr:
  case DOp::LoadICmpNECbr:
  case DOp::LoadICmpLTCbr:
  case DOp::LoadICmpLECbr:
  case DOp::LoadICmpGTCbr:
  case DOp::LoadICmpGECbr:
    R(D.Dst);
    R(D.A);
    T(D.Aux);
    T(D.B);
    R(D.X);
    C(D.Y);
    break;
  case DOp::MulAdd:
    R(D.Dst);
    R(D.A);
    R(D.B);
    R(D.X);
    R(D.Y);
    break;
  case DOp::AddLdIdx:
    R(D.Dst);
    R(D.A);
    R(D.B);
    R(D.Y); // X is a global address: unscaled
    break;
  case DOp::AddMv:
    R(D.Dst);
    R(D.A);
    R(D.B);
    R(D.X);
    R(D.Aux);
    break;
  case DOp::MvJmp:
    R(D.Dst);
    R(D.A);
    T(D.Aux);
    break;
  case DOp::LdIdxLoadI:
    R(D.Dst);
    R(D.A);
    R(D.Y);
    C(D.Aux); // X is a global address: unscaled
    break;
  case DOp::LoadILdSpill:
    R(D.Dst);
    S(D.X);
    R(D.Y);
    C(D.Aux);
    break;
  case DOp::LoadIStIdx:
  case DOp::StIdxLoadI:
    R(D.A);
    R(D.B);
    R(D.Y);
    C(D.Aux); // X is a global address: unscaled
    break;
  case DOp::LoadImm2:
    R(D.Dst);
    C(D.Aux);
    R(D.Y);
    C(D.B);
    break;
  case DOp::LdSpillAdd:
  case DOp::LdSpillMul:
    R(D.Dst);
    R(D.A);
    R(D.B);
    R(D.Aux);
    S(D.X);
    break;
  case DOp::LoadIAddMvJmp:
    R(D.Dst);
    R(D.A);
    C(D.Aux);
    R(D.X);
    R(D.Y);
    T(D.B);
    break;
  case DOp::LoadILdSpillMulAdd:
    R(D.Dst);
    R(D.A);
    C(D.Aux);
    R(D.X);
    R(D.Y);
    R(D.Z);
    S(D.B);
    break;
  case DOp::MulAddLdIdx:
    R(D.Dst);
    R(D.A);
    R(D.B);
    R(D.X);
    R(D.Y);
    R(D.Z); // Aux is a global address: unscaled
    break;
  case DOp::AddMvJmp:
    R(D.Dst);
    R(D.A);
    R(D.B);
    R(D.X);
    R(D.Aux);
    T(D.Z);
    break;
  case DOp::LdGlobLoadIAddStGlob:
    R(D.Dst);
    C(D.Aux);
    R(D.Y);
    R(D.Z); // X, B are global addresses: unscaled
    break;
  case DOp::LdGlobCmpLTCbr:
    R(D.Dst);
    R(D.A);
    R(D.B);
    T(D.Aux);
    T(D.X);
    R(D.Z); // Y is a global address: unscaled
    break;
  case DOp::LdIdx2:
    R(D.Dst);
    R(D.A);
    R(D.Y);
    R(D.B); // X, Aux are global addresses: unscaled
    break;
  case DOp::LdIdxStIdx:
    R(D.Dst);
    R(D.A);
    R(D.B);
    R(D.Z); // X, Aux are global addresses: unscaled
    break;
  case DOp::StIdx2:
    R(D.A);
    R(D.B);
    R(D.Y);
    R(D.Z); // X, Aux are global addresses: unscaled
    break;
  }
}

DOp directFor(Opcode Op) {
  switch (Op) {
  case Opcode::LoadI:
  case Opcode::LoadF:
    return DOp::LoadImm;
  case Opcode::Mv:
    return DOp::Mv;
  case Opcode::Add:
    return DOp::Add;
  case Opcode::Sub:
    return DOp::Sub;
  case Opcode::Mul:
    return DOp::Mul;
  case Opcode::Div:
    return DOp::Div;
  case Opcode::Mod:
    return DOp::Mod;
  case Opcode::Neg:
    return DOp::Neg;
  case Opcode::And:
    return DOp::And;
  case Opcode::Or:
    return DOp::Or;
  case Opcode::Not:
    return DOp::Not;
  case Opcode::FAdd:
    return DOp::FAdd;
  case Opcode::FSub:
    return DOp::FSub;
  case Opcode::FMul:
    return DOp::FMul;
  case Opcode::FDiv:
    return DOp::FDiv;
  case Opcode::FNeg:
    return DOp::FNeg;
  case Opcode::CmpEQ:
    return DOp::CmpEQ;
  case Opcode::CmpNE:
    return DOp::CmpNE;
  case Opcode::CmpLT:
    return DOp::CmpLT;
  case Opcode::CmpLE:
    return DOp::CmpLE;
  case Opcode::CmpGT:
    return DOp::CmpGT;
  case Opcode::CmpGE:
    return DOp::CmpGE;
  case Opcode::I2F:
    return DOp::I2F;
  case Opcode::F2I:
    return DOp::F2I;
  case Opcode::LdSpill:
    return DOp::LdSpill;
  case Opcode::StSpill:
    return DOp::StSpill;
  case Opcode::LdGlob:
    return DOp::LdGlob;
  case Opcode::StGlob:
    return DOp::StGlob;
  case Opcode::LdIdx:
    return DOp::LdIdx;
  case Opcode::StIdx:
    return DOp::StIdx;
  case Opcode::Jmp:
    return DOp::Jmp;
  case Opcode::Cbr:
    return DOp::Cbr;
  case Opcode::Call:
    return DOp::Call;
  case Opcode::Ret:
    return DOp::Ret;
  case Opcode::Halt:
    return DOp::Halt;
  }
  return DOp::Halt;
}

} // namespace

DecodedFunc rap::interp::decodeFunction(const IlocProgram &Prog,
                                        const IlocFunction &F,
                                        const LinearCode &Code, Arena &A) {
  (void)F; // callee lookups go through Prog; F documents the contract
  const size_t N = Code.Instrs.size();

  // Positions a label can transfer control to. Fusion must not swallow one
  // into a superinstruction's interior, or the branch would have no decoded
  // op to land on.
  std::vector<uint8_t> IsTarget(N + 1, 0);
  for (unsigned P : Code.LabelPos)
    IsTarget[P] = 1;

  std::vector<DecOp> Ops;
  Ops.reserve(N + 1);
  std::vector<RtValue> Consts;
  std::vector<uint32_t> ArgPairs;
  // Linear position -> decoded index, defined at superinstruction starts
  // (every label target is one, since fusion skips claimed interiors).
  constexpr uint32_t NotAStart = ~uint32_t(0);
  std::vector<uint32_t> Lin2Dec(N + 1, NotAStart);

  DecodedFunc Out;

  auto internConst = [&](const RtValue &V) {
    Consts.push_back(V);
    return static_cast<uint32_t>(Consts.size() - 1);
  };

  size_t I = 0;
  while (I < N) {
    Lin2Dec[I] = static_cast<uint32_t>(Ops.size());
    const Instr *In = Code.Instrs[I];
    DecOp D;
    D.LinPos = static_cast<uint32_t>(I);

    // ldm a, s1 ; a op b -> d ; stm s2, d  — the allocator's spill triple.
    if (I + 2 < N && In->Op == Opcode::LdSpill && !IsTarget[I + 1] &&
        !IsTarget[I + 2]) {
      const Instr *OpI = Code.Instrs[I + 1];
      const Instr *St = Code.Instrs[I + 2];
      if (spillTripleFor(OpI->Op) != DOp::Halt && uses(OpI, In->Dst) &&
          St->Op == Opcode::StSpill && St->Src[0] == OpI->Dst) {
        D.Op = spillTripleFor(OpI->Op);
        D.NumInstrs = 3;
        D.Dst = OpI->Dst;
        D.A = OpI->Src[0];
        D.B = OpI->Src[1];
        D.Aux = In->Dst;
        D.X = In->Slot;
        D.Y = St->Slot;
        ++Out.FusedSpillTriple;
        Ops.push_back(D);
        I += 3;
        continue;
      }
    }

    // cmp a, b -> d ; cbr d, Lt, Lf — every structured predicate's shape.
    if (I + 1 < N && isCompare(In->Op) && !IsTarget[I + 1]) {
      const Instr *Br = Code.Instrs[I + 1];
      if (Br->Op == Opcode::Cbr && Br->Src[0] == In->Dst) {
        D.Op = cmpCbrFor(In->Op);
        D.NumInstrs = 2;
        D.Dst = In->Dst;
        D.A = In->Src[0];
        D.B = In->Src[1];
        D.Aux = static_cast<uint32_t>(Br->Label0); // remapped below
        D.X = Br->Label1;                          // remapped below
        ++Out.FusedCmpCbr;
        Ops.push_back(D);
        I += 2;
        continue;
      }
    }

    // loadI c -> t ; cmp a, b -> d with t in {a, b} ; cbr d, Lt, Lf — the
    // exit test of every constant-bounded loop. The constant operand is
    // normalized to the right-hand side, mirroring the compare when it was
    // on the left (the predicate value is unchanged).
    if (I + 2 < N && isImmLoad(In->Op) && !IsTarget[I + 1] &&
        !IsTarget[I + 2]) {
      const Instr *Cm = Code.Instrs[I + 1];
      const Instr *Br = Code.Instrs[I + 2];
      if (isCompare(Cm->Op) && uses(Cm, In->Dst) && Br->Op == Opcode::Cbr &&
          Br->Src[0] == Cm->Dst) {
        const bool Swapped = Cm->Src[1] != In->Dst;
        D.Op = loadICmpCbrFor(Cm->Op, Swapped);
        D.NumInstrs = 3;
        D.Dst = Cm->Dst;
        D.A = Swapped ? Cm->Src[1] : Cm->Src[0];
        D.Aux = static_cast<uint32_t>(Br->Label0); // remapped below
        D.B = static_cast<uint32_t>(Br->Label1);   // remapped below
        D.X = static_cast<int32_t>(In->Dst);
        D.Y = static_cast<int32_t>(internConst(In->Imm));
        ++Out.FusedPair;
        Ops.push_back(D);
        I += 3;
        continue;
      }
    }

    // Four-instruction chains, tried before their two-op prefixes. These
    // are the hottest decoded-op adjacencies of the Table 1 corpus; fusing
    // them lets intermediate results flow through host registers instead of
    // being stored to and immediately reloaded from the frame.

    // loadI c -> t ; add with t -> d ; mv d -> y ; jmp L — the canonical
    // counted-loop latch (i = i + c; back edge).
    if (I + 3 < N && In->Op == Opcode::LoadI && !IsTarget[I + 1] &&
        !IsTarget[I + 2] && !IsTarget[I + 3]) {
      const Instr *Ad = Code.Instrs[I + 1];
      const Instr *Cp = Code.Instrs[I + 2];
      const Instr *Br = Code.Instrs[I + 3];
      if (Ad->Op == Opcode::Add && uses(Ad, In->Dst) &&
          Cp->Op == Opcode::Mv && Cp->Src[0] == Ad->Dst &&
          Br->Op == Opcode::Jmp) {
        D.Op = DOp::LoadIAddMvJmp;
        D.NumInstrs = 4;
        D.Aux = internConst(In->Imm);
        D.X = static_cast<int32_t>(In->Dst);
        D.A = Ad->Src[0] == In->Dst ? Ad->Src[1] : Ad->Src[0];
        D.Dst = Ad->Dst;
        D.Y = static_cast<int32_t>(Cp->Dst);
        D.B = static_cast<uint32_t>(Br->Label0); // remapped below
        ++Out.FusedPair;
        Ops.push_back(D);
        I += 4;
        continue;
      }
    }

    // loadI c -> t1 ; ldm s -> t2 ; mul t1, t2 -> m ; add with m -> d —
    // address math over a spilled induction variable. The mul must consume
    // exactly the two freshly defined values (and they must be distinct
    // registers) so the handler can multiply in host registers.
    if (I + 3 < N && In->Op == Opcode::LoadI && !IsTarget[I + 1] &&
        !IsTarget[I + 2] && !IsTarget[I + 3]) {
      const Instr *Ld = Code.Instrs[I + 1];
      const Instr *Ml = Code.Instrs[I + 2];
      const Instr *Ad = Code.Instrs[I + 3];
      if (Ld->Op == Opcode::LdSpill && Ld->Dst != In->Dst &&
          Ml->Op == Opcode::Mul &&
          ((Ml->Src[0] == In->Dst && Ml->Src[1] == Ld->Dst) ||
           (Ml->Src[0] == Ld->Dst && Ml->Src[1] == In->Dst)) &&
          Ad->Op == Opcode::Add && uses(Ad, Ml->Dst)) {
        D.Op = DOp::LoadILdSpillMulAdd;
        D.NumInstrs = 4;
        D.Aux = internConst(In->Imm);
        D.X = static_cast<int32_t>(In->Dst);
        D.B = Ld->Slot;
        D.Z = static_cast<int32_t>(Ld->Dst);
        D.Y = static_cast<int32_t>(Ml->Dst);
        D.A = Ad->Src[0] == Ml->Dst ? Ad->Src[1] : Ad->Src[0];
        D.Dst = Ad->Dst;
        ++Out.FusedPair;
        Ops.push_back(D);
        I += 4;
        continue;
      }
    }

    // ldg g -> t1 ; loadI c -> t2 ; add t1, t2 -> d ; stg d -> g2 —
    // the read-modify-write of a global counter (g2 is usually g, but the
    // handler does not need that). The add must consume exactly the two
    // freshly defined values, which must be distinct registers.
    if (I + 3 < N && In->Op == Opcode::LdGlob && !IsTarget[I + 1] &&
        !IsTarget[I + 2] && !IsTarget[I + 3]) {
      const Instr *Li = Code.Instrs[I + 1];
      const Instr *Ad = Code.Instrs[I + 2];
      const Instr *St = Code.Instrs[I + 3];
      if (Li->Op == Opcode::LoadI && Li->Dst != In->Dst &&
          Ad->Op == Opcode::Add &&
          ((Ad->Src[0] == In->Dst && Ad->Src[1] == Li->Dst) ||
           (Ad->Src[0] == Li->Dst && Ad->Src[1] == In->Dst)) &&
          St->Op == Opcode::StGlob && St->Src[0] == Ad->Dst) {
        D.Op = DOp::LdGlobLoadIAddStGlob;
        D.NumInstrs = 4;
        D.X = In->Addr;
        D.Z = static_cast<int32_t>(In->Dst);
        D.Aux = internConst(Li->Imm);
        D.Y = static_cast<int32_t>(Li->Dst);
        D.Dst = Ad->Dst;
        D.B = static_cast<uint32_t>(St->Addr);
        ++Out.FusedPair;
        Ops.push_back(D);
        I += 4;
        continue;
      }
    }

    // ldg g -> t ; cmp_LT a, b -> d ; cbr d, Lt, Lf — a global bound read
    // straight into a loop or guard test.
    if (I + 2 < N && In->Op == Opcode::LdGlob && !IsTarget[I + 1] &&
        !IsTarget[I + 2]) {
      const Instr *Cm = Code.Instrs[I + 1];
      const Instr *Br = Code.Instrs[I + 2];
      if (Cm->Op == Opcode::CmpLT && Br->Op == Opcode::Cbr &&
          Br->Src[0] == Cm->Dst) {
        D.Op = DOp::LdGlobCmpLTCbr;
        D.NumInstrs = 3;
        D.Y = In->Addr;
        D.Z = static_cast<int32_t>(In->Dst);
        D.Dst = Cm->Dst;
        D.A = Cm->Src[0];
        D.B = Cm->Src[1];
        D.Aux = static_cast<uint32_t>(Br->Label0); // remapped below
        D.X = Br->Label1;                          // remapped below
        ++Out.FusedPair;
        Ops.push_back(D);
        I += 3;
        continue;
      }
    }

    // mul a, b -> m ; add with m -> t ; ldx addr(t) -> d — a[i*w + j].
    if (I + 2 < N && In->Op == Opcode::Mul && !IsTarget[I + 1] &&
        !IsTarget[I + 2]) {
      const Instr *Ad = Code.Instrs[I + 1];
      const Instr *Ld = Code.Instrs[I + 2];
      if (Ad->Op == Opcode::Add && uses(Ad, In->Dst) &&
          Ld->Op == Opcode::LdIdx && Ld->Src[0] == Ad->Dst) {
        D.Op = DOp::MulAddLdIdx;
        D.NumInstrs = 3;
        D.A = In->Src[0];
        D.B = In->Src[1];
        D.X = static_cast<int32_t>(In->Dst);
        D.Y = static_cast<int32_t>(Ad->Src[0] == In->Dst ? Ad->Src[1]
                                                         : Ad->Src[0]);
        D.Z = static_cast<int32_t>(Ad->Dst);
        D.Aux = static_cast<uint32_t>(Ld->Addr);
        D.Dst = Ld->Dst;
        ++Out.FusedPair;
        Ops.push_back(D);
        I += 3;
        continue;
      }
    }

    // add a, b -> t ; mv s -> d ; jmp L — latch shapes whose copy source
    // need not be the add (both writes happen in original order).
    if (I + 2 < N && In->Op == Opcode::Add && !IsTarget[I + 1] &&
        !IsTarget[I + 2]) {
      const Instr *Cp = Code.Instrs[I + 1];
      const Instr *Br = Code.Instrs[I + 2];
      if (Cp->Op == Opcode::Mv && Br->Op == Opcode::Jmp) {
        D.Op = DOp::AddMvJmp;
        D.NumInstrs = 3;
        D.A = In->Src[0];
        D.B = In->Src[1];
        D.X = static_cast<int32_t>(In->Dst);
        D.Aux = Cp->Src[0];
        D.Dst = Cp->Dst;
        D.Z = static_cast<int32_t>(Br->Label0); // remapped below
        ++Out.FusedPair;
        Ops.push_back(D);
        I += 3;
        continue;
      }
    }

    // loadI c -> t ; a op b -> d with t in {a, b}.
    if (I + 1 < N && In->Op == Opcode::LoadI && !IsTarget[I + 1]) {
      const Instr *OpI = Code.Instrs[I + 1];
      if (isIntBinOp(OpI->Op) && uses(OpI, In->Dst)) {
        D.Op = loadIOpFor(OpI->Op);
        D.NumInstrs = 2;
        D.Dst = OpI->Dst;
        D.A = OpI->Src[0];
        D.B = OpI->Src[1];
        D.Aux = internConst(In->Imm);
        D.X = static_cast<int32_t>(In->Dst);
        // Add and mul commute, so their handlers can consume the constant
        // straight from the pool; record the other operand for them.
        if (OpI->Op == Opcode::Add || OpI->Op == Opcode::Mul)
          D.Y = static_cast<int32_t>(OpI->Src[0] == In->Dst ? OpI->Src[1]
                                                            : OpI->Src[0]);
        ++Out.FusedLoadIOp;
        Ops.push_back(D);
        I += 2;
        continue;
      }
    }

    // Hot adjacent pairs from the dynamic digram profile of the Table 1
    // corpus (address arithmetic feeding indexed memory ops, loop-latch
    // copies, immediate loads next to memory ops). Beyond the data
    // dependences noted per pattern, adjacency is the only requirement:
    // each fused handler performs both components' writes in original
    // order, so independent neighbors fuse too.
    if (I + 1 < N && !IsTarget[I + 1]) {
      const Instr *Nx = Code.Instrs[I + 1];
      bool Fused = true;
      if (In->Op == Opcode::Mul && Nx->Op == Opcode::Add &&
          uses(Nx, In->Dst)) {
        // mul a, b -> m ; add with m as one operand (add commutes, so only
        // the other operand is recorded).
        D.Op = DOp::MulAdd;
        D.Dst = Nx->Dst;
        D.A = In->Src[0];
        D.B = In->Src[1];
        D.X = static_cast<int32_t>(In->Dst);
        D.Y = static_cast<int32_t>(Nx->Src[0] == In->Dst ? Nx->Src[1]
                                                         : Nx->Src[0]);
      } else if (In->Op == Opcode::Add && Nx->Op == Opcode::LdIdx &&
                 Nx->Src[0] == In->Dst) {
        // add a, b -> t ; ldx addr(t) -> d — indexed-load address math.
        D.Op = DOp::AddLdIdx;
        D.Dst = Nx->Dst;
        D.A = In->Src[0];
        D.B = In->Src[1];
        D.X = Nx->Addr;
        D.Y = static_cast<int32_t>(In->Dst);
      } else if (In->Op == Opcode::Add && Nx->Op == Opcode::Mv) {
        D.Op = DOp::AddMv;
        D.Dst = Nx->Dst;
        D.A = In->Src[0];
        D.B = In->Src[1];
        D.X = static_cast<int32_t>(In->Dst);
        D.Aux = Nx->Src[0];
      } else if (In->Op == Opcode::Mv && Nx->Op == Opcode::Jmp) {
        D.Op = DOp::MvJmp;
        D.Dst = In->Dst;
        D.A = In->Src[0];
        D.Aux = static_cast<uint32_t>(Nx->Label0); // remapped below
      } else if (In->Op == Opcode::LdIdx && isImmLoad(Nx->Op)) {
        D.Op = DOp::LdIdxLoadI;
        D.Dst = In->Dst;
        D.A = In->Src[0];
        D.X = In->Addr;
        D.Y = static_cast<int32_t>(Nx->Dst);
        D.Aux = internConst(Nx->Imm);
      } else if (isImmLoad(In->Op) && Nx->Op == Opcode::LdSpill) {
        D.Op = DOp::LoadILdSpill;
        D.Dst = Nx->Dst;
        D.X = Nx->Slot;
        D.Y = static_cast<int32_t>(In->Dst);
        D.Aux = internConst(In->Imm);
      } else if (isImmLoad(In->Op) && Nx->Op == Opcode::StIdx) {
        D.Op = DOp::LoadIStIdx;
        D.A = Nx->Src[0];
        D.B = Nx->Src[1];
        D.X = Nx->Addr;
        D.Y = static_cast<int32_t>(In->Dst);
        D.Aux = internConst(In->Imm);
      } else if (In->Op == Opcode::StIdx && isImmLoad(Nx->Op)) {
        D.Op = DOp::StIdxLoadI;
        D.A = In->Src[0];
        D.B = In->Src[1];
        D.X = In->Addr;
        D.Y = static_cast<int32_t>(Nx->Dst);
        D.Aux = internConst(Nx->Imm);
      } else if (isImmLoad(In->Op) && isImmLoad(Nx->Op)) {
        D.Op = DOp::LoadImm2;
        D.Dst = In->Dst;
        D.Aux = internConst(In->Imm);
        D.Y = static_cast<int32_t>(Nx->Dst);
        D.B = internConst(Nx->Imm);
      } else if (In->Op == Opcode::LdSpill &&
                 (Nx->Op == Opcode::Add || Nx->Op == Opcode::Mul)) {
        // Spill reload next to the arithmetic it usually feeds (falls out
        // of the triple pattern when no store follows).
        D.Op = Nx->Op == Opcode::Add ? DOp::LdSpillAdd : DOp::LdSpillMul;
        D.Dst = Nx->Dst;
        D.A = Nx->Src[0];
        D.B = Nx->Src[1];
        D.Aux = In->Dst;
        D.X = In->Slot;
      } else if (In->Op == Opcode::LdIdx && Nx->Op == Opcode::LdIdx) {
        // Back-to-back indexed memory ops: unrolled array reads/writes and
        // element swaps. The second op's operands are read after the first
        // op's writes, so dependent neighbors are handled naturally.
        D.Op = DOp::LdIdx2;
        D.Dst = In->Dst;
        D.A = In->Src[0];
        D.X = In->Addr;
        D.Y = static_cast<int32_t>(Nx->Dst);
        D.B = Nx->Src[0];
        D.Aux = static_cast<uint32_t>(Nx->Addr);
      } else if (In->Op == Opcode::LdIdx && Nx->Op == Opcode::StIdx) {
        D.Op = DOp::LdIdxStIdx;
        D.Dst = In->Dst;
        D.A = In->Src[0];
        D.X = In->Addr;
        D.B = Nx->Src[0];
        D.Z = static_cast<int32_t>(Nx->Src[1]);
        D.Aux = static_cast<uint32_t>(Nx->Addr);
      } else if (In->Op == Opcode::StIdx && Nx->Op == Opcode::StIdx) {
        D.Op = DOp::StIdx2;
        D.A = In->Src[0];
        D.B = In->Src[1];
        D.X = In->Addr;
        D.Y = static_cast<int32_t>(Nx->Src[0]);
        D.Z = static_cast<int32_t>(Nx->Src[1]);
        D.Aux = static_cast<uint32_t>(Nx->Addr);
      } else {
        Fused = false;
      }
      if (Fused) {
        D.NumInstrs = 2;
        ++Out.FusedPair;
        Ops.push_back(D);
        I += 2;
        continue;
      }
    }

    // One-to-one translation.
    D.Op = directFor(In->Op);
    D.NumInstrs = 1;
    switch (In->Op) {
    case Opcode::LoadI:
    case Opcode::LoadF:
      D.Dst = In->Dst;
      D.Aux = internConst(In->Imm);
      break;
    case Opcode::Mv:
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::FNeg:
    case Opcode::I2F:
    case Opcode::F2I:
      D.Dst = In->Dst;
      D.A = In->Src[0];
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::CmpEQ:
    case Opcode::CmpNE:
    case Opcode::CmpLT:
    case Opcode::CmpLE:
    case Opcode::CmpGT:
    case Opcode::CmpGE:
      D.Dst = In->Dst;
      D.A = In->Src[0];
      D.B = In->Src[1];
      break;
    case Opcode::LdSpill:
      D.Dst = In->Dst;
      D.X = In->Slot;
      break;
    case Opcode::StSpill:
      D.A = In->Src[0];
      D.X = In->Slot;
      break;
    case Opcode::LdGlob:
      D.Dst = In->Dst;
      D.X = In->Addr;
      break;
    case Opcode::StGlob:
      D.A = In->Src[0];
      D.X = In->Addr;
      break;
    case Opcode::LdIdx:
      D.Dst = In->Dst;
      D.A = In->Src[0];
      D.X = In->Addr;
      break;
    case Opcode::StIdx:
      D.A = In->Src[0];
      D.B = In->Src[1];
      D.X = In->Addr;
      break;
    case Opcode::Jmp:
      D.Aux = static_cast<uint32_t>(In->Label0); // remapped below
      break;
    case Opcode::Cbr:
      D.A = In->Src[0];
      D.Aux = static_cast<uint32_t>(In->Label0); // remapped below
      D.B = static_cast<uint32_t>(In->Label1);   // remapped below
      break;
    case Opcode::Call: {
      const IlocFunction *Callee = Prog.functions()[In->Callee].get();
      if (In->Src.size() != Callee->numParams()) {
        // Arity mismatch is decided statically; the decoded op traps when
        // (and only when) the call actually executes.
        D.Op = DOp::BadCall;
        D.X = In->Callee;
        D.B = static_cast<uint32_t>(In->Src.size());
        break;
      }
      D.Dst = In->Dst;
      D.X = In->Callee;
      D.Aux = static_cast<uint32_t>(ArgPairs.size());
      uint32_t Pairs = 0;
      for (unsigned Arg = 0; Arg != In->Src.size(); ++Arg) {
        // NoReg marks a parameter the callee never reads; writing it anyway
        // would clobber whichever live register the allocator reused.
        Reg PR = Callee->paramReg(Arg);
        if (PR == NoReg)
          continue;
        ArgPairs.push_back(PR);
        ArgPairs.push_back(In->Src[Arg]);
        ++Pairs;
      }
      D.B = Pairs;
      break;
    }
    case Opcode::Ret:
      D.A = In->Src.empty() ? NoReg : In->Src[0];
      break;
    case Opcode::Halt:
      break;
    }
    Ops.push_back(D);
    ++I;
  }

  // Sentinel: control that reaches the end of the stream (fall-through or a
  // label bound past the last instruction) performs a free implicit return.
  Lin2Dec[N] = static_cast<uint32_t>(Ops.size());
  {
    DecOp D;
    D.Op = DOp::ImplicitRet;
    D.NumInstrs = 0;
    D.LinPos = static_cast<uint32_t>(N);
    Ops.push_back(D);
  }

  // Remap label ids to decoded indices now that every start is known.
  auto decTarget = [&](uint32_t Label) {
    unsigned Lin = Code.LabelPos[Label];
    assert(Lin2Dec[Lin] != NotAStart && "label targets a fused interior");
    return Lin2Dec[Lin];
  };
  for (DecOp &D : Ops) {
    switch (D.Op) {
    case DOp::Jmp:
      D.Aux = decTarget(D.Aux);
      break;
    case DOp::Cbr:
      D.Aux = decTarget(D.Aux);
      D.B = decTarget(D.B);
      break;
    case DOp::CmpEQCbr:
    case DOp::CmpNECbr:
    case DOp::CmpLTCbr:
    case DOp::CmpLECbr:
    case DOp::CmpGTCbr:
    case DOp::CmpGECbr:
      D.Aux = decTarget(D.Aux);
      D.X = static_cast<int32_t>(decTarget(static_cast<uint32_t>(D.X)));
      break;
    case DOp::LoadICmpEQCbr:
    case DOp::LoadICmpNECbr:
    case DOp::LoadICmpLTCbr:
    case DOp::LoadICmpLECbr:
    case DOp::LoadICmpGTCbr:
    case DOp::LoadICmpGECbr:
      D.Aux = decTarget(D.Aux);
      D.B = decTarget(D.B);
      break;
    case DOp::MvJmp:
      D.Aux = decTarget(D.Aux);
      break;
    case DOp::LoadIAddMvJmp:
      D.B = decTarget(D.B);
      break;
    case DOp::AddMvJmp:
      D.Z = static_cast<int32_t>(decTarget(static_cast<uint32_t>(D.Z)));
      break;
    case DOp::LdGlobCmpLTCbr:
      D.Aux = decTarget(D.Aux);
      D.X = static_cast<int32_t>(decTarget(static_cast<uint32_t>(D.X)));
      break;
    default:
      break;
    }
  }

  // Cycle cost from each op through its stretch's terminator, computed
  // backwards. The sentinel costs nothing (implicit returns are free).
  uint32_t Suffix = 0;
  for (size_t K = Ops.size(); K-- != 0;) {
    DecOp &D = Ops[K];
    if (endsStretch(D.Op))
      Suffix = D.NumInstrs;
    else
      Suffix += D.NumInstrs;
    D.SuffixCycles = Suffix;
  }

  // Final representation: pre-scale operand fields to byte offsets so the
  // engine's operand accesses need no shift on the address path. Register
  // and constant-pool indexes become offsets into the frame window / pool
  // (x sizeof(RtValue)), spill slots likewise, and control-flow targets
  // become byte offsets into the op buffer (x sizeof(DecOp)). Fields the
  // reference engine shares (Call's return dst, Ret's value reg with its
  // NoReg sentinel, global addresses, ArgPairs) stay plain indexes.
  for (DecOp &D : Ops)
    scaleOffsets(D);

  Out.NumOps = static_cast<uint32_t>(Ops.size());
  Out.Ops = A.copy(Ops.data(), Ops.size());
  Out.Consts = Consts.empty() ? nullptr : A.copy(Consts.data(), Consts.size());
  Out.ArgPairs =
      ArgPairs.empty() ? nullptr : A.copy(ArgPairs.data(), ArgPairs.size());
  return Out;
}
