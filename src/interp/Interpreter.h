//===- interp/Interpreter.h - ILOC interpreter ------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an IlocProgram and counts executed cycles, loads, stores, and
/// copies — the measurements behind the paper's Table 1 ("An iloc
/// interpreter is used to count the number of cycles required to execute the
/// code. For this study, we assume that each instruction takes one cycle.").
///
/// Each activation gets its own register window (virtual registers before
/// allocation, k physical registers after) and frame-local spill area, so
/// recursion works and spill slots cannot alias across activations. Calls
/// and returns cost one cycle each; argument marshalling is free, identical
/// for both allocators (see DESIGN.md, "Calls").
///
/// Two execution engines share one observable behavior (DESIGN.md §11):
///
///   * Threaded (default): each function is pre-decoded once into a flat
///     buffer of resolved ops with fused superinstructions, dispatched via
///     computed goto where the toolchain supports it (a portable switch
///     otherwise), with fuel checked per basic-block stretch.
///   * Switch: the original one-instruction-at-a-time reference engine over
///     the linearized stream. It is the differential-testing oracle, the
///     benchmark baseline, and the fallback the threaded engine hands a run
///     to when the fuel budget nears exhaustion.
///
/// Cycle counts, traps, fuel semantics, and telemetry are identical between
/// the two — asserted over the fuzz corpus by the differential test.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_INTERP_INTERPRETER_H
#define RAP_INTERP_INTERPRETER_H

#include "ir/IlocProgram.h"
#include "ir/Linearize.h"
#include "support/Arena.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rap {

namespace interp {
struct CachedFunc;
struct Engine;
} // namespace interp

/// Dynamic execution counters (Table 1 raw data).
struct ExecStats {
  uint64_t Cycles = 0;
  uint64_t Loads = 0;       ///< executed ldm/ldg/ldx
  uint64_t Stores = 0;      ///< executed stm/stg/stx
  uint64_t SpillLoads = 0;  ///< executed ldm only
  uint64_t SpillStores = 0; ///< executed stm only
  uint64_t Copies = 0;      ///< executed mv
  uint64_t Calls = 0;
  uint64_t MaxCallDepth = 0;
};

/// Structured classification of interpreter failures. Every abnormal stop
/// is one of these kinds; the names are stable strings that tests, the
/// fuzzer's differential oracle, and repro artifacts key on (a renamed kind
/// is a silent signature change — treat the list as an ABI).
enum class TrapKind {
  None,          ///< run completed (or has not failed yet)
  DivideByZero,  ///< integer or float division/modulo by zero
  OutOfBounds,   ///< array load/store outside its global's extent
  FuelExhausted, ///< instruction budget hit: non-terminating program
  StackOverflow, ///< call depth exceeded the frame cap
  NoEntry,       ///< entry function missing or taking parameters
  BadCall,       ///< call arity does not match the callee (malformed IR)
};

/// Stable machine-readable name ("div-by-zero", "fuel-exhausted", ...).
const char *trapKindName(TrapKind Kind);

/// One structured trap: what happened, where (pc within the function's
/// linearized code, plus the function), and a human-readable detail.
struct Trap {
  TrapKind Kind = TrapKind::None;
  uint64_t PC = 0;          ///< index into the linearized code
  std::string Function;     ///< function executing at the trap
  std::string Detail;       ///< e.g. "integer division by zero"

  /// "kind @function+pc: detail" — the rendering used in errors and repro
  /// artifacts.
  std::string str() const;
};

struct RunResult {
  bool Ok = false;
  std::string Error; ///< set when !Ok (e.g. "division by zero at ...")
  /// Structured counterpart of Error: Kind != None exactly when !Ok after a
  /// run (compile-level failures reported through compileAndRun leave it
  /// None and use Error alone).
  Trap TrapInfo;
  RtValue ReturnValue;
  ExecStats Stats;
  /// Per-function breakdown of Stats, in program order, one entry per
  /// function that executed at least one cycle. Only filled when the run
  /// was asked to collect it; MaxCallDepth is program-wide and stays 0
  /// in the per-function entries.
  std::vector<std::pair<std::string, ExecStats>> PerFunction;
};

/// Which execution engine drives a run. Threaded and Switch are observably
/// identical; Switch exists as oracle, baseline, and bail-out target.
enum class DispatchKind {
  Threaded, ///< pre-decoded ops, superinstructions, block-granular fuel
  Switch,   ///< per-instruction reference engine over the linearized stream
};

/// Process default: Switch when the environment sets RAP_INTERP=switch,
/// Threaded otherwise (including RAP_INTERP=threaded and unset).
DispatchKind defaultInterpDispatch();

/// Per-interpreter configuration. The default engine follows RAP_INTERP so
/// the whole test suite can be forced onto the reference engine without
/// touching call sites (the CI switch-fallback job does exactly that).
struct InterpOptions {
  DispatchKind Dispatch = defaultInterpDispatch();
};

class Interpreter {
public:
  /// Caches a linearization of every function — and, for the threaded
  /// engine, a pre-decoded form resolved against the program's current
  /// register assignment — so the program must not be mutated while the
  /// interpreter is alive.
  explicit Interpreter(const IlocProgram &Prog, InterpOptions Opts = {});
  ~Interpreter();

  /// Runs \p Entry (default "main", which must take no parameters) on
  /// zero-initialized global memory. \p Fuel bounds the number of executed
  /// instructions to catch runaway programs. With \p CollectPerFunction the
  /// result also carries a per-function counter breakdown (costs one extra
  /// branch per executed instruction; off by default).
  RunResult run(const std::string &Entry = "main",
                uint64_t Fuel = 500'000'000,
                bool CollectPerFunction = false);

  /// Global memory after the last run (for tests inspecting results).
  const std::vector<RtValue> &globalMemory() const { return Glob; }

  /// The engine selected at construction.
  DispatchKind dispatch() const { return Dispatch; }

  /// Superinstructions fused across all functions, by kind — decode
  /// telemetry for tests and the throughput harness (zero under Switch,
  /// which never decodes).
  uint64_t fusedCmpCbr() const;
  uint64_t fusedLoadIOp() const;
  uint64_t fusedSpillTriples() const;
  /// loadI+cmp+cbr triples plus the adjacent-pair superinstructions.
  uint64_t fusedPairs() const;

  /// Bytes of decoded-op storage held by the decode arena.
  size_t decodeBytes() const { return DecodeArena.bytesAllocated(); }

  /// Static count of decoded ops with mnemonic \p Name ("mul_add_ldx",
  /// "loadi_cmp_lt_cbr", ...) across all functions — lets tests assert a
  /// source pattern actually decoded to the superinstruction under test.
  /// Zero under Switch, which never decodes.
  uint64_t decodedOpCount(const char *Name) const;

private:
  const IlocProgram &Prog;
  DispatchKind Dispatch;
  Arena DecodeArena; ///< owns every decoded buffer; freed with *this
  std::vector<interp::CachedFunc> Funcs;
  std::vector<RtValue> Glob;
  /// For strict array bounds checks: end address of the global that starts
  /// at a given cell address; -1 if the address is not a global's base.
  std::vector<int> GlobalEnd;
};

} // namespace rap

#endif // RAP_INTERP_INTERPRETER_H
