//===- ir/Clone.cpp - Deep function cloning ---------------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/Clone.h"

namespace rap {
namespace {

class Cloner {
public:
  explicit Cloner(const IlocFunction &F)
      : Src(F), Out(std::make_unique<IlocFunction>(F.name())) {
    Out->setNumParams(F.numParams());
    Out->setReturnType(F.returnType());
    while (Out->numVRegs() < F.numVRegs())
      Out->newVReg();
    while (Out->numLabels() < F.numLabels())
      Out->newLabel();
    while (Out->numSpillSlots() < F.numSpillSlots())
      Out->newSpillSlot();
  }

  std::unique_ptr<IlocFunction> run() {
    Out->setRoot(cloneNode(Src.root(), nullptr));
    if (Src.isAllocated()) {
      std::vector<Reg> ParamRegs;
      for (unsigned P = 0; P != Src.numParams(); ++P)
        ParamRegs.push_back(Src.paramReg(P));
      Out->setParamRegs(std::move(ParamRegs));
      Out->setAllocated(Src.numPhysRegs());
    }
    return std::move(Out);
  }

private:
  Instr *cloneInstr(const Instr *I) {
    if (!I)
      return nullptr;
    Instr *N = Out->createInstr(I->Op);
    N->Dst = I->Dst;
    N->Src = I->Src;
    N->Imm = I->Imm;
    N->Slot = I->Slot;
    N->Addr = I->Addr;
    N->Label0 = I->Label0;
    N->Label1 = I->Label1;
    N->Callee = I->Callee;
    N->LinPos = I->LinPos;
    return N;
  }

  PdgNode *cloneNode(const PdgNode *N, PdgNode *Parent) {
    if (!N)
      return nullptr;
    PdgNode *C = Out->createNode(N->kind());
    C->Parent = Parent;
    C->IsLoop = N->IsLoop;
    C->TrueLabel = N->TrueLabel;
    C->FalseLabel = N->FalseLabel;
    C->JoinLabel = N->JoinLabel;
    C->LinBegin = N->LinBegin;
    C->LinEnd = N->LinEnd;
    C->Code.reserve(N->Code.size());
    for (const Instr *I : N->Code)
      C->Code.push_back(cloneInstr(I));
    C->Branch = cloneInstr(N->Branch);
    C->Jump = cloneInstr(N->Jump);
    C->TrueRegion = cloneNode(N->TrueRegion, C);
    C->FalseRegion = cloneNode(N->FalseRegion, C);
    C->Children.reserve(N->Children.size());
    for (const PdgNode *Child : N->Children)
      C->Children.push_back(cloneNode(Child, C));
    return C;
  }

  const IlocFunction &Src;
  std::unique_ptr<IlocFunction> Out;
};

} // namespace

std::unique_ptr<IlocFunction> cloneFunction(const IlocFunction &F) {
  return Cloner(F).run();
}

} // namespace rap
