//===- ir/RegionTree.cpp - PDG region hierarchy ---------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/RegionTree.h"

using namespace rap;

std::vector<Instr *> PdgNode::parentCode() const {
  assert(isRegion() && "parentCode is a region query");
  std::vector<Instr *> Out;
  for (const PdgNode *C : Children) {
    if (C->isStatement()) {
      Out.insert(Out.end(), C->Code.begin(), C->Code.end());
      continue;
    }
    if (C->isPredicate()) {
      Out.insert(Out.end(), C->Code.begin(), C->Code.end());
      if (C->Branch)
        Out.push_back(C->Branch);
    }
  }
  return Out;
}

std::vector<PdgNode *> PdgNode::subregions() const {
  assert(isRegion() && "subregions is a region query");
  std::vector<PdgNode *> Out;
  for (const PdgNode *C : Children) {
    if (C->isRegion()) {
      Out.push_back(const_cast<PdgNode *>(C));
      continue;
    }
    if (C->isPredicate()) {
      if (C->TrueRegion)
        Out.push_back(C->TrueRegion);
      if (C->FalseRegion)
        Out.push_back(C->FalseRegion);
    }
  }
  return Out;
}
