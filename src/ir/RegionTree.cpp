//===- ir/RegionTree.cpp - PDG region hierarchy ---------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/RegionTree.h"

using namespace rap;

std::vector<Instr *> PdgNode::parentCode() const {
  assert(isRegion() && "parentCode is a region query");
  std::vector<Instr *> Out;
  for (const PdgNode *C : Children) {
    if (C->isStatement()) {
      Out.insert(Out.end(), C->Code.begin(), C->Code.end());
      continue;
    }
    if (C->isPredicate()) {
      Out.insert(Out.end(), C->Code.begin(), C->Code.end());
      if (C->Branch)
        Out.push_back(C->Branch);
    }
  }
  return Out;
}

std::vector<PdgNode *> PdgNode::subregions() const {
  assert(isRegion() && "subregions is a region query");
  std::vector<PdgNode *> Out;
  for (const PdgNode *C : Children) {
    if (C->isRegion()) {
      Out.push_back(const_cast<PdgNode *>(C));
      continue;
    }
    if (C->isPredicate()) {
      if (C->TrueRegion)
        Out.push_back(C->TrueRegion);
      if (C->FalseRegion)
        Out.push_back(C->FalseRegion);
    }
  }
  return Out;
}

void PdgNode::forEachInstr(const std::function<void(Instr *)> &Fn) const {
  switch (Kind) {
  case PdgNodeKind::Statement:
    for (Instr *I : Code)
      Fn(I);
    return;
  case PdgNodeKind::Predicate:
    for (Instr *I : Code)
      Fn(I);
    if (Branch)
      Fn(Branch);
    if (TrueRegion)
      TrueRegion->forEachInstr(Fn);
    if (Jump)
      Fn(Jump);
    if (FalseRegion)
      FalseRegion->forEachInstr(Fn);
    return;
  case PdgNodeKind::Region:
    for (const PdgNode *C : Children)
      C->forEachInstr(Fn);
    return;
  }
}

void PdgNode::forEachNode(
    const std::function<void(const PdgNode *)> &Fn) const {
  Fn(this);
  if (isPredicate()) {
    if (TrueRegion)
      TrueRegion->forEachNode(Fn);
    if (FalseRegion)
      FalseRegion->forEachNode(Fn);
    return;
  }
  for (const PdgNode *C : Children)
    C->forEachNode(Fn);
}
