//===- ir/Instr.h - ILOC instruction ----------------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One ILOC instruction. Instructions are arena-allocated by IlocFunction
/// and referenced by pointer from the PDG region tree; the same objects are
/// shared by the linearized instruction stream, so analyses attach facts by
/// instruction identity.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_IR_INSTR_H
#define RAP_IR_INSTR_H

#include "ir/Opcode.h"
#include "ir/RtValue.h"
#include "support/SmallVector.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rap {

/// A register operand. Before allocation these are virtual registers
/// (unbounded); after PhysicalRewrite they are physical registers 0..k-1.
using Reg = uint32_t;

/// Sentinel for "no register" (e.g. the Dst of a store).
inline constexpr Reg NoReg = ~Reg(0);

/// Operand list with two inline slots: everything but calls fits without a
/// heap allocation, so creating an instruction never touches the allocator
/// on the lowering and spill-rewrite hot paths.
using RegList = SmallVector<Reg, 2>;

struct Instr {
  /// Unique id within the owning function; stable across code edits.
  unsigned Id = 0;

  Opcode Op = Opcode::Halt;

  /// Defined register, or NoReg when the instruction defines nothing.
  Reg Dst = NoReg;

  /// Used registers, in operand order. For Call this is the argument list.
  RegList Src;

  /// Immediate for LoadI/LoadF.
  RtValue Imm;

  /// Spill slot for LdSpill/StSpill.
  int Slot = -1;

  /// Global address for LdGlob/StGlob and the base address for LdIdx/StIdx.
  int Addr = -1;

  /// Branch targets: Jmp uses Label0; Cbr uses Label0 (true) and Label1
  /// (false).
  int Label0 = -1;
  int Label1 = -1;

  /// Callee function index for Call.
  int Callee = -1;

  /// Position in the most recent linearization (maintained by Linearize).
  unsigned LinPos = 0;

  bool hasDef() const { return Dst != NoReg; }

  /// Renders the instruction in ILOC-flavoured text, e.g.
  /// "%3 = add %1, %2" or "stm s2, %4".
  std::string str() const;
};

} // namespace rap

#endif // RAP_IR_INSTR_H
