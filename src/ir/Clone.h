//===- ir/Clone.h - Deep function cloning -----------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-copies an IlocFunction: fresh instruction and node arenas, an
/// isomorphic region tree, and identical register/label/spill-slot
/// namespaces. The clone is behaviorally indistinguishable from the
/// original (same linearized code text, same allocation decisions), which
/// is what lets the fault-isolated driver snapshot a function before a
/// risky allocation attempt and restore the pristine body for the
/// spill-everything fallback.
///
/// Instruction and node ids are renumbered in tree order; nothing
/// downstream depends on the specific id values (CodeEditor rebuilds its
/// owner map per function, analyses key on position or pointer identity).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_IR_CLONE_H
#define RAP_IR_CLONE_H

#include "ir/IlocFunction.h"

#include <memory>

namespace rap {

/// Returns a deep copy of \p F. Callee indices of Call instructions are
/// preserved verbatim (they index the owning program's function table).
std::unique_ptr<IlocFunction> cloneFunction(const IlocFunction &F);

} // namespace rap

#endif // RAP_IR_CLONE_H
