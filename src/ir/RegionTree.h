//===- ir/RegionTree.h - PDG region hierarchy -------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hierarchical control-region structure of the PDG (paper §2.2 and
/// Figure 1). Nodes are region nodes, predicate nodes, and statement nodes
/// carrying ILOC code — the same shape pdgcc produced. The region tree is
/// both the allocation structure RAP walks and the code container that the
/// linearizer serializes back into executable ILOC.
///
/// A *region* (paper terminology) is a region node plus all of its control
/// dependence successors; the *parent region* is the topmost region node.
/// parentCode() returns the intermediate code attached at the parent level
/// (statement leaves and predicate condition code that are direct children);
/// subregions() returns the child region nodes, including the branch arms
/// hanging off direct predicate children.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_IR_REGIONTREE_H
#define RAP_IR_REGIONTREE_H

#include "ir/Instr.h"

#include <cassert>
#include <functional>
#include <vector>

namespace rap {

enum class PdgNodeKind {
  Region,    ///< groups children executed under the same control conditions
  Predicate, ///< an if or loop condition with controlled branch regions
  Statement, ///< a leaf holding straight-line ILOC code
};

class PdgNode {
public:
  explicit PdgNode(PdgNodeKind Kind) : Kind(Kind) {}

  PdgNodeKind kind() const { return Kind; }
  bool isRegion() const { return Kind == PdgNodeKind::Region; }
  bool isPredicate() const { return Kind == PdgNodeKind::Predicate; }
  bool isStatement() const { return Kind == PdgNodeKind::Statement; }

  /// Stable id for printing/DOT (assigned by IlocFunction).
  int Id = -1;

  PdgNode *Parent = nullptr;

  //===------------------------------------------------------------------===//
  // Statement leaves and predicate condition code.
  //===------------------------------------------------------------------===//

  /// Straight-line ILOC: a statement's code, or a predicate's condition
  /// computation (excluding the branch itself).
  std::vector<Instr *> Code;

  //===------------------------------------------------------------------===//
  // Predicate nodes.
  //===------------------------------------------------------------------===//

  /// The conditional branch consuming the condition value. Owned here so the
  /// branch's register use participates in liveness and allocation.
  Instr *Branch = nullptr;

  /// Unconditional jump emitted at the end of the true arm of an if with an
  /// else arm (jump to the join point), or the loop back edge jump for a
  /// loop predicate.
  Instr *Jump = nullptr;

  PdgNode *TrueRegion = nullptr;
  PdgNode *FalseRegion = nullptr;

  /// Labels used when linearizing this predicate.
  int TrueLabel = -1;
  int FalseLabel = -1;
  int JoinLabel = -1; ///< if: join point; loop: the loop head

  //===------------------------------------------------------------------===//
  // Region nodes.
  //===------------------------------------------------------------------===//

  std::vector<PdgNode *> Children;

  /// True for the topmost region node of a loop (Figure 1's R2). Children
  /// before the predicate child linearize before the loop head (the paper's
  /// pre-loop spill node position); children after it linearize after the
  /// loop exit (the post-loop spill node position).
  bool IsLoop = false;

  //===------------------------------------------------------------------===//
  // Linearization bookkeeping (maintained by Linearize).
  //===------------------------------------------------------------------===//

  /// Linear index range [LinBegin, LinEnd) covered by this subtree.
  unsigned LinBegin = 0;
  unsigned LinEnd = 0;

  //===------------------------------------------------------------------===//
  // Structure queries.
  //===------------------------------------------------------------------===//

  /// Index of the predicate child of a loop region.
  unsigned loopPredicateIndex() const {
    assert(isRegion() && IsLoop && "not a loop region");
    for (unsigned I = 0, E = Children.size(); I != E; ++I)
      if (Children[I]->isPredicate())
        return I;
    assert(false && "loop region without predicate child");
    return 0;
  }

  /// The intermediate code attached directly at this region's level:
  /// statement leaves and predicate condition code + branch, in order.
  std::vector<Instr *> parentCode() const;

  /// The child regions of this region, including branch arms of direct
  /// predicate children.
  std::vector<PdgNode *> subregions() const;

  /// Visits every instruction in the subtree rooted here, in linear order.
  /// Templated (not std::function) so the per-instruction callback inlines —
  /// this runs inside the allocator's graph-build inner loop.
  template <typename FnT> void forEachInstr(FnT &&Fn) const {
    switch (Kind) {
    case PdgNodeKind::Statement:
      for (Instr *I : Code)
        Fn(I);
      return;
    case PdgNodeKind::Predicate:
      for (Instr *I : Code)
        Fn(I);
      if (Branch)
        Fn(Branch);
      if (TrueRegion)
        TrueRegion->forEachInstr(Fn);
      if (Jump)
        Fn(Jump);
      if (FalseRegion)
        FalseRegion->forEachInstr(Fn);
      return;
    case PdgNodeKind::Region:
      for (const PdgNode *C : Children)
        C->forEachInstr(Fn);
      return;
    }
  }

  /// Visits every node in the subtree (preorder), including this node.
  template <typename FnT> void forEachNode(FnT &&Fn) const {
    Fn(this);
    if (isPredicate()) {
      if (TrueRegion)
        TrueRegion->forEachNode(Fn);
      if (FalseRegion)
        FalseRegion->forEachNode(Fn);
      return;
    }
    for (const PdgNode *C : Children)
      C->forEachNode(Fn);
  }

private:
  PdgNodeKind Kind;
};

} // namespace rap

#endif // RAP_IR_REGIONTREE_H
