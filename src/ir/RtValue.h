//===- ir/RtValue.h - Tagged runtime value ----------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tagged 64-bit value (integer or floating point) used both for ILOC
/// immediates and as the register/memory cell type of the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_IR_RTVALUE_H
#define RAP_IR_RTVALUE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace rap {

/// A value held in a register or memory cell: either a 64-bit integer or a
/// double. ILOC opcodes are typed, so the tag is an assertion aid more than
/// a dispatch mechanism (comparisons are the one polymorphic case).
class RtValue {
public:
  RtValue() : IsFloat(false), I(0) {}
  static RtValue makeInt(int64_t V) {
    RtValue R;
    R.IsFloat = false;
    R.I = V;
    return R;
  }
  static RtValue makeFloat(double V) {
    RtValue R;
    R.IsFloat = true;
    R.F = V;
    return R;
  }

  bool isFloat() const { return IsFloat; }

  int64_t asInt() const {
    assert(!IsFloat && "integer read of float value");
    return I;
  }
  double asFloat() const {
    assert(IsFloat && "float read of integer value");
    return F;
  }

  /// Numeric view used by polymorphic comparisons.
  double asNumber() const { return IsFloat ? F : static_cast<double>(I); }

  /// Unchecked reads for the threaded interpreter's hot path, where the
  /// program is known well-typed (MiniC is statically typed, so a register
  /// read with the wrong tag cannot occur in type-checked input) and the
  /// tag assertion per operand read would dominate the dispatch loop.
  int64_t rawInt() const { return I; }
  double rawFloat() const { return F; }

  bool operator==(const RtValue &O) const {
    if (IsFloat != O.IsFloat)
      return false;
    return IsFloat ? F == O.F : I == O.I;
  }
  bool operator!=(const RtValue &O) const { return !(*this == O); }

  std::string str() const {
    return IsFloat ? std::to_string(F) : std::to_string(I);
  }

private:
  bool IsFloat;
  union {
    int64_t I;
    double F;
  };
};

} // namespace rap

#endif // RAP_IR_RTVALUE_H
