//===- ir/Opcode.h - ILOC opcodes and traits --------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opcode set of our ILOC dialect. It mirrors the Rice ILOC flavour used
/// by the paper: a load/store architecture with unlimited virtual registers,
/// direct spill loads/stores (the paper's ldm/stm), register copies (mv), and
/// one-cycle instructions.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_IR_OPCODE_H
#define RAP_IR_OPCODE_H

namespace rap {

enum class Opcode {
  // Immediates and copies.
  LoadI, ///< Dst = integer immediate
  LoadF, ///< Dst = float immediate
  Mv,    ///< Dst = Src0 (register copy; the "copy statements" of Table 1)

  // Integer arithmetic.
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Neg,
  And, ///< logical and over 0/1 integers
  Or,  ///< logical or over 0/1 integers
  Not, ///< logical not over 0/1 integers

  // Floating-point arithmetic.
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,

  // Comparisons (result is integer 0/1; operands may be int or float).
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,

  // Conversions.
  I2F,
  F2I,

  // Spill memory (frame-local slots; the paper's "ldm r2, 20" / "stm 20, r2").
  LdSpill, ///< Dst = spill[Slot]
  StSpill, ///< spill[Slot] = Src0

  // Global memory (scalars and arrays).
  LdGlob, ///< Dst = glob[Addr]
  StGlob, ///< glob[Addr] = Src0
  LdIdx,  ///< Dst = glob[Addr + Src0]
  StIdx,  ///< glob[Addr + Src0] = Src1

  // Control flow.
  Jmp,  ///< goto Label0
  Cbr,  ///< if Src0 != 0 goto Label0 else goto Label1
  Call, ///< Dst = Callee(Src...)   (Dst may be absent for void calls)
  Ret,  ///< return Src0 (Src empty for void return)
  Halt, ///< terminate program (end of main)
};

/// Returns a stable mnemonic for printing.
const char *opcodeName(Opcode Op);

/// Returns true if \p Op reads from memory (spill or global). These are the
/// executions counted in the "ld" column of Table 1.
inline bool isLoadOpcode(Opcode Op) {
  return Op == Opcode::LdSpill || Op == Opcode::LdGlob || Op == Opcode::LdIdx;
}

/// Returns true if \p Op writes to memory. Counted in the "st" column.
inline bool isStoreOpcode(Opcode Op) {
  return Op == Opcode::StSpill || Op == Opcode::StGlob || Op == Opcode::StIdx;
}

/// Returns true for transfers of control.
inline bool isBranchOpcode(Opcode Op) {
  return Op == Opcode::Jmp || Op == Opcode::Cbr || Op == Opcode::Ret ||
         Op == Opcode::Halt;
}

} // namespace rap

#endif // RAP_IR_OPCODE_H
