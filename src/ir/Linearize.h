//===- ir/Linearize.h - Region tree serialization ---------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a function's region tree into the executable linear ILOC
/// stream: condition code followed by conditional branches, loop back edges,
/// and join fall-throughs. Labels are not instructions — they resolve to
/// positions in the stream — so every entry costs exactly one cycle, matching
/// the paper's interpreter model.
///
/// Linearization also records, for every PDG node, the linear range
/// [LinBegin, LinEnd) its subtree occupies. Because structured regions are
/// single-entry and fall through to their successor, region entry liveness is
/// the liveness before LinBegin and region exit liveness is the liveness
/// before LinEnd.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_IR_LINEARIZE_H
#define RAP_IR_LINEARIZE_H

#include "ir/IlocFunction.h"

#include <string>
#include <vector>

namespace rap {

/// The serialized form of one function. Valid until the next code edit.
struct LinearCode {
  /// Real instructions only (no label pseudo-entries).
  std::vector<Instr *> Instrs;

  /// Label id -> index in Instrs the label refers to (may equal
  /// Instrs.size() for a label at the end of the function).
  std::vector<unsigned> LabelPos;

  std::string str() const;
};

/// Linearizes \p F's region tree. Updates Instr::LinPos and the LinBegin /
/// LinEnd range of every node as a side effect.
LinearCode linearize(IlocFunction &F);

/// Linearizes into \p Out, reusing its vectors' capacity. The allocators
/// relinearize after every spill round; threading the previous round's
/// LinearCode through here keeps that loop free of heap churn.
void linearize(IlocFunction &F, LinearCode &Out);

} // namespace rap

#endif // RAP_IR_LINEARIZE_H
