//===- ir/Linearize.cpp - Region tree serialization -----------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/Linearize.h"

#include <cassert>

using namespace rap;

namespace {

class Linearizer {
public:
  Linearizer(IlocFunction &F, LinearCode &Out) : F(F), Out(Out) {
    Out.Instrs.clear();
    Out.LabelPos.assign(F.numLabels(), 0);
  }

  void run() {
    assert(F.root() && "function has no region tree");
    emitNode(F.root());
    for (unsigned I = 0, E = Out.Instrs.size(); I != E; ++I)
      Out.Instrs[I]->LinPos = I;
  }

private:
  void append(Instr *I) { Out.Instrs.push_back(I); }

  void bind(int Label) {
    assert(Label >= 0 && static_cast<unsigned>(Label) < Out.LabelPos.size() &&
           "label out of range");
    Out.LabelPos[Label] = static_cast<unsigned>(Out.Instrs.size());
  }

  void emitNode(PdgNode *N) {
    N->LinBegin = static_cast<unsigned>(Out.Instrs.size());
    switch (N->kind()) {
    case PdgNodeKind::Statement:
      for (Instr *I : N->Code)
        append(I);
      break;
    case PdgNodeKind::Predicate:
      emitPredicate(N);
      break;
    case PdgNodeKind::Region:
      emitRegion(N);
      break;
    }
    N->LinEnd = static_cast<unsigned>(Out.Instrs.size());
  }

  void emitRegion(PdgNode *R) {
    if (!R->IsLoop) {
      for (PdgNode *C : R->Children)
        emitNode(C);
      return;
    }
    // Loop region: pre-loop children, then the loop head (predicate), then
    // post-loop children. The back edge jumps to the loop head label, which
    // binds at the predicate, so pre-loop spill nodes execute once.
    unsigned PredIdx = R->loopPredicateIndex();
    for (unsigned I = 0; I != PredIdx; ++I)
      emitNode(R->Children[I]);
    emitNode(R->Children[PredIdx]);
    for (unsigned I = PredIdx + 1, E = R->Children.size(); I != E; ++I)
      emitNode(R->Children[I]);
  }

  void emitPredicate(PdgNode *P) {
    assert(P->Branch && "predicate without branch");
    bool IsLoop = P->Parent && P->Parent->isRegion() && P->Parent->IsLoop;
    if (IsLoop) {
      // JoinLabel is the loop head.
      bind(P->JoinLabel);
      for (Instr *I : P->Code)
        append(I);
      append(P->Branch);
      bind(P->TrueLabel);
      emitNode(P->TrueRegion);
      assert(P->Jump && "loop predicate without back edge");
      append(P->Jump); // jmp JoinLabel
      bind(P->FalseLabel);
      return;
    }
    // If / if-else.
    for (Instr *I : P->Code)
      append(I);
    append(P->Branch);
    bind(P->TrueLabel);
    emitNode(P->TrueRegion);
    if (P->FalseRegion) {
      assert(P->Jump && "if-else without join jump");
      append(P->Jump); // jmp JoinLabel
      bind(P->FalseLabel);
      emitNode(P->FalseRegion);
      bind(P->JoinLabel);
    } else {
      bind(P->FalseLabel);
    }
  }

  IlocFunction &F;
  LinearCode &Out;
};

} // namespace

LinearCode rap::linearize(IlocFunction &F) {
  LinearCode Out;
  Linearizer(F, Out).run();
  return Out;
}

void rap::linearize(IlocFunction &F, LinearCode &Out) {
  Linearizer(F, Out).run();
}
