//===- ir/IlocFunction.h - Function container -------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function: an arena of ILOC instructions and PDG nodes, a virtual
/// register namespace, spill slots, labels, and the root region node. Code
/// is generated assuming an infinite number of virtual registers (paper §3);
/// register allocation rewrites it in place.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_IR_ILOCFUNCTION_H
#define RAP_IR_ILOCFUNCTION_H

#include "ir/Instr.h"
#include "ir/RegionTree.h"

#include <deque>
#include <string>

namespace rap {

/// Scalar value categories in MiniC and ILOC.
enum class TypeKind { Int, Float, Void };

class IlocFunction {
public:
  explicit IlocFunction(std::string Name) : Name(std::move(Name)) {}

  IlocFunction(const IlocFunction &) = delete;
  IlocFunction &operator=(const IlocFunction &) = delete;

  const std::string &name() const { return Name; }

  //===------------------------------------------------------------------===//
  // Signature.
  //===------------------------------------------------------------------===//

  /// Parameters occupy virtual registers 0..numParams()-1 on entry.
  unsigned numParams() const { return NumParams; }
  void setNumParams(unsigned N) { NumParams = N; }

  /// The register that receives parameter \p I on entry: virtual register I
  /// before allocation, the physical register its live range was colored
  /// with afterwards (set by PhysicalRewrite). NoReg after allocation means
  /// the callee never reads the parameter; callers must not write the
  /// argument anywhere (the register would belong to someone else).
  Reg paramReg(unsigned I) const {
    return ParamRegs.empty() ? I : ParamRegs[I];
  }
  void setParamRegs(std::vector<Reg> Regs) { ParamRegs = std::move(Regs); }

  TypeKind returnType() const { return RetType; }
  void setReturnType(TypeKind T) { RetType = T; }

  //===------------------------------------------------------------------===//
  // Namespaces.
  //===------------------------------------------------------------------===//

  Reg newVReg() { return NextVReg++; }
  unsigned numVRegs() const { return NextVReg; }

  int newLabel() { return NumLabels++; }
  int numLabels() const { return NumLabels; }

  int newSpillSlot() { return NumSpillSlots++; }
  int numSpillSlots() const { return NumSpillSlots; }

  //===------------------------------------------------------------------===//
  // Arenas.
  //===------------------------------------------------------------------===//

  /// Creates an instruction with a fresh id. The instruction is not attached
  /// to any node until the caller places it.
  Instr *createInstr(Opcode Op) {
    Instr &I = InstrArena.emplace_back();
    I.Id = NextInstrId++;
    I.Op = Op;
    return &I;
  }

  PdgNode *createNode(PdgNodeKind Kind) {
    PdgNode &N = NodeArena.emplace_back(Kind);
    N.Id = static_cast<int>(NodeArena.size()) - 1;
    return &N;
  }

  unsigned numInstrIds() const { return NextInstrId; }

  //===------------------------------------------------------------------===//
  // Structure.
  //===------------------------------------------------------------------===//

  PdgNode *root() const { return Root; }
  void setRoot(PdgNode *R) { Root = R; }

  /// True once register operands denote physical registers.
  bool isAllocated() const { return Allocated; }
  void setAllocated(unsigned K) {
    Allocated = true;
    NumPhysRegs = K;
  }
  unsigned numPhysRegs() const { return NumPhysRegs; }

  /// Renders the function (signature plus linearized body) as text.
  std::string str() const;

private:
  std::string Name;
  unsigned NumParams = 0;
  std::vector<Reg> ParamRegs;
  TypeKind RetType = TypeKind::Void;
  unsigned NextVReg = 0;
  int NumLabels = 0;
  int NumSpillSlots = 0;
  unsigned NextInstrId = 0;
  std::deque<Instr> InstrArena;
  std::deque<PdgNode> NodeArena;
  PdgNode *Root = nullptr;
  bool Allocated = false;
  unsigned NumPhysRegs = 0;
};

} // namespace rap

#endif // RAP_IR_ILOCFUNCTION_H
