//===- ir/IlocProgram.h - Whole-program container ---------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compiled program: its functions and the layout of global memory
/// (scalars and arrays). Function ids index the Functions vector and are the
/// Callee operand of Call instructions.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_IR_ILOCPROGRAM_H
#define RAP_IR_ILOCPROGRAM_H

#include "ir/IlocFunction.h"

#include <memory>
#include <string>
#include <vector>

namespace rap {

/// One named object in global memory.
struct GlobalVar {
  std::string Name;
  int Addr = 0;      ///< first cell index in global memory
  int Size = 1;      ///< number of cells (1 for scalars)
  TypeKind Elem = TypeKind::Int;
  bool IsArray = false;
};

class IlocProgram {
public:
  IlocFunction *createFunction(std::string Name) {
    Functions.push_back(std::make_unique<IlocFunction>(std::move(Name)));
    return Functions.back().get();
  }

  const std::vector<std::unique_ptr<IlocFunction>> &functions() const {
    return Functions;
  }
  IlocFunction *function(int Id) const { return Functions[Id].get(); }

  /// Takes ownership of an externally built function. Call instructions in
  /// the adopted body keep their original Callee indices — the caller is
  /// responsible for any remapping (benchmark drivers that only allocate,
  /// never interpret, can skip it).
  IlocFunction *adoptFunction(std::unique_ptr<IlocFunction> F) {
    Functions.push_back(std::move(F));
    return Functions.back().get();
  }

  /// Releases all functions to the caller, leaving the program empty.
  std::vector<std::unique_ptr<IlocFunction>> takeFunctions() {
    return std::move(Functions);
  }

  /// Swaps function \p Id for \p F (same id, callers keep their Callee
  /// indices) and returns the new pointer. Used by the fault-isolated
  /// allocation driver to restore a pristine clone before falling back;
  /// safe to call concurrently for *distinct* ids (the vector itself is not
  /// resized).
  IlocFunction *replaceFunction(size_t Id, std::unique_ptr<IlocFunction> F) {
    Functions[Id] = std::move(F);
    return Functions[Id].get();
  }

  int functionId(const IlocFunction *F) const {
    for (int I = 0, E = static_cast<int>(Functions.size()); I != E; ++I)
      if (Functions[I].get() == F)
        return I;
    return -1;
  }

  IlocFunction *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

  /// Reserves \p Size cells of global memory for \p Name and returns the
  /// descriptor.
  const GlobalVar &addGlobal(std::string Name, int Size, TypeKind Elem,
                             bool IsArray) {
    GlobalVar G;
    G.Name = std::move(Name);
    G.Addr = GlobalSize;
    G.Size = Size;
    G.Elem = Elem;
    G.IsArray = IsArray;
    GlobalSize += Size;
    Globals.push_back(G);
    return Globals.back();
  }

  const std::vector<GlobalVar> &globals() const { return Globals; }
  int globalMemorySize() const { return GlobalSize; }

  const GlobalVar *findGlobal(const std::string &Name) const {
    for (const GlobalVar &G : Globals)
      if (G.Name == Name)
        return &G;
    return nullptr;
  }

private:
  std::vector<std::unique_ptr<IlocFunction>> Functions;
  std::vector<GlobalVar> Globals;
  int GlobalSize = 0;
};

} // namespace rap

#endif // RAP_IR_ILOCPROGRAM_H
