//===- ir/Printer.cpp - Textual ILOC --------------------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/IlocFunction.h"
#include "ir/Linearize.h"

#include <sstream>

using namespace rap;

const char *rap::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::LoadI:
    return "loadI";
  case Opcode::LoadF:
    return "loadF";
  case Opcode::Mv:
    return "mv";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Mod:
    return "mod";
  case Opcode::Neg:
    return "neg";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Not:
    return "not";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FNeg:
    return "fneg";
  case Opcode::CmpEQ:
    return "cmpEQ";
  case Opcode::CmpNE:
    return "cmpNE";
  case Opcode::CmpLT:
    return "cmpLT";
  case Opcode::CmpLE:
    return "cmpLE";
  case Opcode::CmpGT:
    return "cmpGT";
  case Opcode::CmpGE:
    return "cmpGE";
  case Opcode::I2F:
    return "i2f";
  case Opcode::F2I:
    return "f2i";
  case Opcode::LdSpill:
    return "ldm";
  case Opcode::StSpill:
    return "stm";
  case Opcode::LdGlob:
    return "ldg";
  case Opcode::StGlob:
    return "stg";
  case Opcode::LdIdx:
    return "ldx";
  case Opcode::StIdx:
    return "stx";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Cbr:
    return "cbr";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::Halt:
    return "halt";
  }
  return "?";
}

static std::string regName(Reg R) {
  if (R == NoReg)
    return "%none";
  return "%" + std::to_string(R);
}

std::string Instr::str() const {
  std::ostringstream OS;
  switch (Op) {
  case Opcode::LoadI:
    OS << regName(Dst) << " = loadI " << Imm.asInt();
    break;
  case Opcode::LoadF:
    OS << regName(Dst) << " = loadF " << Imm.asFloat();
    break;
  case Opcode::LdSpill:
    OS << "ldm " << regName(Dst) << ", s" << Slot;
    break;
  case Opcode::StSpill:
    OS << "stm s" << Slot << ", " << regName(Src[0]);
    break;
  case Opcode::LdGlob:
    OS << regName(Dst) << " = ldg g" << Addr;
    break;
  case Opcode::StGlob:
    OS << "stg g" << Addr << ", " << regName(Src[0]);
    break;
  case Opcode::LdIdx:
    OS << regName(Dst) << " = ldx g" << Addr << "[" << regName(Src[0]) << "]";
    break;
  case Opcode::StIdx:
    OS << "stx g" << Addr << "[" << regName(Src[0]) << "], "
       << regName(Src[1]);
    break;
  case Opcode::Jmp:
    OS << "jmp L" << Label0;
    break;
  case Opcode::Cbr:
    OS << "cbr " << regName(Src[0]) << " -> L" << Label0 << ", L" << Label1;
    break;
  case Opcode::Call: {
    if (Dst != NoReg)
      OS << regName(Dst) << " = ";
    OS << "call f" << Callee << "(";
    for (size_t I = 0; I != Src.size(); ++I) {
      if (I)
        OS << ", ";
      OS << regName(Src[I]);
    }
    OS << ")";
    break;
  }
  case Opcode::Ret:
    OS << "ret";
    if (!Src.empty())
      OS << " " << regName(Src[0]);
    break;
  case Opcode::Halt:
    OS << "halt";
    break;
  default: {
    // Generic "dst = op srcs" form.
    if (Dst != NoReg)
      OS << regName(Dst) << " = ";
    OS << opcodeName(Op);
    for (size_t I = 0; I != Src.size(); ++I)
      OS << (I ? ", " : " ") << regName(Src[I]);
    break;
  }
  }
  return OS.str();
}

std::string LinearCode::str() const {
  std::ostringstream OS;
  for (unsigned I = 0, E = static_cast<unsigned>(Instrs.size()); I != E; ++I) {
    // Print any labels bound at this position.
    for (unsigned L = 0, LE = static_cast<unsigned>(LabelPos.size()); L != LE;
         ++L)
      if (LabelPos[L] == I)
        OS << "L" << L << ":\n";
    OS << "  " << Instrs[I]->str() << "\n";
  }
  for (unsigned L = 0, LE = static_cast<unsigned>(LabelPos.size()); L != LE;
       ++L)
    if (LabelPos[L] == Instrs.size())
      OS << "L" << L << ": <end>\n";
  return OS.str();
}

std::string IlocFunction::str() const {
  std::ostringstream OS;
  OS << "func " << Name << "(" << NumParams << " params)";
  if (Allocated)
    OS << " [allocated k=" << NumPhysRegs << "]";
  OS << "\n";
  LinearCode LC = linearize(*const_cast<IlocFunction *>(this));
  OS << LC.str();
  return OS.str();
}
