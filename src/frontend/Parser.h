//===- frontend/Parser.h - MiniC parser -------------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC. On error it reports a diagnostic and
/// synchronizes at statement boundaries, so several errors can be reported
/// per run; callers must check DiagnosticEngine::hasErrors() before using the
/// returned tree.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_FRONTEND_PARSER_H
#define RAP_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <vector>

namespace rap {

class Parser {
public:
  /// Hostile-input bounds (see DESIGN.md §10). MaxDepth caps recursive
  /// nesting (parens, blocks, unary chains); MaxExprOps caps binary
  /// operators per statement, bounding the left-spine depth that Sema,
  /// lowering, and the Expr destructor later recurse over. Exceeding either
  /// is a diagnostic, never a crash.
  static constexpr int MaxDepth = 256;
  static constexpr int MaxExprOps = 2048;

  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  TranslationUnit parseTranslationUnit();

private:
  struct DepthGuard;

  bool depthExceeded();
  const Token &peek(unsigned Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind Kind) const { return peek().Kind == Kind; }
  bool accept(TokenKind Kind);
  const Token &expect(TokenKind Kind, const char *Context);
  void synchronize();

  bool parseType(TypeKind &Out);
  void parseTopLevel(TranslationUnit &TU);
  std::unique_ptr<FuncDecl> parseFunctionRest(TypeKind RetType,
                                              const Token &NameTok);
  StmtPtr parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseSimpleStmt(); ///< decl or assignment or call, no trailing ';'
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseReturn();

  ExprPtr parseExpr();
  ExprPtr makeBinary(BinaryOp Op, SourceLoc Loc, ExprPtr L, ExprPtr R);
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  int Depth = 0;          ///< live recursion depth (DepthGuard tickets)
  int ExprOps = 0;        ///< binary operators in the current statement
  bool DepthReported = false;
  bool ExprOpsReported = false;
};

} // namespace rap

#endif // RAP_FRONTEND_PARSER_H
