//===- frontend/Parser.cpp - MiniC parser ---------------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

using namespace rap;

/// RAII depth ticket for every recursive production. The counter spans
/// statements and expressions alike because both recurse through the same
/// native stack; MaxDepth is sized so that the deepest legal parse (plus
/// Sema's and AstLowering's later walks over the same tree, whose frames
/// are larger) stays far from any platform's stack limit.
struct Parser::DepthGuard {
  explicit DepthGuard(Parser &P) : P(P) { ++P.Depth; }
  ~DepthGuard() { --P.Depth; }
  Parser &P;
};

/// Reports the nesting-limit diagnostic once per parse (a 100k-paren input
/// would otherwise drown real errors in repeats).
bool Parser::depthExceeded() {
  if (Depth <= MaxDepth)
    return false;
  if (!DepthReported) {
    DepthReported = true;
    Diags.error(peek().Loc, "nesting too deep (limit " +
                                std::to_string(MaxDepth) + " levels)");
  }
  return true;
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t P = Pos + Ahead;
  if (P >= Tokens.size())
    P = Tokens.size() - 1; // Eof
  return Tokens[P];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

const Token &Parser::expect(TokenKind Kind, const char *Context) {
  if (check(Kind))
    return advance();
  Diags.error(peek().Loc, std::string("expected ") + tokenKindName(Kind) +
                              " " + Context + ", found " +
                              tokenKindName(peek().Kind));
  return peek();
}

/// Skips tokens until a likely statement boundary after a parse error.
void Parser::synchronize() {
  while (!check(TokenKind::Eof)) {
    if (accept(TokenKind::Semi))
      return;
    switch (peek().Kind) {
    case TokenKind::RBrace:
    case TokenKind::KwIf:
    case TokenKind::KwWhile:
    case TokenKind::KwFor:
    case TokenKind::KwReturn:
    case TokenKind::KwInt:
    case TokenKind::KwFloat:
      return;
    default:
      advance();
    }
  }
}

bool Parser::parseType(TypeKind &Out) {
  if (accept(TokenKind::KwInt)) {
    Out = TypeKind::Int;
    return true;
  }
  if (accept(TokenKind::KwFloat)) {
    Out = TypeKind::Float;
    return true;
  }
  if (accept(TokenKind::KwVoid)) {
    Out = TypeKind::Void;
    return true;
  }
  return false;
}

TranslationUnit Parser::parseTranslationUnit() {
  TranslationUnit TU;
  while (!check(TokenKind::Eof)) {
    size_t Before = Pos;
    parseTopLevel(TU);
    if (Pos == Before) {
      Diags.error(peek().Loc, "could not parse top-level declaration");
      advance();
    }
  }
  return TU;
}

void Parser::parseTopLevel(TranslationUnit &TU) {
  TypeKind Type;
  if (!parseType(Type)) {
    Diags.error(peek().Loc, "expected type at top level");
    synchronize();
    return;
  }
  const Token &NameTok = expect(TokenKind::Identifier, "in declaration");
  if (check(TokenKind::LParen)) {
    auto F = parseFunctionRest(Type, NameTok);
    if (F)
      TU.Functions.push_back(std::move(F));
    return;
  }
  // Global variable (scalar or array).
  GlobalDecl G;
  G.Name = NameTok.Text;
  G.Loc = NameTok.Loc;
  G.Type = Type;
  if (Type == TypeKind::Void)
    Diags.error(NameTok.Loc, "variable of void type");
  if (accept(TokenKind::LBracket)) {
    const Token &SizeTok =
        expect(TokenKind::IntLiteral, "as array size");
    G.ArraySize = static_cast<int>(SizeTok.IntValue);
    expect(TokenKind::RBracket, "after array size");
  }
  expect(TokenKind::Semi, "after global declaration");
  TU.Globals.push_back(std::move(G));
}

std::unique_ptr<FuncDecl> Parser::parseFunctionRest(TypeKind RetType,
                                                    const Token &NameTok) {
  auto F = std::make_unique<FuncDecl>();
  F->Name = NameTok.Text;
  F->Loc = NameTok.Loc;
  F->ReturnType = RetType;
  expect(TokenKind::LParen, "after function name");
  if (!check(TokenKind::RParen)) {
    do {
      ParamDecl P;
      P.Loc = peek().Loc;
      if (!parseType(P.Type)) {
        Diags.error(peek().Loc, "expected parameter type");
        synchronize();
        return nullptr;
      }
      if (P.Type == TypeKind::Void)
        Diags.error(P.Loc, "parameter of void type");
      P.Name = expect(TokenKind::Identifier, "as parameter name").Text;
      F->Params.push_back(std::move(P));
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameters");
  F->Body = parseBlock();
  return F;
}

StmtPtr Parser::parseBlock() {
  SourceLoc Loc = peek().Loc;
  expect(TokenKind::LBrace, "to open block");
  auto Block = std::make_unique<Stmt>(StmtKind::Block, Loc);
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    size_t Before = Pos;
    StmtPtr S = parseStmt();
    if (S)
      Block->Body.push_back(std::move(S));
    if (Pos == Before)
      synchronize();
  }
  expect(TokenKind::RBrace, "to close block");
  return Block;
}

StmtPtr Parser::parseStmt() {
  DepthGuard Guard(*this);
  if (depthExceeded()) {
    // Consume one token so every enclosing loop makes progress, then let
    // the statement-boundary synchronization skip the rest.
    advance();
    synchronize();
    return nullptr;
  }
  // Each statement gets a fresh expression-size budget (see makeBinary).
  ExprOps = 0;
  switch (peek().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn:
    return parseReturn();
  default: {
    StmtPtr S = parseSimpleStmt();
    if (S)
      expect(TokenKind::Semi, "after statement");
    return S;
  }
  }
}

StmtPtr Parser::parseSimpleStmt() {
  SourceLoc Loc = peek().Loc;
  TypeKind DeclType;
  size_t Save = Pos;
  if (parseType(DeclType)) {
    auto S = std::make_unique<Stmt>(StmtKind::VarDecl, Loc);
    S->DeclType = DeclType;
    if (DeclType == TypeKind::Void)
      Diags.error(Loc, "variable of void type");
    S->Name = expect(TokenKind::Identifier, "as variable name").Text;
    if (accept(TokenKind::Assign))
      S->Value = parseExpr();
    return S;
  }
  Pos = Save;

  // Assignment (scalar or array element) or expression statement.
  if (check(TokenKind::Identifier)) {
    if (peek(1).Kind == TokenKind::Assign) {
      auto S = std::make_unique<Stmt>(StmtKind::Assign, Loc);
      S->Name = advance().Text;
      advance(); // '='
      S->Value = parseExpr();
      return S;
    }
    if (peek(1).Kind == TokenKind::LBracket) {
      // Could be `a[i] = e` or an expression beginning with `a[i]`; scan for
      // the matching ']' followed by '='.
      size_t Scan = Pos + 2;
      int Depth = 1;
      while (Scan < Tokens.size() && Depth > 0) {
        if (Tokens[Scan].Kind == TokenKind::LBracket)
          ++Depth;
        else if (Tokens[Scan].Kind == TokenKind::RBracket)
          --Depth;
        ++Scan;
      }
      if (Scan < Tokens.size() && Tokens[Scan].Kind == TokenKind::Assign) {
        auto S = std::make_unique<Stmt>(StmtKind::Assign, Loc);
        S->Name = advance().Text;
        advance(); // '['
        S->Index = parseExpr();
        expect(TokenKind::RBracket, "after array index");
        advance(); // '='
        S->Value = parseExpr();
        return S;
      }
    }
  }

  auto S = std::make_unique<Stmt>(StmtKind::ExprStmt, Loc);
  S->Value = parseExpr();
  return S;
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = advance().Loc; // 'if'
  auto S = std::make_unique<Stmt>(StmtKind::If, Loc);
  expect(TokenKind::LParen, "after 'if'");
  S->Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  S->Then = parseStmt();
  if (accept(TokenKind::KwElse))
    S->Else = parseStmt();
  return S;
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = advance().Loc; // 'while'
  auto S = std::make_unique<Stmt>(StmtKind::While, Loc);
  expect(TokenKind::LParen, "after 'while'");
  S->Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  S->Then = parseStmt();
  return S;
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = advance().Loc; // 'for'
  auto S = std::make_unique<Stmt>(StmtKind::For, Loc);
  expect(TokenKind::LParen, "after 'for'");
  if (!check(TokenKind::Semi))
    S->ForInit = parseSimpleStmt();
  expect(TokenKind::Semi, "after for initializer");
  if (!check(TokenKind::Semi))
    S->Cond = parseExpr();
  expect(TokenKind::Semi, "after for condition");
  if (!check(TokenKind::RParen))
    S->ForStep = parseSimpleStmt();
  expect(TokenKind::RParen, "after for step");
  S->Then = parseStmt();
  return S;
}

StmtPtr Parser::parseReturn() {
  SourceLoc Loc = advance().Loc; // 'return'
  auto S = std::make_unique<Stmt>(StmtKind::Return, Loc);
  if (!check(TokenKind::Semi))
    S->Value = parseExpr();
  expect(TokenKind::Semi, "after return");
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions (precedence climbing)
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() {
  DepthGuard Guard(*this);
  if (depthExceeded()) {
    auto E = std::make_unique<Expr>(ExprKind::IntLit, peek().Loc);
    E->IntValue = 0;
    return E;
  }
  return parseOr();
}

/// Builds a binary node, charging the statement's expression-size budget.
/// Operator chains like `1+1+1+...` nest through this *left spine* without
/// ever recursing in the parser, but Sema, lowering, and the Expr
/// destructor all recurse over the resulting tree — so an unbounded chain
/// is a stack overflow deferred to the next phase. Past the budget the
/// right operand is dropped (a diagnostic is already in flight, the tree
/// is never used).
ExprPtr Parser::makeBinary(BinaryOp Op, SourceLoc Loc, ExprPtr L, ExprPtr R) {
  if (++ExprOps > MaxExprOps) {
    if (!ExprOpsReported) {
      ExprOpsReported = true;
      Diags.error(Loc, "expression too complex (more than " +
                           std::to_string(MaxExprOps) +
                           " operators in one statement)");
    }
    return L;
  }
  auto E = std::make_unique<Expr>(ExprKind::Binary, Loc);
  E->BinOp = Op;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  return E;
}

ExprPtr Parser::parseOr() {
  ExprPtr L = parseAnd();
  while (check(TokenKind::PipePipe)) {
    SourceLoc Loc = advance().Loc;
    L = makeBinary(BinaryOp::LogicalOr, Loc, std::move(L), parseAnd());
  }
  return L;
}

ExprPtr Parser::parseAnd() {
  ExprPtr L = parseEquality();
  while (check(TokenKind::AmpAmp)) {
    SourceLoc Loc = advance().Loc;
    L = makeBinary(BinaryOp::LogicalAnd, Loc, std::move(L), parseEquality());
  }
  return L;
}

ExprPtr Parser::parseEquality() {
  ExprPtr L = parseRelational();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::EqEq))
      Op = BinaryOp::Eq;
    else if (check(TokenKind::BangEq))
      Op = BinaryOp::Ne;
    else
      return L;
    SourceLoc Loc = advance().Loc;
    L = makeBinary(Op, Loc, std::move(L), parseRelational());
  }
}

ExprPtr Parser::parseRelational() {
  ExprPtr L = parseAdditive();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Less))
      Op = BinaryOp::Lt;
    else if (check(TokenKind::LessEq))
      Op = BinaryOp::Le;
    else if (check(TokenKind::Greater))
      Op = BinaryOp::Gt;
    else if (check(TokenKind::GreaterEq))
      Op = BinaryOp::Ge;
    else
      return L;
    SourceLoc Loc = advance().Loc;
    L = makeBinary(Op, Loc, std::move(L), parseAdditive());
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr L = parseMultiplicative();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Plus))
      Op = BinaryOp::Add;
    else if (check(TokenKind::Minus))
      Op = BinaryOp::Sub;
    else
      return L;
    SourceLoc Loc = advance().Loc;
    L = makeBinary(Op, Loc, std::move(L), parseMultiplicative());
  }
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr L = parseUnary();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (check(TokenKind::Slash))
      Op = BinaryOp::Div;
    else if (check(TokenKind::Percent))
      Op = BinaryOp::Mod;
    else
      return L;
    SourceLoc Loc = advance().Loc;
    L = makeBinary(Op, Loc, std::move(L), parseUnary());
  }
}

ExprPtr Parser::parseUnary() {
  // parseUnary recurses into itself directly (never through parseExpr), so
  // `!!!!...1` needs its own depth ticket.
  DepthGuard Guard(*this);
  if (depthExceeded()) {
    auto E = std::make_unique<Expr>(ExprKind::IntLit, peek().Loc);
    E->IntValue = 0;
    return E;
  }
  if (check(TokenKind::Minus)) {
    SourceLoc Loc = advance().Loc;
    auto E = std::make_unique<Expr>(ExprKind::Unary, Loc);
    E->UnOp = UnaryOp::Neg;
    E->Sub = parseUnary();
    return E;
  }
  if (check(TokenKind::Bang)) {
    SourceLoc Loc = advance().Loc;
    auto E = std::make_unique<Expr>(ExprKind::Unary, Loc);
    E->UnOp = UnaryOp::Not;
    E->Sub = parseUnary();
    return E;
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  if (check(TokenKind::IntLiteral)) {
    auto E = std::make_unique<Expr>(ExprKind::IntLit, Loc);
    E->IntValue = advance().IntValue;
    return E;
  }
  if (check(TokenKind::FloatLiteral)) {
    auto E = std::make_unique<Expr>(ExprKind::FloatLit, Loc);
    E->FloatValue = advance().FloatValue;
    return E;
  }
  if (accept(TokenKind::LParen)) {
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  if (check(TokenKind::Identifier)) {
    std::string Name = advance().Text;
    if (accept(TokenKind::LParen)) {
      auto E = std::make_unique<Expr>(ExprKind::Call, Loc);
      E->Name = std::move(Name);
      if (!check(TokenKind::RParen)) {
        do {
          E->Args.push_back(parseExpr());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after call arguments");
      return E;
    }
    if (accept(TokenKind::LBracket)) {
      auto E = std::make_unique<Expr>(ExprKind::ArrayRef, Loc);
      E->Name = std::move(Name);
      E->Sub = parseExpr();
      expect(TokenKind::RBracket, "after array index");
      return E;
    }
    auto E = std::make_unique<Expr>(ExprKind::VarRef, Loc);
    E->Name = std::move(Name);
    return E;
  }
  Diags.error(Loc, std::string("expected expression, found ") +
                       tokenKindName(peek().Kind));
  advance();
  // Error recovery: produce a dummy literal.
  auto E = std::make_unique<Expr>(ExprKind::IntLit, Loc);
  E->IntValue = 0;
  return E;
}
