//===- frontend/Lexer.cpp - MiniC lexer -----------------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>

using namespace rap;

const char *rap::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::BangEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  }
  return "?";
}

char Lexer::peek(unsigned Ahead) const {
  size_t P = Pos + Ahead;
  return P < Source.size() ? Source[P] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start{Line, Col};
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind) const {
  Token T;
  T.Kind = Kind;
  T.Loc = TokStart;
  return T;
}

Token Lexer::lexNumber() {
  size_t Start = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsFloat = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      IsFloat = true;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    } else {
      Pos = Save; // not an exponent after all
    }
  }
  std::string Text = Source.substr(Start, Pos - Start);
  if (Text.size() > MaxLiteralWidth) {
    Diags.error(TokStart, "numeric literal is " + std::to_string(Text.size()) +
                              " characters wide (limit " +
                              std::to_string(MaxLiteralWidth) + ")");
    Token T = makeToken(TokenKind::IntLiteral);
    T.IntValue = 0;
    return T;
  }
  if (IsFloat) {
    Token T = makeToken(TokenKind::FloatLiteral);
    T.FloatValue = std::strtod(Text.c_str(), nullptr);
    if (std::isinf(T.FloatValue)) {
      Diags.error(TokStart,
                  "float literal '" + Text + "' overflows a double");
      T.FloatValue = 0.0;
    }
    return T;
  }
  Token T = makeToken(TokenKind::IntLiteral);
  // Accumulate by hand so 64-bit overflow is a diagnostic, not a silently
  // saturated value (strtoll clamps to INT64_MAX and only reports through
  // errno).
  uint64_t Value = 0;
  bool Overflow = false;
  for (char D : Text) {
    uint64_t Digit = static_cast<uint64_t>(D - '0');
    if (Value > (static_cast<uint64_t>(INT64_MAX) - Digit) / 10) {
      Overflow = true;
      break;
    }
    Value = Value * 10 + Digit;
  }
  if (Overflow) {
    Diags.error(TokStart,
                "integer literal '" + Text + "' does not fit in 64 bits");
    T.IntValue = 0;
    return T;
  }
  T.IntValue = static_cast<int64_t>(Value);
  return T;
}

Token Lexer::lexIdentifier() {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Text = Source.substr(Start, Pos - Start);
  if (Text == "int")
    return makeToken(TokenKind::KwInt);
  if (Text == "float")
    return makeToken(TokenKind::KwFloat);
  if (Text == "void")
    return makeToken(TokenKind::KwVoid);
  if (Text == "if")
    return makeToken(TokenKind::KwIf);
  if (Text == "else")
    return makeToken(TokenKind::KwElse);
  if (Text == "while")
    return makeToken(TokenKind::KwWhile);
  if (Text == "for")
    return makeToken(TokenKind::KwFor);
  if (Text == "return")
    return makeToken(TokenKind::KwReturn);
  Token T = makeToken(TokenKind::Identifier);
  T.Text = std::move(Text);
  return T;
}

/// Reports an unexpected byte. Printable ASCII is quoted verbatim;
/// everything else (control bytes, UTF-8 lead/continuation bytes, ...) is
/// rendered as a hex escape so hostile input cannot corrupt the diagnostic
/// stream.
void Lexer::reportBadByte(char C) {
  unsigned char U = static_cast<unsigned char>(C);
  if (U >= 0x20 && U < 0x7f) {
    Diags.error(TokStart, std::string("unexpected character '") + C + "'");
    return;
  }
  static const char *Hex = "0123456789abcdef";
  std::string Msg = "unexpected byte 0x";
  Msg += Hex[U >> 4];
  Msg += Hex[U & 0xf];
  Diags.error(TokStart, Msg);
}

/// Skips a string literal (MiniC has none, but hostile or C-derived input
/// may contain them): consumes to the closing quote or end of line so one
/// stray quote does not cascade into an error per subsequent token.
void Lexer::skipStringLiteral(char Quote) {
  Diags.error(TokStart, Quote == '"'
                            ? "string literals are not part of MiniC"
                            : "character literals are not part of MiniC");
  while (peek() != '\0' && peek() != '\n') {
    if (peek() == '\\' && peek(1) != '\0') {
      advance(); // skip the escape so \" does not close the literal
      advance();
      continue;
    }
    if (advance() == Quote)
      return;
  }
  Diags.error(TokStart, Quote == '"' ? "unterminated string literal"
                                     : "unterminated character literal");
}

Token Lexer::next() {
  // Loops so that an unexpected byte is skipped and lexing continues with
  // the next token; returning Eof here (as this lexer once did) silently
  // discarded the rest of the input, masking every later error.
  for (;;) {
    skipWhitespaceAndComments();
    TokStart = SourceLoc{Line, Col};
    char C = peek();
    if (C == '\0')
      return makeToken(TokenKind::Eof);
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdentifier();

    advance();
    if (C == '"' || C == '\'') {
      skipStringLiteral(C);
      continue;
    }
    switch (C) {
    case '(':
      return makeToken(TokenKind::LParen);
    case ')':
      return makeToken(TokenKind::RParen);
    case '{':
      return makeToken(TokenKind::LBrace);
    case '}':
      return makeToken(TokenKind::RBrace);
    case '[':
      return makeToken(TokenKind::LBracket);
    case ']':
      return makeToken(TokenKind::RBracket);
    case ',':
      return makeToken(TokenKind::Comma);
    case ';':
      return makeToken(TokenKind::Semi);
    case '+':
      return makeToken(TokenKind::Plus);
    case '-':
      return makeToken(TokenKind::Minus);
    case '*':
      return makeToken(TokenKind::Star);
    case '/':
      return makeToken(TokenKind::Slash);
    case '%':
      return makeToken(TokenKind::Percent);
    case '=':
      return makeToken(match('=') ? TokenKind::EqEq : TokenKind::Assign);
    case '!':
      return makeToken(match('=') ? TokenKind::BangEq : TokenKind::Bang);
    case '<':
      return makeToken(match('=') ? TokenKind::LessEq : TokenKind::Less);
    case '>':
      return makeToken(match('=') ? TokenKind::GreaterEq : TokenKind::Greater);
    case '&':
      if (match('&'))
        return makeToken(TokenKind::AmpAmp);
      break;
    case '|':
      if (match('|'))
        return makeToken(TokenKind::PipePipe);
      break;
    default:
      break;
    }
    reportBadByte(C);
    // fall through to the next loop iteration: skip the byte, keep lexing
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Out;
  for (;;) {
    Token T = next();
    Out.push_back(T);
    if (T.Kind == TokenKind::Eof)
      return Out;
  }
}
