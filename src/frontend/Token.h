//===- frontend/Token.h - MiniC tokens --------------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the MiniC lexer.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_FRONTEND_TOKEN_H
#define RAP_FRONTEND_TOKEN_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>

namespace rap {

enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,

  // Keywords.
  KwInt,
  KwFloat,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Assign, // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,     // !
  EqEq,     // ==
  BangEq,   // !=
  Less,     // <
  LessEq,   // <=
  Greater,  // >
  GreaterEq,// >=
  AmpAmp,   // &&
  PipePipe, // ||
};

struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;   ///< identifier spelling
  int64_t IntValue = 0;
  double FloatValue = 0.0;
};

/// Human-readable token-kind name for diagnostics.
const char *tokenKindName(TokenKind Kind);

} // namespace rap

#endif // RAP_FRONTEND_TOKEN_H
