//===- frontend/Lexer.h - MiniC lexer ---------------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts MiniC source text into a token stream. Supports // and /* */
/// comments. Lexical errors are reported through the DiagnosticEngine and
/// yield an Eof token so the parser stops cleanly.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_FRONTEND_LEXER_H
#define RAP_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace rap {

class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags)
      : Source(std::move(Source)), Diags(Diags) {}

  /// Lexes the entire input; the last token is always Eof.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  Token makeToken(TokenKind Kind) const;
  Token lexNumber();
  Token lexIdentifier();

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;
  SourceLoc TokStart;
};

} // namespace rap

#endif // RAP_FRONTEND_LEXER_H
