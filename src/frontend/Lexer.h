//===- frontend/Lexer.h - MiniC lexer ---------------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts MiniC source text into a token stream. Supports // and /* */
/// comments. Lexical errors are reported through the DiagnosticEngine and
/// the offending bytes are skipped, so the rest of the input still lexes
/// and later errors are still visible. Hostile input is bounded: numeric
/// literals have a width cap and an overflow check, stray quotes recover at
/// the closing quote or end of line, and non-printable bytes are reported
/// as hex escapes.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_FRONTEND_LEXER_H
#define RAP_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace rap {

class Lexer {
public:
  /// Longest accepted numeric literal spelling; anything wider is reported
  /// and lexed as 0 so adversarial digit runs cannot feed strtod quadratic
  /// work or silently misparse.
  static constexpr size_t MaxLiteralWidth = 128;

  Lexer(std::string Source, DiagnosticEngine &Diags)
      : Source(std::move(Source)), Diags(Diags) {}

  /// Lexes the entire input; the last token is always Eof.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  Token makeToken(TokenKind Kind) const;
  Token lexNumber();
  Token lexIdentifier();
  void reportBadByte(char C);
  void skipStringLiteral(char Quote);

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;
  SourceLoc TokStart;
};

} // namespace rap

#endif // RAP_FRONTEND_LEXER_H
