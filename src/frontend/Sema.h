//===- frontend/Sema.h - MiniC semantic analysis ----------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type checking and name resolution for MiniC. Annotates every expression
/// with its TypeKind, inserts implicit int<->float Cast nodes, resolves
/// variable references to locals or globals, and reports semantic errors.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_FRONTEND_SEMA_H
#define RAP_FRONTEND_SEMA_H

#include "frontend/Ast.h"
#include "support/Diagnostics.h"

namespace rap {

/// Runs semantic analysis over \p TU. Returns true on success; on failure
/// the diagnostics engine holds at least one error and the tree must not be
/// lowered.
bool analyze(TranslationUnit &TU, DiagnosticEngine &Diags);

} // namespace rap

#endif // RAP_FRONTEND_SEMA_H
