//===- frontend/Ast.h - MiniC abstract syntax -------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniC AST: expressions, statements, and declarations. Nodes are
/// kind-tagged (no RTTI) and owned through unique_ptr. Semantic analysis
/// annotates expressions with their TypeKind and may wrap operands in
/// implicit Cast nodes.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_FRONTEND_AST_H
#define RAP_FRONTEND_AST_H

#include "ir/IlocFunction.h" // TypeKind
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace rap {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLit,
  FloatLit,
  VarRef,
  ArrayRef,
  Call,
  Binary,
  Unary,
  Cast, ///< implicit int<->float conversion inserted by Sema
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LogicalAnd,
  LogicalOr,
};

enum class UnaryOp { Neg, Not };

struct Expr {
  explicit Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

  ExprKind Kind;
  SourceLoc Loc;

  /// Result type; filled in by Sema.
  TypeKind Type = TypeKind::Void;

  // Literals.
  int64_t IntValue = 0;
  double FloatValue = 0.0;

  // VarRef / ArrayRef / Call.
  std::string Name;

  /// For VarRef: true when the name resolves to a global scalar rather than
  /// a local/parameter. Filled by Sema; lowering relies on it so that its
  /// scope handling matches name resolution exactly.
  bool ResolvedGlobal = false;

  // ArrayRef index; Cast / Unary operand.
  std::unique_ptr<Expr> Sub;

  // Binary operands.
  std::unique_ptr<Expr> Lhs;
  std::unique_ptr<Expr> Rhs;
  BinaryOp BinOp = BinaryOp::Add;
  UnaryOp UnOp = UnaryOp::Neg;

  // Call arguments.
  std::vector<std::unique_ptr<Expr>> Args;
};

using ExprPtr = std::unique_ptr<Expr>;

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Block,
  VarDecl,
  Assign,
  If,
  While,
  For,
  Return,
  ExprStmt,
};

struct Stmt {
  explicit Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

  StmtKind Kind;
  SourceLoc Loc;

  // Block.
  std::vector<std::unique_ptr<Stmt>> Body;

  // VarDecl: declares a local scalar `DeclType Name = Value;`.
  TypeKind DeclType = TypeKind::Int;
  std::string Name;
  ExprPtr Value; ///< initializer / assigned value / return value / expression

  // Assign: Name [Index] = Value. Index null for scalar targets.
  ExprPtr Index;
  bool TargetIsGlobal = false; ///< filled by Sema

  // If / While / For.
  ExprPtr Cond;
  std::unique_ptr<Stmt> Then;
  std::unique_ptr<Stmt> Else;             ///< if only
  std::unique_ptr<Stmt> ForInit, ForStep; ///< for only

};

using StmtPtr = std::unique_ptr<Stmt>;

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct ParamDecl {
  TypeKind Type = TypeKind::Int;
  std::string Name;
  SourceLoc Loc;
};

struct FuncDecl {
  std::string Name;
  SourceLoc Loc;
  TypeKind ReturnType = TypeKind::Void;
  std::vector<ParamDecl> Params;
  StmtPtr Body; ///< a Block
};

struct GlobalDecl {
  std::string Name;
  SourceLoc Loc;
  TypeKind Type = TypeKind::Int;
  int ArraySize = -1; ///< -1 for scalars
};

struct TranslationUnit {
  std::vector<GlobalDecl> Globals;
  std::vector<std::unique_ptr<FuncDecl>> Functions;
};

} // namespace rap

#endif // RAP_FRONTEND_AST_H
