//===- frontend/Sema.cpp - MiniC semantic analysis ------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include <map>
#include <vector>

using namespace rap;

namespace {

const char *typeName(TypeKind T) {
  switch (T) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Float:
    return "float";
  case TypeKind::Void:
    return "void";
  }
  return "?";
}

class SemaChecker {
public:
  SemaChecker(TranslationUnit &TU, DiagnosticEngine &Diags)
      : TU(TU), Diags(Diags) {}

  bool run() {
    collectGlobals();
    collectFunctions();
    for (auto &F : TU.Functions)
      checkFunction(*F);
    return !Diags.hasErrors();
  }

private:
  void collectGlobals() {
    for (GlobalDecl &G : TU.Globals) {
      if (Globals.count(G.Name) || FunctionsByName.count(G.Name)) {
        Diags.error(G.Loc, "redefinition of '" + G.Name + "'");
        continue;
      }
      if (G.ArraySize == 0 || G.ArraySize < -1)
        Diags.error(G.Loc, "array '" + G.Name + "' has invalid size");
      Globals[G.Name] = &G;
    }
  }

  void collectFunctions() {
    for (auto &F : TU.Functions) {
      if (FunctionsByName.count(F->Name) || Globals.count(F->Name)) {
        Diags.error(F->Loc, "redefinition of '" + F->Name + "'");
        continue;
      }
      FunctionsByName[F->Name] = F.get();
    }
  }

  //===------------------------------------------------------------------===//
  // Scopes
  //===------------------------------------------------------------------===//

  void pushScope() { Scopes.emplace_back(); }
  void popScope() {
    if (!Scopes.empty())
      Scopes.pop_back();
  }

  bool declareLocal(const std::string &Name, TypeKind Type, SourceLoc Loc) {
    // A declaration outside any scope means the AST is malformed (possible
    // after aggressive parser error recovery); report instead of asserting
    // so release builds fail safely.
    if (Scopes.empty()) {
      Diags.error(Loc, "internal: declaration of '" + Name +
                           "' outside any scope");
      return false;
    }
    auto [It, Inserted] = Scopes.back().emplace(Name, Type);
    (void)It;
    if (!Inserted) {
      Diags.error(Loc, "redefinition of '" + Name + "' in the same scope");
      return false;
    }
    return true;
  }

  /// Returns the type of a visible local, or Void if none.
  bool lookupLocal(const std::string &Name, TypeKind &Out) const {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end()) {
        Out = Found->second;
        return true;
      }
    }
    return false;
  }

  //===------------------------------------------------------------------===//
  // Functions and statements
  //===------------------------------------------------------------------===//

  void checkFunction(FuncDecl &F) {
    CurFunc = &F;
    Scopes.clear();
    pushScope();
    for (ParamDecl &P : F.Params)
      declareLocal(P.Name, P.Type, P.Loc);
    checkStmtPtr(F.Body.get());
    popScope();
    CurFunc = nullptr;
  }

  /// Null-tolerant entry point: parser error recovery (e.g. the recursion
  /// depth guard) can leave null statement slots behind. They always come
  /// with a diagnostic, so skipping them is safe.
  void checkStmtPtr(Stmt *S) {
    if (S)
      checkStmt(*S);
  }

  void checkStmt(Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Block:
      pushScope();
      for (auto &Child : S.Body)
        checkStmtPtr(Child.get());
      popScope();
      return;
    case StmtKind::VarDecl:
      if (S.Value) {
        checkExpr(*S.Value);
        coerce(S.Value, S.DeclType, S.Loc, "initializer");
      }
      declareLocal(S.Name, S.DeclType, S.Loc);
      return;
    case StmtKind::Assign:
      checkAssign(S);
      return;
    case StmtKind::If:
    case StmtKind::While:
      checkCond(S.Cond);
      checkStmtPtr(S.Then.get());
      checkStmtPtr(S.Else.get());
      return;
    case StmtKind::For:
      pushScope(); // the for-init declaration scopes over the loop
      checkStmtPtr(S.ForInit.get());
      checkCond(S.Cond);
      checkStmtPtr(S.ForStep.get());
      checkStmtPtr(S.Then.get());
      popScope();
      return;
    case StmtKind::Return: {
      TypeKind Want = CurFunc->ReturnType;
      if (S.Value) {
        if (Want == TypeKind::Void) {
          Diags.error(S.Loc, "void function '" + CurFunc->Name +
                                 "' returns a value");
          checkExpr(*S.Value);
          return;
        }
        checkExpr(*S.Value);
        coerce(S.Value, Want, S.Loc, "return value");
      } else if (Want != TypeKind::Void) {
        Diags.error(S.Loc, "non-void function '" + CurFunc->Name +
                               "' returns no value");
      }
      return;
    }
    case StmtKind::ExprStmt:
      if (S.Value)
        checkExpr(*S.Value, /*AllowVoid=*/true);
      return;
    }
  }

  void checkCond(ExprPtr &Cond) {
    if (!Cond)
      return; // for(;;) - permitted grammatically, rejected here
    checkExpr(*Cond);
    if (Cond->Type == TypeKind::Float) {
      Diags.error(Cond->Loc, "condition must have int type");
    }
  }

  void checkAssign(Stmt &S) {
    if (!S.Value) {
      Diags.error(S.Loc, "internal: assignment without a value expression");
      return;
    }
    checkExpr(*S.Value);
    if (S.Index) {
      checkExpr(*S.Index);
      if (S.Index->Type != TypeKind::Int)
        Diags.error(S.Index->Loc, "array index must have int type");
      auto It = Globals.find(S.Name);
      if (It == Globals.end() || It->second->ArraySize < 0) {
        Diags.error(S.Loc, "'" + S.Name + "' is not a global array");
        return;
      }
      TypeKind LocalType;
      if (lookupLocal(S.Name, LocalType))
        Diags.error(S.Loc,
                    "local '" + S.Name + "' shadows the array being indexed");
      S.TargetIsGlobal = true;
      coerce(S.Value, It->second->Type, S.Loc, "assigned value");
      return;
    }
    TypeKind Type;
    if (lookupLocal(S.Name, Type)) {
      S.TargetIsGlobal = false;
      coerce(S.Value, Type, S.Loc, "assigned value");
      return;
    }
    auto It = Globals.find(S.Name);
    if (It != Globals.end()) {
      if (It->second->ArraySize >= 0) {
        Diags.error(S.Loc, "cannot assign to array '" + S.Name + "'");
        return;
      }
      S.TargetIsGlobal = true;
      coerce(S.Value, It->second->Type, S.Loc, "assigned value");
      return;
    }
    Diags.error(S.Loc, "assignment to undeclared variable '" + S.Name + "'");
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  /// Wraps \p E in an implicit cast so it has type \p Want, or reports an
  /// error when no implicit conversion exists.
  void coerce(ExprPtr &E, TypeKind Want, SourceLoc Loc, const char *What) {
    if (!E)
      return;
    if (E->Type == Want)
      return;
    if (E->Type == TypeKind::Void || Want == TypeKind::Void) {
      Diags.error(Loc, std::string("cannot convert ") + What + " from " +
                           typeName(E->Type) + " to " + typeName(Want));
      return;
    }
    auto Cast = std::make_unique<Expr>(ExprKind::Cast, E->Loc);
    Cast->Type = Want;
    Cast->Sub = std::move(E);
    E = std::move(Cast);
  }

  void checkExpr(Expr &E, bool AllowVoid = false) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      E.Type = TypeKind::Int;
      return;
    case ExprKind::FloatLit:
      E.Type = TypeKind::Float;
      return;
    case ExprKind::Cast:
      // Only created by Sema itself.
      return;
    case ExprKind::VarRef: {
      TypeKind Type;
      if (lookupLocal(E.Name, Type)) {
        E.Type = Type;
        E.ResolvedGlobal = false;
        return;
      }
      auto It = Globals.find(E.Name);
      if (It != Globals.end()) {
        if (It->second->ArraySize >= 0) {
          Diags.error(E.Loc, "array '" + E.Name + "' used without an index");
          E.Type = TypeKind::Int;
          return;
        }
        E.Type = It->second->Type;
        E.ResolvedGlobal = true;
        return;
      }
      Diags.error(E.Loc, "use of undeclared variable '" + E.Name + "'");
      E.Type = TypeKind::Int;
      return;
    }
    case ExprKind::ArrayRef: {
      checkExpr(*E.Sub);
      if (E.Sub->Type != TypeKind::Int)
        Diags.error(E.Sub->Loc, "array index must have int type");
      auto It = Globals.find(E.Name);
      if (It == Globals.end() || It->second->ArraySize < 0) {
        Diags.error(E.Loc, "'" + E.Name + "' is not a global array");
        E.Type = TypeKind::Int;
        return;
      }
      TypeKind LocalType;
      if (lookupLocal(E.Name, LocalType))
        Diags.error(E.Loc,
                    "local '" + E.Name + "' shadows the array being indexed");
      E.Type = It->second->Type;
      return;
    }
    case ExprKind::Call: {
      auto It = FunctionsByName.find(E.Name);
      if (It == FunctionsByName.end()) {
        Diags.error(E.Loc, "call to undeclared function '" + E.Name + "'");
        E.Type = TypeKind::Int;
        for (auto &A : E.Args)
          checkExpr(*A);
        return;
      }
      FuncDecl *Callee = It->second;
      if (E.Args.size() != Callee->Params.size()) {
        Diags.error(E.Loc, "call to '" + E.Name + "' with " +
                               std::to_string(E.Args.size()) +
                               " arguments; expected " +
                               std::to_string(Callee->Params.size()));
      }
      for (size_t I = 0; I != E.Args.size(); ++I) {
        checkExpr(*E.Args[I]);
        if (I < Callee->Params.size())
          coerce(E.Args[I], Callee->Params[I].Type, E.Args[I]->Loc,
                 "argument");
      }
      E.Type = Callee->ReturnType;
      if (E.Type == TypeKind::Void && !AllowVoid)
        Diags.error(E.Loc, "void value of call to '" + E.Name +
                               "' used in an expression");
      return;
    }
    case ExprKind::Unary: {
      checkExpr(*E.Sub);
      if (E.UnOp == UnaryOp::Not) {
        if (E.Sub->Type != TypeKind::Int)
          Diags.error(E.Loc, "operand of '!' must have int type");
        E.Type = TypeKind::Int;
        return;
      }
      E.Type = E.Sub->Type;
      if (E.Type == TypeKind::Void) {
        Diags.error(E.Loc, "operand of unary '-' has void type");
        E.Type = TypeKind::Int;
      }
      return;
    }
    case ExprKind::Binary:
      checkBinary(E);
      return;
    }
  }

  void checkBinary(Expr &E) {
    checkExpr(*E.Lhs);
    checkExpr(*E.Rhs);
    if (E.Lhs->Type == TypeKind::Void || E.Rhs->Type == TypeKind::Void) {
      Diags.error(E.Loc, "void operand in binary expression");
      E.Type = TypeKind::Int;
      return;
    }
    switch (E.BinOp) {
    case BinaryOp::LogicalAnd:
    case BinaryOp::LogicalOr:
      if (E.Lhs->Type != TypeKind::Int || E.Rhs->Type != TypeKind::Int)
        Diags.error(E.Loc, "logical operator requires int operands");
      E.Type = TypeKind::Int;
      return;
    case BinaryOp::Mod:
      if (E.Lhs->Type != TypeKind::Int || E.Rhs->Type != TypeKind::Int)
        Diags.error(E.Loc, "'%' requires int operands");
      E.Type = TypeKind::Int;
      return;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      unifyArith(E);
      E.Type = TypeKind::Int;
      return;
    }
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
      E.Type = unifyArith(E);
      return;
    }
  }

  /// Applies the usual arithmetic conversion: if either side is float, the
  /// other is cast to float. Returns the common type.
  TypeKind unifyArith(Expr &E) {
    if (E.Lhs->Type == E.Rhs->Type)
      return E.Lhs->Type;
    if (E.Lhs->Type == TypeKind::Int)
      coerce(E.Lhs, TypeKind::Float, E.Loc, "operand");
    else
      coerce(E.Rhs, TypeKind::Float, E.Loc, "operand");
    return TypeKind::Float;
  }

  TranslationUnit &TU;
  DiagnosticEngine &Diags;
  std::map<std::string, GlobalDecl *> Globals;
  std::map<std::string, FuncDecl *> FunctionsByName;
  std::vector<std::map<std::string, TypeKind>> Scopes;
  FuncDecl *CurFunc = nullptr;
};

} // namespace

bool rap::analyze(TranslationUnit &TU, DiagnosticEngine &Diags) {
  return SemaChecker(TU, Diags).run();
}
