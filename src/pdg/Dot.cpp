//===- pdg/Dot.cpp - PDG DOT export ----------------------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "pdg/Dot.h"

#include "cfg/Cfg.h"
#include "ir/Linearize.h"
#include "pdg/DataDependence.h"

#include <map>
#include <sstream>

using namespace rap;

namespace {

std::string escapeLabel(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

std::string nodeName(const PdgNode *N) {
  switch (N->kind()) {
  case PdgNodeKind::Region:
    return "R" + std::to_string(N->Id);
  case PdgNodeKind::Predicate:
    return "P" + std::to_string(N->Id);
  case PdgNodeKind::Statement:
    return "S" + std::to_string(N->Id);
  }
  return "?";
}

std::string nodeLabel(const PdgNode *N) {
  std::ostringstream OS;
  OS << nodeName(N);
  if (N->isStatement() || N->isPredicate()) {
    for (const Instr *I : N->Code)
      OS << "\\n" << escapeLabel(I->str());
    if (N->isPredicate() && N->Branch)
      OS << "\\n" << escapeLabel(N->Branch->str());
  }
  if (N->isRegion() && N->IsLoop)
    OS << " (loop)";
  return OS.str();
}

void emitControlEdges(const PdgNode *N, std::ostringstream &OS) {
  if (N->isPredicate()) {
    if (N->TrueRegion) {
      OS << "  " << nodeName(N) << " -> " << nodeName(N->TrueRegion)
         << " [style=dashed, label=\"T\"];\n";
      emitControlEdges(N->TrueRegion, OS);
    }
    if (N->FalseRegion) {
      OS << "  " << nodeName(N) << " -> " << nodeName(N->FalseRegion)
         << " [style=dashed, label=\"F\"];\n";
      emitControlEdges(N->FalseRegion, OS);
    }
    return;
  }
  for (const PdgNode *C : N->Children) {
    OS << "  " << nodeName(N) << " -> " << nodeName(C) << " [style=dashed];\n";
    emitControlEdges(C, OS);
  }
}

} // namespace

std::string rap::pdgToDot(IlocFunction &F, bool WithDataDeps) {
  std::ostringstream OS;
  OS << "digraph \"" << F.name() << "\" {\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";

  F.root()->forEachNode([&](const PdgNode *N) {
    OS << "  " << nodeName(N) << " [label=\"" << nodeLabel(N) << "\"";
    if (N->isRegion())
      OS << ", shape=ellipse";
    OS << "];\n";
  });

  emitControlEdges(F.root(), OS);

  if (WithDataDeps) {
    LinearCode Code = linearize(F);
    Cfg G(Code);
    DataDependence DD(Code, G, F.numVRegs());

    // Map instruction position -> owning PDG statement/predicate node.
    std::map<unsigned, const PdgNode *> OwnerOfPos;
    F.root()->forEachNode([&](const PdgNode *N) {
      if (!N->isStatement() && !N->isPredicate())
        return;
      for (const Instr *I : N->Code)
        OwnerOfPos[I->LinPos] = N;
      if (N->isPredicate() && N->Branch)
        OwnerOfPos[N->Branch->LinPos] = N;
    });

    std::map<std::pair<const PdgNode *, const PdgNode *>, bool> Seen;
    for (const FlowDep &D : DD.flowDeps()) {
      auto DefIt = OwnerOfPos.find(D.DefPos);
      auto UseIt = OwnerOfPos.find(D.UsePos);
      if (DefIt == OwnerOfPos.end() || UseIt == OwnerOfPos.end())
        continue;
      auto Key = std::make_pair(DefIt->second, UseIt->second);
      if (Seen[Key])
        continue;
      Seen[Key] = true;
      OS << "  " << nodeName(DefIt->second) << " -> "
         << nodeName(UseIt->second) << " [color=blue];\n";
    }
  }

  OS << "}\n";
  return OS.str();
}

static void treeText(const PdgNode *N, int Depth, std::ostringstream &OS) {
  OS << std::string(static_cast<size_t>(Depth) * 2, ' ');
  switch (N->kind()) {
  case PdgNodeKind::Region:
    OS << "region R" << N->Id << (N->IsLoop ? " loop" : "") << "\n";
    for (const PdgNode *C : N->Children)
      treeText(C, Depth + 1, OS);
    return;
  case PdgNodeKind::Predicate:
    OS << "predicate P" << N->Id << " (" << N->Code.size() + 1
       << " instrs)\n";
    if (N->TrueRegion) {
      OS << std::string(static_cast<size_t>(Depth + 1) * 2, ' ') << "T:\n";
      treeText(N->TrueRegion, Depth + 2, OS);
    }
    if (N->FalseRegion) {
      OS << std::string(static_cast<size_t>(Depth + 1) * 2, ' ') << "F:\n";
      treeText(N->FalseRegion, Depth + 2, OS);
    }
    return;
  case PdgNodeKind::Statement:
    OS << "stmt S" << N->Id << " (" << N->Code.size() << " instrs)\n";
    return;
  }
}

std::string rap::regionTreeToText(const IlocFunction &F) {
  std::ostringstream OS;
  treeText(F.root(), 0, OS);
  return OS.str();
}
