//===- pdg/ControlDependence.cpp - FOW control dependence ------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "pdg/ControlDependence.h"

#include <algorithm>
#include <cassert>

using namespace rap;

ControlDependence::ControlDependence(const Cfg &G,
                                     const DominatorTree &PostDom) {
  assert(PostDom.isPostDom() && "control dependence needs postdominators");
  unsigned N = G.numBlocks();
  Deps.assign(N, {});

  // For every CFG edge A -> S where S does not postdominate A, walk the
  // postdominator tree from S up to (but excluding) ipostdom(A); every block
  // visited is control dependent on the edge.
  for (unsigned A = 0; A != N; ++A) {
    for (unsigned S : G.block(A).Succs) {
      if (PostDom.dominates(S, A))
        continue;
      int Stop = PostDom.idom(A); // may be the virtual exit
      int Cur = static_cast<int>(S);
      while (Cur >= 0 && Cur != Stop &&
             static_cast<unsigned>(Cur) != PostDom.root()) {
        Deps[Cur].push_back(ControlDep{A, S});
        Cur = PostDom.idom(static_cast<unsigned>(Cur));
      }
    }
  }

  for (auto &D : Deps) {
    std::sort(D.begin(), D.end());
    D.erase(std::unique(D.begin(), D.end()), D.end());
  }
}
