//===- pdg/SeriesParallel.h - Series-parallel region decomposition -*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit series-parallel view of the PDG region hierarchy. The region
/// tree already *is* series-parallel — a region's subregions are control
/// siblings with no ordering constraint between their allocations, while a
/// parent's allocation is in series after all of its children — but RAP's
/// recursive walk leaves that structure implicit in the call stack. This
/// decomposition materializes it: one SPNode per region node, children in
/// subregions() order, with postorder indices that equal the completion
/// order of the classic sequential bottom-up walk.
///
/// The decomposition is what the region-parallel allocator schedules over:
/// sibling subtrees are the "parallel" composition (independent tasks), the
/// child-then-parent edge is the "series" composition (a countdown
/// dependency). Subtree sizes let the scheduler pick a task grain so tiny
/// regions don't each pay a task-dispatch round trip.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_PDG_SERIESPARALLEL_H
#define RAP_PDG_SERIESPARALLEL_H

#include <cstddef>
#include <string>
#include <vector>

namespace rap {

class PdgNode;

/// One region node of the series-parallel decomposition. Index is the
/// node's postorder position, which is exactly the order the sequential
/// bottom-up allocator finishes regions in — committing speculative results
/// in ascending Index order therefore reproduces the sequential schedule
/// bit for bit.
struct SPNode {
  PdgNode *Region = nullptr;
  unsigned Index = 0;         ///< postorder index; position in nodes()
  int Parent = -1;            ///< parent SPNode index, -1 for the root
  std::vector<unsigned> Children; ///< child indices, in subregions() order
  unsigned Depth = 0;         ///< root = 0
  unsigned SubtreeRegions = 1;
  unsigned SubtreeInstrs = 0; ///< instructions in the whole subtree
  bool IsLoop = false;
};

/// The series-parallel decomposition of one function's region tree.
/// Immutable after construction; safe to share across threads.
class SeriesParallelDecomposition {
public:
  /// Builds the decomposition rooted at \p Root (a region node).
  explicit SeriesParallelDecomposition(PdgNode *Root);

  const std::vector<SPNode> &nodes() const { return Nodes; }
  size_t size() const { return Nodes.size(); }
  const SPNode &node(unsigned Index) const { return Nodes[Index]; }

  /// The root region's node — always the last postorder index.
  const SPNode &root() const { return Nodes.back(); }

  /// Largest sibling group: an upper bound on how many regions can be
  /// unlocked by one completion, and a cheap proxy for available
  /// parallelism width.
  unsigned maxWidth() const { return Width; }
  unsigned maxDepth() const { return MaxDepth; }

  /// Human-readable dump (tests and --stats debugging).
  std::string str() const;

private:
  unsigned build(PdgNode *Region, int Parent, unsigned Depth);

  std::vector<SPNode> Nodes;
  unsigned Width = 0;
  unsigned MaxDepth = 0;
};

} // namespace rap

#endif // RAP_PDG_SERIESPARALLEL_H
