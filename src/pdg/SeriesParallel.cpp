//===- pdg/SeriesParallel.cpp - Series-parallel region decomposition --------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "pdg/SeriesParallel.h"

#include "ir/RegionTree.h"

#include <algorithm>

using namespace rap;

SeriesParallelDecomposition::SeriesParallelDecomposition(PdgNode *Root) {
  build(Root, /*Parent=*/-1, /*Depth=*/0);
}

unsigned SeriesParallelDecomposition::build(PdgNode *Region, int Parent,
                                            unsigned Depth) {
  // Children first: postorder indices must match the sequential bottom-up
  // allocator, which finishes every subregion before its parent.
  std::vector<PdgNode *> Subs = Region->subregions();
  std::vector<unsigned> ChildIdx;
  ChildIdx.reserve(Subs.size());
  unsigned Regions = 1;
  unsigned Instrs = 0;
  for (PdgNode *Sub : Subs) {
    unsigned C = build(Sub, /*Parent=*/-1, Depth + 1);
    ChildIdx.push_back(C);
    Regions += Nodes[C].SubtreeRegions;
    Instrs += Nodes[C].SubtreeInstrs;
  }

  // Instructions attached at this region's own level (statement leaves and
  // predicate condition/branch code directly below it).
  Instrs += static_cast<unsigned>(Region->parentCode().size());

  SPNode N;
  N.Region = Region;
  N.Index = static_cast<unsigned>(Nodes.size());
  N.Parent = Parent;
  N.Children = std::move(ChildIdx);
  N.Depth = Depth;
  N.SubtreeRegions = Regions;
  N.SubtreeInstrs = Instrs;
  N.IsLoop = Region->IsLoop;
  for (unsigned C : N.Children)
    Nodes[C].Parent = static_cast<int>(N.Index);
  Width = std::max(Width, static_cast<unsigned>(N.Children.size()));
  MaxDepth = std::max(MaxDepth, Depth);
  Nodes.push_back(std::move(N));
  return Nodes.back().Index;
}

std::string SeriesParallelDecomposition::str() const {
  std::string Out;
  for (const SPNode &N : Nodes) {
    Out += "sp#" + std::to_string(N.Index);
    Out += " region=" + std::to_string(N.Region->Id);
    Out += " parent=" + std::to_string(N.Parent);
    Out += " depth=" + std::to_string(N.Depth);
    Out += " regions=" + std::to_string(N.SubtreeRegions);
    Out += " instrs=" + std::to_string(N.SubtreeInstrs);
    if (N.IsLoop)
      Out += " loop";
    Out += "\n";
  }
  return Out;
}
