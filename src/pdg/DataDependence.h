//===- pdg/DataDependence.h - Flow dependences ------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register flow (def-use) dependences computed with a classic reaching-
/// definitions dataflow over the linearized ILOC. These are the data
/// dependence edges of the PDG (paper §2.2, Figure 1 — including the cyclic
/// self-dependence of `i = i + 1` inside a loop). Register allocation does
/// not consume them directly (it uses liveness), but they complete the PDG
/// as a program representation and feed the DOT export.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_PDG_DATADEPENDENCE_H
#define RAP_PDG_DATADEPENDENCE_H

#include "cfg/Cfg.h"
#include "ir/Linearize.h"

#include <vector>

namespace rap {

/// A flow dependence: the value defined at instruction position DefPos
/// reaches the use at position UsePos of register R.
struct FlowDep {
  unsigned DefPos = 0;
  unsigned UsePos = 0;
  Reg R = NoReg;

  bool operator<(const FlowDep &O) const {
    if (DefPos != O.DefPos)
      return DefPos < O.DefPos;
    if (UsePos != O.UsePos)
      return UsePos < O.UsePos;
    return R < O.R;
  }
  bool operator==(const FlowDep &O) const {
    return DefPos == O.DefPos && UsePos == O.UsePos && R == O.R;
  }
};

class DataDependence {
public:
  DataDependence(const LinearCode &Code, const Cfg &G, unsigned NumVRegs);

  /// All flow dependences, sorted by (def, use).
  const std::vector<FlowDep> &flowDeps() const { return Flows; }

  /// The flow dependences of the single register \p R, sorted by (def, use).
  /// Runs the reaching-definitions fixpoint over just R's definitions, so a
  /// caller interested in one register (RAP's outside-the-region spill
  /// fixup) avoids the whole-function solve.
  static std::vector<FlowDep> flowDepsFor(const LinearCode &Code,
                                          const Cfg &G, Reg R);

  /// The definition positions reaching the use of \p R at \p UsePos.
  std::vector<unsigned> reachingDefs(unsigned UsePos, Reg R) const;

private:
  std::vector<FlowDep> Flows;
};

} // namespace rap

#endif // RAP_PDG_DATADEPENDENCE_H
