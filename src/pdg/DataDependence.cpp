//===- pdg/DataDependence.cpp - Flow dependences ---------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "pdg/DataDependence.h"

#include "support/BitVector.h"

#include <algorithm>

using namespace rap;

DataDependence::DataDependence(const LinearCode &Code, const Cfg &G,
                               unsigned NumVRegs) {
  unsigned N = static_cast<unsigned>(Code.Instrs.size());

  // Number the definitions.
  std::vector<unsigned> DefPosOfId;   // def id -> instruction position
  std::vector<int> DefIdOfPos(N, -1); // instruction position -> def id
  std::vector<std::vector<unsigned>> DefsOfReg(NumVRegs);
  for (unsigned P = 0; P != N; ++P) {
    const Instr *I = Code.Instrs[P];
    if (!I->hasDef())
      continue;
    unsigned Id = static_cast<unsigned>(DefPosOfId.size());
    DefIdOfPos[P] = static_cast<int>(Id);
    DefPosOfId.push_back(P);
    DefsOfReg[I->Dst].push_back(Id);
  }
  unsigned NumDefs = static_cast<unsigned>(DefPosOfId.size());

  // Block-level gen/kill.
  unsigned NumBlocks = G.numBlocks();
  std::vector<BitVector> Gen(NumBlocks, BitVector(NumDefs));
  std::vector<BitVector> Kill(NumBlocks, BitVector(NumDefs));
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = G.block(B);
    for (unsigned P = BB.Begin; P != BB.End; ++P) {
      const Instr *I = Code.Instrs[P];
      if (!I->hasDef())
        continue;
      for (unsigned Other : DefsOfReg[I->Dst]) {
        Gen[B].reset(Other);
        Kill[B].set(Other);
      }
      Gen[B].set(static_cast<unsigned>(DefIdOfPos[P]));
    }
  }

  // Forward fixpoint.
  std::vector<BitVector> In(NumBlocks, BitVector(NumDefs));
  std::vector<BitVector> Out(NumBlocks, BitVector(NumDefs));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = 0; B != NumBlocks; ++B) {
      BitVector NewIn(NumDefs);
      for (unsigned P : G.block(B).Preds)
        NewIn.unionWith(Out[P]);
      BitVector NewOut = NewIn;
      NewOut.subtract(Kill[B]);
      NewOut.unionWith(Gen[B]);
      if (NewIn != In[B] || NewOut != Out[B]) {
        In[B] = std::move(NewIn);
        Out[B] = std::move(NewOut);
        Changed = true;
      }
    }
  }

  // Walk each block forward, pairing uses with their reaching definitions.
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = G.block(B);
    BitVector Reach = In[B];
    for (unsigned P = BB.Begin; P != BB.End; ++P) {
      const Instr *I = Code.Instrs[P];
      for (Reg R : I->Src)
        for (unsigned DefId : DefsOfReg[R])
          if (Reach.test(DefId))
            Flows.push_back(FlowDep{DefPosOfId[DefId], P, R});
      if (I->hasDef()) {
        for (unsigned Other : DefsOfReg[I->Dst])
          Reach.reset(Other);
        Reach.set(static_cast<unsigned>(DefIdOfPos[P]));
      }
    }
  }

  std::sort(Flows.begin(), Flows.end());
  Flows.erase(std::unique(Flows.begin(), Flows.end()), Flows.end());
}

std::vector<unsigned> DataDependence::reachingDefs(unsigned UsePos,
                                                   Reg R) const {
  std::vector<unsigned> Out;
  for (const FlowDep &F : Flows)
    if (F.UsePos == UsePos && F.R == R)
      Out.push_back(F.DefPos);
  return Out;
}
