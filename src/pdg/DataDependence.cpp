//===- pdg/DataDependence.cpp - Flow dependences ---------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "pdg/DataDependence.h"

#include "support/BitVector.h"

#include <algorithm>

using namespace rap;

DataDependence::DataDependence(const LinearCode &Code, const Cfg &G,
                               unsigned NumVRegs) {
  unsigned N = static_cast<unsigned>(Code.Instrs.size());

  // Number the definitions.
  std::vector<unsigned> DefPosOfId;   // def id -> instruction position
  std::vector<int> DefIdOfPos(N, -1); // instruction position -> def id
  std::vector<std::vector<unsigned>> DefsOfReg(NumVRegs);
  for (unsigned P = 0; P != N; ++P) {
    const Instr *I = Code.Instrs[P];
    if (!I->hasDef())
      continue;
    unsigned Id = static_cast<unsigned>(DefPosOfId.size());
    DefIdOfPos[P] = static_cast<int>(Id);
    DefPosOfId.push_back(P);
    DefsOfReg[I->Dst].push_back(Id);
  }
  unsigned NumDefs = static_cast<unsigned>(DefPosOfId.size());

  // Block-level gen/kill.
  unsigned NumBlocks = G.numBlocks();
  std::vector<BitVector> Gen(NumBlocks, BitVector(NumDefs));
  std::vector<BitVector> Kill(NumBlocks, BitVector(NumDefs));
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = G.block(B);
    for (unsigned P = BB.Begin; P != BB.End; ++P) {
      const Instr *I = Code.Instrs[P];
      if (!I->hasDef())
        continue;
      for (unsigned Other : DefsOfReg[I->Dst]) {
        Gen[B].reset(Other);
        Kill[B].set(Other);
      }
      Gen[B].set(static_cast<unsigned>(DefIdOfPos[P]));
    }
  }

  // Forward fixpoint.
  std::vector<BitVector> In(NumBlocks, BitVector(NumDefs));
  std::vector<BitVector> Out(NumBlocks, BitVector(NumDefs));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = 0; B != NumBlocks; ++B) {
      BitVector NewIn(NumDefs);
      for (unsigned P : G.block(B).Preds)
        NewIn.unionWith(Out[P]);
      BitVector NewOut = NewIn;
      NewOut.subtract(Kill[B]);
      NewOut.unionWith(Gen[B]);
      if (NewIn != In[B] || NewOut != Out[B]) {
        In[B] = std::move(NewIn);
        Out[B] = std::move(NewOut);
        Changed = true;
      }
    }
  }

  // Walk each block forward, pairing uses with their reaching definitions.
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = G.block(B);
    BitVector Reach = In[B];
    for (unsigned P = BB.Begin; P != BB.End; ++P) {
      const Instr *I = Code.Instrs[P];
      for (Reg R : I->Src)
        for (unsigned DefId : DefsOfReg[R])
          if (Reach.test(DefId))
            Flows.push_back(FlowDep{DefPosOfId[DefId], P, R});
      if (I->hasDef()) {
        for (unsigned Other : DefsOfReg[I->Dst])
          Reach.reset(Other);
        Reach.set(static_cast<unsigned>(DefIdOfPos[P]));
      }
    }
  }

  std::sort(Flows.begin(), Flows.end());
  Flows.erase(std::unique(Flows.begin(), Flows.end()), Flows.end());
}

std::vector<FlowDep> DataDependence::flowDepsFor(const LinearCode &Code,
                                                 const Cfg &G, Reg R) {
  // Same reaching-definitions scheme as the constructor, restricted to the
  // definitions of one register: def-id universes are tiny, so the block
  // sets fit a handful of words and the fixpoint touches only R's defs.
  unsigned N = static_cast<unsigned>(Code.Instrs.size());
  std::vector<unsigned> DefPosOfId;
  for (unsigned P = 0; P != N; ++P) {
    const Instr *I = Code.Instrs[P];
    if (I->hasDef() && I->Dst == R)
      DefPosOfId.push_back(P);
  }
  std::vector<FlowDep> Flows;
  unsigned NumDefs = static_cast<unsigned>(DefPosOfId.size());
  if (NumDefs == 0)
    return Flows;
  auto defIdAt = [&](unsigned P) {
    return static_cast<unsigned>(
        std::lower_bound(DefPosOfId.begin(), DefPosOfId.end(), P) -
        DefPosOfId.begin());
  };

  unsigned NumBlocks = G.numBlocks();
  // A block either passes reaching defs through (no def of R) or replaces
  // them with its last def, so Gen/Kill collapse to one def id per block.
  std::vector<int> LastDef(NumBlocks, -1);
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = G.block(B);
    for (unsigned P = BB.Begin; P != BB.End; ++P) {
      const Instr *I = Code.Instrs[P];
      if (I->hasDef() && I->Dst == R)
        LastDef[B] = static_cast<int>(defIdAt(P));
    }
  }

  // Flat word storage: this runs once per spill attempt, so the block sets
  // live in two arrays instead of per-block heap vectors.
  unsigned W = (NumDefs + 63) / 64;
  std::vector<uint64_t> In(static_cast<size_t>(NumBlocks) * W, 0);
  std::vector<uint64_t> Out(static_cast<size_t>(NumBlocks) * W, 0);
  std::vector<uint64_t> Tmp(W);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = 0; B != NumBlocks; ++B) {
      std::fill(Tmp.begin(), Tmp.end(), 0);
      for (unsigned P : G.block(B).Preds)
        for (unsigned I = 0; I != W; ++I)
          Tmp[I] |= Out[static_cast<size_t>(P) * W + I];
      uint64_t *InB = &In[static_cast<size_t>(B) * W];
      uint64_t *OutB = &Out[static_cast<size_t>(B) * W];
      for (unsigned I = 0; I != W; ++I) {
        if (Tmp[I] != InB[I]) {
          InB[I] = Tmp[I];
          Changed = true;
        }
      }
      if (LastDef[B] >= 0) {
        unsigned Id = static_cast<unsigned>(LastDef[B]);
        std::fill(Tmp.begin(), Tmp.end(), 0);
        Tmp[Id / 64] = uint64_t(1) << (Id % 64);
      }
      for (unsigned I = 0; I != W; ++I) {
        if (Tmp[I] != OutB[I]) {
          OutB[I] = Tmp[I];
          Changed = true;
        }
      }
    }
  }

  std::vector<uint64_t> Reach(W);
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = G.block(B);
    std::copy(In.begin() + static_cast<size_t>(B) * W,
              In.begin() + static_cast<size_t>(B + 1) * W, Reach.begin());
    for (unsigned P = BB.Begin; P != BB.End; ++P) {
      const Instr *I = Code.Instrs[P];
      for (Reg Src : I->Src)
        if (Src == R)
          for (unsigned WI = 0; WI != W; ++WI)
            for (uint64_t Bits = Reach[WI]; Bits; Bits &= Bits - 1) {
              unsigned DefId =
                  WI * 64 + static_cast<unsigned>(__builtin_ctzll(Bits));
              Flows.push_back(FlowDep{DefPosOfId[DefId], P, R});
            }
      if (I->hasDef() && I->Dst == R) {
        std::fill(Reach.begin(), Reach.end(), 0);
        unsigned Id = defIdAt(P);
        Reach[Id / 64] = uint64_t(1) << (Id % 64);
      }
    }
  }

  std::sort(Flows.begin(), Flows.end());
  Flows.erase(std::unique(Flows.begin(), Flows.end()), Flows.end());
  return Flows;
}

std::vector<unsigned> DataDependence::reachingDefs(unsigned UsePos,
                                                   Reg R) const {
  std::vector<unsigned> Out;
  for (const FlowDep &F : Flows)
    if (F.UsePos == UsePos && F.R == R)
      Out.push_back(F.DefPos);
  return Out;
}
