//===- pdg/Dot.h - PDG DOT export -------------------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a function's PDG — the region/predicate/statement hierarchy plus
/// the register flow dependences — as Graphviz DOT, reproducing the style of
/// the paper's Figure 1 (solid data-dependence arrows, dashed control
/// dependence, region nodes R*, predicate nodes P*).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_PDG_DOT_H
#define RAP_PDG_DOT_H

#include "ir/IlocFunction.h"

#include <string>

namespace rap {

/// Produces a DOT graph of \p F's PDG. Includes data-dependence edges
/// between statement/predicate nodes when \p WithDataDeps is set.
std::string pdgToDot(IlocFunction &F, bool WithDataDeps = true);

/// Produces an indented text outline of the region tree (for tests and
/// quick inspection).
std::string regionTreeToText(const IlocFunction &F);

} // namespace rap

#endif // RAP_PDG_DOT_H
