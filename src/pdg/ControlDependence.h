//===- pdg/ControlDependence.h - FOW control dependence ---------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control dependence computed from the CFG with the Ferrante / Ottenstein /
/// Warren construction (paper ref [16]): block B is control dependent on
/// edge A->S iff B postdominates S but does not postdominate A. For our
/// structured MiniC programs the resulting dependence sets are nested, and
/// tests cross-check them against the syntax-directed region tree built by
/// lowering; the analysis itself is general and handles any reducible or
/// irreducible CFG with reachable exits.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_PDG_CONTROLDEPENDENCE_H
#define RAP_PDG_CONTROLDEPENDENCE_H

#include "cfg/Cfg.h"
#include "cfg/Dominators.h"

#include <vector>

namespace rap {

/// One control-dependence fact: the dependent block executes only when the
/// branch terminating block Controller takes the edge to EdgeTarget.
struct ControlDep {
  unsigned Controller = 0;
  unsigned EdgeTarget = 0;

  bool operator==(const ControlDep &O) const {
    return Controller == O.Controller && EdgeTarget == O.EdgeTarget;
  }
  bool operator<(const ControlDep &O) const {
    return Controller != O.Controller ? Controller < O.Controller
                                      : EdgeTarget < O.EdgeTarget;
  }
};

class ControlDependence {
public:
  ControlDependence(const Cfg &G, const DominatorTree &PostDom);

  /// The control-dependence set of \p Block, sorted.
  const std::vector<ControlDep> &depsOf(unsigned Block) const {
    return Deps[Block];
  }

private:
  std::vector<std::vector<ControlDep>> Deps;
};

} // namespace rap

#endif // RAP_PDG_CONTROLDEPENDENCE_H
