//===- regalloc/GlobalSpillCleanup.cpp - Dataflow spill cleanup -------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/GlobalSpillCleanup.h"

#include "regalloc/AllocError.h"

#include "cfg/Cfg.h"
#include "ir/Linearize.h"
#include "support/BitVector.h"
#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <vector>

using namespace rap;

namespace {

/// Forward availability state: bit (Slot * K + Reg) set means the register
/// holds the slot's current value.
class AvailState {
public:
  AvailState(unsigned NumSlots, unsigned K)
      : K(K), Bits(NumSlots * K) {}

  static AvailState top(unsigned NumSlots, unsigned K) {
    AvailState S(NumSlots, K);
    for (unsigned I = 0; I != NumSlots * K; ++I)
      S.Bits.set(I);
    return S;
  }

  bool has(int Slot, Reg R) const {
    return Bits.test(static_cast<unsigned>(Slot) * K + R);
  }
  void add(int Slot, Reg R) {
    Bits.set(static_cast<unsigned>(Slot) * K + R);
  }

  void killReg(Reg R) {
    for (unsigned S = 0; S * K < Bits.size(); ++S)
      Bits.reset(S * K + R);
  }
  void killSlot(int Slot) {
    for (unsigned R = 0; R != K; ++R)
      Bits.reset(static_cast<unsigned>(Slot) * K + R);
  }

  /// Copy `Dst = Src`: Dst now holds whatever slots Src holds.
  void copy(Reg Dst, Reg Src) {
    std::vector<unsigned> Slots;
    for (unsigned S = 0; S * K < Bits.size(); ++S)
      if (Bits.test(S * K + Src))
        Slots.push_back(S);
    killReg(Dst);
    for (unsigned S : Slots)
      Bits.set(S * K + Dst);
  }

  bool meet(const AvailState &Other) { return Bits.intersectWith(Other.Bits); }
  bool operator==(const AvailState &O) const { return Bits == O.Bits; }

  /// Applies \p I's effect.
  void transfer(const Instr *I) {
    switch (I->Op) {
    case Opcode::LdSpill:
      killReg(I->Dst);
      add(I->Slot, I->Dst);
      return;
    case Opcode::StSpill:
      killSlot(I->Slot);
      add(I->Slot, I->Src[0]);
      return;
    case Opcode::Mv:
      copy(I->Dst, I->Src[0]);
      return;
    default:
      if (I->hasDef())
        killReg(I->Dst);
      return;
    }
  }

private:
  unsigned K;
  BitVector Bits;
};

/// Deletes reloads of values already held in registers (cross-block).
GlobalCleanupResult availableReloadPass(IlocFunction &F) {
  GlobalCleanupResult Res;
  unsigned NumSlots = static_cast<unsigned>(F.numSpillSlots());
  unsigned K = F.numPhysRegs();
  if (NumSlots == 0)
    return Res;

  LinearCode Code = linearize(F);
  if (Code.Instrs.empty())
    return Res;
  Cfg G(Code);
  unsigned NB = G.numBlocks();

  std::vector<AvailState> In(NB, AvailState::top(NumSlots, K));
  std::vector<AvailState> Out(NB, AvailState::top(NumSlots, K));
  In[0] = AvailState(NumSlots, K); // nothing available at entry

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = 0; B != NB; ++B) {
      if (B != 0) {
        AvailState NewIn = AvailState::top(NumSlots, K);
        bool HasPred = false;
        for (unsigned P : G.block(B).Preds) {
          NewIn.meet(Out[P]);
          HasPred = true;
        }
        if (!HasPred)
          NewIn = AvailState(NumSlots, K);
        if (!(NewIn == In[B])) {
          In[B] = NewIn;
          Changed = true;
        }
      }
      AvailState S = In[B];
      for (unsigned P = G.block(B).Begin; P != G.block(B).End; ++P)
        S.transfer(Code.Instrs[P]);
      if (!(S == Out[B])) {
        Out[B] = std::move(S);
        Changed = true;
      }
    }
  }

  // Rewrite with the converged facts.
  std::set<Instr *> Dead;
  for (unsigned B = 0; B != NB; ++B) {
    AvailState S = In[B];
    for (unsigned P = G.block(B).Begin; P != G.block(B).End; ++P) {
      Instr *I = Code.Instrs[P];
      if (I->Op == Opcode::LdSpill) {
        if (S.has(I->Slot, I->Dst)) {
          Dead.insert(I);
          ++Res.RemovedLoads;
          continue; // no transfer: the load was a no-op on the state
        }
        for (unsigned R = 0; R != K; ++R)
          if (S.has(I->Slot, R)) {
            I->Op = Opcode::Mv;
            I->Src = {R};
            I->Slot = -1;
            ++Res.LoadsToCopies;
            break;
          }
      } else if (I->Op == Opcode::StSpill &&
                 S.has(I->Slot, I->Src[0])) {
        Dead.insert(I);
        ++Res.RemovedStores;
        continue;
      }
      S.transfer(I);
    }
  }

  if (!Dead.empty()) {
    F.root()->forEachNode([&](const PdgNode *CN) {
      auto *N = const_cast<PdgNode *>(CN);
      if (!N->isStatement() && !N->isPredicate())
        return;
      N->Code.erase(
          std::remove_if(N->Code.begin(), N->Code.end(),
                         [&](Instr *I) { return Dead.count(I) != 0; }),
          N->Code.end());
    });
  }
  return Res;
}

/// Deletes stores to spill slots that are never read again (slots die with
/// the activation frame).
unsigned deadStorePass(IlocFunction &F) {
  unsigned NumSlots = static_cast<unsigned>(F.numSpillSlots());
  if (NumSlots == 0)
    return 0;
  LinearCode Code = linearize(F);
  if (Code.Instrs.empty())
    return 0;
  Cfg G(Code);
  unsigned NB = G.numBlocks();

  // Backward liveness of slots.
  std::vector<BitVector> LiveIn(NB, BitVector(NumSlots));
  std::vector<BitVector> LiveOut(NB, BitVector(NumSlots));
  std::vector<BitVector> Use(NB, BitVector(NumSlots));
  std::vector<BitVector> Def(NB, BitVector(NumSlots));
  for (unsigned B = 0; B != NB; ++B) {
    for (unsigned P = G.block(B).Begin; P != G.block(B).End; ++P) {
      const Instr *I = Code.Instrs[P];
      if (I->Op == Opcode::LdSpill && !Def[B].test(I->Slot))
        Use[B].set(I->Slot);
      else if (I->Op == Opcode::StSpill)
        Def[B].set(I->Slot);
    }
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = NB; B-- > 0;) {
      BitVector NewOut(NumSlots);
      for (unsigned S : G.block(B).Succs)
        NewOut.unionWith(LiveIn[S]);
      BitVector NewIn = NewOut;
      NewIn.subtract(Def[B]);
      NewIn.unionWith(Use[B]);
      if (NewOut != LiveOut[B] || NewIn != LiveIn[B]) {
        LiveOut[B] = std::move(NewOut);
        LiveIn[B] = std::move(NewIn);
        Changed = true;
      }
    }
  }

  std::set<Instr *> Dead;
  for (unsigned B = 0; B != NB; ++B) {
    BitVector Live = LiveOut[B];
    for (unsigned P = G.block(B).End; P-- > G.block(B).Begin;) {
      Instr *I = Code.Instrs[P];
      if (I->Op == Opcode::StSpill) {
        if (!Live.test(I->Slot))
          Dead.insert(I);
        Live.reset(I->Slot);
      } else if (I->Op == Opcode::LdSpill) {
        Live.set(I->Slot);
      }
    }
  }

  if (!Dead.empty()) {
    F.root()->forEachNode([&](const PdgNode *CN) {
      auto *N = const_cast<PdgNode *>(CN);
      if (!N->isStatement() && !N->isPredicate())
        return;
      N->Code.erase(
          std::remove_if(N->Code.begin(), N->Code.end(),
                         [&](Instr *I) { return Dead.count(I) != 0; }),
          N->Code.end());
    });
  }
  return static_cast<unsigned>(Dead.size());
}

} // namespace

GlobalCleanupResult rap::globalSpillCleanup(IlocFunction &F,
                                            telemetry::FunctionScope *Scope) {
  telemetry::ScopedPhase Phase(Scope, "cleanup");
  allocCheck(F.isAllocated(), AllocErrorKind::InvariantViolation,
             "cleanup runs on physical code");
  GlobalCleanupResult Total;
  // Each pass can expose work for the other (a deleted dead store frees a
  // reload; a deleted reload kills a store's last reader). Iterate to a
  // fixpoint; each iteration strictly removes instructions, so this
  // terminates.
  for (;;) {
    GlobalCleanupResult R = availableReloadPass(F);
    unsigned DeadStores = deadStorePass(F);
    Total.RemovedLoads += R.RemovedLoads;
    Total.LoadsToCopies += R.LoadsToCopies;
    Total.RemovedStores += R.RemovedStores + DeadStores;
    if (Scope)
      Scope->add("cleanup.fixpoint_iterations");
    if (R.RemovedLoads + R.LoadsToCopies + R.RemovedStores + DeadStores == 0)
      break;
  }
  if (Scope) {
    Scope->add("cleanup.removed_loads", Total.RemovedLoads);
    Scope->add("cleanup.loads_to_copies", Total.LoadsToCopies);
    Scope->add("cleanup.removed_stores", Total.RemovedStores);
  }
  return Total;
}
