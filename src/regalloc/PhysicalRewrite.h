//===- regalloc/PhysicalRewrite.h - VReg -> physical rewrite ----*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites a colored function to physical registers and deletes copies
/// whose operands landed in the same register — the paper's observation that
/// "a copy statement in the unallocated iloc code can be eliminated when
/// both operands of the copy are allocated the same register" (§4).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_PHYSICALREWRITE_H
#define RAP_REGALLOC_PHYSICALREWRITE_H

#include "ir/IlocFunction.h"
#include "regalloc/InterferenceGraph.h"

namespace rap {

namespace telemetry {
class FunctionScope;
} // namespace telemetry

/// Rewrites every operand of \p F from virtual registers to the colors in
/// \p Final (which must color every referenced virtual register), marks the
/// function allocated with \p K physical registers, records the parameter
/// registers, and removes now-trivial copies. Returns the number of copies
/// deleted. With a telemetry \p Scope, the pass is timed as a "rewrite"
/// slice and records rewrite.copies_deleted.
unsigned rewriteToPhysical(IlocFunction &F, const InterferenceGraph &Final,
                           unsigned K,
                           telemetry::FunctionScope *Scope = nullptr);

} // namespace rap

#endif // RAP_REGALLOC_PHYSICALREWRITE_H
