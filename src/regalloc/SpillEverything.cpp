//===- regalloc/SpillEverything.cpp - Guaranteed-correct fallback -----------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every referenced virtual register gets a spill slot. Parameters (which
/// arrive in registers) are parked in their slots at function entry; every
/// other value lives in memory from birth: each instruction loads its
/// distinct source registers into fresh temporaries just before executing
/// and stores its result through a fresh temporary just after. The resulting
/// live ranges are atomic — a load temporary spans load..use, a def
/// temporary spans def..store, and nothing else is ever live — so a fixed
/// coloring works with no search:
///
///   * referenced parameter i -> color rank(i) (all parked params coexist
///     at entry, hence need #referenced-params <= k),
///   * the j-th distinct source temporary of an instruction -> color j
///     (all of one instruction's sources coexist at it, hence need
///     #distinct-sources <= k; only Call can exceed 2),
///   * every def temporary -> color 0 (source temporaries die at the
///     instruction, so color 0 is free again at the def).
///
/// Those <= k obligations are calling-convention / ISA facts that bind any
/// allocator for this code, not artifacts of this one, so within them the
/// fallback cannot fail.
///
//===----------------------------------------------------------------------===//

#include "regalloc/SpillEverything.h"

#include "regalloc/AllocSupport.h"
#include "regalloc/AssignmentVerifier.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/PhysicalRewrite.h"
#include "support/Stats.h"

#include <algorithm>

using namespace rap;

AllocStats rap::allocateSpillEverything(IlocFunction &F,
                                        const AllocOptions &Options) {
  allocCheck(!F.isAllocated(), AllocErrorKind::InvariantViolation,
             "spill-everything fallback needs an unallocated function");
  allocCheck(Options.K >= 3, AllocErrorKind::Unallocatable,
             "need at least 3 registers for a load/store ISA");

  AllocStats Stats;
  telemetry::FunctionScope *TS = Options.Scope;
  telemetry::ScopedPhase Phase(TS, "spill_everything");
  LinearCode Code = linearize(F);
  const Reg NumOrigVRegs = F.numVRegs(); // temps created below have no slot
  RefInfo Refs(Code, NumOrigVRegs);

  // One slot per referenced virtual register; every value's home is memory.
  std::vector<int> SlotOf(NumOrigVRegs, -1);
  for (Reg V = 0; V != NumOrigVRegs; ++V)
    if (Refs.isReferenced(V))
      SlotOf[V] = F.newSpillSlot();

  // The final assignment, built as registers are created.
  InterferenceGraph Final;
  auto SetColor = [&Final](Reg R, int Color) {
    Final.node(Final.getOrCreateNode(R)).Color = Color;
  };

  // Park referenced parameters. They are simultaneously live at entry, so
  // each needs its own color; ranks compact out unreferenced parameters.
  CodeEditor Editor(F);
  std::vector<Reg> Parked;
  for (Reg P = 0; P != F.numParams(); ++P)
    if (SlotOf[P] >= 0)
      Parked.push_back(P);
  if (Parked.size() > Options.K)
    throwAllocError(AllocErrorKind::Unallocatable,
                    "function has " + std::to_string(Parked.size()) +
                        " live parameters but only " +
                        std::to_string(Options.K) + " registers",
                    F.name());
  // insertAtRegionEntry prepends, so walk backwards to park in order.
  for (size_t I = Parked.size(); I--;) {
    Reg P = Parked[I];
    SetColor(P, static_cast<int>(I));
    Instr *St = F.createInstr(Opcode::StSpill);
    St->Slot = SlotOf[P];
    St->Src = {P};
    Editor.insertAtRegionEntry(F.root(), St);
    ++Stats.SpillStoresInserted;
  }

  // Rewrite each original instruction to load/operate/store form. The
  // linearization snapshot stays valid: edits add instructions around the
  // originals without moving them.
  for (Instr *I : Code.Instrs) {
    // Distinct sources, in first-occurrence order for determinism.
    std::vector<Reg> Srcs;
    for (Reg R : I->Src)
      if (std::find(Srcs.begin(), Srcs.end(), R) == Srcs.end())
        Srcs.push_back(R);
    if (Srcs.size() > Options.K)
      throwAllocError(AllocErrorKind::Unallocatable,
                      "instruction needs " + std::to_string(Srcs.size()) +
                          " simultaneous sources but only " +
                          std::to_string(Options.K) + " registers exist",
                      F.name());

    for (size_t Idx = 0; Idx != Srcs.size(); ++Idx) {
      Reg V = Srcs[Idx];
      Reg T = F.newVReg();
      SetColor(T, static_cast<int>(Idx));
      Instr *Ld = F.createInstr(Opcode::LdSpill);
      Ld->Dst = T;
      Ld->Slot = SlotOf[V];
      Editor.insertBefore(I, Ld);
      ++Stats.SpillLoadsInserted;
      for (Reg &R : I->Src)
        if (R == V)
          R = T;
    }

    if (I->hasDef()) {
      Reg OrigDst = I->Dst;
      Reg D = F.newVReg();
      SetColor(D, 0); // source temporaries are dead here
      I->Dst = D;
      Instr *St = F.createInstr(Opcode::StSpill);
      St->Slot = SlotOf[OrigDst];
      St->Src = {D};
      Editor.insertAfter(I, St);
      ++Stats.SpillStoresInserted;
    }
  }

  for (Reg V = 0; V != NumOrigVRegs; ++V)
    Stats.SpilledVRegs += SlotOf[V] >= 0;
  Stats.GraphBuilds = 1;
  Stats.MaxGraphNodes = Final.numAliveNodes();
  Stats.PeakGraphBytes = Final.memoryBytes();
  if (TS) {
    TS->add("spill_everything.spilled_vregs", Stats.SpilledVRegs);
    TS->add("spill_everything.loads_inserted", Stats.SpillLoadsInserted);
    TS->add("spill_everything.stores_inserted", Stats.SpillStoresInserted);
  }

  // Self-check in checked mode with the same independent oracle the primary
  // allocators answer to.
  if (Options.VerifyAssignments) {
    std::vector<AssignmentViolation> Violations = verifyAssignment(F, Final);
    if (!Violations.empty())
      throwAllocError(AllocErrorKind::VerifierReject,
                      "fallback self-check failed: " + Violations[0].Text,
                      F.name());
  }

  Stats.CopiesDeleted = rewriteToPhysical(F, Final, Options.K, TS);
  return Stats;
}
