//===- regalloc/AllocOutcome.h - Per-function allocation results -*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured results of the fault-isolated allocation driver: per-function
/// AllocStats (measurement counters), the AllocOutcome that records whether
/// a function allocated cleanly, degraded to the spill-everything fallback,
/// or failed hard, and the program-level aggregate. Outcomes are ordered by
/// function position and independent of thread scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_ALLOCOUTCOME_H
#define RAP_REGALLOC_ALLOCOUTCOME_H

#include "regalloc/AllocError.h"

#include <cstddef>
#include <string>
#include <vector>

namespace rap {

/// Per-function allocation measurements.
struct AllocStats {
  unsigned GraphBuilds = 0;    ///< interference graphs constructed
  unsigned SpilledVRegs = 0;   ///< virtual registers sent to memory
  unsigned MaxGraphNodes = 0;  ///< largest interference graph (space claim)
  unsigned RegionsProcessed = 0;
  unsigned SpillRounds = 0;  ///< coloring rounds that ended in spilling
  unsigned HoistedLoads = 0; ///< phase 2
  unsigned SunkStores = 0;   ///< phase 2
  unsigned MovementRemovedLoads = 0;  ///< in-loop ldm deleted by phase 2
  unsigned MovementRemovedStores = 0; ///< in-loop stm deleted by phase 2
  unsigned PeepholeRemovedLoads = 0;
  unsigned PeepholeRemovedStores = 0;
  unsigned PeepholeLoadsToCopies = 0; ///< Figure 6 pattern 2 (ldm -> mv)
  unsigned CleanupRemovedLoads = 0;  ///< dataflow extension
  unsigned CleanupRemovedStores = 0; ///< dataflow extension
  unsigned CopiesDeleted = 0; ///< mv rX, rX removed after assignment

  //===------------------------------------------------------------------===//
  // Spill-instruction ledger. Every LdSpill/StSpill an allocator creates is
  // counted at its creation site; every one a cleanup pass deletes (or
  // rewrites to a copy) is counted above. The telemetry test suite holds
  // the books to the final code:
  //
  //   #ldm in output == SpillLoadsInserted + HoistedLoads
  //                     - MovementRemovedLoads - PeepholeRemovedLoads
  //                     - PeepholeLoadsToCopies - CleanupRemovedLoads
  //
  // and symmetrically for stores (SunkStores / *RemovedStores).
  //===------------------------------------------------------------------===//
  unsigned SpillLoadsInserted = 0;  ///< ldm created during spilling
  unsigned SpillStoresInserted = 0; ///< stm created during spilling

  //===------------------------------------------------------------------===//
  // Cost instrumentation (excluded from determinism comparisons: wall time
  // varies run to run; see structuralEq).
  //===------------------------------------------------------------------===//
  double GraphBuildSeconds = 0;  ///< time in interference construction
  double LivenessSeconds = 0;    ///< time in liveness (re)computation
  size_t PeakGraphBytes = 0;     ///< largest adjacency footprint seen

  /// Field-by-field equality over the deterministic counters, ignoring the
  /// timing instrumentation. Used by the parallel-driver determinism check.
  bool structuralEq(const AllocStats &O) const {
    return GraphBuilds == O.GraphBuilds && SpilledVRegs == O.SpilledVRegs &&
           MaxGraphNodes == O.MaxGraphNodes &&
           RegionsProcessed == O.RegionsProcessed &&
           SpillRounds == O.SpillRounds &&
           HoistedLoads == O.HoistedLoads && SunkStores == O.SunkStores &&
           MovementRemovedLoads == O.MovementRemovedLoads &&
           MovementRemovedStores == O.MovementRemovedStores &&
           PeepholeRemovedLoads == O.PeepholeRemovedLoads &&
           PeepholeRemovedStores == O.PeepholeRemovedStores &&
           PeepholeLoadsToCopies == O.PeepholeLoadsToCopies &&
           CleanupRemovedLoads == O.CleanupRemovedLoads &&
           CleanupRemovedStores == O.CleanupRemovedStores &&
           CopiesDeleted == O.CopiesDeleted &&
           SpillLoadsInserted == O.SpillLoadsInserted &&
           SpillStoresInserted == O.SpillStoresInserted &&
           PeakGraphBytes == O.PeakGraphBytes;
  }

  void accumulate(const AllocStats &O) {
    GraphBuilds += O.GraphBuilds;
    SpilledVRegs += O.SpilledVRegs;
    MaxGraphNodes = MaxGraphNodes > O.MaxGraphNodes ? MaxGraphNodes
                                                    : O.MaxGraphNodes;
    RegionsProcessed += O.RegionsProcessed;
    SpillRounds += O.SpillRounds;
    HoistedLoads += O.HoistedLoads;
    SunkStores += O.SunkStores;
    MovementRemovedLoads += O.MovementRemovedLoads;
    MovementRemovedStores += O.MovementRemovedStores;
    PeepholeRemovedLoads += O.PeepholeRemovedLoads;
    PeepholeRemovedStores += O.PeepholeRemovedStores;
    PeepholeLoadsToCopies += O.PeepholeLoadsToCopies;
    CleanupRemovedLoads += O.CleanupRemovedLoads;
    CleanupRemovedStores += O.CleanupRemovedStores;
    CopiesDeleted += O.CopiesDeleted;
    SpillLoadsInserted += O.SpillLoadsInserted;
    SpillStoresInserted += O.SpillStoresInserted;
    GraphBuildSeconds += O.GraphBuildSeconds;
    LivenessSeconds += O.LivenessSeconds;
    PeakGraphBytes = PeakGraphBytes > O.PeakGraphBytes ? PeakGraphBytes
                                                       : O.PeakGraphBytes;
  }
};

enum class AllocStatus {
  Allocated, ///< the requested allocator succeeded
  Fallback,  ///< it failed; the spill-everything fallback allocated instead
  Failed,    ///< it failed and fallback was disabled (error rethrown)
};

/// What happened to one function's allocation.
struct AllocOutcome {
  std::string Function;
  AllocStatus Status = AllocStatus::Allocated;
  AllocStats Stats;

  /// Failure details (meaningful for Fallback/Failed).
  AllocErrorKind ErrorKind = AllocErrorKind::Internal;
  std::string Error; ///< rendered AllocError text, empty when Allocated

  bool degraded() const { return Status != AllocStatus::Allocated; }
};

/// allocateProgramChecked's aggregate: stats folded in function order plus
/// one outcome per function (same order as IlocProgram::functions()).
struct ProgramAllocResult {
  AllocStats Total;
  std::vector<AllocOutcome> Outcomes;

  unsigned numFallbacks() const {
    unsigned N = 0;
    for (const AllocOutcome &O : Outcomes)
      N += O.Status == AllocStatus::Fallback;
    return N;
  }
  bool allClean() const { return numFallbacks() == 0; }

  /// Human-readable per-function degradation report (empty when clean):
  /// one "function: kind: message" line per degraded function.
  std::string summary() const {
    std::string Out;
    for (const AllocOutcome &O : Outcomes) {
      if (!O.degraded())
        continue;
      Out += O.Function + ": degraded to spill-everything fallback (" +
             O.Error + ")\n";
    }
    return Out;
  }
};

} // namespace rap

#endif // RAP_REGALLOC_ALLOCOUTCOME_H
