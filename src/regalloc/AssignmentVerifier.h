//===- regalloc/AssignmentVerifier.h - Coloring checker ---------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent validity check of a register assignment: recomputes liveness
/// from scratch and reports every place where two simultaneously live
/// virtual registers received the same color. Used by tests and available
/// to allocator debugging; it is an oracle that does not share code with
/// interference-graph construction.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_ASSIGNMENTVERIFIER_H
#define RAP_REGALLOC_ASSIGNMENTVERIFIER_H

#include "ir/IlocFunction.h"
#include "regalloc/InterferenceGraph.h"

#include <string>
#include <vector>

namespace rap {

struct AssignmentViolation {
  unsigned Pos = 0; ///< linear position of the defining instruction
  Reg Defined = NoReg;
  Reg Clobbered = NoReg; ///< live register sharing the color
  std::string Text;      ///< human-readable description
};

/// Checks \p Final against \p F (still in virtual registers). A violation
/// is a definition of a register whose color is also the color of a
/// different register live after the definition (copy sources excepted).
std::vector<AssignmentViolation>
verifyAssignment(IlocFunction &F, const InterferenceGraph &Final);

} // namespace rap

#endif // RAP_REGALLOC_ASSIGNMENTVERIFIER_H
