//===- regalloc/AllocSupport.h - Shared allocator utilities -----*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Utilities shared by GRA and RAP: the analysis bundle recomputed after
/// every code edit (linearization, CFG, liveness), per-register reference
/// maps, and spill-code insertion into the region tree.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_ALLOCSUPPORT_H
#define RAP_REGALLOC_ALLOCSUPPORT_H

#include "cfg/Cfg.h"
#include "cfg/Liveness.h"
#include "ir/IlocFunction.h"
#include "ir/Linearize.h"
#include "pdg/DataDependence.h"

#include <memory>
#include <vector>

namespace rap {

/// Linearization + CFG + liveness of one function. Invalidated by any code
/// edit; allocators rebuild it after each spill round — passing the stale
/// CodeInfo so the liveness fixpoint warm-starts from the previous solution
/// instead of solving from scratch (see Liveness). Flow dependences are
/// computed lazily on first use and cached for the CodeInfo's lifetime.
struct CodeInfo {
  LinearCode Code;
  Cfg Graph;
  double LivenessSeconds = 0; ///< wall time of the Liveness construction
  Liveness Live;

  /// \p Prev is consumed (its liveness buffers are scavenged and its
  /// linearization vectors reused); callers replace the old CodeInfo with
  /// this one immediately after.
  explicit CodeInfo(IlocFunction &F, CodeInfo *Prev = nullptr)
      : Code(relinearized(F, Prev)), Graph(Code),
        Live(timedLiveness(*this, F.numVRegs(),
                           Prev ? &Prev->Live : nullptr)),
        NumVRegs(F.numVRegs()) {}

  /// The flow (def-use) dependences of Code, built on first request.
  const DataDependence &dataDeps() const {
    if (!DD)
      DD = std::make_unique<DataDependence>(Code, Graph, NumVRegs);
    return *DD;
  }

private:
  static Liveness timedLiveness(CodeInfo &CI, unsigned NumVRegs,
                                Liveness *Prev);

  /// Relinearizes \p F, scavenging the previous round's vectors.
  static LinearCode relinearized(IlocFunction &F, CodeInfo *Prev) {
    LinearCode Out = Prev ? std::move(Prev->Code) : LinearCode();
    linearize(F, Out);
    return Out;
  }

  unsigned NumVRegs;
  mutable std::unique_ptr<DataDependence> DD;
};

/// A view of consecutive linear positions (ascending) in RefInfo's flat
/// storage.
struct PosSpan {
  const unsigned *First = nullptr;
  const unsigned *Last = nullptr;
  const unsigned *begin() const { return First; }
  const unsigned *end() const { return Last; }
  size_t size() const { return static_cast<size_t>(Last - First); }
  bool empty() const { return First == Last; }
};

/// Use/def positions per virtual register over one linearization. Stored in
/// compressed-sparse-row form — two flat arrays, not one heap vector per
/// register — because a RefInfo is rebuilt on every refresh after a spill.
class RefInfo {
public:
  RefInfo(const LinearCode &Code, unsigned NumVRegs);

  PosSpan usePositions(Reg R) const {
    return {UsePos.data() + UseStart[R], UsePos.data() + UseStart[R + 1]};
  }
  PosSpan defPositions(Reg R) const {
    return {DefPos.data() + DefStart[R], DefPos.data() + DefStart[R + 1]};
  }

  bool isReferenced(Reg R) const {
    return !usePositions(R).empty() || !defPositions(R).empty();
  }

  /// True if every reference of \p R lies in the linear range
  /// [\p Begin, \p End) — i.e. R is *local* to the region covering that
  /// range (paper §3.1).
  bool allRefsWithin(Reg R, unsigned Begin, unsigned End) const;

  /// True if some use/def of \p R lies in [\p Begin, \p End).
  bool usedWithin(Reg R, unsigned Begin, unsigned End) const;
  bool definedWithin(Reg R, unsigned Begin, unsigned End) const;
  bool referencedWithin(Reg R, unsigned Begin, unsigned End) const {
    return usedWithin(R, Begin, End) || definedWithin(R, Begin, End);
  }

private:
  /// CSR layout: positions of register R occupy [Start[R], Start[R+1]) of
  /// the flat position array, ascending within each register.
  std::vector<unsigned> UseStart, DefStart;
  std::vector<unsigned> UsePos, DefPos;
};

/// Edits ILOC attached to a function's region tree: locates an
/// instruction's owning code vector and inserts spill code around it or at
/// region boundaries. Anchors must exist in the tree; the editor walks the
/// tree lazily and re-walks after external structural changes via refresh().
/// The owner map is indexed by the function-unique instruction id, so
/// lookups are O(1) and construction allocates a single vector.
class CodeEditor {
public:
  explicit CodeEditor(IlocFunction &F) : F(F) { refresh(); }

  /// Re-scans the region tree (call after structural edits made elsewhere).
  void refresh();

  /// Inserts \p NewI immediately before \p Anchor. When the anchor is a
  /// predicate's branch, the instruction goes at the end of the predicate's
  /// condition code.
  void insertBefore(Instr *Anchor, Instr *NewI);

  /// Inserts \p NewI immediately after \p Anchor (which must not be a
  /// branch).
  void insertAfter(Instr *Anchor, Instr *NewI);

  /// Prepends a spill statement node holding \p NewI at the entry of region
  /// \p V (before the loop head for loop regions — the paper's pre-loop
  /// spill node position).
  void insertAtRegionEntry(PdgNode *V, Instr *NewI);

  /// Appends a spill statement node holding \p NewI at the exit of region
  /// \p V (after the loop for loop regions — the post-loop spill node).
  void insertAtRegionExit(PdgNode *V, Instr *NewI);

private:
  struct Owner {
    PdgNode *N = nullptr; ///< statement or predicate node
    bool IsBranch = false;
  };
  Owner ownerOf(Instr *I) const;
  void setOwner(Instr *I, Owner O);

  IlocFunction &F;
  std::vector<Owner> Owners; ///< indexed by Instr::Id
};

} // namespace rap

#endif // RAP_REGALLOC_ALLOCSUPPORT_H
