//===- regalloc/AllocSupport.h - Shared allocator utilities -----*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Utilities shared by GRA and RAP: the analysis bundle recomputed after
/// every code edit (linearization, CFG, liveness), per-register reference
/// maps, and spill-code insertion into the region tree.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_ALLOCSUPPORT_H
#define RAP_REGALLOC_ALLOCSUPPORT_H

#include "cfg/Cfg.h"
#include "cfg/Liveness.h"
#include "ir/IlocFunction.h"
#include "ir/Linearize.h"

#include <map>
#include <vector>

namespace rap {

/// Linearization + CFG + liveness of one function. Invalidated by any code
/// edit; allocators rebuild it after each spill round.
struct CodeInfo {
  LinearCode Code;
  Cfg Graph;
  Liveness Live;

  explicit CodeInfo(IlocFunction &F)
      : Code(linearize(F)), Graph(Code),
        Live(Code, Graph, F.numVRegs()) {}
};

/// Use/def positions per virtual register over one linearization.
class RefInfo {
public:
  RefInfo(const LinearCode &Code, unsigned NumVRegs);

  const std::vector<unsigned> &usePositions(Reg R) const { return Uses[R]; }
  const std::vector<unsigned> &defPositions(Reg R) const { return Defs[R]; }

  bool isReferenced(Reg R) const {
    return !Uses[R].empty() || !Defs[R].empty();
  }

  /// True if every reference of \p R lies in the linear range
  /// [\p Begin, \p End) — i.e. R is *local* to the region covering that
  /// range (paper §3.1).
  bool allRefsWithin(Reg R, unsigned Begin, unsigned End) const;

  /// True if some use/def of \p R lies in [\p Begin, \p End).
  bool usedWithin(Reg R, unsigned Begin, unsigned End) const;
  bool definedWithin(Reg R, unsigned Begin, unsigned End) const;
  bool referencedWithin(Reg R, unsigned Begin, unsigned End) const {
    return usedWithin(R, Begin, End) || definedWithin(R, Begin, End);
  }

private:
  std::vector<std::vector<unsigned>> Uses, Defs;
};

/// Edits ILOC attached to a function's region tree: locates an
/// instruction's owning code vector and inserts spill code around it or at
/// region boundaries. Anchors must exist in the tree; the editor walks the
/// tree lazily and re-walks after external structural changes via refresh().
class CodeEditor {
public:
  explicit CodeEditor(IlocFunction &F) : F(F) { refresh(); }

  /// Re-scans the region tree (call after structural edits made elsewhere).
  void refresh();

  /// Inserts \p NewI immediately before \p Anchor. When the anchor is a
  /// predicate's branch, the instruction goes at the end of the predicate's
  /// condition code.
  void insertBefore(Instr *Anchor, Instr *NewI);

  /// Inserts \p NewI immediately after \p Anchor (which must not be a
  /// branch).
  void insertAfter(Instr *Anchor, Instr *NewI);

  /// Prepends a spill statement node holding \p NewI at the entry of region
  /// \p V (before the loop head for loop regions — the paper's pre-loop
  /// spill node position).
  void insertAtRegionEntry(PdgNode *V, Instr *NewI);

  /// Appends a spill statement node holding \p NewI at the exit of region
  /// \p V (after the loop for loop regions — the post-loop spill node).
  void insertAtRegionExit(PdgNode *V, Instr *NewI);

private:
  struct Owner {
    PdgNode *N = nullptr; ///< statement or predicate node
    bool IsBranch = false;
  };
  Owner ownerOf(Instr *I) const;

  IlocFunction &F;
  std::map<const Instr *, Owner> Owners;
};

} // namespace rap

#endif // RAP_REGALLOC_ALLOCSUPPORT_H
