//===- regalloc/InterferenceGraph.h - Interference graph --------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interference graph shared by GRA and RAP. Nodes represent *sets* of
/// virtual registers: GRA only ever uses singletons, while RAP's combine
/// step (paper §3.1.5) merges same-colored nodes so a parent region sees at
/// most k nodes per subregion, and add_subregion_conflicts unions nodes that
/// name the same virtual register (paper §3.1.1, Figure 3's {a,e} node).
///
/// A node may be flagged Global (some member virtual register is referenced
/// outside the region being colored). Per paper §3.1.2-3, two global nodes
/// may never share a color even without an edge; this shows up both in the
/// effective degree (used to prioritize spills) and as a hard constraint in
/// color assignment.
///
/// Representation (see DESIGN.md "Performance architecture"): edge presence
/// lives in a lower-triangular bit matrix for O(1) interfere(); per-node
/// flat adjacency vectors (deduplicated against the matrix, alive neighbors
/// only) serve iteration; and the reg -> node map is a dense Reg-indexed
/// vector. Node ids are never reused, and only mergeNodes removes edges (the
/// dead node's), so adjacency vectors only ever name alive nodes.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_INTERFERENCEGRAPH_H
#define RAP_REGALLOC_INTERFERENCEGRAPH_H

#include "ir/Instr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rap {

class InterferenceGraph {
public:
  struct Node {
    std::vector<Reg> VRegs; ///< sorted member virtual registers
    double SpillCost = 0.0;
    int Color = -1;
    bool Global = false;
    bool Alive = true;
  };

  //===------------------------------------------------------------------===//
  // Construction
  //===------------------------------------------------------------------===//

  /// Returns the node containing \p R, creating a singleton if absent.
  unsigned getOrCreateNode(Reg R);

  /// Returns the node containing \p R or -1.
  int nodeOf(Reg R) const {
    return R < NodeOfReg.size() ? NodeOfReg[R] : -1;
  }

  bool hasReg(Reg R) const { return nodeOf(R) >= 0; }

  /// Adds an interference edge between the nodes of \p A and \p B (both must
  /// exist). A no-op when they are the same node.
  void addEdge(Reg A, Reg B);
  void addEdgeNodes(unsigned N1, unsigned N2);

  /// Unions node \p N2 into \p N1 (used when a subregion node names a
  /// virtual register already present). The nodes must not interfere.
  /// Returns the surviving node id (\p N1).
  unsigned mergeNodes(unsigned N1, unsigned N2);

  /// Replaces \p OldReg by \p NewReg inside its node (spill renaming,
  /// paper §3.1.4). No-op if \p OldReg is absent.
  void renameReg(Reg OldReg, Reg NewReg);

  /// Adds \p R as a member of node \p Id (importing a subregion node whose
  /// members are partly new at this level). \p R must not be in the graph.
  void addRegToNode(unsigned Id, Reg R);

  //===------------------------------------------------------------------===//
  // Queries
  //===------------------------------------------------------------------===//

  unsigned numNodesTotal() const {
    return static_cast<unsigned>(Nodes.size());
  }
  unsigned numAliveNodes() const { return NumAlive; }
  std::vector<unsigned> aliveNodes() const;

  Node &node(unsigned Id) { return Nodes[Id]; }
  const Node &node(unsigned Id) const { return Nodes[Id]; }

  /// The alive neighbors of \p Id, deduplicated, in edge insertion order
  /// (deterministic, not sorted).
  const std::vector<unsigned> &adjacency(unsigned Id) const {
    return Adj[Id];
  }

  bool interfere(unsigned N1, unsigned N2) const {
    return N1 != N2 && testBit(N1, N2);
  }

  /// Number of alive neighbors plus, for a global node, the number of alive
  /// non-adjacent global nodes (paper Figure 5's degree increments).
  unsigned effectiveDegree(unsigned Id) const;

  /// The color assigned to the node containing \p R, or -1.
  int colorOf(Reg R) const {
    int N = nodeOf(R);
    return N < 0 ? -1 : Nodes[N].Color;
  }

  /// Builds the combined graph: one node per used color, members unioned,
  /// edges connecting colors whose nodes interfered (paper §3.1.5). All
  /// alive nodes must be colored.
  InterferenceGraph combinedByColor() const;

  /// Heap bytes held by the adjacency structures (bit matrix plus adjacency
  /// vectors) — the space side of the paper's time/space trade-off.
  size_t memoryBytes() const;

  std::string str() const;

private:
  /// Index of the (\p N1, \p N2) pair in the lower-triangular matrix;
  /// requires N1 != N2.
  static size_t triIndex(unsigned N1, unsigned N2) {
    unsigned Hi = N1 > N2 ? N1 : N2;
    unsigned Lo = N1 > N2 ? N2 : N1;
    return static_cast<size_t>(Hi) * (Hi - 1) / 2 + Lo;
  }
  bool testBit(unsigned N1, unsigned N2) const {
    size_t I = triIndex(N1, N2);
    return (TriWords[I / 64] >> (I % 64)) & 1;
  }
  void setBit(unsigned N1, unsigned N2) {
    size_t I = triIndex(N1, N2);
    TriWords[I / 64] |= uint64_t(1) << (I % 64);
  }
  void clearBit(unsigned N1, unsigned N2) {
    size_t I = triIndex(N1, N2);
    TriWords[I / 64] &= ~(uint64_t(1) << (I % 64));
  }
  void mapReg(Reg R, unsigned Id);

  std::vector<Node> Nodes;
  /// Alive-neighbor lists, kept duplicate-free via the bit matrix.
  std::vector<std::vector<unsigned>> Adj;
  /// Lower-triangular edge matrix over node ids: bit (i,j), i > j, at index
  /// i*(i-1)/2 + j. Sized for Nodes.size() nodes.
  std::vector<uint64_t> TriWords;
  /// Dense reg -> node id map; -1 = not in the graph.
  std::vector<int> NodeOfReg;
  unsigned NumAlive = 0;
};

} // namespace rap

#endif // RAP_REGALLOC_INTERFERENCEGRAPH_H
