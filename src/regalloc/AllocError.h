//===- regalloc/AllocError.h - Structured allocation failures ---*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured error that replaces the allocators' historical fatal
/// asserts and `abort()` calls. Every invariant violation, resource-limit
/// breach, verifier rejection, or injected fault inside the allocation
/// pipeline is reported as an AllocError naming the failure kind, the
/// function, and (when known) the PDG region — so the per-function driver
/// can isolate the failure and degrade that one function to the
/// spill-everything fallback instead of killing the process.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_ALLOCERROR_H
#define RAP_REGALLOC_ALLOCERROR_H

#include <exception>
#include <string>

namespace rap {

enum class AllocErrorKind {
  Internal,           ///< unexpected condition with no better classification
  InvariantViolation, ///< a paper/bookkeeping invariant did not hold
  NonConvergence,     ///< the spill/color loop exceeded its round budget
  Unallocatable,      ///< only unspillable pressure left (k too small)
  ResourceLimit,      ///< a guard (graph bytes, spill actions, wall clock) hit
  VerifierReject,     ///< checked mode: AssignmentVerifier found violations
  InjectedFault,      ///< deterministic fault injection fired (testing)
  DeadlineExceeded,   ///< the request's CancelToken deadline passed
  Cancelled,          ///< the request's CancelToken was cancelled (drain)
};

inline const char *allocErrorKindName(AllocErrorKind K) {
  switch (K) {
  case AllocErrorKind::Internal:
    return "internal";
  case AllocErrorKind::InvariantViolation:
    return "invariant-violation";
  case AllocErrorKind::NonConvergence:
    return "non-convergence";
  case AllocErrorKind::Unallocatable:
    return "unallocatable";
  case AllocErrorKind::ResourceLimit:
    return "resource-limit";
  case AllocErrorKind::VerifierReject:
    return "verifier-reject";
  case AllocErrorKind::InjectedFault:
    return "injected-fault";
  case AllocErrorKind::DeadlineExceeded:
    return "deadline-exceeded";
  case AllocErrorKind::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

class AllocError : public std::exception {
public:
  AllocError(AllocErrorKind Kind, std::string Function, int Region,
             std::string Message)
      : Kind(Kind), Function(std::move(Function)), Region(Region),
        Message(std::move(Message)) {
    render();
  }

  AllocErrorKind kind() const { return Kind; }
  const std::string &function() const { return Function; }
  int region() const { return Region; } ///< PDG region id, or -1
  const std::string &message() const { return Message; }

  /// Fills in the function name when the throw site did not know it (e.g.
  /// colorGraph, CodeEditor). First writer wins.
  void setFunction(const std::string &Name) {
    if (Function.empty()) {
      Function = Name;
      render();
    }
  }

  const char *what() const noexcept override { return Rendered.c_str(); }

private:
  void render() {
    Rendered = std::string(allocErrorKindName(Kind));
    if (!Function.empty())
      Rendered += " in '" + Function + "'";
    if (Region >= 0)
      Rendered += " (region R" + std::to_string(Region) + ")";
    Rendered += ": " + Message;
  }

  AllocErrorKind Kind;
  std::string Function;
  int Region;
  std::string Message;
  std::string Rendered;
};

/// Throws AllocError; a function-call (rather than `throw` at every call
/// site) keeps the cold path out of the allocators' hot loops.
[[noreturn]] inline void throwAllocError(AllocErrorKind Kind,
                                         std::string Message,
                                         std::string Function = {},
                                         int Region = -1) {
  throw AllocError(Kind, std::move(Function), Region, std::move(Message));
}

/// Invariant check replacing `assert` in the allocation pipeline: active in
/// every build type, reports through AllocError instead of aborting.
inline void allocCheck(bool Cond, AllocErrorKind Kind, const char *Message) {
  if (!Cond)
    throwAllocError(Kind, Message);
}

} // namespace rap

#endif // RAP_REGALLOC_ALLOCERROR_H
