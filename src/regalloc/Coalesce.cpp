//===- regalloc/Coalesce.cpp - Conservative copy coalescing ------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coalesce.h"

#include <set>

using namespace rap;

unsigned rap::coalesceConservatively(
    InterferenceGraph &G, const std::vector<Instr *> &Code, unsigned K,
    const std::function<bool(unsigned, unsigned)> &MayMerge) {
  unsigned Merges = 0;
  for (const Instr *I : Code) {
    if (I->Op != Opcode::Mv)
      continue;
    int NDst = G.nodeOf(I->Dst);
    int NSrc = G.nodeOf(I->Src[0]);
    if (NDst < 0 || NSrc < 0 || NDst == NSrc)
      continue;
    unsigned A = static_cast<unsigned>(NDst);
    unsigned B = static_cast<unsigned>(NSrc);
    if (!G.node(A).Alive || !G.node(B).Alive || G.interfere(A, B))
      continue;
    if (MayMerge && !MayMerge(A, B))
      continue;

    // Briggs: the union must have < K neighbors of significant degree.
    // Adjacency lists hold only alive nodes; the set unions the two lists.
    std::set<unsigned> Neighbors(G.adjacency(A).begin(),
                                 G.adjacency(A).end());
    Neighbors.insert(G.adjacency(B).begin(), G.adjacency(B).end());
    unsigned Significant = 0;
    for (unsigned N : Neighbors)
      if (G.effectiveDegree(N) >= K)
        ++Significant;
    if (Significant >= K)
      continue;

    G.mergeNodes(A, B);
    ++Merges;
  }
  return Merges;
}
