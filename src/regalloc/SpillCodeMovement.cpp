//===- regalloc/SpillCodeMovement.cpp - RAP phase 2 --------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/SpillCodeMovement.h"

#include "support/Env.h"
#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

using namespace rap;

namespace {

struct SlotOps {
  std::vector<Instr *> Loads;
  std::vector<Instr *> Stores;
  std::set<Reg> Regs; ///< registers moving through the slot inside the loop
};

class Mover {
public:
  Mover(IlocFunction &F, const InterferenceGraph &Final,
        const std::map<const PdgNode *, InterferenceGraph> &SavedGraphs)
      : F(F), Final(Final), SavedGraphs(SavedGraphs) {}

  MovementResult run() {
    walk(F.root());
    return Res;
  }

private:
  void walk(PdgNode *N) {
    if (N->isRegion() && N->IsLoop) {
      processLoop(N); // recurses into the body after moving what it can
      return;
    }
    if (N->isPredicate()) {
      if (N->TrueRegion)
        walk(N->TrueRegion);
      if (N->FalseRegion)
        walk(N->FalseRegion);
      return;
    }
    if (N->isRegion())
      for (PdgNode *C : N->Children)
        walk(C);
  }

  void processLoop(PdgNode *L) {
    std::map<int, SlotOps> Ops = collectOps(L);
    const InterferenceGraph *LG = nullptr;
    auto It = SavedGraphs.find(L);
    if (It != SavedGraphs.end())
      LG = &It->second;

    static const bool Debug = env::flag("RAP_DEBUG");
    for (auto &[Slot, SO] : Ops) {
      if (!LG) {
        if (Debug)
          std::fprintf(stderr, "[move] L=R%d s%d: no loop graph\n", L->Id,
                       Slot);
        continue;
      }

      // All in-loop accessors of the slot are renamed pieces of one
      // original virtual register (paper §3.2 / Figure 7: "a single load
      // for a may be placed prior to the entrance ... and the two loads
      // within the region can be eliminated"). They may move together when
      // they all received the same physical register and that register
      // belongs to them alone inside the loop — the precise form of the
      // paper's "was not combined with another virtual register" condition,
      // checked against the final assignment.
      Reg VL = *SO.Regs.begin();
      int Color = Final.colorOf(VL);
      if (Color < 0)
        continue;
      const char *Reject = nullptr;
      for (Reg R : SO.Regs) {
        if (Final.colorOf(R) != Color) {
          Reject = "color mismatch among accessors";
          break;
        }
      }
      if (!Reject && !colorExclusiveInLoop(L, SO.Regs, Color))
        Reject = "physical register not exclusive in loop";
      if (Reject) {
        if (Debug)
          std::fprintf(stderr, "[move] L=R%d s%d (%zu regs): %s\n", L->Id,
                       Slot, SO.Regs.size(), Reject);
        continue;
      }

      // Move: rewrite every accessor to one name, delete the in-loop
      // traffic, load once before the head, store once after the exit.
      renameAccessors(L, SO, VL);
      bool HadStore = !SO.Stores.empty();
      deleteOps(L, SO);
      insertPreLoopLoad(L, VL, Slot);
      ++Res.HoistedLoads;
      if (HadStore) {
        insertPostLoopStore(L, VL, Slot);
        ++Res.SunkStores;
      }
    }

    // Inner loops may still have movable traffic of other slots.
    unsigned PredIdx = L->loopPredicateIndex();
    walk(L->Children[PredIdx]->TrueRegion);
  }

  std::map<int, SlotOps> collectOps(PdgNode *L) {
    std::map<int, SlotOps> Ops;
    L->forEachInstr([&](Instr *I) {
      if (I->Op == Opcode::LdSpill) {
        SlotOps &SO = Ops[I->Slot];
        SO.Loads.push_back(I);
        SO.Regs.insert(I->Dst);
      } else if (I->Op == Opcode::StSpill) {
        SlotOps &SO = Ops[I->Slot];
        SO.Stores.push_back(I);
        SO.Regs.insert(I->Src[0]);
      }
    });
    return Ops;
  }

  bool colorExclusiveInLoop(PdgNode *L, const std::set<Reg> &Owners,
                            int Color) const {
    bool Exclusive = true;
    L->forEachInstr([&](Instr *I) {
      auto Check = [&](Reg R) {
        if (!Owners.count(R) && Final.colorOf(R) == Color)
          Exclusive = false;
      };
      for (Reg R : I->Src)
        Check(R);
      if (I->hasDef())
        Check(I->Dst);
    });
    return Exclusive;
  }

  /// Rewrites every in-loop reference of the slot's renamed pieces to one
  /// canonical register. Safe because all pieces share one physical
  /// register that is exclusively theirs inside the loop.
  void renameAccessors(PdgNode *L, const SlotOps &SO, Reg VL) {
    L->forEachInstr([&](Instr *I) {
      for (Reg &R : I->Src)
        if (R != VL && SO.Regs.count(R))
          R = VL;
      if (I->hasDef() && I->Dst != VL && SO.Regs.count(I->Dst))
        I->Dst = VL;
    });
  }

  void deleteOps(PdgNode *L, const SlotOps &SO) {
    std::set<Instr *> Dead(SO.Loads.begin(), SO.Loads.end());
    Dead.insert(SO.Stores.begin(), SO.Stores.end());
    Res.RemovedLoads += static_cast<unsigned>(SO.Loads.size());
    Res.RemovedStores += static_cast<unsigned>(SO.Stores.size());
    L->forEachNode([&](const PdgNode *CN) {
      auto *N = const_cast<PdgNode *>(CN);
      if (!N->isStatement() && !N->isPredicate())
        return;
      N->Code.erase(
          std::remove_if(N->Code.begin(), N->Code.end(),
                         [&](Instr *I) { return Dead.count(I) != 0; }),
          N->Code.end());
    });
  }

  /// A fresh spill node immediately before the loop head: after any
  /// existing pre-loop children (region-entry stores must stay first).
  void insertPreLoopLoad(PdgNode *L, Reg VL, int Slot) {
    Instr *Ld = F.createInstr(Opcode::LdSpill);
    Ld->Dst = VL;
    Ld->Slot = Slot;
    PdgNode *SN = F.createNode(PdgNodeKind::Statement);
    SN->Parent = L;
    SN->Code.push_back(Ld);
    unsigned PredIdx = L->loopPredicateIndex();
    L->Children.insert(L->Children.begin() + PredIdx, SN);
  }

  /// A fresh spill node immediately after the loop exit: before any
  /// existing post-loop children (region-exit loads must stay last).
  void insertPostLoopStore(PdgNode *L, Reg VL, int Slot) {
    Instr *St = F.createInstr(Opcode::StSpill);
    St->Slot = Slot;
    St->Src = {VL};
    PdgNode *SN = F.createNode(PdgNodeKind::Statement);
    SN->Parent = L;
    SN->Code.push_back(St);
    unsigned PredIdx = L->loopPredicateIndex();
    L->Children.insert(L->Children.begin() + PredIdx + 1, SN);
  }

  IlocFunction &F;
  const InterferenceGraph &Final;
  const std::map<const PdgNode *, InterferenceGraph> &SavedGraphs;
  MovementResult Res;
};

} // namespace

MovementResult rap::moveSpillCodeOutOfLoops(
    IlocFunction &F, const InterferenceGraph &Final,
    const std::map<const PdgNode *, InterferenceGraph> &SavedGraphs,
    telemetry::FunctionScope *Scope) {
  telemetry::ScopedPhase Phase(Scope, "movement");
  MovementResult Res = Mover(F, Final, SavedGraphs).run();
  if (Scope) {
    Scope->add("movement.hoisted_loads", Res.HoistedLoads);
    Scope->add("movement.sunk_stores", Res.SunkStores);
    Scope->add("movement.removed_loads", Res.RemovedLoads);
    Scope->add("movement.removed_stores", Res.RemovedStores);
    Phase.arg("hoisted_loads", Res.HoistedLoads);
    Phase.arg("sunk_stores", Res.SunkStores);
  }
  return Res;
}
