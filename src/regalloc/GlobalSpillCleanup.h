//===- regalloc/GlobalSpillCleanup.h - Dataflow spill cleanup ---*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataflow generalization of RAP's phase 3. The paper's Figure 6
/// cleanup is basic-block local; its §5 future work asks for "better
/// placement of spill code" across region boundaries. Two classic, sound
/// passes on physical code deliver exactly that for the frame-local spill
/// slots (which nothing else can alias):
///
/// * Available-reload elimination: a forward dataflow tracks which physical
///   registers hold the current value of which slot across block
///   boundaries; a reload whose value is already in the target register is
///   deleted, one available in another register becomes a copy.
/// * Dead spill-store elimination: a backward dataflow finds stores to
///   slots that can never be read again (spill slots die with the frame).
///
/// Both passes are toggled separately from the Figure 6 peephole so the
/// ablation bench can measure the paper-exact configuration against the
/// extended one.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_GLOBALSPILLCLEANUP_H
#define RAP_REGALLOC_GLOBALSPILLCLEANUP_H

#include "ir/IlocFunction.h"

namespace rap {

namespace telemetry {
class FunctionScope;
} // namespace telemetry

struct GlobalCleanupResult {
  unsigned RemovedLoads = 0;
  unsigned LoadsToCopies = 0;
  unsigned RemovedStores = 0;
};

/// Runs both dataflow passes to a fixpoint over \p F, which must be in
/// physical registers. Returns the number of removed/rewritten operations.
/// With a telemetry \p Scope, the pass is timed as a "cleanup" slice and
/// records cleanup.* counters.
GlobalCleanupResult globalSpillCleanup(IlocFunction &F,
                                       telemetry::FunctionScope *Scope = nullptr);

} // namespace rap

#endif // RAP_REGALLOC_GLOBALSPILLCLEANUP_H
