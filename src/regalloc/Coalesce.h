//===- regalloc/Coalesce.h - Conservative copy coalescing -------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative (Briggs) copy coalescing, the paper's §5 future work: "We
/// expect that the performance of RAP will be improved by implementing
/// coalescing, and we are interested in comparing the results when
/// coalescing is performed by both RAP and GRA." Both allocators call this
/// on their interference graphs when AllocOptions::Coalesce is set; the
/// merged copy pairs share a color, so the copies vanish in
/// PhysicalRewrite's trivial-copy deletion with no code rewriting needed.
///
/// A copy's nodes merge only when (a) they do not interfere, (b) the Briggs
/// criterion holds — the union has fewer than k neighbors of significant
/// (>= k) degree, so coalescing cannot turn a colorable graph uncolorable —
/// and (c) a caller-supplied guard accepts the pair (RAP uses it to keep
/// its single-global-origin invariant).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_COALESCE_H
#define RAP_REGALLOC_COALESCE_H

#include "ir/Instr.h"
#include "regalloc/InterferenceGraph.h"

#include <functional>
#include <vector>

namespace rap {

/// Coalesces the copies of \p Code (its Mv instructions) into \p G with
/// \p K colors. \p MayMerge may be null. Returns the number of merges.
unsigned coalesceConservatively(
    InterferenceGraph &G, const std::vector<Instr *> &Code, unsigned K,
    const std::function<bool(unsigned, unsigned)> &MayMerge = nullptr);

} // namespace rap

#endif // RAP_REGALLOC_COALESCE_H
