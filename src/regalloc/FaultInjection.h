//===- regalloc/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, countdown-driven fault injection for the allocation
/// pipeline, so the degradation path (error -> spill-everything fallback) is
/// itself testable end-to-end. A FaultPlan arms one or more sites; each
/// function's allocation run owns a private FaultInjector counting hits per
/// site, so triggering is reproducible and independent of thread scheduling.
///
/// Plans parse from the syntax used by the RAP_FAULT_INJECT environment
/// variable:
///
///   RAP_FAULT_INJECT=<site>:<n>[@<function>][,<site>:<n>[@<function>]...]
///
/// where <site> is an allocator site — `color` (before a graph coloring),
/// `spill` (before a spill-code insertion), `rewrite` (before the physical
/// rewrite), `region` (at entry of a region's allocation, sequential or
/// region-parallel) — or a server site — `parse` (protocol dispatch), `cache-insert`
/// (allocation-cache insertion), `stall` (a worker ignores its cancel token
/// for a while), `shutdown` (the server's stop flag flips mid-request),
/// `journal-write` (a durable-cache journal append fails), `snapshot-compact`
/// (a durable-cache compaction fails; both degrade persistence to
/// in-memory-only, DESIGN.md §15) —
/// and the fault fires on the <n>-th hit of that site: in every function,
/// or only in <function> when the @ suffix is given (server sites ignore
/// the suffix). Injection points sit at IR-consistent boundaries (before
/// the operation edits any code). Allocator sites fire by throwing
/// AllocError via hit(); server sites use the non-throwing fires() and let
/// the call site decide the failure mode (a stall sleeps, a shutdown flips
/// a flag, the others raise contained errors).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_FAULTINJECTION_H
#define RAP_REGALLOC_FAULTINJECTION_H

#include "regalloc/AllocError.h"

#include <string>
#include <vector>

namespace rap {

enum class FaultSite {
  Coloring,        ///< immediately before a colorGraph call
  SpillInsert,     ///< immediately before spill-code insertion
  PhysicalRewrite, ///< immediately before rewriteToPhysical
  RegionAlloc,     ///< at entry of a region allocation (any schedule)

  // Server-layer chaos sites (rapd; DESIGN.md §13). These never fire inside
  // an allocator run — they are counted by the server's own injectors.
  ProtocolParse,   ///< during request dispatch, after JSON parsing
  CacheInsert,     ///< before an AllocCache::insert
  WorkerStall,     ///< a shard worker stalls, ignoring its cancel token
  MidShutdown,     ///< the server's shutdown flag flips mid-request
  JournalWrite,    ///< before a CacheStore journal append (DESIGN.md §15)
  SnapshotCompact, ///< at entry of a CacheStore snapshot compaction
};

const char *faultSiteName(FaultSite S);

/// A deterministic fault schedule shared by every function of a program run
/// (each function counts its own hits).
struct FaultPlan {
  struct Arm {
    FaultSite Site = FaultSite::Coloring;
    unsigned Nth = 1;     ///< fire on the Nth hit of Site (1-based)
    std::string Function; ///< empty = every function
  };
  std::vector<Arm> Arms;

  bool empty() const { return Arms.empty(); }

  /// Parses the RAP_FAULT_INJECT syntax. Throws std::invalid_argument on
  /// malformed input.
  static FaultPlan fromString(const std::string &Spec);
};

/// Per-function-run injection state. Default-constructed injectors are
/// disarmed and cost one branch per hit check.
class FaultInjector {
public:
  FaultInjector() = default;
  FaultInjector(const FaultPlan &Plan, std::string Function);

  bool armed() const { return !Counters.empty(); }

  /// Registers one hit of \p S; throws AllocError(InjectedFault) when an arm
  /// scheduled for this run reaches its countdown.
  void hit(FaultSite S) {
    if (!Counters.empty())
      hitSlow(S);
  }

  /// Non-throwing variant for the server sites: registers one hit of \p S
  /// and returns true when a countdown fired. The call site chooses the
  /// failure mode (sleep, flag flip, contained error) — server faults must
  /// degrade to structured responses, not exceptions racing across threads.
  bool fires(FaultSite S) { return !Counters.empty() && firesSlow(S); }

private:
  void hitSlow(FaultSite S);
  bool firesSlow(FaultSite S);

  struct Counter {
    FaultSite Site;
    unsigned Remaining; ///< hits left before firing
  };
  std::vector<Counter> Counters;
  std::string Function;
};

/// The process-wide plan parsed once from RAP_FAULT_INJECT (empty when the
/// variable is unset or malformed; malformed input warns on stderr).
const FaultPlan &envFaultPlan();

} // namespace rap

#endif // RAP_REGALLOC_FAULTINJECTION_H
