//===- regalloc/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, countdown-driven fault injection for the allocation
/// pipeline, so the degradation path (error -> spill-everything fallback) is
/// itself testable end-to-end. A FaultPlan arms one or more sites; each
/// function's allocation run owns a private FaultInjector counting hits per
/// site, so triggering is reproducible and independent of thread scheduling.
///
/// Plans parse from the syntax used by the RAP_FAULT_INJECT environment
/// variable:
///
///   RAP_FAULT_INJECT=<site>:<n>[@<function>][,<site>:<n>[@<function>]...]
///
/// where <site> is one of `color` (before a graph coloring), `spill` (before
/// a spill-code insertion), `rewrite` (before the physical rewrite), and the
/// fault fires on the <n>-th hit of that site — in every function, or only
/// in <function> when the @ suffix is given. Injection points sit at
/// IR-consistent boundaries (before the operation edits any code).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_FAULTINJECTION_H
#define RAP_REGALLOC_FAULTINJECTION_H

#include "regalloc/AllocError.h"

#include <string>
#include <vector>

namespace rap {

enum class FaultSite {
  Coloring,        ///< immediately before a colorGraph call
  SpillInsert,     ///< immediately before spill-code insertion
  PhysicalRewrite, ///< immediately before rewriteToPhysical
};

const char *faultSiteName(FaultSite S);

/// A deterministic fault schedule shared by every function of a program run
/// (each function counts its own hits).
struct FaultPlan {
  struct Arm {
    FaultSite Site = FaultSite::Coloring;
    unsigned Nth = 1;     ///< fire on the Nth hit of Site (1-based)
    std::string Function; ///< empty = every function
  };
  std::vector<Arm> Arms;

  bool empty() const { return Arms.empty(); }

  /// Parses the RAP_FAULT_INJECT syntax. Throws std::invalid_argument on
  /// malformed input.
  static FaultPlan fromString(const std::string &Spec);
};

/// Per-function-run injection state. Default-constructed injectors are
/// disarmed and cost one branch per hit check.
class FaultInjector {
public:
  FaultInjector() = default;
  FaultInjector(const FaultPlan &Plan, std::string Function);

  bool armed() const { return !Counters.empty(); }

  /// Registers one hit of \p S; throws AllocError(InjectedFault) when an arm
  /// scheduled for this run reaches its countdown.
  void hit(FaultSite S) {
    if (!Counters.empty())
      hitSlow(S);
  }

private:
  void hitSlow(FaultSite S);

  struct Counter {
    FaultSite Site;
    unsigned Remaining; ///< hits left before firing
  };
  std::vector<Counter> Counters;
  std::string Function;
};

/// The process-wide plan parsed once from RAP_FAULT_INJECT (empty when the
/// variable is unset or malformed; malformed input warns on stderr).
const FaultPlan &envFaultPlan();

} // namespace rap

#endif // RAP_REGALLOC_FAULTINJECTION_H
