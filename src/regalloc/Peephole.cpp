//===- regalloc/Peephole.cpp - Figure 6 spill cleanup -----------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Peephole.h"

#include "regalloc/AllocError.h"

#include "cfg/Cfg.h"
#include "ir/Linearize.h"
#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <vector>

using namespace rap;

namespace {

/// Register<->slot value equivalences within one basic block.
class EquivState {
public:
  void reset() {
    RegSlots.clear();
    SlotRegs.clear();
  }

  bool regHoldsSlot(Reg R, int Slot) const {
    auto It = SlotRegs.find(Slot);
    return It != SlotRegs.end() && It->second.count(R);
  }

  /// Some register currently holding \p Slot's value, or NoReg.
  Reg anyRegForSlot(int Slot) const {
    auto It = SlotRegs.find(Slot);
    if (It == SlotRegs.end() || It->second.empty())
      return NoReg;
    return *It->second.begin();
  }

  void invalidateReg(Reg R) {
    auto It = RegSlots.find(R);
    if (It == RegSlots.end())
      return;
    for (int S : It->second)
      SlotRegs[S].erase(R);
    RegSlots.erase(It);
  }

  void addEquiv(Reg R, int Slot) {
    RegSlots[R].insert(Slot);
    SlotRegs[Slot].insert(R);
  }

  /// A store rebinds the slot: only \p R holds its (new) value.
  void rebindSlot(int Slot, Reg R) {
    auto It = SlotRegs.find(Slot);
    if (It != SlotRegs.end()) {
      for (Reg Old : It->second)
        RegSlots[Old].erase(Slot);
      It->second.clear();
    }
    addEquiv(R, Slot);
  }

  /// mv Dst, Src: Dst now holds whatever slot values Src holds.
  void copyEquiv(Reg Dst, Reg Src) {
    invalidateReg(Dst);
    auto It = RegSlots.find(Src);
    if (It == RegSlots.end())
      return;
    for (int S : std::vector<int>(It->second.begin(), It->second.end()))
      addEquiv(Dst, S);
  }

private:
  std::map<Reg, std::set<int>> RegSlots;
  std::map<int, std::set<Reg>> SlotRegs;
};

} // namespace

PeepholeResult rap::peepholeSpillCleanup(IlocFunction &F,
                                         telemetry::FunctionScope *Scope) {
  telemetry::ScopedPhase Phase(Scope, "peephole");
  allocCheck(F.isAllocated(), AllocErrorKind::InvariantViolation,
             "peephole runs on physical code");
  PeepholeResult Res;

  LinearCode Code = linearize(F);
  if (Code.Instrs.empty())
    return Res;
  Cfg G(Code);

  std::set<Instr *> ToDelete;
  EquivState State;

  for (unsigned B = 0; B != G.numBlocks(); ++B) {
    State.reset();
    const BasicBlock &BB = G.block(B);
    for (unsigned P = BB.Begin; P != BB.End; ++P) {
      Instr *I = Code.Instrs[P];
      switch (I->Op) {
      case Opcode::LdSpill: {
        if (State.regHoldsSlot(I->Dst, I->Slot)) {
          ToDelete.insert(I); // patterns 1 and 4
          ++Res.RemovedLoads;
          break;
        }
        Reg Src = State.anyRegForSlot(I->Slot);
        if (Src != NoReg) {
          // Pattern 2: the value is in another register; copy instead.
          I->Op = Opcode::Mv;
          I->Src = {Src};
          I->Slot = -1;
          ++Res.LoadsToCopies;
          State.copyEquiv(I->Dst, Src);
          break;
        }
        State.invalidateReg(I->Dst);
        State.addEquiv(I->Dst, I->Slot);
        break;
      }
      case Opcode::StSpill: {
        if (State.regHoldsSlot(I->Src[0], I->Slot)) {
          ToDelete.insert(I); // patterns 3 and 5
          ++Res.RemovedStores;
          break;
        }
        State.rebindSlot(I->Slot, I->Src[0]);
        break;
      }
      case Opcode::Mv:
        State.copyEquiv(I->Dst, I->Src[0]);
        break;
      default:
        if (I->hasDef())
          State.invalidateReg(I->Dst);
        break;
      }
    }
  }

  if (Scope) {
    Scope->add("peephole.removed_loads", Res.RemovedLoads);
    Scope->add("peephole.removed_stores", Res.RemovedStores);
    Scope->add("peephole.loads_to_copies", Res.LoadsToCopies);
  }
  if (ToDelete.empty())
    return Res;

  F.root()->forEachNode([&](const PdgNode *CN) {
    auto *N = const_cast<PdgNode *>(CN);
    if (!N->isStatement() && !N->isPredicate())
      return;
    N->Code.erase(std::remove_if(N->Code.begin(), N->Code.end(),
                                 [&](Instr *I) { return ToDelete.count(I); }),
                  N->Code.end());
  });
  return Res;
}
