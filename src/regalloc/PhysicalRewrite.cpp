//===- regalloc/PhysicalRewrite.cpp - VReg -> physical rewrite --------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/PhysicalRewrite.h"

#include "regalloc/AllocError.h"
#include "support/Stats.h"

#include <algorithm>

using namespace rap;

unsigned rap::rewriteToPhysical(IlocFunction &F,
                                const InterferenceGraph &Final, unsigned K,
                                telemetry::FunctionScope *Scope) {
  allocCheck(!F.isAllocated(), AllocErrorKind::InvariantViolation,
             "function already allocated");
  telemetry::ScopedPhase Phase(Scope, "rewrite");

  auto MapReg = [&](Reg R) -> Reg {
    int C = Final.colorOf(R);
    allocCheck(C < static_cast<int>(K), AllocErrorKind::InvariantViolation,
               "color out of range");
    // Registers that are never referenced have no node; any register is
    // fine since the value is never read (and never written: the one writer
    // of unreferenced registers, call marshalling, skips NoReg params).
    return C < 0 ? 0 : static_cast<Reg>(C);
  };

  // An unreferenced parameter must NOT borrow a colored register: the value
  // is never read, but call marshalling would still write the argument into
  // whatever register we name here, clobbering a live sibling parameter
  // that legitimately owns it. NoReg tells the interpreter to drop that
  // argument instead. (Found by rapfuzz: a dead parameter aliased a live
  // one and the write reordered the live value away.)
  std::vector<Reg> ParamRegs;
  for (unsigned P = 0; P != F.numParams(); ++P)
    ParamRegs.push_back(Final.colorOf(P) < 0 ? NoReg : MapReg(P));

  unsigned CopiesDeleted = 0;
  F.root()->forEachNode([&](const PdgNode *CN) {
    auto *N = const_cast<PdgNode *>(CN);
    if (!N->isStatement() && !N->isPredicate())
      return;
    for (Instr *I : N->Code) {
      for (Reg &R : I->Src)
        R = MapReg(R);
      if (I->hasDef())
        I->Dst = MapReg(I->Dst);
    }
    if (N->isPredicate() && N->Branch)
      for (Reg &R : N->Branch->Src)
        R = MapReg(R);
    // Drop copies that became mv rX, rX.
    auto IsTrivial = [&](Instr *I) {
      if (I->Op != Opcode::Mv || I->Dst != I->Src[0])
        return false;
      ++CopiesDeleted;
      return true;
    };
    N->Code.erase(std::remove_if(N->Code.begin(), N->Code.end(), IsTrivial),
                  N->Code.end());
  });

  F.setParamRegs(std::move(ParamRegs));
  F.setAllocated(K);
  if (Scope) {
    Scope->add("rewrite.copies_deleted", CopiesDeleted);
    Phase.arg("copies_deleted", CopiesDeleted);
  }
  return CopiesDeleted;
}
