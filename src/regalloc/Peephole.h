//===- regalloc/Peephole.h - Figure 6 spill cleanup -------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAP phase 3 (paper §3.3, Figure 6): a per-basic-block cleanup of
/// redundant spill loads/stores that the hierarchical allocation can leave
/// behind when renamed pieces of one virtual register land in the same
/// physical register. A forward scan tracks which physical registers hold
/// the current value of which spill slot; it subsumes the paper's five
/// patterns:
///
///   (1) ldm r2,s ... ldm r2,s          -> second load deleted
///   (2) ldm r2,s ... ldm r3,s          -> second load becomes mv r3,r2
///   (3) ldm r2,s ... stm s,r2          -> store deleted
///   (4) stm s,r2 ... ldm r2,s          -> load deleted
///   (5) stm s,r2 ... mv r3,r2 ... stm s,r3 -> second store deleted
///
/// (each "..." contains no redefinition of the registers involved and no
/// other store to the slot). Spill slots are frame-local, so calls and
/// global-memory operations do not invalidate the tracked equivalences.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_PEEPHOLE_H
#define RAP_REGALLOC_PEEPHOLE_H

#include "ir/IlocFunction.h"

namespace rap {

namespace telemetry {
class FunctionScope;
} // namespace telemetry

struct PeepholeResult {
  unsigned RemovedLoads = 0;  ///< deleted ldm (patterns 1, 4)
  unsigned RemovedStores = 0; ///< deleted stm (patterns 3, 5)
  unsigned LoadsToCopies = 0; ///< ldm rewritten to mv (pattern 2)
};

/// Runs the cleanup over every basic block of \p F, which must already be
/// rewritten to physical registers. With a telemetry \p Scope, the pass is
/// timed as a "peephole" slice and records peephole.* counters.
PeepholeResult peepholeSpillCleanup(IlocFunction &F,
                                    telemetry::FunctionScope *Scope = nullptr);

} // namespace rap

#endif // RAP_REGALLOC_PEEPHOLE_H
