//===- regalloc/Coloring.cpp - Briggs optimistic coloring -------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coloring.h"

#include "regalloc/AllocError.h"
#include "support/Stats.h"

#include <limits>

using namespace rap;

ColorResult rap::colorGraph(InterferenceGraph &G, unsigned K,
                            telemetry::FunctionScope *Scope) {
  std::vector<unsigned> Alive = G.aliveNodes();
  for (unsigned N : Alive)
    G.node(N).Color = -1;

  // Dynamic degree bookkeeping while nodes leave the graph.
  unsigned Total = G.numNodesTotal();
  std::vector<char> InGraph(Total, 0);
  std::vector<unsigned> AdjCount(Total, 0);      // alive, in-graph neighbors
  std::vector<unsigned> AdjGlobalCount(Total, 0);
  unsigned GlobalsInGraph = 0;
  for (unsigned N : Alive) {
    InGraph[N] = 1;
    if (G.node(N).Global)
      ++GlobalsInGraph;
  }
  // Adjacency lists hold only alive neighbors, so counts read directly.
  for (unsigned N : Alive) {
    AdjCount[N] = static_cast<unsigned>(G.adjacency(N).size());
    for (unsigned A : G.adjacency(N))
      if (G.node(A).Global)
        ++AdjGlobalCount[N];
  }

  auto EffDegree = [&](unsigned N) {
    unsigned D = AdjCount[N];
    if (G.node(N).Global)
      D += GlobalsInGraph - 1 - AdjGlobalCount[N];
    return D;
  };

  auto Remove = [&](unsigned N) {
    InGraph[N] = 0;
    bool WasGlobal = G.node(N).Global;
    if (WasGlobal)
      --GlobalsInGraph;
    for (unsigned A : G.adjacency(N)) {
      if (!InGraph[A])
        continue;
      --AdjCount[A];
      if (WasGlobal)
        --AdjGlobalCount[A];
    }
  };

  // Simplify: build the coloring stack.
  std::vector<unsigned> Stack;
  std::vector<char> CostPick(Total, 0); // blocked picks, for telemetry
  unsigned Remaining = static_cast<unsigned>(Alive.size());
  while (Remaining != 0) {
    int Pick = -1;
    // Prefer a trivially colorable node (lowest id for determinism).
    for (unsigned N : Alive)
      if (InGraph[N] && EffDegree(N) < K) {
        Pick = static_cast<int>(N);
        break;
      }
    if (Pick < 0) {
      // Blocked: remove the cheapest node; it becomes a spill candidate but
      // may still color at pop time (Briggs optimism).
      double BestCost = std::numeric_limits<double>::infinity();
      for (unsigned N : Alive) {
        if (!InGraph[N])
          continue;
        if (G.node(N).SpillCost < BestCost) {
          BestCost = G.node(N).SpillCost;
          Pick = static_cast<int>(N);
        }
      }
      if (Pick >= 0)
        CostPick[Pick] = 1;
    }
    allocCheck(Pick >= 0, AllocErrorKind::InvariantViolation,
               "no node to simplify");
    Remove(static_cast<unsigned>(Pick));
    Stack.push_back(static_cast<unsigned>(Pick));
    --Remaining;
  }

  // Color in reverse removal order, first-fit.
  ColorResult Res;
  std::vector<char> GlobalColorUsed(K, 0);
  while (!Stack.empty()) {
    unsigned N = Stack.back();
    Stack.pop_back();
    std::vector<char> Forbidden(K, 0);
    for (unsigned A : G.adjacency(N)) {
      int C = G.node(A).Color;
      if (C >= 0)
        Forbidden[C] = 1;
    }
    if (G.node(N).Global)
      for (unsigned C = 0; C != K; ++C)
        if (GlobalColorUsed[C])
          Forbidden[C] = 1;
    int Chosen = -1;
    for (unsigned C = 0; C != K; ++C)
      if (!Forbidden[C]) {
        Chosen = static_cast<int>(C);
        break;
      }
    if (Chosen < 0) {
      Res.SpillList.push_back(N);
      continue;
    }
    G.node(N).Color = Chosen;
    if (G.node(N).Global)
      GlobalColorUsed[Chosen] = 1;
    if (Scope && CostPick[N])
      Scope->add("color.optimistic_colored"); // Briggs rescue
  }
  if (Scope) {
    Scope->add("color.invocations");
    Scope->add("color.nodes", Alive.size());
    uint64_t Blocked = 0;
    for (unsigned N : Alive)
      Blocked += CostPick[N];
    Scope->add("color.blocked_picks", Blocked);
    Scope->add("color.spilled_nodes", Res.SpillList.size());
  }
  return Res;
}
