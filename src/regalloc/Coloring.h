//===- regalloc/Coloring.h - Briggs optimistic coloring ---------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph simplification and color assignment (paper §3.1.3). Simplify
/// repeatedly removes a node of effective degree < k — or, when blocked, the
/// node of least spill cost — and pushes it on a stack. Colors are assigned
/// optimistically at pop time (the Briggs/Cooper/Kennedy/Torczon enhancement
/// over Chaitin: a blocked node may still color if neighbors were spilled or
/// share colors), first-fit from color 0 (which the paper credits for free
/// copy elimination). A node that finds no color joins the spill list.
///
/// Two global nodes never share a color even without an interference edge
/// (paper §3.1.3: "this virtual register cannot be colored the same color as
/// any other global virtual register").
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_COLORING_H
#define RAP_REGALLOC_COLORING_H

#include "regalloc/InterferenceGraph.h"

#include <vector>

namespace rap {

namespace telemetry {
class FunctionScope;
} // namespace telemetry

struct ColorResult {
  /// Node ids that could not be colored, in pop order.
  std::vector<unsigned> SpillList;

  bool fullyColored() const { return SpillList.empty(); }
};

/// Colors \p G with \p K colors. Spill costs must already be set (and
/// divided by degree, per Figure 5). Nodes on the spill list end with
/// Color == -1; all others receive a color in [0, K).
///
/// With a telemetry \p Scope, records the color.* counters: nodes seen,
/// trivially-simplified picks, cost-forced (blocked) picks, blocked nodes
/// rescued by Briggs optimism, and nodes sent to the spill list.
ColorResult colorGraph(InterferenceGraph &G, unsigned K,
                       telemetry::FunctionScope *Scope = nullptr);

} // namespace rap

#endif // RAP_REGALLOC_COLORING_H
