//===- regalloc/Rap.cpp - Hierarchical PDG allocator -------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Rap.h"

#include "pdg/DataDependence.h"
#include "pdg/SeriesParallel.h"
#include "regalloc/AssignmentVerifier.h"
#include "regalloc/Coalesce.h"
#include "regalloc/Coloring.h"
#include "regalloc/GlobalSpillCleanup.h"
#include "regalloc/Peephole.h"
#include "regalloc/PhysicalRewrite.h"
#include "regalloc/SpillCodeMovement.h"
#include "support/Env.h"
#include "support/ShardPool.h"
#include "support/Stats.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

using namespace rap;

namespace {
double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

bool rapDebug() {
  static const bool On = env::flag("RAP_DEBUG");
  return On;
}

} // namespace

namespace {
constexpr double LocalOrSpilledCost = 999999.0; // paper Figure 5
constexpr double InfiniteCost = 1e18;           // atomic spill temporaries
constexpr unsigned MaxSpillActions = 50000;
} // namespace

RapAllocator::RapAllocator(IlocFunction &F, const AllocOptions &Options)
    : F(F), Options(Options),
      Injector(Options.Faults.empty() ? envFaultPlan() : Options.Faults,
               F.name()),
      StartTime(std::chrono::steady_clock::now()) {
  refresh();
}

void RapAllocator::checkTimeBudget(int Region) {
  // One unified guard: MaxAllocSeconds and the request's cancel token
  // (deadline / drain) share the same round-boundary check points.
  checkAllocBudget(Options, StartTime, F.name(), Region);
}

void RapAllocator::refresh() {
  // Hand the stale CodeInfo to the new one so liveness warm-starts from the
  // previous block solution (exact; see Liveness).
  CI = std::make_unique<CodeInfo>(F, CI.get());
  Stats.LivenessSeconds += CI->LivenessSeconds;
  Refs = std::make_unique<RefInfo>(CI->Code, F.numVRegs());
}

bool RapAllocator::isGlobalTo(Reg R, const PdgNode *V) const {
  return !Refs->allRefsWithin(R, V->LinBegin, V->LinEnd);
}

int RapAllocator::slotOf(Reg V) {
  Reg Origin = originOf(V);
  auto It = SlotOf.find(Origin);
  if (It != SlotOf.end())
    return It->second;
  int Slot = F.newSpillSlot();
  SlotOf[Origin] = Slot;
  return Slot;
}

//===----------------------------------------------------------------------===//
// Phase 1a: building the region interference graph (paper §3.1.1)
//===----------------------------------------------------------------------===//

InterferenceGraph RapAllocator::buildRegionGraph(PdgNode *V) {
  return buildRegionGraphImpl(V, [this](const PdgNode *S) {
    auto It = SavedGraphs.find(S);
    return It == SavedGraphs.end() ? nullptr : &It->second;
  });
}

InterferenceGraph RapAllocator::buildRegionGraphImpl(
    PdgNode *V,
    const std::function<const InterferenceGraph *(const PdgNode *)>
        &SubGraph) {
  allocCheck(V->isRegion(), AllocErrorKind::InvariantViolation,
             "allocation works on region nodes");
  InterferenceGraph G;

  std::vector<Instr *> PC = V->parentCode();
  // Membership tests run inside the per-liveness-bit loop below, so keep
  // the reference sets as bit vectors; the sorted lists reproduce the
  // ascending iteration order node creation depends on.
  unsigned NumVRegs = F.numVRegs();
  BitVector RefsPC(NumVRegs);
  for (const Instr *I : PC) {
    for (Reg R : I->Src)
      RefsPC.set(R);
    if (I->hasDef())
      RefsPC.set(I->Dst);
  }

  BitVector Vars = RefsPC; // parent code is part of the subtree walk below
  V->forEachInstr([&](Instr *I) {
    for (Reg R : I->Src)
      Vars.set(R);
    if (I->hasDef())
      Vars.set(I->Dst);
  });

  //--- add_region_conflicts -----------------------------------------------
  RefsPC.forEach([&](unsigned R) { G.getOrCreateNode(R); });

  // Definition points: the defined register interferes with every register
  // that is live after the instruction (minus the source of a copy). Live
  // registers referenced only in subregions get a node now and are merged
  // with the subregion import below; registers referenced entirely outside
  // this region are live-in and handled by the Figure 4 rules.
  for (const Instr *I : PC) {
    if (!I->hasDef())
      continue;
    Reg D = I->Dst;
    CI->Live.liveAfter(I->LinPos).forEach([&](unsigned L) {
      if (L == D || !Vars.test(L))
        return;
      if (I->Op == Opcode::Mv && L == I->Src[0])
        return;
      G.getOrCreateNode(L);
      G.addEdge(D, static_cast<Reg>(L));
    });
  }

  // Registers live on entrance to the region and referenced here coexist.
  const BitVector &LiveInV = CI->Live.liveInOf(*V);
  std::vector<Reg> LiveRefs;
  RefsPC.forEach([&](unsigned R) {
    if (LiveInV.test(R))
      LiveRefs.push_back(R);
  });
  for (size_t A = 0; A != LiveRefs.size(); ++A)
    for (size_t B = A + 1; B != LiveRefs.size(); ++B)
      G.addEdge(LiveRefs[A], LiveRefs[B]);

  //--- add_subregion_conflicts (Figure 4) ----------------------------------
  // Live-in registers not referenced at this level conflict with every node
  // referenced here (Figure 3's virtual register d).
  std::vector<unsigned> PreNodes = G.aliveNodes();
  Vars.forEach([&](unsigned VK) {
    if (RefsPC.test(VK) || !LiveInV.test(VK))
      return;
    unsigned N = G.getOrCreateNode(VK);
    for (unsigned M : PreNodes)
      G.addEdgeNodes(N, M);
  });

  for (PdgNode *S : V->subregions()) {
    const InterferenceGraph *GSPtr = SubGraph(S);
    allocCheck(GSPtr != nullptr, AllocErrorKind::InvariantViolation,
               "subregion must be allocated before its parent");
    const InterferenceGraph &GS = *GSPtr;

    // Import each combined subregion node, merging with existing nodes that
    // name the same virtual register.
    std::map<unsigned, unsigned> Imported;
    for (unsigned NS : GS.aliveNodes()) {
      int Target = -1;
      std::vector<Reg> Fresh;
      for (Reg R : GS.node(NS).VRegs) {
        int Existing = G.nodeOf(R);
        if (Existing < 0) {
          Fresh.push_back(R);
          continue;
        }
        if (Target < 0)
          Target = Existing;
        else if (Target != Existing)
          Target = static_cast<int>(G.mergeNodes(
              static_cast<unsigned>(Target), static_cast<unsigned>(Existing)));
      }
      if (Target < 0) {
        allocCheck(!Fresh.empty(), AllocErrorKind::InvariantViolation,
                   "empty subregion node");
        Target = static_cast<int>(G.getOrCreateNode(Fresh.front()));
        Fresh.erase(Fresh.begin());
      }
      for (Reg R : Fresh)
        G.addRegToNode(static_cast<unsigned>(Target), R);
      Imported[NS] = static_cast<unsigned>(Target);
    }
    for (unsigned NS : GS.aliveNodes())
      for (unsigned MS : GS.adjacency(NS))
        if (MS > NS)
          G.addEdgeNodes(Imported.at(NS), Imported.at(MS));

    // Registers live across (but unreferenced in) the subregion conflict
    // with everything allocated inside it.
    const BitVector &LiveInS = CI->Live.liveInOf(*S);
    Vars.forEach([&](unsigned VK) {
      if (VK >= LiveInS.size() || !LiveInS.test(VK))
        return;
      if (Refs->referencedWithin(VK, S->LinBegin, S->LinEnd))
        return;
      unsigned N = G.getOrCreateNode(VK);
      for (auto &[NS, NG] : Imported)
        G.addEdgeNodes(N, NG);
    });
  }

  // Pieces of one split register represent the same virtual register
  // (paper §3.1.1); merge their nodes when they do not interfere so they
  // allocate — and later move — as a unit.
  {
    auto GlobalOriginsOf = [&](unsigned N) {
      std::set<Reg> Out;
      for (Reg R : G.node(N).VRegs)
        if (isGlobalTo(R, V))
          Out.insert(originOf(R));
      return Out;
    };
    auto MergeOnePair = [&]() -> bool {
      std::map<Reg, unsigned> NodeOfOrigin;
      for (unsigned N : G.aliveNodes()) {
        for (Reg R : G.node(N).VRegs) {
          Reg Origin = originOf(R);
          if (Origin == R && !SlotOf.count(Origin))
            continue; // never split
          if (NoMergeOrigins.count(Origin))
            continue; // merging proved uncolorable earlier
          auto [It, Inserted] = NodeOfOrigin.try_emplace(Origin, N);
          if (Inserted || It->second == N)
            continue;
          if (G.interfere(N, It->second))
            continue; // overlapping pieces (e.g. two loads at one instr)
          // Keep the global-global invariant: the union may cover at most
          // one global origin (same-origin pieces count once).
          std::set<Reg> Globals = GlobalOriginsOf(N);
          for (Reg O : GlobalOriginsOf(It->second))
            Globals.insert(O);
          if (Globals.size() > 1)
            continue;
          G.mergeNodes(It->second, N);
          return true;
        }
      }
      return false;
    };
    while (MergeOnePair()) {
    }
  }

  if (Options.Coalesce) {
    auto GlobalOriginCount = [&](unsigned N1, unsigned N2) {
      std::set<Reg> Origins;
      for (unsigned N : {N1, N2})
        for (Reg R : G.node(N).VRegs)
          if (isGlobalTo(R, V))
            Origins.insert(originOf(R));
      return Origins.size();
    };
    coalesceConservatively(G, PC, Options.K,
                           [&](unsigned A, unsigned B) {
                             return GlobalOriginCount(A, B) <= 1;
                           });
  }

  // Classify nodes and check the single-global invariant implied by the
  // global-global coloring rule (pieces of one origin count once: they
  // never coexist, so sharing a color is always sound for them).
  for (unsigned N : G.aliveNodes()) {
    auto &Node = G.node(N);
    std::set<Reg> GlobalOrigins;
    for (Reg R : Node.VRegs)
      if (isGlobalTo(R, V))
        GlobalOrigins.insert(originOf(R));
    Node.Global = !GlobalOrigins.empty();
    if (GlobalOrigins.size() > 1)
      throwAllocError(AllocErrorKind::InvariantViolation,
                      "combined node holds two region-global virtual "
                      "registers",
                      F.name(), V->Id);
  }
  return G;
}

//===----------------------------------------------------------------------===//
// Phase 1b: spill costs (paper Figure 5)
//===----------------------------------------------------------------------===//

void RapAllocator::calcSpillCosts(PdgNode *V, InterferenceGraph &G) {
  std::vector<PdgNode *> Subs = V->subregions();
  std::vector<Instr *> PC = V->parentCode();

  // Positions covered by parent-level code, for counting uses and defs "in
  // the parent region".
  BitVector PCPos(static_cast<unsigned>(CI->Code.Instrs.size()));
  for (const Instr *I : PC)
    PCPos.set(I->LinPos);

  // find, not operator[]: this runs concurrently during the speculative
  // region-parallel phase (where the map is empty and must stay that way).
  static const std::set<Reg> NoneSpilled;
  auto SpilledIt = SpilledIn.find(V);
  const std::set<Reg> &Spilled =
      SpilledIt == SpilledIn.end() ? NoneSpilled : SpilledIt->second;

  for (unsigned N : G.aliveNodes()) {
    auto &Node = G.node(N);

    // Classify the members. Combining can put unspillable atomic spill
    // ranges into the same node as an ordinary register; what matters is
    // whether spilling *some* member can still relieve pressure.
    unsigned NumSpillable = 0;
    bool AnyProfitable = false;
    for (Reg R : Node.VRegs) {
      if (NoSpill.count(R) || GloballySpilled.count(R) || Spilled.count(R))
        continue;
      ++NumSpillable;
      // Paper Figure 5: a register whose references all live inside one
      // subregion spills without removing interference at this level (the
      // rewrite is a deferred spill inside the subregion) — unprofitable
      // but still able to make progress.
      bool LocalToSub = false;
      for (PdgNode *S : Subs)
        if (Refs->allRefsWithin(R, S->LinBegin, S->LinEnd)) {
          LocalToSub = true;
          break;
        }
      AnyProfitable |= !LocalToSub;
    }

    if (NumSpillable == 0) {
      Node.SpillCost = InfiniteCost;
      continue;
    }
    if (!AnyProfitable) {
      Node.SpillCost = LocalOrSpilledCost;
      continue;
    }

    // Uses + defs at this level: one load per using instruction, one store
    // per definition.
    double Cost = 0;
    for (Reg R : Node.VRegs) {
      for (unsigned P : Refs->usePositions(R))
        Cost += PCPos.test(P);
      for (unsigned P : Refs->defPositions(R))
        Cost += PCPos.test(P);
    }

    // Boundary loads/stores for subregions (Figure 5's Livein/Liveout
    // increments).
    for (PdgNode *S : Subs) {
      const BitVector &LiveInS = CI->Live.liveInOf(*S);
      const BitVector &LiveOutS = CI->Live.liveOutOf(*S);
      bool In = false, Out = false;
      for (Reg R : Node.VRegs) {
        In |= LiveInS.test(R) && Refs->usedWithin(R, S->LinBegin, S->LinEnd);
        Out |= LiveOutS.test(R) &&
               Refs->definedWithin(R, S->LinBegin, S->LinEnd);
      }
      Cost += In;
      Cost += Out;
    }

    unsigned Deg = G.effectiveDegree(N);
    Node.SpillCost = Cost / (Deg == 0 ? 1 : Deg);
  }
}

//===----------------------------------------------------------------------===//
// Phase 1c: the per-region driver (paper Figure 2)
//===----------------------------------------------------------------------===//

InterferenceGraph RapAllocator::allocRegion(PdgNode *V) {
  Injector.hit(FaultSite::RegionAlloc);
  InProgress.insert(V);
  for (PdgNode *S : V->subregions())
    allocRegion(S);

  telemetry::FunctionScope *TS = Options.Scope;
  for (unsigned Round = 0; Round != Options.MaxSpillRounds; ++Round) {
    checkTimeBudget(V->Id);
    telemetry::ScopedPhase Phase(TS, "rap_region", V->Id);
    auto BuildStart = std::chrono::steady_clock::now();
    InterferenceGraph G = buildRegionGraph(V);
    Stats.GraphBuildSeconds += secondsSince(BuildStart);
    ++Stats.GraphBuilds;
    Stats.MaxGraphNodes = std::max(Stats.MaxGraphNodes, G.numAliveNodes());
    Stats.PeakGraphBytes = std::max(Stats.PeakGraphBytes, G.memoryBytes());
    if (TS) {
      TS->add("rap.graph_builds");
      TS->maxOf("graph.max_nodes", G.numAliveNodes());
    }
    if (Options.MaxGraphBytes && G.memoryBytes() > Options.MaxGraphBytes)
      throwAllocError(AllocErrorKind::ResourceLimit,
                      "interference graph needs " +
                          std::to_string(G.memoryBytes()) +
                          " bytes (limit " +
                          std::to_string(Options.MaxGraphBytes) + ")",
                      F.name(), V->Id);
    calcSpillCosts(V, G);
    Injector.hit(FaultSite::Coloring);
    ColorResult CR = colorGraph(G, Options.K, TS);
    Phase.arg("round", Round);
    Phase.arg("nodes", G.numAliveNodes());
    Phase.arg("spill_candidates", CR.SpillList.size());
    if (rapDebug()) {
      std::fprintf(stderr, "[rap] region R%d round %u nodes=%u spills=%zu\n",
                   V->Id, Round, G.numAliveNodes(), CR.SpillList.size());
      if (!CR.SpillList.empty()) {
        std::fprintf(stderr, "%s", G.str().c_str());
        std::fprintf(stderr, "%s", CI->Code.str().c_str());
      }
    }
    if (CR.fullyColored()) {
      SavedGraphs[V] = G.combinedByColor();
      for (PdgNode *S : V->subregions())
        if (!S->IsLoop)
          SavedGraphs.erase(S);
      ++Stats.RegionsProcessed;
      if (TS)
        TS->add("rap.regions_processed");
      InProgress.erase(V);
      return G;
    }
    ++Stats.SpillRounds;
    if (TS)
      TS->add("rap.spill_rounds");
    std::vector<std::pair<Reg, PdgNode *>> Queue;
    bool SplitProgress = false;
    for (unsigned N : CR.SpillList) {
      if (G.node(N).SpillCost >= InfiniteCost) {
        // Nothing in the node can spill. If it is a merged-origin unit,
        // give up on allocating those pieces as one register and retry
        // with them separate.
        for (Reg R : G.node(N).VRegs) {
          Reg Origin = originOf(R);
          if ((Origin != R || SlotOf.count(Origin)) &&
              NoMergeOrigins.insert(Origin).second)
            SplitProgress = true;
        }
        continue;
      }
      for (Reg R : G.node(N).VRegs)
        Queue.push_back({R, V});
    }
    if (Queue.empty() && !SplitProgress)
      throwAllocError(AllocErrorKind::Unallocatable,
                      "unspillable pressure (k=" +
                          std::to_string(Options.K) + " too small)",
                      F.name(), V->Id);
    spillQueueRun(std::move(Queue));
  }
  throwAllocError(AllocErrorKind::NonConvergence,
                  "region allocation did not converge within " +
                      std::to_string(Options.MaxSpillRounds) + " rounds",
                  F.name(), V->Id);
}

void RapAllocator::spillQueueRun(std::vector<std::pair<Reg, PdgNode *>> Queue) {
  // Spill code may land inside subregions that were already allocated and
  // combined (deferred spills and everywhere-spills). Their summaries no
  // longer describe the edited code, so those subtrees are re-allocated
  // bottom-up once the queue drains.
  std::set<PdgNode *> Dirty;
  while (!Queue.empty()) {
    auto [V, R] = Queue.front();
    Queue.erase(Queue.begin());
    if (++TotalSpillActions > MaxSpillActions)
      throwAllocError(AllocErrorKind::ResourceLimit,
                      "spill storm: more than " +
                          std::to_string(MaxSpillActions) + " spill actions",
                      F.name(), R->Id);
    checkTimeBudget(R->Id);
    // Spill rewrites edit only the spilled register's references (plus
    // fresh temporaries that never re-enter this queue), so the analysis
    // snapshot stays exact for every other register. Refresh lazily: only
    // when this entry's register was itself edited since the snapshot.
    if (EditedSinceRefresh.count(V)) {
      refresh();
      EditedSinceRefresh.clear();
    }
    std::vector<std::pair<Reg, PdgNode *>> Deferred;
    bool Changed = trySpill(V, R, Deferred);
    if (Changed) {
      EditedSinceRefresh.insert(V);
      // Note: spillEverywhere and the outside-the-region fixups only insert
      // code that references the spilled register itself, which existing
      // summaries already contain (its ranges only shrink), so they never
      // dirty a region. Fresh atomic temporaries do: mark the outermost
      // completed region containing the edit (deferred spills can land
      // several levels below regions whose summaries were already folded
      // into an ancestor).
      PdgNode *Top = nullptr;
      for (PdgNode *P = R; P && !InProgress.count(P); P = P->Parent)
        if (P->isRegion() && SavedGraphs.count(P))
          Top = P;
      if (Top)
        Dirty.insert(Top);
    }
    for (auto &D : Deferred)
      Queue.push_back(D);
  }

  // The loop above may leave the snapshot stale; callers (the allocRegion
  // coloring loop and the dirty re-allocation below) need a fresh one.
  if (!EditedSinceRefresh.empty()) {
    refresh();
    EditedSinceRefresh.clear();
  }

  // Keep only the outermost dirty regions; re-allocating them rebuilds
  // everything beneath.
  for (PdgNode *D : std::vector<PdgNode *>(Dirty.begin(), Dirty.end())) {
    for (PdgNode *P = D->Parent; P; P = P->Parent)
      if (Dirty.count(P)) {
        Dirty.erase(D);
        break;
      }
  }
  // Re-allocate in region-id order, not std::set's pointer order: the
  // subtrees are disjoint so any order gives the same code, but telemetry
  // records the visit sequence and must not vary with heap layout.
  std::vector<PdgNode *> Order(Dirty.begin(), Dirty.end());
  std::sort(Order.begin(), Order.end(),
            [](const PdgNode *A, const PdgNode *B) { return A->Id < B->Id; });
  for (PdgNode *D : Order)
    allocRegion(D);
}

//===----------------------------------------------------------------------===//
// Phase 1d: spill-code insertion (paper §3.1.4)
//===----------------------------------------------------------------------===//

void RapAllocator::renameInSubtree(PdgNode *S, Reg OldReg, Reg NewReg) {
  S->forEachInstr([&](Instr *I) {
    for (Reg &R : I->Src)
      if (R == OldReg)
        R = NewReg;
    if (I->hasDef() && I->Dst == OldReg)
      I->Dst = NewReg;
  });
  // Keep the saved graphs of nested (loop) regions and still-live subregion
  // graphs naming the new register (paper: "the virtual register is then
  // renamed", §3.1.4 — the loop graphs feed spill-code movement).
  S->forEachNode([&](const PdgNode *N) {
    auto It = SavedGraphs.find(N);
    if (It != SavedGraphs.end())
      It->second.renameReg(OldReg, NewReg);
  });
}

bool RapAllocator::trySpill(Reg V, PdgNode *R,
                            std::vector<std::pair<Reg, PdgNode *>> &Deferred) {
  allocCheck(R->isRegion(), AllocErrorKind::InvariantViolation,
             "spills target regions");
  if (NoSpill.count(V))
    return false; // an atomic spill range cannot be spilled again
  if (!Refs->referencedWithin(V, R->LinBegin, R->LinEnd) ||
      SpilledIn[R].count(V)) {
    // Live across the region (or already locally spilled) with the pressure
    // still unresolved: interrupt the live range at its references instead.
    return spillEverywhere(V);
  }

  std::vector<Instr *> PC = R->parentCode();
  auto ParkIt = ParamStores.find(V);
  Instr *Park = ParkIt == ParamStores.end() ? nullptr : ParkIt->second;
  std::vector<Instr *> PCUses, PCDefs;
  for (Instr *I : PC) {
    if (I != Park &&
        std::find(I->Src.begin(), I->Src.end(), V) != I->Src.end())
      PCUses.push_back(I);
    if (I->hasDef() && I->Dst == V)
      PCDefs.push_back(I);
  }

  struct SubAction {
    PdgNode *S;
    bool Load;
    bool Store;
  };
  std::vector<SubAction> SubActions;
  for (PdgNode *S : R->subregions()) {
    if (!Refs->referencedWithin(V, S->LinBegin, S->LinEnd))
      continue;
    bool Load = CI->Live.liveInOf(*S).test(V);
    bool Store = CI->Live.liveOutOf(*S).test(V) &&
                 Refs->definedWithin(V, S->LinBegin, S->LinEnd);
    SubActions.push_back(SubAction{S, Load, Store});
  }

  // The outside-the-region fixup (paper §3.1.4): definitions outside R
  // whose value flows into R must store it to the slot, uses outside R
  // reached by definitions inside R must reload it, and definitions
  // reaching those reloaded uses must store as well (the paper's
  // recursion, collapsed to its one-step fixpoint).
  std::vector<FlowDep> VDeps =
      DataDependence::flowDepsFor(CI->Code, CI->Graph, V);
  auto InsideR = [&](unsigned Pos) {
    return Pos >= R->LinBegin && Pos < R->LinEnd;
  };
  std::set<unsigned> LoadedUses;  // positions outside R
  for (const FlowDep &D : VDeps)
    if (InsideR(D.DefPos) && !InsideR(D.UsePos))
      LoadedUses.insert(D.UsePos);
  std::set<unsigned> StoredDefs; // positions outside R
  for (const FlowDep &D : VDeps) {
    if (InsideR(D.DefPos))
      continue;
    if (InsideR(D.UsePos) || LoadedUses.count(D.UsePos))
      StoredDefs.insert(D.DefPos);
  }
  bool NeedParamStore =
      V < F.numParams() && !ParamStoreDone.count(V);

  bool AnyCode = !PCUses.empty() || !PCDefs.empty() || !LoadedUses.empty() ||
                 !StoredDefs.empty();
  for (const SubAction &A : SubActions)
    AnyCode |= A.Load || A.Store;

  if (!AnyCode) {
    // Pure rename: the register's live ranges are confined to subregions
    // with no value traffic across their boundaries. Spill inside the
    // owning subregions instead so the spill makes progress. With no
    // subregions either (e.g. only the park store remains), fall through to
    // the everywhere-spill so the register is at least reclassified as
    // fully spilled.
    if (SubActions.empty())
      return spillEverywhere(V);
    for (const SubAction &A : SubActions)
      Deferred.push_back({V, A.S});
    return false;
  }

  Injector.hit(FaultSite::SpillInsert);
  SpilledIn[R].insert(V);
  ++Stats.SpilledVRegs;
  int Slot = slotOf(V);
  if (rapDebug())
    std::fprintf(stderr,
                 "[spill] %%%u at R%d (pcuses=%zu pcdefs=%zu subs=%zu "
                 "loadedU=%zu storedD=%zu)\n",
                 V, R->Id, PCUses.size(), PCDefs.size(), SubActions.size(),
                 LoadedUses.size(), StoredDefs.size());
  CodeEditor Editor(F);

  // Parameter values arrive in a register; park them in the slot once.
  if (NeedParamStore) {
    ParamStoreDone.insert(V);
    Instr *St = F.createInstr(Opcode::StSpill);
    St->Slot = Slot;
    St->Src = {V};
    Editor.insertAtRegionEntry(F.root(), St);
    ParamStores[V] = St;
    ++Stats.SpillStoresInserted;
  }

  // Parent-level references go through fresh atomic live ranges...
  for (Instr *User : PCUses) {
    Reg T = F.newVReg();
    NoSpill.insert(T);
    OriginOf[T] = originOf(V);
    Instr *Ld = F.createInstr(Opcode::LdSpill);
    Ld->Dst = T;
    Ld->Slot = Slot;
    Editor.insertBefore(User, Ld);
    ++Stats.SpillLoadsInserted;
    for (Reg &Op : User->Src)
      if (Op == V)
        Op = T;
  }
  for (Instr *Def : PCDefs) {
    Reg D = F.newVReg();
    NoSpill.insert(D);
    OriginOf[D] = originOf(V);
    Def->Dst = D;
    Instr *St = F.createInstr(Opcode::StSpill);
    St->Slot = Slot;
    St->Src = {D};
    Editor.insertAfter(Def, St);
    ++Stats.SpillStoresInserted;
  }

  // ...each referencing subregion loads the value on entry, stores escaping
  // definitions on exit, and renames the register so it becomes local
  // (paper §3.1.4)...
  for (const SubAction &A : SubActions) {
    Reg VS = F.newVReg();
    OriginOf[VS] = originOf(V);
    if (A.Load) {
      Instr *Ld = F.createInstr(Opcode::LdSpill);
      Ld->Dst = VS;
      Ld->Slot = Slot;
      Editor.insertAtRegionEntry(A.S, Ld);
      ++Stats.SpillLoadsInserted;
    }
    if (A.Store) {
      Instr *St = F.createInstr(Opcode::StSpill);
      St->Slot = Slot;
      St->Src = {VS};
      Editor.insertAtRegionExit(A.S, St);
      ++Stats.SpillStoresInserted;
    }
    renameInSubtree(A.S, V, VS);
  }

  // ...and the outside world synchronizes through the slot.
  for (unsigned Pos : StoredDefs) {
    Instr *Def = CI->Code.Instrs[Pos];
    allocCheck(Def->Dst == V, AllocErrorKind::InvariantViolation,
               "stale reaching-definition information");
    Instr *St = F.createInstr(Opcode::StSpill);
    St->Slot = Slot;
    St->Src = {V};
    Editor.insertAfter(Def, St);
    ++Stats.SpillStoresInserted;
  }
  for (unsigned Pos : LoadedUses) {
    Instr *User = CI->Code.Instrs[Pos];
    Instr *Ld = F.createInstr(Opcode::LdSpill);
    Ld->Dst = V;
    Ld->Slot = Slot;
    Editor.insertBefore(User, Ld);
    ++Stats.SpillLoadsInserted;
  }
  return true;
}

bool RapAllocator::spillEverywhere(Reg V) {
  if (GloballySpilled.count(V))
    return false;
  Injector.hit(FaultSite::SpillInsert);
  GloballySpilled.insert(V);
  ++Stats.SpilledVRegs;
  int Slot = slotOf(V);
  if (rapDebug())
    std::fprintf(stderr, "[spill] %%%u everywhere (uses=%zu defs=%zu)\n", V,
                 Refs->usePositions(V).size(), Refs->defPositions(V).size());
  CodeEditor Editor(F);

  if (V < F.numParams() && !ParamStoreDone.count(V)) {
    ParamStoreDone.insert(V);
    Instr *St = F.createInstr(Opcode::StSpill);
    St->Slot = Slot;
    St->Src = {V};
    Editor.insertAtRegionEntry(F.root(), St);
    ParamStores[V] = St;
    ++Stats.SpillStoresInserted;
  }
  Instr *Park = ParamStores.count(V) ? ParamStores[V] : nullptr;

  // Reload the value just before every use and park it just after every
  // definition. References inside already-allocated subregions keep the
  // same register name, so their saved interference summaries stay valid
  // (the ranges only shrink).
  for (unsigned Pos : Refs->usePositions(V)) {
    Instr *User = CI->Code.Instrs[Pos];
    if (User == Park)
      continue;
    Instr *Ld = F.createInstr(Opcode::LdSpill);
    Ld->Dst = V;
    Ld->Slot = Slot;
    Editor.insertBefore(User, Ld);
    ++Stats.SpillLoadsInserted;
  }
  for (unsigned Pos : Refs->defPositions(V)) {
    Instr *Def = CI->Code.Instrs[Pos];
    Instr *St = F.createInstr(Opcode::StSpill);
    St->Slot = Slot;
    St->Src = {V};
    Editor.insertAfter(Def, St);
    ++Stats.SpillStoresInserted;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Phase 1e: speculative region-parallel first round (DESIGN.md §14)
//===----------------------------------------------------------------------===//
//
// Determinism argument, in brief: before the first spill, every map the
// sequential walk consults (SpilledIn, SlotOf, NoSpill, GloballySpilled,
// OriginOf, NoMergeOrigins) is empty and the analysis snapshot (CodeInfo /
// RefInfo / liveness) is read-only, so a region's first build/cost/color
// round depends only on the code and its subregions' combined graphs —
// both of which are schedule-invariant. If every region's first round
// colors completely, the sequential walk would have executed exactly those
// rounds in postorder and never edited code; committing the speculative
// results in postorder therefore reproduces it bit for bit (ILOC untouched,
// same colors, same stats, same telemetry slice order). The moment anything
// deviates from that script — a spill candidate, a resource guard, an
// injected fault — the speculation is discarded wholesale (no code was
// edited; the only consumed state, fault-injection countdowns, is re-armed)
// and the classic walk reruns from scratch.

bool RapAllocator::runRegionParallelPhase1(InterferenceGraph &Final) {
  SeriesParallelDecomposition SPD(F.root());
  const unsigned RootIdx = SPD.root().Index;

  // Task grain: a subtree earns its own pool task only when it carries
  // enough instructions to amortize dispatch; lighter subtrees run inline
  // in their closest task-owning ancestor. Heaviness is upward-closed (a
  // subtree's weight includes its children's), so task owners form a
  // connected subtree containing the root.
  const unsigned Grain = std::max(1u, Options.RegionGrain);
  std::vector<char> Heavy(SPD.size(), 0);
  unsigned NumHeavy = 0;
  for (unsigned I = 0; I != SPD.size(); ++I) {
    Heavy[I] = I == RootIdx || SPD.node(I).SubtreeInstrs >= Grain;
    NumHeavy += Heavy[I];
  }
  if (NumHeavy < 2)
    return false; // nothing to overlap; the classic walk is strictly cheaper

  ShardPool *Pool = Options.RegionPool;
  std::unique_ptr<ShardPool> Ephemeral;
  if (!Pool) {
    WatchdogConfig Quiet;
    Quiet.Factor = 0; // no deadline-budget watchdog for region tasks
    Ephemeral = std::make_unique<ShardPool>(Options.RegionThreads, Quiet);
    Pool = Ephemeral.get();
  }

  telemetry::FunctionScope *TS = Options.Scope;
  struct SpecSlot {
    InterferenceGraph Combined;
    std::unique_ptr<telemetry::FunctionScope> Scratch;
    unsigned MaxGraphNodes = 0;
    size_t PeakGraphBytes = 0;
    double GraphBuildSeconds = 0;
  };
  std::vector<SpecSlot> Slots(SPD.size());
  if (TS)
    for (SpecSlot &S : Slots)
      S.Scratch =
          std::make_unique<telemetry::FunctionScope>(TS->epoch());

  InterferenceGraph RootFull;
  std::atomic<bool> Failed{false};
  std::mutex InjectorM; // countdowns are shared across region tasks

  // One region's speculative first round: the exact body the sequential
  // walk runs on a spill-free region, with subregion graphs resolved from
  // the speculative slots and stats/telemetry going to scratch storage.
  auto RunNode = [&](unsigned Idx) -> bool {
    const SPNode &N = SPD.node(Idx);
    PdgNode *V = N.Region;
    SpecSlot &Slot = Slots[Idx];
    {
      std::lock_guard<std::mutex> Lock(InjectorM);
      Injector.hit(FaultSite::RegionAlloc);
    }
    checkTimeBudget(V->Id);
    telemetry::FunctionScope *ScratchTS = Slot.Scratch.get();
    telemetry::ScopedPhase Phase(ScratchTS, "rap_region", V->Id);
    auto BuildStart = std::chrono::steady_clock::now();
    InterferenceGraph G = buildRegionGraphImpl(
        V, [&](const PdgNode *S) -> const InterferenceGraph * {
          for (unsigned C : N.Children)
            if (SPD.node(C).Region == S)
              return &Slots[C].Combined;
          return nullptr;
        });
    Slot.GraphBuildSeconds += secondsSince(BuildStart);
    Slot.MaxGraphNodes = std::max(Slot.MaxGraphNodes, G.numAliveNodes());
    Slot.PeakGraphBytes = std::max(Slot.PeakGraphBytes, G.memoryBytes());
    if (ScratchTS) {
      ScratchTS->add("rap.graph_builds");
      ScratchTS->maxOf("graph.max_nodes", G.numAliveNodes());
    }
    if (Options.MaxGraphBytes && G.memoryBytes() > Options.MaxGraphBytes)
      return false; // the classic rerun reproduces the structured error
    calcSpillCosts(V, G);
    {
      std::lock_guard<std::mutex> Lock(InjectorM);
      Injector.hit(FaultSite::Coloring);
    }
    ColorResult CR = colorGraph(G, Options.K, ScratchTS);
    Phase.arg("round", 0);
    Phase.arg("nodes", G.numAliveNodes());
    Phase.arg("spill_candidates", CR.SpillList.size());
    if (!CR.fullyColored())
      return false; // a spill is off the no-spill script; rerun classic
    Slot.Combined = G.combinedByColor();
    if (ScratchTS)
      ScratchTS->add("rap.regions_processed");
    if (Idx == RootIdx)
      RootFull = std::move(G);
    return true;
  };

  // Inline postorder over a light subtree (owned by one task; bottom-up so
  // subregion graphs exist before their parent builds).
  std::function<bool(unsigned)> RunSubtree = [&](unsigned Idx) -> bool {
    for (unsigned C : SPD.node(Idx).Children)
      if (!RunSubtree(C))
        return false;
    return RunNode(Idx);
  };

  // Series edges between task owners run as a countdown DAG: a task owner
  // is submitted once its last task-owning child completes; initial tasks
  // are the owners with none. Completed tasks submit their parent from the
  // worker — their own pending done() keeps the barrier open, and the
  // failure flag only short-circuits work, never the countdown, so wait()
  // always drains.
  std::vector<int> OwnerParent(SPD.size(), -1);
  std::vector<std::atomic<unsigned>> Pending(SPD.size());
  std::vector<unsigned> HeavyKids(SPD.size(), 0);
  for (unsigned I = 0; I != SPD.size(); ++I) {
    for (unsigned C : SPD.node(I).Children)
      if (Heavy[C]) {
        ++HeavyKids[I];
        OwnerParent[C] = static_cast<int>(I);
      }
    Pending[I].store(HeavyKids[I], std::memory_order_relaxed);
  }

  TaskGroup Group;
  std::function<void(unsigned)> RunOwner = [&](unsigned Idx) {
    if (!Failed.load(std::memory_order_relaxed)) {
      bool Ok = true;
      try {
        for (unsigned C : SPD.node(Idx).Children)
          if (Ok && !Heavy[C])
            Ok = RunSubtree(C);
        if (Ok)
          Ok = RunNode(Idx);
      } catch (...) {
        Ok = false; // errors are re-raised (identically) by the classic rerun
      }
      if (!Ok)
        Failed.store(true, std::memory_order_relaxed);
    }
    int P = OwnerParent[Idx];
    if (P >= 0 &&
        Pending[static_cast<unsigned>(P)].fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      Group.expect();
      Pool->submit(static_cast<size_t>(P),
                   [&RunOwner, P] { RunOwner(static_cast<unsigned>(P)); },
                   &Group);
    }
  };
  // Initial tasks are decided from the *static* child counts, never the
  // live countdown: workers are already draining Pending while this loop
  // runs, and a parent whose last heavy child finished early would read as
  // zero here after the child's own fetch_sub already submitted it —
  // a double submission racing two copies of the same region.
  for (unsigned I = 0; I != SPD.size(); ++I)
    if (Heavy[I] && HeavyKids[I] == 0) {
      Group.expect();
      Pool->submit(I, [&RunOwner, I] { RunOwner(I); }, &Group);
    }
  Group.wait();

  if (Failed.load()) {
    // Discard wholesale. Nothing outside this frame changed except the
    // fault-injection countdowns consumed by speculative hits; re-arm them
    // so the classic rerun counts from zero, exactly like a serial run.
    Injector = FaultInjector(
        Options.Faults.empty() ? envFaultPlan() : Options.Faults, F.name());
    return false;
  }

  // Commit in the sequential postorder (ascending speculative index).
  for (unsigned I = 0; I != SPD.size(); ++I) {
    SpecSlot &Slot = Slots[I];
    ++Stats.GraphBuilds;
    ++Stats.RegionsProcessed;
    Stats.MaxGraphNodes = std::max(Stats.MaxGraphNodes, Slot.MaxGraphNodes);
    Stats.PeakGraphBytes =
        std::max(Stats.PeakGraphBytes, Slot.PeakGraphBytes);
    Stats.GraphBuildSeconds += Slot.GraphBuildSeconds;
    if (TS && Slot.Scratch) {
      for (const auto &[K, V] : Slot.Scratch->Counters) {
        uint64_t &Fold = TS->Counters[K];
        Fold = K.find("max") != std::string::npos ? std::max(Fold, V)
                                                  : Fold + V;
      }
      for (const auto &[K, V] : Slot.Scratch->TimerSeconds)
        TS->TimerSeconds[K] += V;
      for (telemetry::PhaseSlice &S : Slot.Scratch->Slices)
        TS->record(std::move(S));
    }
    // The sequential walk's end state keeps the root's and every loop
    // region's combined graph (non-loop children are erased when their
    // parent completes); reproduce exactly that.
    if (I == RootIdx || SPD.node(I).IsLoop)
      SavedGraphs[SPD.node(I).Region] = std::move(Slot.Combined);
  }
  Final = std::move(RootFull);
  return true;
}

//===----------------------------------------------------------------------===//
// The three-phase driver
//===----------------------------------------------------------------------===//

AllocStats RapAllocator::run() {
  telemetry::FunctionScope *TS = Options.Scope;
  InterferenceGraph Final;
  if (Options.RegionThreads <= 1 || !runRegionParallelPhase1(Final))
    Final = allocRegion(F.root());

  if (Options.SpillMovement) {
    refresh();
    MovementResult MR = moveSpillCodeOutOfLoops(F, Final, SavedGraphs, TS);
    Stats.HoistedLoads = MR.HoistedLoads;
    Stats.SunkStores = MR.SunkStores;
    Stats.MovementRemovedLoads = MR.RemovedLoads;
    Stats.MovementRemovedStores = MR.RemovedStores;
  }

  // Checked mode: vet the final coloring (after movement, which is the last
  // pass to run on virtual code) with the independent oracle.
  if (Options.VerifyAssignments) {
    telemetry::ScopedPhase Phase(TS, "verify");
    std::vector<AssignmentViolation> Violations = verifyAssignment(F, Final);
    if (!Violations.empty())
      throwAllocError(AllocErrorKind::VerifierReject,
                      std::to_string(Violations.size()) +
                          " assignment violation(s); first: " +
                          Violations[0].Text,
                      F.name());
  }

  Injector.hit(FaultSite::PhysicalRewrite);
  Stats.CopiesDeleted = rewriteToPhysical(F, Final, Options.K, TS);

  if (Options.Peephole) {
    PeepholeResult PR = peepholeSpillCleanup(F, TS);
    Stats.PeepholeRemovedLoads = PR.RemovedLoads;
    Stats.PeepholeRemovedStores = PR.RemovedStores;
    Stats.PeepholeLoadsToCopies = PR.LoadsToCopies;
  }
  if (Options.GlobalCleanup) {
    GlobalCleanupResult GR = globalSpillCleanup(F, TS);
    Stats.CleanupRemovedLoads = GR.RemovedLoads + GR.LoadsToCopies;
    Stats.CleanupRemovedStores = GR.RemovedStores;
  }
  return Stats;
}

AllocStats rap::allocateRap(IlocFunction &F, const AllocOptions &Options) {
  try {
    allocCheck(!F.isAllocated(), AllocErrorKind::InvariantViolation,
               "function already allocated");
    allocCheck(Options.K >= 3, AllocErrorKind::Unallocatable,
               "need at least 3 registers for a load/store ISA");
    return RapAllocator(F, Options).run();
  } catch (AllocError &E) {
    E.setFunction(F.name()); // fill in throw sites below the allocator
    throw;
  }
}
