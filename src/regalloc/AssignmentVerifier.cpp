//===- regalloc/AssignmentVerifier.cpp - Coloring checker -------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/AssignmentVerifier.h"

#include "cfg/Cfg.h"
#include "cfg/Liveness.h"
#include "ir/Linearize.h"

#include <sstream>

using namespace rap;

std::vector<AssignmentViolation>
rap::verifyAssignment(IlocFunction &F, const InterferenceGraph &Final) {
  std::vector<AssignmentViolation> Out;
  LinearCode Code = linearize(F);
  if (Code.Instrs.empty())
    return Out;
  Cfg G(Code);
  Liveness Live(Code, G, F.numVRegs());

  auto ColorOf = [&](Reg R) { return Final.colorOf(R); };

  for (unsigned P = 0, E = static_cast<unsigned>(Code.Instrs.size()); P != E;
       ++P) {
    const Instr *I = Code.Instrs[P];
    if (!I->hasDef())
      continue;
    Reg D = I->Dst;
    int DC = ColorOf(D);
    if (DC < 0)
      continue;
    Live.liveAfter(P).forEach([&](unsigned L) {
      if (L == D)
        return;
      if (I->Op == Opcode::Mv && L == I->Src[0])
        return;
      if (ColorOf(static_cast<Reg>(L)) != DC)
        return;
      AssignmentViolation V;
      V.Pos = P;
      V.Defined = D;
      V.Clobbered = static_cast<Reg>(L);
      std::ostringstream OS;
      OS << "at " << P << " '" << I->str() << "': def %" << D << " (color "
         << DC << ") clobbers live %" << L;
      V.Text = OS.str();
      Out.push_back(std::move(V));
    });
  }

  // Values simultaneously live at function entry must differ in color.
  std::vector<unsigned> Entry = Live.liveBefore(0).toVector();
  for (size_t A = 0; A != Entry.size(); ++A)
    for (size_t B = A + 1; B != Entry.size(); ++B) {
      int CA = ColorOf(Entry[A]);
      if (CA < 0 || CA != ColorOf(Entry[B]))
        continue;
      AssignmentViolation V;
      V.Pos = 0;
      V.Defined = Entry[A];
      V.Clobbered = Entry[B];
      V.Text = "entry-live registers %" + std::to_string(Entry[A]) + " and %" +
               std::to_string(Entry[B]) + " share color " +
               std::to_string(CA);
      Out.push_back(std::move(V));
    }
  return Out;
}
