//===- regalloc/InterferenceGraph.cpp - Interference graph -----------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/InterferenceGraph.h"

#include "regalloc/AllocError.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

using namespace rap;

void InterferenceGraph::mapReg(Reg R, unsigned Id) {
  if (R >= NodeOfReg.size())
    NodeOfReg.resize(R + 1, -1);
  NodeOfReg[R] = static_cast<int>(Id);
}

unsigned InterferenceGraph::getOrCreateNode(Reg R) {
  int Existing = nodeOf(R);
  if (Existing >= 0)
    return static_cast<unsigned>(Existing);
  unsigned Id = static_cast<unsigned>(Nodes.size());
  Node N;
  N.VRegs.push_back(R);
  Nodes.push_back(std::move(N));
  Adj.emplace_back();
  // Grow the triangular matrix to cover the new node's row of Id bits.
  size_t Bits = static_cast<size_t>(Id) * (Id + 1) / 2;
  TriWords.resize((Bits + 63) / 64, 0);
  mapReg(R, Id);
  ++NumAlive;
  return Id;
}

void InterferenceGraph::addEdge(Reg A, Reg B) {
  int N1 = nodeOf(A);
  int N2 = nodeOf(B);
  allocCheck(N1 >= 0 && N2 >= 0, AllocErrorKind::InvariantViolation,
             "addEdge on unknown registers");
  addEdgeNodes(static_cast<unsigned>(N1), static_cast<unsigned>(N2));
}

void InterferenceGraph::addEdgeNodes(unsigned N1, unsigned N2) {
  allocCheck(Nodes[N1].Alive && Nodes[N2].Alive,
             AllocErrorKind::InvariantViolation, "edge on dead node");
  if (N1 == N2 || testBit(N1, N2))
    return;
  setBit(N1, N2);
  Adj[N1].push_back(N2);
  Adj[N2].push_back(N1);
}

unsigned InterferenceGraph::mergeNodes(unsigned N1, unsigned N2) {
  allocCheck(N1 != N2, AllocErrorKind::InvariantViolation,
             "merging a node with itself");
  allocCheck(Nodes[N1].Alive && Nodes[N2].Alive,
             AllocErrorKind::InvariantViolation, "merging dead nodes");
  allocCheck(!interfere(N1, N2), AllocErrorKind::InvariantViolation,
             "merging interfering nodes would be uncolorable; the "
             "global-global rule should have prevented this");
  Node &A = Nodes[N1];
  Node &B = Nodes[N2];
  for (Reg R : B.VRegs) {
    A.VRegs.push_back(R);
    mapReg(R, N1);
  }
  std::sort(A.VRegs.begin(), A.VRegs.end());
  A.Global = A.Global || B.Global;
  for (unsigned Other : Adj[N2]) {
    clearBit(N2, Other);
    auto &AO = Adj[Other];
    AO.erase(std::find(AO.begin(), AO.end(), N2));
    if (Other != N1 && !testBit(N1, Other)) {
      setBit(N1, Other);
      Adj[N1].push_back(Other);
      AO.push_back(N1);
    }
  }
  Adj[N2].clear();
  B.Alive = false;
  B.VRegs.clear();
  --NumAlive;
  return N1;
}

void InterferenceGraph::renameReg(Reg OldReg, Reg NewReg) {
  int IdS = nodeOf(OldReg);
  if (IdS < 0)
    return;
  unsigned Id = static_cast<unsigned>(IdS);
  NodeOfReg[OldReg] = -1;
  allocCheck(nodeOf(NewReg) < 0, AllocErrorKind::InvariantViolation,
             "rename target already present");
  mapReg(NewReg, Id);
  auto &VR = Nodes[Id].VRegs;
  *std::find(VR.begin(), VR.end(), OldReg) = NewReg;
  std::sort(VR.begin(), VR.end());
}

void InterferenceGraph::addRegToNode(unsigned Id, Reg R) {
  allocCheck(Nodes[Id].Alive, AllocErrorKind::InvariantViolation,
             "adding register to a dead node");
  allocCheck(nodeOf(R) < 0, AllocErrorKind::InvariantViolation,
             "register already present in the graph");
  Nodes[Id].VRegs.push_back(R);
  std::sort(Nodes[Id].VRegs.begin(), Nodes[Id].VRegs.end());
  mapReg(R, Id);
}

std::vector<unsigned> InterferenceGraph::aliveNodes() const {
  std::vector<unsigned> Out;
  Out.reserve(NumAlive);
  for (unsigned I = 0, E = static_cast<unsigned>(Nodes.size()); I != E; ++I)
    if (Nodes[I].Alive)
      Out.push_back(I);
  return Out;
}

unsigned InterferenceGraph::effectiveDegree(unsigned Id) const {
  allocCheck(Nodes[Id].Alive, AllocErrorKind::InvariantViolation,
             "degree of a dead node");
  // Adjacency lists only ever name alive nodes (see class comment).
  unsigned Deg = static_cast<unsigned>(Adj[Id].size());
  if (Nodes[Id].Global) {
    for (unsigned I = 0, E = static_cast<unsigned>(Nodes.size()); I != E; ++I)
      if (I != Id && Nodes[I].Alive && Nodes[I].Global && !testBit(Id, I))
        ++Deg;
  }
  return Deg;
}

size_t InterferenceGraph::memoryBytes() const {
  size_t Bytes = TriWords.capacity() * sizeof(uint64_t) +
                 NodeOfReg.capacity() * sizeof(int);
  for (const auto &A : Adj)
    Bytes += A.capacity() * sizeof(unsigned);
  return Bytes;
}

InterferenceGraph InterferenceGraph::combinedByColor() const {
  InterferenceGraph Out;
  std::map<int, unsigned> NodeOfColor;
  for (unsigned I = 0, E = static_cast<unsigned>(Nodes.size()); I != E; ++I) {
    const Node &N = Nodes[I];
    if (!N.Alive)
      continue;
    allocCheck(N.Color >= 0, AllocErrorKind::InvariantViolation,
               "combining an uncolored graph");
    auto It = NodeOfColor.find(N.Color);
    if (It == NodeOfColor.end()) {
      unsigned NewId = Out.getOrCreateNode(N.VRegs.front());
      for (size_t V = 1; V < N.VRegs.size(); ++V) {
        Out.Nodes[NewId].VRegs.push_back(N.VRegs[V]);
        Out.mapReg(N.VRegs[V], NewId);
      }
      Out.Nodes[NewId].Global = N.Global;
      Out.Nodes[NewId].Color = N.Color;
      NodeOfColor[N.Color] = NewId;
    } else {
      unsigned Tgt = It->second;
      for (Reg R : N.VRegs) {
        Out.Nodes[Tgt].VRegs.push_back(R);
        Out.mapReg(R, Tgt);
      }
      Out.Nodes[Tgt].Global = Out.Nodes[Tgt].Global || N.Global;
    }
  }
  for (auto &N : Out.Nodes)
    std::sort(N.VRegs.begin(), N.VRegs.end());
  // Edges: colors interfere when any member nodes interfered.
  for (unsigned I = 0, E = static_cast<unsigned>(Nodes.size()); I != E; ++I) {
    if (!Nodes[I].Alive)
      continue;
    for (unsigned J : Adj[I]) {
      if (J < I)
        continue;
      unsigned A = NodeOfColor.at(Nodes[I].Color);
      unsigned B = NodeOfColor.at(Nodes[J].Color);
      allocCheck(A != B, AllocErrorKind::InvariantViolation,
                 "properly colored graphs cannot merge adjacent nodes");
      Out.addEdgeNodes(A, B);
    }
  }
  return Out;
}

std::string InterferenceGraph::str() const {
  std::ostringstream OS;
  for (unsigned I = 0, E = static_cast<unsigned>(Nodes.size()); I != E; ++I) {
    const Node &N = Nodes[I];
    if (!N.Alive)
      continue;
    OS << "n" << I << " {";
    for (size_t V = 0; V != N.VRegs.size(); ++V)
      OS << (V ? " " : "") << "%" << N.VRegs[V];
    OS << "}";
    if (N.Global)
      OS << " global";
    if (N.Color >= 0)
      OS << " color=" << N.Color;
    OS << " cost=" << N.SpillCost << " ->";
    std::vector<unsigned> Sorted = Adj[I];
    std::sort(Sorted.begin(), Sorted.end());
    for (unsigned A : Sorted)
      OS << " n" << A;
    OS << "\n";
  }
  return OS.str();
}
