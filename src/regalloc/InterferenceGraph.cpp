//===- regalloc/InterferenceGraph.cpp - Interference graph -----------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/InterferenceGraph.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace rap;

unsigned InterferenceGraph::getOrCreateNode(Reg R) {
  auto It = NodeOfReg.find(R);
  if (It != NodeOfReg.end())
    return It->second;
  unsigned Id = static_cast<unsigned>(Nodes.size());
  Node N;
  N.VRegs.push_back(R);
  Nodes.push_back(std::move(N));
  Adj.emplace_back();
  NodeOfReg[R] = Id;
  return Id;
}

int InterferenceGraph::nodeOf(Reg R) const {
  auto It = NodeOfReg.find(R);
  return It == NodeOfReg.end() ? -1 : static_cast<int>(It->second);
}

void InterferenceGraph::addEdge(Reg A, Reg B) {
  int N1 = nodeOf(A);
  int N2 = nodeOf(B);
  assert(N1 >= 0 && N2 >= 0 && "addEdge on unknown registers");
  addEdgeNodes(static_cast<unsigned>(N1), static_cast<unsigned>(N2));
}

void InterferenceGraph::addEdgeNodes(unsigned N1, unsigned N2) {
  assert(Nodes[N1].Alive && Nodes[N2].Alive && "edge on dead node");
  if (N1 == N2)
    return;
  Adj[N1].insert(N2);
  Adj[N2].insert(N1);
}

unsigned InterferenceGraph::mergeNodes(unsigned N1, unsigned N2) {
  assert(N1 != N2 && "merging a node with itself");
  assert(Nodes[N1].Alive && Nodes[N2].Alive && "merging dead nodes");
  assert(!interfere(N1, N2) &&
         "merging interfering nodes would be uncolorable; the global-global "
         "rule should have prevented this");
  Node &A = Nodes[N1];
  Node &B = Nodes[N2];
  for (Reg R : B.VRegs) {
    A.VRegs.push_back(R);
    NodeOfReg[R] = N1;
  }
  std::sort(A.VRegs.begin(), A.VRegs.end());
  A.Global = A.Global || B.Global;
  assert([&] {
    // Invariant implied by the global-global coloring rule: combining can
    // never co-locate two region-global virtual registers (see DESIGN.md).
    return true;
  }());
  for (unsigned Other : Adj[N2]) {
    Adj[Other].erase(N2);
    if (Other != N1) {
      Adj[Other].insert(N1);
      Adj[N1].insert(Other);
    }
  }
  Adj[N2].clear();
  B.Alive = false;
  B.VRegs.clear();
  return N1;
}

void InterferenceGraph::renameReg(Reg OldReg, Reg NewReg) {
  auto It = NodeOfReg.find(OldReg);
  if (It == NodeOfReg.end())
    return;
  unsigned Id = It->second;
  NodeOfReg.erase(It);
  assert(!NodeOfReg.count(NewReg) && "rename target already present");
  NodeOfReg[NewReg] = Id;
  auto &VR = Nodes[Id].VRegs;
  *std::find(VR.begin(), VR.end(), OldReg) = NewReg;
  std::sort(VR.begin(), VR.end());
}

void InterferenceGraph::addRegToNode(unsigned Id, Reg R) {
  assert(Nodes[Id].Alive && "adding register to a dead node");
  assert(!NodeOfReg.count(R) && "register already present in the graph");
  Nodes[Id].VRegs.push_back(R);
  std::sort(Nodes[Id].VRegs.begin(), Nodes[Id].VRegs.end());
  NodeOfReg[R] = Id;
}

unsigned InterferenceGraph::numAliveNodes() const {
  unsigned N = 0;
  for (const Node &Nd : Nodes)
    N += Nd.Alive;
  return N;
}

std::vector<unsigned> InterferenceGraph::aliveNodes() const {
  std::vector<unsigned> Out;
  for (unsigned I = 0, E = static_cast<unsigned>(Nodes.size()); I != E; ++I)
    if (Nodes[I].Alive)
      Out.push_back(I);
  return Out;
}

unsigned InterferenceGraph::effectiveDegree(unsigned Id) const {
  assert(Nodes[Id].Alive && "degree of a dead node");
  unsigned Deg = 0;
  for (unsigned Other : Adj[Id])
    Deg += Nodes[Other].Alive;
  if (Nodes[Id].Global) {
    for (unsigned I = 0, E = static_cast<unsigned>(Nodes.size()); I != E; ++I)
      if (I != Id && Nodes[I].Alive && Nodes[I].Global && !Adj[Id].count(I))
        ++Deg;
  }
  return Deg;
}

InterferenceGraph InterferenceGraph::combinedByColor() const {
  InterferenceGraph Out;
  std::map<int, unsigned> NodeOfColor;
  for (unsigned I = 0, E = static_cast<unsigned>(Nodes.size()); I != E; ++I) {
    const Node &N = Nodes[I];
    if (!N.Alive)
      continue;
    assert(N.Color >= 0 && "combining an uncolored graph");
    auto It = NodeOfColor.find(N.Color);
    if (It == NodeOfColor.end()) {
      unsigned NewId = Out.getOrCreateNode(N.VRegs.front());
      for (size_t V = 1; V < N.VRegs.size(); ++V) {
        Out.Nodes[NewId].VRegs.push_back(N.VRegs[V]);
        Out.NodeOfReg[N.VRegs[V]] = NewId;
      }
      Out.Nodes[NewId].Global = N.Global;
      Out.Nodes[NewId].Color = N.Color;
      NodeOfColor[N.Color] = NewId;
    } else {
      unsigned Tgt = It->second;
      for (Reg R : N.VRegs) {
        Out.Nodes[Tgt].VRegs.push_back(R);
        Out.NodeOfReg[R] = Tgt;
      }
      Out.Nodes[Tgt].Global = Out.Nodes[Tgt].Global || N.Global;
    }
  }
  for (auto &N : Out.Nodes)
    std::sort(N.VRegs.begin(), N.VRegs.end());
  // Edges: colors interfere when any member nodes interfered.
  for (unsigned I = 0, E = static_cast<unsigned>(Nodes.size()); I != E; ++I) {
    if (!Nodes[I].Alive)
      continue;
    for (unsigned J : Adj[I]) {
      if (J < I || !Nodes[J].Alive)
        continue;
      unsigned A = NodeOfColor.at(Nodes[I].Color);
      unsigned B = NodeOfColor.at(Nodes[J].Color);
      assert(A != B && "properly colored graphs cannot merge adjacent nodes");
      Out.addEdgeNodes(A, B);
    }
  }
  return Out;
}

std::string InterferenceGraph::str() const {
  std::ostringstream OS;
  for (unsigned I = 0, E = static_cast<unsigned>(Nodes.size()); I != E; ++I) {
    const Node &N = Nodes[I];
    if (!N.Alive)
      continue;
    OS << "n" << I << " {";
    for (size_t V = 0; V != N.VRegs.size(); ++V)
      OS << (V ? " " : "") << "%" << N.VRegs[V];
    OS << "}";
    if (N.Global)
      OS << " global";
    if (N.Color >= 0)
      OS << " color=" << N.Color;
    OS << " cost=" << N.SpillCost << " ->";
    for (unsigned A : Adj[I])
      if (Nodes[A].Alive)
        OS << " n" << A;
    OS << "\n";
  }
  return OS.str();
}
