//===- regalloc/Allocator.h - Public allocation entry points ----*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public register-allocation API. Two allocators are provided:
///
/// * GRA — the paper's baseline (§4): Chaitin's global graph coloring with
///   the Briggs optimistic enhancement, no coalescing, no rematerialization,
///   whole-procedure unweighted spill costs.
/// * RAP — the paper's contribution (§3): hierarchical allocation over the
///   PDG region tree (bottom-up region coloring with combine), spill-code
///   movement out of loops, and a peephole cleanup of redundant spill
///   loads/stores.
///
/// Both rewrite the function in place to use physical registers 0..k-1 and
/// delete copies whose operands received the same register.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_ALLOCATOR_H
#define RAP_REGALLOC_ALLOCATOR_H

#include "ir/IlocFunction.h"
#include "ir/IlocProgram.h"

#include <string>

namespace rap {

enum class AllocatorKind {
  None, ///< leave virtual registers (reference runs)
  Gra,
  Rap,
};

struct AllocOptions {
  unsigned K = 5; ///< number of physical registers (paper uses 3, 5, 7, 9)

  /// RAP phase 2 (spill-code movement out of loops). Ablation toggle.
  bool SpillMovement = true;

  /// RAP phase 3 (Figure 6 peephole). Ablation toggle.
  bool Peephole = true;

  /// Dataflow extension of phase 3 (cross-block redundant-reload and dead
  /// spill-store elimination; the paper's §5 future work). Ablation toggle.
  bool GlobalCleanup = true;

  /// Worker threads for allocateProgram. Functions are allocated
  /// independently; 0 or 1 means serial. Results are byte-identical to a
  /// serial run (stats aggregate in function order) regardless of the value.
  unsigned Threads = 1;

  /// Ablation: also run the Figure 6 peephole on GRA output (the paper does
  /// not; this isolates how much of RAP's win the cleanup alone provides).
  bool PeepholeForGra = false;

  /// Extension (paper §5 future work): conservative Briggs coalescing of
  /// copies, applied by whichever allocator runs. Off for Table 1, which
  /// reproduces the paper's no-coalescing setup.
  bool Coalesce = false;
};

/// Per-function allocation measurements.
struct AllocStats {
  unsigned GraphBuilds = 0;    ///< interference graphs constructed
  unsigned SpilledVRegs = 0;   ///< virtual registers sent to memory
  unsigned MaxGraphNodes = 0;  ///< largest interference graph (space claim)
  unsigned RegionsProcessed = 0;
  unsigned HoistedLoads = 0; ///< phase 2
  unsigned SunkStores = 0;   ///< phase 2
  unsigned PeepholeRemovedLoads = 0;
  unsigned PeepholeRemovedStores = 0;
  unsigned CleanupRemovedLoads = 0;  ///< dataflow extension
  unsigned CleanupRemovedStores = 0; ///< dataflow extension
  unsigned CopiesDeleted = 0; ///< mv rX, rX removed after assignment

  //===------------------------------------------------------------------===//
  // Cost instrumentation (excluded from determinism comparisons: wall time
  // varies run to run; see structuralEq).
  //===------------------------------------------------------------------===//
  double GraphBuildSeconds = 0;  ///< time in interference construction
  double LivenessSeconds = 0;    ///< time in liveness (re)computation
  size_t PeakGraphBytes = 0;     ///< largest adjacency footprint seen

  /// Field-by-field equality over the deterministic counters, ignoring the
  /// timing instrumentation. Used by the parallel-driver determinism check.
  bool structuralEq(const AllocStats &O) const {
    return GraphBuilds == O.GraphBuilds && SpilledVRegs == O.SpilledVRegs &&
           MaxGraphNodes == O.MaxGraphNodes &&
           RegionsProcessed == O.RegionsProcessed &&
           HoistedLoads == O.HoistedLoads && SunkStores == O.SunkStores &&
           PeepholeRemovedLoads == O.PeepholeRemovedLoads &&
           PeepholeRemovedStores == O.PeepholeRemovedStores &&
           CleanupRemovedLoads == O.CleanupRemovedLoads &&
           CleanupRemovedStores == O.CleanupRemovedStores &&
           CopiesDeleted == O.CopiesDeleted &&
           PeakGraphBytes == O.PeakGraphBytes;
  }

  void accumulate(const AllocStats &O) {
    GraphBuilds += O.GraphBuilds;
    SpilledVRegs += O.SpilledVRegs;
    MaxGraphNodes = MaxGraphNodes > O.MaxGraphNodes ? MaxGraphNodes
                                                    : O.MaxGraphNodes;
    RegionsProcessed += O.RegionsProcessed;
    HoistedLoads += O.HoistedLoads;
    SunkStores += O.SunkStores;
    PeepholeRemovedLoads += O.PeepholeRemovedLoads;
    PeepholeRemovedStores += O.PeepholeRemovedStores;
    CleanupRemovedLoads += O.CleanupRemovedLoads;
    CleanupRemovedStores += O.CleanupRemovedStores;
    CopiesDeleted += O.CopiesDeleted;
    GraphBuildSeconds += O.GraphBuildSeconds;
    LivenessSeconds += O.LivenessSeconds;
    PeakGraphBytes = PeakGraphBytes > O.PeakGraphBytes ? PeakGraphBytes
                                                       : O.PeakGraphBytes;
  }
};

/// Allocates registers for \p F with the baseline allocator. \p F must be
/// unallocated.
AllocStats allocateGra(IlocFunction &F, const AllocOptions &Options);

/// Allocates registers for \p F with RAP.
AllocStats allocateRap(IlocFunction &F, const AllocOptions &Options);

/// Allocates every function of \p Prog with \p Kind (no-op for None).
AllocStats allocateProgram(IlocProgram &Prog, AllocatorKind Kind,
                           const AllocOptions &Options);

/// Parses "gra"/"rap"/"none" (for tools).
AllocatorKind allocatorKindFromString(const std::string &Name);

} // namespace rap

#endif // RAP_REGALLOC_ALLOCATOR_H
