//===- regalloc/Allocator.h - Public allocation entry points ----*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public register-allocation API. Two allocators are provided:
///
/// * GRA — the paper's baseline (§4): Chaitin's global graph coloring with
///   the Briggs optimistic enhancement, no coalescing, no rematerialization,
///   whole-procedure unweighted spill costs.
/// * RAP — the paper's contribution (§3): hierarchical allocation over the
///   PDG region tree (bottom-up region coloring with combine), spill-code
///   movement out of loops, and a peephole cleanup of redundant spill
///   loads/stores.
///
/// Both rewrite the function in place to use physical registers 0..k-1 and
/// delete copies whose operands received the same register.
///
/// Failures (invariant violations, resource-guard breaches, verifier
/// rejections in checked mode, injected faults) surface as AllocError.
/// allocateProgramChecked isolates them per function: with
/// AllocOptions::FallbackOnError the failing function alone degrades to a
/// guaranteed-correct spill-everything allocation (see SpillEverything.h)
/// while every other function allocates normally.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_ALLOCATOR_H
#define RAP_REGALLOC_ALLOCATOR_H

#include "ir/IlocFunction.h"
#include "ir/IlocProgram.h"
#include "regalloc/AllocOutcome.h"
#include "regalloc/FaultInjection.h"
#include "support/Deadline.h"

#include <chrono>
#include <string>

namespace rap {

namespace telemetry {
class Telemetry;
class FunctionScope;
} // namespace telemetry

class ShardPool;

enum class AllocatorKind {
  None, ///< leave virtual registers (reference runs)
  Gra,
  Rap,
};

struct AllocOptions {
  unsigned K = 5; ///< number of physical registers (paper uses 3, 5, 7, 9)

  /// RAP phase 2 (spill-code movement out of loops). Ablation toggle.
  bool SpillMovement = true;

  /// RAP phase 3 (Figure 6 peephole). Ablation toggle.
  bool Peephole = true;

  /// Dataflow extension of phase 3 (cross-block redundant-reload and dead
  /// spill-store elimination; the paper's §5 future work). Ablation toggle.
  bool GlobalCleanup = true;

  /// Worker threads for allocateProgram. Functions are allocated
  /// independently; 0 or 1 means serial. Results are byte-identical to a
  /// serial run (stats aggregate in function order) regardless of the value.
  unsigned Threads = 1;

  /// Worker threads for RAP's intra-function region-parallel phase 1: the
  /// speculative no-spill pass runs independent sibling regions of the
  /// series-parallel decomposition (pdg/SeriesParallel.h) concurrently and
  /// commits results in the sequential postorder, so output, stats and
  /// telemetry are byte-identical to a serial run at any value. 0 or 1
  /// means the classic sequential walk. Ignored by GRA. Like Threads, this
  /// never steers allocation decisions and is excluded from allocation-cache
  /// fingerprints.
  unsigned RegionThreads = 1;

  /// Pool carrying the region tasks when RegionThreads > 1. Owned by the
  /// caller (allocateProgramChecked shares one pool across all function
  /// workers); null makes each function run spin up an ephemeral pool.
  ShardPool *RegionPool = nullptr;

  /// Minimum subtree weight (instructions) for a region subtree to get its
  /// own pool task; lighter subtrees run inline in the task of their
  /// closest task-owning ancestor. Purely a scheduling knob — any value
  /// produces identical output.
  unsigned RegionGrain = 64;

  /// Ablation: also run the Figure 6 peephole on GRA output (the paper does
  /// not; this isolates how much of RAP's win the cleanup alone provides).
  bool PeepholeForGra = false;

  /// Extension (paper §5 future work): conservative Briggs coalescing of
  /// copies, applied by whichever allocator runs. Off for Table 1, which
  /// reproduces the paper's no-coalescing setup.
  bool Coalesce = false;

  //===------------------------------------------------------------------===//
  // Robustness controls (see DESIGN.md "Robustness architecture").
  //===------------------------------------------------------------------===//

  /// Spill/color round budget: per region for RAP, per function for GRA.
  /// Exceeding it raises AllocError(NonConvergence) instead of looping.
  unsigned MaxSpillRounds = 100;

  /// Cap on one interference graph's adjacency footprint in bytes
  /// (InterferenceGraph::memoryBytes); 0 = unlimited. Exceeding it raises
  /// AllocError(ResourceLimit) instead of growing without bound.
  size_t MaxGraphBytes = 0;

  /// Per-function wall-clock budget in seconds; 0 = unlimited. Checked at
  /// round boundaries; raises AllocError(ResourceLimit). Note: wall-clock
  /// triggering is inherently machine-dependent, so runs relying on
  /// byte-identical determinism should leave this off or pair it with
  /// FallbackOnError (the fallback itself is deterministic).
  double MaxAllocSeconds = 0;

  /// Cooperative cancellation for server requests: checked at the same
  /// round boundaries as MaxAllocSeconds. An expired deadline raises
  /// AllocError(DeadlineExceeded), an explicit cancel (graceful drain)
  /// raises AllocError(Cancelled); both degrade cleanly through the
  /// spill-everything fallback. Null (the default, and the rapcc path)
  /// costs one pointer test per check. Excluded from cache fingerprints:
  /// like Threads, it never steers allocation decisions, only whether the
  /// run finishes.
  const CancelToken *Cancel = nullptr;

  /// Checked mode: run the independent AssignmentVerifier on the coloring
  /// before the physical rewrite; violations raise
  /// AllocError(VerifierReject). The spill-everything fallback self-checks
  /// the same way when this is set.
  bool VerifyAssignments = false;

  /// Per-function graceful degradation in allocateProgram /
  /// allocateProgramChecked: on AllocError the function's pristine body is
  /// restored and allocated with the guaranteed-correct spill-everything
  /// allocator; other functions are unaffected. When off, the error
  /// propagates (deterministically, lowest function index first).
  bool FallbackOnError = false;

  /// Deterministic fault injection for testing the degradation path. When
  /// empty, the process-wide RAP_FAULT_INJECT plan (if any) applies. The
  /// fallback allocator always runs fault-free.
  FaultPlan Faults;

  //===------------------------------------------------------------------===//
  // Telemetry (see support/Stats.h and DESIGN.md §9). Null pointers mean
  // disabled: every instrumentation point inlines to a pointer test and
  // the hot paths allocate nothing.
  //===------------------------------------------------------------------===//

  /// Program-level registry. allocateProgramChecked gives each function a
  /// FunctionScope sharing this registry's epoch and commits it keyed by
  /// function index, so the aggregate (and trace content modulo
  /// timestamps/lane ids) is identical at any thread count.
  telemetry::Telemetry *Telem = nullptr;

  /// Per-function sink consumed by allocateGra/allocateRap (phase slices,
  /// per-region event log, named counters). Set internally by the program
  /// driver; set it directly only when calling the per-function entry
  /// points yourself.
  telemetry::FunctionScope *Scope = nullptr;
};

/// Round-boundary guard shared by GRA and RAP: one call enforcing both the
/// per-function wall-clock budget (MaxAllocSeconds) and the cooperative
/// cancel token (per-request deadline / graceful drain). Throws AllocError
/// on breach; the throw leaves the function at an IR-consistent boundary so
/// the spill-everything fallback applies.
inline void checkAllocBudget(const AllocOptions &Options,
                             std::chrono::steady_clock::time_point Start,
                             const std::string &Function, int Region = -1) {
  if (Options.Cancel && Options.Cancel->stopRequested()) {
    bool DeadlineHit = Options.Cancel->expired();
    throwAllocError(DeadlineHit ? AllocErrorKind::DeadlineExceeded
                                : AllocErrorKind::Cancelled,
                    DeadlineHit ? "request deadline exceeded"
                                : "request cancelled (server drain)",
                    Function, Region);
  }
  if (Options.MaxAllocSeconds > 0 &&
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
              .count() > Options.MaxAllocSeconds)
    throwAllocError(AllocErrorKind::ResourceLimit,
                    "wall-clock budget of " +
                        std::to_string(Options.MaxAllocSeconds) +
                        "s exceeded",
                    Function, Region);
}

/// Allocates registers for \p F with the baseline allocator. \p F must be
/// unallocated. Throws AllocError on failure.
AllocStats allocateGra(IlocFunction &F, const AllocOptions &Options);

/// Allocates registers for \p F with RAP. Throws AllocError on failure.
AllocStats allocateRap(IlocFunction &F, const AllocOptions &Options);

/// Allocates every function of \p Prog with \p Kind (no-op for None),
/// returning per-function outcomes plus stats aggregated in function order.
/// Worker-thread failures are captured per function slot; with
/// Options.FallbackOnError the affected functions degrade in place,
/// otherwise the lowest-index failure is rethrown after the pool joins.
ProgramAllocResult allocateProgramChecked(IlocProgram &Prog,
                                          AllocatorKind Kind,
                                          const AllocOptions &Options);

/// Back-compat wrapper around allocateProgramChecked returning only the
/// aggregated stats.
AllocStats allocateProgram(IlocProgram &Prog, AllocatorKind Kind,
                           const AllocOptions &Options);

/// Parses "gra"/"rap"/"none" (for tools).
AllocatorKind allocatorKindFromString(const std::string &Name);

} // namespace rap

#endif // RAP_REGALLOC_ALLOCATOR_H
