//===- regalloc/Rap.h - Hierarchical PDG allocator --------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAP, the paper's contribution: register allocation over the PDG region
/// hierarchy. Phase 1 (§3.1) walks the region tree bottom-up; each region
/// builds an interference graph from its own code (add_region_conflicts)
/// plus the combined graphs of its subregions (add_subregion_conflicts,
/// Figure 4), computes spill costs (Figure 5), colors with the Briggs
/// scheme, spills locally when needed, and finally combines same-colored
/// nodes so the parent sees at most k summary nodes. Register assignment
/// happens at the entry region. Phase 2 (§3.2) moves spill code out of
/// loops; phase 3 (§3.3) is the Figure 6 peephole.
///
/// The class is exposed (rather than only the allocateRap() entry point) so
/// unit tests can drive individual stages against the paper's worked
/// examples (Figures 3-5).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_RAP_H
#define RAP_REGALLOC_RAP_H

#include "regalloc/AllocSupport.h"
#include "regalloc/Allocator.h"
#include "regalloc/InterferenceGraph.h"

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

namespace rap {

class RapAllocator {
public:
  RapAllocator(IlocFunction &F, const AllocOptions &Options);

  /// Runs all three phases and rewrites \p F to physical registers.
  AllocStats run();

  //===------------------------------------------------------------------===//
  // Stage entry points for unit tests.
  //===------------------------------------------------------------------===//

  /// Rebuilds linearization, liveness and reference maps after code edits.
  void refresh();

  /// Paper §3.1.1: add_region_conflicts + add_subregion_conflicts for
  /// region \p V. Subregions must already be allocated (their combined
  /// graphs saved).
  InterferenceGraph buildRegionGraph(PdgNode *V);

  /// Paper Figure 5: attaches a spill cost to every node of \p G.
  void calcSpillCosts(PdgNode *V, InterferenceGraph &G);

  /// Paper Figure 2: the full allocation loop for one region (recursing
  /// into subregions first). Returns the region's colored graph.
  InterferenceGraph allocRegion(PdgNode *V);

  const std::map<const PdgNode *, InterferenceGraph> &savedGraphs() const {
    return SavedGraphs;
  }
  const CodeInfo &codeInfo() const { return *CI; }
  const RefInfo &refInfo() const { return *Refs; }
  const AllocStats &stats() const { return Stats; }

  /// True if some reference of \p R lies outside \p V's subtree ("global to
  /// the region", paper §3.1).
  bool isGlobalTo(Reg R, const PdgNode *V) const;

private:
  /// Shared body of buildRegionGraph: \p SubGraph resolves a subregion's
  /// combined interference graph. The sequential walk resolves from
  /// SavedGraphs; the region-parallel phase resolves from its per-task
  /// speculative slots.
  InterferenceGraph buildRegionGraphImpl(
      PdgNode *V,
      const std::function<const InterferenceGraph *(const PdgNode *)>
          &SubGraph);

  /// The speculative region-parallel phase 1 (Options.RegionThreads > 1):
  /// runs every region's first build/cost/color round as pool tasks over
  /// the series-parallel decomposition, children before parents, with all
  /// shared allocator state read-only. If every region colors without a
  /// spill candidate, results are committed in the sequential postorder
  /// (bit-identical to the classic walk) and \p Final receives the root's
  /// colored graph. Any spill candidate, error or injected fault discards
  /// the whole speculation — including partially consumed fault-injection
  /// countdowns — and returns false so the caller reruns the classic
  /// sequential walk, which then reproduces the sequential outcome exactly
  /// (same spills, same stats, same error if any).
  bool runRegionParallelPhase1(InterferenceGraph &Final);

  void spillQueueRun(std::vector<std::pair<Reg, PdgNode *>> Queue);

  /// Applies the paper's §3.1.4 spill-code insertion for \p V in region
  /// \p R: loads/stores with fresh atomic ranges at the parent level,
  /// rename + boundary loads/stores in referencing subregions, and the
  /// recursive outside-the-region fixup (stores after outside definitions
  /// that reach the region, loads before outside uses that its definitions
  /// reach). When the rewrite would be a pure rename (the register's uses
  /// are confined to subregions with no boundary traffic), defers to the
  /// owning subregions via \p Deferred instead. Returns true if code
  /// changed.
  bool trySpill(Reg V, PdgNode *R,
                std::vector<std::pair<Reg, PdgNode *>> &Deferred);

  /// Interrupts \p V's live range at every reference in the function (the
  /// fixpoint of the paper's outside-the-region recursion). Used for
  /// registers that are live across a region but referenced elsewhere — the
  /// paper's "first candidates for spilling" — whose pressure cannot be
  /// relieved by local rewrites.
  bool spillEverywhere(Reg V);

  void renameInSubtree(PdgNode *S, Reg OldReg, Reg NewReg);
  int slotOf(Reg V);

  /// Raises AllocError(ResourceLimit) once the wall-clock budget
  /// (Options.MaxAllocSeconds) is spent. Checked at round boundaries.
  void checkTimeBudget(int Region);

  IlocFunction &F;
  AllocOptions Options;
  AllocStats Stats;

  /// This run's fault-injection state (disarmed unless a plan names us).
  FaultInjector Injector;
  std::chrono::steady_clock::time_point StartTime;

  std::unique_ptr<CodeInfo> CI;
  std::unique_ptr<RefInfo> Refs;

  /// Combined interference graphs of completed regions. Non-loop entries
  /// are erased when their parent completes; loop graphs persist for spill
  /// movement (paper §3.1.5).
  std::map<const PdgNode *, InterferenceGraph> SavedGraphs;

  /// Registers already spilled per region (Figure 5's "spilled in V").
  std::map<const PdgNode *, std::set<Reg>> SpilledIn;

  /// Regions whose allocRegion loop is currently on the call stack; dirty
  /// re-allocation never targets these.
  std::set<const PdgNode *> InProgress;

  std::map<Reg, int> SlotOf;
  std::set<Reg> GloballySpilled;
  std::set<Reg> ParamStoreDone;

  /// Registers whose references were edited since the last refresh(). Spill
  /// rewrites touch only the spilled register and fresh no-spill
  /// temporaries, so the CodeInfo/RefInfo snapshot remains valid for every
  /// other register; the spill queue refreshes lazily, only when the entry
  /// being processed names an edited register.
  std::set<Reg> EditedSinceRefresh;

  /// The function-entry stores that park spilled parameters. They must read
  /// the incoming register itself, so later spill rewrites of the same
  /// parameter skip them.
  std::map<Reg, Instr *> ParamStores;

  /// Atomic live ranges created by spill rewrites. Spilling them again can
  /// never help, so they carry infinite cost (above the paper's 999999 for
  /// merely-unprofitable nodes) and trySpill skips them.
  std::set<Reg> NoSpill;

  /// Spill rewrites split a register into renamed per-subregion pieces and
  /// atomic temporaries. All pieces map back to the original register here;
  /// the paper treats them as *the same virtual register*, so region graphs
  /// merge their nodes ("since these nodes represent the same virtual
  /// register, they are combined in the parent's interference graph",
  /// §3.1.1) — which is also what lets phase 2 move their loads as one.
  std::map<Reg, Reg> OriginOf;

  /// The original register \p R descends from (identity when unsplit).
  Reg originOf(Reg R) const {
    auto It = OriginOf.find(R);
    return It == OriginOf.end() ? R : It->second;
  }

  /// Origins whose pieces must stay in separate nodes: merging them
  /// produced a node that could neither color nor spill (no single color
  /// suits every piece), so the unit-allocation preference is abandoned for
  /// them.
  std::set<Reg> NoMergeOrigins;
  unsigned TotalSpillActions = 0;
};

} // namespace rap

#endif // RAP_REGALLOC_RAP_H
