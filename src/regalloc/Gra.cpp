//===- regalloc/Gra.cpp - Baseline Chaitin/Briggs allocator -----------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GRA, the paper's comparison allocator (§4): Chaitin's global graph
/// coloring over the whole procedure with the Briggs optimistic-coloring
/// enhancement, no coalescing, no rematerialization. Spill cost of a node is
/// the number of its uses and definitions in the entire procedure divided by
/// its degree. Spilling inserts a load before every use and a store after
/// every definition with fresh atomic live ranges, then the graph is rebuilt
/// until it colors.
///
//===----------------------------------------------------------------------===//

#include "regalloc/Allocator.h"

#include "regalloc/AllocSupport.h"
#include "regalloc/Coalesce.h"
#include "regalloc/Coloring.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/Peephole.h"
#include "regalloc/PhysicalRewrite.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <thread>

using namespace rap;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

constexpr double InfiniteCost = 1e18;
constexpr unsigned MaxSpillRounds = 100;

class GraAllocator {
public:
  GraAllocator(IlocFunction &F, const AllocOptions &Options)
      : F(F), Options(Options) {}

  AllocStats run() {
    std::unique_ptr<CodeInfo> CI;
    for (unsigned Round = 0; Round != MaxSpillRounds; ++Round) {
      // Warm-start liveness from the previous round's solution.
      CI = std::make_unique<CodeInfo>(F, CI.get());
      Stats.LivenessSeconds += CI->LivenessSeconds;
      RefInfo Refs(CI->Code, F.numVRegs());
      auto BuildStart = std::chrono::steady_clock::now();
      InterferenceGraph G = buildGraph(*CI, Refs);
      Stats.GraphBuildSeconds += secondsSince(BuildStart);
      if (Options.Coalesce)
        coalesceConservatively(G, CI->Code.Instrs, Options.K);
      ++Stats.GraphBuilds;
      Stats.MaxGraphNodes =
          std::max(Stats.MaxGraphNodes, G.numAliveNodes());
      Stats.PeakGraphBytes = std::max(Stats.PeakGraphBytes, G.memoryBytes());
      setSpillCosts(G, Refs);
      ColorResult CR = colorGraph(G, Options.K);
      if (CR.fullyColored()) {
        Stats.CopiesDeleted = rewriteToPhysical(F, G, Options.K);
        if (Options.PeepholeForGra) {
          PeepholeResult PR = peepholeSpillCleanup(F);
          Stats.PeepholeRemovedLoads = PR.RemovedLoads;
          Stats.PeepholeRemovedStores = PR.RemovedStores;
        }
        return Stats;
      }
      spillRound(G, CR, *CI, Refs);
    }
    std::fprintf(stderr, "GRA: spill loop did not converge for '%s'\n",
                 F.name().c_str());
    std::abort();
  }

private:
  /// Chaitin-style construction: at every definition point the defined
  /// register interferes with everything live after the instruction (minus
  /// the source of a copy), plus pairwise interference among the registers
  /// live at function entry (the parameters).
  InterferenceGraph buildGraph(const CodeInfo &CI, const RefInfo &Refs) {
    InterferenceGraph G;
    for (Reg R = 0; R != F.numVRegs(); ++R)
      if (Refs.isReferenced(R))
        G.getOrCreateNode(R);

    for (unsigned P = 0, E = static_cast<unsigned>(CI.Code.Instrs.size());
         P != E; ++P) {
      const Instr *I = CI.Code.Instrs[P];
      if (!I->hasDef())
        continue;
      Reg D = I->Dst;
      CI.Live.liveAfter(P).forEach([&](unsigned L) {
        if (L == D)
          return;
        if (I->Op == Opcode::Mv && L == I->Src[0])
          return; // copy source may share the register
        if (G.hasReg(L))
          G.addEdge(D, static_cast<Reg>(L));
      });
    }

    // Values live on entry (parameters) coexist without a defining
    // instruction in the body.
    std::vector<unsigned> EntryLive = CI.Live.liveBefore(0).toVector();
    for (size_t A = 0; A != EntryLive.size(); ++A)
      for (size_t B = A + 1; B != EntryLive.size(); ++B)
        if (G.hasReg(EntryLive[A]) && G.hasReg(EntryLive[B]))
          G.addEdge(EntryLive[A], EntryLive[B]);
    return G;
  }

  void setSpillCosts(InterferenceGraph &G, const RefInfo &Refs) {
    for (unsigned N : G.aliveNodes()) {
      auto &Node = G.node(N);
      // Coalescing can merge several registers into one node; the node's
      // cost is the sum over members, and any unspillable member makes the
      // whole node unspillable.
      double Cost = 0;
      bool Atomic = false;
      for (Reg R : Node.VRegs) {
        Atomic |= NoSpill.count(R) != 0;
        Cost += static_cast<double>(Refs.usePositions(R).size() +
                                    Refs.defPositions(R).size());
      }
      if (Atomic) {
        Node.SpillCost = InfiniteCost;
        continue;
      }
      unsigned Deg = G.effectiveDegree(N);
      Node.SpillCost = Cost / (Deg == 0 ? 1 : Deg);
    }
  }

  void spillRound(const InterferenceGraph &G, const ColorResult &CR,
                  const CodeInfo &CI, const RefInfo &Refs) {
    CodeEditor Editor(F);
    bool Progress = false;
    for (unsigned N : CR.SpillList) {
      for (Reg V : G.node(N).VRegs) {
        if (NoSpill.count(V))
          continue; // an atomic spill range cannot be spilled again
        Progress = true;
        spillEverywhere(V, CI, Refs, Editor);
      }
    }
    if (!Progress) {
      std::fprintf(stderr,
                   "GRA: only unspillable nodes left in '%s' with k=%u\n",
                   F.name().c_str(), Options.K);
      std::abort();
    }
  }

  void spillEverywhere(Reg V, const CodeInfo &CI, const RefInfo &Refs,
                       CodeEditor &Editor) {
    ++Stats.SpilledVRegs;
    NoSpill.insert(V);
    int Slot = slotOf(V);

    // A parameter's value arrives in a register; park it in the slot at
    // function entry.
    if (V < F.numParams() && CI.Live.liveBefore(0).test(V)) {
      Instr *St = F.createInstr(Opcode::StSpill);
      St->Slot = Slot;
      St->Src = {V};
      Editor.insertAtRegionEntry(F.root(), St);
    }

    // Load before every use.
    for (unsigned P : Refs.usePositions(V)) {
      Instr *User = CI.Code.Instrs[P];
      Reg T = F.newVReg();
      NoSpill.insert(T);
      Instr *Ld = F.createInstr(Opcode::LdSpill);
      Ld->Dst = T;
      Ld->Slot = Slot;
      Editor.insertBefore(User, Ld);
      for (Reg &R : User->Src)
        if (R == V)
          R = T;
    }

    // Store after every definition.
    for (unsigned P : Refs.defPositions(V)) {
      Instr *Def = CI.Code.Instrs[P];
      Reg D = F.newVReg();
      NoSpill.insert(D);
      Def->Dst = D;
      Instr *St = F.createInstr(Opcode::StSpill);
      St->Slot = Slot;
      St->Src = {D};
      Editor.insertAfter(Def, St);
    }
  }

  int slotOf(Reg V) {
    auto It = SlotOf.find(V);
    if (It != SlotOf.end())
      return It->second;
    int Slot = F.newSpillSlot();
    SlotOf[V] = Slot;
    return Slot;
  }

  IlocFunction &F;
  const AllocOptions &Options;
  AllocStats Stats;
  std::set<Reg> NoSpill;
  std::map<Reg, int> SlotOf;
};

} // namespace

AllocStats rap::allocateGra(IlocFunction &F, const AllocOptions &Options) {
  assert(!F.isAllocated() && "function already allocated");
  assert(Options.K >= 3 && "need at least 3 registers for a load/store ISA");
  return GraAllocator(F, Options).run();
}

AllocStats rap::allocateProgram(IlocProgram &Prog, AllocatorKind Kind,
                                const AllocOptions &Options) {
  AllocStats Total;
  if (Kind == AllocatorKind::None)
    return Total;
  auto &Funcs = Prog.functions();
  unsigned N = static_cast<unsigned>(Funcs.size());
  auto allocOne = [&](unsigned I) {
    IlocFunction &F = *Funcs[I];
    return Kind == AllocatorKind::Gra ? allocateGra(F, Options)
                                      : allocateRap(F, Options);
  };

  unsigned Threads = std::min(Options.Threads, N);
  if (Threads <= 1) {
    for (unsigned I = 0; I != N; ++I)
      Total.accumulate(allocOne(I));
    return Total;
  }

  // Functions share no mutable state, so each is allocated independently by
  // a small worker pool. Per-function stats land in a slot indexed by
  // function position and are folded in function order afterwards, so the
  // aggregate is identical to a serial run regardless of scheduling.
  std::vector<AllocStats> Per(N);
  std::atomic<unsigned> Next{0};
  auto Worker = [&] {
    for (unsigned I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
         I = Next.fetch_add(1, std::memory_order_relaxed))
      Per[I] = allocOne(I);
  };
  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back(Worker);
  for (auto &T : Pool)
    T.join();
  for (const AllocStats &S : Per)
    Total.accumulate(S);
  return Total;
}

AllocatorKind rap::allocatorKindFromString(const std::string &Name) {
  if (Name == "gra")
    return AllocatorKind::Gra;
  if (Name == "rap")
    return AllocatorKind::Rap;
  return AllocatorKind::None;
}
