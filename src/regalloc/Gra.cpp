//===- regalloc/Gra.cpp - Baseline Chaitin/Briggs allocator -----------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GRA, the paper's comparison allocator (§4): Chaitin's global graph
/// coloring over the whole procedure with the Briggs optimistic-coloring
/// enhancement, no coalescing, no rematerialization. Spill cost of a node is
/// the number of its uses and definitions in the entire procedure divided by
/// its degree. Spilling inserts a load before every use and a store after
/// every definition with fresh atomic live ranges, then the graph is rebuilt
/// until it colors.
///
//===----------------------------------------------------------------------===//

#include "regalloc/Allocator.h"

#include "ir/Clone.h"
#include "regalloc/AllocSupport.h"
#include "regalloc/AssignmentVerifier.h"
#include "regalloc/Coalesce.h"
#include "regalloc/Coloring.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/Peephole.h"
#include "regalloc/PhysicalRewrite.h"
#include "regalloc/SpillEverything.h"
#include "support/ShardPool.h"
#include "support/Stats.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <set>
#include <thread>

using namespace rap;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

constexpr double InfiniteCost = 1e18;

class GraAllocator {
public:
  GraAllocator(IlocFunction &F, const AllocOptions &Options)
      : F(F), Options(Options),
        Injector(Options.Faults.empty() ? envFaultPlan() : Options.Faults,
                 F.name()),
        StartTime(std::chrono::steady_clock::now()) {}

  AllocStats run() {
    telemetry::FunctionScope *TS = Options.Scope;
    std::unique_ptr<CodeInfo> CI;
    for (unsigned Round = 0; Round != Options.MaxSpillRounds; ++Round) {
      // Unified guard: wall-clock budget + request cancel token (deadline /
      // drain), checked once per spill/color round.
      checkAllocBudget(Options, StartTime, F.name());
      telemetry::ScopedPhase RoundPhase(TS, "gra_round");
      // Warm-start liveness from the previous round's solution.
      CI = std::make_unique<CodeInfo>(F, CI.get());
      Stats.LivenessSeconds += CI->LivenessSeconds;
      RefInfo Refs(CI->Code, F.numVRegs());
      auto BuildStart = std::chrono::steady_clock::now();
      InterferenceGraph G = buildGraph(*CI, Refs);
      Stats.GraphBuildSeconds += secondsSince(BuildStart);
      if (Options.Coalesce)
        coalesceConservatively(G, CI->Code.Instrs, Options.K);
      ++Stats.GraphBuilds;
      Stats.MaxGraphNodes =
          std::max(Stats.MaxGraphNodes, G.numAliveNodes());
      Stats.PeakGraphBytes = std::max(Stats.PeakGraphBytes, G.memoryBytes());
      if (Options.MaxGraphBytes && G.memoryBytes() > Options.MaxGraphBytes)
        throwAllocError(AllocErrorKind::ResourceLimit,
                        "interference graph needs " +
                            std::to_string(G.memoryBytes()) +
                            " bytes (limit " +
                            std::to_string(Options.MaxGraphBytes) + ")",
                        F.name());
      setSpillCosts(G, Refs);
      Injector.hit(FaultSite::Coloring);
      ColorResult CR = colorGraph(G, Options.K, TS);
      if (TS) {
        RoundPhase.arg("round", Round);
        RoundPhase.arg("nodes", G.numAliveNodes());
        RoundPhase.arg("spill_candidates", CR.SpillList.size());
        TS->add("gra.rounds");
        TS->maxOf("graph.max_nodes", G.numAliveNodes());
      }
      if (CR.fullyColored()) {
        if (Options.VerifyAssignments) {
          std::vector<AssignmentViolation> Violations =
              verifyAssignment(F, G);
          if (!Violations.empty())
            throwAllocError(AllocErrorKind::VerifierReject,
                            std::to_string(Violations.size()) +
                                " assignment violation(s); first: " +
                                Violations[0].Text,
                            F.name());
        }
        Injector.hit(FaultSite::PhysicalRewrite);
        RoundPhase.finish();
        Stats.CopiesDeleted = rewriteToPhysical(F, G, Options.K, TS);
        if (Options.PeepholeForGra) {
          PeepholeResult PR = peepholeSpillCleanup(F, TS);
          Stats.PeepholeRemovedLoads = PR.RemovedLoads;
          Stats.PeepholeRemovedStores = PR.RemovedStores;
          Stats.PeepholeLoadsToCopies = PR.LoadsToCopies;
        }
        return Stats;
      }
      ++Stats.SpillRounds;
      spillRound(G, CR, *CI, Refs);
    }
    throwAllocError(AllocErrorKind::NonConvergence,
                    "spill loop did not converge within " +
                        std::to_string(Options.MaxSpillRounds) + " rounds",
                    F.name());
  }

private:
  /// Chaitin-style construction: at every definition point the defined
  /// register interferes with everything live after the instruction (minus
  /// the source of a copy), plus pairwise interference among the registers
  /// live at function entry (the parameters).
  InterferenceGraph buildGraph(const CodeInfo &CI, const RefInfo &Refs) {
    InterferenceGraph G;
    for (Reg R = 0; R != F.numVRegs(); ++R)
      if (Refs.isReferenced(R))
        G.getOrCreateNode(R);

    for (unsigned P = 0, E = static_cast<unsigned>(CI.Code.Instrs.size());
         P != E; ++P) {
      const Instr *I = CI.Code.Instrs[P];
      if (!I->hasDef())
        continue;
      Reg D = I->Dst;
      CI.Live.liveAfter(P).forEach([&](unsigned L) {
        if (L == D)
          return;
        if (I->Op == Opcode::Mv && L == I->Src[0])
          return; // copy source may share the register
        if (G.hasReg(L))
          G.addEdge(D, static_cast<Reg>(L));
      });
    }

    // Values live on entry (parameters) coexist without a defining
    // instruction in the body.
    std::vector<unsigned> EntryLive = CI.Live.liveBefore(0).toVector();
    for (size_t A = 0; A != EntryLive.size(); ++A)
      for (size_t B = A + 1; B != EntryLive.size(); ++B)
        if (G.hasReg(EntryLive[A]) && G.hasReg(EntryLive[B]))
          G.addEdge(EntryLive[A], EntryLive[B]);
    return G;
  }

  void setSpillCosts(InterferenceGraph &G, const RefInfo &Refs) {
    for (unsigned N : G.aliveNodes()) {
      auto &Node = G.node(N);
      // Coalescing can merge several registers into one node; the node's
      // cost is the sum over members, and any unspillable member makes the
      // whole node unspillable.
      double Cost = 0;
      bool Atomic = false;
      for (Reg R : Node.VRegs) {
        Atomic |= NoSpill.count(R) != 0;
        Cost += static_cast<double>(Refs.usePositions(R).size() +
                                    Refs.defPositions(R).size());
      }
      if (Atomic) {
        Node.SpillCost = InfiniteCost;
        continue;
      }
      unsigned Deg = G.effectiveDegree(N);
      Node.SpillCost = Cost / (Deg == 0 ? 1 : Deg);
    }
  }

  void spillRound(const InterferenceGraph &G, const ColorResult &CR,
                  const CodeInfo &CI, const RefInfo &Refs) {
    CodeEditor Editor(F);
    bool Progress = false;
    for (unsigned N : CR.SpillList) {
      for (Reg V : G.node(N).VRegs) {
        if (NoSpill.count(V))
          continue; // an atomic spill range cannot be spilled again
        Progress = true;
        spillEverywhere(V, CI, Refs, Editor);
      }
    }
    if (!Progress)
      throwAllocError(AllocErrorKind::Unallocatable,
                      "only unspillable nodes left (k=" +
                          std::to_string(Options.K) + " too small)",
                      F.name());
  }

  void spillEverywhere(Reg V, const CodeInfo &CI, const RefInfo &Refs,
                       CodeEditor &Editor) {
    Injector.hit(FaultSite::SpillInsert);
    ++Stats.SpilledVRegs;
    NoSpill.insert(V);
    int Slot = slotOf(V);

    // A parameter's value arrives in a register; park it in the slot at
    // function entry.
    if (V < F.numParams() && CI.Live.liveBefore(0).test(V)) {
      Instr *St = F.createInstr(Opcode::StSpill);
      St->Slot = Slot;
      St->Src = {V};
      Editor.insertAtRegionEntry(F.root(), St);
      ++Stats.SpillStoresInserted;
    }

    // Load before every use.
    for (unsigned P : Refs.usePositions(V)) {
      Instr *User = CI.Code.Instrs[P];
      Reg T = F.newVReg();
      NoSpill.insert(T);
      Instr *Ld = F.createInstr(Opcode::LdSpill);
      Ld->Dst = T;
      Ld->Slot = Slot;
      Editor.insertBefore(User, Ld);
      ++Stats.SpillLoadsInserted;
      for (Reg &R : User->Src)
        if (R == V)
          R = T;
    }

    // Store after every definition.
    for (unsigned P : Refs.defPositions(V)) {
      Instr *Def = CI.Code.Instrs[P];
      Reg D = F.newVReg();
      NoSpill.insert(D);
      Def->Dst = D;
      Instr *St = F.createInstr(Opcode::StSpill);
      St->Slot = Slot;
      St->Src = {D};
      Editor.insertAfter(Def, St);
      ++Stats.SpillStoresInserted;
    }
  }

  int slotOf(Reg V) {
    auto It = SlotOf.find(V);
    if (It != SlotOf.end())
      return It->second;
    int Slot = F.newSpillSlot();
    SlotOf[V] = Slot;
    return Slot;
  }

  IlocFunction &F;
  const AllocOptions &Options;
  AllocStats Stats;
  FaultInjector Injector;
  std::chrono::steady_clock::time_point StartTime;
  std::set<Reg> NoSpill;
  std::map<Reg, int> SlotOf;
};

} // namespace

AllocStats rap::allocateGra(IlocFunction &F, const AllocOptions &Options) {
  try {
    allocCheck(!F.isAllocated(), AllocErrorKind::InvariantViolation,
               "function already allocated");
    allocCheck(Options.K >= 3, AllocErrorKind::Unallocatable,
               "need at least 3 registers for a load/store ISA");
    return GraAllocator(F, Options).run();
  } catch (AllocError &E) {
    E.setFunction(F.name()); // fill in throw sites below the allocator
    throw;
  }
}

namespace {

/// One function's fault-isolated allocation. With FallbackOnError, any
/// AllocError (or std::exception) from the primary allocator discards the
/// half-edited body, restores a pristine clone taken up front, and allocates
/// it with the spill-everything fallback — which has no injection sites, so
/// an armed fault plan cannot re-fire in the degradation path. Without
/// FallbackOnError the error propagates to the driver.
AllocOutcome allocateOne(IlocProgram &Prog, unsigned I, AllocatorKind Kind,
                         const AllocOptions &Options, unsigned Worker) {
  IlocFunction *F = Prog.functions()[I].get();
  AllocOutcome Out;
  Out.Function = F->name();

  // With a registry attached, this function records into its own scope
  // (lock-free: one writer) and commits keyed by function index below, so
  // the registry's aggregate does not depend on thread scheduling.
  telemetry::FunctionScope Scope(Options.Telem ? Options.Telem->epoch()
                                               : telemetry::Clock::now());
  AllocOptions Opts = Options;
  if (Options.Telem)
    Opts.Scope = &Scope;
  struct Committer {
    const AllocOptions &Options;
    telemetry::FunctionScope &Scope;
    unsigned Index, Worker;
    std::string Name;
    ~Committer() {
      if (Options.Telem)
        Options.Telem->commit(Index, std::move(Name), Worker,
                              std::move(Scope));
    }
  } Commit{Options, Scope, I, Worker, Out.Function};

  std::unique_ptr<IlocFunction> Backup;
  if (Options.FallbackOnError)
    Backup = cloneFunction(*F);

  try {
    telemetry::ScopedPhase Phase(Opts.Scope, "allocate_function");
    Out.Stats = Kind == AllocatorKind::Gra ? allocateGra(*F, Opts)
                                           : allocateRap(*F, Opts);
    return Out;
  } catch (const AllocError &E) {
    if (!Options.FallbackOnError)
      throw;
    Out.ErrorKind = E.kind();
    Out.Error = E.what();
  } catch (const std::exception &E) {
    if (!Options.FallbackOnError)
      throw;
    Out.ErrorKind = AllocErrorKind::Internal;
    Out.Error = std::string(allocErrorKindName(AllocErrorKind::Internal)) +
                " in '" + Out.Function + "': " + E.what();
  }

  Out.Status = AllocStatus::Fallback;
  if (Opts.Scope)
    Opts.Scope->add("alloc.fallbacks");
  F = Prog.replaceFunction(I, std::move(Backup));
  telemetry::ScopedPhase Phase(Opts.Scope, "fallback_spill_everything");
  Out.Stats = allocateSpillEverything(*F, Opts);
  return Out;
}

} // namespace

ProgramAllocResult rap::allocateProgramChecked(IlocProgram &Prog,
                                               AllocatorKind Kind,
                                               const AllocOptions &Options) {
  ProgramAllocResult Res;
  auto &Funcs = Prog.functions();
  unsigned N = static_cast<unsigned>(Funcs.size());
  Res.Outcomes.resize(N);
  for (unsigned I = 0; I != N; ++I)
    Res.Outcomes[I].Function = Funcs[I]->name();
  if (Kind == AllocatorKind::None)
    return Res;

  // RAP's region-parallel phase shares one task pool across every function
  // worker (spinning one up per function would swamp 10k-function modules
  // with thread churn). The pool only schedules; each function's run owns
  // its slots and waits on its own TaskGroup, so sharing is free of
  // cross-function state.
  AllocOptions ProgOptions = Options;
  std::unique_ptr<ShardPool> RegionPool;
  if (Kind == AllocatorKind::Rap && Options.RegionThreads > 1 &&
      !Options.RegionPool) {
    WatchdogConfig Quiet;
    Quiet.Factor = 0;
    RegionPool = std::make_unique<ShardPool>(Options.RegionThreads, Quiet);
    ProgOptions.RegionPool = RegionPool.get();
  }

  // Worker-side exceptions (strict mode, or a failing fallback) are parked
  // per function slot; after the pool joins, the lowest-index one is
  // rethrown, so the surfaced error does not depend on thread scheduling.
  std::vector<std::exception_ptr> Errors(N);
  auto One = [&](unsigned I, unsigned Worker) {
    try {
      Res.Outcomes[I] = allocateOne(Prog, I, Kind, ProgOptions, Worker);
    } catch (...) {
      Res.Outcomes[I].Status = AllocStatus::Failed;
      Errors[I] = std::current_exception();
    }
  };

  unsigned Threads = std::min(Options.Threads, N);
  if (Threads <= 1) {
    for (unsigned I = 0; I != N; ++I)
      One(I, 0);
  } else {
    // Functions share no mutable state, so each is allocated independently
    // by a small worker pool. Per-function outcomes land in a slot indexed
    // by function position and are folded in function order afterwards, so
    // the aggregate is identical to a serial run regardless of scheduling.
    std::atomic<unsigned> Next{0};
    auto Worker = [&](unsigned Lane) {
      for (unsigned I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
           I = Next.fetch_add(1, std::memory_order_relaxed))
        One(I, Lane);
    };
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back(Worker, T);
    for (auto &T : Pool)
      T.join();
  }

  for (unsigned I = 0; I != N; ++I)
    if (Errors[I])
      std::rethrow_exception(Errors[I]);
  for (const AllocOutcome &O : Res.Outcomes)
    Res.Total.accumulate(O.Stats);
  return Res;
}

AllocStats rap::allocateProgram(IlocProgram &Prog, AllocatorKind Kind,
                                const AllocOptions &Options) {
  return allocateProgramChecked(Prog, Kind, Options).Total;
}

AllocatorKind rap::allocatorKindFromString(const std::string &Name) {
  if (Name == "gra")
    return AllocatorKind::Gra;
  if (Name == "rap")
    return AllocatorKind::Rap;
  return AllocatorKind::None;
}
