//===- regalloc/FaultInjection.cpp - Deterministic fault injection ----------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/FaultInjection.h"

#include "support/Env.h"

#include <cstdio>
#include <stdexcept>

using namespace rap;

const char *rap::faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::Coloring:
    return "color";
  case FaultSite::SpillInsert:
    return "spill";
  case FaultSite::PhysicalRewrite:
    return "rewrite";
  case FaultSite::RegionAlloc:
    return "region";
  case FaultSite::ProtocolParse:
    return "parse";
  case FaultSite::CacheInsert:
    return "cache-insert";
  case FaultSite::WorkerStall:
    return "stall";
  case FaultSite::MidShutdown:
    return "shutdown";
  case FaultSite::JournalWrite:
    return "journal-write";
  case FaultSite::SnapshotCompact:
    return "snapshot-compact";
  }
  return "unknown";
}

static FaultSite parseSite(const std::string &Name) {
  if (Name == "color")
    return FaultSite::Coloring;
  if (Name == "spill")
    return FaultSite::SpillInsert;
  if (Name == "rewrite")
    return FaultSite::PhysicalRewrite;
  if (Name == "region")
    return FaultSite::RegionAlloc;
  if (Name == "parse")
    return FaultSite::ProtocolParse;
  if (Name == "cache-insert")
    return FaultSite::CacheInsert;
  if (Name == "stall")
    return FaultSite::WorkerStall;
  if (Name == "shutdown")
    return FaultSite::MidShutdown;
  if (Name == "journal-write")
    return FaultSite::JournalWrite;
  if (Name == "snapshot-compact")
    return FaultSite::SnapshotCompact;
  throw std::invalid_argument(
      "unknown fault site '" + Name +
      "' (expected color|spill|rewrite|region|parse|cache-insert|stall|"
      "shutdown|journal-write|snapshot-compact)");
}

FaultPlan FaultPlan::fromString(const std::string &Spec) {
  FaultPlan Plan;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Entry = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;
    if (Entry.empty())
      continue;

    size_t Colon = Entry.find(':');
    if (Colon == std::string::npos)
      throw std::invalid_argument("fault entry '" + Entry +
                                  "' lacks ':<n>' countdown");
    Arm A;
    A.Site = parseSite(Entry.substr(0, Colon));
    std::string Rest = Entry.substr(Colon + 1);
    size_t At = Rest.find('@');
    if (At != std::string::npos) {
      A.Function = Rest.substr(At + 1);
      Rest = Rest.substr(0, At);
    }
    size_t Used = 0;
    int N;
    try {
      N = std::stoi(Rest, &Used);
    } catch (const std::exception &) {
      throw std::invalid_argument("fault entry '" + Entry +
                                  "' has a non-numeric countdown");
    }
    if (Used != Rest.size() || N < 1)
      throw std::invalid_argument("fault entry '" + Entry +
                                  "' needs a countdown >= 1");
    A.Nth = static_cast<unsigned>(N);
    Plan.Arms.push_back(std::move(A));
  }
  return Plan;
}

FaultInjector::FaultInjector(const FaultPlan &Plan, std::string Function)
    : Function(std::move(Function)) {
  for (const FaultPlan::Arm &A : Plan.Arms) {
    if (!A.Function.empty() && A.Function != this->Function)
      continue;
    Counters.push_back(Counter{A.Site, A.Nth});
  }
}

void FaultInjector::hitSlow(FaultSite S) {
  if (firesSlow(S))
    throwAllocError(AllocErrorKind::InjectedFault,
                    std::string("fault injected at site '") +
                        faultSiteName(S) + "'",
                    Function);
}

bool FaultInjector::firesSlow(FaultSite S) {
  bool Fired = false;
  for (Counter &C : Counters) {
    if (C.Site != S)
      continue;
    if (--C.Remaining == 0)
      Fired = true;
  }
  return Fired;
}

const FaultPlan &rap::envFaultPlan() {
  static const FaultPlan Plan = [] {
    const std::optional<std::string> &Spec = env::get("RAP_FAULT_INJECT");
    if (!Spec)
      return FaultPlan();
    try {
      return FaultPlan::fromString(*Spec);
    } catch (const std::invalid_argument &E) {
      std::fprintf(stderr, "RAP_FAULT_INJECT ignored: %s\n", E.what());
      return FaultPlan();
    }
  }();
  return Plan;
}
