//===- regalloc/SpillEverything.h - Guaranteed-correct fallback -*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The degradation target of the fault-isolated allocation driver: a
/// spill-everywhere allocator in the sense of Bouchez/Darte/Rastello ("On
/// the Complexity of Spill Everywhere under SSA Form") — every original
/// virtual register lives in a stack slot; each instruction loads its
/// operands into per-instruction atomic temporaries and stores its result
/// back. The produced code is slow but its correctness is locally checkable
/// (no live range crosses an instruction boundary except parameter arrivals,
/// which get distinct registers), so this allocator succeeds on *any*
/// unallocated function with k >= 3 and needs no interference graph, no
/// iteration, and no spill heuristics.
///
/// The assignment is expressed as an InterferenceGraph coloring and pushed
/// through the same rewriteToPhysical as GRA/RAP, so checked mode
/// (AllocOptions::VerifyAssignments) can vet the fallback with the
/// independent AssignmentVerifier too.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_SPILLEVERYTHING_H
#define RAP_REGALLOC_SPILLEVERYTHING_H

#include "regalloc/Allocator.h"

namespace rap {

/// Allocates \p F by sending every virtual register to memory. \p F must be
/// unallocated. Honors Options.K and Options.VerifyAssignments; ignores the
/// phase toggles and fault plan (the fallback always runs fault-free).
/// Throws AllocError only on API misuse (allocated input, k < 3, more
/// distinct instruction operands or parameters than k).
AllocStats allocateSpillEverything(IlocFunction &F,
                                   const AllocOptions &Options);

} // namespace rap

#endif // RAP_REGALLOC_SPILLEVERYTHING_H
