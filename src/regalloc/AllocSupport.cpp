//===- regalloc/AllocSupport.cpp - Shared allocator utilities --------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/AllocSupport.h"

#include "regalloc/AllocError.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace rap;

Liveness CodeInfo::timedLiveness(CodeInfo &CI, unsigned NumVRegs,
                                 Liveness *Prev) {
  auto Start = std::chrono::steady_clock::now();
  Liveness L(CI.Code, CI.Graph, NumVRegs, Prev);
  CI.LivenessSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return L;
}

RefInfo::RefInfo(const LinearCode &Code, unsigned NumVRegs) {
  unsigned E = static_cast<unsigned>(Code.Instrs.size());

  // Counting sort into CSR form: count per register, prefix-sum, then place
  // each position. The forward walk keeps positions ascending per register,
  // and an instruction using a register twice contributes one use position.
  UseStart.assign(NumVRegs + 1, 0);
  DefStart.assign(NumVRegs + 1, 0);
  auto FirstUseInInstr = [](const Instr *I, size_t J) {
    for (size_t K = 0; K != J; ++K)
      if (I->Src[K] == I->Src[J])
        return false;
    return true;
  };
  for (unsigned P = 0; P != E; ++P) {
    const Instr *I = Code.Instrs[P];
    for (size_t J = 0; J != I->Src.size(); ++J)
      if (FirstUseInInstr(I, J))
        ++UseStart[I->Src[J] + 1];
    if (I->hasDef())
      ++DefStart[I->Dst + 1];
  }
  for (unsigned R = 0; R != NumVRegs; ++R) {
    UseStart[R + 1] += UseStart[R];
    DefStart[R + 1] += DefStart[R];
  }
  UsePos.resize(UseStart[NumVRegs]);
  DefPos.resize(DefStart[NumVRegs]);
  std::vector<unsigned> UseNext(UseStart.begin(), UseStart.end() - 1);
  std::vector<unsigned> DefNext(DefStart.begin(), DefStart.end() - 1);
  for (unsigned P = 0; P != E; ++P) {
    const Instr *I = Code.Instrs[P];
    for (size_t J = 0; J != I->Src.size(); ++J)
      if (FirstUseInInstr(I, J))
        UsePos[UseNext[I->Src[J]]++] = P;
    if (I->hasDef())
      DefPos[DefNext[I->Dst]++] = P;
  }
}

static bool anyWithin(PosSpan Sorted, unsigned Begin, unsigned End) {
  auto It = std::lower_bound(Sorted.begin(), Sorted.end(), Begin);
  return It != Sorted.end() && *It < End;
}

static bool allWithin(PosSpan Sorted, unsigned Begin, unsigned End) {
  for (unsigned P : Sorted)
    if (P < Begin || P >= End)
      return false;
  return true;
}

bool RefInfo::allRefsWithin(Reg R, unsigned Begin, unsigned End) const {
  return allWithin(usePositions(R), Begin, End) &&
         allWithin(defPositions(R), Begin, End);
}

bool RefInfo::usedWithin(Reg R, unsigned Begin, unsigned End) const {
  return anyWithin(usePositions(R), Begin, End);
}

bool RefInfo::definedWithin(Reg R, unsigned Begin, unsigned End) const {
  return anyWithin(defPositions(R), Begin, End);
}

//===----------------------------------------------------------------------===//
// CodeEditor
//===----------------------------------------------------------------------===//

void CodeEditor::refresh() {
  Owners.assign(F.numInstrIds(), Owner{});
  F.root()->forEachNode([&](const PdgNode *N) {
    if (!N->isStatement() && !N->isPredicate())
      return;
    auto *MutN = const_cast<PdgNode *>(N);
    for (Instr *I : N->Code)
      Owners[I->Id] = Owner{MutN, false};
    if (N->isPredicate() && N->Branch)
      Owners[N->Branch->Id] = Owner{MutN, true};
  });
}

CodeEditor::Owner CodeEditor::ownerOf(Instr *I) const {
  allocCheck(I->Id < Owners.size() && Owners[I->Id].N,
             AllocErrorKind::InvariantViolation,
             "anchor instruction not found in region tree");
  return Owners[I->Id];
}

void CodeEditor::setOwner(Instr *I, Owner O) {
  // Fresh spill instructions get ids past the refresh-time arena size.
  if (I->Id >= Owners.size())
    Owners.resize(I->Id + 1, Owner{});
  Owners[I->Id] = O;
}

void CodeEditor::insertBefore(Instr *Anchor, Instr *NewI) {
  Owner O = ownerOf(Anchor);
  if (O.IsBranch) {
    // The branch consumes the end of the predicate's condition code.
    O.N->Code.push_back(NewI);
  } else {
    auto It = std::find(O.N->Code.begin(), O.N->Code.end(), Anchor);
    allocCheck(It != O.N->Code.end(), AllocErrorKind::InvariantViolation,
               "owner map out of date");
    O.N->Code.insert(It, NewI);
  }
  setOwner(NewI, Owner{O.N, false});
}

void CodeEditor::insertAfter(Instr *Anchor, Instr *NewI) {
  Owner O = ownerOf(Anchor);
  allocCheck(!O.IsBranch, AllocErrorKind::InvariantViolation,
             "cannot insert after a branch");
  auto It = std::find(O.N->Code.begin(), O.N->Code.end(), Anchor);
  allocCheck(It != O.N->Code.end(), AllocErrorKind::InvariantViolation,
             "owner map out of date");
  O.N->Code.insert(It + 1, NewI);
  setOwner(NewI, Owner{O.N, false});
}

void CodeEditor::insertAtRegionEntry(PdgNode *V, Instr *NewI) {
  allocCheck(V->isRegion(), AllocErrorKind::InvariantViolation,
             "spill node insertion needs a region");
  PdgNode *S = F.createNode(PdgNodeKind::Statement);
  S->Parent = V;
  S->Code.push_back(NewI);
  V->Children.insert(V->Children.begin(), S);
  setOwner(NewI, Owner{S, false});
}

void CodeEditor::insertAtRegionExit(PdgNode *V, Instr *NewI) {
  allocCheck(V->isRegion(), AllocErrorKind::InvariantViolation,
             "spill node insertion needs a region");
  PdgNode *S = F.createNode(PdgNodeKind::Statement);
  S->Parent = V;
  S->Code.push_back(NewI);
  V->Children.push_back(S);
  setOwner(NewI, Owner{S, false});
}
