//===- regalloc/AllocSupport.cpp - Shared allocator utilities --------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/AllocSupport.h"

#include <algorithm>
#include <cassert>

using namespace rap;

RefInfo::RefInfo(const LinearCode &Code, unsigned NumVRegs)
    : Uses(NumVRegs), Defs(NumVRegs) {
  for (unsigned P = 0, E = static_cast<unsigned>(Code.Instrs.size()); P != E;
       ++P) {
    const Instr *I = Code.Instrs[P];
    for (Reg R : I->Src)
      Uses[R].push_back(P);
    if (I->hasDef())
      Defs[I->Dst].push_back(P);
  }
  for (auto &V : Uses)
    V.erase(std::unique(V.begin(), V.end()), V.end());
}

static bool anyWithin(const std::vector<unsigned> &Sorted, unsigned Begin,
                      unsigned End) {
  auto It = std::lower_bound(Sorted.begin(), Sorted.end(), Begin);
  return It != Sorted.end() && *It < End;
}

static bool allWithin(const std::vector<unsigned> &Sorted, unsigned Begin,
                      unsigned End) {
  for (unsigned P : Sorted)
    if (P < Begin || P >= End)
      return false;
  return true;
}

bool RefInfo::allRefsWithin(Reg R, unsigned Begin, unsigned End) const {
  return allWithin(Uses[R], Begin, End) && allWithin(Defs[R], Begin, End);
}

bool RefInfo::usedWithin(Reg R, unsigned Begin, unsigned End) const {
  return anyWithin(Uses[R], Begin, End);
}

bool RefInfo::definedWithin(Reg R, unsigned Begin, unsigned End) const {
  return anyWithin(Defs[R], Begin, End);
}

//===----------------------------------------------------------------------===//
// CodeEditor
//===----------------------------------------------------------------------===//

void CodeEditor::refresh() {
  Owners.clear();
  F.root()->forEachNode([&](const PdgNode *N) {
    if (!N->isStatement() && !N->isPredicate())
      return;
    auto *MutN = const_cast<PdgNode *>(N);
    for (Instr *I : N->Code)
      Owners[I] = Owner{MutN, false};
    if (N->isPredicate() && N->Branch)
      Owners[N->Branch] = Owner{MutN, true};
  });
}

CodeEditor::Owner CodeEditor::ownerOf(Instr *I) const {
  auto It = Owners.find(I);
  assert(It != Owners.end() && "anchor instruction not found in region tree");
  return It->second;
}

void CodeEditor::insertBefore(Instr *Anchor, Instr *NewI) {
  Owner O = ownerOf(Anchor);
  if (O.IsBranch) {
    // The branch consumes the end of the predicate's condition code.
    O.N->Code.push_back(NewI);
  } else {
    auto It = std::find(O.N->Code.begin(), O.N->Code.end(), Anchor);
    assert(It != O.N->Code.end() && "owner map out of date");
    O.N->Code.insert(It, NewI);
  }
  Owners[NewI] = Owner{O.N, false};
}

void CodeEditor::insertAfter(Instr *Anchor, Instr *NewI) {
  Owner O = ownerOf(Anchor);
  assert(!O.IsBranch && "cannot insert after a branch");
  auto It = std::find(O.N->Code.begin(), O.N->Code.end(), Anchor);
  assert(It != O.N->Code.end() && "owner map out of date");
  O.N->Code.insert(It + 1, NewI);
  Owners[NewI] = Owner{O.N, false};
}

void CodeEditor::insertAtRegionEntry(PdgNode *V, Instr *NewI) {
  assert(V->isRegion() && "spill node insertion needs a region");
  PdgNode *S = F.createNode(PdgNodeKind::Statement);
  S->Parent = V;
  S->Code.push_back(NewI);
  V->Children.insert(V->Children.begin(), S);
  Owners[NewI] = Owner{S, false};
}

void CodeEditor::insertAtRegionExit(PdgNode *V, Instr *NewI) {
  assert(V->isRegion() && "spill node insertion needs a region");
  PdgNode *S = F.createNode(PdgNodeKind::Statement);
  S->Parent = V;
  S->Code.push_back(NewI);
  V->Children.push_back(S);
  Owners[NewI] = Owner{S, false};
}
