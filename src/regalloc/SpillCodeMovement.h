//===- regalloc/SpillCodeMovement.h - RAP phase 2 ---------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAP phase 2 (paper §3.2): a top-down pass that moves spill loads above
/// loops and spill stores below them. A slot's traffic may leave a loop
/// region when (a) all accesses inside the loop are through a single virtual
/// register, (b) that register was not combined with another one in the
/// loop's saved interference graph — the paper's condition, meaning the
/// register's color belongs to it alone inside the loop — and (c) no other
/// virtual register referenced in the loop received the same final color
/// (which guards the hierarchy against a parent-level first-fit merge of two
/// non-interfering loop nodes). Hoisted code lands in fresh spill nodes
/// immediately before the loop head and immediately after the loop exit,
/// the paper's "special spill nodes".
///
/// Outermost loops are processed first so spill code leaves an entire nest
/// when possible.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_REGALLOC_SPILLCODEMOVEMENT_H
#define RAP_REGALLOC_SPILLCODEMOVEMENT_H

#include "ir/IlocFunction.h"
#include "regalloc/InterferenceGraph.h"

#include <map>

namespace rap {

namespace telemetry {
class FunctionScope;
} // namespace telemetry

struct MovementResult {
  unsigned HoistedLoads = 0;  ///< pre-loop loads inserted
  unsigned SunkStores = 0;    ///< post-loop stores inserted
  unsigned RemovedLoads = 0;  ///< in-loop loads deleted
  unsigned RemovedStores = 0; ///< in-loop stores deleted

  unsigned removedOps() const { return RemovedLoads + RemovedStores; }
};

/// Runs the movement pass over \p F (still in virtual registers, colored by
/// \p Final). \p SavedGraphs must contain the combined interference graph
/// of every loop region. With a telemetry \p Scope, the pass is timed as a
/// "movement" slice and records movement.* counters.
MovementResult moveSpillCodeOutOfLoops(
    IlocFunction &F, const InterferenceGraph &Final,
    const std::map<const PdgNode *, InterferenceGraph> &SavedGraphs,
    telemetry::FunctionScope *Scope = nullptr);

} // namespace rap

#endif // RAP_REGALLOC_SPILLCODEMOVEMENT_H
