//===- support/BitVector.h - Dense dynamic bitset ---------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, dynamically sized bitset used for dataflow sets (liveness,
/// reaching definitions) where elements are small integer ids such as
/// virtual-register or instruction numbers.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SUPPORT_BITVECTOR_H
#define RAP_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rap {

/// A fixed-universe bitset over ids [0, size()).
///
/// All binary operations require both operands to have the same universe
/// size; this is asserted rather than resized silently so that dataflow code
/// cannot accidentally mix sets from different functions.
class BitVector {
public:
  BitVector() = default;

  /// Creates a set over the universe [0, NumBits), initially empty.
  explicit BitVector(unsigned NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  unsigned size() const { return NumBits; }

  /// Extends the universe to [0, NewNumBits), keeping existing bits. The
  /// new elements start absent. No-op when the universe is already at least
  /// that large.
  void growTo(unsigned NewNumBits) {
    if (NewNumBits <= NumBits)
      return;
    NumBits = NewNumBits;
    Words.resize((NumBits + 63) / 64, 0);
  }

  /// Re-shapes this set to an empty set over [0, NewNumBits), reusing the
  /// existing word storage when it is large enough. Lets dataflow code
  /// recycle per-position sets across recomputations instead of
  /// reallocating them.
  void resetUniverse(unsigned NewNumBits) {
    NumBits = NewNumBits;
    Words.assign((NumBits + 63) / 64, 0);
  }

  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "BitVector index out of range");
    return (Words[Idx / 64] >> (Idx % 64)) & 1;
  }

  void set(unsigned Idx) {
    assert(Idx < NumBits && "BitVector index out of range");
    Words[Idx / 64] |= uint64_t(1) << (Idx % 64);
  }

  void reset(unsigned Idx) {
    assert(Idx < NumBits && "BitVector index out of range");
    Words[Idx / 64] &= ~(uint64_t(1) << (Idx % 64));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Returns true if no bit is set.
  bool empty() const {
    for (uint64_t W : Words)
      if (W != 0)
        return false;
    return true;
  }

  /// Returns the number of set bits.
  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += static_cast<unsigned>(__builtin_popcountll(W));
    return N;
  }

  /// Set union; returns true if this set changed.
  bool unionWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "universe size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Set intersection; returns true if this set changed.
  bool intersectWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "universe size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Set difference (this \ Other); returns true if this set changed.
  bool subtract(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "universe size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= ~Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Accumulates the symmetric difference of \p A and \p B into this set
  /// (this |= A ^ B). \p B may come from a smaller universe (its missing
  /// elements count as absent) — incremental liveness diffs new block sets
  /// against a previous solution whose register universe was smaller. Used
  /// to collect the registers whose block-level use/def sets changed
  /// between two liveness computations.
  void unionWithXorOf(const BitVector &A, const BitVector &B) {
    assert(NumBits == A.NumBits && A.NumBits >= B.NumBits &&
           "universe size mismatch");
    size_t Shared = B.Words.size();
    for (size_t I = 0; I != Shared; ++I)
      Words[I] |= A.Words[I] ^ B.Words[I];
    for (size_t I = Shared, E = Words.size(); I != E; ++I)
      Words[I] |= A.Words[I];
  }

  /// Returns true if this set and \p Other share at least one element.
  bool intersects(const BitVector &Other) const {
    assert(NumBits == Other.NumBits && "universe size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & Other.Words[I])
        return true;
    return false;
  }

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }
  bool operator!=(const BitVector &Other) const { return !(*this == Other); }

  /// Calls \p Fn(idx) for every set bit, in increasing order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t W = Words[I];
      while (W != 0) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(static_cast<unsigned>(I * 64 + Bit));
        W &= W - 1;
      }
    }
  }

  /// Collects the set bits into a vector, in increasing order.
  std::vector<unsigned> toVector() const {
    std::vector<unsigned> Out;
    Out.reserve(count());
    forEach([&](unsigned Idx) { Out.push_back(Idx); });
    return Out;
  }

private:
  unsigned NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace rap

#endif // RAP_SUPPORT_BITVECTOR_H
