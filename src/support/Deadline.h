//===- support/Deadline.h - Deadlines and cooperative cancel ----*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-only serving layer's time substrate: an absolute monotonic
/// Deadline and a CancelToken that combines it with an explicit cooperative
/// cancellation flag. One token is created per server request (armed from
/// the protocol's `deadline_ms`) and threaded — by const pointer — through
/// CompileService, the ShardPool tasks, and the allocators' round-boundary
/// guard checks, unifying the per-request deadline with the pre-existing
/// AllocOptions::MaxAllocSeconds wall-clock guard: both surface as
/// AllocError and both leave the function recoverable via the
/// spill-everything fallback.
///
/// Tokens chain: a request token may name a parent (the server's drain-kill
/// token), so one cancel() at the server flips every in-flight request at
/// its next check. Checks are wait-free — one relaxed atomic load plus, when
/// a deadline is armed, one steady_clock read — cheap enough for allocator
/// round boundaries.
///
/// Cancellation is strictly cooperative: nothing is preempted. Code that
/// ignores its token is the ShardPool watchdog's department.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SUPPORT_DEADLINE_H
#define RAP_SUPPORT_DEADLINE_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rap {

/// An absolute point on the monotonic clock, or "never" (default). Copyable
/// and cheap; expiry is a pure function of the clock, so once expired() is
/// true it stays true.
class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default; ///< unarmed: never expires

  static Deadline afterMs(uint64_t Ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(Ms));
  }
  static Deadline afterSeconds(double Seconds) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(Seconds)));
  }
  static Deadline at(Clock::time_point TP) { return Deadline(TP); }

  bool armed() const { return Armed; }
  bool expired() const { return Armed && Clock::now() > At; }

  /// Seconds until expiry (negative once past); +inf-ish when unarmed.
  double remainingSeconds() const {
    if (!Armed)
      return 1e18;
    return std::chrono::duration<double>(At - Clock::now()).count();
  }

  Clock::time_point when() const { return At; }

private:
  explicit Deadline(Clock::time_point TP) : At(TP), Armed(true) {}

  Clock::time_point At{};
  bool Armed = false;
};

/// A cooperative stop signal: explicit cancel() (sticky), an optional
/// Deadline, and an optional parent token (checked transitively). Shared by
/// address; the creator owns the storage and must outlive every checker —
/// the server guarantees this with its request barrier (a request's tasks
/// all complete before its ServiceResult, and therefore its token, is
/// destroyed).
class CancelToken {
public:
  CancelToken() = default;
  explicit CancelToken(Deadline D, const CancelToken *Parent = nullptr)
      : D(D), Parent(Parent) {}

  /// Sticky; safe from any thread, including a signal-adjacent drain
  /// watcher. (Not async-signal-safe itself — real handlers flip a
  /// sig_atomic_t and a watcher thread calls this.)
  void cancel() { Cancelled.store(true, std::memory_order_release); }

  /// Explicit cancellation, own or inherited.
  bool cancelled() const {
    if (Cancelled.load(std::memory_order_acquire))
      return true;
    return Parent && Parent->cancelled();
  }

  /// Deadline expiry, own or inherited (a parent's deadline bounds its
  /// children).
  bool expired() const {
    if (D.expired())
      return true;
    return Parent && Parent->expired();
  }

  /// The one check hot paths make at round boundaries.
  bool stopRequested() const { return cancelled() || expired(); }

  const Deadline &deadline() const { return D; }

  /// Stable machine-readable reason, aligned with the protocol's response
  /// kinds. Deadline expiry wins over explicit cancel: a request that ran
  /// out of its own budget reports "deadline-exceeded" even if a drain
  /// cancel also arrived. Empty string when no stop was requested.
  const char *reason() const {
    if (expired())
      return "deadline-exceeded";
    if (cancelled())
      return "cancelled";
    return "";
  }

private:
  std::atomic<bool> Cancelled{false};
  Deadline D;
  const CancelToken *Parent = nullptr;
};

} // namespace rap

#endif // RAP_SUPPORT_DEADLINE_H
