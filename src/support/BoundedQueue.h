//===- support/BoundedQueue.h - Bounded MPMC queue --------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small bounded multi-producer/multi-consumer queue for the compile
/// server. Two admission disciplines:
///
///   * tryPush — the backpressure path: a full queue rejects immediately
///     (the caller turns the rejection into an "overloaded, retry-after"
///     protocol response instead of buffering without bound).
///   * push — the cooperative path used inside the process where blocking
///     is acceptable (bench harnesses feeding a known-finite stream).
///
/// close() wakes every waiter; pop() then drains what remains and returns
/// false once the queue is both closed and empty. Depth is tracked with a
/// high-water mark so the server can export QueueDepthMax telemetry.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SUPPORT_BOUNDEDQUEUE_H
#define RAP_SUPPORT_BOUNDEDQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace rap {

template <typename T> class BoundedQueue {
public:
  explicit BoundedQueue(size_t Capacity) : Capacity(Capacity ? Capacity : 1) {}

  /// Non-blocking admission: false when the queue is full or closed.
  bool tryPush(T Item) {
    {
      std::lock_guard<std::mutex> Lock(M);
      if (Closed || Q.size() >= Capacity)
        return false;
      Q.push_back(std::move(Item));
      if (Q.size() > DepthMax)
        DepthMax = Q.size();
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocking admission: waits for space; false if the queue closed first.
  bool push(T Item) {
    {
      std::unique_lock<std::mutex> Lock(M);
      NotFull.wait(Lock, [&] { return Closed || Q.size() < Capacity; });
      if (Closed)
        return false;
      Q.push_back(std::move(Item));
      if (Q.size() > DepthMax)
        DepthMax = Q.size();
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed *and* drained.
  bool pop(T &Out) {
    std::unique_lock<std::mutex> Lock(M);
    NotEmpty.wait(Lock, [&] { return Closed || !Q.empty(); });
    if (Q.empty())
      return false; // closed and drained
    Out = std::move(Q.front());
    Q.pop_front();
    Lock.unlock();
    NotFull.notify_one();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Closed = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> Lock(M);
    return Q.size();
  }
  /// Largest depth ever observed (monotone; survives drains).
  size_t depthMax() const {
    std::lock_guard<std::mutex> Lock(M);
    return DepthMax;
  }
  size_t capacity() const { return Capacity; }

private:
  const size_t Capacity;
  mutable std::mutex M;
  std::condition_variable NotEmpty, NotFull;
  std::deque<T> Q;
  size_t DepthMax = 0;
  bool Closed = false;
};

} // namespace rap

#endif // RAP_SUPPORT_BOUNDEDQUEUE_H
