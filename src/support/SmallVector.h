//===- support/SmallVector.h - Inline-storage vector ------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with N elements of inline storage, spilling to the heap only
/// beyond that. Instr::Src is the motivating user: almost every ILOC
/// instruction has 0-2 operands (only calls go wider), so a std::vector
/// there means one heap allocation per instruction created — lowering and
/// the allocators' spill-rewrite loops create millions. With inline
/// storage those paths stop touching the global heap entirely.
///
/// Deliberately minimal: trivially-copyable element types only, and just
/// the API the IR uses (range-for, indexing, size/empty, push_back,
/// initializer-list and vector assignment, std-algorithm iterators).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SUPPORT_SMALLVECTOR_H
#define RAP_SUPPORT_SMALLVECTOR_H

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace rap {

template <typename T, unsigned N> class SmallVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "SmallVector is for plain value types");

public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> IL) { assign(IL.begin(), IL.end()); }
  SmallVector(const SmallVector &O) { assign(O.begin(), O.end()); }
  SmallVector(SmallVector &&O) noexcept { stealFrom(O); }

  ~SmallVector() {
    if (!isInline())
      delete[] Ptr;
  }

  SmallVector &operator=(const SmallVector &O) {
    if (this != &O)
      assign(O.begin(), O.end());
    return *this;
  }
  SmallVector &operator=(SmallVector &&O) noexcept {
    if (this != &O) {
      if (!isInline())
        delete[] Ptr;
      stealFrom(O);
    }
    return *this;
  }
  SmallVector &operator=(std::initializer_list<T> IL) {
    assign(IL.begin(), IL.end());
    return *this;
  }
  /// Interop with call sites that build operand lists in a std::vector.
  SmallVector &operator=(const std::vector<T> &V) {
    assign(V.data(), V.data() + V.size());
    return *this;
  }

  iterator begin() { return Ptr; }
  iterator end() { return Ptr + Count; }
  const_iterator begin() const { return Ptr; }
  const_iterator end() const { return Ptr + Count; }

  T &operator[](size_t I) { return Ptr[I]; }
  const T &operator[](size_t I) const { return Ptr[I]; }
  T &front() { return Ptr[0]; }
  const T &front() const { return Ptr[0]; }
  T &back() { return Ptr[Count - 1]; }
  const T &back() const { return Ptr[Count - 1]; }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  size_t capacity() const { return Cap; }

  void clear() { Count = 0; }

  void push_back(const T &V) {
    if (Count == Cap)
      growTo(Cap * 2);
    Ptr[Count++] = V;
  }

  void pop_back() { --Count; }

  void reserve(size_t Want) {
    if (Want > Cap)
      growTo(Want);
  }

  void assign(const T *First, const T *Last) {
    size_t Want = static_cast<size_t>(Last - First);
    if (Want > Cap)
      growTo(Want);
    std::memcpy(Ptr, First, Want * sizeof(T));
    Count = static_cast<uint32_t>(Want);
  }

  bool operator==(const SmallVector &O) const {
    if (Count != O.Count)
      return false;
    for (uint32_t I = 0; I != Count; ++I)
      if (!(Ptr[I] == O.Ptr[I]))
        return false;
    return true;
  }
  bool operator!=(const SmallVector &O) const { return !(*this == O); }

private:
  bool isInline() const { return Ptr == inlineData(); }
  T *inlineData() { return reinterpret_cast<T *>(Inline); }
  const T *inlineData() const { return reinterpret_cast<const T *>(Inline); }

  void growTo(size_t Want) {
    if (Want < Cap * 2)
      Want = Cap * 2;
    T *Mem = new T[Want];
    std::memcpy(Mem, Ptr, Count * sizeof(T));
    if (!isInline())
      delete[] Ptr;
    Ptr = Mem;
    Cap = static_cast<uint32_t>(Want);
  }

  /// Takes O's heap buffer (or copies its inline elements) and leaves O
  /// empty with inline storage.
  void stealFrom(SmallVector &O) {
    if (O.isInline()) {
      Ptr = inlineData();
      Cap = N;
      std::memcpy(Ptr, O.Ptr, O.Count * sizeof(T));
    } else {
      Ptr = O.Ptr;
      Cap = O.Cap;
    }
    Count = O.Count;
    O.Ptr = O.inlineData();
    O.Cap = N;
    O.Count = 0;
  }

  T *Ptr = inlineData();
  uint32_t Count = 0;
  uint32_t Cap = N;
  alignas(T) char Inline[N * sizeof(T)];
};

} // namespace rap

#endif // RAP_SUPPORT_SMALLVECTOR_H
