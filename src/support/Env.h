//===- support/Env.h - Centralized environment access -----------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single gateway for environment-variable configuration. Every
/// recognized variable is read *once* per process (first query wins) and the
/// value is cached behind a mutex, so concurrent allocator threads see one
/// consistent answer and repeated hot-path queries never rescan `environ`.
///
/// Recognized variables are documented in README.md ("Environment
/// variables"): RAP_DEBUG, RAP_VERIFY_LIVENESS, RAP_FAULT_INJECT.
///
/// Call sites that sit on hot paths should additionally latch the result in
/// a function-local `static const` (see `Liveness.cpp`), which also pins the
/// read to the first *use* rather than static initialization — tests that
/// `setenv` from a file-scope initializer rely on that ordering.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SUPPORT_ENV_H
#define RAP_SUPPORT_ENV_H

#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace rap {
namespace env {

/// The value of \p Name at first query, or nullopt when unset. Cached for
/// the process lifetime; thread-safe.
inline const std::optional<std::string> &get(const std::string &Name) {
  static std::mutex M;
  static std::map<std::string, std::optional<std::string>> Cache;
  std::lock_guard<std::mutex> Lock(M);
  auto It = Cache.find(Name);
  if (It == Cache.end()) {
    const char *Raw = std::getenv(Name.c_str());
    It = Cache
             .emplace(Name, Raw ? std::optional<std::string>(Raw)
                                : std::nullopt)
             .first;
  }
  return It->second;
}

/// True when \p Name is set (to anything, including empty). Cached.
inline bool flag(const std::string &Name) { return get(Name).has_value(); }

} // namespace env
} // namespace rap

#endif // RAP_SUPPORT_ENV_H
