//===- support/Stats.h - Allocation telemetry registry ----------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry subsystem (DESIGN.md §9): named counters, per-phase
/// timers, and a per-region event log, collected per function and folded
/// into a program-level registry whose aggregate is deterministic at any
/// thread count.
///
/// Design rules:
///
/// * **Zero cost when off.** Every instrumentation point receives a
///   `FunctionScope *` that is null when telemetry is disabled; the inline
///   recording helpers reduce to a single pointer test, and no memory is
///   allocated. The hot allocation loops never pay for strings or maps
///   unless a sink is attached.
/// * **One writer per scope.** A FunctionScope is owned by the one thread
///   allocating (or interpreting) that function, so recording is
///   lock-free. Only Telemetry::commit crosses threads and takes the
///   registry mutex — once per function, not per event.
/// * **Deterministic aggregate.** Committed scopes are keyed by function
///   index; aggregation folds them in that order. Counter names, values,
///   slice names/regions/args are identical across thread counts and
///   repeated runs; only timestamps, durations, and worker lane ids vary
///   (the determinism tests normalize exactly those fields).
///
/// The Chrome trace exporter serializes the slice log as trace-event JSON
/// ("X" complete events, one lane per worker thread) loadable in
/// about://tracing or https://ui.perfetto.dev.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SUPPORT_STATS_H
#define RAP_SUPPORT_STATS_H

#include "support/Json.h"

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace rap {
namespace telemetry {

using Clock = std::chrono::steady_clock;

/// One closed phase slice: \p Phase ran over [StartUs, StartUs + DurUs)
/// within one function, optionally attributed to a PDG region and carrying
/// small deterministic arguments (graph node counts, spill counts, ...).
struct PhaseSlice {
  const char *Phase = "";           ///< static string; deterministic
  int Region = -1;                  ///< PDG region id, -1 = whole function
  double StartUs = 0;               ///< since the registry epoch; varies
  double DurUs = 0;                 ///< wall duration; varies
  /// Deterministic key/value arguments (static-string keys).
  std::vector<std::pair<const char *, uint64_t>> Args;
};

/// Per-function telemetry sink. Single-threaded by construction: the one
/// worker allocating the function writes, nobody reads until commit.
class FunctionScope {
public:
  explicit FunctionScope(Clock::time_point Epoch = Clock::now())
      : Epoch(Epoch) {}

  void add(const char *Counter, uint64_t N = 1) { Counters[Counter] += N; }
  /// High-water-mark counter. The name must contain "max" — that substring
  /// is what tells the program-level aggregate to fold the counter with max
  /// rather than sum across functions.
  void maxOf(const char *Counter, uint64_t V) {
    uint64_t &Slot = Counters[Counter];
    if (V > Slot)
      Slot = V;
  }
  void addSeconds(const char *Timer, double S) { TimerSeconds[Timer] += S; }

  double microsNow() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - Epoch)
        .count();
  }

  /// The scope's time origin, so side scopes (e.g. the region-parallel
  /// allocator's per-region scratch scopes, spliced back in after the
  /// barrier) can stamp slices on the same axis.
  Clock::time_point epoch() const { return Epoch; }

  void record(PhaseSlice S) { Slices.push_back(std::move(S)); }

  /// Monotone named counters (events, sizes).
  std::map<std::string, uint64_t> Counters;
  /// Total wall seconds per phase name (sum over that phase's slices plus
  /// any addSeconds contributions).
  std::map<std::string, double> TimerSeconds;
  /// The per-region event log, in recording order.
  std::vector<PhaseSlice> Slices;

private:
  Clock::time_point Epoch;
};

/// RAII phase slice: times \p Phase from construction to destruction and
/// records a PhaseSlice plus the phase-total timer. A null \p Scope makes
/// every member a no-op (the disabled-telemetry fast path).
class ScopedPhase {
public:
  ScopedPhase(FunctionScope *Scope, const char *Phase, int Region = -1)
      : Scope(Scope) {
    if (!Scope)
      return;
    S.Phase = Phase;
    S.Region = Region;
    S.StartUs = Scope->microsNow();
  }
  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;
  ~ScopedPhase() { finish(); }

  /// Attaches a deterministic argument to the slice.
  void arg(const char *Key, uint64_t V) {
    if (Scope)
      S.Args.emplace_back(Key, V);
  }

  /// Closes the slice early (idempotent).
  void finish() {
    if (!Scope)
      return;
    S.DurUs = Scope->microsNow() - S.StartUs;
    Scope->addSeconds(S.Phase, S.DurUs * 1e-6);
    Scope->record(std::move(S));
    Scope = nullptr;
  }

private:
  FunctionScope *Scope;
  PhaseSlice S;
};

/// The deterministic view of a whole run: counters summed and timers summed
/// over every committed function, in function order.
struct Aggregate {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> TimerSeconds; ///< varies run to run
  uint64_t NumFunctions = 0;
  uint64_t NumSlices = 0;

  json::Value countersJson() const {
    json::Object O;
    for (const auto &[K, V] : Counters)
      O[K] = V;
    return json::Value(std::move(O));
  }
  json::Value timersJson() const {
    json::Object O;
    for (const auto &[K, V] : TimerSeconds)
      O[K + "_s"] = V;
    return json::Value(std::move(O));
  }
};

/// The program-level registry. Thread-safe: worker threads commit their
/// FunctionScope under the mutex; everything else is read-after-join.
class Telemetry {
public:
  Telemetry() : Epoch(Clock::now()) {}

  Clock::time_point epoch() const { return Epoch; }

  /// Hands a worker a fresh scope sharing the registry epoch.
  FunctionScope makeScope() const { return FunctionScope(Epoch); }

  /// Folds one function's telemetry in. \p Index is the function's position
  /// in the program (the deterministic sort key); \p Worker the lane the
  /// function ran on (trace display only).
  void commit(unsigned Index, std::string Function, unsigned Worker,
              FunctionScope &&Scope) {
    std::lock_guard<std::mutex> Lock(M);
    Record &R = Records[Index];
    R.Function = std::move(Function);
    R.Worker = Worker;
    R.Scope = std::move(Scope);
  }

  /// The deterministic aggregate: counters fold in function order — summed,
  /// except high-water marks (names containing "max", see
  /// FunctionScope::maxOf) which fold with max. Both folds are
  /// order-independent, so this equals any-order folding.
  Aggregate aggregate() const {
    std::lock_guard<std::mutex> Lock(M);
    Aggregate A;
    A.NumFunctions = Records.size();
    for (const auto &[Index, R] : Records) {
      (void)Index;
      for (const auto &[K, V] : R.Scope.Counters) {
        uint64_t &Slot = A.Counters[K];
        if (K.find("max") != std::string::npos)
          Slot = V > Slot ? V : Slot;
        else
          Slot += V;
      }
      for (const auto &[K, V] : R.Scope.TimerSeconds)
        A.TimerSeconds[K] += V;
      A.NumSlices += R.Scope.Slices.size();
    }
    return A;
  }

  /// Chrome trace-event JSON (the "JSON object format": a traceEvents
  /// array plus metadata). Events are ordered by function index, then
  /// recording order — deterministic apart from ts/dur/tid values.
  void writeChromeTrace(std::ostream &OS) const {
    std::lock_guard<std::mutex> Lock(M);
    json::Array Events;
    std::map<unsigned, bool> Lanes;
    for (const auto &[Index, R] : Records) {
      (void)Index;
      Lanes[R.Worker] = true;
      for (const PhaseSlice &S : R.Scope.Slices) {
        json::Object Args;
        Args["function"] = R.Function;
        if (S.Region >= 0)
          Args["region"] = static_cast<int64_t>(S.Region);
        for (const auto &[K, V] : S.Args)
          Args[K] = V;
        json::Object E;
        E["name"] = S.Phase;
        E["cat"] = "alloc";
        E["ph"] = "X";
        E["ts"] = S.StartUs;
        E["dur"] = S.DurUs;
        E["pid"] = 1;
        E["tid"] = static_cast<int64_t>(R.Worker);
        E["args"] = json::Value(std::move(Args));
        Events.push_back(json::Value(std::move(E)));
      }
    }
    // Lane naming metadata so about://tracing shows "worker N" rows.
    for (const auto &[Worker, Used] : Lanes) {
      (void)Used;
      json::Object Args;
      Args["name"] = "worker " + std::to_string(Worker);
      json::Object E;
      E["name"] = "thread_name";
      E["ph"] = "M";
      E["pid"] = 1;
      E["tid"] = static_cast<int64_t>(Worker);
      E["args"] = json::Value(std::move(Args));
      Events.push_back(json::Value(std::move(E)));
    }
    json::Object Root;
    Root["traceEvents"] = json::Value(std::move(Events));
    Root["displayTimeUnit"] = "ms";
    OS << json::Value(std::move(Root)).str(1) << "\n";
  }

  /// Per-function records in function order (tests and reporters).
  struct Record {
    std::string Function;
    unsigned Worker = 0;
    FunctionScope Scope;
  };
  std::vector<std::pair<unsigned, const Record *>> ordered() const {
    std::lock_guard<std::mutex> Lock(M);
    std::vector<std::pair<unsigned, const Record *>> Out;
    Out.reserve(Records.size());
    for (const auto &[Index, R] : Records)
      Out.emplace_back(Index, &R);
    return Out;
  }

private:
  Clock::time_point Epoch;
  mutable std::mutex M;
  std::map<unsigned, Record> Records; ///< keyed by function index
};

} // namespace telemetry
} // namespace rap

#endif // RAP_SUPPORT_STATS_H
