//===- support/ShardPool.cpp - Work-stealing task shards --------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "support/ShardPool.h"

#include <algorithm>
#include <chrono>

using namespace rap;

ShardPool::ShardPool(unsigned NumShards, const WatchdogConfig &Watchdog)
    : Watchdog(Watchdog) {
  if (NumShards == 0)
    NumShards = 1;
  Shards.reserve(NumShards);
  for (unsigned I = 0; I != NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  Workers.reserve(NumShards);
  for (unsigned I = 0; I != NumShards; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
  if (Watchdog.Factor > 0)
    WatchdogThread = std::thread([this] { watchdogLoop(); });
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> Lock(SleepM);
    Stopping = true;
  }
  SleepCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
  if (WatchdogThread.joinable())
    WatchdogThread.join();
}

void ShardPool::submit(size_t Hint, Task T, TaskGroup *Group,
                       const CancelToken *Token) {
  Shard &S = *Shards[Hint % Shards.size()];
  {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Q.push_back(QueueItem{std::move(T), Group, Token});
    if (S.Q.size() > S.DepthMax)
      S.DepthMax = S.Q.size();
  }
  SleepCV.notify_one();
}

bool ShardPool::takeOwn(unsigned Self, QueueItem &Out) {
  Shard &S = *Shards[Self];
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Q.empty())
    return false;
  Out = std::move(S.Q.front()); // owner drains FIFO
  S.Q.pop_front();
  return true;
}

bool ShardPool::stealFrom(unsigned Victim, QueueItem &Out) {
  Shard &S = *Shards[Victim];
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Q.empty())
    return false;
  Out = std::move(S.Q.back()); // thieves take the opposite end
  S.Q.pop_back();
  return true;
}

void ShardPool::workerLoop(unsigned Self) {
  const unsigned N = static_cast<unsigned>(Shards.size());
  Shard &Own = *Shards[Self];
  QueueItem Item;
  while (true) {
    bool Got = takeOwn(Self, Item);
    bool Stole = false;
    if (!Got) {
      // Scan siblings round-robin starting after ourselves so thieves
      // spread over victims instead of mobbing shard 0.
      for (unsigned D = 1; D != N && !Got; ++D) {
        Got = stealFrom((Self + D) % N, Item);
        Stole = Got;
      }
    }
    if (Got) {
      // Backstop skip: a task whose request already stopped (deadline hit
      // or drain cancel while it sat queued) is not worth starting — the
      // allocator would only throw at its first round boundary anyway.
      bool Skip = Item.Token && Item.Token->stopRequested();
      if (!Skip) {
        // Register for the watchdog. Runs in the executing worker's own
        // shard slot regardless of which deque the task came from.
        {
          std::lock_guard<std::mutex> Lock(Own.M);
          Own.RunningSet = true;
          Own.RunningToken = Item.Token;
          Own.RunningSince = std::chrono::steady_clock::now();
          Own.Tripped = false;
        }
        try {
          Item.Work();
        } catch (...) {
          // Tasks own their failures (the service catches per function); a
          // leak here must not take down the worker or hang the barrier.
        }
        {
          // Clear the registration *before* releasing the barrier: the
          // token lives at least until the barrier releases, so the
          // watchdog (which reads under this same mutex) can never see a
          // dangling pointer.
          std::lock_guard<std::mutex> Lock(Own.M);
          Own.RunningSet = false;
          Own.RunningToken = nullptr;
          Own.Degraded = false; // the wedged task, if any, just completed
          Own.Tripped = false;
        }
      }
      {
        // Fold stats *before* releasing the barrier so a waiter that reads
        // the counters right after wait() sees this task accounted for.
        std::lock_guard<std::mutex> Lock(StatsM);
        Run += !Skip;
        Skipped += Skip;
        Stolen += Stole && !Skip;
      }
      if (Item.Group)
        Item.Group->done();
      Item.Work = nullptr;
      Item.Token = nullptr;
      continue;
    }
    // Nothing anywhere: park until a submit or shutdown. Re-check the
    // deques under the sleep lock via predicate re-poll (a submit between
    // our scan and the wait would otherwise be missed — notify_one with no
    // waiter is lost, so the predicate must look at queue state).
    std::unique_lock<std::mutex> Lock(SleepM);
    if (Stopping)
      return;
    SleepCV.wait_for(Lock, std::chrono::milliseconds(10), [&] {
      if (Stopping)
        return true;
      for (const auto &S : Shards) {
        std::lock_guard<std::mutex> QL(S->M);
        if (!S->Q.empty())
          return true;
      }
      return false;
    });
    if (Stopping)
      return;
  }
}

void ShardPool::watchdogLoop() {
  using Clock = std::chrono::steady_clock;
  const auto Poll = std::chrono::milliseconds(
      Watchdog.PollMs ? Watchdog.PollMs : 1);
  while (true) {
    {
      // Reuse the sleep channel for a cancellable wait; a spurious wake
      // just means one extra scan.
      std::unique_lock<std::mutex> Lock(SleepM);
      if (Stopping)
        return;
      SleepCV.wait_for(Lock, Poll, [&] { return Stopping; });
      if (Stopping)
        return;
    }
    Clock::time_point Now = Clock::now();
    for (const auto &SP : Shards) {
      Shard &S = *SP;
      std::lock_guard<std::mutex> Lock(S.M);
      if (!S.RunningSet || S.Tripped || !S.RunningToken)
        continue;
      const Deadline &D = S.RunningToken->deadline();
      if (!D.armed())
        continue; // no budget to scale: never tripped
      // Budget = what the request had left when the task started, floored
      // at one poll tick so a task admitted moments before (or after) its
      // deadline cannot false-trip while it runs its cooperative checks.
      auto Budget = std::max<Clock::duration>(D.when() - S.RunningSince,
                                              Poll);
      if (Now - S.RunningSince > Budget * Watchdog.Factor) {
        S.Tripped = true;
        S.Degraded = true;
        std::lock_guard<std::mutex> SL(StatsM);
        ++Trips;
      }
    }
  }
}

uint64_t ShardPool::queueDepthMax() const {
  uint64_t Max = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    if (S->DepthMax > Max)
      Max = S->DepthMax;
  }
  return Max;
}

uint64_t ShardPool::tasksStolen() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return Stolen;
}

uint64_t ShardPool::tasksRun() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return Run;
}

uint64_t ShardPool::tasksSkipped() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return Skipped;
}

uint64_t ShardPool::watchdogTrips() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return Trips;
}

unsigned ShardPool::shardsDegraded() const {
  unsigned N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    N += S->Degraded;
  }
  return N;
}
