//===- support/Journal.h - CRC-framed append-only journal -------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level substrate of the server's durable allocation cache
/// (DESIGN.md §15): an append-only stream of CRC32-framed records plus the
/// little-endian writer/reader the cache store serializes entries with.
///
/// Frame layout (all integers little-endian, independent of host order):
///
///   [u32 length][u32 crc32][content: length bytes]     content[0] = type
///
/// `length` counts the content bytes (>= 1, the type tag); `crc32` covers
/// exactly the content. The format is deliberately self-delimiting and
/// *prefix-recoverable*: a reader scans frames in order and stops at the
/// first frame whose header is incomplete, whose length overruns the buffer,
/// or whose CRC disagrees — everything before that point is trusted,
/// everything after is a torn tail from a crash mid-write and is dropped.
/// Recovery therefore never aborts on a truncated or bit-flipped tail; the
/// cache-store tests truncate and flip every byte offset of a final frame
/// and assert exactly this prefix semantics.
///
/// A `MaxFrameBytes` bound rejects absurd lengths early so a corrupt header
/// cannot demand a giant allocation before the CRC gets a chance to veto it.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SUPPORT_JOURNAL_H
#define RAP_SUPPORT_JOURNAL_H

#include <cstdint>
#include <cstring>
#include <string>

namespace rap {
namespace journal {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over \p Len bytes.
/// Table built on first use; thread-safe since C++11 static initialization.
inline uint32_t crc32(const void *Data, size_t Len, uint32_t Seed = 0) {
  static const auto Table = [] {
    struct T {
      uint32_t Row[256];
    } T;
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T.Row[I] = C;
    }
    return T;
  }();
  uint32_t C = ~Seed;
  const auto *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Len; ++I)
    C = Table.Row[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return ~C;
}

//===----------------------------------------------------------------------===//
// Little-endian scalar encoding (explicit, so journals written on any host
// replay on any other).
//===----------------------------------------------------------------------===//

/// Appends fixed-width little-endian scalars and length-prefixed strings to
/// a byte buffer. The cache store's entry serializer.
class ByteWriter {
public:
  explicit ByteWriter(std::string &Out) : Out(Out) {}

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S);
  }

private:
  std::string &Out;
};

/// Bounds-checked little-endian reader over a byte range. Reads past the end
/// latch the failed flag and return zeros; callers check ok() once at the
/// end of a record instead of after every field (a corrupt-but-CRC-valid
/// record degrades to a decode failure, never UB).
class ByteReader {
public:
  ByteReader(const char *Data, size_t Size) : P(Data), End(Data + Size) {}

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(*P++);
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(*P++)) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(*P++)) << (8 * I);
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return std::string();
    std::string S(P, N);
    P += N;
    return S;
  }

  bool ok() const { return !Failed; }
  bool atEnd() const { return P == End && !Failed; }
  size_t remaining() const { return static_cast<size_t>(End - P); }

private:
  bool need(size_t N) {
    if (Failed || static_cast<size_t>(End - P) < N) {
      Failed = true;
      P = End;
      return false;
    }
    return true;
  }
  const char *P;
  const char *End;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

/// Appends one frame of \p Type + \p Payload to \p Out.
inline void appendFrame(std::string &Out, uint8_t Type,
                        const std::string &Payload) {
  std::string Content;
  Content.reserve(Payload.size() + 1);
  Content.push_back(static_cast<char>(Type));
  Content += Payload;
  ByteWriter W(Out);
  W.u32(static_cast<uint32_t>(Content.size()));
  W.u32(crc32(Content.data(), Content.size()));
  Out += Content;
}

/// One decoded frame: the type tag plus a view into the scanned buffer
/// (valid only while the buffer lives).
struct Frame {
  uint8_t Type = 0;
  const char *Payload = nullptr;
  size_t PayloadSize = 0;
};

struct ScanResult {
  uint64_t FramesOk = 0;    ///< frames delivered to the callback
  size_t BytesConsumed = 0; ///< prefix covered by valid frames
  bool TornTail = false;    ///< bytes remained past the last valid frame
};

/// Walks the frames of \p Data in order, invoking \p Fn(Frame) for each
/// valid one until it returns false or the stream ends. Stops — without
/// failing — at the first incomplete header, overlong length, or CRC
/// mismatch; ScanResult records how far the trusted prefix reached and
/// whether a torn tail was dropped.
template <typename FnT>
ScanResult scanFrames(const char *Data, size_t Size, FnT &&Fn,
                      size_t MaxFrameBytes = size_t(1) << 31) {
  ScanResult R;
  size_t Off = 0;
  while (Size - Off >= 8) {
    ByteReader H(Data + Off, 8);
    uint32_t Len = H.u32();
    uint32_t Crc = H.u32();
    if (Len == 0 || Len > MaxFrameBytes || Len > Size - Off - 8)
      break; // truncated or corrupt length: torn tail
    const char *Content = Data + Off + 8;
    if (crc32(Content, Len) != Crc)
      break; // bit rot or a torn rewrite: stop at the prefix
    Frame F;
    F.Type = static_cast<uint8_t>(Content[0]);
    F.Payload = Content + 1;
    F.PayloadSize = Len - 1;
    Off += 8 + Len;
    R.FramesOk += 1;
    R.BytesConsumed = Off;
    if (!Fn(F))
      return R; // caller stopped early: the tail is unexamined, not torn
  }
  R.TornTail = Off != Size;
  return R;
}

} // namespace journal
} // namespace rap

#endif // RAP_SUPPORT_JOURNAL_H
