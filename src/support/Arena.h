//===- support/Arena.h - Reusable bump allocator ----------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump allocator for trivially-destructible objects on hot paths
/// that would otherwise hammer the global heap with many small allocations:
/// the interpreter's decoded-op buffers, per-function scratch arrays, and
/// similar build-once/free-together data.
///
/// Allocation is a pointer bump; there is no per-object free. reset()
/// recycles the arena for the next function: it keeps the largest chunk it
/// ever grew (so steady-state reuse performs zero heap traffic) and returns
/// the rest to the heap. Ownership rule: objects allocated from an arena are
/// plain memory — they must not require destruction, and they die, all at
/// once, at reset() or arena destruction (DESIGN.md §11, "arena ownership").
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SUPPORT_ARENA_H
#define RAP_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace rap {

class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Raw allocation of \p Bytes with \p Align alignment. Never returns
  /// nullptr (grows a new chunk on demand); Bytes == 0 yields an aligned,
  /// dereference-unsafe pointer like operator new would.
  void *allocate(size_t Bytes, size_t Align) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + (Align - 1)) & ~uintptr_t(Align - 1);
    if (!Cur || Aligned + Bytes > reinterpret_cast<uintptr_t>(End)) {
      grow(Bytes + Align);
      P = reinterpret_cast<uintptr_t>(Cur);
      Aligned = (P + (Align - 1)) & ~uintptr_t(Align - 1);
    }
    Cur = reinterpret_cast<char *>(Aligned + Bytes);
    Used += Bytes;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Typed array allocation. The memory is uninitialized; the element type
  /// must not need a destructor (nothing will ever run one).
  template <typename T> T *alloc(size_t N = 1) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Copies [First, First + N) into arena storage and returns the copy.
  template <typename T> T *copy(const T *First, size_t N) {
    T *Out = alloc<T>(N);
    for (size_t I = 0; I != N; ++I)
      Out[I] = First[I];
    return Out;
  }

  /// Recycles the arena: every pointer it handed out becomes invalid. The
  /// largest chunk is kept so the common grow-to-steady-state-then-reuse
  /// pattern stops touching the heap after the first few functions.
  void reset() {
    if (Chunks.empty()) {
      Used = 0;
      return;
    }
    size_t Largest = 0;
    for (size_t I = 1; I != Chunks.size(); ++I)
      if (Chunks[I].Size > Chunks[Largest].Size)
        Largest = I;
    if (Largest != 0)
      std::swap(Chunks[0], Chunks[Largest]);
    Chunks.resize(1);
    Cur = Chunks[0].Mem.get();
    End = Cur + Chunks[0].Size;
    Used = 0;
  }

  /// Bytes handed out since construction or the last reset() (excludes
  /// alignment padding); for telemetry and tests.
  size_t bytesAllocated() const { return Used; }

  /// Total chunk bytes currently held (allocated + reusable headroom).
  size_t bytesReserved() const {
    size_t N = 0;
    for (const Chunk &C : Chunks)
      N += C.Size;
    return N;
  }

private:
  struct Chunk {
    std::unique_ptr<char[]> Mem;
    size_t Size = 0;
  };

  void grow(size_t AtLeast) {
    size_t Size = NextSize;
    while (Size < AtLeast)
      Size *= 2;
    NextSize = Size * 2;
    Chunk C;
    C.Mem = std::make_unique<char[]>(Size);
    C.Size = Size;
    Cur = C.Mem.get();
    End = Cur + Size;
    Chunks.push_back(std::move(C));
  }

  std::vector<Chunk> Chunks;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t Used = 0;
  size_t NextSize = 4096;
};

} // namespace rap

#endif // RAP_SUPPORT_ARENA_H
