//===- support/ShardPool.h - Work-stealing task shards ----------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared execution substrate for the compile server and the region-parallel
/// allocator: N shards, each a worker thread
/// with its own task deque. Producers place tasks on a shard chosen by an
/// affinity hint (requests keep their functions together for locality);
/// a worker drains its own deque FIFO and, when empty, steals from the
/// *back* of a sibling's deque — the classic split that keeps owners and
/// thieves off the same end. Stealing is what keeps a batch with skewed
/// shard assignment (one huge request, many idle shards) at full
/// utilization.
///
/// Determinism: the pool schedules, it does not order results. Callers
/// write each task's output into a pre-assigned slot (function index,
/// request index) and fold slots in index order after waiting — the same
/// discipline allocateProgramChecked established — so any interleaving
/// produces identical output. TaskGroup provides the wait barrier.
///
/// Crash-only serving (DESIGN.md §13) adds two pieces:
///
///   * Tasks may register the request's CancelToken at submit time. A
///     skipped task (token already stopped when a worker picks it up) is
///     never run — the submitter's own pre-checks make the common case
///     cheap, this is the backstop — but its TaskGroup is always released.
///   * A watchdog thread samples every shard's running task. A task that
///     overstays WatchdogFactor x its token's deadline budget has, by
///     definition, ignored its cooperative cancellation points; the
///     watchdog cannot preempt it, but it marks the shard degraded (sticky
///     until that task finally completes) and counts a trip, so operators
///     see wedged workers in the `server` stats section instead of
///     wondering where their capacity went.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SUPPORT_SHARDPOOL_H
#define RAP_SUPPORT_SHARDPOOL_H

#include "support/Deadline.h"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace rap {

/// Countdown latch for one batch of pool tasks: the submitter registers
/// each task, workers signal completion, wait() blocks until all are done.
/// Threads that call wait() are never pool workers (the service orchestrates
/// from the connection/bench thread; the region allocator waits from the
/// per-function thread), so waiting cannot deadlock the pool. Workers may
/// expect()+submit() follow-on tasks from inside a task as long as they do
/// so before returning — their own pending done() keeps the barrier open.
class TaskGroup {
public:
  void expect(size_t N = 1) {
    std::lock_guard<std::mutex> Lock(M);
    Pending += N;
  }
  void done() {
    std::lock_guard<std::mutex> Lock(M);
    if (--Pending == 0)
      CV.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Pending == 0; });
  }

private:
  std::mutex M;
  std::condition_variable CV;
  size_t Pending = 0;
};

/// Watchdog tuning. Factor 0 disables the watchdog thread entirely (unit
/// tests and benches that want a quiet pool).
struct WatchdogConfig {
  /// A running task trips the watchdog once it has been running longer than
  /// Factor x its deadline budget (deadline minus task start, floored at
  /// one poll interval so an already-expired token cannot false-trip).
  /// Tasks without an armed deadline are never tripped — there is no
  /// budget to scale.
  unsigned Factor = 4;
  /// Sampling cadence of the watchdog thread.
  unsigned PollMs = 5;
};

class ShardPool {
public:
  using Task = std::function<void()>;

  /// Spawns \p NumShards workers (at least 1). Shard count is the server's
  /// --shards knob; the deterministic-output contract holds at any value.
  explicit ShardPool(unsigned NumShards,
                     const WatchdogConfig &Watchdog = WatchdogConfig());
  ~ShardPool();

  ShardPool(const ShardPool &) = delete;
  ShardPool &operator=(const ShardPool &) = delete;

  /// Enqueues \p T on shard `Hint % shards()` and wakes a worker. When
  /// \p Group is given it must have been expect()ed already; the pool calls
  /// done() after the task runs (even if it throws — tasks are expected to
  /// contain their own failures, but a throw must not hang the barrier).
  /// \p Token, when given, must outlive the task (the submitter's barrier
  /// guarantees this): a task whose token already requests stop is skipped
  /// — its Group still released — and a running task's token deadline is
  /// what the watchdog measures against.
  void submit(size_t Hint, Task T, TaskGroup *Group = nullptr,
              const CancelToken *Token = nullptr);

  unsigned shards() const { return static_cast<unsigned>(Shards.size()); }

  /// High-water mark of any single shard's queue depth (telemetry).
  uint64_t queueDepthMax() const;
  /// Tasks executed by a worker that did not own their shard (telemetry;
  /// proves stealing actually happens under skewed load).
  uint64_t tasksStolen() const;
  uint64_t tasksRun() const;
  /// Tasks never run because their cancel token had already stopped when a
  /// worker picked them up (their barriers were still released).
  uint64_t tasksSkipped() const;
  /// Times the watchdog caught a worker overstaying its deadline budget.
  uint64_t watchdogTrips() const;
  /// Shards currently marked degraded (a tripped task still running).
  unsigned shardsDegraded() const;

private:
  struct QueueItem {
    Task Work;
    TaskGroup *Group = nullptr;
    const CancelToken *Token = nullptr;
  };

  struct Shard {
    std::mutex M;
    std::deque<QueueItem> Q;
    uint64_t DepthMax = 0;

    // Running-task registration, written by the worker and read by the
    // watchdog, both under M. RunningToken is only valid while RunningSet;
    // the worker clears it (under M) before releasing the task's barrier,
    // so the watchdog can never observe a dangling token.
    bool RunningSet = false;
    const CancelToken *RunningToken = nullptr;
    std::chrono::steady_clock::time_point RunningSince{};
    bool Tripped = false;  ///< this running task already counted a trip
    bool Degraded = false; ///< sticky until the tripped task completes
  };

  void workerLoop(unsigned Self);
  void watchdogLoop();
  bool takeOwn(unsigned Self, QueueItem &Out);
  bool stealFrom(unsigned Victim, QueueItem &Out);

  std::vector<std::unique_ptr<Shard>> Shards;
  std::vector<std::thread> Workers;

  WatchdogConfig Watchdog;
  std::thread WatchdogThread;

  // One pool-wide sleep channel: workers park here when every deque is
  // empty. Simpler than per-shard wakeups and plenty for the server's
  // task granularity (one task = one function allocation).
  std::mutex SleepM;
  std::condition_variable SleepCV;
  bool Stopping = false;

  mutable std::mutex StatsM;
  uint64_t Stolen = 0;
  uint64_t Run = 0;
  uint64_t Skipped = 0;
  uint64_t Trips = 0;
};

// Historical home of the pool; the server code still refers to these names
// through its own namespace.
namespace server {
using rap::ShardPool;
using rap::TaskGroup;
using rap::WatchdogConfig;
} // namespace server

} // namespace rap

#endif // RAP_SUPPORT_SHARDPOOL_H
