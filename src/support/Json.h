//===- support/Json.h - Minimal JSON value, writer, parser ------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON library for the telemetry subsystem: the
/// stats/bench emitters build Value trees and serialize them; the schema
/// tests parse the emitted text back and validate it. Deliberately minimal:
///
/// * Objects keep their keys in sorted order (std::map), so serialization
///   is deterministic — the parallel-determinism tests diff emitted JSON
///   byte for byte.
/// * Numbers distinguish integers from doubles so counters round-trip
///   exactly; non-finite doubles refuse to serialize (the schema forbids
///   NaN/Inf) and fail parsing.
/// * The parser is a strict recursive-descent over the JSON grammar
///   (RFC 8259 minus \u escapes beyond Latin-1); it exists for tests and
///   tools, not for hostile input.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SUPPORT_JSON_H
#define RAP_SUPPORT_JSON_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rap {
namespace json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Value() : K(Kind::Null) {}
  Value(std::nullptr_t) : K(Kind::Null) {}
  Value(bool B) : K(Kind::Bool), B(B) {}
  Value(int64_t I) : K(Kind::Int), I(I) {}
  Value(int I) : K(Kind::Int), I(I) {}
  Value(unsigned U) : K(Kind::Int), I(U) {}
  Value(uint64_t U) : K(Kind::Int), I(static_cast<int64_t>(U)) {}
  Value(double D) : K(Kind::Double), D(D) {}
  Value(const char *S) : K(Kind::String), S(S) {}
  Value(std::string S) : K(Kind::String), S(std::move(S)) {}
  Value(Array A) : K(Kind::Array), A(std::move(A)) {}
  Value(Object O) : K(Kind::Object), O(std::move(O)) {}

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  int64_t asInt() const { return K == Kind::Double ? static_cast<int64_t>(D) : I; }
  double asDouble() const { return K == Kind::Int ? static_cast<double>(I) : D; }
  const std::string &asString() const { return S; }
  const Array &asArray() const { return A; }
  Array &asArray() { return A; }
  const Object &asObject() const { return O; }
  Object &asObject() { return O; }

  /// Object member access; returns a shared null for missing keys or
  /// non-objects, so lookups chain without crashing.
  const Value &operator[](const std::string &Key) const {
    static const Value Null;
    if (K != Kind::Object)
      return Null;
    auto It = O.find(Key);
    return It == O.end() ? Null : It->second;
  }
  bool has(const std::string &Key) const {
    return K == Kind::Object && O.count(Key) != 0;
  }

  /// Serializes the tree. \p Indent > 0 pretty-prints with that many spaces
  /// per level; 0 emits the compact form.
  std::string str(unsigned Indent = 0) const {
    std::string Out;
    write(Out, Indent, 0);
    return Out;
  }

private:
  static void escape(std::string &Out, const std::string &S) {
    Out += '"';
    for (char C : S) {
      switch (C) {
      case '"': Out += "\\\""; break;
      case '\\': Out += "\\\\"; break;
      case '\n': Out += "\\n"; break;
      case '\r': Out += "\\r"; break;
      case '\t': Out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
    Out += '"';
  }

  void write(std::string &Out, unsigned Indent, unsigned Depth) const {
    auto Newline = [&](unsigned D) {
      if (Indent) {
        Out += '\n';
        Out.append(static_cast<size_t>(Indent) * D, ' ');
      }
    };
    switch (K) {
    case Kind::Null:
      Out += "null";
      break;
    case Kind::Bool:
      Out += B ? "true" : "false";
      break;
    case Kind::Int:
      Out += std::to_string(I);
      break;
    case Kind::Double: {
      // The schema forbids non-finite numbers; emit null so the validator
      // (which rejects null where a number is required) catches the bug
      // instead of producing invalid JSON.
      if (!std::isfinite(D)) {
        Out += "null";
        break;
      }
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.9g", D);
      Out += Buf;
      // Keep doubles recognizable as doubles on re-parse.
      if (Out.find_first_of(".eE", Out.size() - std::strlen(Buf)) ==
          std::string::npos)
        Out += ".0";
      break;
    }
    case Kind::String:
      escape(Out, S);
      break;
    case Kind::Array: {
      Out += '[';
      bool First = true;
      for (const Value &V : A) {
        if (!First)
          Out += ',';
        First = false;
        Newline(Depth + 1);
        V.write(Out, Indent, Depth + 1);
      }
      if (!A.empty())
        Newline(Depth);
      Out += ']';
      break;
    }
    case Kind::Object: {
      Out += '{';
      bool First = true;
      for (const auto &[Key, V] : O) {
        if (!First)
          Out += ',';
        First = false;
        Newline(Depth + 1);
        escape(Out, Key);
        Out += Indent ? ": " : ":";
        V.write(Out, Indent, Depth + 1);
      }
      if (!O.empty())
        Newline(Depth);
      Out += '}';
      break;
    }
    }
  }

  Kind K;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  Array A;
  Object O;
};

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace detail {

struct Parser {
  const char *P, *End;
  std::string Error;

  void skipWs() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }
  bool expect(char C) {
    skipWs();
    if (P == End || *P != C)
      return fail(std::string("expected '") + C + "'");
    ++P;
    return true;
  }
  bool literal(const char *Lit) {
    for (const char *L = Lit; *L; ++L, ++P)
      if (P == End || *P != *L)
        return fail(std::string("bad literal, expected ") + Lit);
    return true;
  }

  bool parseString(std::string &Out) {
    if (!expect('"'))
      return false;
    while (P != End && *P != '"') {
      if (*P == '\\') {
        ++P;
        if (P == End)
          return fail("unterminated escape");
        switch (*P) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case '/': Out += '/'; break;
        case 'n': Out += '\n'; break;
        case 'r': Out += '\r'; break;
        case 't': Out += '\t'; break;
        case 'b': Out += '\b'; break;
        case 'f': Out += '\f'; break;
        case 'u': {
          if (End - P < 5)
            return fail("truncated \\u escape");
          unsigned Code = 0;
          for (int K = 1; K <= 4; ++K) {
            char C = P[K];
            Code <<= 4;
            if (C >= '0' && C <= '9')
              Code |= static_cast<unsigned>(C - '0');
            else if (C >= 'a' && C <= 'f')
              Code |= static_cast<unsigned>(C - 'a' + 10);
            else if (C >= 'A' && C <= 'F')
              Code |= static_cast<unsigned>(C - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          if (Code > 0xFF)
            return fail("\\u escape beyond Latin-1 unsupported");
          Out += static_cast<char>(Code);
          P += 4;
          break;
        }
        default:
          return fail("unknown escape");
        }
        ++P;
      } else {
        Out += *P++;
      }
    }
    if (P == End)
      return fail("unterminated string");
    ++P; // closing quote
    return true;
  }

  bool parseValue(Value &Out) {
    skipWs();
    if (P == End)
      return fail("unexpected end of input");
    switch (*P) {
    case '{': {
      ++P;
      Object O;
      skipWs();
      if (P != End && *P == '}') {
        ++P;
        Out = Value(std::move(O));
        return true;
      }
      while (true) {
        std::string Key;
        if (!parseString(Key) || !expect(':'))
          return false;
        Value V;
        if (!parseValue(V))
          return false;
        O[Key] = std::move(V);
        skipWs();
        if (P != End && *P == ',') {
          ++P;
          skipWs();
          continue;
        }
        break;
      }
      if (!expect('}'))
        return false;
      Out = Value(std::move(O));
      return true;
    }
    case '[': {
      ++P;
      Array A;
      skipWs();
      if (P != End && *P == ']') {
        ++P;
        Out = Value(std::move(A));
        return true;
      }
      while (true) {
        Value V;
        if (!parseValue(V))
          return false;
        A.push_back(std::move(V));
        skipWs();
        if (P != End && *P == ',') {
          ++P;
          continue;
        }
        break;
      }
      if (!expect(']'))
        return false;
      Out = Value(std::move(A));
      return true;
    }
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    case 't':
      if (!literal("true"))
        return false;
      Out = Value(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Value(false);
      return true;
    case 'n':
      if (!literal("null"))
        return false;
      Out = Value(nullptr);
      return true;
    default: {
      const char *Start = P;
      if (P != End && (*P == '-' || *P == '+'))
        ++P;
      bool IsDouble = false;
      while (P != End && ((*P >= '0' && *P <= '9') || *P == '.' ||
                          *P == 'e' || *P == 'E' || *P == '-' || *P == '+')) {
        IsDouble |= *P == '.' || *P == 'e' || *P == 'E';
        ++P;
      }
      if (P == Start)
        return fail("unexpected character");
      std::string Num(Start, P);
      if (IsDouble) {
        char *EndPtr = nullptr;
        double D = std::strtod(Num.c_str(), &EndPtr);
        if (EndPtr != Num.c_str() + Num.size() || !std::isfinite(D))
          return fail("bad number '" + Num + "'");
        Out = Value(D);
      } else {
        char *EndPtr = nullptr;
        long long I = std::strtoll(Num.c_str(), &EndPtr, 10);
        if (EndPtr != Num.c_str() + Num.size())
          return fail("bad number '" + Num + "'");
        Out = Value(static_cast<int64_t>(I));
      }
      return true;
    }
    }
  }
};

} // namespace detail

/// Parses \p Text into \p Out. On failure returns false and sets \p Error
/// (when provided) to a short description.
inline bool parse(const std::string &Text, Value &Out,
                  std::string *Error = nullptr) {
  detail::Parser P{Text.data(), Text.data() + Text.size(), {}};
  bool Ok = P.parseValue(Out);
  if (Ok) {
    P.skipWs();
    if (P.P != P.End) {
      Ok = false;
      P.Error = "trailing characters after JSON value";
    }
  }
  if (!Ok && Error)
    *Error = P.Error;
  return Ok;
}

} // namespace json
} // namespace rap

#endif // RAP_SUPPORT_JSON_H
