//===- support/Hash.h - Stable content hashing ------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable 64-bit content hash (FNV-1a with a strengthening finalizer) for
/// the compile server's allocation cache. Stability matters more than raw
/// speed here: the fingerprint of a function's lowered ILOC must be
/// identical across processes, thread counts, and repeated runs, because
/// cache-hit determinism (warm responses byte-identical to cold compiles)
/// is an advertised invariant. Do not swap in std::hash — its values are
/// unspecified and may differ between libstdc++ versions.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SUPPORT_HASH_H
#define RAP_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace rap {

/// Incremental FNV-1a over bytes, with mix() providing avalanche on the
/// final value. Usage: Hasher H; H.bytes(...); H.u64(...); H.value().
class Hasher {
public:
  Hasher &bytes(const void *Data, size_t Len) {
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Len; ++I) {
      State ^= P[I];
      State *= 0x100000001b3ULL; // FNV prime
    }
    return *this;
  }
  Hasher &str(const std::string &S) {
    // Length-prefix so ("ab","c") and ("a","bc") hash differently.
    u64(S.size());
    return bytes(S.data(), S.size());
  }
  Hasher &u64(uint64_t V) { return bytes(&V, sizeof(V)); }
  Hasher &u32(uint32_t V) { return bytes(&V, sizeof(V)); }
  Hasher &boolean(bool B) { return u32(B ? 1u : 0u); }

  /// The finalized hash: FNV-1a state pushed through splitmix64's mixer so
  /// short, similar inputs (one flag bit apart) still differ everywhere.
  uint64_t value() const {
    uint64_t Z = State;
    Z ^= Z >> 30;
    Z *= 0xbf58476d1ce4e5b9ULL;
    Z ^= Z >> 27;
    Z *= 0x94d049bb133111ebULL;
    Z ^= Z >> 31;
    return Z;
  }

private:
  uint64_t State = 0xcbf29ce484222325ULL; // FNV offset basis
};

/// One-shot convenience for hashing a string.
inline uint64_t hashString(const std::string &S) {
  return Hasher().str(S).value();
}

/// Renders a hash the way the rapd protocol transmits it: 16 lowercase hex
/// digits, no prefix.
inline std::string hashHex(uint64_t H) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[static_cast<size_t>(I)] = Digits[H & 0xF];
    H >>= 4;
  }
  return Out;
}

} // namespace rap

#endif // RAP_SUPPORT_HASH_H
