//===- support/Diagnostics.h - Source diagnostics ---------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects front-end diagnostics (errors with source positions) so that the
/// parser and semantic checker can report multiple problems per run and tests
/// can assert on them without parsing stderr.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SUPPORT_DIAGNOSTICS_H
#define RAP_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace rap {

/// A position in MiniC source text; both components are 1-based.
struct SourceLoc {
  int Line = 0;
  int Col = 0;
};

/// One reported problem.
struct Diagnostic {
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics for one compilation.
///
/// Recording is capped (default 256): adversarial inputs can provoke one
/// error per byte, and an unbounded vector would turn a gigabyte of garbage
/// into a gigabyte of diagnostics. Past the cap, errors still *count*
/// (hasErrors stays true, the total keeps incrementing) but are no longer
/// stored; str() appends a summary line naming how many were suppressed.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(size_t MaxStored = 256) : MaxStored(MaxStored) {}

  void error(SourceLoc Loc, std::string Message) {
    ++Total;
    if (Diags.size() < MaxStored)
      Diags.push_back({Loc, std::move(Message)});
  }

  bool hasErrors() const { return Total != 0; }
  size_t errorCount() const { return Total; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: message" lines, for tool output
  /// and for test assertions.
  std::string str() const {
    std::string Out;
    for (const Diagnostic &D : Diags) {
      Out += std::to_string(D.Loc.Line) + ":" + std::to_string(D.Loc.Col) +
             ": error: " + D.Message + "\n";
    }
    if (Total > Diags.size())
      Out += "... and " + std::to_string(Total - Diags.size()) +
             " more errors (suppressed)\n";
    return Out;
  }

private:
  std::vector<Diagnostic> Diags;
  size_t MaxStored;
  size_t Total = 0;
};

} // namespace rap

#endif // RAP_SUPPORT_DIAGNOSTICS_H
