//===- server/CompileService.cpp - Cached batched compilation ---------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "server/CompileService.h"

#include "ir/Clone.h"
#include "regalloc/SpillEverything.h"
#include "support/Env.h"
#include "support/Hash.h"

#include <chrono>
#include <cstdlib>
#include <thread>

using namespace rap;
using namespace rap::server;

uint64_t server::hashProgramOutput(const IlocProgram &Prog) {
  Hasher H;
  for (const auto &F : Prog.functions())
    H.str(F->str());
  return H.value();
}

const char *server::serviceStatusName(ServiceStatus S) {
  switch (S) {
  case ServiceStatus::Ok:
    return "ok";
  case ServiceStatus::CompileError:
    return "compile-error";
  case ServiceStatus::DeadlineExceeded:
    return "deadline-exceeded";
  case ServiceStatus::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

CompileService::CompileService(const ServiceConfig &Config)
    : Config(Config), Cache(Config.CacheBytes),
      Pool(Config.Shards, Config.Watchdog),
      Chaos(Config.Chaos.empty() ? envFaultPlan() : Config.Chaos,
            std::string()) {
  // Durable cache recovery (DESIGN.md §15): replay snapshot + journal into
  // the in-memory cache before the first request. Replay funnels through
  // the ordinary insert path, so the LRU byte budget and eviction rules
  // govern recovered entries exactly as they governed the originals; a
  // journal larger than the budget recovers the most recently written
  // entries (later frames re-insert over earlier ones, then evict LRU).
  if (!this->Config.CacheDir.empty() && this->Config.CacheBytes > 0) {
    CacheStoreConfig SC;
    SC.Dir = this->Config.CacheDir;
    SC.Fsync = this->Config.CacheFsync;
    SC.CompactBytes = this->Config.CacheCompactBytes;
    SC.Fingerprint = this->Config.CacheFingerprint;
    // Test hook: RAP_CACHE_FINGERPRINT overrides the build fingerprint so
    // the invalidation path ("rebuilt binary wipes the store, never a stale
    // hit") is testable without actually rebuilding the binary.
    if (SC.Fingerprint == 0) {
      if (const std::optional<std::string> &FP =
              env::get("RAP_CACHE_FINGERPRINT")) {
        char *End = nullptr;
        unsigned long long V = std::strtoull(FP->c_str(), &End, 10);
        if (End != FP->c_str() && *End == '\0' && V != 0)
          SC.Fingerprint = V;
      }
    }
    SC.Chaos = [this](FaultSite S) {
      if (!chaosFires(S))
        return false;
      ChaosInjectedCount.fetch_add(1, std::memory_order_relaxed);
      return true;
    };
    Store = std::make_unique<CacheStore>(std::move(SC));
    Store->open([this](uint64_t Key, std::unique_ptr<IlocFunction> Body,
                       const AllocOutcome &Outcome) {
      Cache.insert(Key, *Body, Outcome);
    });
  }
}

bool CompileService::chaosFires(FaultSite S) {
  std::lock_guard<std::mutex> Lock(ChaosM);
  return Chaos.fires(S);
}

namespace {

/// The `stall` chaos fault: wedge this worker for a while, deliberately
/// ignoring every cancellation point — the failure mode the ShardPool
/// watchdog exists to detect.
void stallIgnoringToken(unsigned Ms) {
  auto End =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
  while (std::chrono::steady_clock::now() < End)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

/// One function's fault-isolated allocation on a pool worker: the same
/// snapshot + spill-everything degradation discipline as the rapcc driver,
/// reimplemented here because the server reports through FunctionReport
/// slots instead of ProgramAllocResult. Never throws. Deadline expiry and
/// drain cancellation arrive here as AllocError (thrown by the allocators'
/// round-boundary guard) and take the same fallback path: the half-edited
/// body is discarded and the pristine snapshot gets the guaranteed-correct
/// linear-time spill-everything allocation — the request may be answering
/// `deadline-exceeded`, but the shard finishes clean, never wedged.
void allocateSlot(IlocProgram &Prog, unsigned I, AllocatorKind Kind,
                  const AllocOptions &Options, FunctionReport &Report,
                  AllocStats &Stats) {
  IlocFunction *F = Prog.functions()[I].get();
  std::unique_ptr<IlocFunction> Backup = cloneFunction(*F);
  try {
    Stats = Kind == AllocatorKind::Gra ? allocateGra(*F, Options)
                                       : allocateRap(*F, Options);
    Report.Status = AllocStatus::Allocated;
    return;
  } catch (const AllocError &E) {
    Report.Error = E.what();
  } catch (const std::exception &E) {
    Report.Error = std::string("internal: ") + E.what();
  }
  Report.Status = AllocStatus::Fallback;
  F = Prog.replaceFunction(I, std::move(Backup));
  try {
    Stats = allocateSpillEverything(*F, Options);
  } catch (const std::exception &E) {
    // The fallback only fails on API misuse; record it without crashing the
    // serving loop (crash-free contract).
    Report.Status = AllocStatus::Failed;
    Report.Error += std::string("; fallback failed: ") + E.what();
  }
}

} // namespace

ServiceResult CompileService::compile(const std::string &Source,
                                      const RequestOptions &Opts) {
  Requests.fetch_add(1, std::memory_order_relaxed);
  ServiceResult Res;

  // The request's cancel token: armed from deadline_ms, parented by the
  // server's drain token. Every stack below (cache replay loop, pool tasks,
  // allocator round boundaries) checks this one object; it outlives all of
  // them because the task barrier completes before this frame returns.
  CancelToken Token(Opts.DeadlineMs > 0 ? Deadline::afterMs(Opts.DeadlineMs)
                                        : Deadline(),
                    Config.StopToken);

  // Folds the abort into a stable status. Deadline expiry wins over drain
  // cancellation (both may be true); the response never carries partial
  // output — and, critically, an aborted request has inserted nothing into
  // the cache, so wall-clock races cannot perturb deterministic cache
  // state.
  auto aborted = [&] {
    bool DeadlineHit = Token.expired();
    Res.Ok = false;
    Res.Status = DeadlineHit ? ServiceStatus::DeadlineExceeded
                             : ServiceStatus::Cancelled;
    Res.Errors = DeadlineHit
                     ? "deadline of " + std::to_string(Opts.DeadlineMs) +
                           "ms exceeded (" +
                           std::to_string(Res.Functions.size()) +
                           " function(s) in request)"
                     : "request cancelled (server drain)";
    (DeadlineHit ? DeadlineExceededCount : CancelledCount)
        .fetch_add(1, std::memory_order_relaxed);
    Res.Prog.reset();
  };

  // Frontend + lowering, unallocated (AllocatorKind::None short-circuits
  // the allocation driver). This path inherits the crash-free contract:
  // hostile sources come back as diagnostics, never exceptions.
  CompileOptions CO;
  CO.Allocator = AllocatorKind::None;
  CO.Granularity = Opts.Granularity;
  CO.Copies = Opts.Copies;
  CompileResult CR = compileMiniC(Source, CO);
  if (!CR.ok()) {
    Res.Errors = CR.Errors;
    Res.Status = ServiceStatus::CompileError;
    return Res;
  }
  if (Token.stopRequested()) {
    aborted();
    return Res;
  }
  Res.Prog = std::move(CR.Prog);
  IlocProgram &Prog = *Res.Prog;
  const unsigned N = static_cast<unsigned>(Prog.functions().size());
  Res.Functions.resize(N);

  AllocOptions AO;
  AO.K = Opts.K;
  AO.Cancel = &Token;

  // Phase 1 (inline): fingerprint every function and replay cache hits.
  // Hits swap a clone of the stored allocated body into the program slot.
  std::vector<AllocStats> SlotStats(N);
  std::vector<unsigned> Misses;
  if (Opts.Allocator != AllocatorKind::None) {
    for (unsigned I = 0; I != N; ++I) {
      if (Token.stopRequested()) {
        aborted();
        return Res;
      }
      IlocFunction *F = Prog.functions()[I].get();
      FunctionReport &R = Res.Functions[I];
      R.Name = F->name();
      R.Fingerprint = fingerprintFunction(*F, Opts.Allocator, AO);
      CachedAllocation Hit = Cache.lookup(R.Fingerprint);
      if (Hit.Body) {
        R.CacheHit = true;
        R.Status = Hit.Outcome.Status;
        R.Error = Hit.Outcome.Error;
        SlotStats[I] = Hit.Outcome.Stats;
        Prog.replaceFunction(I, std::move(Hit.Body));
      } else {
        Misses.push_back(I);
      }
    }

    // Phase 2 (parallel): allocate the misses on the shard pool. One
    // request's misses share an affinity hint so they land on one shard;
    // idle shards steal them back when the batch is skewed. The calling
    // thread is never a pool worker, so waiting here cannot deadlock. The
    // barrier ALWAYS completes: queued tasks whose token already stopped
    // are skipped by the pool, and running allocations abort at their next
    // round boundary — a deadline can cost one round, never a wedged shard.
    size_t Hint = NextShardHint.fetch_add(1, std::memory_order_relaxed);
    if (!Misses.empty()) {
      TaskGroup Group;
      Group.expect(Misses.size());
      for (unsigned I : Misses)
        Pool.submit(Hint, [this, &Prog, I, &Opts, AO, &Res, &SlotStats] {
          if (chaosFires(FaultSite::WorkerStall)) {
            ChaosInjectedCount.fetch_add(1, std::memory_order_relaxed);
            stallIgnoringToken(Config.ChaosStallMs);
          }
          allocateSlot(Prog, I, Opts.Allocator, AO, Res.Functions[I],
                       SlotStats[I]);
        }, &Group, &Token);
      Group.wait();
    }
    if (Token.stopRequested()) {
      aborted();
      return Res;
    }

    // Phase 3 (inline, function order): insert the fresh allocations into
    // the cache *after* the barrier so LRU order — and therefore eviction —
    // is a function of the request sequence alone, not thread scheduling.
    // The cache-insert chaos site drops the insert (a contained fault: the
    // function simply misses again next time); it never corrupts state.
    for (unsigned I : Misses) {
      FunctionReport &R = Res.Functions[I];
      if (R.Status == AllocStatus::Failed)
        continue; // nothing replayable
      if (chaosFires(FaultSite::CacheInsert)) {
        ChaosInjectedCount.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      AllocOutcome Out;
      Out.Function = R.Name;
      Out.Status = R.Status;
      Out.Error = R.Error;
      Out.Stats = SlotStats[I];
      Cache.insert(R.Fingerprint, *Prog.functions()[I], Out);
      // Journal the insertion so a restarted server replays it. Same
      // function-order discipline as the cache insert itself; a degraded
      // store makes this a no-op and the server keeps serving in-memory.
      if (Store)
        Store->append(R.Fingerprint, *Prog.functions()[I], Out);
    }
  } else {
    for (unsigned I = 0; I != N; ++I)
      Res.Functions[I].Name = Prog.functions()[I]->name();
  }

  for (unsigned I = 0; I != N; ++I) {
    Res.Alloc.accumulate(SlotStats[I]);
    if (Opts.Allocator != AllocatorKind::None) {
      Res.CacheHits += Res.Functions[I].CacheHit;
      Res.CacheMisses += !Res.Functions[I].CacheHit;
    }
  }
  Res.OutputHash = hashProgramOutput(Prog);
  Res.Ok = true;
  Res.Status = ServiceStatus::Ok;

  if (Opts.Run) {
    if (Token.stopRequested()) {
      aborted();
      return Res;
    }
    Interpreter Interp(Prog);
    Res.Exec = Interp.run("main", Opts.Fuel);
  }
  return Res;
}

ServiceCounters CompileService::counters() const {
  ServiceCounters C;
  CacheCounters CC = Cache.counters();
  C.Requests = Requests.load(std::memory_order_relaxed);
  C.CacheHits = CC.Hits;
  C.CacheMisses = CC.Misses;
  C.FunctionsCompiled = CC.Hits + CC.Misses;
  C.CacheBytes = CC.Bytes;
  C.CacheEvictions = CC.Evictions;
  C.QueueDepthMax = Pool.queueDepthMax();
  C.TasksStolen = Pool.tasksStolen();
  C.DeadlineExceeded = DeadlineExceededCount.load(std::memory_order_relaxed);
  C.Cancelled = CancelledCount.load(std::memory_order_relaxed);
  C.WatchdogTrips = Pool.watchdogTrips();
  C.ShardsDegraded = Pool.shardsDegraded();
  C.ChaosInjected = ChaosInjectedCount.load(std::memory_order_relaxed);
  if (Store) {
    CacheStoreCounters SC = Store->counters();
    C.PersistEnabled = true;
    C.SnapshotLoaded = SC.SnapshotLoaded;
    C.JournalFramesReplayed = SC.FramesReplayed;
    C.TornTailDropped = SC.TornTailBytes;
    C.StoreInvalidations = SC.Invalidations;
    C.JournalAppends = SC.Appends;
    C.Compactions = SC.Compactions;
    C.StoreDegraded = SC.Degraded;
    C.Restarts = Config.Restarts;
  }
  return C;
}
