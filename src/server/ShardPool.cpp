//===- server/ShardPool.cpp - Work-stealing allocation shards ---------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "server/ShardPool.h"

#include <chrono>

using namespace rap;
using namespace rap::server;

ShardPool::ShardPool(unsigned NumShards) {
  if (NumShards == 0)
    NumShards = 1;
  Shards.reserve(NumShards);
  for (unsigned I = 0; I != NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  Workers.reserve(NumShards);
  for (unsigned I = 0; I != NumShards; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> Lock(SleepM);
    Stopping = true;
  }
  SleepCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ShardPool::submit(size_t Hint, Task T, TaskGroup *Group) {
  Shard &S = *Shards[Hint % Shards.size()];
  {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Q.emplace_back(std::move(T), Group);
    if (S.Q.size() > S.DepthMax)
      S.DepthMax = S.Q.size();
  }
  SleepCV.notify_one();
}

bool ShardPool::takeOwn(unsigned Self, std::pair<Task, TaskGroup *> &Out) {
  Shard &S = *Shards[Self];
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Q.empty())
    return false;
  Out = std::move(S.Q.front()); // owner drains FIFO
  S.Q.pop_front();
  return true;
}

bool ShardPool::stealFrom(unsigned Victim, std::pair<Task, TaskGroup *> &Out) {
  Shard &S = *Shards[Victim];
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Q.empty())
    return false;
  Out = std::move(S.Q.back()); // thieves take the opposite end
  S.Q.pop_back();
  return true;
}

void ShardPool::workerLoop(unsigned Self) {
  const unsigned N = static_cast<unsigned>(Shards.size());
  std::pair<Task, TaskGroup *> Item;
  while (true) {
    bool Got = takeOwn(Self, Item);
    bool Stole = false;
    if (!Got) {
      // Scan siblings round-robin starting after ourselves so thieves
      // spread over victims instead of mobbing shard 0.
      for (unsigned D = 1; D != N && !Got; ++D) {
        Got = stealFrom((Self + D) % N, Item);
        Stole = Got;
      }
    }
    if (Got) {
      try {
        Item.first();
      } catch (...) {
        // Tasks own their failures (the service catches per function); a
        // leak here must not take down the worker or hang the barrier.
      }
      if (Item.second)
        Item.second->done();
      Item.first = nullptr;
      {
        std::lock_guard<std::mutex> Lock(StatsM);
        ++Run;
        Stolen += Stole;
      }
      continue;
    }
    // Nothing anywhere: park until a submit or shutdown. Re-check the
    // deques under the sleep lock via predicate re-poll (a submit between
    // our scan and the wait would otherwise be missed — notify_one with no
    // waiter is lost, so the predicate must look at queue state).
    std::unique_lock<std::mutex> Lock(SleepM);
    if (Stopping)
      return;
    SleepCV.wait_for(Lock, std::chrono::milliseconds(10), [&] {
      if (Stopping)
        return true;
      for (const auto &S : Shards) {
        std::lock_guard<std::mutex> QL(S->M);
        if (!S->Q.empty())
          return true;
      }
      return false;
    });
    if (Stopping)
      return;
  }
}

uint64_t ShardPool::queueDepthMax() const {
  uint64_t Max = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    if (S->DepthMax > Max)
      Max = S->DepthMax;
  }
  return Max;
}

uint64_t ShardPool::tasksStolen() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return Stolen;
}

uint64_t ShardPool::tasksRun() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return Run;
}
