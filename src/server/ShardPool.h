//===- server/ShardPool.h - Work-stealing allocation shards -----*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile server's execution substrate: N shards, each a worker thread
/// with its own task deque. Producers place tasks on a shard chosen by an
/// affinity hint (requests keep their functions together for locality);
/// a worker drains its own deque FIFO and, when empty, steals from the
/// *back* of a sibling's deque — the classic split that keeps owners and
/// thieves off the same end. Stealing is what keeps a batch with skewed
/// shard assignment (one huge request, many idle shards) at full
/// utilization.
///
/// Determinism: the pool schedules, it does not order results. Callers
/// write each task's output into a pre-assigned slot (function index,
/// request index) and fold slots in index order after waiting — the same
/// discipline allocateProgramChecked established — so any interleaving
/// produces identical output. TaskGroup provides the wait barrier.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SERVER_SHARDPOOL_H
#define RAP_SERVER_SHARDPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace rap {
namespace server {

/// Countdown latch for one batch of pool tasks: the submitter registers
/// each task, workers signal completion, wait() blocks until all are done.
/// Submitting threads are never pool workers (the service orchestrates from
/// the connection/bench thread), so waiting cannot deadlock the pool.
class TaskGroup {
public:
  void expect(size_t N = 1) {
    std::lock_guard<std::mutex> Lock(M);
    Pending += N;
  }
  void done() {
    std::lock_guard<std::mutex> Lock(M);
    if (--Pending == 0)
      CV.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Pending == 0; });
  }

private:
  std::mutex M;
  std::condition_variable CV;
  size_t Pending = 0;
};

class ShardPool {
public:
  using Task = std::function<void()>;

  /// Spawns \p NumShards workers (at least 1). Shard count is the server's
  /// --shards knob; the deterministic-output contract holds at any value.
  explicit ShardPool(unsigned NumShards);
  ~ShardPool();

  ShardPool(const ShardPool &) = delete;
  ShardPool &operator=(const ShardPool &) = delete;

  /// Enqueues \p T on shard `Hint % shards()` and wakes a worker. When
  /// \p Group is given it must have been expect()ed already; the pool calls
  /// done() after the task runs (even if it throws — tasks are expected to
  /// contain their own failures, but a throw must not hang the barrier).
  void submit(size_t Hint, Task T, TaskGroup *Group = nullptr);

  unsigned shards() const { return static_cast<unsigned>(Shards.size()); }

  /// High-water mark of any single shard's queue depth (telemetry).
  uint64_t queueDepthMax() const;
  /// Tasks executed by a worker that did not own their shard (telemetry;
  /// proves stealing actually happens under skewed load).
  uint64_t tasksStolen() const;
  uint64_t tasksRun() const;

private:
  struct Shard {
    std::mutex M;
    std::deque<std::pair<Task, TaskGroup *>> Q;
    uint64_t DepthMax = 0;
  };

  void workerLoop(unsigned Self);
  bool takeOwn(unsigned Self, std::pair<Task, TaskGroup *> &Out);
  bool stealFrom(unsigned Victim, std::pair<Task, TaskGroup *> &Out);

  std::vector<std::unique_ptr<Shard>> Shards;
  std::vector<std::thread> Workers;

  // One pool-wide sleep channel: workers park here when every deque is
  // empty. Simpler than per-shard wakeups and plenty for the server's
  // task granularity (one task = one function allocation).
  std::mutex SleepM;
  std::condition_variable SleepCV;
  bool Stopping = false;

  mutable std::mutex StatsM;
  uint64_t Stolen = 0;
  uint64_t Run = 0;
};

} // namespace server
} // namespace rap

#endif // RAP_SERVER_SHARDPOOL_H
