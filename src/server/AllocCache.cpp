//===- server/AllocCache.cpp - Content-hash allocation cache ----------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "server/AllocCache.h"

#include "ir/Clone.h"
#include "pdg/Dot.h"
#include "support/Hash.h"

using namespace rap;
using namespace rap::server;

uint64_t server::fingerprintFunction(const IlocFunction &F,
                                     AllocatorKind Kind,
                                     const AllocOptions &Options) {
  Hasher H;
  // The lowered code. F.str() linearizes the body with labels, register
  // numbers, spill slots, global addresses, and callee indices — everything
  // the allocators read from the instruction stream. Callee indices (not
  // names) are deliberate: a module edit that renumbers callees changes the
  // caller's text and correctly misses.
  H.str(F.str());
  // RAP walks the PDG region tree, not the linear stream; two bodies with
  // equal text but different tree shapes could allocate differently, so the
  // tree rendering joins the fingerprint.
  H.str(regionTreeToText(F));
  // Namespace sizes (newVReg/newLabel/newSpillSlot start points matter for
  // the rewrite's fresh-name choices).
  H.u32(F.numParams());
  H.u32(F.numVRegs());
  H.u32(static_cast<uint32_t>(F.numLabels()));
  H.u32(static_cast<uint32_t>(F.numSpillSlots()));
  H.u32(static_cast<uint32_t>(F.returnType()));
  // The allocation request: everything in AllocOptions that can change the
  // produced code or the reported outcome. Threads is excluded on purpose
  // (per-function allocation is thread-count invariant); telemetry sinks
  // and resource guards are excluded because the server runs without them.
  H.u32(static_cast<uint32_t>(Kind));
  H.u32(Options.K);
  H.boolean(Options.SpillMovement);
  H.boolean(Options.Peephole);
  H.boolean(Options.GlobalCleanup);
  H.boolean(Options.PeepholeForGra);
  H.boolean(Options.Coalesce);
  H.boolean(Options.VerifyAssignments);
  return H.value();
}

size_t server::estimateFunctionBytes(const IlocFunction &F) {
  // Deterministic size model: arena instruction + node footprint plus the
  // fixed container overhead. A clone renumbers ids densely, so
  // numInstrIds() equals the live instruction count.
  size_t Instrs = 0;
  size_t Operands = 0;
  if (F.root())
    F.root()->forEachInstr([&](Instr *I) {
      ++Instrs;
      Operands += I->Src.size();
    });
  (void)F;
  return 256 + F.name().size() + Instrs * sizeof(Instr) +
         Operands * sizeof(Reg) + static_cast<size_t>(F.numVRegs()) * 4;
}

CachedAllocation AllocCache::lookup(uint64_t Key) {
  CachedAllocation Out;
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Stats.Misses;
    return Out;
  }
  ++Stats.Hits;
  Lru.splice(Lru.begin(), Lru, It->second); // bump to most-recent
  Out.Body = cloneFunction(*It->second->Body);
  Out.Outcome = It->second->Outcome;
  return Out;
}

void AllocCache::insert(uint64_t Key, const IlocFunction &Allocated,
                        const AllocOutcome &Outcome) {
  if (Budget == 0)
    return; // caching disabled: the cold-path baseline
  size_t Bytes = estimateFunctionBytes(Allocated);
  std::lock_guard<std::mutex> Lock(M);
  if (Bytes > Budget)
    return; // larger than the whole cache: not worth evicting everything
  auto It = Index.find(Key);
  if (It != Index.end()) {
    // Same fingerprint => same deterministic result; refresh recency and
    // replace the stored body (keeps the bytes ledger exact).
    Stats.Bytes -= It->second->Bytes;
    Lru.splice(Lru.begin(), Lru, It->second);
    It->second->Body = cloneFunction(Allocated);
    It->second->Outcome = Outcome;
    It->second->Bytes = Bytes;
    Stats.Bytes += Bytes;
    evictToBudgetLocked();
    return;
  }
  Entry E;
  E.Key = Key;
  E.Body = cloneFunction(Allocated);
  E.Outcome = Outcome;
  E.Bytes = Bytes;
  Lru.push_front(std::move(E));
  Index[Key] = Lru.begin();
  Stats.Bytes += Bytes;
  ++Stats.Entries;
  ++Stats.Insertions;
  evictToBudgetLocked();
}

void AllocCache::evictToBudgetLocked() {
  while (Stats.Bytes > Budget && !Lru.empty()) {
    Entry &Victim = Lru.back();
    Stats.Bytes -= Victim.Bytes;
    --Stats.Entries;
    ++Stats.Evictions;
    Index.erase(Victim.Key);
    Lru.pop_back();
  }
}

CacheCounters AllocCache::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stats;
}
