//===- server/rapd.cpp - Persistent compile server driver -------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// rapd: the persistent compile service (DESIGN.md §12-13, §15). Speaks the
/// rapd-v1 newline-delimited JSON protocol on stdin/stdout (default) or a
/// Unix-domain socket, memoizes per-function allocations in a content-hash
/// cache, and fans cache misses out over a work-stealing shard pool.
///
///   rapd [options]
///     --socket=PATH           serve a unix-domain stream socket instead of
///                             stdin/stdout (one thread per connection)
///     --shards=N              work-stealing allocation workers (default 4)
///     --cache-bytes=N         allocation-cache budget in bytes (default
///                             256MiB; 0 disables caching — the cold path)
///     --cache-dir=PATH        persist the cache: replay PATH/snapshot.bin +
///                             PATH/journal.bin at startup, journal every
///                             insertion (DESIGN.md §15)
///     --journal-fsync=MODE    never|batch|always (default batch): when
///                             journal appends reach the platter; kill -9
///                             durability never needs more than the default
///     --compact-bytes=N       journal size that triggers a snapshot
///                             compaction (default 64MiB; 0 disables)
///     --max-inflight-bytes=N  admission budget: reject once this many
///                             request bytes are in flight (default 64MiB)
///     --max-line-bytes=N      longest accepted NDJSON line (default 8MiB;
///                             longer lines answer "bad-request")
///     --retry-after-ms=N      hint sent with "overloaded" rejections
///                             (default 50)
///     --drain-ms=N            grace window for in-flight requests after a
///                             shutdown request before they are cancelled
///                             (default 2000)
///     --chaos=PLAN            deterministic server-layer fault schedule
///                             (RAP_FAULT_INJECT syntax, sites
///                             parse|cache-insert|stall|shutdown|
///                             journal-write|snapshot-compact)
///     --no-hello              skip the {"rapd":"v1",...} startup banner
///     --stats[=text|json]     after serving ends, print a rap-stats-v1
///                             document with the aggregated allocation
///                             ledger and the "server" counter section
///                             (text -> stderr, json -> stdout)
///
///   Supervisor mode (crash recovery; DESIGN.md §15):
///     --supervise             fork/exec a child rapd with the same serving
///                             flags; restart it on crash (signal or exit 1)
///                             with exponential backoff + jitter. Clean
///                             exits (0), usage errors (2), and degraded
///                             drains (3) pass through without restart.
///     --pidfile=PATH          write the current child pid (tmp + rename)
///     --max-crashes=N         crash-loop bar (default 5): N crashes ...
///     --crash-window-s=S      ... within S seconds (default 30) exits the
///                             supervisor degraded with code 3
///     --backoff-ms=N          initial restart backoff (default 100)
///     --backoff-max-ms=N      backoff ceiling (default 5000)
///
/// The supervisor forwards SIGTERM/SIGINT to the child (one graceful drain,
/// then exit passthrough) and exports RAPD_RESTARTS to each child, which
/// surfaces it in the stats `recovery` block. SIGTERM and SIGINT in the
/// serving process start a graceful drain: admission stops, in-flight
/// requests get --drain-ms to finish, then the drain-kill token cancels
/// whatever remains (those requests answer "cancelled" — no response is
/// ever lost). Exit codes: 0 clean drain (EOF, "shutdown" op, or signal
/// with nothing left running), 1 transport/I-O failure, 2 usage error,
/// 3 the drain deadline passed with requests still in flight OR the
/// supervisor hit its crash-loop bar (served degraded — the same convention
/// as rapcc's degraded exit). Compile errors never change the exit code —
/// they are responses, not failures of the server.
///
//===----------------------------------------------------------------------===//

#include "driver/Report.h"
#include "server/Server.h"
#include "support/Env.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define RAP_HAVE_SUPERVISOR 1
#include <sys/wait.h>
#include <unistd.h>
#else
#define RAP_HAVE_SUPERVISOR 0
#endif

using namespace rap;
using namespace rap::server;

namespace {

/// The only thing a strict-ISO signal handler may write. The serve loops
/// poll it; the drain watcher turns it into a cooperative cancellation.
volatile std::sig_atomic_t StopFlag = 0;

void onStopSignal(int) { StopFlag = 1; }

/// Installed WITHOUT SA_RESTART on purpose: a signal must make blocked
/// reads (stdio getline, socket poll) return EINTR so the serve loops
/// re-check the flag instead of sleeping through the drain window. The
/// supervisor reuses the same flag: its blocking waitpid must return EINTR
/// so the signal is forwarded to the child promptly.
void installStopHandlers() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onStopSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // no SA_RESTART
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
#else
  std::signal(SIGTERM, onStopSignal);
  std::signal(SIGINT, onStopSignal);
#endif
}

void usage() {
  std::fprintf(
      stderr,
      "usage: rapd [--socket=PATH] [--shards=N] [--cache-bytes=N]\n"
      "            [--cache-dir=PATH] [--journal-fsync=never|batch|always]\n"
      "            [--compact-bytes=N] [--max-inflight-bytes=N]\n"
      "            [--max-line-bytes=N] [--retry-after-ms=N] [--drain-ms=N]\n"
      "            [--chaos=PLAN] [--no-hello] [--stats[=text|json]]\n"
      "            [--supervise [--pidfile=PATH] [--max-crashes=N]\n"
      "             [--crash-window-s=S] [--backoff-ms=N]\n"
      "             [--backoff-max-ms=N]]\n"
      "exit codes: 0 clean drain, 1 transport failure, 2 usage,\n"
      "            3 drain deadline hit or supervisor crash loop\n");
}

bool parseSize(const char *S, size_t &Out) {
  char *End = nullptr;
  long long V = std::strtoll(S, &End, 10);
  if (End == S || *End != '\0' || V < 0)
    return false;
  Out = static_cast<size_t>(V);
  return true;
}

//===----------------------------------------------------------------------===//
// Supervisor mode (DESIGN.md §15): restart-on-crash with backoff, jitter,
// crash-loop detection, and clean SIGTERM passthrough for drains.
//===----------------------------------------------------------------------===//

struct SuperviseOptions {
  bool Enabled = false;
  std::string PidFile;
  unsigned MaxCrashes = 5;
  unsigned CrashWindowS = 30;
  unsigned BackoffMs = 100;
  unsigned BackoffMaxMs = 5000;
};

#if RAP_HAVE_SUPERVISOR

std::string selfExePath(const char *Argv0) {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N > 0) {
    Buf[N] = '\0';
    return Buf;
  }
  return Argv0; // macOS / exotic mounts: argv[0] was good enough to start us
}

/// tmp + rename so a reader never sees a half-written pid.
void writePidFile(const std::string &Path, pid_t Pid) {
  std::string Tmp = Path + ".tmp";
  if (FILE *F = std::fopen(Tmp.c_str(), "w")) {
    std::fprintf(F, "%d\n", static_cast<int>(Pid));
    std::fclose(F);
    if (std::rename(Tmp.c_str(), Path.c_str()) != 0)
      std::remove(Tmp.c_str());
  }
}

int supervise(const std::string &Exe, const std::vector<std::string> &Args,
              const SuperviseOptions &Opt) {
  installStopHandlers();
  // Jitter decorrelates a fleet of supervisors restarting after a shared
  // cause (deploy, OOM sweep); the serving path's determinism contract does
  // not extend to restart *timing*, so a nondeterministic seed is fine.
  std::mt19937_64 Rng(static_cast<uint64_t>(::getpid()) * 0x9E3779B97F4A7C15ull ^
                      static_cast<uint64_t>(
                          std::chrono::steady_clock::now()
                              .time_since_epoch()
                              .count()));
  std::deque<std::chrono::steady_clock::time_point> Crashes;
  uint64_t Restarts = 0;

  auto cleanup = [&] {
    if (!Opt.PidFile.empty())
      ::unlink(Opt.PidFile.c_str());
  };

  for (;;) {
    pid_t Pid = ::fork();
    if (Pid < 0) {
      std::perror("rapd: fork");
      cleanup();
      return 1;
    }
    if (Pid == 0) {
      // The child's recovery block reports how many restarts preceded it.
      ::setenv("RAPD_RESTARTS", std::to_string(Restarts).c_str(), 1);
      std::vector<char *> Argv;
      Argv.push_back(const_cast<char *>(Exe.c_str()));
      for (const std::string &A : Args)
        Argv.push_back(const_cast<char *>(A.c_str()));
      Argv.push_back(nullptr);
      ::execv(Exe.c_str(), Argv.data());
      std::perror("rapd: execv");
      _exit(127);
    }

    if (!Opt.PidFile.empty())
      writePidFile(Opt.PidFile, Pid);
    std::fprintf(stderr, "rapd[supervisor]: child %d serving (restarts=%llu)\n",
                 static_cast<int>(Pid),
                 static_cast<unsigned long long>(Restarts));

    // Wait, forwarding at most one graceful SIGTERM when the operator stops
    // the supervisor: the child drains (its own --drain-ms applies) and its
    // verdict passes through.
    int Status = 0;
    bool Forwarded = false;
    for (;;) {
      if (StopFlag && !Forwarded) {
        ::kill(Pid, SIGTERM);
        Forwarded = true;
      }
      pid_t R = ::waitpid(Pid, &Status, 0);
      if (R == Pid)
        break;
      if (R < 0 && errno == EINTR)
        continue; // a stop signal landed: forward it above
      if (R < 0) {
        std::perror("rapd: waitpid");
        cleanup();
        return 1;
      }
    }

    bool Signaled = WIFSIGNALED(Status);
    int Code = WIFEXITED(Status) ? WEXITSTATUS(Status) : 1;

    if (Forwarded || StopFlag) {
      // Operator-requested stop: the child's drain verdict is the answer.
      cleanup();
      return Signaled ? 1 : Code;
    }
    if (!Signaled && (Code == 0 || Code == 2 || Code == 3)) {
      // Deliberate exits, not crashes: clean EOF/shutdown drain (0), usage
      // error (2 — restarting can only loop), degraded drain (3). Pass
      // them through.
      cleanup();
      return Code;
    }

    // A crash: killed by a signal (SIGKILL, SIGSEGV, ...) or an abnormal
    // exit code. Slide the crash window, check the loop bar, back off.
    auto Now = std::chrono::steady_clock::now();
    Crashes.push_back(Now);
    while (!Crashes.empty() &&
           Now - Crashes.front() > std::chrono::seconds(Opt.CrashWindowS))
      Crashes.pop_front();
    if (Signaled)
      std::fprintf(stderr,
                   "rapd[supervisor]: child %d killed by signal %d "
                   "(crash %zu in %us window)\n",
                   static_cast<int>(Pid), WTERMSIG(Status), Crashes.size(),
                   Opt.CrashWindowS);
    else
      std::fprintf(stderr,
                   "rapd[supervisor]: child %d exited %d "
                   "(crash %zu in %us window)\n",
                   static_cast<int>(Pid), Code, Crashes.size(),
                   Opt.CrashWindowS);
    if (Crashes.size() >= Opt.MaxCrashes) {
      std::fprintf(stderr,
                   "rapd[supervisor]: crash loop (%u crashes within %us); "
                   "exiting degraded\n",
                   Opt.MaxCrashes, Opt.CrashWindowS);
      cleanup();
      return 3;
    }

    // Exponential backoff from the crash density in the window, plus up to
    // 25% jitter, capped. Interruptible: a stop during the backoff exits
    // cleanly instead of spawning a child just to kill it.
    unsigned Shift = std::min<size_t>(Crashes.size() - 1, 16);
    uint64_t Delay = std::min<uint64_t>(
        static_cast<uint64_t>(Opt.BackoffMs) << Shift, Opt.BackoffMaxMs);
    Delay += std::uniform_int_distribution<uint64_t>(0, Delay / 4 + 1)(Rng);
    auto End = Now + std::chrono::milliseconds(Delay);
    while (std::chrono::steady_clock::now() < End && !StopFlag)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (StopFlag) {
      cleanup();
      return 0;
    }
    Restarts += 1;
  }
}

#else // !RAP_HAVE_SUPERVISOR

int supervise(const std::string &, const std::vector<std::string> &,
              const SuperviseOptions &) {
  std::fprintf(stderr,
               "rapd: --supervise needs fork/exec (unsupported platform)\n");
  return 2;
}

#endif

} // namespace

int main(int argc, char **argv) {
  ServerConfig Config;
  std::string SocketPath;
  std::string StatsMode;
  SuperviseOptions Sup;
  // Args replayed to the supervised child: everything except the
  // supervisor-only flags (a child that re-supervised would fork forever).
  std::vector<std::string> ChildArgs;

  for (int I = 1; I != argc; ++I) {
    const char *Arg = argv[I];
    bool SupervisorOnly = true;
    if (std::strcmp(Arg, "--supervise") == 0) {
      Sup.Enabled = true;
    } else if (std::strncmp(Arg, "--pidfile=", 10) == 0) {
      Sup.PidFile = Arg + 10;
      if (Sup.PidFile.empty()) {
        std::fprintf(stderr, "rapd: --pidfile needs a path\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--max-crashes=", 14) == 0) {
      size_t N = 0;
      if (!parseSize(Arg + 14, N) || N == 0) {
        std::fprintf(stderr, "rapd: --max-crashes needs a positive count\n");
        return 2;
      }
      Sup.MaxCrashes = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--crash-window-s=", 17) == 0) {
      size_t N = 0;
      if (!parseSize(Arg + 17, N) || N == 0) {
        std::fprintf(stderr, "rapd: --crash-window-s needs a positive count\n");
        return 2;
      }
      Sup.CrashWindowS = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--backoff-ms=", 13) == 0) {
      size_t N = 0;
      if (!parseSize(Arg + 13, N) || N == 0) {
        std::fprintf(stderr, "rapd: --backoff-ms needs a positive count\n");
        return 2;
      }
      Sup.BackoffMs = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--backoff-max-ms=", 17) == 0) {
      size_t N = 0;
      if (!parseSize(Arg + 17, N) || N == 0) {
        std::fprintf(stderr, "rapd: --backoff-max-ms needs a positive count\n");
        return 2;
      }
      Sup.BackoffMaxMs = static_cast<unsigned>(N);
    } else {
      SupervisorOnly = false;
    }
    if (SupervisorOnly)
      continue;
    ChildArgs.push_back(Arg);

    if (std::strncmp(Arg, "--socket=", 9) == 0) {
      SocketPath = Arg + 9;
      if (SocketPath.empty()) {
        std::fprintf(stderr, "rapd: --socket needs a path\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--shards=", 9) == 0) {
      size_t N = 0;
      if (!parseSize(Arg + 9, N) || N == 0) {
        std::fprintf(stderr, "rapd: --shards needs a positive count\n");
        return 2;
      }
      Config.Service.Shards = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--cache-bytes=", 14) == 0) {
      if (!parseSize(Arg + 14, Config.Service.CacheBytes)) {
        std::fprintf(stderr, "rapd: bad --cache-bytes value\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--cache-dir=", 12) == 0) {
      Config.Service.CacheDir = Arg + 12;
      if (Config.Service.CacheDir.empty()) {
        std::fprintf(stderr, "rapd: --cache-dir needs a path\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--journal-fsync=", 16) == 0) {
      if (!parseFsyncMode(Arg + 16, Config.Service.CacheFsync)) {
        std::fprintf(stderr,
                     "rapd: bad --journal-fsync mode '%s' (expected "
                     "never|batch|always)\n",
                     Arg + 16);
        return 2;
      }
    } else if (std::strncmp(Arg, "--compact-bytes=", 16) == 0) {
      if (!parseSize(Arg + 16, Config.Service.CacheCompactBytes)) {
        std::fprintf(stderr, "rapd: bad --compact-bytes value\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--max-inflight-bytes=", 21) == 0) {
      if (!parseSize(Arg + 21, Config.MaxInflightBytes) ||
          Config.MaxInflightBytes == 0) {
        std::fprintf(stderr, "rapd: bad --max-inflight-bytes value\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--max-line-bytes=", 17) == 0) {
      if (!parseSize(Arg + 17, Config.MaxLineBytes) ||
          Config.MaxLineBytes == 0) {
        std::fprintf(stderr, "rapd: bad --max-line-bytes value\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--retry-after-ms=", 17) == 0) {
      size_t N = 0;
      if (!parseSize(Arg + 17, N) || N == 0) {
        std::fprintf(stderr, "rapd: bad --retry-after-ms value\n");
        return 2;
      }
      Config.RetryAfterMs = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--drain-ms=", 11) == 0) {
      size_t N = 0;
      if (!parseSize(Arg + 11, N)) {
        std::fprintf(stderr, "rapd: bad --drain-ms value\n");
        return 2;
      }
      Config.DrainMs = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--chaos=", 8) == 0) {
      try {
        Config.Service.Chaos = FaultPlan::fromString(Arg + 8);
      } catch (const std::invalid_argument &E) {
        std::fprintf(stderr, "rapd: bad --chaos plan: %s\n", E.what());
        return 2;
      }
    } else if (std::strcmp(Arg, "--no-hello") == 0) {
      Config.Hello = false;
    } else if (std::strcmp(Arg, "--stats") == 0) {
      StatsMode = "text";
    } else if (std::strncmp(Arg, "--stats=", 8) == 0) {
      StatsMode = Arg + 8;
      if (StatsMode != "text" && StatsMode != "json") {
        std::fprintf(stderr, "rapd: unknown stats mode '%s'\n",
                     StatsMode.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "rapd: unknown option '%s'\n", Arg);
      usage();
      return 2;
    }
  }

  if (Sup.Enabled) {
#if RAP_HAVE_SUPERVISOR
    return supervise(selfExePath(argv[0]), ChildArgs, Sup);
#else
    return supervise(std::string(), ChildArgs, Sup);
#endif
  }

  // A supervised child learns its restart ordinal from the environment and
  // reports it through the stats `recovery` block.
  if (const std::optional<std::string> &R = env::get("RAPD_RESTARTS")) {
    char *End = nullptr;
    unsigned long long V = std::strtoull(R->c_str(), &End, 10);
    if (End != R->c_str() && *End == '\0')
      Config.Service.Restarts = V;
  }

  installStopHandlers();
  Config.StopFlag = &StopFlag;

  Server S(Config);
  int Code = SocketPath.empty() ? S.serveStdio(std::cin, std::cout)
                                : S.serveSocket(SocketPath);

  // Push pending batch-mode journal writes to the platter before exiting:
  // a clean drain should never rely on the kernel's writeback timing.
  if (CacheStore *Store = S.service().store())
    Store->flush();

  if (!StatsMode.empty()) {
    // The final report: the rap-stats-v1 document over everything served.
    // Options vary per request, so the allocator/k fields record the
    // server's defaults; the ledger and server counters are aggregates.
    CompileResult Summary;
    Summary.Alloc = S.totalAllocStats();
    ServiceCounters C = S.service().counters();
    ReportMeta Meta;
    Meta.Allocator = "rap";
    Meta.K = 5;
    Meta.Threads = S.service().shards();
    Meta.Server.Enabled = true;
    Meta.Server.CacheHits = C.CacheHits;
    Meta.Server.CacheMisses = C.CacheMisses;
    Meta.Server.CacheBytes = C.CacheBytes;
    Meta.Server.QueueDepthMax = C.QueueDepthMax;
    Meta.Server.RejectedRequests = S.rejectedRequests();
    Meta.Server.DeadlineExceeded = C.DeadlineExceeded;
    Meta.Server.Cancelled = C.Cancelled;
    Meta.Server.WatchdogTrips = C.WatchdogTrips;
    Meta.Server.DrainMs = S.config().DrainMs;
    Meta.Server.DrainDegraded = S.drainDegraded();
    Meta.Server.Recovery.Enabled = C.PersistEnabled;
    Meta.Server.Recovery.JournalFramesReplayed = C.JournalFramesReplayed;
    Meta.Server.Recovery.SnapshotLoaded = C.SnapshotLoaded;
    Meta.Server.Recovery.TornTailDropped = C.TornTailDropped;
    Meta.Server.Recovery.Restarts = C.Restarts;
    if (StatsMode == "json")
      std::printf("%s\n", statsJson(Summary, Meta).str(2).c_str());
    else
      std::fprintf(stderr, "%s", statsText(Summary, Meta).c_str());
  }
  return Code;
}
