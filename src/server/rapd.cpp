//===- server/rapd.cpp - Persistent compile server driver -------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// rapd: the persistent compile service (DESIGN.md §12-13). Speaks the
/// rapd-v1 newline-delimited JSON protocol on stdin/stdout (default) or a
/// Unix-domain socket, memoizes per-function allocations in a content-hash
/// cache, and fans cache misses out over a work-stealing shard pool.
///
///   rapd [options]
///     --socket=PATH           serve a unix-domain stream socket instead of
///                             stdin/stdout (one thread per connection)
///     --shards=N              work-stealing allocation workers (default 4)
///     --cache-bytes=N         allocation-cache budget in bytes (default
///                             256MiB; 0 disables caching — the cold path)
///     --max-inflight-bytes=N  admission budget: reject once this many
///                             request bytes are in flight (default 64MiB)
///     --max-line-bytes=N      longest accepted NDJSON line (default 8MiB;
///                             longer lines answer "bad-request")
///     --retry-after-ms=N      hint sent with "overloaded" rejections
///                             (default 50)
///     --drain-ms=N            grace window for in-flight requests after a
///                             shutdown request before they are cancelled
///                             (default 2000)
///     --chaos=PLAN            deterministic server-layer fault schedule
///                             (RAP_FAULT_INJECT syntax, sites
///                             parse|cache-insert|stall|shutdown)
///     --no-hello              skip the {"rapd":"v1",...} startup banner
///     --stats[=text|json]     after serving ends, print a rap-stats-v1
///                             document with the aggregated allocation
///                             ledger and the "server" counter section
///                             (text -> stderr, json -> stdout)
///
/// SIGTERM and SIGINT start a graceful drain: admission stops, in-flight
/// requests get --drain-ms to finish, then the drain-kill token cancels
/// whatever remains (those requests answer "cancelled" — no response is
/// ever lost). Exit codes: 0 clean drain (EOF, "shutdown" op, or signal
/// with nothing left running), 1 transport/I-O failure, 2 usage error,
/// 3 the drain deadline passed with requests still in flight (served
/// degraded — the same convention as rapcc's degraded exit). Compile
/// errors never change the exit code — they are responses, not failures
/// of the server.
///
//===----------------------------------------------------------------------===//

#include "driver/Report.h"
#include "server/Server.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

using namespace rap;
using namespace rap::server;

namespace {

/// The only thing a strict-ISO signal handler may write. The serve loops
/// poll it; the drain watcher turns it into a cooperative cancellation.
volatile std::sig_atomic_t StopFlag = 0;

void onStopSignal(int) { StopFlag = 1; }

/// Installed WITHOUT SA_RESTART on purpose: a signal must make blocked
/// reads (stdio getline, socket poll) return EINTR so the serve loops
/// re-check the flag instead of sleeping through the drain window.
void installStopHandlers() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onStopSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // no SA_RESTART
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
#else
  std::signal(SIGTERM, onStopSignal);
  std::signal(SIGINT, onStopSignal);
#endif
}

void usage() {
  std::fprintf(
      stderr,
      "usage: rapd [--socket=PATH] [--shards=N] [--cache-bytes=N]\n"
      "            [--max-inflight-bytes=N] [--max-line-bytes=N]\n"
      "            [--retry-after-ms=N] [--drain-ms=N] [--chaos=PLAN]\n"
      "            [--no-hello] [--stats[=text|json]]\n"
      "exit codes: 0 clean drain, 1 transport failure, 2 usage,\n"
      "            3 drain deadline hit (in-flight work cancelled)\n");
}

bool parseSize(const char *S, size_t &Out) {
  char *End = nullptr;
  long long V = std::strtoll(S, &End, 10);
  if (End == S || *End != '\0' || V < 0)
    return false;
  Out = static_cast<size_t>(V);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ServerConfig Config;
  std::string SocketPath;
  std::string StatsMode;

  for (int I = 1; I != argc; ++I) {
    const char *Arg = argv[I];
    if (std::strncmp(Arg, "--socket=", 9) == 0) {
      SocketPath = Arg + 9;
      if (SocketPath.empty()) {
        std::fprintf(stderr, "rapd: --socket needs a path\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--shards=", 9) == 0) {
      size_t N = 0;
      if (!parseSize(Arg + 9, N) || N == 0) {
        std::fprintf(stderr, "rapd: --shards needs a positive count\n");
        return 2;
      }
      Config.Service.Shards = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--cache-bytes=", 14) == 0) {
      if (!parseSize(Arg + 14, Config.Service.CacheBytes)) {
        std::fprintf(stderr, "rapd: bad --cache-bytes value\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--max-inflight-bytes=", 21) == 0) {
      if (!parseSize(Arg + 21, Config.MaxInflightBytes) ||
          Config.MaxInflightBytes == 0) {
        std::fprintf(stderr, "rapd: bad --max-inflight-bytes value\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--max-line-bytes=", 17) == 0) {
      if (!parseSize(Arg + 17, Config.MaxLineBytes) ||
          Config.MaxLineBytes == 0) {
        std::fprintf(stderr, "rapd: bad --max-line-bytes value\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--retry-after-ms=", 17) == 0) {
      size_t N = 0;
      if (!parseSize(Arg + 17, N) || N == 0) {
        std::fprintf(stderr, "rapd: bad --retry-after-ms value\n");
        return 2;
      }
      Config.RetryAfterMs = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--drain-ms=", 11) == 0) {
      size_t N = 0;
      if (!parseSize(Arg + 11, N)) {
        std::fprintf(stderr, "rapd: bad --drain-ms value\n");
        return 2;
      }
      Config.DrainMs = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--chaos=", 8) == 0) {
      try {
        Config.Service.Chaos = FaultPlan::fromString(Arg + 8);
      } catch (const std::invalid_argument &E) {
        std::fprintf(stderr, "rapd: bad --chaos plan: %s\n", E.what());
        return 2;
      }
    } else if (std::strcmp(Arg, "--no-hello") == 0) {
      Config.Hello = false;
    } else if (std::strcmp(Arg, "--stats") == 0) {
      StatsMode = "text";
    } else if (std::strncmp(Arg, "--stats=", 8) == 0) {
      StatsMode = Arg + 8;
      if (StatsMode != "text" && StatsMode != "json") {
        std::fprintf(stderr, "rapd: unknown stats mode '%s'\n",
                     StatsMode.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "rapd: unknown option '%s'\n", Arg);
      usage();
      return 2;
    }
  }

  installStopHandlers();
  Config.StopFlag = &StopFlag;

  Server S(Config);
  int Code = SocketPath.empty() ? S.serveStdio(std::cin, std::cout)
                                : S.serveSocket(SocketPath);

  if (!StatsMode.empty()) {
    // The final report: the rap-stats-v1 document over everything served.
    // Options vary per request, so the allocator/k fields record the
    // server's defaults; the ledger and server counters are aggregates.
    CompileResult Summary;
    Summary.Alloc = S.totalAllocStats();
    ServiceCounters C = S.service().counters();
    ReportMeta Meta;
    Meta.Allocator = "rap";
    Meta.K = 5;
    Meta.Threads = S.service().shards();
    Meta.Server.Enabled = true;
    Meta.Server.CacheHits = C.CacheHits;
    Meta.Server.CacheMisses = C.CacheMisses;
    Meta.Server.CacheBytes = C.CacheBytes;
    Meta.Server.QueueDepthMax = C.QueueDepthMax;
    Meta.Server.RejectedRequests = S.rejectedRequests();
    Meta.Server.DeadlineExceeded = C.DeadlineExceeded;
    Meta.Server.Cancelled = C.Cancelled;
    Meta.Server.WatchdogTrips = C.WatchdogTrips;
    Meta.Server.DrainMs = S.config().DrainMs;
    Meta.Server.DrainDegraded = S.drainDegraded();
    if (StatsMode == "json")
      std::printf("%s\n", statsJson(Summary, Meta).str(2).c_str());
    else
      std::fprintf(stderr, "%s", statsText(Summary, Meta).c_str());
  }
  return Code;
}
