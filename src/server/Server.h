//===- server/Server.h - rapd serving loops ---------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer over CompileService + Protocol: a line-oriented
/// serving core (handleLine) plus two front ends — stdin/stdout NDJSON and
/// a Unix-domain stream socket with one serving thread per connection.
/// Both front ends share the service, the cache, the shard pool, and the
/// admission control:
///
///   * Backpressure. Admission charges each request line's bytes against
///     MaxInflightBytes before parsing; over budget, the line is answered
///     with kind "overloaded" + retry_after_ms and never reaches the
///     compiler. The charge is released when the response is written.
///     Bounded memory is part of the crash-free contract — a flood of
///     megabyte sources degrades to rejections, not OOM.
///   * Batches. A line carrying a JSON array is served as one admission
///     unit: responses come back as an array in request order.
///
/// Determinism: responses embed no timestamps or thread ids, so a request
/// trace replayed against any shard count yields byte-identical response
/// lines (the server_smoke script and ctest both assert this).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SERVER_SERVER_H
#define RAP_SERVER_SERVER_H

#include "server/CompileService.h"
#include "server/Protocol.h"

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

namespace rap {
namespace server {

struct ServerConfig {
  ServiceConfig Service;
  /// Admission budget: total request bytes being parsed/compiled at once.
  size_t MaxInflightBytes = 64u << 20;
  /// The retry hint sent with "overloaded" rejections.
  unsigned RetryAfterMs = 50;
  /// Print the {"rapd":"v1",...} banner before serving (both transports).
  bool Hello = true;
};

class Server {
public:
  explicit Server(const ServerConfig &Config);

  /// Serves NDJSON over \p In/\p Out until EOF or a shutdown op.
  /// Returns the process exit code (0 clean, 1 transport failure).
  int serveStdio(std::istream &In, std::ostream &Out);

  /// Binds \p Path (unlinking a stale socket first) and serves until a
  /// shutdown op arrives on any connection. One thread per connection.
  int serveSocket(const std::string &Path);

  /// One request line -> one response line (no trailing newline). Handles
  /// admission, batch splitting, parsing, and dispatch. Thread-safe.
  std::string handleLine(const std::string &Line);

  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_acquire);
  }

  CompileService &service() { return Service; }
  uint64_t rejectedRequests() const {
    return Rejected.load(std::memory_order_relaxed);
  }
  /// Allocation ledger aggregated over every request served (for the final
  /// rap-stats-v1 report).
  AllocStats totalAllocStats() const;
  const ServerConfig &config() const { return Config; }

private:
  json::Value dispatch(const json::Value &Parsed);

  ServerConfig Config;
  CompileService Service;
  std::atomic<uint64_t> Rejected{0};
  std::atomic<size_t> InflightBytes{0};
  std::atomic<bool> Shutdown{false};
  mutable std::mutex StatsM;
  AllocStats TotalAlloc;
};

} // namespace server
} // namespace rap

#endif // RAP_SERVER_SERVER_H
