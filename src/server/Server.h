//===- server/Server.h - rapd serving loops ---------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer over CompileService + Protocol: a line-oriented
/// serving core (handleLine) plus two front ends — stdin/stdout NDJSON and
/// a Unix-domain stream socket with one serving thread per connection.
/// Both front ends share the service, the cache, the shard pool, and the
/// admission control:
///
///   * Backpressure. Admission charges each request line's bytes against
///     MaxInflightBytes before parsing; over budget, the line is answered
///     with kind "overloaded" + retry_after_ms and never reaches the
///     compiler. The charge is released when the response is written.
///     Bounded memory is part of the crash-free contract — a flood of
///     megabyte sources degrades to rejections, not OOM.
///   * Line caps. A single line longer than MaxLineBytes is answered with a
///     stable "bad-request" (the socket reader truncates and discards the
///     excess, so a newline-less flood costs bounded memory too).
///   * Batches. A line carrying a JSON array is served as one admission
///     unit: responses come back as an array in request order.
///
/// Crash-only serving (DESIGN.md §13) adds graceful drain: a shutdown op,
/// SIGTERM, or SIGINT (the latter two via the StopFlag the rapd main
/// installs) stops both front ends from admitting new lines; in-flight
/// requests get DrainMs to finish, after which the drain watcher cancels
/// the DrainKill token — the parent of every request token — and every
/// remaining compilation aborts at its next cooperative check, answering
/// "cancelled". Every admitted line gets exactly one well-formed response,
/// drained or not. The serve loops return 0 on a clean drain and 3 when the
/// drain deadline had to cancel work (the degraded-exit convention rapcc
/// established).
///
/// Determinism: responses embed no timestamps or thread ids, so a request
/// trace replayed against any shard count yields byte-identical response
/// lines (the server_smoke script and ctest both assert this).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SERVER_SERVER_H
#define RAP_SERVER_SERVER_H

#include "server/CompileService.h"
#include "server/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

namespace rap {
namespace server {

struct ServerConfig {
  ServiceConfig Service;
  /// Admission budget: total request bytes being parsed/compiled at once.
  size_t MaxInflightBytes = 64u << 20;
  /// Longest single NDJSON line the server accepts; longer lines answer
  /// "bad-request" without being parsed (and without being buffered whole).
  size_t MaxLineBytes = 8u << 20;
  /// The retry hint sent with "overloaded" rejections.
  unsigned RetryAfterMs = 50;
  /// Grace window between a shutdown request and the drain-kill cancel of
  /// whatever is still in flight.
  unsigned DrainMs = 2000;
  /// Print the {"rapd":"v1",...} banner before serving (both transports).
  bool Hello = true;
  /// Signal-handler flag (rapd's SIGTERM/SIGINT handler flips it). The
  /// serve loops poll it via shutdownRequested(); null = protocol-only
  /// shutdown. volatile sig_atomic_t is the only type a strict-ISO signal
  /// handler may write, hence the odd pointer type.
  const volatile std::sig_atomic_t *StopFlag = nullptr;
};

class Server {
public:
  explicit Server(const ServerConfig &Config);

  /// Serves NDJSON over \p In/\p Out until EOF or a shutdown request.
  /// Returns the process exit code (0 clean drain, 1 transport failure,
  /// 3 drain deadline hit with work still in flight).
  int serveStdio(std::istream &In, std::ostream &Out);

  /// Binds \p Path and serves until a shutdown request. An existing socket
  /// at \p Path is probed first: unlinked and rebound only if dead
  /// (ECONNREFUSED); if a live server answers, this fails with a
  /// `socket-in-use` error and exit code 1 instead of hijacking it. One
  /// thread per connection; the accept and read loops poll at ~50ms so a
  /// drain is observed promptly. Same exit code contract as serveStdio.
  int serveSocket(const std::string &Path);

  /// One request line -> one response line (no trailing newline). Handles
  /// the line cap, admission, batch splitting, parsing, and dispatch.
  /// Thread-safe; never throws (internal failures answer "internal-error").
  std::string handleLine(const std::string &Line);

  /// Shutdown op received, or the installed signal flag flipped.
  bool shutdownRequested() const {
    if (Shutdown.load(std::memory_order_acquire))
      return true;
    return Config.StopFlag && *Config.StopFlag != 0;
  }

  /// True once the drain deadline passed with requests still in flight
  /// (the serve loop then exits 3).
  bool drainDegraded() const {
    return DrainDegradedFlag.load(std::memory_order_acquire);
  }

  CompileService &service() { return Service; }
  uint64_t rejectedRequests() const {
    return Rejected.load(std::memory_order_relaxed);
  }
  /// Allocation ledger aggregated over every request served (for the final
  /// rap-stats-v1 report).
  AllocStats totalAllocStats() const;
  const ServerConfig &config() const { return Config; }

private:
  json::Value dispatch(const json::Value &Parsed);
  /// Thread-safe countdown on the transport-layer chaos sites (parse /
  /// mid-request shutdown); shares the plan with the service's injector but
  /// counts its own sites.
  bool chaosFires(FaultSite S);
  /// Wires DrainKill in as the service's stop token (must run after
  /// DrainKill exists, hence the helper called from the init list).
  const ServiceConfig &patchedServiceConfig();

  /// The drain protocol, shared by both serve loops: a watcher thread
  /// sleeps until shutdownRequested(), gives in-flight requests DrainMs,
  /// then cancels DrainKill and marks the drain degraded. RAII-stopped.
  class DrainWatcher {
  public:
    explicit DrainWatcher(Server &S);
    ~DrainWatcher();

  private:
    void run();
    Server &S;
    std::thread T;
  };

  ServerConfig Config;
  /// Parent of every request token: cancelled exactly once, by the drain
  /// watcher, when the drain deadline passes. Declared before Service so
  /// its address is valid when the service config is patched.
  CancelToken DrainKill;
  CompileService Service;
  std::atomic<uint64_t> Rejected{0};
  std::atomic<size_t> InflightBytes{0};
  std::atomic<bool> Shutdown{false};
  std::atomic<unsigned> ActiveRequests{0};
  std::atomic<bool> DrainDegradedFlag{false};
  mutable std::mutex StatsM;
  AllocStats TotalAlloc;
  std::mutex ChaosM;
  FaultInjector Chaos;
  // Drain-watcher parking: the serve loop notifies on exit so the watcher
  // never outlives it.
  std::mutex WatcherM;
  std::condition_variable WatcherCV;
  bool WatcherExit = false;
};

} // namespace server
} // namespace rap

#endif // RAP_SERVER_SERVER_H
