//===- server/CompileService.h - Cached batched compilation -----*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile server's engine, independent of any transport: lower a MiniC
/// module, fingerprint each function's ILOC, replay cached allocations for
/// hits, fan cache misses out over the work-stealing shard pool, and fold
/// everything back in function order. rapd wraps this in the NDJSON
/// protocol; the load bench and the cache-correctness tests call it
/// directly.
///
/// Determinism contract (the acceptance bar): for a fixed request sequence
/// and fixed cache budget, the compiled output of every request — function
/// text, per-function outcomes, hit/miss classification — is byte-identical
/// at any shard count, and a warm response is byte-identical to what a cold
/// compile of the same source would produce. The pieces that make it hold:
///
///   * allocation per function is deterministic and independent,
///   * hits replay a clone whose linearized text equals the cold result,
///   * misses allocate on the pool but land in per-function slots,
///   * cache insertion happens after the barrier, in function order, so
///     LRU/eviction state evolves identically at any shard count.
///
/// Crash-only serving (DESIGN.md §13) threads a CancelToken through every
/// request: `deadline_ms` arms it, the server's drain token parents it, the
/// allocators check it at round boundaries, and an aborted request answers
/// with a stable `deadline-exceeded` / `cancelled` status. Aborted requests
/// never insert into the cache — wall-clock races must not perturb the
/// deterministic cache state that fault-free replays assert against.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SERVER_COMPILESERVICE_H
#define RAP_SERVER_COMPILESERVICE_H

#include "driver/Pipeline.h"
#include "server/AllocCache.h"
#include "server/CacheStore.h"
#include "support/ShardPool.h"
#include "support/Deadline.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rap {
namespace server {

/// Service-wide configuration (one per rapd process).
struct ServiceConfig {
  unsigned Shards = 4;                  ///< work-stealing workers
  size_t CacheBytes = 256u << 20;       ///< 0 = caching off (cold baseline)
  /// Server-wide stop signal (the drain-kill token): parented into every
  /// request token so one cancel() aborts all in-flight compilations at
  /// their next cooperative check. Null outside rapd.
  const CancelToken *StopToken = nullptr;
  /// Deterministic server-layer chaos schedule (sites cache-insert/stall);
  /// empty = the process-wide RAP_FAULT_INJECT plan, if any.
  FaultPlan Chaos;
  /// How long a `stall` chaos fault wedges a worker, ignoring its token
  /// (exercises the ShardPool watchdog).
  unsigned ChaosStallMs = 50;
  /// Watchdog tuning for the shard pool (Factor 0 disables).
  WatchdogConfig Watchdog;

  //===------------------------------------------------------------------===//
  // Durable cache persistence (DESIGN.md §15). Empty CacheDir = in-memory
  // only (the pre-PR behavior, byte for byte).
  //===------------------------------------------------------------------===//

  /// Directory for snapshot.bin/journal.bin; recovery replays both into the
  /// in-memory cache at construction and every later insertion is
  /// journaled. Ignored when CacheBytes == 0 (nothing to persist).
  std::string CacheDir;
  FsyncMode CacheFsync = FsyncMode::Batch;
  /// Journal size that triggers snapshot compaction (0 = never).
  size_t CacheCompactBytes = 64u << 20;
  /// Store fingerprint override for the invalidation tests; 0 = the real
  /// build fingerprint.
  uint64_t CacheFingerprint = 0;
  /// Supervised-restart count (rapd passes RAPD_RESTARTS through); purely
  /// informational, surfaced in the stats `recovery` block.
  uint64_t Restarts = 0;
};

/// Per-request compile options: the protocol's "options" object plus the
/// request-level `deadline_ms`.
struct RequestOptions {
  AllocatorKind Allocator = AllocatorKind::Rap;
  unsigned K = 5;
  RegionGranularity Granularity = RegionGranularity::PerStatement;
  CopyStyle Copies = CopyStyle::Naive;
  bool Run = false;              ///< execute main() and report counters
  uint64_t Fuel = 500'000'000;   ///< interpreter budget when Run
  /// End-to-end budget for this request in milliseconds; 0 = none. The
  /// deadline covers lowering, allocation (hits and misses), and execution;
  /// past it the request answers `deadline-exceeded`. Never fingerprinted —
  /// it does not steer allocation decisions.
  uint64_t DeadlineMs = 0;
};

/// How a request ended, beyond the per-function detail.
enum class ServiceStatus {
  Ok,               ///< compiled; Functions/OutputHash are meaningful
  CompileError,     ///< frontend diagnostics in Errors
  DeadlineExceeded, ///< the request's deadline_ms budget ran out
  Cancelled,        ///< the server drain (or an explicit cancel) aborted it
};

const char *serviceStatusName(ServiceStatus S);

/// One function's slice of a response.
struct FunctionReport {
  std::string Name;
  uint64_t Fingerprint = 0;
  bool CacheHit = false;
  AllocStatus Status = AllocStatus::Allocated;
  std::string Error; ///< degradation detail when Status == Fallback
};

/// One compiled request.
struct ServiceResult {
  bool Ok = false;
  ServiceStatus Status = ServiceStatus::CompileError;
  std::string Errors; ///< compile diagnostics when !Ok
  std::unique_ptr<IlocProgram> Prog;
  std::vector<FunctionReport> Functions;
  AllocStats Alloc;          ///< ledger aggregated in function order
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
  /// Stable hash over every function's allocated text, in program order —
  /// the warm-vs-cold byte-identity witness the protocol transmits.
  uint64_t OutputHash = 0;
  /// Filled when RequestOptions::Run: the interpreted execution.
  RunResult Exec;

  unsigned degraded() const {
    unsigned N = 0;
    for (const FunctionReport &F : Functions)
      N += F.Status != AllocStatus::Allocated;
    return N;
  }
};

/// Aggregate counters the server exports (rap-stats-v1 "server" section).
struct ServiceCounters {
  uint64_t Requests = 0;
  uint64_t FunctionsCompiled = 0; ///< hits + misses
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheBytes = 0;
  uint64_t CacheEvictions = 0;
  uint64_t QueueDepthMax = 0;
  uint64_t TasksStolen = 0;
  uint64_t DeadlineExceeded = 0; ///< requests that ran out of deadline_ms
  uint64_t Cancelled = 0;        ///< requests aborted by drain/cancel
  uint64_t WatchdogTrips = 0;    ///< workers caught overstaying N x deadline
  uint64_t ShardsDegraded = 0;   ///< shards currently wedged (watchdog view)
  uint64_t ChaosInjected = 0;    ///< contained server-layer chaos faults

  // Durable-cache recovery (meaningful only when PersistEnabled; the stats
  // `recovery` block is omitted otherwise).
  bool PersistEnabled = false;       ///< a CacheStore is attached
  bool SnapshotLoaded = false;       ///< snapshot.bin replayed at startup
  uint64_t JournalFramesReplayed = 0;///< entries recovered (snapshot+journal)
  uint64_t TornTailDropped = 0;      ///< bytes dropped past the last good frame
  uint64_t StoreInvalidations = 0;   ///< fingerprint-mismatch full wipes
  uint64_t JournalAppends = 0;       ///< entries journaled this process
  uint64_t Compactions = 0;          ///< snapshot rewrites this process
  bool StoreDegraded = false;        ///< persistence off after a fault
  uint64_t Restarts = 0;             ///< supervised restarts (RAPD_RESTARTS)
};

class CompileService {
public:
  explicit CompileService(const ServiceConfig &Config);

  /// Compiles one request. Thread-safe: concurrent callers share the cache
  /// and the pool; each gets its own program, slots, and cancel token.
  ServiceResult compile(const std::string &Source, const RequestOptions &Opts);

  ServiceCounters counters() const;
  unsigned shards() const { return Pool.shards(); }
  size_t cacheBudgetBytes() const { return Cache.budgetBytes(); }

  /// The durable cache store, if --cache-dir armed one (tests and the drain
  /// path poke it directly; null in in-memory-only mode).
  CacheStore *store() { return Store.get(); }

private:
  /// Thread-safe countdown on the service's chaos schedule (server sites
  /// fire from pool workers and the service thread alike).
  bool chaosFires(FaultSite S);

  ServiceConfig Config;
  AllocCache Cache;
  /// Durable mirror of Cache (null = in-memory only). Constructed after
  /// Cache and replayed in the constructor body, so warm state is visible
  /// before the first request.
  std::unique_ptr<CacheStore> Store;
  ShardPool Pool;
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> NextShardHint{0};
  std::atomic<uint64_t> DeadlineExceededCount{0};
  std::atomic<uint64_t> CancelledCount{0};
  std::atomic<uint64_t> ChaosInjectedCount{0};
  std::mutex ChaosM;
  FaultInjector Chaos;
};

/// Stable hash of a whole allocated program (function texts in order) —
/// shared by the service and the tests that recompute it cold.
uint64_t hashProgramOutput(const IlocProgram &Prog);

} // namespace server
} // namespace rap

#endif // RAP_SERVER_COMPILESERVICE_H
