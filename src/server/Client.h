//===- server/Client.h - Retrying rapd client -------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A rapd-v1 client that survives the server's crash-only lifecycle
/// (DESIGN.md §15): connect/request timeouts, retry with exponential
/// backoff, reconnect-and-resend across a supervised restart, and honored
/// "overloaded" retry_after_ms hints. The recovery soak and the rapc
/// operator tool both sit on it.
///
/// Exactly-once is a *client-visible* property here: call() returns exactly
/// one response per request, no matter how many times the transport had to
/// resend under the hood. Resending is safe because compilation is pure and
/// deterministic — a request fingerprint (hash of the request line) names
/// the same answer on every server that ever computes it, so a retry can
/// only ever observe the byte-identical response it missed. The client
/// validates the "id" echo on every response; a mismatch (a torn
/// half-response from a killed server, say) forces a reconnect-and-resend
/// rather than handing the caller someone else's answer.
///
/// The {"rapd":"v1",...} startup banner is detected structurally (an object
/// carrying a "rapd" key) and skipped wherever it appears, so the client
/// works against servers with and without --no-hello and across reconnects
/// mid-conversation.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SERVER_CLIENT_H
#define RAP_SERVER_CLIENT_H

#include "support/Json.h"

#include <cstdint>
#include <string>

namespace rap {
namespace server {

struct ClientConfig {
  /// Unix-domain socket path of the rapd to talk to.
  std::string SocketPath;
  /// Budget for one connect attempt. AF_UNIX connects fail fast; this
  /// mostly bounds the wait for a listener that exists but never accepts.
  unsigned ConnectTimeoutMs = 1000;
  /// Total wall-clock budget for one call(): send + wait + every retry,
  /// reconnect, and overloaded backoff inside it. 0 = no budget.
  unsigned RequestTimeoutMs = 30000;
  /// Resend attempts before a call gives up (reconnects and overloaded
  /// rejections both count). The supervisor's restart backoff caps at
  /// seconds, so the default rides out several crashes.
  unsigned MaxRetries = 50;
  /// Reconnect backoff: doubles per consecutive failure, capped.
  unsigned BackoffMs = 20;
  unsigned BackoffMaxMs = 1000;
};

/// Transport-level telemetry: how hard the client had to work. The soak
/// gates on Responses == Requests (exactly once) while Resends/Reconnects
/// tell the story of the crashes underneath.
struct ClientCounters {
  uint64_t Requests = 0;        ///< call() invocations
  uint64_t Responses = 0;       ///< calls that returned a response
  uint64_t Resends = 0;         ///< request lines sent beyond the first try
  uint64_t Reconnects = 0;      ///< sockets re-established mid-conversation
  uint64_t OverloadedWaits = 0; ///< retry_after_ms hints honored
  uint64_t BannersSkipped = 0;  ///< {"rapd":...} hellos consumed
};

class Client {
public:
  explicit Client(const ClientConfig &Config);
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Sends \p RequestLine (one NDJSON request, no trailing newline) and
  /// returns exactly one parsed response in \p Response. Retries
  /// transparently across overload rejections, timeouts, torn connections,
  /// and supervised server restarts. Returns false only when the retry or
  /// time budget is exhausted, with \p Error describing the last failure —
  /// protocol-level errors (kind "compile-error", "bad-request", ...) are
  /// *successful* calls whose response says ok:false.
  bool call(const std::string &RequestLine, json::Value &Response,
            std::string &Error);

  /// Convenience: serialize \p Request compactly and call().
  bool call(const json::Value &Request, json::Value &Response,
            std::string &Error);

  /// Stable fingerprint of a request line — the idempotency key under
  /// retries (equal lines name equal answers on a deterministic server).
  static uint64_t requestFingerprint(const std::string &RequestLine);

  bool connected() const { return Fd >= 0; }
  void close();
  const ClientCounters &counters() const { return Counters; }

private:
  /// Connects (with timeout) if not connected. False + Error on failure.
  bool ensureConnected(std::string &Error);
  /// Writes all of \p Data; false closes the socket.
  bool sendAll(const std::string &Data, std::string &Error);
  /// Reads one '\n'-terminated line within \p TimeoutMs; false closes the
  /// socket (a half-read line is useless — resend is the recovery).
  bool readLine(std::string &Line, int TimeoutMs, std::string &Error);

  ClientConfig Config;
  int Fd = -1;
  bool EverConnected = false; ///< distinguishes Reconnects from the first
  std::string RecvBuf;
  ClientCounters Counters;
};

} // namespace server
} // namespace rap

#endif // RAP_SERVER_CLIENT_H
