//===- server/Server.cpp - rapd serving loops -------------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <chrono>
#include <cstdio>
#include <istream>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define RAP_HAVE_UNIX_SOCKETS 1
#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define RAP_HAVE_UNIX_SOCKETS 0
#endif

using namespace rap;
using namespace rap::server;

const ServiceConfig &Server::patchedServiceConfig() {
  Config.Service.StopToken = &DrainKill;
  return Config.Service;
}

Server::Server(const ServerConfig &Config)
    : Config(Config), Service(patchedServiceConfig()),
      Chaos(this->Config.Service.Chaos.empty() ? envFaultPlan()
                                               : this->Config.Service.Chaos,
            std::string()) {}

AllocStats Server::totalAllocStats() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return TotalAlloc;
}

bool Server::chaosFires(FaultSite S) {
  std::lock_guard<std::mutex> Lock(ChaosM);
  return Chaos.fires(S);
}

//===----------------------------------------------------------------------===//
// Drain watcher
//===----------------------------------------------------------------------===//

Server::DrainWatcher::DrainWatcher(Server &S) : S(S) {
  T = std::thread([this] { run(); });
}

Server::DrainWatcher::~DrainWatcher() {
  {
    std::lock_guard<std::mutex> Lock(S.WatcherM);
    S.WatcherExit = true;
  }
  S.WatcherCV.notify_all();
  if (T.joinable())
    T.join();
  // Reset so a later serve*() call on the same Server gets a fresh watcher.
  std::lock_guard<std::mutex> Lock(S.WatcherM);
  S.WatcherExit = false;
}

void Server::DrainWatcher::run() {
  // Phase 1: park until the serve loop exits or a shutdown is requested.
  // The signal flag flips without a notify (handlers cannot notify), so the
  // wait polls at 20ms — plenty prompt against a DrainMs-scale window.
  {
    std::unique_lock<std::mutex> Lock(S.WatcherM);
    while (!S.WatcherExit && !S.shutdownRequested())
      S.WatcherCV.wait_for(Lock, std::chrono::milliseconds(20));
  }
  if (!S.shutdownRequested())
    return; // serve loop finished on its own (EOF): nothing to drain

  // Phase 2: the drain window. In-flight requests get DrainMs to finish;
  // new lines are no longer admitted (the serve loops check
  // shutdownRequested() before every read). If the window closes with work
  // still running, cancel the drain-kill token — every in-flight request
  // aborts at its next cooperative check and answers "cancelled" — and
  // mark the drain degraded so the serve loop exits 3.
  auto End = std::chrono::steady_clock::now() +
             std::chrono::milliseconds(S.Config.DrainMs);
  while (std::chrono::steady_clock::now() < End &&
         S.ActiveRequests.load(std::memory_order_acquire) > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  if (S.ActiveRequests.load(std::memory_order_acquire) > 0) {
    S.DrainDegradedFlag.store(true, std::memory_order_release);
    S.DrainKill.cancel();
  }
}

//===----------------------------------------------------------------------===//
// Serving core
//===----------------------------------------------------------------------===//

json::Value Server::dispatch(const json::Value &Parsed) {
  Request Req;
  std::string Error;
  if (!parseRequest(Parsed, Req, Error))
    return errorResponse(Req, "bad-request", Error);
  // Chaos site `parse`: a fault during request dispatch degrades to a
  // structured response — the client still gets exactly one well-formed
  // answer for the line, which is the invariant the soak harness asserts.
  if (chaosFires(FaultSite::ProtocolParse))
    return errorResponse(Req, "internal-error",
                         "fault injected at site 'parse'");
  // Chaos site `shutdown`: the stop flag flips mid-request, as if a signal
  // landed between parse and compile. This request still answers; the
  // serve loops stop admitting new lines afterwards and the drain begins.
  if (chaosFires(FaultSite::MidShutdown))
    Shutdown.store(true, std::memory_order_release);
  try {
    switch (Req.Op) {
    case RequestOp::Ping:
      return ackResponse(Req, "pong");
    case RequestOp::Shutdown:
      Shutdown.store(true, std::memory_order_release);
      return ackResponse(Req, "shutting-down");
    case RequestOp::Stats:
      return statsResponse(Req, Service.counters(),
                           Rejected.load(std::memory_order_relaxed),
                           Config.DrainMs);
    case RequestOp::Compile: {
      ServiceResult Res = Service.compile(Req.Source, Req.Options);
      if (Res.Status == ServiceStatus::DeadlineExceeded ||
          Res.Status == ServiceStatus::Cancelled)
        return errorResponse(Req, serviceStatusName(Res.Status), Res.Errors);
      if (Res.Ok) {
        std::lock_guard<std::mutex> Lock(StatsM);
        TotalAlloc.accumulate(Res.Alloc);
      }
      return compileResponse(Req, Res);
    }
    }
    return errorResponse(Req, "bad-request", "unreachable");
  } catch (const std::exception &E) {
    // The compile pipeline contains its own failures; anything that leaks
    // to here still becomes a structured response, never a dead connection.
    return errorResponse(Req, "internal-error",
                         std::string("uncaught: ") + E.what());
  }
}

std::string Server::handleLine(const std::string &Line) {
  // In-flight accounting for the drain watcher: a line is "admitted" the
  // moment a serve loop hands it to us, and owed exactly one response.
  struct ActiveScope {
    std::atomic<unsigned> &C;
    explicit ActiveScope(std::atomic<unsigned> &C) : C(C) {
      C.fetch_add(1, std::memory_order_acq_rel);
    }
    ~ActiveScope() { C.fetch_sub(1, std::memory_order_acq_rel); }
  } Scope(ActiveRequests);

  // The line cap answers before admission: an oversized line is a protocol
  // violation ("bad-request", permanent), not a load condition
  // ("overloaded", retry). The socket reader already truncated the line to
  // cap+1 bytes, so this check costs no unbounded buffering.
  if (Line.size() > Config.MaxLineBytes) {
    Rejected.fetch_add(1, std::memory_order_relaxed);
    Request Anon;
    return errorResponse(Anon, "bad-request",
                         "line of " + std::to_string(Line.size()) +
                             "+ bytes exceeds max-line-bytes (" +
                             std::to_string(Config.MaxLineBytes) + ")")
        .str();
  }

  // Admission control happens on raw bytes, before any parsing: a flood of
  // oversized lines costs the server one size check each, nothing more.
  size_t Charge = Line.size();
  size_t Current = InflightBytes.fetch_add(Charge, std::memory_order_acq_rel);
  if (Current + Charge > Config.MaxInflightBytes) {
    InflightBytes.fetch_sub(Charge, std::memory_order_acq_rel);
    Rejected.fetch_add(1, std::memory_order_relaxed);
    Request Anon;
    return overloadedResponse(Anon, Config.RetryAfterMs).str();
  }

  std::string Out;
  try {
    json::Value Parsed;
    std::string Error;
    if (!json::parse(Line, Parsed, &Error)) {
      Request Anon;
      Out = errorResponse(Anon, "bad-request", "unparseable JSON: " + Error)
                .str();
    } else if (Parsed.isArray()) {
      // Batch: one admission unit, responses in request order.
      json::Array Responses;
      for (const json::Value &Item : Parsed.asArray())
        Responses.push_back(dispatch(Item));
      Out = json::Value(std::move(Responses)).str();
    } else {
      Out = dispatch(Parsed).str();
    }
  } catch (const std::exception &E) {
    Request Anon;
    Out = errorResponse(Anon, "internal-error",
                        std::string("uncaught: ") + E.what())
              .str();
  }
  InflightBytes.fetch_sub(Charge, std::memory_order_acq_rel);
  return Out;
}

int Server::serveStdio(std::istream &In, std::ostream &Out) {
  int Code;
  {
    DrainWatcher Drain(*this);
    if (Config.Hello)
      Out << helloBanner(Service.shards(), Service.cacheBudgetBytes(),
                         Config.MaxInflightBytes)
                 .str()
          << "\n"
          << std::flush;
    std::string Line;
    // A signal mid-getline relies on rapd installing its handlers without
    // SA_RESTART: the blocked read returns EINTR, the stream fails, and
    // the loop re-checks the flag. A signal mid-handleLine is the drain
    // watcher's department.
    while (!shutdownRequested() && std::getline(In, Line)) {
      if (Line.empty())
        continue;
      Out << handleLine(Line) << "\n" << std::flush;
    }
    Code = Out.good() ? 0 : 1;
  } // joins the watcher: drainDegraded() is final past this point
  if (Code == 0 && drainDegraded())
    Code = 3;
  return Code;
}

#if RAP_HAVE_UNIX_SOCKETS

namespace {

/// Reads newline-delimited lines from \p Fd (no stdio buffering games: one
/// connection = one reader thread = one private buffer). poll()-based so a
/// drain is observed within one 50ms tick even on an idle connection, and
/// line-capped so a newline-less flood is truncated at Cap+1 bytes (enough
/// for the server's size check to answer bad-request) instead of buffered.
class LineReader {
public:
  LineReader(int Fd, size_t Cap) : Fd(Fd), Cap(Cap) {}

  /// Blocks until a full line is buffered, EOF (a final unterminated line
  /// is still delivered), or \p Stop returns true during an idle tick.
  template <typename StopFn> bool next(std::string &Line, StopFn &&Stop) {
    while (true) {
      size_t NL = Buf.find('\n');
      if (NL != std::string::npos) {
        Line.assign(Buf, 0, NL);
        Buf.erase(0, NL + 1);
        return true;
      }
      if (Eof) {
        if (Buf.empty())
          return false;
        Line.swap(Buf);
        Buf.clear();
        LineLen = 0;
        return true;
      }
      if (Stop())
        return false;
      pollfd P{};
      P.fd = Fd;
      P.events = POLLIN;
      int R = ::poll(&P, 1, 50);
      if (R == 0)
        continue; // timeout: re-check Stop
      if (R < 0) {
        if (errno == EINTR)
          continue;
        Eof = true;
        continue;
      }
      char Chunk[4096];
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        Eof = true;
        continue;
      }
      ingest(Chunk, static_cast<size_t>(N));
    }
  }

private:
  void ingest(const char *P, size_t N) {
    for (size_t I = 0; I != N; ++I) {
      char C = P[I];
      if (Discarding) {
        // Past the cap: drop bytes until the line ends. The kept Cap+1-byte
        // prefix is the oversize witness handleLine answers bad-request to.
        if (C == '\n') {
          Buf.push_back('\n');
          Discarding = false;
          LineLen = 0;
        }
        continue;
      }
      Buf.push_back(C);
      if (C == '\n')
        LineLen = 0;
      else if (++LineLen > Cap)
        Discarding = true;
    }
  }

  int Fd;
  size_t Cap;
  std::string Buf;
  size_t LineLen = 0; ///< bytes of the unterminated tail line in Buf
  bool Discarding = false;
  bool Eof = false;
};

bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false; // includes SO_SNDTIMEO expiry: a stuck client loses
                    // its connection, not the server a thread
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

int Server::serveSocket(const std::string &Path) {
  int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0) {
    std::perror("rapd: socket");
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "rapd: socket path too long: %s\n", Path.c_str());
    ::close(Listen);
    return 1;
  }
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Path.c_str());

  // Stale-socket handling: a leftover path from a crashed rapd must not
  // block restart, but blindly unlinking would hijack the clients of a
  // *live* server (two rapds racing for one path after a supervisor bug).
  // Probe first: if something answers the connect, refuse to start with a
  // stable machine-readable token; only a dead socket (ECONNREFUSED) is
  // unlinked and rebound.
  struct stat St;
  if (::lstat(Path.c_str(), &St) == 0) {
    if (!S_ISSOCK(St.st_mode)) {
      std::fprintf(stderr,
                   "rapd: error kind=socket-in-use path=%s: exists and is "
                   "not a socket; refusing to unlink\n",
                   Path.c_str());
      ::close(Listen);
      return 1;
    }
    int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Probe >= 0) {
      int R = ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                        sizeof(Addr));
      int Err = errno;
      ::close(Probe);
      if (R == 0) {
        std::fprintf(stderr,
                     "rapd: error kind=socket-in-use path=%s: a live server "
                     "is accepting on this socket; refusing to unlink\n",
                     Path.c_str());
        ::close(Listen);
        return 1;
      }
      if (Err != ECONNREFUSED && Err != ENOENT) {
        // EACCES, EPERM, ...: we can't prove it's dead; don't steal it.
        std::fprintf(stderr,
                     "rapd: error kind=socket-in-use path=%s: probe failed "
                     "(%s); refusing to unlink\n",
                     Path.c_str(), std::strerror(Err));
        ::close(Listen);
        return 1;
      }
    }
    ::unlink(Path.c_str()); // probed dead: a remnant of a crashed run
  }
  if (::bind(Listen, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Listen, 64) < 0) {
    std::perror("rapd: bind/listen");
    ::close(Listen);
    return 1;
  }

  {
    DrainWatcher Drain(*this);
    std::vector<std::thread> Connections;
    // poll()ed accept: a shutdown request (op, SIGTERM, SIGINT) stops
    // admission within one 50ms tick — no self-dial tricks needed.
    while (!shutdownRequested()) {
      pollfd P{};
      P.fd = Listen;
      P.events = POLLIN;
      int R = ::poll(&P, 1, 50);
      if (R <= 0)
        continue; // timeout or EINTR: re-check the shutdown flag
      int Conn = ::accept(Listen, nullptr, nullptr);
      if (Conn < 0)
        continue;
      // Bound writes so a client that stops reading cannot wedge its
      // serving thread past any drain deadline.
      timeval SendTimeout{};
      SendTimeout.tv_sec = 5;
      ::setsockopt(Conn, SOL_SOCKET, SO_SNDTIMEO, &SendTimeout,
                   sizeof(SendTimeout));
      Connections.emplace_back([this, Conn] {
        if (Config.Hello)
          writeAll(Conn, helloBanner(Service.shards(),
                                     Service.cacheBudgetBytes(),
                                     Config.MaxInflightBytes)
                                 .str() +
                             "\n");
        LineReader Reader(Conn, Config.MaxLineBytes);
        std::string Line;
        // Admission is the read: once the shutdown flag is up, no further
        // line is taken off this connection, but the line being served
        // right now finishes (or is cancelled by the drain watcher) and
        // its response is written — responses per connection form a
        // contiguous prefix of the requests sent.
        while (!shutdownRequested() &&
               Reader.next(Line, [this] { return shutdownRequested(); })) {
          if (Line.empty())
            continue;
          if (!writeAll(Conn, handleLine(Line) + "\n"))
            break;
        }
        ::close(Conn);
      });
    }
    ::close(Listen);
    ::unlink(Path.c_str());
    for (std::thread &T : Connections)
      T.join();
  } // joins the watcher: drainDegraded() is final past this point
  return drainDegraded() ? 3 : 0;
}

#else // !RAP_HAVE_UNIX_SOCKETS

int Server::serveSocket(const std::string &Path) {
  std::fprintf(stderr,
               "rapd: unix-domain sockets unsupported on this platform "
               "(asked for %s); use stdio mode\n",
               Path.c_str());
  return 1;
}

#endif
