//===- server/Server.cpp - rapd serving loops -------------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define RAP_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define RAP_HAVE_UNIX_SOCKETS 0
#endif

using namespace rap;
using namespace rap::server;

Server::Server(const ServerConfig &Config)
    : Config(Config), Service(Config.Service) {}

AllocStats Server::totalAllocStats() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return TotalAlloc;
}

json::Value Server::dispatch(const json::Value &Parsed) {
  Request Req;
  std::string Error;
  if (!parseRequest(Parsed, Req, Error))
    return errorResponse(Req, "bad-request", Error);
  switch (Req.Op) {
  case RequestOp::Ping:
    return ackResponse(Req, "pong");
  case RequestOp::Shutdown:
    Shutdown.store(true, std::memory_order_release);
    return ackResponse(Req, "shutting-down");
  case RequestOp::Stats:
    return statsResponse(Req, Service.counters(),
                         Rejected.load(std::memory_order_relaxed));
  case RequestOp::Compile: {
    ServiceResult Res = Service.compile(Req.Source, Req.Options);
    if (Res.Ok) {
      std::lock_guard<std::mutex> Lock(StatsM);
      TotalAlloc.accumulate(Res.Alloc);
    }
    return compileResponse(Req, Res);
  }
  }
  return errorResponse(Req, "bad-request", "unreachable");
}

std::string Server::handleLine(const std::string &Line) {
  // Admission control happens on raw bytes, before any parsing: a flood of
  // oversized lines costs the server one size check each, nothing more.
  size_t Charge = Line.size();
  size_t Current = InflightBytes.fetch_add(Charge, std::memory_order_acq_rel);
  if (Current + Charge > Config.MaxInflightBytes) {
    InflightBytes.fetch_sub(Charge, std::memory_order_acq_rel);
    Rejected.fetch_add(1, std::memory_order_relaxed);
    Request Anon;
    return overloadedResponse(Anon, Config.RetryAfterMs).str();
  }

  std::string Out;
  json::Value Parsed;
  std::string Error;
  if (!json::parse(Line, Parsed, &Error)) {
    Request Anon;
    Out = errorResponse(Anon, "bad-request", "unparseable JSON: " + Error)
              .str();
  } else if (Parsed.isArray()) {
    // Batch: one admission unit, responses in request order.
    json::Array Responses;
    for (const json::Value &Item : Parsed.asArray())
      Responses.push_back(dispatch(Item));
    Out = json::Value(std::move(Responses)).str();
  } else {
    Out = dispatch(Parsed).str();
  }
  InflightBytes.fetch_sub(Charge, std::memory_order_acq_rel);
  return Out;
}

int Server::serveStdio(std::istream &In, std::ostream &Out) {
  if (Config.Hello)
    Out << helloBanner(Service.shards(), Service.cacheBudgetBytes(),
                       Config.MaxInflightBytes)
               .str()
        << "\n"
        << std::flush;
  std::string Line;
  while (!shutdownRequested() && std::getline(In, Line)) {
    if (Line.empty())
      continue;
    Out << handleLine(Line) << "\n" << std::flush;
  }
  return Out.good() ? 0 : 1;
}

#if RAP_HAVE_UNIX_SOCKETS

namespace {

/// Reads newline-delimited lines from \p Fd (no stdio buffering games:
/// one connection = one reader thread = one private buffer).
class LineReader {
public:
  explicit LineReader(int Fd) : Fd(Fd) {}

  bool next(std::string &Line) {
    Line.clear();
    while (true) {
      size_t NL = Buf.find('\n');
      if (NL != std::string::npos) {
        Line = Buf.substr(0, NL);
        Buf.erase(0, NL + 1);
        return true;
      }
      char Chunk[4096];
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N <= 0) {
        if (Buf.empty())
          return false;
        Line.swap(Buf); // final unterminated line
        return true;
      }
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

private:
  int Fd;
  std::string Buf;
};

bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

int Server::serveSocket(const std::string &Path) {
  int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0) {
    std::perror("rapd: socket");
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "rapd: socket path too long: %s\n", Path.c_str());
    ::close(Listen);
    return 1;
  }
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Path.c_str());
  ::unlink(Path.c_str()); // stale socket from a previous run
  if (::bind(Listen, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Listen, 64) < 0) {
    std::perror("rapd: bind/listen");
    ::close(Listen);
    return 1;
  }

  std::vector<std::thread> Connections;
  while (!shutdownRequested()) {
    int Conn = ::accept(Listen, nullptr, nullptr);
    if (Conn < 0) {
      if (shutdownRequested())
        break;
      continue; // EINTR and friends: keep serving
    }
    Connections.emplace_back([this, Conn, Path] {
      if (Config.Hello)
        writeAll(Conn, helloBanner(Service.shards(),
                                   Service.cacheBudgetBytes(),
                                   Config.MaxInflightBytes)
                               .str() +
                           "\n");
      LineReader Reader(Conn);
      std::string Line;
      while (!shutdownRequested() && Reader.next(Line)) {
        if (Line.empty())
          continue;
        if (!writeAll(Conn, handleLine(Line) + "\n"))
          break;
      }
      ::close(Conn);
      // A shutdown op stops the accept loop, which is blocked in accept():
      // dial ourselves once to unblock it promptly. (Cheap and portable;
      // avoids poll/timeout plumbing.)
      if (shutdownRequested()) {
        int Poke = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (Poke >= 0) {
          sockaddr_un A{};
          A.sun_family = AF_UNIX;
          std::snprintf(A.sun_path, sizeof(A.sun_path), "%s", Path.c_str());
          ::connect(Poke, reinterpret_cast<sockaddr *>(&A), sizeof(A));
          ::close(Poke);
        }
      }
    });
    if (shutdownRequested())
      break;
  }
  ::close(Listen);
  ::unlink(Path.c_str());
  for (std::thread &T : Connections)
    T.join();
  return 0;
}

#else // !RAP_HAVE_UNIX_SOCKETS

int Server::serveSocket(const std::string &Path) {
  std::fprintf(stderr,
               "rapd: unix-domain sockets unsupported on this platform "
               "(asked for %s); use stdio mode\n",
               Path.c_str());
  return 1;
}

#endif
