//===- server/CacheStore.h - Durable allocation cache -----------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-durable persistence for the compile server's allocation cache
/// (DESIGN.md §15). Because allocation is a pure, deterministic function of
/// (lowered body, options), a cached result is a *fact* that can be written
/// to disk and replayed after a crash with correctness checkable by byte
/// identity — the warm==cold contract, extended across process lifetimes.
///
/// On-disk layout under `--cache-dir`:
///
///   snapshot.bin   header frame + one entry frame per key (compacted)
///   journal.bin    header frame + entry frames appended in insert order
///
/// Both files are streams of CRC32 frames (support/Journal.h). The header
/// frame carries a format version and a *store fingerprint* (build stamp +
/// option schema); a mismatch — rebuilt binary, changed entry format —
/// triggers clean full invalidation of both files, never a stale hit.
/// AllocOptions themselves are part of every entry *key* (fingerprint-
/// Function), so option changes miss naturally; the store fingerprint
/// guards against the same key meaning different bytes across binaries.
///
/// Recovery replays snapshot then journal, newest-wins per key, stopping at
/// the first torn/corrupt frame of each file (prefix semantics, never an
/// abort); every decoded body is verified against a stored hash of its
/// rendered text before it is trusted. Appends go through one unbuffered
/// ::write per entry, so a SIGKILL at any instant loses at most the entry
/// being written — the kernel page cache holds everything already written
/// regardless of fsync mode (fsync matters only for machine crashes).
/// When the journal outgrows the compaction threshold the store merges
/// snapshot+journal (last wins), writes snapshot.tmp, fsyncs, renames, and
/// truncates the journal — atomic-rename crash safety.
///
/// Any persistence failure (I/O error, or an injected `journal-write` /
/// `snapshot-compact` chaos fault) degrades the store to in-memory-only:
/// rapd keeps serving, nothing crashes, and the next restart simply
/// recovers the prefix that made it to disk.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SERVER_CACHESTORE_H
#define RAP_SERVER_CACHESTORE_H

#include "ir/IlocFunction.h"
#include "regalloc/AllocOutcome.h"
#include "regalloc/FaultInjection.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

namespace rap {
namespace server {

/// When journal appends reach the disk platter (they always reach the
/// kernel page cache immediately; see file comment).
enum class FsyncMode {
  Never,  ///< never fsync; fastest, kill-9-safe, machine-crash-lossy
  Batch,  ///< fsync every BatchAppends entries and on flush()
  Always, ///< fsync after every append
};

const char *fsyncModeName(FsyncMode M);
bool parseFsyncMode(const std::string &Text, FsyncMode &Out);

struct CacheStoreConfig {
  std::string Dir; ///< directory for snapshot.bin/journal.bin (created)
  FsyncMode Fsync = FsyncMode::Batch;
  /// Store fingerprint stamped into header frames; 0 means use
  /// CacheStore::buildFingerprint() (build stamp + entry-format version +
  /// option schema). Tests override it to exercise invalidation.
  uint64_t Fingerprint = 0;
  /// Journal size that triggers snapshot compaction (0 = never compact).
  size_t CompactBytes = 64u << 20;
  /// fsync cadence in Batch mode.
  unsigned BatchAppends = 64;
  /// Chaos probe for the `journal-write` / `snapshot-compact` fault sites;
  /// fires() means degrade to in-memory-only. Null = no chaos.
  std::function<bool(FaultSite)> Chaos;
};

/// Recovery/health counters, surfaced through the rap-stats-v1 `server`
/// section's `recovery` block.
struct CacheStoreCounters {
  bool SnapshotLoaded = false;    ///< snapshot.bin existed with a good header
  uint64_t FramesReplayed = 0;    ///< entry frames replayed (snapshot+journal)
  uint64_t TornTailBytes = 0;     ///< bytes dropped past the last good frame
  uint64_t BadEntriesDropped = 0; ///< CRC-valid frames that failed decode
  uint64_t Invalidations = 0;     ///< full wipes from a fingerprint mismatch
  uint64_t Appends = 0;           ///< entry frames appended this process
  uint64_t Compactions = 0;       ///< snapshot rewrites this process
  bool Degraded = false;          ///< persistence off after a fault/IO error
};

//===----------------------------------------------------------------------===//
// Entry codec (exposed for the torn-write property tests).
//===----------------------------------------------------------------------===//

/// Serializes one cache insertion: the key, the allocated body (a byte-
/// exact mirror of the cloneFunction traversal), the AllocOutcome that
/// produced it, and a hash of the body's rendered text as a replay witness.
std::string encodeCacheEntry(uint64_t Key, const IlocFunction &Body,
                             const AllocOutcome &Outcome);

struct DecodedCacheEntry {
  uint64_t Key = 0;
  std::unique_ptr<IlocFunction> Body;
  AllocOutcome Outcome;
};

/// Decodes an entry payload. Returns false — never throws, never reads out
/// of bounds — on any structural violation, including a body whose rendered
/// text does not hash to the stored witness.
bool decodeCacheEntry(const char *Data, size_t Size, DecodedCacheEntry &Out);

//===----------------------------------------------------------------------===//
// The store
//===----------------------------------------------------------------------===//

class CacheStore {
public:
  /// The default store fingerprint: entry-format version + build stamp +
  /// the option-schema summary. Changes whenever the binary is rebuilt, so
  /// a new build starts from a clean slate rather than trusting bytes an
  /// older allocator wrote.
  static uint64_t buildFingerprint();

  explicit CacheStore(CacheStoreConfig Config);
  ~CacheStore();

  CacheStore(const CacheStore &) = delete;
  CacheStore &operator=(const CacheStore &) = delete;

  using ReplaySink = std::function<void(
      uint64_t Key, std::unique_ptr<IlocFunction> Body,
      const AllocOutcome &Outcome)>;

  /// Recovers persisted state and opens the journal for appending: creates
  /// the directory, validates both headers (mismatch → wipe both files,
  /// count an invalidation), replays snapshot then journal through \p Sink
  /// (in file order, so a later journal frame for the same key wins by
  /// normal cache-replace semantics), truncates any torn journal tail, and
  /// leaves the journal fd positioned for appends. Returns false if the
  /// directory is unusable, in which case the store is degraded (append
  /// becomes a no-op) but the server keeps running in-memory-only.
  bool open(const ReplaySink &Sink);

  /// Durably records one cache insertion. Serializes, frames, and writes
  /// the entry with a single ::write; applies the fsync policy; triggers
  /// compaction past the threshold. No-op when degraded; degrades (never
  /// throws) on chaos fire or I/O error.
  void append(uint64_t Key, const IlocFunction &Body,
              const AllocOutcome &Outcome);

  /// Forces pending Batch-mode appends to the platter (drain path).
  void flush();

  /// Forces a snapshot compaction now (tests; also used internally).
  void compactNow();

  bool degraded() const;
  CacheStoreCounters counters() const;

  std::string snapshotPath() const;
  std::string journalPath() const;

private:
  bool chaosFires(FaultSite S);
  void degradeLocked();
  void compactLocked();
  void replayFile(const std::string &Path, const std::string &Data,
                  const ReplaySink &Sink, bool &SawBadEntry,
                  size_t &TrustedPrefix);

  CacheStoreConfig Config;
  mutable std::mutex M;
  int JournalFd = -1;
  size_t JournalBytes = 0;       ///< trusted journal size (header + entries)
  unsigned AppendsSinceSync = 0; ///< Batch-mode fsync countdown
  CacheStoreCounters Stats;
};

} // namespace server
} // namespace rap

#endif // RAP_SERVER_CACHESTORE_H
