//===- server/AllocCache.h - Content-hash allocation cache ------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile server's memoization layer: per-function allocation results
/// keyed by a content hash of the function's *lowered, unallocated* ILOC
/// plus every AllocOptions field that can change the allocator's decisions.
/// Allocation is a pure function of (body, options) — functions share no
/// mutable state and the allocators are deterministic — so a hit may replay
/// the stored result verbatim:
///
///   value = deep clone of the allocated body (cloneFunction preserves the
///           linearized code text exactly) + the AllocOutcome that produced
///           it (stats, status, error).
///
/// Hits hand back a fresh clone, never the stored body, so concurrent
/// requests and later mutation of the program cannot corrupt the cache.
/// The rewrite of a cached function is therefore bit-identical to a cold
/// compile — the invariant the warm-vs-cold determinism test enforces.
///
/// Eviction is LRU over an approximate byte budget. All bookkeeping is
/// under one mutex: the protected section is pointer splicing plus a hash
/// lookup, orders of magnitude cheaper than the graph coloring a hit
/// replaces, and a single lock keeps hit/evict ordering deterministic when
/// the service inserts in function order.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SERVER_ALLOCCACHE_H
#define RAP_SERVER_ALLOCCACHE_H

#include "ir/IlocFunction.h"
#include "regalloc/AllocOutcome.h"
#include "regalloc/Allocator.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace rap {
namespace server {

/// Stable fingerprint of (lowered function, allocation request). Includes
/// the linearized body text, the region-tree shape (RAP's input), the
/// register/label/slot namespaces, and the options that steer allocation
/// (allocator kind, k, phase toggles, coalescing, verification). Two
/// functions with equal fingerprints allocate identically.
uint64_t fingerprintFunction(const IlocFunction &F, AllocatorKind Kind,
                             const AllocOptions &Options);

/// Approximate retained-heap cost of caching \p F, used for the byte
/// budget. Deterministic (counts instructions/operands, not malloc blocks).
size_t estimateFunctionBytes(const IlocFunction &F);

/// What a hit replays: the allocated body plus the outcome of the original
/// allocation. Stats are the *allocation-time* counters — a replayed hit
/// reports the same ledger a cold compile would.
struct CachedAllocation {
  std::unique_ptr<IlocFunction> Body;
  AllocOutcome Outcome;
};

struct CacheCounters {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;
  uint64_t Bytes = 0;   ///< current retained estimate
  uint64_t Entries = 0; ///< current entry count
};

class AllocCache {
public:
  /// \p BudgetBytes caps the summed estimateFunctionBytes of resident
  /// entries; 0 disables caching entirely (every lookup misses, inserts are
  /// dropped), which is the cold-path baseline the load bench compares
  /// against.
  explicit AllocCache(size_t BudgetBytes) : Budget(BudgetBytes) {}

  /// On hit: bumps the entry to most-recently-used and returns a deep clone
  /// of the stored body plus the stored outcome. On miss: returns nullptr
  /// Body. Counts the hit/miss either way.
  CachedAllocation lookup(uint64_t Key);

  /// Stores \p Allocated (cloned; the caller keeps its instance) under
  /// \p Key, then evicts LRU entries until the budget holds. Re-inserting
  /// an existing key refreshes its recency and replaces the value (the
  /// bodies are identical by construction — same fingerprint, deterministic
  /// allocator — so replacing is as good as keeping). An entry larger than
  /// the whole budget is dropped immediately rather than thrashing the
  /// cache.
  void insert(uint64_t Key, const IlocFunction &Allocated,
              const AllocOutcome &Outcome);

  CacheCounters counters() const;
  size_t budgetBytes() const { return Budget; }

private:
  struct Entry {
    uint64_t Key = 0;
    std::unique_ptr<IlocFunction> Body;
    AllocOutcome Outcome;
    size_t Bytes = 0;
  };

  void evictToBudgetLocked();

  const size_t Budget;
  mutable std::mutex M;
  std::list<Entry> Lru; ///< front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Index;
  CacheCounters Stats;
};

} // namespace server
} // namespace rap

#endif // RAP_SERVER_ALLOCCACHE_H
