//===- server/Protocol.cpp - rapd-v1 wire protocol --------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "support/Hash.h"

using namespace rap;
using namespace rap::server;

namespace {

const char *statusName(AllocStatus S) {
  switch (S) {
  case AllocStatus::Allocated:
    return "allocated";
  case AllocStatus::Fallback:
    return "fallback";
  case AllocStatus::Failed:
    return "failed";
  }
  return "unknown";
}

/// Seeds a response object with the echoed id and ok flag.
json::Object responseBase(const Request &Req, bool Ok) {
  json::Object O;
  O["id"] = Req.HasId ? json::Value(Req.Id) : json::Value(nullptr);
  O["ok"] = Ok;
  return O;
}

} // namespace

bool server::parseRequest(const json::Value &V, Request &Out,
                          std::string &Error) {
  if (!V.isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  if (V.has("id")) {
    if (!V["id"].isInt()) {
      Error = "'id' must be an integer";
      return false;
    }
    Out.HasId = true;
    Out.Id = V["id"].asInt();
  }
  std::string Op = V["op"].isString() ? V["op"].asString() : "";
  if (Op == "compile")
    Out.Op = RequestOp::Compile;
  else if (Op == "stats")
    Out.Op = RequestOp::Stats;
  else if (Op == "ping")
    Out.Op = RequestOp::Ping;
  else if (Op == "shutdown")
    Out.Op = RequestOp::Shutdown;
  else {
    Error = Op.empty() ? "missing 'op'" : "unknown op '" + Op + "'";
    return false;
  }
  if (Out.Op != RequestOp::Compile)
    return true;

  if (!V["source"].isString()) {
    Error = "compile needs a string 'source'";
    return false;
  }
  Out.Source = V["source"].asString();

  const json::Value &Opts = V["options"];
  if (!Opts.isNull() && !Opts.isObject()) {
    Error = "'options' must be an object";
    return false;
  }
  if (Opts.has("alloc")) {
    const std::string &A = Opts["alloc"].asString();
    Out.Options.Allocator = allocatorKindFromString(A);
    if (Out.Options.Allocator == AllocatorKind::None && A != "none") {
      Error = "unknown allocator '" + A + "'";
      return false;
    }
  }
  if (Opts.has("k")) {
    if (!Opts["k"].isInt() || Opts["k"].asInt() < 3) {
      Error = "'k' must be an integer >= 3";
      return false;
    }
    Out.Options.K = static_cast<unsigned>(Opts["k"].asInt());
  }
  if (Opts.has("granularity")) {
    const std::string &G = Opts["granularity"].asString();
    if (G == "stmt")
      Out.Options.Granularity = RegionGranularity::PerStatement;
    else if (G == "merged")
      Out.Options.Granularity = RegionGranularity::Merged;
    else {
      Error = "unknown granularity '" + G + "'";
      return false;
    }
  }
  if (Opts.has("copies")) {
    const std::string &C = Opts["copies"].asString();
    if (C == "naive")
      Out.Options.Copies = CopyStyle::Naive;
    else if (C == "direct")
      Out.Options.Copies = CopyStyle::Direct;
    else {
      Error = "unknown copy style '" + C + "'";
      return false;
    }
  }
  if (Opts.has("run"))
    Out.Options.Run = Opts["run"].asBool();
  if (Opts.has("fuel")) {
    if (!Opts["fuel"].isInt() || Opts["fuel"].asInt() <= 0) {
      Error = "'fuel' must be a positive integer";
      return false;
    }
    Out.Options.Fuel = static_cast<uint64_t>(Opts["fuel"].asInt());
  }
  if (Opts.has("dump"))
    Out.Dump = Opts["dump"].asBool();
  if (Opts.has("deadline_ms")) {
    if (!Opts["deadline_ms"].isInt() || Opts["deadline_ms"].asInt() <= 0) {
      Error = "'deadline_ms' must be a positive integer";
      return false;
    }
    Out.Options.DeadlineMs =
        static_cast<uint64_t>(Opts["deadline_ms"].asInt());
  }
  return true;
}

json::Value server::compileResponse(const Request &Req,
                                    const ServiceResult &Res) {
  if (!Res.Ok) {
    // Aborted statuses (deadline-exceeded/cancelled) are mapped to their
    // error kinds by the server's dispatch; here !Ok means diagnostics.
    json::Object O = responseBase(Req, false);
    O["kind"] = serviceStatusName(Res.Status);
    O["error"] = Res.Errors;
    return json::Value(std::move(O));
  }
  json::Object O = responseBase(Req, true);
  O["functions"] = static_cast<uint64_t>(Res.Functions.size());
  O["cache_hits"] = Res.CacheHits;
  O["cache_misses"] = Res.CacheMisses;
  O["degraded"] = Res.degraded();
  O["output_hash"] = hashHex(Res.OutputHash);
  json::Array PerFunction;
  for (const FunctionReport &F : Res.Functions) {
    json::Object FO;
    FO["name"] = F.Name;
    FO["fingerprint"] = hashHex(F.Fingerprint);
    FO["cached"] = F.CacheHit;
    FO["status"] = statusName(F.Status);
    if (!F.Error.empty())
      FO["error"] = F.Error;
    PerFunction.push_back(json::Value(std::move(FO)));
  }
  O["per_function"] = json::Value(std::move(PerFunction));
  // The aggregated allocation ledger, same shape as rap-stats-v1's "alloc"
  // (clients diff warm vs cold ledgers for bit-identity evidence beyond
  // the output hash).
  json::Object Ledger;
  Ledger["spilled_vregs"] = Res.Alloc.SpilledVRegs;
  Ledger["spill_loads_inserted"] = Res.Alloc.SpillLoadsInserted;
  Ledger["spill_stores_inserted"] = Res.Alloc.SpillStoresInserted;
  Ledger["copies_deleted"] = Res.Alloc.CopiesDeleted;
  O["alloc"] = json::Value(std::move(Ledger));
  if (Req.Options.Run) {
    json::Object Exec;
    Exec["ok"] = Res.Exec.Ok;
    if (Res.Exec.Ok) {
      Exec["result"] = Res.Exec.ReturnValue.str();
      Exec["cycles"] = Res.Exec.Stats.Cycles;
      Exec["loads"] = Res.Exec.Stats.Loads;
      Exec["spill_loads"] = Res.Exec.Stats.SpillLoads;
      Exec["stores"] = Res.Exec.Stats.Stores;
      Exec["spill_stores"] = Res.Exec.Stats.SpillStores;
      Exec["copies"] = Res.Exec.Stats.Copies;
      Exec["calls"] = Res.Exec.Stats.Calls;
    } else {
      Exec["trap"] = Res.Exec.TrapInfo.Kind != TrapKind::None
                         ? Res.Exec.TrapInfo.str()
                         : Res.Exec.Error;
    }
    O["exec"] = json::Value(std::move(Exec));
  }
  if (Req.Dump) {
    std::string Text;
    for (const auto &F : Res.Prog->functions())
      Text += F->str();
    O["iloc"] = Text;
  }
  return json::Value(std::move(O));
}

json::Value server::errorResponse(const Request &Req, const char *Kind,
                                  const std::string &Message) {
  json::Object O = responseBase(Req, false);
  O["kind"] = Kind;
  O["error"] = Message;
  return json::Value(std::move(O));
}

json::Value server::overloadedResponse(const Request &Req,
                                       unsigned RetryAfterMs) {
  json::Object O = responseBase(Req, false);
  O["kind"] = "overloaded";
  O["error"] = "in-flight byte budget exceeded; retry later";
  O["retry_after_ms"] = RetryAfterMs;
  return json::Value(std::move(O));
}

json::Value server::statsResponse(const Request &Req,
                                  const ServiceCounters &C,
                                  uint64_t RejectedRequests,
                                  unsigned DrainMs) {
  json::Object S;
  S["requests"] = C.Requests;
  S["functions"] = C.FunctionsCompiled;
  S["cache_hits"] = C.CacheHits;
  S["cache_misses"] = C.CacheMisses;
  S["cache_bytes"] = C.CacheBytes;
  S["cache_evictions"] = C.CacheEvictions;
  S["queue_depth_max"] = C.QueueDepthMax;
  S["tasks_stolen"] = C.TasksStolen;
  S["rejected_requests"] = RejectedRequests;
  S["deadline_exceeded"] = C.DeadlineExceeded;
  S["cancelled"] = C.Cancelled;
  S["watchdog_trips"] = C.WatchdogTrips;
  S["shards_degraded"] = C.ShardsDegraded;
  S["chaos_injected"] = C.ChaosInjected;
  S["drain_ms"] = DrainMs;
  // Durable-cache recovery counters: present only when --cache-dir armed a
  // CacheStore, so in-memory-only deployments keep their pre-§15 stats
  // lines byte-identical.
  if (C.PersistEnabled) {
    json::Object R;
    R["journal_frames_replayed"] = C.JournalFramesReplayed;
    R["snapshot_loaded"] = C.SnapshotLoaded;
    R["torn_tail_dropped"] = C.TornTailDropped;
    R["restarts"] = C.Restarts;
    R["journal_appends"] = C.JournalAppends;
    R["compactions"] = C.Compactions;
    R["invalidations"] = C.StoreInvalidations;
    R["degraded"] = C.StoreDegraded;
    S["recovery"] = json::Value(std::move(R));
  }
  json::Object O = responseBase(Req, true);
  O["stats"] = json::Value(std::move(S));
  return json::Value(std::move(O));
}

json::Value server::ackResponse(const Request &Req, const char *Kind) {
  json::Object O = responseBase(Req, true);
  O["kind"] = Kind;
  return json::Value(std::move(O));
}

json::Value server::helloBanner(unsigned Shards, size_t CacheBytes,
                                size_t MaxInflightBytes) {
  json::Object O;
  O["rapd"] = "v1";
  O["shards"] = Shards;
  O["cache_bytes"] = static_cast<uint64_t>(CacheBytes);
  O["max_inflight_bytes"] = static_cast<uint64_t>(MaxInflightBytes);
  return json::Value(std::move(O));
}
