//===- server/rapc.cpp - rapd operator client -------------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// rapc: the command-line face of the retrying Client (DESIGN.md §15).
/// Talks rapd-v1 over a Unix-domain socket and survives supervised server
/// restarts mid-conversation — kill -9 the server while rapc streams
/// requests and every request still gets exactly one answer.
///
///   rapc --socket=PATH [options] <op>
///     ops:
///       ping                  liveness probe
///       stats                 print the server counter document
///       shutdown              ask the server to drain and stop
///       compile FILE...       compile each MiniC file (one request each)
///       pipe                  read NDJSON request lines from stdin, print
///                             one response line each (a retrying netcat)
///     options:
///       --timeout-ms=N        per-request total budget (default 30000;
///                             0 = unbounded)
///       --connect-timeout-ms=N  per-connect budget (default 1000)
///       --retries=N           resend budget per request (default 50)
///       --run                 compile: execute main() and report counters
///       --dump                compile: include allocated ILOC text
///       --deadline-ms=N       compile: server-side deadline_ms
///
/// Exit codes: 0 every response said ok:true, 1 transport failure or any
/// ok:false response, 2 usage error. Responses go to stdout (one line
/// each); transport diagnostics go to stderr.
///
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace rap;
using namespace rap::server;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: rapc --socket=PATH [--timeout-ms=N] [--connect-timeout-ms=N]\n"
      "            [--retries=N] [--run] [--dump] [--deadline-ms=N]\n"
      "            ping | stats | shutdown | compile FILE... | pipe\n"
      "exit codes: 0 all ok, 1 transport failure or ok:false, 2 usage\n");
}

bool parseUnsigned(const char *S, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

/// One call; prints the response line (or the transport error) and reports
/// whether the response said ok:true.
bool callAndPrint(Client &C, const std::string &Line, bool &Ok) {
  json::Value Response;
  std::string Error;
  if (!C.call(Line, Response, Error)) {
    std::fprintf(stderr, "rapc: %s\n", Error.c_str());
    return false;
  }
  std::printf("%s\n", Response.str().c_str());
  std::fflush(stdout);
  // A batch answers with an array: ok means every element is ok.
  Ok = true;
  if (Response.isArray()) {
    for (const json::Value &V : Response.asArray())
      Ok = Ok && V["ok"].isBool() && V["ok"].asBool();
  } else {
    Ok = Response["ok"].isBool() && Response["ok"].asBool();
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ClientConfig Config;
  bool Run = false, Dump = false;
  uint64_t DeadlineMs = 0;
  std::string Op;
  std::vector<std::string> Files;

  for (int I = 1; I != argc; ++I) {
    const char *Arg = argv[I];
    uint64_t N = 0;
    if (std::strncmp(Arg, "--socket=", 9) == 0) {
      Config.SocketPath = Arg + 9;
    } else if (std::strncmp(Arg, "--timeout-ms=", 13) == 0) {
      if (!parseUnsigned(Arg + 13, N)) {
        std::fprintf(stderr, "rapc: bad --timeout-ms value\n");
        return 2;
      }
      Config.RequestTimeoutMs = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--connect-timeout-ms=", 21) == 0) {
      if (!parseUnsigned(Arg + 21, N) || N == 0) {
        std::fprintf(stderr, "rapc: bad --connect-timeout-ms value\n");
        return 2;
      }
      Config.ConnectTimeoutMs = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--retries=", 10) == 0) {
      if (!parseUnsigned(Arg + 10, N)) {
        std::fprintf(stderr, "rapc: bad --retries value\n");
        return 2;
      }
      Config.MaxRetries = static_cast<unsigned>(N);
    } else if (std::strcmp(Arg, "--run") == 0) {
      Run = true;
    } else if (std::strcmp(Arg, "--dump") == 0) {
      Dump = true;
    } else if (std::strncmp(Arg, "--deadline-ms=", 14) == 0) {
      if (!parseUnsigned(Arg + 14, DeadlineMs)) {
        std::fprintf(stderr, "rapc: bad --deadline-ms value\n");
        return 2;
      }
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "rapc: unknown option '%s'\n", Arg);
      usage();
      return 2;
    } else if (Op.empty()) {
      Op = Arg;
    } else {
      Files.push_back(Arg);
    }
  }

  if (Config.SocketPath.empty() || Op.empty()) {
    usage();
    return 2;
  }

  Client C(Config);
  bool AllOk = true;
  int64_t NextId = 1;

  auto simpleOp = [&](const char *Name) -> int {
    json::Object Req;
    Req["op"] = Name;
    Req["id"] = NextId++;
    bool Ok = false;
    if (!callAndPrint(C, json::Value(std::move(Req)).str(), Ok))
      return 1;
    return Ok ? 0 : 1;
  };

  if (Op == "ping")
    return simpleOp("ping");
  if (Op == "stats")
    return simpleOp("stats");
  if (Op == "shutdown")
    return simpleOp("shutdown");

  if (Op == "compile") {
    if (Files.empty()) {
      std::fprintf(stderr, "rapc: compile needs at least one file\n");
      return 2;
    }
    for (const std::string &Path : Files) {
      std::ifstream In(Path, std::ios::binary);
      if (!In) {
        std::fprintf(stderr, "rapc: cannot read '%s'\n", Path.c_str());
        return 1;
      }
      std::ostringstream SS;
      SS << In.rdbuf();

      json::Object Options;
      if (Run)
        Options["run"] = true;
      if (DeadlineMs != 0)
        Options["deadline_ms"] = DeadlineMs;
      json::Object Req;
      Req["op"] = "compile";
      Req["id"] = NextId++;
      Req["source"] = SS.str();
      if (Dump)
        Req["dump"] = true;
      if (!Options.empty())
        Req["options"] = json::Value(std::move(Options));

      bool Ok = false;
      if (!callAndPrint(C, json::Value(std::move(Req)).str(), Ok))
        return 1;
      AllOk = AllOk && Ok;
    }
    return AllOk ? 0 : 1;
  }

  if (Op == "pipe") {
    std::string Line;
    while (std::getline(std::cin, Line)) {
      if (Line.empty())
        continue;
      bool Ok = false;
      if (!callAndPrint(C, Line, Ok))
        return 1;
      AllOk = AllOk && Ok;
    }
    return AllOk ? 0 : 1;
  }

  std::fprintf(stderr, "rapc: unknown op '%s'\n", Op.c_str());
  usage();
  return 2;
}
