//===- server/Protocol.h - rapd-v1 wire protocol ----------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rapd newline-delimited JSON protocol ("rapd-v1", DESIGN.md §12).
/// One request per line, one response line per request; a line holding a
/// JSON *array* of requests is a batch and yields an array of responses in
/// request order. Requests:
///
///   {"op":"compile","id":7,"source":"...","options":{"alloc":"rap","k":5,
///    "granularity":"stmt","copies":"naive","run":false,"fuel":N,
///    "dump":false,"deadline_ms":250}}
///   {"op":"stats","id":8}     -> server counters
///   {"op":"ping","id":9}      -> liveness probe
///   {"op":"shutdown","id":10} -> acknowledge, then drain and stop serving
///
/// Every response carries "id" (echoed; null when the request had none) and
/// "ok". Failures set "kind" to a stable machine-readable string:
/// "bad-request" (unparseable line / oversized line / unknown op / bad
/// options), "compile-error" (diagnostics in "error"), "overloaded"
/// (backpressure; "retry_after_ms" says when to retry), "deadline-exceeded"
/// (the request's deadline_ms budget ran out), "cancelled" (a server drain
/// aborted it), "internal-error" (a contained server-side fault; the
/// connection stays usable). Responses to "compile" report
/// function count, cache hits/misses, degraded count, the 16-hex-digit
/// "output_hash" of the allocated module, a "per_function" array, the
/// aggregated "alloc" ledger, optionally "exec" (run:true) and "iloc"
/// (dump:true).
///
/// This header is transport-free: parsing/serialization only, shared by the
/// server, the load bench, and the protocol tests.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SERVER_PROTOCOL_H
#define RAP_SERVER_PROTOCOL_H

#include "server/CompileService.h"
#include "support/Json.h"

#include <cstdint>
#include <string>

namespace rap {
namespace server {

enum class RequestOp { Compile, Stats, Ping, Shutdown };

struct Request {
  RequestOp Op = RequestOp::Compile;
  bool HasId = false;
  int64_t Id = 0;
  std::string Source;
  RequestOptions Options;
  bool Dump = false; ///< include the allocated ILOC text in the response
};

/// Decodes one request object (not an array — the server splits batches).
/// On failure returns false with \p Error set to the "bad-request" detail.
bool parseRequest(const json::Value &V, Request &Out, std::string &Error);

/// The compile response for \p Res (ok or compile-error).
json::Value compileResponse(const Request &Req, const ServiceResult &Res);

/// Error response with a stable "kind".
json::Value errorResponse(const Request &Req, const char *Kind,
                          const std::string &Message);

/// Backpressure response: kind "overloaded" plus "retry_after_ms".
json::Value overloadedResponse(const Request &Req, unsigned RetryAfterMs);

/// Stats response embedding the server counter block (also used by the
/// rap-stats-v1 "server" section). \p DrainMs echoes the server's
/// configured drain window so operators can read the whole crash-only
/// posture off one stats line.
json::Value statsResponse(const Request &Req, const ServiceCounters &C,
                          uint64_t RejectedRequests, unsigned DrainMs);

/// Simple acks for ping/shutdown.
json::Value ackResponse(const Request &Req, const char *Kind);

/// The one-line banner rapd prints on startup so clients can sanity-check
/// the protocol version and config: {"rapd":"v1","shards":...,...}.
json::Value helloBanner(unsigned Shards, size_t CacheBytes,
                        size_t MaxInflightBytes);

} // namespace server
} // namespace rap

#endif // RAP_SERVER_PROTOCOL_H
