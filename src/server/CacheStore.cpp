//===- server/CacheStore.cpp - Durable allocation cache ---------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "server/CacheStore.h"

#include "support/Hash.h"
#include "support/Journal.h"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

using namespace rap;
using namespace rap::server;
using rap::journal::ByteReader;
using rap::journal::ByteWriter;

namespace {

/// Bump when the entry payload layout changes; folded into the store
/// fingerprint so old files invalidate instead of misdecoding.
constexpr uint32_t FormatVersion = 1;

constexpr uint8_t FrameHeader = 1; ///< payload: u32 version, u64 fingerprint
constexpr uint8_t FrameEntry = 2;  ///< payload: one encodeCacheEntry record

/// Decode-side sanity bounds. A CRC-valid but hostile payload must fail
/// fast, not allocate gigabytes or recurse off the stack; legitimate
/// functions (including the 10k-function scale programs) sit far below
/// all of these.
constexpr uint32_t MaxNamespace = 1u << 26; ///< vregs/labels/slots per fn
constexpr int MaxNodeDepth = 20000;         ///< region-tree recursion bound

} // namespace

const char *server::fsyncModeName(FsyncMode M) {
  switch (M) {
  case FsyncMode::Never:
    return "never";
  case FsyncMode::Batch:
    return "batch";
  case FsyncMode::Always:
    return "always";
  }
  return "unknown";
}

bool server::parseFsyncMode(const std::string &Text, FsyncMode &Out) {
  if (Text == "never")
    Out = FsyncMode::Never;
  else if (Text == "batch")
    Out = FsyncMode::Batch;
  else if (Text == "always")
    Out = FsyncMode::Always;
  else
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Entry codec. The encoder mirrors the cloneFunction traversal field for
// field; the decoder rebuilds through the same IlocFunction factory calls a
// clone uses (createInstr reassigns ids sequentially in visit order on both
// paths), so decode(encode(F)) renders byte-identically to cloneFunction(F).
//===----------------------------------------------------------------------===//

namespace {

void encodeInstr(ByteWriter &W, const Instr *I) {
  W.u8(static_cast<uint8_t>(I->Op));
  W.u32(I->Dst);
  W.u32(static_cast<uint32_t>(I->Src.size()));
  for (Reg R : I->Src)
    W.u32(R);
  W.u8(I->Imm.isFloat() ? 1 : 0);
  if (I->Imm.isFloat())
    W.f64(I->Imm.rawFloat());
  else
    W.i64(I->Imm.rawInt());
  W.i32(I->Slot);
  W.i32(I->Addr);
  W.i32(I->Label0);
  W.i32(I->Label1);
  W.i32(I->Callee);
  W.u32(I->LinPos);
}

void encodeOptInstr(ByteWriter &W, const Instr *I) {
  W.u8(I ? 1 : 0);
  if (I)
    encodeInstr(W, I);
}

void encodeNode(ByteWriter &W, const PdgNode *N) {
  if (!N) {
    W.u8(0);
    return;
  }
  W.u8(static_cast<uint8_t>(N->kind()) + 1);
  W.u8(N->IsLoop ? 1 : 0);
  W.i32(N->TrueLabel);
  W.i32(N->FalseLabel);
  W.i32(N->JoinLabel);
  W.u32(N->LinBegin);
  W.u32(N->LinEnd);
  W.u32(static_cast<uint32_t>(N->Code.size()));
  for (const Instr *I : N->Code)
    encodeInstr(W, I);
  encodeOptInstr(W, N->Branch);
  encodeOptInstr(W, N->Jump);
  encodeNode(W, N->TrueRegion);
  encodeNode(W, N->FalseRegion);
  W.u32(static_cast<uint32_t>(N->Children.size()));
  for (const PdgNode *C : N->Children)
    encodeNode(W, C);
}

void encodeStats(ByteWriter &W, const AllocStats &S) {
  W.u32(S.GraphBuilds);
  W.u32(S.SpilledVRegs);
  W.u32(S.MaxGraphNodes);
  W.u32(S.RegionsProcessed);
  W.u32(S.SpillRounds);
  W.u32(S.HoistedLoads);
  W.u32(S.SunkStores);
  W.u32(S.MovementRemovedLoads);
  W.u32(S.MovementRemovedStores);
  W.u32(S.PeepholeRemovedLoads);
  W.u32(S.PeepholeRemovedStores);
  W.u32(S.PeepholeLoadsToCopies);
  W.u32(S.CleanupRemovedLoads);
  W.u32(S.CleanupRemovedStores);
  W.u32(S.CopiesDeleted);
  W.u32(S.SpillLoadsInserted);
  W.u32(S.SpillStoresInserted);
  W.f64(S.GraphBuildSeconds);
  W.f64(S.LivenessSeconds);
  W.u64(S.PeakGraphBytes);
}

void encodeFunction(ByteWriter &W, const IlocFunction &F) {
  W.str(F.name());
  W.u32(F.numParams());
  W.u8(static_cast<uint8_t>(F.returnType()));
  W.u32(F.numVRegs());
  W.i32(F.numLabels());
  W.i32(F.numSpillSlots());
  W.u8(F.isAllocated() ? 1 : 0);
  if (F.isAllocated()) {
    W.u32(F.numPhysRegs());
    for (unsigned P = 0; P != F.numParams(); ++P)
      W.u32(F.paramReg(P));
  }
  encodeNode(W, F.root());
}

bool decodeInstr(ByteReader &R, IlocFunction &F, Instr *&Out) {
  uint8_t Op = R.u8();
  if (Op > static_cast<uint8_t>(Opcode::Halt) || !R.ok())
    return false;
  Instr *I = F.createInstr(static_cast<Opcode>(Op));
  I->Dst = R.u32();
  uint32_t NSrc = R.u32();
  if (NSrc > R.remaining())
    return false;
  for (uint32_t S = 0; S != NSrc && R.ok(); ++S)
    I->Src.push_back(R.u32());
  if (R.u8())
    I->Imm = RtValue::makeFloat(R.f64());
  else
    I->Imm = RtValue::makeInt(R.i64());
  I->Slot = R.i32();
  I->Addr = R.i32();
  I->Label0 = R.i32();
  I->Label1 = R.i32();
  I->Callee = R.i32();
  I->LinPos = R.u32();
  Out = I;
  return R.ok();
}

bool decodeOptInstr(ByteReader &R, IlocFunction &F, Instr *&Out) {
  Out = nullptr;
  if (!R.u8())
    return R.ok();
  return decodeInstr(R, F, Out);
}

bool decodeNode(ByteReader &R, IlocFunction &F, PdgNode *Parent, int Depth,
                PdgNode *&Out) {
  Out = nullptr;
  uint8_t Tag = R.u8();
  if (!R.ok() || Tag > 3)
    return R.ok() && Tag == 0;
  if (Tag == 0)
    return true;
  if (Depth > MaxNodeDepth)
    return false;
  PdgNode *N = F.createNode(static_cast<PdgNodeKind>(Tag - 1));
  N->Parent = Parent;
  N->IsLoop = R.u8() != 0;
  N->TrueLabel = R.i32();
  N->FalseLabel = R.i32();
  N->JoinLabel = R.i32();
  N->LinBegin = R.u32();
  N->LinEnd = R.u32();
  uint32_t NCode = R.u32();
  if (NCode > R.remaining())
    return false;
  N->Code.reserve(NCode);
  for (uint32_t I = 0; I != NCode; ++I) {
    Instr *Ins = nullptr;
    if (!decodeInstr(R, F, Ins))
      return false;
    N->Code.push_back(Ins);
  }
  if (!decodeOptInstr(R, F, N->Branch) || !decodeOptInstr(R, F, N->Jump))
    return false;
  if (!decodeNode(R, F, N, Depth + 1, N->TrueRegion) ||
      !decodeNode(R, F, N, Depth + 1, N->FalseRegion))
    return false;
  uint32_t NKids = R.u32();
  if (NKids > R.remaining())
    return false;
  N->Children.reserve(NKids);
  for (uint32_t I = 0; I != NKids; ++I) {
    PdgNode *C = nullptr;
    if (!decodeNode(R, F, N, Depth + 1, C) || !C)
      return false;
    N->Children.push_back(C);
  }
  Out = N;
  return R.ok();
}

bool decodeStats(ByteReader &R, AllocStats &S) {
  S.GraphBuilds = R.u32();
  S.SpilledVRegs = R.u32();
  S.MaxGraphNodes = R.u32();
  S.RegionsProcessed = R.u32();
  S.SpillRounds = R.u32();
  S.HoistedLoads = R.u32();
  S.SunkStores = R.u32();
  S.MovementRemovedLoads = R.u32();
  S.MovementRemovedStores = R.u32();
  S.PeepholeRemovedLoads = R.u32();
  S.PeepholeRemovedStores = R.u32();
  S.PeepholeLoadsToCopies = R.u32();
  S.CleanupRemovedLoads = R.u32();
  S.CleanupRemovedStores = R.u32();
  S.CopiesDeleted = R.u32();
  S.SpillLoadsInserted = R.u32();
  S.SpillStoresInserted = R.u32();
  S.GraphBuildSeconds = R.f64();
  S.LivenessSeconds = R.f64();
  S.PeakGraphBytes = R.u64();
  return R.ok();
}

std::unique_ptr<IlocFunction> decodeFunction(ByteReader &R) {
  std::string Name = R.str();
  auto F = std::make_unique<IlocFunction>(Name);
  F->setNumParams(R.u32());
  uint8_t Ret = R.u8();
  if (Ret > static_cast<uint8_t>(TypeKind::Void))
    return nullptr;
  F->setReturnType(static_cast<TypeKind>(Ret));
  uint32_t NVRegs = R.u32();
  int32_t NLabels = R.i32();
  int32_t NSlots = R.i32();
  if (!R.ok() || NVRegs > MaxNamespace || NLabels < 0 ||
      NLabels > static_cast<int32_t>(MaxNamespace) || NSlots < 0 ||
      NSlots > static_cast<int32_t>(MaxNamespace) ||
      F->numParams() > MaxNamespace)
    return nullptr;
  while (F->numVRegs() < NVRegs)
    F->newVReg();
  while (F->numLabels() < NLabels)
    F->newLabel();
  while (F->numSpillSlots() < NSlots)
    F->newSpillSlot();
  bool Allocated = R.u8() != 0;
  unsigned NumPhys = 0;
  std::vector<Reg> ParamRegs;
  if (Allocated) {
    NumPhys = R.u32();
    ParamRegs.reserve(F->numParams());
    for (unsigned P = 0; P != F->numParams() && R.ok(); ++P)
      ParamRegs.push_back(R.u32());
  }
  PdgNode *Root = nullptr;
  if (!decodeNode(R, *F, nullptr, 0, Root))
    return nullptr;
  F->setRoot(Root);
  if (Allocated) {
    F->setParamRegs(std::move(ParamRegs));
    F->setAllocated(NumPhys);
  }
  return R.ok() ? std::move(F) : nullptr;
}

} // namespace

std::string server::encodeCacheEntry(uint64_t Key, const IlocFunction &Body,
                                     const AllocOutcome &Outcome) {
  std::string Out;
  ByteWriter W(Out);
  W.u64(Key);
  W.str(Outcome.Function);
  W.u8(static_cast<uint8_t>(Outcome.Status));
  W.u8(static_cast<uint8_t>(Outcome.ErrorKind));
  W.str(Outcome.Error);
  encodeStats(W, Outcome.Stats);
  // The replay witness: recovery re-renders the decoded body and refuses
  // any entry whose text does not hash back to this. Byte identity, not
  // trust, is what makes persisted warm responses safe.
  W.u64(hashString(Body.str()));
  encodeFunction(W, Body);
  return Out;
}

bool server::decodeCacheEntry(const char *Data, size_t Size,
                              DecodedCacheEntry &Out) {
  ByteReader R(Data, Size);
  Out.Key = R.u64();
  Out.Outcome = AllocOutcome();
  Out.Outcome.Function = R.str();
  uint8_t Status = R.u8();
  uint8_t Kind = R.u8();
  if (Status > static_cast<uint8_t>(AllocStatus::Failed) ||
      Kind > static_cast<uint8_t>(AllocErrorKind::Cancelled))
    return false;
  Out.Outcome.Status = static_cast<AllocStatus>(Status);
  Out.Outcome.ErrorKind = static_cast<AllocErrorKind>(Kind);
  Out.Outcome.Error = R.str();
  if (!decodeStats(R, Out.Outcome.Stats))
    return false;
  uint64_t Witness = R.u64();
  Out.Body = decodeFunction(R);
  if (!Out.Body || !R.atEnd())
    return false;
  return hashString(Out.Body->str()) == Witness;
}

//===----------------------------------------------------------------------===//
// The store
//===----------------------------------------------------------------------===//

uint64_t CacheStore::buildFingerprint() {
  // __DATE__/__TIME__ change on every rebuild of this translation unit, so
  // a new binary never trusts entries an older allocator wrote — semantic
  // drift behind an unchanged key can't leak through. The schema string
  // names what the entry key covers; extend it when fingerprintFunction
  // grows a field.
  return Hasher()
      .u32(FormatVersion)
      .str(std::string(__DATE__) + " " + __TIME__)
      .str("kind k granularity copies movement peephole cleanup coalesce "
           "verify region-threads")
      .value();
}

CacheStore::CacheStore(CacheStoreConfig C) : Config(std::move(C)) {
  if (Config.Fingerprint == 0)
    Config.Fingerprint = buildFingerprint();
}

CacheStore::~CacheStore() {
  std::lock_guard<std::mutex> Lock(M);
  if (JournalFd >= 0) {
    if (Config.Fsync == FsyncMode::Batch && AppendsSinceSync)
      ::fsync(JournalFd);
    ::close(JournalFd);
    JournalFd = -1;
  }
}

std::string CacheStore::snapshotPath() const {
  return Config.Dir + "/snapshot.bin";
}

std::string CacheStore::journalPath() const {
  return Config.Dir + "/journal.bin";
}

bool CacheStore::degraded() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stats.Degraded;
}

CacheStoreCounters CacheStore::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stats;
}

bool CacheStore::chaosFires(FaultSite S) {
  return Config.Chaos && Config.Chaos(S);
}

void CacheStore::degradeLocked() {
  if (JournalFd >= 0) {
    ::close(JournalFd);
    JournalFd = -1;
  }
  Stats.Degraded = true;
}

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::string();
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

bool writeAll(int Fd, const char *Data, size_t Size) {
  while (Size) {
    ssize_t N = ::write(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

std::string headerFrame(uint64_t Fingerprint) {
  std::string Payload;
  ByteWriter W(Payload);
  W.u32(FormatVersion);
  W.u64(Fingerprint);
  std::string Out;
  journal::appendFrame(Out, FrameHeader, Payload);
  return Out;
}

enum class HeaderCheck {
  Missing,  ///< no file / empty file: a fresh store
  Ok,       ///< header present, version and fingerprint match
  Mismatch, ///< a different binary or format wrote this: invalidate
  Torn,     ///< the header frame itself is torn: nothing is trusted
};

HeaderCheck checkHeader(const std::string &Data, uint64_t Fingerprint) {
  if (Data.empty())
    return HeaderCheck::Missing;
  HeaderCheck Result = HeaderCheck::Torn;
  journal::scanFrames(Data.data(), Data.size(), [&](const journal::Frame &F) {
    if (F.Type != FrameHeader) {
      Result = HeaderCheck::Mismatch;
      return false;
    }
    ByteReader R(F.Payload, F.PayloadSize);
    uint32_t Version = R.u32();
    uint64_t Stamp = R.u64();
    Result = (R.ok() && Version == FormatVersion && Stamp == Fingerprint)
                 ? HeaderCheck::Ok
                 : HeaderCheck::Mismatch;
    return false; // first frame only
  });
  return Result;
}

} // namespace

void CacheStore::replayFile(const std::string &Path, const std::string &Data,
                            const ReplaySink &Sink, bool &SawBadEntry,
                            size_t &TrustedPrefix) {
  (void)Path;
  size_t BadFrameBytes = 0;
  journal::ScanResult Scan = journal::scanFrames(
      Data.data(), Data.size(), [&](const journal::Frame &F) {
        if (F.Type != FrameEntry)
          return true; // header (or a future frame type): skip
        DecodedCacheEntry E;
        if (!decodeCacheEntry(F.Payload, F.PayloadSize, E)) {
          // CRC-valid but structurally bad (or a failed witness check):
          // trust nothing from here on in this file.
          Stats.BadEntriesDropped += 1;
          SawBadEntry = true;
          BadFrameBytes = 9 + F.PayloadSize; // frame header + type + payload
          return false;
        }
        Stats.FramesReplayed += 1;
        if (Sink)
          Sink(E.Key, std::move(E.Body), E.Outcome);
        return true;
      });
  TrustedPrefix = Scan.BytesConsumed - BadFrameBytes;
  Stats.TornTailBytes += Data.size() - TrustedPrefix;
}

bool CacheStore::open(const ReplaySink &Sink) {
  std::lock_guard<std::mutex> Lock(M);
  std::error_code EC;
  std::filesystem::create_directories(Config.Dir, EC);
  if (EC) {
    Stats.Degraded = true;
    return false;
  }

  std::string Snap = readFile(snapshotPath());
  std::string Jour = readFile(journalPath());
  HeaderCheck HS = checkHeader(Snap, Config.Fingerprint);
  HeaderCheck HJ = checkHeader(Jour, Config.Fingerprint);

  // A fingerprint/version mismatch in either file means a different binary
  // (or entry format) wrote this state: wipe both, replay nothing. Stale
  // hits are impossible by construction — the files never survive to be
  // read by a store they weren't stamped for.
  if (HS == HeaderCheck::Mismatch || HJ == HeaderCheck::Mismatch) {
    Stats.Invalidations += 1;
    ::unlink(snapshotPath().c_str());
    ::unlink(journalPath().c_str());
    Snap.clear();
    Jour.clear();
    HS = HJ = HeaderCheck::Missing;
  }

  // A torn header trusts nothing in that file (prefix semantics from
  // offset zero); the bytes count as a dropped tail, not a format change.
  if (HS == HeaderCheck::Torn) {
    Stats.TornTailBytes += Snap.size();
    Snap.clear();
    HS = HeaderCheck::Missing;
  }
  if (HJ == HeaderCheck::Torn) {
    Stats.TornTailBytes += Jour.size();
    Jour.clear();
    HJ = HeaderCheck::Missing;
  }

  if (HS == HeaderCheck::Ok) {
    Stats.SnapshotLoaded = true;
    bool SawBad = false;
    size_t Trusted = 0;
    replayFile(snapshotPath(), Snap, Sink, SawBad, Trusted);
  }

  size_t JournalTrusted = 0;
  if (HJ == HeaderCheck::Ok) {
    bool SawBad = false;
    replayFile(journalPath(), Jour, Sink, SawBad, JournalTrusted);
  }

  JournalFd = ::open(journalPath().c_str(), O_WRONLY | O_CREAT, 0644);
  if (JournalFd < 0) {
    Stats.Degraded = true;
    return false;
  }
  if (HJ == HeaderCheck::Ok && JournalTrusted > 0) {
    // Drop the torn tail before appending: new frames written after
    // garbage would be unreachable to every future recovery scan.
    if (::ftruncate(JournalFd, static_cast<off_t>(JournalTrusted)) != 0 ||
        ::lseek(JournalFd, 0, SEEK_END) < 0) {
      degradeLocked();
      return false;
    }
    JournalBytes = JournalTrusted;
  } else {
    std::string Header = headerFrame(Config.Fingerprint);
    if (::ftruncate(JournalFd, 0) != 0 ||
        !writeAll(JournalFd, Header.data(), Header.size())) {
      degradeLocked();
      return false;
    }
    JournalBytes = Header.size();
  }
  return true;
}

void CacheStore::append(uint64_t Key, const IlocFunction &Body,
                        const AllocOutcome &Outcome) {
  std::lock_guard<std::mutex> Lock(M);
  if (Stats.Degraded || JournalFd < 0)
    return;
  if (chaosFires(FaultSite::JournalWrite)) {
    degradeLocked();
    return;
  }
  std::string Buf;
  journal::appendFrame(Buf, FrameEntry, encodeCacheEntry(Key, Body, Outcome));
  // One unbuffered write per entry: a SIGKILL can tear at most this frame,
  // and the CRC scan drops exactly the torn tail on the next recovery.
  if (!writeAll(JournalFd, Buf.data(), Buf.size())) {
    degradeLocked();
    return;
  }
  JournalBytes += Buf.size();
  Stats.Appends += 1;
  if (Config.Fsync == FsyncMode::Always) {
    ::fsync(JournalFd);
  } else if (Config.Fsync == FsyncMode::Batch) {
    if (++AppendsSinceSync >= Config.BatchAppends) {
      ::fsync(JournalFd);
      AppendsSinceSync = 0;
    }
  }
  if (Config.CompactBytes && JournalBytes > Config.CompactBytes)
    compactLocked();
}

void CacheStore::flush() {
  std::lock_guard<std::mutex> Lock(M);
  if (Stats.Degraded || JournalFd < 0)
    return;
  if (Config.Fsync == FsyncMode::Batch && AppendsSinceSync) {
    ::fsync(JournalFd);
    AppendsSinceSync = 0;
  }
}

void CacheStore::compactNow() {
  std::lock_guard<std::mutex> Lock(M);
  compactLocked();
}

void CacheStore::compactLocked() {
  if (Stats.Degraded || JournalFd < 0)
    return;
  if (chaosFires(FaultSite::SnapshotCompact)) {
    degradeLocked();
    return;
  }

  // Merge snapshot + journal at the frame level: entries keep their exact
  // payload bytes (the key is the payload's leading u64), later frames for
  // a key replace earlier ones in place, so compaction can reorder nothing
  // and corrupt nothing — it never even decodes a body.
  std::vector<std::pair<uint64_t, std::string>> Entries;
  std::unordered_map<uint64_t, size_t> Position;
  auto mergeFile = [&](const std::string &Path) {
    std::string Data = readFile(Path);
    journal::scanFrames(
        Data.data(), Data.size(), [&](const journal::Frame &F) {
          if (F.Type != FrameEntry || F.PayloadSize < 8)
            return true;
          uint64_t Key = ByteReader(F.Payload, F.PayloadSize).u64();
          std::string Payload(F.Payload, F.PayloadSize);
          auto It = Position.find(Key);
          if (It != Position.end()) {
            Entries[It->second].second = std::move(Payload);
          } else {
            Position.emplace(Key, Entries.size());
            Entries.emplace_back(Key, std::move(Payload));
          }
          return true;
        });
  };
  mergeFile(snapshotPath());
  mergeFile(journalPath());

  std::string Out = headerFrame(Config.Fingerprint);
  for (const auto &E : Entries)
    journal::appendFrame(Out, FrameEntry, E.second);

  // tmp + fsync + atomic rename: a crash mid-compaction leaves either the
  // old snapshot or the new one, never a half-written file under the real
  // name.
  std::string Tmp = Config.Dir + "/snapshot.tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    degradeLocked();
    return;
  }
  bool Wrote = writeAll(Fd, Out.data(), Out.size());
  if (Wrote && Config.Fsync != FsyncMode::Never)
    ::fsync(Fd);
  ::close(Fd);
  if (!Wrote || ::rename(Tmp.c_str(), snapshotPath().c_str()) != 0) {
    ::unlink(Tmp.c_str());
    degradeLocked();
    return;
  }

  // Everything merged lives in the snapshot now; restart the journal.
  std::string Header = headerFrame(Config.Fingerprint);
  if (::ftruncate(JournalFd, 0) != 0 ||
      ::lseek(JournalFd, 0, SEEK_SET) < 0 ||
      !writeAll(JournalFd, Header.data(), Header.size())) {
    degradeLocked();
    return;
  }
  if (Config.Fsync != FsyncMode::Never)
    ::fsync(JournalFd);
  JournalBytes = Header.size();
  AppendsSinceSync = 0;
  Stats.Compactions += 1;
  Stats.SnapshotLoaded = true;
}
