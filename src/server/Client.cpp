//===- server/Client.cpp - Retrying rapd client -----------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include "support/Hash.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define RAP_CLIENT_HAVE_UNIX 1
#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define RAP_CLIENT_HAVE_UNIX 0
#endif

using namespace rap;
using namespace rap::server;

Client::Client(const ClientConfig &Config) : Config(Config) {}

Client::~Client() { close(); }

void Client::close() {
#if RAP_CLIENT_HAVE_UNIX
  if (Fd >= 0)
    ::close(Fd);
#endif
  Fd = -1;
  // A torn connection's buffered bytes belong to a dead conversation.
  RecvBuf.clear();
}

uint64_t Client::requestFingerprint(const std::string &RequestLine) {
  return hashString(RequestLine);
}

#if RAP_CLIENT_HAVE_UNIX

bool Client::ensureConnected(std::string &Error) {
  if (Fd >= 0)
    return true;
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Config.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + Config.SocketPath;
    ::close(S);
    return false;
  }
  std::memcpy(Addr.sun_path, Config.SocketPath.c_str(),
              Config.SocketPath.size());

  // Non-blocking connect so a listener that exists but never accepts cannot
  // wedge the client past ConnectTimeoutMs. AF_UNIX usually resolves
  // immediately (success or ECONNREFUSED/ENOENT), making this cheap.
  int Flags = ::fcntl(S, F_GETFL, 0);
  ::fcntl(S, F_SETFL, Flags | O_NONBLOCK);
  int RC = ::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  if (RC != 0 && (errno == EINPROGRESS || errno == EAGAIN)) {
    struct pollfd P;
    P.fd = S;
    P.events = POLLOUT;
    P.revents = 0;
    int PR = ::poll(&P, 1, static_cast<int>(Config.ConnectTimeoutMs));
    if (PR <= 0) {
      Error = "connect timeout after " +
              std::to_string(Config.ConnectTimeoutMs) + "ms: " +
              Config.SocketPath;
      ::close(S);
      return false;
    }
    int SockErr = 0;
    socklen_t Len = sizeof(SockErr);
    ::getsockopt(S, SOL_SOCKET, SO_ERROR, &SockErr, &Len);
    if (SockErr != 0) {
      Error = std::string("connect: ") + std::strerror(SockErr);
      ::close(S);
      return false;
    }
  } else if (RC != 0) {
    Error = std::string("connect: ") + std::strerror(errno);
    ::close(S);
    return false;
  }
  ::fcntl(S, F_SETFL, Flags); // back to blocking; reads poll() explicitly

  Fd = S;
  RecvBuf.clear();
  if (EverConnected)
    ++Counters.Reconnects;
  EverConnected = true;
  return true;
}

bool Client::sendAll(const std::string &Data, std::string &Error) {
  size_t Off = 0;
  while (Off != Data.size()) {
    // MSG_NOSIGNAL: a server killed mid-send must surface as EPIPE, not
    // SIGPIPE terminating the *client* the soak is grading.
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("send: ") + std::strerror(errno);
      close();
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool Client::readLine(std::string &Line, int TimeoutMs, std::string &Error) {
  using Clock = std::chrono::steady_clock;
  auto Deadline = Clock::now() + std::chrono::milliseconds(TimeoutMs);
  for (;;) {
    size_t NL = RecvBuf.find('\n');
    if (NL != std::string::npos) {
      Line.assign(RecvBuf, 0, NL);
      RecvBuf.erase(0, NL + 1);
      return true;
    }
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    Deadline - Clock::now())
                    .count();
    if (Left <= 0) {
      Error = "response timeout after " + std::to_string(TimeoutMs) + "ms";
      close(); // a half-read line is useless; resend is the recovery
      return false;
    }
    struct pollfd P;
    P.fd = Fd;
    P.events = POLLIN;
    P.revents = 0;
    int PR = ::poll(&P, 1, static_cast<int>(std::min<long long>(Left, 1000)));
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("poll: ") + std::strerror(errno);
      close();
      return false;
    }
    if (PR == 0)
      continue; // slice expired; re-check the deadline
    char Buf[4096];
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("recv: ") + std::strerror(errno);
      close();
      return false;
    }
    if (N == 0) {
      Error = "connection closed by server";
      close();
      return false;
    }
    RecvBuf.append(Buf, static_cast<size_t>(N));
  }
}

#else // !RAP_CLIENT_HAVE_UNIX

bool Client::ensureConnected(std::string &Error) {
  Error = "unix-domain sockets unsupported on this platform";
  return false;
}
bool Client::sendAll(const std::string &, std::string &Error) {
  Error = "unix-domain sockets unsupported on this platform";
  return false;
}
bool Client::readLine(std::string &, int, std::string &Error) {
  Error = "unix-domain sockets unsupported on this platform";
  return false;
}

#endif

bool Client::call(const json::Value &Request, json::Value &Response,
                  std::string &Error) {
  return call(Request.str(), Response, Error);
}

bool Client::call(const std::string &RequestLine, json::Value &Response,
                  std::string &Error) {
  ++Counters.Requests;

  using Clock = std::chrono::steady_clock;
  const auto Start = Clock::now();
  auto remainingMs = [&]() -> long long {
    if (Config.RequestTimeoutMs == 0)
      return 1u << 30; // effectively unbounded
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       Clock::now() - Start)
                       .count();
    return static_cast<long long>(Config.RequestTimeoutMs) - Elapsed;
  };
  auto sleepBounded = [&](long long Ms) {
    Ms = std::min(Ms, std::max<long long>(remainingMs(), 0));
    if (Ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
  };

  // The id echo is the cross-talk guard: a response must answer *this*
  // request. Batches (arrays) and id-less requests skip the check — the
  // request/response lockstep alone orders those.
  json::Value Req;
  bool HasId = false;
  int64_t Id = 0;
  if (json::parse(RequestLine, Req) && Req.isObject() && Req["id"].isInt()) {
    HasId = true;
    Id = Req["id"].asInt();
  }

  unsigned Attempt = 0;
  uint64_t Backoff = std::max(1u, Config.BackoffMs);
  std::string LastError = "no attempt made";
  for (;;) {
    if (Attempt > Config.MaxRetries) {
      Error = "retry budget exhausted (" + std::to_string(Config.MaxRetries) +
              "): " + LastError;
      return false;
    }
    if (remainingMs() <= 0) {
      Error = "request budget exhausted (" +
              std::to_string(Config.RequestTimeoutMs) + "ms): " + LastError;
      return false;
    }
    if (Attempt != 0)
      ++Counters.Resends;

    if (!ensureConnected(LastError)) {
      ++Attempt;
      sleepBounded(static_cast<long long>(Backoff));
      Backoff = std::min<uint64_t>(Backoff * 2, Config.BackoffMaxMs);
      continue;
    }
    if (!sendAll(RequestLine + "\n", LastError)) {
      ++Attempt;
      sleepBounded(static_cast<long long>(Backoff));
      Backoff = std::min<uint64_t>(Backoff * 2, Config.BackoffMaxMs);
      continue;
    }

    // Read until a non-banner line: a fresh connection (or a reconnect
    // after a restart) may greet us with {"rapd":"v1",...} first.
    json::Value Parsed;
    bool Got = false;
    for (;;) {
      long long Left = remainingMs();
      if (Left <= 0)
        break;
      std::string Line;
      if (!readLine(Line, static_cast<int>(std::min<long long>(Left, 1 << 30)),
                    LastError))
        break;
      std::string ParseErr;
      if (!json::parse(Line, Parsed, &ParseErr)) {
        // A torn line from a killed server; the connection is poisoned.
        LastError = "unparseable response (" + ParseErr + ")";
        close();
        break;
      }
      if (Parsed.isObject() && Parsed.has("rapd")) {
        ++Counters.BannersSkipped;
        continue;
      }
      Got = true;
      break;
    }
    if (!Got) {
      ++Attempt;
      sleepBounded(static_cast<long long>(Backoff));
      Backoff = std::min<uint64_t>(Backoff * 2, Config.BackoffMaxMs);
      continue;
    }

    // Backpressure: honor the server's hint, then resend. The connection
    // stays up — overload is not a transport failure.
    if (Parsed.isObject() && Parsed["kind"].isString() &&
        Parsed["kind"].asString() == "overloaded") {
      ++Counters.OverloadedWaits;
      long long Wait = Parsed["retry_after_ms"].isInt()
                           ? Parsed["retry_after_ms"].asInt()
                           : static_cast<long long>(Backoff);
      ++Attempt;
      sleepBounded(Wait);
      continue;
    }

    if (HasId &&
        !(Parsed.isObject() && Parsed["id"].isInt() &&
          Parsed["id"].asInt() == Id)) {
      LastError = "response id mismatch (expected " + std::to_string(Id) + ")";
      close();
      ++Attempt;
      sleepBounded(static_cast<long long>(Backoff));
      Backoff = std::min<uint64_t>(Backoff * 2, Config.BackoffMaxMs);
      continue;
    }

    Response = std::move(Parsed);
    ++Counters.Responses;
    return true;
  }
}
