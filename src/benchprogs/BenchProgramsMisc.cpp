//===- benchprogs/BenchProgramsMisc.cpp - heapsort, hanoi, sieves -----------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"

namespace rap {

const char *MiscHsort = R"(
/* Heapsort over 300 pseudo-random integers. */
int a[301];
int n;
void siftdown(int l, int r) {
  int i = l;
  int done = 0;
  while (done == 0) {
    int j = 2 * i;
    if (j > r) {
      done = 1;
    } else {
      if (j < r) {
        if (a[j] < a[j + 1]) { j = j + 1; }
      }
      if (a[i] < a[j]) {
        int t = a[i];
        a[i] = a[j];
        a[j] = t;
        i = j;
      } else {
        done = 1;
      }
    }
  }
}
int main() {
  n = 300;
  int seed = 74755;
  for (int i = 1; i <= n; i = i + 1) {
    seed = (seed * 1309 + 13849) % 65536;
    a[i] = seed;
  }
  for (int l = n / 2; l >= 1; l = l - 1) {
    siftdown(l, n);
  }
  for (int r = n; r >= 2; r = r - 1) {
    int t = a[1];
    a[1] = a[r];
    a[r] = t;
    siftdown(1, r - 1);
  }
  int chk = 0;
  for (int i = 1; i <= n; i = i + 1) {
    chk = chk * 3 % 100000 + a[i] % 977;
  }
  int sorted = 1;
  for (int i = 1; i < n; i = i + 1) {
    if (a[i] > a[i + 1]) { sorted = 0; }
  }
  return chk * 10 + sorted;
}
)";

const char *MiscHanoi = R"(
/* Towers of Hanoi, 12 discs; pegs are numbered 1..3 so the spare peg is
   6 - from - to (keeps every function at most three parameters). */
int moves;
void mov(int n, int f, int t) {
  if (n == 1) {
    moves = moves + 1;
    return;
  }
  int o = 6 - f - t;
  mov(n - 1, f, o);
  moves = moves + 1;
  mov(n - 1, o, t);
}
int main() {
  moves = 0;
  mov(12, 1, 3);
  return moves;
}
)";

const char *MiscNsieve = R"(
/* nsieve: count primes below 4000 with a byte-per-candidate sieve. */
int flags[4000];
int main() {
  int n = 4000;
  int count = 0;
  for (int pass = 0; pass < 2; pass = pass + 1) {
    count = 0;
    for (int i = 2; i < n; i = i + 1) { flags[i] = 1; }
    for (int i = 2; i < n; i = i + 1) {
      if (flags[i] == 1) {
        for (int k = i + i; k < n; k = k + i) {
          flags[k] = 0;
        }
        count = count + 1;
      }
    }
  }
  return count;
}
)";

const char *MiscSieve = R"(
/* The classic BYTE sieve: odd numbers only, flags[i] represents 2i+3. */
int flags[8191];
int main() {
  int size = 8190;
  int count = 0;
  for (int iter = 0; iter < 2; iter = iter + 1) {
    count = 0;
    for (int i = 0; i <= size; i = i + 1) { flags[i] = 1; }
    for (int i = 0; i <= size; i = i + 1) {
      if (flags[i] == 1) {
        int prime = i + i + 3;
        for (int k = i + prime; k <= size; k = k + prime) {
          flags[k] = 0;
        }
        count = count + 1;
      }
    }
  }
  return count;
}
)";

} // namespace rap
