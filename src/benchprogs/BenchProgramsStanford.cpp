//===- benchprogs/BenchProgramsStanford.cpp - Stanford routines -------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniC ports of the Stanford-suite routines Table 1 reports: the Intmm
/// family (initmatrix, innerproduct, intmm), the Perm family (permute,
/// swap, initialize, perm), the Puzzle family (fit, place, trial, remove,
/// puzzle), and the Queens family (queens, try, doit). Each row is a
/// program whose hot code is the named routine, mirroring the paper's
/// per-routine reporting.
///
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"

namespace rap {

//===----------------------------------------------------------------------===//
// Intmm family (integer matrix multiply, 40x40 flattened)
//===----------------------------------------------------------------------===//

const char *StanfordInitmatrix = R"(
/* Intmm's Initrand/Initmatrix: fill a matrix with bounded pseudo-random
   values. */
int rma[1600];
int seed;
int rand100() {
  seed = (seed * 1309 + 13849) % 65536;
  return seed % 120 - 60;
}
void initmatrix(int base) {
  for (int i = 0; i < 40; i = i + 1) {
    for (int j = 0; j < 40; j = j + 1) {
      rma[base + i * 40 + j] = rand100();
    }
  }
}
int main() {
  seed = 74755;
  int chk = 0;
  for (int pass = 0; pass < 6; pass = pass + 1) {
    initmatrix(0);
    chk = chk + rma[pass * 41] + rma[1599 - pass];
  }
  return chk;
}
)";

const char *StanfordInnerproduct = R"(
/* Intmm's Innerproduct: result of one row times one column. */
int rma[1600]; int rmb[1600];
int innerproduct(int row, int col) {
  int result = 0;
  for (int k = 0; k < 40; k = k + 1) {
    result = result + rma[row * 40 + k] * rmb[k * 40 + col];
  }
  return result;
}
int main() {
  for (int i = 0; i < 1600; i = i + 1) {
    rma[i] = i % 23 - 11;
    rmb[i] = i % 17 - 8;
  }
  int chk = 0;
  for (int pass = 0; pass < 8; pass = pass + 1) {
    for (int r = 0; r < 40; r = r + 1) {
      chk = chk + innerproduct(r, (r + pass) % 40);
    }
  }
  return chk;
}
)";

const char *StanfordIntmm = R"(
/* Intmm: full 40x40 integer matrix multiply. */
int rma[1600]; int rmb[1600]; int rmr[1600];
int seed;
int rand100() {
  seed = (seed * 1309 + 13849) % 65536;
  return seed % 120 - 60;
}
int innerproduct(int row, int col) {
  int result = 0;
  for (int k = 0; k < 40; k = k + 1) {
    result = result + rma[row * 40 + k] * rmb[k * 40 + col];
  }
  return result;
}
int main() {
  seed = 74755;
  for (int i = 0; i < 1600; i = i + 1) {
    seed = (seed * 1309 + 13849) % 65536;
    rma[i] = seed % 120 - 60;
    seed = (seed * 1309 + 13849) % 65536;
    rmb[i] = seed % 120 - 60;
  }
  for (int i = 0; i < 40; i = i + 1) {
    for (int j = 0; j < 40; j = j + 1) {
      rmr[i * 40 + j] = innerproduct(i, j);
    }
  }
  int chk = 0;
  for (int i = 0; i < 1600; i = i + 1) {
    chk = chk * 3 % 1000000 + rmr[i] % 997;
  }
  return chk;
}
)";

//===----------------------------------------------------------------------===//
// Perm family (recursive permutation generation over 7 elements)
//===----------------------------------------------------------------------===//

const char *StanfordSwap = R"(
/* Perm's Swap, exercised by repeated in-place reversals. */
int v[64];
void swap(int a, int b) {
  int t = v[a];
  v[a] = v[b];
  v[b] = t;
}
int main() {
  int n = 64;
  for (int i = 0; i < n; i = i + 1) { v[i] = i * 7 % 53; }
  for (int pass = 0; pass < 400; pass = pass + 1) {
    int i = 0;
    int j = n - 1;
    while (i < j) {
      swap(i, j);
      i = i + 1;
      j = j - 1;
    }
  }
  int chk = 0;
  for (int i = 0; i < n; i = i + 1) { chk = chk * 5 % 100000 + v[i]; }
  return chk;
}
)";

const char *StanfordInitialize = R"(
/* Perm's Initialize: reset the permutation array between trials. */
int permarray[12];
int main() {
  int chk = 0;
  for (int pass = 0; pass < 3000; pass = pass + 1) {
    for (int i = 0; i <= 7; i = i + 1) {
      permarray[i] = i - 1;
    }
    chk = chk + permarray[7];
  }
  return chk;
}
)";

const char *StanfordPermute = R"(
/* Perm's Permute: the recursive heart of the benchmark. */
int permarray[12];
int pctr;
void swap(int a, int b) {
  int t = permarray[a];
  permarray[a] = permarray[b];
  permarray[b] = t;
}
void permute(int n) {
  pctr = pctr + 1;
  if (n != 1) {
    permute(n - 1);
    for (int k = n - 1; k >= 1; k = k - 1) {
      swap(n, k);
      permute(n - 1);
      swap(n, k);
    }
  }
}
int main() {
  pctr = 0;
  for (int i = 0; i <= 7; i = i + 1) { permarray[i] = i - 1; }
  permute(7);
  return pctr;
}
)";

const char *StanfordPerm = R"(
/* Perm: the full benchmark — five rounds of permuting 7 elements. */
int permarray[12];
int pctr;
void swap(int a, int b) {
  int t = permarray[a];
  permarray[a] = permarray[b];
  permarray[b] = t;
}
void permute(int n) {
  pctr = pctr + 1;
  if (n != 1) {
    permute(n - 1);
    for (int k = n - 1; k >= 1; k = k - 1) {
      swap(n, k);
      permute(n - 1);
      swap(n, k);
    }
  }
}
int main() {
  pctr = 0;
  for (int trial = 0; trial < 5; trial = trial + 1) {
    for (int i = 0; i <= 7; i = i + 1) { permarray[i] = i - 1; }
    permute(7);
  }
  return pctr;
}
)";

//===----------------------------------------------------------------------===//
// Puzzle family (Baskett's bin-packing puzzle, 1-D reduction)
//===----------------------------------------------------------------------===//

// A faithful reduction of Forest Baskett's Puzzle: pieces are interval
// shapes over a 1-D board; fit/place/remove/trial keep the original
// control structure (early-exit scans, recursive trial with backtracking).

const char *PuzzleCommon = R"(
int board[140];     /* 1 = occupied */
int shape[64];      /* 4 classes x 16 offsets; -1 terminates */
int pieceCount[4];  /* remaining pieces per class */
int kount;
int size;

void initShapes() {
  for (int i = 0; i < 64; i = i + 1) { shape[i] = -1; }
  /* class 0: run of 2 */
  shape[0] = 0; shape[1] = 1;
  /* class 1: run of 3 */
  shape[16] = 0; shape[17] = 1; shape[18] = 2;
  /* class 2: spaced pair */
  shape[32] = 0; shape[33] = 2;
  /* class 3: run of 5 */
  shape[48] = 0; shape[49] = 1; shape[50] = 2; shape[51] = 3; shape[52] = 4;
}

int fit(int c, int pos) {
  int k = 0;
  int ok = 1;
  while (shape[c * 16 + k] >= 0) {
    if (board[pos + shape[c * 16 + k]] == 1) { ok = 0; }
    k = k + 1;
  }
  return ok;
}

int place(int c, int pos) {
  int k = 0;
  while (shape[c * 16 + k] >= 0) {
    board[pos + shape[c * 16 + k]] = 1;
    k = k + 1;
  }
  pieceCount[c] = pieceCount[c] - 1;
  int i = pos;
  while (i < size) {
    if (board[i] == 0) { return i; }
    i = i + 1;
  }
  return size; /* board full */
}

void removePiece(int c, int pos) {
  int k = 0;
  while (shape[c * 16 + k] >= 0) {
    board[pos + shape[c * 16 + k]] = 0;
    k = k + 1;
  }
  pieceCount[c] = pieceCount[c] + 1;
}

int trial(int pos) {
  kount = kount + 1;
  if (pos >= size) { return 1; }
  for (int c = 0; c < 4; c = c + 1) {
    if (pieceCount[c] > 0) {
      if (fit(c, pos)) {
        int nextPos = place(c, pos);
        if (trial(nextPos) == 1) { return 1; }
        removePiece(c, pos);
      }
    }
  }
  return 0;
}
)";

const char *StanfordFit = R"(
PUZZLE_COMMON
int main() {
  initShapes();
  size = 120;
  int hits = 0;
  for (int pass = 0; pass < 40; pass = pass + 1) {
    for (int i = 0; i < size; i = i + 1) {
      board[i] = (i * 7 + pass) % 3 == 0;
    }
    for (int c = 0; c < 4; c = c + 1) {
      for (int pos = 0; pos + 8 < size; pos = pos + 1) {
        hits = hits + fit(c, pos);
      }
    }
  }
  return hits;
}
)";

const char *StanfordPlace = R"(
PUZZLE_COMMON
int main() {
  initShapes();
  size = 120;
  int acc = 0;
  for (int pass = 0; pass < 120; pass = pass + 1) {
    for (int i = 0; i < size; i = i + 1) { board[i] = 0; }
    for (int c = 0; c < 4; c = c + 1) { pieceCount[c] = 6; }
    for (int c = 0; c < 4; c = c + 1) {
      int pos = pass % 40;
      if (fit(c, pos)) {
        acc = acc + place(c, pos);
      }
    }
  }
  return acc;
}
)";

const char *StanfordRemove = R"(
PUZZLE_COMMON
int main() {
  initShapes();
  size = 120;
  int acc = 0;
  for (int pass = 0; pass < 120; pass = pass + 1) {
    for (int i = 0; i < size; i = i + 1) { board[i] = 0; }
    for (int c = 0; c < 4; c = c + 1) { pieceCount[c] = 6; }
    for (int c = 0; c < 4; c = c + 1) {
      int pos = (pass * 3) % 40;
      if (fit(c, pos)) {
        place(c, pos);
        removePiece(c, pos);
        acc = acc + pieceCount[c];
      }
    }
    acc = acc + board[pass % size];
  }
  return acc;
}
)";

const char *StanfordTrial = R"(
PUZZLE_COMMON
int main() {
  initShapes();
  size = 22;
  kount = 0;
  int solved = 0;
  for (int pass = 0; pass < 6; pass = pass + 1) {
    for (int i = 0; i < 140; i = i + 1) { board[i] = 0; }
    for (int i = size; i < 140; i = i + 1) { board[i] = 1; }
    board[pass] = 1;
    pieceCount[0] = 2;
    pieceCount[1] = 2;
    pieceCount[2] = 2;
    pieceCount[3] = 2;
    int start = 0;
    while (board[start] == 1) { start = start + 1; }
    solved = solved + trial(start);
  }
  return solved * 1000000 + kount;
}
)";

const char *StanfordPuzzle = R"(
PUZZLE_COMMON
int main() {
  initShapes();
  size = 31;
  kount = 0;
  int solved = 0;
  for (int pass = 0; pass < 3; pass = pass + 1) {
    for (int i = 0; i < 140; i = i + 1) { board[i] = 0; }
    for (int i = size; i < 140; i = i + 1) { board[i] = 1; }
    pieceCount[0] = 2;
    pieceCount[1] = 2;
    pieceCount[2] = 3;
    pieceCount[3] = 3;
    solved = solved + trial(pass);
  }
  return solved * 1000000 + kount;
}
)";

//===----------------------------------------------------------------------===//
// Queens family (eight queens with the classic a/b/c occupancy arrays)
//===----------------------------------------------------------------------===//

const char *QueensCommon = R"(
int acol[10];   /* column free */
int bdiag[20];  /* up diagonal free */
int cdiag[20];  /* down diagonal free */
int xrow[10];   /* queen position per column */
int solutions;

void clearBoard(int n) {
  for (int i = 0; i <= n; i = i + 1) { acol[i] = 1; xrow[i] = 0; }
  for (int i = 0; i < 2 * n + 2; i = i + 1) { bdiag[i] = 1; cdiag[i] = 1; }
}

void try(int c, int n) {
  for (int r = 1; r <= n; r = r + 1) {
    if (acol[r] == 1) {
      if (bdiag[r + c] == 1) {
        if (cdiag[r - c + n] == 1) {
          xrow[c] = r;
          acol[r] = 0;
          bdiag[r + c] = 0;
          cdiag[r - c + n] = 0;
          if (c == n) {
            solutions = solutions + 1;
          } else {
            try(c + 1, n);
          }
          acol[r] = 1;
          bdiag[r + c] = 1;
          cdiag[r - c + n] = 1;
        }
      }
    }
  }
}
)";

const char *StanfordQueens = R"(
QUEENS_COMMON
int main() {
  solutions = 0;
  clearBoard(8);
  try(1, 8);
  return solutions;  /* 92 */
}
)";

const char *StanfordTry = R"(
QUEENS_COMMON
int main() {
  /* Exercise the try routine itself on a smaller board, many times. */
  solutions = 0;
  for (int pass = 0; pass < 10; pass = pass + 1) {
    clearBoard(6);
    try(1, 6);
  }
  return solutions;  /* 10 * 4 */
}
)";

const char *StanfordDoit = R"(
QUEENS_COMMON
int main() {
  /* The Queens driver: repeat the whole experiment. */
  int total = 0;
  for (int i = 1; i <= 4; i = i + 1) {
    solutions = 0;
    clearBoard(7);
    try(1, 7);
    total = total + solutions;
  }
  return total;  /* 4 * 40 */
}
)";

} // namespace rap
