//===- benchprogs/BenchPrograms.cpp - Table 1 workload registry -------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"

#include <cstring>
#include <string>

namespace rap {

// Livermore + Linpack (BenchProgramsLivermore.cpp).
extern const char *LivermoreK1, *LivermoreK2, *LivermoreK3, *LivermoreK4,
    *LivermoreK5, *LivermoreK6, *LivermoreK7, *LivermoreK9, *LivermoreK10,
    *LivermoreK11, *LivermoreK12, *LivermoreK21, *LivermoreK22;
extern const char *LinpackDaxpy, *LinpackDdot, *LinpackDscal, *LinpackIdamax,
    *LinpackDmxpy;

// Misc (BenchProgramsMisc.cpp).
extern const char *MiscHsort, *MiscHanoi, *MiscNsieve, *MiscSieve;

// Stanford (BenchProgramsStanford.cpp).
extern const char *StanfordInitmatrix, *StanfordInnerproduct, *StanfordIntmm,
    *StanfordSwap, *StanfordInitialize, *StanfordPermute, *StanfordPerm,
    *PuzzleCommon, *StanfordFit, *StanfordPlace, *StanfordRemove,
    *StanfordTrial, *StanfordPuzzle, *QueensCommon, *StanfordQueens,
    *StanfordTry, *StanfordDoit;

namespace {

/// Splices the shared Puzzle/Queens routine bodies into program sources
/// that start with a placeholder line.
std::string assemble(const char *Source) {
  std::string S(Source);
  auto Substitute = [&](const char *Tag, const char *Body) {
    size_t Pos = S.find(Tag);
    if (Pos != std::string::npos)
      S.replace(Pos, std::strlen(Tag), Body);
  };
  Substitute("PUZZLE_COMMON", PuzzleCommon);
  Substitute("QUEENS_COMMON", QueensCommon);
  return S;
}

std::vector<BenchProgram> buildPrograms() {
  // Assembled sources need stable storage for the returned const char*.
  static std::vector<std::string> Storage;
  auto Add = [&](const char *Name, const char *Group,
                 const char *Source) -> BenchProgram {
    Storage.push_back(assemble(Source));
    return BenchProgram{Name, Group, Storage.back().c_str()};
  };

  std::vector<BenchProgram> P;
  // Livermore loops (13 of them, as in the paper).
  P.push_back(Add("loop1", "livermore", LivermoreK1));
  P.push_back(Add("loop2", "livermore", LivermoreK2));
  P.push_back(Add("loop3", "livermore", LivermoreK3));
  P.push_back(Add("loop4", "livermore", LivermoreK4));
  P.push_back(Add("loop5", "livermore", LivermoreK5));
  P.push_back(Add("loop6", "livermore", LivermoreK6));
  P.push_back(Add("loop7", "livermore", LivermoreK7));
  P.push_back(Add("loop9", "livermore", LivermoreK9));
  P.push_back(Add("loop10", "livermore", LivermoreK10));
  P.push_back(Add("loop11", "livermore", LivermoreK11));
  P.push_back(Add("loop12", "livermore", LivermoreK12));
  P.push_back(Add("loop21", "livermore", LivermoreK21));
  P.push_back(Add("loop22", "livermore", LivermoreK22));
  // cLinpack routines.
  P.push_back(Add("daxpy", "linpack", LinpackDaxpy));
  P.push_back(Add("ddot", "linpack", LinpackDdot));
  P.push_back(Add("dscal", "linpack", LinpackDscal));
  P.push_back(Add("idamax", "linpack", LinpackIdamax));
  P.push_back(Add("dmxpy", "linpack", LinpackDmxpy));
  // Heapsort, hanoi, sieves.
  P.push_back(Add("hsort", "misc", MiscHsort));
  P.push_back(Add("hanoi", "misc", MiscHanoi));
  P.push_back(Add("nsieve", "misc", MiscNsieve));
  P.push_back(Add("sieve", "misc", MiscSieve));
  // Stanford routines.
  P.push_back(Add("initmatrix", "stanford", StanfordInitmatrix));
  P.push_back(Add("innerproduct", "stanford", StanfordInnerproduct));
  P.push_back(Add("intmm", "stanford", StanfordIntmm));
  P.push_back(Add("permute", "stanford", StanfordPermute));
  P.push_back(Add("swap", "stanford", StanfordSwap));
  P.push_back(Add("initialize", "stanford", StanfordInitialize));
  P.push_back(Add("perm", "stanford", StanfordPerm));
  P.push_back(Add("fit", "stanford", StanfordFit));
  P.push_back(Add("place", "stanford", StanfordPlace));
  P.push_back(Add("trial", "stanford", StanfordTrial));
  P.push_back(Add("remove", "stanford", StanfordRemove));
  P.push_back(Add("puzzle", "stanford", StanfordPuzzle));
  P.push_back(Add("queens", "stanford", StanfordQueens));
  P.push_back(Add("try", "stanford", StanfordTry));
  P.push_back(Add("doit", "stanford", StanfordDoit));
  return P;
}

} // namespace
} // namespace rap

const std::vector<rap::BenchProgram> &rap::benchPrograms() {
  static std::vector<BenchProgram> Programs = buildPrograms();
  return Programs;
}

const rap::BenchProgram *rap::findBenchProgram(const char *Name) {
  for (const BenchProgram &P : benchPrograms())
    if (std::strcmp(P.Name, Name) == 0)
      return &P;
  return nullptr;
}
