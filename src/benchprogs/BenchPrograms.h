//===- benchprogs/BenchPrograms.h - Table 1 workloads -----------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 37 benchmark routines of the paper's Table 1, ported to MiniC:
/// 13 Livermore loops, 5 cLinpack routines, heapsort, hanoi, two sieves,
/// and 15 Stanford-suite routines. Every program's main() returns a
/// checksum so the harness can verify each allocated binary against the
/// unallocated reference run. Two substitutions versus the 1994 originals
/// are documented in DESIGN.md: problem sizes are scaled for interpretation,
/// and Livermore kernel 22's exp() uses a rational surrogate (MiniC has no
/// transcendentals) that preserves the loop's register/memory pattern.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_BENCHPROGS_BENCHPROGRAMS_H
#define RAP_BENCHPROGS_BENCHPROGRAMS_H

#include <vector>

namespace rap {

struct BenchProgram {
  const char *Name;   ///< the Table 1 row label
  const char *Group;  ///< "livermore", "linpack", "misc", "stanford"
  const char *Source; ///< MiniC source; main() returns the checksum
};

/// All 37 Table 1 programs, in the paper's row order.
const std::vector<BenchProgram> &benchPrograms();

/// Finds a program by name; returns nullptr when absent.
const BenchProgram *findBenchProgram(const char *Name);

} // namespace rap

#endif // RAP_BENCHPROGS_BENCHPROGRAMS_H
