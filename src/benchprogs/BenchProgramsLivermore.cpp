//===- benchprogs/BenchProgramsLivermore.cpp - Livermore + Linpack ----------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniC ports of the 13 Livermore loops and 5 cLinpack routines used by
/// Table 1. Kernels keep the original loop structure and reference pattern;
/// problem sizes are scaled for interpretation (DESIGN.md).
///
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"

namespace rap {

const char *LivermoreK1 = R"(
/* Livermore kernel 1: hydro fragment. */
float x[440]; float y[440]; float z[440];
int main() {
  int n = 400;
  for (int i = 0; i < n + 11; i = i + 1) { z[i] = 0.01 * i; }
  for (int i = 0; i < n; i = i + 1) { y[i] = 0.002 * i; x[i] = 0.0; }
  float q = 0.5; float r = 4.86; float t = 276.0;
  for (int l = 0; l < 3; l = l + 1) {
    for (int k = 0; k < n; k = k + 1) {
      x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
    }
  }
  float s = 0.0;
  for (int k = 0; k < n; k = k + 1) { s = s + x[k]; }
  return s;
}
)";

const char *LivermoreK2 = R"(
/* Livermore kernel 2: ICCG excerpt (incomplete Cholesky, conjugate
   gradient); the halving loop is the interesting control structure. */
float x[1024]; float v[1024];
int main() {
  int n = 512;
  for (int i = 0; i < 2 * n; i = i + 1) {
    x[i] = 0.0001 * (i + 1);
    v[i] = 0.0002 * (i + 1);
  }
  for (int l = 0; l < 3; l = l + 1) {
    int ii = n;
    int ipntp = 0;
    while (ii > 0) {
      int ipnt = ipntp;
      ipntp = ipntp + ii;
      ii = ii / 2;
      int i = ipntp - 1;
      for (int k = ipnt + 1; k < ipntp; k = k + 2) {
        i = i + 1;
        x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
      }
    }
  }
  float s = 0.0;
  for (int k = 0; k < 2 * n; k = k + 1) { s = s + x[k]; }
  return s * 1000000.0;
}
)";

const char *LivermoreK3 = R"(
/* Livermore kernel 3: inner product. */
float x[600]; float z[600];
int main() {
  int n = 600;
  for (int i = 0; i < n; i = i + 1) {
    x[i] = 0.001 * i;
    z[i] = 0.002 * (n - i);
  }
  float q = 0.0;
  for (int l = 0; l < 5; l = l + 1) {
    for (int k = 0; k < n; k = k + 1) {
      q = q + z[k] * x[k];
    }
  }
  return q;
}
)";

const char *LivermoreK4 = R"(
/* Livermore kernel 4: banded linear equations. */
float x[1300]; float y[1300];
int main() {
  int n = 1000;
  for (int i = 0; i < 1300; i = i + 1) {
    x[i] = 0.001 * (i + 1);
    y[i] = 1.0 / (i + 1);
  }
  int m = (1001 - 7) / 2;
  for (int l = 0; l < 4; l = l + 1) {
    for (int k = 6; k < 1001; k = k + m) {
      int lw = k - 6;
      float temp = x[k - 1];
      for (int j = 4; j < n; j = j + 5) {
        temp = temp - x[lw] * y[j];
        lw = lw + 1;
      }
      x[k - 1] = y[4] * temp;
    }
  }
  float s = 0.0;
  for (int k = 0; k < n; k = k + 1) { s = s + x[k]; }
  return s * 1000.0;
}
)";

const char *LivermoreK5 = R"(
/* Livermore kernel 5: tri-diagonal elimination, below diagonal. */
float x[1000]; float y[1000]; float z[1000];
int main() {
  int n = 1000;
  for (int i = 0; i < n; i = i + 1) {
    x[i] = 0.0;
    y[i] = 0.0001 * (i + 1);
    z[i] = 0.5 + 0.0001 * i;
  }
  x[0] = 1.0;
  for (int l = 0; l < 3; l = l + 1) {
    for (int i = 1; i < n; i = i + 1) {
      x[i] = z[i] * (y[i] - x[i - 1]);
    }
  }
  float s = 0.0;
  for (int i = 0; i < n; i = i + 1) { s = s + x[i]; }
  return s * 1000000.0;
}
)";

const char *LivermoreK6 = R"(
/* Livermore kernel 6: general linear recurrence equations. */
float w[64]; float b[4096];
int main() {
  int n = 60;
  for (int i = 0; i < n; i = i + 1) {
    w[i] = 0.01;
    for (int k = 0; k < n; k = k + 1) {
      b[k * n + i] = 0.0001 * (k + i + 2);
    }
  }
  for (int l = 0; l < 4; l = l + 1) {
    for (int i = 1; i < n; i = i + 1) {
      w[i] = 0.0100;
      for (int k = 0; k < i; k = k + 1) {
        w[i] = w[i] + b[k * n + i] * w[(i - k) - 1];
      }
    }
  }
  float s = 0.0;
  for (int i = 0; i < n; i = i + 1) { s = s + w[i]; }
  return s * 100000.0;
}
)";

const char *LivermoreK7 = R"(
/* Livermore kernel 7: equation of state fragment (high register
   pressure: one large expression over four arrays). */
float x[512]; float y[512]; float z[512]; float u[512];
int main() {
  int n = 480;
  for (int i = 0; i < n + 6; i = i + 1) {
    u[i] = 0.0005 * (i + 1);
  }
  for (int i = 0; i < n; i = i + 1) {
    x[i] = 0.0;
    y[i] = 0.001 * i;
    z[i] = 0.002 * i;
  }
  float r = 4.86; float q = 0.000001; float t = 276.0;
  for (int l = 0; l < 2; l = l + 1) {
    for (int k = 0; k < n; k = k + 1) {
      x[k] = u[k] + r * (z[k] + r * y[k]) +
             t * (u[k + 3] + r * (u[k + 2] + r * u[k + 1]) +
                  t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4])));
    }
  }
  float s = 0.0;
  for (int k = 0; k < n; k = k + 1) { s = s + x[k]; }
  return s;
}
)";

const char *LivermoreK9 = R"(
/* Livermore kernel 9: integrate predictors (13-wide rows, flattened). */
float px[3328];
int main() {
  int n = 256;
  for (int i = 0; i < n; i = i + 1) {
    for (int j = 0; j < 13; j = j + 1) {
      px[i * 13 + j] = 0.001 * (i + j + 1);
    }
  }
  float dm22 = 0.2; float dm23 = 0.3; float dm24 = 0.4; float dm25 = 0.5;
  float dm26 = 0.6; float dm27 = 0.7; float dm28 = 0.8; float c0 = 1.5;
  float flx = 0.001;
  for (int l = 0; l < 3; l = l + 1) {
    for (int i = 0; i < n; i = i + 1) {
      px[i * 13] =
          dm28 * px[i * 13 + 12] + dm27 * px[i * 13 + 11] +
          dm26 * px[i * 13 + 10] + dm25 * px[i * 13 + 9] +
          dm24 * px[i * 13 + 8] + dm23 * px[i * 13 + 7] +
          dm22 * px[i * 13 + 6] +
          c0 * (px[i * 13 + 4] + px[i * 13 + 5]) + flx;
    }
  }
  float s = 0.0;
  for (int i = 0; i < n; i = i + 1) { s = s + px[i * 13]; }
  return s * 100.0;
}
)";

const char *LivermoreK10 = R"(
/* Livermore kernel 10: difference predictors (long scalar chains keep
   many values live at once). */
float px[3328]; float cx[3328];
int main() {
  int n = 256;
  for (int i = 0; i < n; i = i + 1) {
    for (int j = 0; j < 13; j = j + 1) {
      px[i * 13 + j] = 0.001 * (i + j + 1);
      cx[i * 13 + j] = 0.0007 * (i + 2 * j + 1);
    }
  }
  for (int l = 0; l < 2; l = l + 1) {
    for (int i = 0; i < n; i = i + 1) {
      float ar = cx[i * 13 + 4];
      float br = ar - px[i * 13 + 4];
      px[i * 13 + 4] = ar;
      float cr = br - px[i * 13 + 5];
      px[i * 13 + 5] = br;
      float ar2 = cr - px[i * 13 + 6];
      px[i * 13 + 6] = cr;
      float br2 = ar2 - px[i * 13 + 7];
      px[i * 13 + 7] = ar2;
      float cr2 = br2 - px[i * 13 + 8];
      px[i * 13 + 8] = br2;
      float ar3 = cr2 - px[i * 13 + 9];
      px[i * 13 + 9] = cr2;
      float br3 = ar3 - px[i * 13 + 10];
      px[i * 13 + 10] = ar3;
      float cr3 = br3 - px[i * 13 + 11];
      px[i * 13 + 11] = br3;
      px[i * 13 + 12] = cr3;
    }
  }
  float s = 0.0;
  for (int i = 0; i < n; i = i + 1) {
    s = s + px[i * 13 + 12] + px[i * 13 + 7];
  }
  return s * 1000.0;
}
)";

const char *LivermoreK11 = R"(
/* Livermore kernel 11: first sum (prefix sum recurrence). */
float x[1000]; float y[1000];
int main() {
  int n = 1000;
  for (int i = 0; i < n; i = i + 1) { y[i] = 0.0001 * (i + 1); }
  for (int l = 0; l < 4; l = l + 1) {
    x[0] = y[0];
    for (int k = 1; k < n; k = k + 1) {
      x[k] = x[k - 1] + y[k];
    }
  }
  return x[n - 1] * 100.0;
}
)";

const char *LivermoreK12 = R"(
/* Livermore kernel 12: first difference. */
float x[1024]; float y[1024];
int main() {
  int n = 1000;
  for (int i = 0; i < n + 1; i = i + 1) { y[i] = 0.001 * i * i; }
  for (int l = 0; l < 4; l = l + 1) {
    for (int k = 0; k < n; k = k + 1) {
      x[k] = y[k + 1] - y[k];
    }
  }
  float s = 0.0;
  for (int k = 0; k < n; k = k + 1) { s = s + x[k]; }
  return s;
}
)";

const char *LivermoreK21 = R"(
/* Livermore kernel 21: matrix * matrix product (25x25). */
float px[625]; float vy[625]; float cx[625];
int main() {
  int n = 25;
  for (int i = 0; i < n * n; i = i + 1) {
    px[i] = 0.0;
    vy[i] = 0.001 * (i + 1);
    cx[i] = 0.5 / (i + 1);
  }
  for (int l = 0; l < 2; l = l + 1) {
    for (int k = 0; k < n; k = k + 1) {
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
          px[i * n + j] = px[i * n + j] + vy[i * n + k] * cx[k * n + j];
        }
      }
    }
  }
  float s = 0.0;
  for (int i = 0; i < n * n; i = i + 1) { s = s + px[i]; }
  return s;
}
)";

const char *LivermoreK22 = R"(
/* Livermore kernel 22: Planckian distribution. MiniC has no exp(); the
   paper's w = x / (exp(y) - 1) uses a rational surrogate with the same
   loads, stores, and live values per iteration (see DESIGN.md). */
float x[512]; float y[512]; float u[512]; float v[512]; float w[512];
int main() {
  int n = 500;
  for (int i = 0; i < n; i = i + 1) {
    x[i] = 0.001 * (i + 1);
    u[i] = 0.5 + 0.002 * i;
    v[i] = 1.0 + 0.001 * i;
    w[i] = 0.0;
  }
  for (int l = 0; l < 4; l = l + 1) {
    for (int k = 0; k < n; k = k + 1) {
      y[k] = u[k] / v[k];
      w[k] = x[k] / (y[k] * y[k] + y[k] + 0.5);
    }
  }
  float s = 0.0;
  for (int k = 0; k < n; k = k + 1) { s = s + w[k]; }
  return s * 1000.0;
}
)";

//===----------------------------------------------------------------------===//
// cLinpack routines
//===----------------------------------------------------------------------===//

const char *LinpackDaxpy = R"(
/* Linpack daxpy: y = y + a*x. */
float dx[800]; float dy[800];
int main() {
  int n = 800;
  for (int i = 0; i < n; i = i + 1) {
    dx[i] = 0.001 * (i + 1);
    dy[i] = 0.5 / (i + 1);
  }
  float da = 3.14159;
  for (int l = 0; l < 5; l = l + 1) {
    for (int i = 0; i < n; i = i + 1) {
      dy[i] = dy[i] + da * dx[i];
    }
  }
  float s = 0.0;
  for (int i = 0; i < n; i = i + 1) { s = s + dy[i]; }
  return s;
}
)";

const char *LinpackDdot = R"(
/* Linpack ddot: dot product with an accumulating scalar. */
float dx[800]; float dy[800];
int main() {
  int n = 800;
  for (int i = 0; i < n; i = i + 1) {
    dx[i] = 0.002 * (i + 1);
    dy[i] = 1.0 / (i + 2);
  }
  float dtemp = 0.0;
  for (int l = 0; l < 5; l = l + 1) {
    for (int i = 0; i < n; i = i + 1) {
      dtemp = dtemp + dx[i] * dy[i];
    }
  }
  return dtemp * 100.0;
}
)";

const char *LinpackDscal = R"(
/* Linpack dscal: x = a*x. */
float dx[1000];
int main() {
  int n = 1000;
  for (int i = 0; i < n; i = i + 1) { dx[i] = 0.001 * (i + 1); }
  float da = 1.0001;
  for (int l = 0; l < 8; l = l + 1) {
    for (int i = 0; i < n; i = i + 1) {
      dx[i] = da * dx[i];
    }
  }
  float s = 0.0;
  for (int i = 0; i < n; i = i + 1) { s = s + dx[i]; }
  return s;
}
)";

const char *LinpackIdamax = R"(
/* Linpack idamax: index of the element with the largest magnitude. */
float dx[1000];
int main() {
  int n = 1000;
  for (int i = 0; i < n; i = i + 1) {
    int m = (i * 37) % 100;
    dx[i] = 0.01 * m - 0.5;
  }
  int acc = 0;
  for (int l = 0; l < 6; l = l + 1) {
    int itemp = 0;
    float dmax = dx[0];
    if (dmax < 0.0) { dmax = -dmax; }
    for (int i = 1; i < n; i = i + 1) {
      float d = dx[i];
      if (d < 0.0) { d = -d; }
      if (d > dmax) {
        itemp = i;
        dmax = d;
      }
    }
    acc = acc + itemp;
    dx[l * 50] = 2.0 + l;
  }
  return acc;
}
)";

const char *LinpackDmxpy = R"(
/* Linpack dmxpy: y = y + M*x (matrix-vector multiply-add). */
float m[1600]; float xv[40]; float yv[40];
int main() {
  int n = 40;
  for (int i = 0; i < n; i = i + 1) {
    xv[i] = 0.01 * (i + 1);
    yv[i] = 0.0;
    for (int j = 0; j < n; j = j + 1) {
      m[j * n + i] = 0.001 * (i + j + 1);
    }
  }
  for (int l = 0; l < 6; l = l + 1) {
    for (int j = 0; j < n; j = j + 1) {
      for (int i = 0; i < n; i = i + 1) {
        yv[i] = yv[i] + xv[j] * m[j * n + i];
      }
    }
  }
  float s = 0.0;
  for (int i = 0; i < n; i = i + 1) { s = s + yv[i]; }
  return s * 10.0;
}
)";

} // namespace rap
