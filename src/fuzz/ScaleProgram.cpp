//===- fuzz/ScaleProgram.cpp - Seeded scale-program generator ---------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ScaleProgram.h"

using namespace rap::fuzz;

void ScaleProgramBuilder::line(const std::string &S) {
  Out += std::string(static_cast<size_t>(Indent) * 2, ' ') + S + "\n";
}

void ScaleProgramBuilder::resetPerFunction() {
  Vars.clear();
  LoopVars.clear();
  NextLoopVar = 0;
  NextTemp = 0;
}

std::string ScaleProgramBuilder::safeIndex() {
  if (!LoopVars.empty() && pick(2))
    return LoopVars[pick(static_cast<unsigned>(LoopVars.size()))];
  return std::to_string(pick(12));
}

std::string ScaleProgramBuilder::expr(unsigned Depth) {
  unsigned Kind = pick(Depth == 0 ? 3u : 6u);
  switch (Kind) {
  case 0:
    return std::to_string(static_cast<int>(Rng() % 40) - 20);
  case 1:
  case 2:
    if (Vars.empty())
      return std::to_string(static_cast<int>(Rng() % 10));
    return Vars[pick(static_cast<unsigned>(Vars.size()))];
  case 3: {
    const char *Ops[] = {" + ", " - ", " * "};
    return "(" + expr(Depth - 1) + Ops[pick(3)] + expr(Depth - 1) + ")";
  }
  case 4:
    return (pick(2) ? "ga[" : "gb[") + safeIndex() + "]";
  default:
    return "(" + expr(Depth - 1) + " / " + std::to_string(2 + pick(7)) + ")";
  }
}

std::string ScaleProgramBuilder::cond() {
  const char *Rel[] = {" < ", " <= ", " > ", " >= ", " == ", " != "};
  return "(" + expr(1) + Rel[pick(6)] + expr(1) + ")";
}

void ScaleProgramBuilder::emitStmt(unsigned Depth, bool AllowCalls) {
  unsigned Kind = pick(Depth == 0 ? 4u : 7u);
  switch (Kind) {
  case 0: // scalar assignment
    if (Vars.empty())
      return;
    line(Vars[pick(static_cast<unsigned>(Vars.size()))] + " = " + expr(2) +
         ";");
    return;
  case 1: // array store, index always in bounds
    line((pick(2) ? "ga[" : "gb[") + safeIndex() + "] = " + expr(2) + ";");
    return;
  case 2: // global accumulate
    line("gs = gs + " + expr(2) + ";");
    return;
  case 3: { // call a leaf / bounded recursion / mix — only where allowed
    if (!AllowCalls || (Leaves.empty() && Recs.empty())) {
      std::string T = "t" + std::to_string(NextTemp++);
      line("int " + T + " = " + expr(2) + ";");
      line("gs = gs + " + T + ";");
      return;
    }
    std::string Call;
    if (!Recs.empty() && pick(3) == 0)
      Call = Recs[pick(static_cast<unsigned>(Recs.size()))] + "(" +
             std::to_string(2 + pick(5)) + ")";
    else if (!Leaves.empty())
      Call = Leaves[pick(static_cast<unsigned>(Leaves.size()))] + "(" +
             expr(1) + ", " + expr(1) + ")";
    else
      Call = "mix(" + expr(1) + ", " + expr(1) + ")";
    if (!Vars.empty() && pick(2))
      line(Vars[pick(static_cast<unsigned>(Vars.size()))] + " = " + Call +
           ";");
    else
      line("gs = gs + " + Call + ";");
    return;
  }
  case 4: { // if / if-else
    line("if " + cond() + " {");
    ++Indent;
    unsigned N = 1 + pick(3);
    for (unsigned I = 0; I != N; ++I)
      emitStmt(Depth - 1, AllowCalls);
    --Indent;
    if (pick(2)) {
      line("} else {");
      ++Indent;
      N = 1 + pick(2);
      for (unsigned I = 0; I != N; ++I)
        emitStmt(Depth - 1, AllowCalls);
      --Indent;
    }
    line("}");
    return;
  }
  case 5: { // counted for loop; calls stay out of loop bodies so a
            // function's dynamic cost cannot multiply through the call graph
    std::string LV = "i" + std::to_string(NextLoopVar++);
    unsigned Trip = 2 + pick(4);
    line("for (int " + LV + " = 0; " + LV + " < " + std::to_string(Trip) +
         "; " + LV + " = " + LV + " + 1) {");
    LoopVars.push_back(LV);
    ++Indent;
    unsigned N = 1 + pick(3);
    for (unsigned I = 0; I != N; ++I)
      emitStmt(Depth - 1, /*AllowCalls=*/false);
    --Indent;
    LoopVars.pop_back();
    line("}");
    return;
  }
  default: { // wide branch: Fanout consecutive ifs — sibling regions
    unsigned Fanout = Config.WideBranchFanout ? Config.WideBranchFanout : 1;
    for (unsigned A = 0; A != Fanout; ++A) {
      line("if " + cond() + " {");
      ++Indent;
      emitStmt(0, AllowCalls);
      emitStmt(0, AllowCalls);
      --Indent;
      line("}");
    }
    return;
  }
  }
}

void ScaleProgramBuilder::emitFunction(unsigned Index) {
  resetPerFunction();
  std::string Name = "f" + std::to_string(Index);
  Out += "int " + Name + "(int a, int b) {\n";
  Indent = 1;
  Vars.push_back("a");
  Vars.push_back("b");

  // Live-across pressure band: initialized up front, all folded into the
  // return value, so every one spans the whole body.
  for (unsigned P = 0; P != Config.PressureVars; ++P) {
    std::string V = "p" + std::to_string(P);
    line("int " + V + " = " +
         (P % 2 ? "a * " + std::to_string(1 + P) + " - b"
                : "b * " + std::to_string(2 + P) + " + a") +
         ";");
    Vars.push_back(V);
  }

  // Leaves stay call-free; every third non-leaf is call-heavy when the
  // density dial says so.
  bool Leaf = Leaves.size() < 4 + Config.NumFunctions / 16;
  bool Calls = !Leaf && pick(100) < Config.CallDensityPct;
  unsigned Depth = 1 + pick(Config.MaxLoopDepth ? Config.MaxLoopDepth : 1);
  for (unsigned S = 0; S != Config.StmtsPerFunction; ++S)
    emitStmt(Depth, Calls);

  std::string Sum = "a + b";
  for (unsigned P = 0; P != Config.PressureVars; ++P)
    Sum += " + p" + std::to_string(P);
  line("return " + Sum + ";");
  Out += "}\n";
  Indent = 0;
  if (Leaf)
    Leaves.push_back(Name);
}

std::string ScaleProgramBuilder::buildModule() {
  Out.clear();
  Leaves.clear();
  Recs.clear();
  Rng.seed(Config.Seed);

  Out += "int ga[12];\nint gb[12];\nint gs;\n";
  Out += "int mix(int a, int b) {\n"
         "  int r = a * 3 - b;\n"
         "  if (r > 100) { r = r - 77; }\n"
         "  if (r < 0 - 100) { r = r + 55; }\n"
         "  return r;\n"
         "}\n";

  if (Config.Recursion) {
    // Bounded self-recursion: the argument strictly decreases, the guard
    // stops at zero, and callers pass small literals.
    for (unsigned R = 0; R != 2; ++R) {
      std::string Name = "rec" + std::to_string(R);
      Out += "int " + Name + "(int n) {\n";
      Out += "  if (n <= 0) { return 1; }\n";
      Out += "  return " + Name + "(n - 1) + mix(n, " + std::to_string(R + 2) +
             ");\n";
      Out += "}\n";
      Recs.push_back(Name);
    }
  }

  for (unsigned I = 0; I != Config.NumFunctions; ++I)
    emitFunction(I);

  // main() seeds the arrays, samples the functions (every module function
  // when there are few, a strided sample when there are thousands — main
  // itself must stay allocatable in reasonable time), and checksums.
  resetPerFunction();
  Out += "int main() {\n";
  Indent = 1;
  line("gs = 0;");
  line("for (int s = 0; s < 12; s = s + 1) {");
  ++Indent;
  line("ga[s] = s * 3 - 7;");
  line("gb[s] = 11 - s * 2;");
  --Indent;
  line("}");
  unsigned Stride = Config.NumFunctions <= 64
                        ? 1
                        : (Config.NumFunctions + 63) / 64;
  for (unsigned I = 0; I < Config.NumFunctions; I += Stride)
    line("gs = gs + f" + std::to_string(I) + "(" +
         std::to_string(static_cast<int>(I % 23) - 11) + ", " +
         std::to_string(static_cast<int>(I % 17) - 8) + ");");
  for (const std::string &R : Recs)
    line("gs = gs + " + R + "(6);");
  line("int chk = gs;");
  line("for (int ci = 0; ci < 12; ci = ci + 1) {");
  ++Indent;
  line("chk = chk * 31 + ga[ci] + gb[ci] * 7;");
  --Indent;
  line("}");
  line("return chk;");
  Out += "}\n";
  Indent = 0;
  return Out;
}

//===----------------------------------------------------------------------===//
// The deep-function workload
//===----------------------------------------------------------------------===//

void ScaleProgramBuilder::emitDeepLevel(unsigned Level) {
  // Each level contributes Fanout sibling subtrees; alternate loop and
  // branch shapes so both region kinds appear at every depth. Trip counts
  // stay at 2 — the point is a big *static* region tree, not a long run.
  for (unsigned S = 0; S != Config.DeepFanout; ++S) {
    bool AsLoop = (Level + S) % 2 == 0;
    if (AsLoop) {
      std::string LV = "i" + std::to_string(NextLoopVar++);
      line("for (int " + LV + " = 0; " + LV + " < 2; " + LV + " = " + LV +
           " + 1) {");
      LoopVars.push_back(LV);
    } else {
      line("if " + cond() + " {");
    }
    ++Indent;
    // Meat at this level: enough straight-line work that the region's own
    // graph build is non-trivial.
    for (unsigned W = 0; W != 3; ++W)
      emitStmt(0, /*AllowCalls=*/false);
    if (Level + 1 < Config.DeepDepth)
      emitDeepLevel(Level + 1);
    --Indent;
    if (AsLoop)
      LoopVars.pop_back();
    line("}");
  }
}

std::string ScaleProgramBuilder::buildDeepFunction() {
  Out.clear();
  Leaves.clear();
  Recs.clear();
  Rng.seed(Config.Seed);

  Out += "int ga[12];\nint gb[12];\nint gs;\n";
  resetPerFunction();
  Out += "int deep(int a, int b) {\n";
  Indent = 1;
  Vars.push_back("a");
  Vars.push_back("b");
  for (unsigned P = 0; P != Config.PressureVars; ++P) {
    std::string V = "p" + std::to_string(P);
    line("int " + V + " = " +
         (P % 2 ? "a - " + std::to_string(1 + P) : "b + " + std::to_string(P)) +
         ";");
    Vars.push_back(V);
  }
  emitDeepLevel(0);
  std::string Sum = "a + b";
  for (unsigned P = 0; P != Config.PressureVars; ++P)
    Sum += " + p" + std::to_string(P);
  line("return " + Sum + ";");
  Out += "}\n";
  Indent = 0;

  resetPerFunction();
  Out += "int main() {\n";
  Indent = 1;
  line("for (int s = 0; s < 12; s = s + 1) {");
  ++Indent;
  line("ga[s] = s * 5 - 9;");
  line("gb[s] = 13 - s * 3;");
  --Indent;
  line("}");
  line("gs = 0;");
  line("int chk = deep(3, 0 - 4) + deep(0 - 7, 2);");
  line("for (int ci = 0; ci < 12; ci = ci + 1) {");
  ++Indent;
  line("chk = chk * 31 + ga[ci] + gb[ci] * 7;");
  --Indent;
  line("}");
  line("return chk + gs;");
  Out += "}\n";
  Indent = 0;
  return Out;
}
