//===- fuzz/AstPrinter.h - AST back to MiniC source -------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a MiniC AST back to parseable source text. The fuzzer's AST-level
/// mutator edits the tree in place and re-prints it, so mutants stay
/// syntactically valid and the interesting failures move past the parser into
/// Sema, lowering, allocation, and execution.
///
/// The printer is total over every node the parser can produce (and the
/// implicit Cast nodes Sema inserts, which print as their operand), fully
/// parenthesizes expressions so it never has to reason about precedence, and
/// is deterministic: printing the same tree twice yields identical bytes.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_FUZZ_ASTPRINTER_H
#define RAP_FUZZ_ASTPRINTER_H

#include "frontend/Ast.h"

#include <string>

namespace rap::fuzz {

/// Renders \p TU as MiniC source.
std::string printMiniC(const TranslationUnit &TU);

/// Renders one expression (used in failure details and tests).
std::string printExpr(const Expr &E);

} // namespace rap::fuzz

#endif // RAP_FUZZ_ASTPRINTER_H
