//===- fuzz/Runner.h - Crash-free-contract fuzz runner ----------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one input through the crash-free compilation contract and classifies
/// the result. The contract (DESIGN.md §10): for every input — hostile or
/// well-formed — parse, sema, lowering, allocation ({GRA,RAP} × k), and
/// differential execution all complete inside the process, landing on
/// exactly one documented outcome. Rejecting the input with diagnostics is a
/// *clean* outcome; dying, hanging, or the allocators disagreeing about the
/// program's behaviour is a *failing* one.
///
/// Failing reports carry a stable Signature string (e.g.
/// "mismatch:rap:k3:return-value", "internal:lowering",
/// "alloc-error:gra:k5:injected-fault"). The reducer's predicate is
/// signature equality, so a minimized repro is guaranteed to reproduce the
/// *same* failure, not just some failure.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_FUZZ_RUNNER_H
#define RAP_FUZZ_RUNNER_H

#include "driver/Pipeline.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rap::fuzz {

/// Resource caps for one contract run. Defaults suit in-process fuzzing of
/// generator-sized programs: small enough to turn pathological inputs into
/// clean resource outcomes quickly, large enough that real programs finish.
struct FuzzLimits {
  /// Instruction budget for the reference (unallocated) run. Allocated runs
  /// get 8x this plus slack: spill code legitimately executes more
  /// instructions, never 8x more.
  uint64_t Fuel = 2'000'000;

  /// Per-function allocation wall-clock budget (AllocOptions::MaxAllocSeconds)
  /// — the anti-hang guard for the allocators themselves.
  double MaxAllocSeconds = 5.0;

  /// Inputs larger than this are clean-rejected before compilation.
  size_t MaxSourceBytes = 1u << 20;

  /// Register counts to test differentially (the paper's 3/5/7/9).
  std::vector<unsigned> Ks = {3, 5, 7, 9};

  /// Fault drill: inject this plan with fallback disabled, so the
  /// allocation failure surfaces as a failing report for the reducer.
  /// Empty = normal fuzzing (fallback on, degradation is a clean outcome).
  FaultPlan Faults;
};

enum class FuzzOutcome {
  CleanCompileError, ///< diagnostics rejected the input (expected, clean)
  CleanRun,          ///< every configuration ran and agreed
  CleanTrap,         ///< every configuration trapped identically (or the
                     ///< reference ran out of fuel: behaviour unobservable)
  Degraded,          ///< some function fell back to spill-everything, and
                     ///< the degraded program still agreed (clean)
  InternalError,     ///< FAILING: an "internal error" diagnostic — a bug
                     ///< escaped a stage and was caught by the last fence
  AllocFailure,      ///< FAILING: allocation failed hard (no-fallback mode)
  Hang,              ///< FAILING: an allocated run blew the scaled budget
                     ///< while the reference terminated
  Mismatch,          ///< FAILING: configurations disagree (value or trap)
};

const char *fuzzOutcomeName(FuzzOutcome O);

struct FuzzReport {
  FuzzOutcome Outcome = FuzzOutcome::CleanRun;
  /// Stable failure identity (reducer predicate); empty for clean outcomes.
  std::string Signature;
  /// Human-readable expected-vs-got / diagnostic excerpt.
  std::string Detail;

  bool failing() const {
    return Outcome == FuzzOutcome::InternalError ||
           Outcome == FuzzOutcome::AllocFailure ||
           Outcome == FuzzOutcome::Hang || Outcome == FuzzOutcome::Mismatch;
  }
};

/// Runs \p Source through the full contract under \p Limits.
FuzzReport runContract(const std::string &Source, const FuzzLimits &Limits);

/// Writes a self-contained repro artifact: a valid-to-replay .mc file whose
/// leading comment block records the failure signature, the limits, and the
/// expected-vs-got detail. Returns the path written, or "" on I/O failure.
/// \p Dir is created if missing.
std::string writeRepro(const std::string &Dir, const std::string &Name,
                       const std::string &Source, const FuzzReport &Report,
                       const FuzzLimits &Limits);

} // namespace rap::fuzz

#endif // RAP_FUZZ_RUNNER_H
