//===- fuzz/RandomProgram.h - Seeded MiniC program generator ----*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random — but always terminating, in-bounds, and
/// deterministic — MiniC programs: the well-formed seed corpus of the fuzzer
/// (rapfuzz mutates these) and the generator behind the differential tests
/// (DESIGN.md oracle #2). Programs use integer arithmetic only so
/// results compare exactly; every variable is initialized at declaration;
/// loops are counted `for` loops whose induction variable is never
/// reassigned; array indices are loop variables or in-range literals.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_FUZZ_RANDOMPROGRAM_H
#define RAP_FUZZ_RANDOMPROGRAM_H

#include <random>
#include <string>
#include <vector>

namespace rap::fuzz {

class RandomProgramBuilder {
public:
  explicit RandomProgramBuilder(unsigned Seed) : Rng(Seed) {}

  std::string build() {
    Out.clear();
    // A couple of global arrays indexed by loop variables.
    Out += "int ga[12];\nint gb[12];\nint gs;\n";
    emitHelper();
    Out += "int main() {\n";
    Indent = 1;
    // A pool of initialized scalars; more than any k so pressure is real.
    unsigned NumVars = 6 + Rng() % 6;
    for (unsigned I = 0; I != NumVars; ++I) {
      Vars.push_back("v" + std::to_string(I));
      line("int v" + std::to_string(I) + " = " +
           std::to_string(static_cast<int>(Rng() % 200) - 100) + ";");
    }
    line("gs = 0;");
    unsigned NumStmts = 4 + Rng() % 8;
    for (unsigned I = 0; I != NumStmts; ++I)
      emitStmt(3);
    // Checksum over everything observable.
    std::string Sum = "gs";
    for (const std::string &V : Vars)
      Sum += " + " + V;
    line("int chk = " + Sum + ";");
    line("for (int ci = 0; ci < 12; ci = ci + 1) {");
    ++Indent;
    line("chk = chk * 31 + ga[ci] + gb[ci] * 7;");
    --Indent;
    line("}");
    line("return chk;");
    Out += "}\n";
    return Out;
  }

private:
  void line(const std::string &S) {
    Out += std::string(static_cast<size_t>(Indent) * 2, ' ') + S + "\n";
  }

  unsigned pick(unsigned N) { return static_cast<unsigned>(Rng() % N); }

  void emitHelper() {
    Out += "int mix(int a, int b) {\n"
           "  int r = a * 3 - b;\n"
           "  if (r > 100) { r = r - 77; }\n"
           "  if (r < 0 - 100) { r = r + 55; }\n"
           "  return r;\n"
           "}\n";
  }

  /// A random int expression over initialized variables.
  std::string expr(unsigned Depth) {
    unsigned Kind = pick(Depth == 0 ? 3u : 7u);
    switch (Kind) {
    case 0:
      return std::to_string(static_cast<int>(Rng() % 40) - 20);
    case 1:
    case 2: {
      if (Vars.empty())
        return std::to_string(static_cast<int>(Rng() % 10));
      return Vars[pick(static_cast<unsigned>(Vars.size()))];
    }
    case 3: {
      const char *Ops[] = {" + ", " - ", " * "};
      return "(" + expr(Depth - 1) + Ops[pick(3)] + expr(Depth - 1) + ")";
    }
    case 4: {
      // Array read with a safe index.
      return (pick(2) ? "ga[" : "gb[") + safeIndex() + "]";
    }
    case 5:
      return "mix(" + expr(Depth - 1) + ", " + expr(Depth - 1) + ")";
    default:
      return "(" + expr(Depth - 1) + " / " +
             std::to_string(2 + pick(7)) + ")";
    }
  }

  std::string cond(unsigned Depth) {
    const char *Rel[] = {" < ", " <= ", " > ", " >= ", " == ", " != "};
    std::string C = "(" + expr(Depth) + Rel[pick(6)] + expr(Depth) + ")";
    if (pick(3) == 0)
      C += (pick(2) ? " && " : " || ") + std::string("(") + expr(1) +
           (pick(2) ? " > 0)" : " <= 5)");
    return C;
  }

  std::string safeIndex() {
    if (!LoopVars.empty() && pick(2))
      return LoopVars[pick(static_cast<unsigned>(LoopVars.size()))];
    return std::to_string(pick(12));
  }

  void emitStmt(unsigned Depth) {
    unsigned Kind = pick(Depth == 0 ? 3u : 6u);
    switch (Kind) {
    case 0: { // scalar assignment
      if (Vars.empty())
        return;
      line(Vars[pick(static_cast<unsigned>(Vars.size()))] + " = " + expr(2) +
           ";");
      return;
    }
    case 1: // array store
      line((pick(2) ? "ga[" : "gb[") + safeIndex() + "] = " + expr(2) + ";");
      return;
    case 2: // global accumulate
      line("gs = gs + " + expr(2) + ";");
      return;
    case 3: { // if / if-else
      line("if (" + cond(1) + ") {");
      ++Indent;
      unsigned N = 1 + pick(3);
      for (unsigned I = 0; I != N; ++I)
        emitStmt(Depth - 1);
      --Indent;
      if (pick(2)) {
        line("} else {");
        ++Indent;
        N = 1 + pick(2);
        for (unsigned I = 0; I != N; ++I)
          emitStmt(Depth - 1);
        --Indent;
      }
      line("}");
      return;
    }
    case 4: { // counted for loop (bounded, induction var protected)
      std::string LV = "i" + std::to_string(NextLoopVar++);
      unsigned Trip = 2 + pick(9); // <= 10, within array bounds of 12
      line("for (int " + LV + " = 0; " + LV + " < " + std::to_string(Trip) +
           "; " + LV + " = " + LV + " + 1) {");
      LoopVars.push_back(LV);
      ++Indent;
      unsigned N = 1 + pick(3);
      for (unsigned I = 0; I != N; ++I)
        emitStmt(Depth - 1);
      --Indent;
      LoopVars.pop_back();
      line("}");
      return;
    }
    default: { // fresh scoped variable used immediately
      std::string T = "t" + std::to_string(NextTemp++);
      line("int " + T + " = " + expr(2) + ";");
      line("gs = gs + " + T + " * " + std::to_string(1 + pick(5)) + ";");
      return;
    }
    }
  }

  std::mt19937 Rng;
  std::string Out;
  int Indent = 0;
  std::vector<std::string> Vars;
  std::vector<std::string> LoopVars;
  unsigned NextLoopVar = 0;
  unsigned NextTemp = 0;
};

} // namespace rap::fuzz

#endif // RAP_FUZZ_RANDOMPROGRAM_H
