//===- fuzz/AstPrinter.cpp - AST back to MiniC source -----------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "fuzz/AstPrinter.h"

#include <cstdint>
#include <sstream>

using namespace rap;

namespace {

const char *typeName(TypeKind T) {
  switch (T) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Float:
    return "float";
  case TypeKind::Void:
    return "void";
  }
  return "int";
}

const char *binOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::LogicalAnd:
    return "&&";
  case BinaryOp::LogicalOr:
    return "||";
  }
  return "+";
}

class Printer {
public:
  std::string print(const TranslationUnit &TU) {
    for (const GlobalDecl &G : TU.Globals) {
      Out << typeName(G.Type) << " " << G.Name;
      if (G.ArraySize >= 0)
        Out << "[" << G.ArraySize << "]";
      Out << ";\n";
    }
    for (const auto &F : TU.Functions)
      printFunction(*F);
    return Out.str();
  }

  void printExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      // Negative literals print through subtraction: MiniC has no negative
      // literal token. INT64_MIN needs its own spelling because its
      // magnitude (2^63) is not lexable either.
      if (E.IntValue == INT64_MIN)
        Out << "(0 - " << INT64_MAX << " - 1)";
      else if (E.IntValue < 0)
        Out << "(0 - " << -E.IntValue << ")";
      else
        Out << E.IntValue;
      return;
    case ExprKind::FloatLit:
      Out << E.FloatValue;
      if (E.FloatValue == static_cast<int64_t>(E.FloatValue))
        Out << ".0";
      return;
    case ExprKind::VarRef:
      Out << E.Name;
      return;
    case ExprKind::ArrayRef:
      Out << E.Name << "[";
      printSub(E.Sub.get());
      Out << "]";
      return;
    case ExprKind::Call: {
      Out << E.Name << "(";
      bool First = true;
      for (const auto &A : E.Args) {
        if (!First)
          Out << ", ";
        First = false;
        printSub(A.get());
      }
      Out << ")";
      return;
    }
    case ExprKind::Binary:
      Out << "(";
      printSub(E.Lhs.get());
      Out << " " << binOpSpelling(E.BinOp) << " ";
      printSub(E.Rhs.get());
      Out << ")";
      return;
    case ExprKind::Unary:
      Out << "(" << (E.UnOp == UnaryOp::Neg ? "-" : "!");
      printSub(E.Sub.get());
      Out << ")";
      return;
    case ExprKind::Cast:
      // Implicit; MiniC has no cast syntax. Print the operand and let Sema
      // re-insert the conversion.
      printSub(E.Sub.get());
      return;
    }
    Out << "0";
  }

private:
  // Mutators may leave null children behind; print a harmless literal
  // instead of dereferencing.
  void printSub(const Expr *E) {
    if (E)
      printExpr(*E);
    else
      Out << "0";
  }

  void printFunction(const FuncDecl &F) {
    Out << typeName(F.ReturnType) << " " << F.Name << "(";
    bool First = true;
    for (const ParamDecl &P : F.Params) {
      if (!First)
        Out << ", ";
      First = false;
      Out << typeName(P.Type) << " " << P.Name;
    }
    Out << ") ";
    if (F.Body && F.Body->Kind == StmtKind::Block)
      printBlock(*F.Body);
    else
      Out << "{\n}";
    Out << "\n";
  }

  void printBlock(const Stmt &B) {
    Out << "{\n";
    ++Indent;
    for (const auto &S : B.Body)
      if (S)
        printStmt(*S);
    --Indent;
    indent();
    Out << "}";
  }

  void printStmt(const Stmt &S) {
    indent();
    switch (S.Kind) {
    case StmtKind::Block:
      printBlock(S);
      Out << "\n";
      return;
    case StmtKind::VarDecl:
      Out << typeName(S.DeclType) << " " << S.Name << " = ";
      printValueOrZero(S.Value.get());
      Out << ";\n";
      return;
    case StmtKind::Assign:
      Out << S.Name;
      if (S.Index) {
        Out << "[";
        printSub(S.Index.get());
        Out << "]";
      }
      Out << " = ";
      printValueOrZero(S.Value.get());
      Out << ";\n";
      return;
    case StmtKind::If:
      Out << "if (";
      printValueOrZero(S.Cond.get());
      Out << ") ";
      printBodyAsBlock(S.Then.get());
      if (S.Else) {
        Out << " else ";
        printBodyAsBlock(S.Else.get());
      }
      Out << "\n";
      return;
    case StmtKind::While:
      Out << "while (";
      printValueOrZero(S.Cond.get());
      Out << ") ";
      printBodyAsBlock(S.Then.get());
      Out << "\n";
      return;
    case StmtKind::For:
      // The parser only builds `for (decl-or-assign; cond; assign)`, so the
      // header parts print without their statement terminators.
      Out << "for (";
      printForClause(S.ForInit.get());
      Out << "; ";
      printValueOrZero(S.Cond.get());
      Out << "; ";
      printForClause(S.ForStep.get());
      Out << ") ";
      printBodyAsBlock(S.Then.get());
      Out << "\n";
      return;
    case StmtKind::Return:
      Out << "return";
      if (S.Value) {
        Out << " ";
        printExpr(*S.Value);
      }
      Out << ";\n";
      return;
    case StmtKind::ExprStmt:
      printValueOrZero(S.Value.get());
      Out << ";\n";
      return;
    }
  }

  /// A for-header clause: a VarDecl or Assign without the ';'.
  void printForClause(const Stmt *S) {
    if (!S)
      return;
    if (S->Kind == StmtKind::VarDecl) {
      Out << typeName(S->DeclType) << " " << S->Name << " = ";
      printValueOrZero(S->Value.get());
    } else if (S->Kind == StmtKind::Assign) {
      Out << S->Name;
      if (S->Index) {
        Out << "[";
        printSub(S->Index.get());
        Out << "]";
      }
      Out << " = ";
      printValueOrZero(S->Value.get());
    }
  }

  /// If/while/for bodies always print braced, whatever the tree holds.
  void printBodyAsBlock(const Stmt *S) {
    if (S && S->Kind == StmtKind::Block) {
      printBlock(*S);
      return;
    }
    Out << "{\n";
    ++Indent;
    if (S)
      printStmt(*S);
    --Indent;
    indent();
    Out << "}";
  }

  void printValueOrZero(const Expr *E) {
    if (E)
      printExpr(*E);
    else
      Out << "0";
  }

  void indent() {
    for (int I = 0; I != Indent; ++I)
      Out << "  ";
  }

public:
  std::string str() const { return Out.str(); }

private:
  std::ostringstream Out;
  int Indent = 0;
};

} // namespace

std::string rap::fuzz::printMiniC(const TranslationUnit &TU) {
  return Printer().print(TU);
}

std::string rap::fuzz::printExpr(const Expr &E) {
  Printer P;
  P.printExpr(E);
  return P.str();
}
