//===- fuzz/Mutator.h - Byte/token/AST source mutators ----------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic mutation of MiniC source at three levels of structure:
///
/// * Byte — flips, deletions, duplications, truncations, and raw-byte
///   insertions. Exercises the lexer's hostile-input paths (bad bytes,
///   unterminated constructs, monster literals).
/// * Token — lexes the input and deletes/duplicates/swaps/replaces tokens
///   before re-rendering. Produces inputs that look like MiniC locally but
///   are structurally wrong: the parser's recovery territory.
/// * Ast — parses the input and edits the tree (statement shuffles, operator
///   flips, literal boundary values, condition rewrites), then prints it
///   back with AstPrinter. Mutants stay parseable, pushing failures into
///   Sema, lowering, allocation, and differential execution.
///
/// All mutators are pure functions of (source, seed): the same pair always
/// yields the same mutant, so every fuzzing failure is replayable from two
/// integers.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_FUZZ_MUTATOR_H
#define RAP_FUZZ_MUTATOR_H

#include <cstdint>
#include <string>

namespace rap::fuzz {

enum class MutationLevel { Byte, Token, Ast };

/// Stable name for reports ("byte", "token", "ast").
const char *mutationLevelName(MutationLevel Level);

/// Returns a mutant of \p Source. Deterministic in (Source, Level, Seed).
/// The Ast level falls back to Token when \p Source does not parse (a tree
/// mutator needs a tree), and Token falls back to Byte when lexing yields
/// nothing to work with.
std::string mutate(const std::string &Source, MutationLevel Level,
                   uint32_t Seed);

} // namespace rap::fuzz

#endif // RAP_FUZZ_MUTATOR_H
