//===- fuzz/ScaleProgram.h - Seeded scale-program generator -----*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RandomProgramBuilder's big sibling: a seeded generator of *large* MiniC
/// workloads for the scaling story — modules of up to 10k functions and
/// single functions with deep, wide region trees — under the same safety
/// discipline (always terminating, always in-bounds, integer-only, so runs
/// compare exactly and never trap under a sufficient --fuel).
///
/// Two products:
///
///  * buildModule() — a NumFunctions-function module mixing straight-line,
///    loop-nest, wide-branch, call-heavy and (optionally) recursive shapes,
///    with a main() that exercises a sample of them and returns a checksum.
///    Call graphs are depth-bounded by construction: call-heavy functions
///    only call designated leaf functions (and mix()), recursion is
///    self-recursion on a strictly decreasing argument.
///
///  * buildDeepFunction() — one function whose region tree has Depth levels
///    of Fanout sibling loop/branch subtrees each, plus a configurable band
///    of live-across scalars. This is the region-parallel bench workload:
///    wide sibling groups are exactly what the series-parallel schedule can
///    overlap.
///
/// Same seed + same config => byte-identical program text (a property test
/// enforces this).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_FUZZ_SCALEPROGRAM_H
#define RAP_FUZZ_SCALEPROGRAM_H

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace rap::fuzz {

struct ScaleProgramConfig {
  unsigned Seed = 1;

  //===--- buildModule knobs ---------------------------------------------===//
  unsigned NumFunctions = 100; ///< generated functions besides main/mix
  unsigned MaxLoopDepth = 3;   ///< loop/branch nesting inside one function
  unsigned StmtsPerFunction = 10; ///< top-level statements per function
  /// Percentage (0..100) of non-leaf functions that make calls. Callees are
  /// always leaves, so call chains are at most two frames deep (plus mix).
  unsigned CallDensityPct = 30;
  bool Recursion = true; ///< emit bounded self-recursive functions
  /// Sibling arms per wide-branch shape (consecutive ifs in one region —
  /// the PDG's parallel composition).
  unsigned WideBranchFanout = 4;
  /// Scalars initialized at function entry and folded into the return
  /// value, so they stay live across the whole body (register pressure).
  unsigned PressureVars = 8;

  //===--- buildDeepFunction knobs ---------------------------------------===//
  unsigned DeepDepth = 4;  ///< levels of nesting
  unsigned DeepFanout = 3; ///< sibling subtrees per level
};

class ScaleProgramBuilder {
public:
  explicit ScaleProgramBuilder(const ScaleProgramConfig &Config)
      : Config(Config), Rng(Config.Seed) {}

  /// A whole module per the module knobs. Resets generator state, so two
  /// builders with equal configs produce byte-identical text.
  std::string buildModule();

  /// A program holding one deep, wide function `deep(a, b)` (per the
  /// deep-function knobs) plus a main() that calls it and returns the
  /// checksum. PressureVars applies per nesting level.
  std::string buildDeepFunction();

private:
  void line(const std::string &S);
  unsigned pick(unsigned N) { return static_cast<unsigned>(Rng() % N); }
  std::string expr(unsigned Depth);
  std::string cond();
  std::string safeIndex();
  void emitStmt(unsigned Depth, bool AllowCalls);
  void emitFunction(unsigned Index);
  void emitDeepLevel(unsigned Level);
  void resetPerFunction();

  ScaleProgramConfig Config;
  std::mt19937 Rng;
  std::string Out;
  int Indent = 0;

  std::vector<std::string> Vars;     ///< assignable scalars in scope
  std::vector<std::string> LoopVars; ///< live loop induction variables
  std::vector<std::string> Leaves;   ///< callable leaf functions f(a, b)
  std::vector<std::string> Recs;     ///< callable bounded-recursion fns r(n)
  unsigned NextLoopVar = 0;
  unsigned NextTemp = 0;
};

} // namespace rap::fuzz

#endif // RAP_FUZZ_SCALEPROGRAM_H
