//===- fuzz/Mutator.cpp - Byte/token/AST source mutators --------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "fuzz/AstPrinter.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <random>
#include <vector>

using namespace rap;
using namespace rap::fuzz;

namespace {

using Rng = std::mt19937;

unsigned pick(Rng &R, unsigned N) { return static_cast<unsigned>(R() % N); }

//===----------------------------------------------------------------------===//
// Byte level
//===----------------------------------------------------------------------===//

std::string mutateBytes(std::string S, Rng &R) {
  if (S.empty())
    S = "int main() { return 0; }\n";
  // Interesting bytes: MiniC punctuation (to create/destroy structure),
  // digits (to grow literals), and hostile non-source bytes.
  static const char Alphabet[] = "(){}[];=+-*/%<>!&|,0123456789 \t\n"
                                 "\x00\x7f\x80\xff\"'@$~`#\\";
  unsigned Ops = 1 + pick(R, 4);
  for (unsigned I = 0; I != Ops && !S.empty(); ++I) {
    size_t P = pick(R, static_cast<unsigned>(S.size()));
    switch (pick(R, 5)) {
    case 0: // flip one byte
      S[P] = Alphabet[pick(R, sizeof(Alphabet) - 1)];
      break;
    case 1: // delete a short span
      S.erase(P, 1 + pick(R, 8));
      break;
    case 2: { // duplicate a span (grows nesting and literals)
      size_t Len = std::min<size_t>(1 + pick(R, 16), S.size() - P);
      std::string Span = S.substr(P, Len);
      // Occasionally stutter the span many times: this is what builds the
      // "((((((..." and "11111..." inputs that found real stack overflows.
      unsigned Times = pick(R, 8) == 0 ? 64 + pick(R, 192) : 1;
      std::string Rep;
      for (unsigned T = 0; T != Times; ++T)
        Rep += Span;
      S.insert(P, Rep);
      break;
    }
    case 3: // insert raw bytes
      for (unsigned N = 1 + pick(R, 6); N; --N)
        S.insert(S.begin() + static_cast<ptrdiff_t>(P),
                 Alphabet[pick(R, sizeof(Alphabet) - 1)]);
      break;
    default: // truncate (simulates a cut-off file)
      S.resize(P);
      break;
    }
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Token level
//===----------------------------------------------------------------------===//

/// Re-renderable spelling of a token. Identifier/literal tokens carry their
/// own text/value; fixed tokens get their MiniC spelling.
std::string tokenSpelling(const Token &T) {
  switch (T.Kind) {
  case TokenKind::Eof:
    return "";
  case TokenKind::Identifier:
    return T.Text;
  case TokenKind::IntLiteral:
    return std::to_string(T.IntValue);
  case TokenKind::FloatLiteral:
    return std::to_string(T.FloatValue);
  case TokenKind::KwInt:
    return "int";
  case TokenKind::KwFloat:
    return "float";
  case TokenKind::KwVoid:
    return "void";
  case TokenKind::KwIf:
    return "if";
  case TokenKind::KwElse:
    return "else";
  case TokenKind::KwWhile:
    return "while";
  case TokenKind::KwFor:
    return "for";
  case TokenKind::KwReturn:
    return "return";
  case TokenKind::LParen:
    return "(";
  case TokenKind::RParen:
    return ")";
  case TokenKind::LBrace:
    return "{";
  case TokenKind::RBrace:
    return "}";
  case TokenKind::LBracket:
    return "[";
  case TokenKind::RBracket:
    return "]";
  case TokenKind::Comma:
    return ",";
  case TokenKind::Semi:
    return ";";
  case TokenKind::Assign:
    return "=";
  case TokenKind::Plus:
    return "+";
  case TokenKind::Minus:
    return "-";
  case TokenKind::Star:
    return "*";
  case TokenKind::Slash:
    return "/";
  case TokenKind::Percent:
    return "%";
  case TokenKind::Bang:
    return "!";
  case TokenKind::EqEq:
    return "==";
  case TokenKind::BangEq:
    return "!=";
  case TokenKind::Less:
    return "<";
  case TokenKind::LessEq:
    return "<=";
  case TokenKind::Greater:
    return ">";
  case TokenKind::GreaterEq:
    return ">=";
  case TokenKind::AmpAmp:
    return "&&";
  case TokenKind::PipePipe:
    return "||";
  }
  return "";
}

/// Spellings a replacement token is drawn from: every fixed token plus a few
/// boundary literals and identifiers (known names collide with declarations;
/// unknown ones drive name-resolution errors).
const char *replacementSpelling(Rng &R) {
  static const char *Pool[] = {
      "int",    "float", "void", "if",  "else", "while", "for",
      "return", "(",     ")",    "{",   "}",    "[",     "]",
      ",",      ";",     "=",    "+",   "-",    "*",     "/",
      "%",      "!",     "==",   "!=",  "<",    "<=",    ">",
      ">=",     "&&",    "||",   "0",   "1",    "9223372036854775807",
      "9223372036854775808", "main",   "ga",  "gs",   "mix",   "undefined_name",
  };
  return Pool[pick(R, sizeof(Pool) / sizeof(Pool[0]))];
}

std::string renderTokens(const std::vector<std::string> &Spellings) {
  std::string Out;
  for (const std::string &S : Spellings) {
    if (S.empty())
      continue;
    if (!Out.empty())
      Out += ' ';
    Out += S;
  }
  Out += '\n';
  return Out;
}

std::string mutateTokens(const std::string &Source, Rng &R) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  std::vector<Token> Toks = Lex.lexAll();
  while (!Toks.empty() && Toks.back().Kind == TokenKind::Eof)
    Toks.pop_back();
  if (Toks.empty())
    return mutateBytes(Source, R);

  std::vector<std::string> Sp;
  Sp.reserve(Toks.size());
  for (const Token &T : Toks)
    Sp.push_back(tokenSpelling(T));

  unsigned Ops = 1 + pick(R, 4);
  for (unsigned I = 0; I != Ops && !Sp.empty(); ++I) {
    size_t P = pick(R, static_cast<unsigned>(Sp.size()));
    switch (pick(R, 4)) {
    case 0:
      Sp.erase(Sp.begin() + static_cast<ptrdiff_t>(P));
      break;
    case 1: // duplicate (possibly many times: nesting/chain stress)
    {
      unsigned Times = pick(R, 8) == 0 ? 32 + pick(R, 96) : 1;
      Sp.insert(Sp.begin() + static_cast<ptrdiff_t>(P), Times, Sp[P]);
      break;
    }
    case 2: { // swap with another position
      size_t Q = pick(R, static_cast<unsigned>(Sp.size()));
      std::swap(Sp[P], Sp[Q]);
      break;
    }
    default:
      Sp[P] = replacementSpelling(R);
      break;
    }
  }
  return renderTokens(Sp);
}

//===----------------------------------------------------------------------===//
// AST level
//===----------------------------------------------------------------------===//

/// Collects mutable positions in the tree. Statements are collected as the
/// blocks that own them (so deletion/duplication keeps ownership simple);
/// expressions as raw pointers for in-place edits.
struct TreeIndex {
  std::vector<Stmt *> Blocks; ///< every Block statement (incl. func bodies)
  std::vector<Stmt *> Loops;  ///< While/For nodes
  std::vector<Stmt *> Ifs;
  std::vector<Expr *> Exprs;

  void walkExpr(Expr *E) {
    if (!E)
      return;
    Exprs.push_back(E);
    walkExpr(E->Sub.get());
    walkExpr(E->Lhs.get());
    walkExpr(E->Rhs.get());
    for (auto &A : E->Args)
      walkExpr(A.get());
  }

  void walkStmt(Stmt *S) {
    if (!S)
      return;
    if (S->Kind == StmtKind::Block)
      Blocks.push_back(S);
    if (S->Kind == StmtKind::While || S->Kind == StmtKind::For)
      Loops.push_back(S);
    if (S->Kind == StmtKind::If)
      Ifs.push_back(S);
    walkExpr(S->Value.get());
    walkExpr(S->Index.get());
    walkExpr(S->Cond.get());
    for (auto &C : S->Body)
      walkStmt(C.get());
    walkStmt(S->Then.get());
    walkStmt(S->Else.get());
    walkStmt(S->ForInit.get());
    walkStmt(S->ForStep.get());
  }
};

void mutateTreeOnce(TranslationUnit &TU, Rng &R) {
  TreeIndex Ix;
  for (auto &F : TU.Functions)
    Ix.walkStmt(F->Body.get());

  switch (pick(R, 6)) {
  case 0: { // delete a statement
    if (Ix.Blocks.empty())
      return;
    Stmt *B = Ix.Blocks[pick(R, static_cast<unsigned>(Ix.Blocks.size()))];
    if (B->Body.empty())
      return;
    B->Body.erase(B->Body.begin() +
                  static_cast<ptrdiff_t>(pick(
                      R, static_cast<unsigned>(B->Body.size()))));
    return;
  }
  case 1: { // swap two statements in one block
    if (Ix.Blocks.empty())
      return;
    Stmt *B = Ix.Blocks[pick(R, static_cast<unsigned>(Ix.Blocks.size()))];
    if (B->Body.size() < 2)
      return;
    size_t P = pick(R, static_cast<unsigned>(B->Body.size()));
    size_t Q = pick(R, static_cast<unsigned>(B->Body.size()));
    std::swap(B->Body[P], B->Body[Q]);
    return;
  }
  case 2: { // flip a binary operator
    std::vector<Expr *> Bins;
    for (Expr *E : Ix.Exprs)
      if (E->Kind == ExprKind::Binary)
        Bins.push_back(E);
    if (Bins.empty())
      return;
    Expr *E = Bins[pick(R, static_cast<unsigned>(Bins.size()))];
    // Div/Mod are over-represented on purpose: they create the divide-by-
    // zero traps the differential oracle compares across allocators.
    static const BinaryOp Ops[] = {BinaryOp::Add, BinaryOp::Sub,
                                   BinaryOp::Mul, BinaryOp::Div,
                                   BinaryOp::Div, BinaryOp::Mod,
                                   BinaryOp::Lt,  BinaryOp::Eq};
    E->BinOp = Ops[pick(R, sizeof(Ops) / sizeof(Ops[0]))];
    return;
  }
  case 3: { // boundary-value an int literal
    std::vector<Expr *> Lits;
    for (Expr *E : Ix.Exprs)
      if (E->Kind == ExprKind::IntLit)
        Lits.push_back(E);
    if (Lits.empty())
      return;
    Expr *E = Lits[pick(R, static_cast<unsigned>(Lits.size()))];
    static const int64_t Boundary[] = {0,  1,  -1, INT64_MAX, INT64_MIN,
                                       12, 11, 13, 1000000007};
    E->IntValue = Boundary[pick(R, sizeof(Boundary) / sizeof(Boundary[0]))];
    return;
  }
  case 4: { // swap an if's branches
    if (Ix.Ifs.empty())
      return;
    Stmt *S = Ix.Ifs[pick(R, static_cast<unsigned>(Ix.Ifs.size()))];
    std::swap(S->Then, S->Else);
    return;
  }
  default: { // perturb a loop bound (off-by-one to past-the-end)
    std::vector<Expr *> CondLits;
    for (Stmt *L : Ix.Loops) {
      TreeIndex Sub;
      Sub.walkExpr(L->Cond.get());
      for (Expr *E : Sub.Exprs)
        if (E->Kind == ExprKind::IntLit)
          CondLits.push_back(E);
    }
    if (CondLits.empty())
      return;
    Expr *E = CondLits[pick(R, static_cast<unsigned>(CondLits.size()))];
    E->IntValue += static_cast<int64_t>(pick(R, 5)) - 1; // -1..+3
    return;
  }
  }
}

std::string mutateAst(const std::string &Source, Rng &R) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  TranslationUnit TU = P.parseTranslationUnit();
  if (Diags.hasErrors())
    return mutateTokens(Source, R); // no tree to mutate
  unsigned Ops = 1 + pick(R, 3);
  for (unsigned I = 0; I != Ops; ++I)
    mutateTreeOnce(TU, R);
  return printMiniC(TU);
}

} // namespace

const char *rap::fuzz::mutationLevelName(MutationLevel Level) {
  switch (Level) {
  case MutationLevel::Byte:
    return "byte";
  case MutationLevel::Token:
    return "token";
  case MutationLevel::Ast:
    return "ast";
  }
  return "unknown";
}

std::string rap::fuzz::mutate(const std::string &Source, MutationLevel Level,
                              uint32_t Seed) {
  Rng R(Seed);
  switch (Level) {
  case MutationLevel::Byte:
    return mutateBytes(Source, R);
  case MutationLevel::Token:
    return mutateTokens(Source, R);
  case MutationLevel::Ast:
    return mutateAst(Source, R);
  }
  return Source;
}
