//===- fuzz/rapfuzz.cpp - Mutation-fuzzing driver ---------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// rapfuzz: drives the crash-free compilation contract over generated and
/// mutated MiniC inputs. For each seed in --seeds, the RandomProgramBuilder
/// emits a well-formed base program; rapfuzz runs it and --mutations mutants
/// of it (byte-, token-, and AST-level) through runContract. Failing inputs
/// are delta-debugged down to minimal repros and written as self-contained
/// artifacts to --out.
///
///   rapfuzz [options]
///     --seeds=LO:HI       generator seed range, HI exclusive (default 0:100)
///     --mutations=N       mutants per seed (default 7; 0 = bases only)
///     --level=byte|token|ast|mix   mutation level (default mix: cycle all)
///     --out=DIR           repro artifact directory (default FUZZ_repros)
///     --fuel=N            reference interpreter budget (default 2000000)
///     --max-seconds=S     stop the sweep after S seconds (0 = no limit)
///     --fault=SPEC        fault drill: inject SPEC (RAP_FAULT_INJECT
///                         syntax) with fallback disabled, so every input
///                         fails allocation and must reduce cleanly
///     --replay=FILE       run one file through the contract and exit
///     --no-reduce         report failures without minimizing them
///     -q                  only print the summary and failures
///
/// Exit codes: 0 sweep clean (no failing outcome), 1 at least one failure
/// (repros written unless --no-reduce), 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"
#include "fuzz/RandomProgram.h"
#include "fuzz/Reducer.h"
#include "fuzz/Runner.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace rap;
using namespace rap::fuzz;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: rapfuzz [--seeds=LO:HI] [--mutations=N]\n"
      "               [--level=byte|token|ast|mix] [--out=DIR] [--fuel=N]\n"
      "               [--max-seconds=S] [--fault=SPEC] [--replay=FILE]\n"
      "               [--no-reduce] [-q]\n"
      "exit codes: 0 clean sweep, 1 failures found, 2 usage error\n");
}

bool startsWith(const char *S, const char *Prefix) {
  return std::strncmp(S, Prefix, std::strlen(Prefix)) == 0;
}

struct Tally {
  unsigned Inputs = 0;
  unsigned CleanRun = 0;
  unsigned CleanTrap = 0;
  unsigned CleanCompileError = 0;
  unsigned Degraded = 0;
  unsigned Failures = 0;
  unsigned Repros = 0;

  void count(const FuzzReport &R) {
    ++Inputs;
    switch (R.Outcome) {
    case FuzzOutcome::CleanRun:
      ++CleanRun;
      break;
    case FuzzOutcome::CleanTrap:
      ++CleanTrap;
      break;
    case FuzzOutcome::CleanCompileError:
      ++CleanCompileError;
      break;
    case FuzzOutcome::Degraded:
      ++Degraded;
      break;
    default:
      ++Failures;
      break;
    }
  }
};

} // namespace

int main(int argc, char **argv) {
  unsigned SeedLo = 0, SeedHi = 100;
  unsigned Mutations = 7;
  std::string Level = "mix";
  std::string OutDir = "FUZZ_repros";
  std::string ReplayPath;
  double MaxSeconds = 0;
  bool Reduce = true;
  bool Quiet = false;
  FuzzLimits Limits;

  for (int I = 1; I != argc; ++I) {
    const char *Arg = argv[I];
    if (startsWith(Arg, "--seeds=")) {
      if (std::sscanf(Arg + 8, "%u:%u", &SeedLo, &SeedHi) != 2 ||
          SeedHi <= SeedLo) {
        std::fprintf(stderr, "rapfuzz: bad --seeds range '%s'\n", Arg + 8);
        return 2;
      }
    } else if (startsWith(Arg, "--mutations=")) {
      Mutations = static_cast<unsigned>(std::atoi(Arg + 12));
    } else if (startsWith(Arg, "--level=")) {
      Level = Arg + 8;
      if (Level != "byte" && Level != "token" && Level != "ast" &&
          Level != "mix") {
        std::fprintf(stderr, "rapfuzz: unknown level '%s'\n", Level.c_str());
        return 2;
      }
    } else if (startsWith(Arg, "--out=")) {
      OutDir = Arg + 6;
    } else if (startsWith(Arg, "--fuel=")) {
      long long F = std::atoll(Arg + 7);
      if (F <= 0) {
        std::fprintf(stderr, "rapfuzz: --fuel needs a positive budget\n");
        return 2;
      }
      Limits.Fuel = static_cast<uint64_t>(F);
    } else if (startsWith(Arg, "--max-seconds=")) {
      MaxSeconds = std::atof(Arg + 14);
    } else if (startsWith(Arg, "--fault=")) {
      try {
        Limits.Faults = FaultPlan::fromString(Arg + 8);
      } catch (const std::exception &E) {
        std::fprintf(stderr, "rapfuzz: bad --fault spec: %s\n", E.what());
        return 2;
      }
    } else if (startsWith(Arg, "--replay=")) {
      ReplayPath = Arg + 9;
    } else if (std::strcmp(Arg, "--no-reduce") == 0) {
      Reduce = false;
    } else if (std::strcmp(Arg, "-q") == 0) {
      Quiet = true;
    } else {
      std::fprintf(stderr, "rapfuzz: unknown option '%s'\n", Arg);
      usage();
      return 2;
    }
  }

  if (!ReplayPath.empty()) {
    std::ifstream In(ReplayPath);
    if (!In) {
      std::fprintf(stderr, "rapfuzz: cannot open '%s'\n", ReplayPath.c_str());
      return 2;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    FuzzReport R = runContract(SS.str(), Limits);
    std::printf("outcome: %s\n", fuzzOutcomeName(R.Outcome));
    if (!R.Signature.empty())
      std::printf("signature: %s\ndetail: %s\n", R.Signature.c_str(),
                  R.Detail.c_str());
    return R.failing() ? 1 : 0;
  }

  auto StartTime = std::chrono::steady_clock::now();
  auto outOfTime = [&] {
    if (MaxSeconds <= 0)
      return false;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         StartTime)
               .count() >= MaxSeconds;
  };

  Tally T;
  bool Stopped = false;

  auto handleInput = [&](const std::string &Source, unsigned Seed,
                         int Mutant, const char *LevelName) {
    FuzzReport R = runContract(Source, Limits);
    T.count(R);
    if (!R.failing()) {
      if (!Quiet && R.Outcome == FuzzOutcome::Degraded)
        std::printf("DEGRADED seed=%u mutant=%d\n", Seed, Mutant);
      return;
    }
    std::printf("FAIL seed=%u mutant=%d level=%s sig=%s\n", Seed, Mutant,
                LevelName, R.Signature.c_str());

    std::string Final = Source;
    if (Reduce) {
      std::string WantSig = R.Signature;
      ReduceResult RR = reduceSource(
          Source,
          [&](const std::string &Candidate) {
            return runContract(Candidate, Limits).Signature == WantSig;
          });
      Final = RR.Reduced;
      std::printf("  reduced %zu -> %zu bytes (%.0f%%) in %zu predicate "
                  "calls%s\n",
                  Source.size(), Final.size(),
                  Source.empty() ? 0.0
                                 : 100.0 * static_cast<double>(Final.size()) /
                                       static_cast<double>(Source.size()),
                  RR.PredicateCalls,
                  RR.BudgetExhausted ? " (budget exhausted)" : "");
    }
    std::string Name = "repro-seed" + std::to_string(Seed) + "-m" +
                       std::to_string(Mutant) + "-" +
                       std::to_string(T.Failures);
    std::string Path = writeRepro(OutDir, Name, Final, R, Limits);
    if (Path.empty()) {
      std::fprintf(stderr, "rapfuzz: cannot write repro to '%s'\n",
                   OutDir.c_str());
    } else {
      ++T.Repros;
      std::printf("  repro: %s\n", Path.c_str());
    }
  };

  static const MutationLevel Cycle[] = {MutationLevel::Byte,
                                        MutationLevel::Token,
                                        MutationLevel::Ast};
  for (unsigned Seed = SeedLo; Seed != SeedHi && !Stopped; ++Seed) {
    std::string Base = RandomProgramBuilder(Seed).build();
    handleInput(Base, Seed, -1, "none");
    for (unsigned M = 0; M != Mutations; ++M) {
      if (outOfTime()) {
        Stopped = true;
        break;
      }
      MutationLevel L = Level == "byte"    ? MutationLevel::Byte
                        : Level == "token" ? MutationLevel::Token
                        : Level == "ast"   ? MutationLevel::Ast
                                           : Cycle[M % 3];
      // Mutation seed mixes the generator seed and mutant index so every
      // (seed, mutant) pair is an independent, replayable input.
      uint32_t MutSeed = Seed * 2654435761u + M * 40503u + 1;
      std::string Mutant = mutate(Base, L, MutSeed);
      handleInput(Mutant, Seed, static_cast<int>(M), mutationLevelName(L));
    }
    if (outOfTime())
      Stopped = true;
  }

  std::printf("rapfuzz: seeds=%u:%u inputs=%u clean-run=%u clean-trap=%u "
              "compile-error=%u degraded=%u failures=%u repros=%u%s\n",
              SeedLo, SeedHi, T.Inputs, T.CleanRun, T.CleanTrap,
              T.CleanCompileError, T.Degraded, T.Failures, T.Repros,
              Stopped ? " (time-boxed)" : "");
  return T.Failures ? 1 : 0;
}
