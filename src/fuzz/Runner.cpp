//===- fuzz/Runner.cpp - Crash-free-contract fuzz runner --------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Runner.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace rap;
using namespace rap::fuzz;

namespace {

/// First line of a (possibly multi-line) diagnostic blob, for signatures.
std::string firstLine(const std::string &S) {
  size_t NL = S.find('\n');
  return NL == std::string::npos ? S : S.substr(0, NL);
}

bool isInternalError(const std::string &Errors) {
  return Errors.find("internal error:") != std::string::npos ||
         Errors.find("internal lowering error") != std::string::npos ||
         Errors.find("internal:") != std::string::npos;
}

/// "injected-fault" out of "allocation failed: injected-fault in 'f': ...".
std::string allocErrorKindOf(const std::string &Errors) {
  const std::string Tag = "allocation failed: ";
  size_t P = Errors.find(Tag);
  if (P == std::string::npos)
    return "unknown";
  size_t Start = P + Tag.size();
  size_t End = Errors.find_first_of(" \n", Start);
  return Errors.substr(Start, End == std::string::npos ? End : End - Start);
}

std::string configName(AllocatorKind Kind, unsigned K) {
  return std::string(Kind == AllocatorKind::Rap ? "rap" : "gra") + ":k" +
         std::to_string(K);
}

std::string faultPlanSpec(const FaultPlan &Plan) {
  if (Plan.empty())
    return "none";
  std::string Out;
  for (const FaultPlan::Arm &A : Plan.Arms) {
    if (!Out.empty())
      Out += ',';
    Out += std::string(faultSiteName(A.Site)) + ":" + std::to_string(A.Nth);
    if (!A.Function.empty())
      Out += "@" + A.Function;
  }
  return Out;
}

FuzzReport clean(FuzzOutcome O) {
  FuzzReport R;
  R.Outcome = O;
  return R;
}

FuzzReport fail(FuzzOutcome O, std::string Signature, std::string Detail) {
  FuzzReport R;
  R.Outcome = O;
  R.Signature = std::move(Signature);
  R.Detail = std::move(Detail);
  return R;
}

} // namespace

const char *rap::fuzz::fuzzOutcomeName(FuzzOutcome O) {
  switch (O) {
  case FuzzOutcome::CleanCompileError:
    return "clean-compile-error";
  case FuzzOutcome::CleanRun:
    return "clean-run";
  case FuzzOutcome::CleanTrap:
    return "clean-trap";
  case FuzzOutcome::Degraded:
    return "degraded";
  case FuzzOutcome::InternalError:
    return "internal-error";
  case FuzzOutcome::AllocFailure:
    return "alloc-failure";
  case FuzzOutcome::Hang:
    return "hang";
  case FuzzOutcome::Mismatch:
    return "mismatch";
  }
  return "unknown";
}

FuzzReport rap::fuzz::runContract(const std::string &Source,
                                  const FuzzLimits &Limits) {
  if (Source.size() > Limits.MaxSourceBytes)
    return clean(FuzzOutcome::CleanCompileError);

  // Reference: compile unallocated and execute on virtual registers. This
  // defines the input's behaviour; every allocated configuration must match
  // it.
  CompileOptions RefOpts;
  RefOpts.Allocator = AllocatorKind::None;
  CompileResult Ref = compileMiniC(Source, RefOpts);
  if (!Ref.ok()) {
    if (isInternalError(Ref.Errors))
      return fail(FuzzOutcome::InternalError,
                  "internal:" + firstLine(Ref.Errors), Ref.Errors);
    return clean(FuzzOutcome::CleanCompileError);
  }

  Interpreter RefInterp(*Ref.Prog);
  RunResult RefRun = RefInterp.run("main", Limits.Fuel);
  if (!RefRun.Ok && (RefRun.TrapInfo.Kind == TrapKind::FuelExhausted ||
                     RefRun.TrapInfo.Kind == TrapKind::NoEntry))
    // Fuel exhaustion: behaviour within budget is unobservable, differential
    // comparison would only measure the budget. No entry: every allocated
    // build lacks main identically. Both are clean stops.
    return clean(FuzzOutcome::CleanTrap);

  // Spill code legitimately executes more instructions than the reference —
  // bounded by the spill loads/stores per original instruction, far under
  // 8x. Past that the allocated program is looping where the reference did
  // not: a hang introduced by allocation.
  uint64_t AllocFuel = 8 * RefRun.Stats.Cycles + 10000;

  bool AnyDegraded = false;
  for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
    for (unsigned K : Limits.Ks) {
      CompileOptions Opts;
      Opts.Allocator = Kind;
      Opts.Alloc.K = K;
      Opts.Alloc.VerifyAssignments = true;
      Opts.Alloc.MaxAllocSeconds = Limits.MaxAllocSeconds;
      if (Limits.Faults.empty()) {
        Opts.Alloc.FallbackOnError = true;
      } else {
        // Fault drill: let the injected failure surface instead of degrading,
        // so it becomes a reducible failing signature.
        Opts.Alloc.Faults = Limits.Faults;
        Opts.Alloc.FallbackOnError = false;
      }
      std::string Cfg = configName(Kind, K);

      CompileResult CR = compileMiniC(Source, Opts);
      if (!CR.ok()) {
        if (CR.Errors.find("allocation failed: ") != std::string::npos)
          return fail(FuzzOutcome::AllocFailure,
                      "alloc-error:" + Cfg + ":" + allocErrorKindOf(CR.Errors),
                      CR.Errors);
        return fail(FuzzOutcome::InternalError,
                    "internal:" + firstLine(CR.Errors), CR.Errors);
      }
      AnyDegraded |= CR.degraded();

      Interpreter Interp(*CR.Prog);
      RunResult Run = Interp.run("main", AllocFuel);

      if (RefRun.Ok) {
        if (!Run.Ok) {
          if (Run.TrapInfo.Kind == TrapKind::FuelExhausted)
            return fail(FuzzOutcome::Hang, "hang:" + Cfg,
                        "reference halted in " +
                            std::to_string(RefRun.Stats.Cycles) +
                            " cycles; " + Cfg + " still running after " +
                            std::to_string(AllocFuel));
          return fail(FuzzOutcome::Mismatch,
                      "mismatch:" + Cfg + ":trap-vs-ok:" +
                          trapKindName(Run.TrapInfo.Kind),
                      "reference returned " + RefRun.ReturnValue.str() +
                          "; " + Cfg + " trapped: " + Run.TrapInfo.str());
        }
        if (!(Run.ReturnValue == RefRun.ReturnValue))
          return fail(FuzzOutcome::Mismatch,
                      "mismatch:" + Cfg + ":return-value",
                      "expected " + RefRun.ReturnValue.str() + ", got " +
                          Run.ReturnValue.str());
      } else {
        // Reference trapped (div-by-zero, out-of-bounds, ...): the allocated
        // build must trap the same way. PC/operands may differ (spill code
        // shifts them); the kind may not.
        if (Run.Ok)
          return fail(FuzzOutcome::Mismatch,
                      "mismatch:" + Cfg + ":ok-vs-trap:" +
                          trapKindName(RefRun.TrapInfo.Kind),
                      "reference trapped: " + RefRun.TrapInfo.str() + "; " +
                          Cfg + " returned " + Run.ReturnValue.str());
        if (Run.TrapInfo.Kind != RefRun.TrapInfo.Kind) {
          if (Run.TrapInfo.Kind == TrapKind::FuelExhausted)
            return fail(FuzzOutcome::Hang, "hang:" + Cfg,
                        "reference trapped (" + RefRun.TrapInfo.str() +
                            "); " + Cfg + " still running after " +
                            std::to_string(AllocFuel));
          return fail(FuzzOutcome::Mismatch, "mismatch:" + Cfg + ":trap-kind",
                      "reference trapped " + RefRun.TrapInfo.str() + "; " +
                          Cfg + " trapped " + Run.TrapInfo.str());
        }
      }
    }
  }

  if (AnyDegraded)
    return clean(FuzzOutcome::Degraded);
  return clean(RefRun.Ok ? FuzzOutcome::CleanRun : FuzzOutcome::CleanTrap);
}

std::string rap::fuzz::writeRepro(const std::string &Dir,
                                  const std::string &Name,
                                  const std::string &Source,
                                  const FuzzReport &Report,
                                  const FuzzLimits &Limits) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return "";
  std::string Path = Dir + "/" + Name + ".mc";
  std::ofstream Out(Path);
  if (!Out)
    return "";

  // Header: everything needed to replay and triage without the fuzz run
  // that produced it. Comments keep the artifact a valid MiniC input.
  Out << "// rapfuzz repro artifact\n";
  Out << "// outcome:   " << fuzzOutcomeName(Report.Outcome) << "\n";
  Out << "// signature: " << Report.Signature << "\n";
  std::istringstream Detail(Report.Detail);
  std::string Line;
  bool First = true;
  while (std::getline(Detail, Line)) {
    Out << (First ? "// detail:    " : "//            ") << Line << "\n";
    First = false;
  }
  std::string Ks;
  for (unsigned K : Limits.Ks)
    Ks += (Ks.empty() ? "" : ",") + std::to_string(K);
  Out << "// limits:    fuel=" << Limits.Fuel << " ks=" << Ks
      << " fault=" << faultPlanSpec(Limits.Faults) << "\n";
  Out << "// replay:    rapfuzz --replay=" << Name << ".mc";
  if (!Limits.Faults.empty())
    Out << " --fault=" << faultPlanSpec(Limits.Faults);
  Out << "\n\n";
  Out << Source;
  if (!Source.empty() && Source.back() != '\n')
    Out << "\n";
  return Path;
}
