//===- fuzz/Reducer.h - Delta-debugging repro reduction ---------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failing input to a minimal repro while preserving its failure
/// signature. Two delta-debugging passes: chunked line removal (fast, drops
/// whole statements and functions) followed by chunked lexical-unit removal
/// (tokens and operators within the surviving lines), iterated to a fixed
/// point under a bounded predicate-call budget.
///
/// The predicate is supplied by the caller — typically "runContract(x)
/// yields the same Signature" — so reduction can never wander onto a
/// *different* bug and call it the same repro.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_FUZZ_REDUCER_H
#define RAP_FUZZ_REDUCER_H

#include <cstddef>
#include <functional>
#include <string>

namespace rap::fuzz {

/// Returns true when the candidate still exhibits the original failure.
using ReducePredicate = std::function<bool(const std::string &)>;

struct ReduceResult {
  std::string Reduced;     ///< smallest variant found that still fails
  size_t PredicateCalls = 0;
  bool BudgetExhausted = false; ///< stopped on MaxCalls, not a fixed point
};

/// Reduces \p Source under \p StillFails. \p Source itself must satisfy the
/// predicate (callers check before reducing); the result always does.
/// \p MaxCalls bounds total predicate evaluations — each one replays the
/// whole compile pipeline, so this is the reducer's wall-clock budget.
ReduceResult reduceSource(const std::string &Source,
                          const ReducePredicate &StillFails,
                          size_t MaxCalls = 1500);

} // namespace rap::fuzz

#endif // RAP_FUZZ_REDUCER_H
