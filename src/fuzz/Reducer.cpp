//===- fuzz/Reducer.cpp - Delta-debugging repro reduction -------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include <cctype>
#include <vector>

using namespace rap::fuzz;

namespace {

/// Splits into lines (keeping content, not the terminators).
std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == '\n') {
      Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

/// Splits into lexical units: identifier/number runs, whitespace runs, and
/// single punctuation bytes. Joining units back is the identity.
std::vector<std::string> splitUnits(const std::string &S) {
  std::vector<std::string> Out;
  size_t I = 0;
  auto isWord = [](unsigned char C) {
    return std::isalnum(C) || C == '_' || C == '.';
  };
  while (I < S.size()) {
    size_t J = I + 1;
    if (isWord(static_cast<unsigned char>(S[I]))) {
      while (J < S.size() && isWord(static_cast<unsigned char>(S[J])))
        ++J;
    } else if (std::isspace(static_cast<unsigned char>(S[I]))) {
      while (J < S.size() && std::isspace(static_cast<unsigned char>(S[J])))
        ++J;
    }
    Out.push_back(S.substr(I, J - I));
    I = J;
  }
  return Out;
}

std::string joinUnits(const std::vector<std::string> &Units) {
  std::string Out;
  for (const std::string &U : Units)
    Out += U;
  return Out;
}

/// One ddmin-style pass over \p Parts: tries removing chunks of decreasing
/// size; an accepted removal restarts at the same granularity. Returns true
/// if anything was removed.
template <typename Join>
bool ddminPass(std::vector<std::string> &Parts, const Join &JoinFn,
               const ReducePredicate &StillFails, size_t MaxCalls,
               size_t &Calls, bool &Exhausted) {
  bool Removed = false;
  for (size_t Chunk = Parts.size() / 2; Chunk >= 1;) {
    bool RemovedAtThisChunk = false;
    for (size_t Start = 0; Start + Chunk <= Parts.size();) {
      if (Calls >= MaxCalls) {
        Exhausted = true;
        return Removed;
      }
      std::vector<std::string> Candidate;
      Candidate.reserve(Parts.size() - Chunk);
      Candidate.insert(Candidate.end(), Parts.begin(),
                       Parts.begin() + static_cast<ptrdiff_t>(Start));
      Candidate.insert(Candidate.end(),
                       Parts.begin() + static_cast<ptrdiff_t>(Start + Chunk),
                       Parts.end());
      ++Calls;
      if (StillFails(JoinFn(Candidate))) {
        Parts = std::move(Candidate);
        Removed = RemovedAtThisChunk = true;
        // Same Start now names the next chunk; do not advance.
      } else {
        ++Start;
      }
    }
    if (!RemovedAtThisChunk) {
      if (Chunk == 1)
        break;
      Chunk = Chunk / 2;
    }
    // else: retry the same chunk size on the shrunken input.
  }
  return Removed;
}

} // namespace

ReduceResult rap::fuzz::reduceSource(const std::string &Source,
                                     const ReducePredicate &StillFails,
                                     size_t MaxCalls) {
  ReduceResult Res;
  Res.Reduced = Source;

  // Iterate line-pass then unit-pass until neither shrinks the input. The
  // line pass strips whole statements/functions cheaply; the unit pass then
  // erodes what is left inside the surviving lines, which can unlock
  // further line removals (e.g. a call site gone lets its callee go).
  bool Changed = true;
  while (Changed && !Res.BudgetExhausted) {
    Changed = false;

    std::vector<std::string> Lines = splitLines(Res.Reduced);
    if (Lines.size() > 1 &&
        ddminPass(Lines, joinLines, StillFails, MaxCalls, Res.PredicateCalls,
                  Res.BudgetExhausted)) {
      Res.Reduced = joinLines(Lines);
      Changed = true;
    }
    if (Res.BudgetExhausted)
      break;

    std::vector<std::string> Units = splitUnits(Res.Reduced);
    if (Units.size() > 1 &&
        ddminPass(Units, joinUnits, StillFails, MaxCalls, Res.PredicateCalls,
                  Res.BudgetExhausted)) {
      Res.Reduced = joinUnits(Units);
      Changed = true;
    }
  }
  return Res;
}
