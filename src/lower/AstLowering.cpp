//===- lower/AstLowering.cpp - AST to PDG + ILOC --------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "lower/AstLowering.h"

#include <map>
#include <stdexcept>
#include <vector>

using namespace rap;

namespace {

/// Internal-invariant failure during lowering. Lowering only runs on trees
/// Sema accepted, so these conditions are bugs — but on hostile input a bug
/// must surface as a contained error, not an abort. Thrown locally, caught
/// in lowerToIloc.
struct LoweringBug : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Replaces `assert` in the lowering path: active in every build type.
void lowerCheck(bool Cond, const char *Message) {
  if (!Cond)
    throw LoweringBug(Message);
}

struct LocalVar {
  Reg VReg = NoReg;
  TypeKind Type = TypeKind::Int;
};

class FunctionLowering {
public:
  FunctionLowering(const TranslationUnit &TU, IlocProgram &Prog,
                   const FuncDecl &FD, IlocFunction &F,
                   RegionGranularity Granularity, CopyStyle Copies)
      : TU(TU), Prog(Prog), FD(FD), F(F), Granularity(Granularity),
        Copies(Copies) {}

  void run() {
    F.setNumParams(static_cast<unsigned>(FD.Params.size()));
    F.setReturnType(FD.ReturnType);
    PdgNode *Root = F.createNode(PdgNodeKind::Region);
    F.setRoot(Root);
    CurRegion = Root;
    pushScope();
    for (const ParamDecl &P : FD.Params) {
      Reg R = F.newVReg();
      declare(P.Name, R, P.Type);
    }
    lowerStmt(*FD.Body);
    popScope();
  }

private:
  //===------------------------------------------------------------------===//
  // Scopes (mirrors Sema's scoping exactly)
  //===------------------------------------------------------------------===//

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  void declare(const std::string &Name, Reg R, TypeKind Type) {
    Scopes.back()[Name] = LocalVar{R, Type};
  }

  const LocalVar *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  //===------------------------------------------------------------------===//
  // Node and code emission helpers
  //===------------------------------------------------------------------===//

  /// Appends \p N as a child of the current region.
  void attach(PdgNode *N) {
    N->Parent = CurRegion;
    CurRegion->Children.push_back(N);
  }

  /// Starts a statement leaf for one source statement, honoring the region
  /// granularity: PerStatement wraps the leaf in its own region node.
  PdgNode *beginStatement() {
    PdgNode *S = F.createNode(PdgNodeKind::Statement);
    if (Granularity == RegionGranularity::PerStatement) {
      PdgNode *Wrap = F.createNode(PdgNodeKind::Region);
      attach(Wrap);
      S->Parent = Wrap;
      Wrap->Children.push_back(S);
    } else {
      attach(S);
    }
    CurCode = &S->Code;
    return S;
  }

  Instr *emit(Opcode Op) {
    Instr *I = F.createInstr(Op);
    lowerCheck(CurCode != nullptr, "no active code sink");
    CurCode->push_back(I);
    return I;
  }

  Reg emitBinary(Opcode Op, Reg A, Reg B, Reg Dst = NoReg) {
    Instr *I = emit(Op);
    I->Dst = Dst == NoReg ? F.newVReg() : Dst;
    I->Src = {A, B};
    return I->Dst;
  }

  Reg emitUnary(Opcode Op, Reg A, Reg Dst = NoReg) {
    Instr *I = emit(Op);
    I->Dst = Dst == NoReg ? F.newVReg() : Dst;
    I->Src = {A};
    return I->Dst;
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void lowerStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Block:
      pushScope();
      for (const auto &Child : S.Body)
        lowerStmt(*Child);
      popScope();
      return;
    case StmtKind::VarDecl: {
      Reg R = F.newVReg();
      beginStatement();
      if (S.Value) {
        lowerAssignInto(*S.Value, R);
      } else {
        // MiniC defines declaration without an initializer as
        // zero-initialization. Leaving the register undefined would make
        // the program's result depend on whatever the allocator previously
        // kept there — found by rapfuzz as a reference-vs-allocated
        // mismatch.
        Instr *I = emit(S.DeclType == TypeKind::Float ? Opcode::LoadF
                                                      : Opcode::LoadI);
        I->Dst = R;
        I->Imm = S.DeclType == TypeKind::Float ? RtValue::makeFloat(0.0)
                                               : RtValue::makeInt(0);
      }
      declare(S.Name, R, S.DeclType);
      return;
    }
    case StmtKind::Assign:
      lowerAssign(S);
      return;
    case StmtKind::If:
      lowerIf(S);
      return;
    case StmtKind::While:
      lowerWhile(S);
      return;
    case StmtKind::For:
      lowerFor(S);
      return;
    case StmtKind::Return: {
      beginStatement();
      Instr *I;
      if (S.Value) {
        Reg R = lowerExpr(*S.Value);
        I = emit(Opcode::Ret);
        I->Src = {R};
      } else {
        I = emit(Opcode::Ret);
      }
      return;
    }
    case StmtKind::ExprStmt:
      beginStatement();
      lowerExpr(*S.Value);
      return;
    }
  }

  void lowerAssign(const Stmt &S) {
    beginStatement();
    if (S.Index) {
      // Array element store.
      const GlobalVar *G = Prog.findGlobal(S.Name);
      lowerCheck(G && G->IsArray, "sema guarantees a global array target");
      Reg Idx = lowerExpr(*S.Index);
      Reg Val = lowerExpr(*S.Value);
      Instr *I = emit(Opcode::StIdx);
      I->Addr = G->Addr;
      I->Src = {Idx, Val};
      return;
    }
    if (S.TargetIsGlobal) {
      const GlobalVar *G = Prog.findGlobal(S.Name);
      lowerCheck(G && !G->IsArray,
                 "sema guarantees a global scalar target");
      Reg Val = lowerExpr(*S.Value);
      Instr *I = emit(Opcode::StGlob);
      I->Addr = G->Addr;
      I->Src = {Val};
      return;
    }
    const LocalVar *V = lookup(S.Name);
    lowerCheck(V != nullptr, "sema guarantees a declared local");
    lowerAssignInto(*S.Value, V->VReg);
  }

  /// Creates a predicate node (condition code + branch) for \p Cond.
  PdgNode *makePredicate(const Expr &Cond) {
    PdgNode *P = F.createNode(PdgNodeKind::Predicate);
    CurCode = &P->Code;
    Reg C = lowerExpr(Cond);
    P->TrueLabel = F.newLabel();
    P->FalseLabel = F.newLabel();
    Instr *Br = F.createInstr(Opcode::Cbr);
    Br->Src = {C};
    Br->Label0 = P->TrueLabel;
    Br->Label1 = P->FalseLabel;
    P->Branch = Br;
    return P;
  }

  /// Lowers \p Body into a fresh region and returns it.
  PdgNode *lowerIntoRegion(const Stmt &Body) {
    PdgNode *R = F.createNode(PdgNodeKind::Region);
    PdgNode *SavedRegion = CurRegion;
    CurRegion = R;
    lowerStmt(Body);
    CurRegion = SavedRegion;
    return R;
  }

  void lowerIf(const Stmt &S) {
    PdgNode *P = makePredicate(*S.Cond);
    attach(P);
    P->TrueRegion = lowerIntoRegion(*S.Then);
    P->TrueRegion->Parent = P;
    if (S.Else) {
      P->JoinLabel = F.newLabel();
      Instr *J = F.createInstr(Opcode::Jmp);
      J->Label0 = P->JoinLabel;
      P->Jump = J;
      P->FalseRegion = lowerIntoRegion(*S.Else);
      P->FalseRegion->Parent = P;
    }
    CurCode = nullptr;
  }

  /// Shared by while and for: Step is the per-iteration increment of a for
  /// loop (null for while).
  void lowerLoop(const Expr &Cond, const Stmt &Body, const Stmt *Step) {
    PdgNode *Loop = F.createNode(PdgNodeKind::Region);
    Loop->IsLoop = true;
    attach(Loop);

    PdgNode *SavedRegion = CurRegion;
    CurRegion = Loop;
    PdgNode *P = makePredicate(Cond);
    attach(P);
    CurRegion = SavedRegion;

    P->JoinLabel = F.newLabel(); // the loop head
    Instr *Back = F.createInstr(Opcode::Jmp);
    Back->Label0 = P->JoinLabel;
    P->Jump = Back;

    PdgNode *BodyRegion = F.createNode(PdgNodeKind::Region);
    P->TrueRegion = BodyRegion;
    BodyRegion->Parent = P;
    PdgNode *Saved2 = CurRegion;
    CurRegion = BodyRegion;
    lowerStmt(Body);
    if (Step)
      lowerStmt(*Step);
    CurRegion = Saved2;
    CurCode = nullptr;
  }

  void lowerWhile(const Stmt &S) { lowerLoop(*S.Cond, *S.Then, nullptr); }

  void lowerFor(const Stmt &S) {
    pushScope();
    if (S.ForInit)
      lowerStmt(*S.ForInit);
    lowerCheck(S.Cond != nullptr, "for loop requires a condition");
    lowerLoop(*S.Cond, *S.Then, S.ForStep.get());
    popScope();
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  Reg lowerExpr(const Expr &E) { return lowerExprInto(E, NoReg); }

  /// Assigns the value of \p E to the variable register \p Target. Under
  /// the Naive copy style the value is computed into a temporary and copied
  /// (the `mv` statements Table 1 counts); Direct computes in place.
  void lowerAssignInto(const Expr &E, Reg Target) {
    if (Copies == CopyStyle::Direct) {
      lowerExprInto(E, Target);
      return;
    }
    Reg Value = lowerExpr(E);
    emitUnary(Opcode::Mv, Value, Target);
  }

  /// Lowers \p E, directing its result into \p Target when given (used for
  /// assignments so that variables are the Dst of the computing instruction;
  /// variable-to-variable assignment becomes the `mv` copies Table 1
  /// counts).
  Reg lowerExprInto(const Expr &E, Reg Target) {
    switch (E.Kind) {
    case ExprKind::IntLit: {
      Instr *I = emit(Opcode::LoadI);
      I->Dst = Target == NoReg ? F.newVReg() : Target;
      I->Imm = RtValue::makeInt(E.IntValue);
      return I->Dst;
    }
    case ExprKind::FloatLit: {
      Instr *I = emit(Opcode::LoadF);
      I->Dst = Target == NoReg ? F.newVReg() : Target;
      I->Imm = RtValue::makeFloat(E.FloatValue);
      return I->Dst;
    }
    case ExprKind::VarRef: {
      if (E.ResolvedGlobal) {
        const GlobalVar *G = Prog.findGlobal(E.Name);
        lowerCheck(G != nullptr, "sema guarantees the global exists");
        Instr *I = emit(Opcode::LdGlob);
        I->Dst = Target == NoReg ? F.newVReg() : Target;
        I->Addr = G->Addr;
        return I->Dst;
      }
      const LocalVar *V = lookup(E.Name);
      lowerCheck(V != nullptr, "sema guarantees a declared local");
      if (Target == NoReg || Target == V->VReg)
        return V->VReg;
      return emitUnary(Opcode::Mv, V->VReg, Target);
    }
    case ExprKind::ArrayRef: {
      const GlobalVar *G = Prog.findGlobal(E.Name);
      lowerCheck(G && G->IsArray, "sema guarantees a global array");
      Reg Idx = lowerExpr(*E.Sub);
      Instr *I = emit(Opcode::LdIdx);
      I->Dst = Target == NoReg ? F.newVReg() : Target;
      I->Addr = G->Addr;
      I->Src = {Idx};
      return I->Dst;
    }
    case ExprKind::Cast: {
      Reg V = lowerExpr(*E.Sub);
      Opcode Op = E.Type == TypeKind::Float ? Opcode::I2F : Opcode::F2I;
      return emitUnary(Op, V, Target);
    }
    case ExprKind::Unary: {
      Reg V = lowerExpr(*E.Sub);
      Opcode Op;
      if (E.UnOp == UnaryOp::Not)
        Op = Opcode::Not;
      else
        Op = E.Type == TypeKind::Float ? Opcode::FNeg : Opcode::Neg;
      return emitUnary(Op, V, Target);
    }
    case ExprKind::Binary: {
      Reg A = lowerExpr(*E.Lhs);
      Reg B = lowerExpr(*E.Rhs);
      return emitBinary(binaryOpcode(E), A, B, Target);
    }
    case ExprKind::Call: {
      const IlocFunction *Callee = Prog.findFunction(E.Name);
      lowerCheck(Callee != nullptr, "sema guarantees the callee exists");
      RegList Args;
      Args.reserve(E.Args.size());
      for (const auto &A : E.Args)
        Args.push_back(lowerExpr(*A));
      Instr *I = emit(Opcode::Call);
      I->Callee = Prog.functionId(Callee);
      I->Src = std::move(Args);
      if (E.Type != TypeKind::Void)
        I->Dst = Target == NoReg ? F.newVReg() : Target;
      return I->Dst;
    }
    }
    throw LoweringBug("unhandled expression kind");
  }

  static Opcode binaryOpcode(const Expr &E) {
    bool Fp = E.Lhs->Type == TypeKind::Float;
    switch (E.BinOp) {
    case BinaryOp::Add:
      return Fp ? Opcode::FAdd : Opcode::Add;
    case BinaryOp::Sub:
      return Fp ? Opcode::FSub : Opcode::Sub;
    case BinaryOp::Mul:
      return Fp ? Opcode::FMul : Opcode::Mul;
    case BinaryOp::Div:
      return Fp ? Opcode::FDiv : Opcode::Div;
    case BinaryOp::Mod:
      return Opcode::Mod;
    case BinaryOp::Eq:
      return Opcode::CmpEQ;
    case BinaryOp::Ne:
      return Opcode::CmpNE;
    case BinaryOp::Lt:
      return Opcode::CmpLT;
    case BinaryOp::Le:
      return Opcode::CmpLE;
    case BinaryOp::Gt:
      return Opcode::CmpGT;
    case BinaryOp::Ge:
      return Opcode::CmpGE;
    case BinaryOp::LogicalAnd:
      // MiniC evaluates logical operators without short circuit (both sides
      // are already 0/1 ints); see DESIGN.md.
      return Opcode::And;
    case BinaryOp::LogicalOr:
      return Opcode::Or;
    }
    throw LoweringBug("unhandled binary operator");
  }

  const TranslationUnit &TU;
  IlocProgram &Prog;
  const FuncDecl &FD;
  IlocFunction &F;
  RegionGranularity Granularity;
  CopyStyle Copies;

  PdgNode *CurRegion = nullptr;
  std::vector<Instr *> *CurCode = nullptr;
  std::vector<std::map<std::string, LocalVar>> Scopes;
};

} // namespace

std::unique_ptr<IlocProgram>
rap::lowerToIloc(const TranslationUnit &TU, RegionGranularity Granularity,
                 CopyStyle Copies, DiagnosticEngine *Diags) {
  auto Prog = std::make_unique<IlocProgram>();
  try {
    for (const GlobalDecl &G : TU.Globals)
      Prog->addGlobal(G.Name, G.ArraySize < 0 ? 1 : G.ArraySize, G.Type,
                      G.ArraySize >= 0);
    // Create all functions first so calls can refer to them by id.
    for (const auto &FD : TU.Functions)
      Prog->createFunction(FD->Name);
    for (size_t I = 0, E = TU.Functions.size(); I != E; ++I)
      FunctionLowering(TU, *Prog, *TU.Functions[I], *Prog->function(int(I)),
                       Granularity, Copies)
          .run();
  } catch (const LoweringBug &B) {
    // A malformed tree slipped past Sema. Contain it: this is a diagnosed
    // failure of this compilation, not a process abort.
    if (Diags)
      Diags->error({}, std::string("internal lowering error: ") + B.what());
    return nullptr;
  }
  return Prog;
}
