//===- lower/AstLowering.h - AST to PDG + ILOC ------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a type-checked MiniC translation unit to an IlocProgram whose
/// functions carry PDG region trees with attached ILOC, generated assuming
/// an infinite supply of virtual registers (paper §3). Local scalars map
/// directly to virtual registers; globals live in memory.
///
/// The RegionGranularity option reproduces the paper's discussion of region
/// size (§4, Figure 7): pdgcc created a region node per C source statement
/// (PerStatement, the default used for Table 1); Merged keeps straight-line
/// statements directly under their controlling region, the larger-region
/// variant the authors propose as future work.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_LOWER_ASTLOWERING_H
#define RAP_LOWER_ASTLOWERING_H

#include "frontend/Ast.h"
#include "ir/IlocProgram.h"

#include <memory>

namespace rap {

enum class RegionGranularity {
  PerStatement, ///< one region node per source statement (pdgcc, paper)
  Merged,       ///< statement leaves attach directly to control regions
};

enum class CopyStyle {
  /// Assignments compute into a fresh temporary and then `mv` it into the
  /// variable — the codegen style of the paper's era (pdgcc/ILOC), whose
  /// copies both allocators eliminate when the operands land in the same
  /// register. Table 1's copy-statement accounting assumes this style.
  Naive,
  /// Assignments compute directly into the variable's register (modern
  /// style; almost no copies). Ablation mode.
  Direct,
};

/// Lowers \p TU (which must have passed Sema) to ILOC. Never fails on a
/// type-checked tree. If an internal invariant does not hold anyway (a
/// malformed AST slipping past Sema), the failure is contained: with
/// \p Diags the problem is reported there and nullptr is returned; without,
/// nullptr is returned silently. It never aborts the process.
std::unique_ptr<IlocProgram>
lowerToIloc(const TranslationUnit &TU,
            RegionGranularity Granularity = RegionGranularity::PerStatement,
            CopyStyle Copies = CopyStyle::Naive,
            DiagnosticEngine *Diags = nullptr);

} // namespace rap

#endif // RAP_LOWER_ASTLOWERING_H
