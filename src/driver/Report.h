//===- driver/Report.h - Stats rendering (text + JSON) ----------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a CompileResult's allocation statistics for the driver and the
/// bench harnesses: a human-readable text block and the machine-readable
/// "rap-stats-v1" JSON document. The JSON is deterministic at any thread
/// count except its "timing" and "timers" sections (wall clocks) — the
/// determinism tests erase exactly those keys before diffing.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_DRIVER_REPORT_H
#define RAP_DRIVER_REPORT_H

#include "driver/Pipeline.h"
#include "support/Json.h"

#include <string>

namespace rap {

/// Compile-server counters folded into rap-stats-v1 when a report comes
/// from rapd (DESIGN.md §12). Enabled=false (the rapcc path) omits the
/// section entirely, keeping pre-server documents byte-identical.
struct ServerReportStats {
  bool Enabled = false;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheBytes = 0; ///< resident cache estimate at report time
  uint64_t QueueDepthMax = 0;
  uint64_t RejectedRequests = 0;
  uint64_t DeadlineExceeded = 0; ///< requests that ran out of deadline_ms
  uint64_t Cancelled = 0;        ///< requests aborted by the drain
  uint64_t WatchdogTrips = 0;    ///< workers caught overstaying a deadline
  unsigned DrainMs = 0;          ///< configured drain window
  bool DrainDegraded = false;    ///< the drain deadline had to cancel work

  /// Durable-cache recovery (DESIGN.md §15): emitted as the `recovery`
  /// sub-object of the `server` section only when Enabled (i.e. rapd ran
  /// with --cache-dir); absent otherwise so in-memory-only documents stay
  /// byte-identical to pre-§15 output.
  struct RecoveryStats {
    bool Enabled = false;
    uint64_t JournalFramesReplayed = 0; ///< entries recovered at startup
    bool SnapshotLoaded = false;        ///< snapshot.bin replayed
    uint64_t TornTailDropped = 0;       ///< crash-torn bytes dropped
    uint64_t Restarts = 0;              ///< supervised restarts so far
  };
  RecoveryStats Recovery;
};

/// Context the stats document records about the run that produced it.
struct ReportMeta {
  std::string Allocator; ///< "rap", "gra", or "none"
  unsigned K = 0;
  unsigned Threads = 1;
  ServerReportStats Server;
};

/// The "rap-stats-v1" document: run metadata, the aggregated AllocStats
/// ledger, the telemetry counter/timer aggregate, and a per-function
/// outcome array in program order.
json::Value statsJson(const CompileResult &R, const ReportMeta &Meta);

/// Human-readable rendering of the same data (multi-line, trailing \n).
std::string statsText(const CompileResult &R, const ReportMeta &Meta);

/// AllocStats as a sorted-key JSON object (shared by statsJson and the
/// bench harnesses' --json emitters).
json::Value allocStatsJson(const AllocStats &S);

} // namespace rap

#endif // RAP_DRIVER_REPORT_H
