//===- driver/Pipeline.h - Source-to-stats pipeline -------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experimental pipeline of the paper's §4: MiniC source -> PDG + ILOC
/// (virtual registers) -> register allocation (GRA or RAP, k registers) ->
/// interpreted execution with cycle/load/store/copy counts.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_DRIVER_PIPELINE_H
#define RAP_DRIVER_PIPELINE_H

#include "interp/Interpreter.h"
#include "ir/IlocProgram.h"
#include "lower/AstLowering.h"
#include "regalloc/Allocator.h"
#include "support/Stats.h"

#include <memory>
#include <string>

namespace rap {

struct CompileOptions {
  AllocatorKind Allocator = AllocatorKind::None;
  /// Passed through to allocateProgram; Alloc.Threads > 1 allocates the
  /// program's functions on a worker pool with output identical to a serial
  /// run (see AllocOptions::Threads).
  AllocOptions Alloc;
  RegionGranularity Granularity = RegionGranularity::PerStatement;
  CopyStyle Copies = CopyStyle::Naive;
  /// Instruction budget for compileAndRun's interpretation (the crash-free
  /// contract's defence against non-terminating inputs; rapcc --fuel=N and
  /// the fuzzer lower it).
  uint64_t InterpFuel = 500'000'000;
};

struct CompileResult {
  std::unique_ptr<IlocProgram> Prog;
  AllocStats Alloc; ///< aggregated over all functions

  /// Per-function allocation outcomes (empty until allocation runs). With
  /// Alloc.FallbackOnError, degraded functions show up here with
  /// Status == Fallback while the program as a whole stays runnable; their
  /// summary is also appended to Errors, so callers that only look at
  /// Errors still see the degradation.
  std::vector<AllocOutcome> AllocOutcomes;

  /// Deterministic telemetry aggregate (counters/timers over all functions).
  /// Empty unless Options.Alloc.Telem pointed at a registry during
  /// compilation; the registry itself (for traces and per-function records)
  /// stays with the caller who owns it.
  telemetry::Aggregate Telemetry;

  std::string Errors; ///< diagnostics when compilation failed or degraded

  bool ok() const { return Prog != nullptr; }
  bool degraded() const {
    for (const AllocOutcome &O : AllocOutcomes)
      if (O.degraded())
        return true;
    return false;
  }
};

/// Compiles MiniC source and (optionally) allocates registers.
CompileResult compileMiniC(const std::string &Source,
                           const CompileOptions &Options);

/// Compiles, allocates, and runs main(). The Error field of the result is
/// set when compilation fails.
RunResult compileAndRun(const std::string &Source,
                        const CompileOptions &Options);

} // namespace rap

#endif // RAP_DRIVER_PIPELINE_H
