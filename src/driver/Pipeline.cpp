//===- driver/Pipeline.cpp - Source-to-stats pipeline -----------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

#include <exception>

using namespace rap;

namespace {

/// compileMiniC minus the catch-all: every failure path inside returns a
/// CompileResult with Errors set and Prog null, never throws on purpose.
CompileResult compileMiniCImpl(const std::string &Source,
                               const CompileOptions &Options) {
  CompileResult Res;
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  TranslationUnit TU = P.parseTranslationUnit();
  if (Diags.hasErrors()) {
    Res.Errors = Diags.str();
    return Res;
  }
  if (!analyze(TU, Diags)) {
    Res.Errors = Diags.str();
    return Res;
  }
  Res.Prog = lowerToIloc(TU, Options.Granularity, Options.Copies, &Diags);
  if (!Res.Prog) {
    Res.Errors = Diags.hasErrors() ? Diags.str() : "internal lowering error\n";
    return Res;
  }
  try {
    ProgramAllocResult AR =
        allocateProgramChecked(*Res.Prog, Options.Allocator, Options.Alloc);
    Res.Alloc = AR.Total;
    // Fallbacks keep the program correct and runnable; report them as
    // diagnostics without failing the compile. (Summarize before moving the
    // outcomes out of AR.)
    Res.Errors += AR.summary();
    Res.AllocOutcomes = std::move(AR.Outcomes);
    if (Options.Alloc.Telem)
      Res.Telemetry = Options.Alloc.Telem->aggregate();
  } catch (const AllocError &E) {
    // Strict mode (no fallback): allocation failure fails the compile with
    // a structured diagnostic instead of crashing the process.
    Res.Errors += std::string("allocation failed: ") + E.what() + "\n";
    Res.Prog.reset();
  }
  return Res;
}

} // namespace

CompileResult rap::compileMiniC(const std::string &Source,
                                const CompileOptions &Options) {
  // The crash-free contract's last line of defence: no input may take down
  // the process. Anything escaping the stage-level handling above becomes a
  // failed compile with an "internal error" diagnostic.
  try {
    return compileMiniCImpl(Source, Options);
  } catch (const std::exception &E) {
    CompileResult Res;
    Res.Errors = std::string("internal error: ") + E.what() + "\n";
    return Res;
  } catch (...) {
    CompileResult Res;
    Res.Errors = "internal error: unknown exception\n";
    return Res;
  }
}

RunResult rap::compileAndRun(const std::string &Source,
                             const CompileOptions &Options) {
  CompileResult CR = compileMiniC(Source, Options);
  if (!CR.ok()) {
    RunResult R;
    R.Error = "compilation failed:\n" + CR.Errors;
    return R;
  }
  Interpreter Interp(*CR.Prog);
  return Interp.run("main", Options.InterpFuel);
}
