//===- driver/Pipeline.cpp - Source-to-stats pipeline -----------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

using namespace rap;

CompileResult rap::compileMiniC(const std::string &Source,
                                const CompileOptions &Options) {
  CompileResult Res;
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  TranslationUnit TU = P.parseTranslationUnit();
  if (Diags.hasErrors()) {
    Res.Errors = Diags.str();
    return Res;
  }
  if (!analyze(TU, Diags)) {
    Res.Errors = Diags.str();
    return Res;
  }
  Res.Prog = lowerToIloc(TU, Options.Granularity, Options.Copies);
  try {
    ProgramAllocResult AR =
        allocateProgramChecked(*Res.Prog, Options.Allocator, Options.Alloc);
    Res.Alloc = AR.Total;
    // Fallbacks keep the program correct and runnable; report them as
    // diagnostics without failing the compile. (Summarize before moving the
    // outcomes out of AR.)
    Res.Errors += AR.summary();
    Res.AllocOutcomes = std::move(AR.Outcomes);
    if (Options.Alloc.Telem)
      Res.Telemetry = Options.Alloc.Telem->aggregate();
  } catch (const AllocError &E) {
    // Strict mode (no fallback): allocation failure fails the compile with
    // a structured diagnostic instead of crashing the process.
    Res.Errors += std::string("allocation failed: ") + E.what() + "\n";
    Res.Prog.reset();
  }
  return Res;
}

RunResult rap::compileAndRun(const std::string &Source,
                             const CompileOptions &Options) {
  CompileResult CR = compileMiniC(Source, Options);
  if (!CR.ok()) {
    RunResult R;
    R.Error = "compilation failed:\n" + CR.Errors;
    return R;
  }
  Interpreter Interp(*CR.Prog);
  return Interp.run();
}
