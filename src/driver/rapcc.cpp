//===- driver/rapcc.cpp - Command-line compiler driver ------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// rapcc: the command-line face of the library. Compiles a MiniC file,
/// optionally allocates registers, and either dumps an artifact or runs
/// the program on the counting interpreter.
///
///   rapcc file.mc [options]      (file.mc may be '-' for stdin)
///     --alloc=none|gra|rap     allocator (default rap)
///     -k N                      physical registers (default 5)
///     --granularity=stmt|merged region granularity (default stmt)
///     --copies=naive|direct     assignment codegen style (default naive)
///     --no-movement --no-peephole --no-cleanup   disable RAP phases
///     --threads=N               allocate functions on N worker threads
///     --region-threads=N        RAP only: run each function's phase 1 over
///                               the series-parallel region decomposition on
///                               N pool threads (DESIGN.md §14); output is
///                               bit-identical at any value
///     --verify                  checked mode: independently verify every
///                               register assignment before the rewrite
///     --no-fallback             fail the compile on allocation errors
///                               instead of degrading the function to the
///                               spill-everything fallback
///     --dump=iloc|tree|dot|cfg  print an artifact instead of running
///     --func=NAME               which function to dump (default main)
///     --stats[=text|json]       print allocation statistics: text renders
///                               to stderr, json prints the machine-readable
///                               "rap-stats-v1" document to stdout (and
///                               replaces --run's result lines — the run's
///                               counters land in the document's "exec"
///                               section instead)
///     --trace=FILE              write a Chrome trace-event JSON timeline of
///                               the allocation phases to FILE (open it in
///                               about://tracing or ui.perfetto.dev)
///     --fuel=N                  instruction budget for --run (default
///                               500000000); a program that does not halt
///                               within it traps with "fuel-exhausted"
///     --interp=threaded|switch  execution engine for --run: the pre-decoded
///                               direct-threaded engine (default) or the
///                               reference switch engine (DESIGN.md §11);
///                               when the flag is absent the default follows
///                               the RAP_INTERP environment variable
///     --run (default)           execute main() and print result + counters
///
/// Exit-code map (the crash-free contract: every input lands on exactly one
/// of these, never a signal):
///   0  success
///   1  compile error (diagnostics on stderr) or I/O failure
///   2  usage error (bad flag or missing file argument)
///   3  success, but at least one function degraded to the spill-everything
///      fallback (details on stderr)
///   4  runtime trap: the program compiled but its execution trapped
///      (div-by-zero, out-of-bounds, fuel-exhausted, stack-overflow, ...;
///      the structured trap is printed on stderr)
/// --stats/--trace never change the exit code.
///
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "driver/Pipeline.h"
#include "driver/Report.h"
#include "ir/Linearize.h"
#include "pdg/Dot.h"
#include "support/Stats.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace rap;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: rapcc <file.mc | -> [--alloc=none|gra|rap] [-k N]\n"
      "             [--granularity=stmt|merged] [--copies=naive|direct]\n"
      "             [--no-movement] [--no-peephole] [--no-cleanup]\n"
      "             [--threads=N] [--region-threads=N] [--verify]\n"
      "             [--no-fallback]\n"
      "             [--dump=iloc|tree|dot|cfg] [--func=NAME]\n"
      "             [--stats[=text|json]] [--trace=FILE] [--fuel=N]\n"
      "             [--interp=threaded|switch]\n"
      "exit codes: 0 ok, 1 compile error, 2 usage, 3 degraded, 4 runtime "
      "trap\n");
}

bool startsWith(const char *S, const char *Prefix) {
  return std::strncmp(S, Prefix, std::strlen(Prefix)) == 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage();
    return 2;
  }

  std::string Path;
  std::string Dump;
  std::string Func = "main";
  std::string StatsMode; ///< "", "text", or "json"
  std::string TracePath;
  InterpOptions InterpOpts;
  CompileOptions Opts;
  Opts.Allocator = AllocatorKind::Rap;
  // The CLI favors producing *a* correct program: allocation errors degrade
  // the affected function to the spill-everything fallback (and exit 3)
  // unless --no-fallback asks for a hard failure.
  Opts.Alloc.FallbackOnError = true;

  for (int I = 1; I != argc; ++I) {
    const char *Arg = argv[I];
    if (startsWith(Arg, "--alloc=")) {
      Opts.Allocator = allocatorKindFromString(Arg + 8);
      if (Opts.Allocator == AllocatorKind::None &&
          std::strcmp(Arg + 8, "none") != 0) {
        std::fprintf(stderr, "rapcc: unknown allocator '%s'\n", Arg + 8);
        return 2;
      }
    } else if (std::strcmp(Arg, "-k") == 0 && I + 1 < argc) {
      Opts.Alloc.K = static_cast<unsigned>(std::atoi(argv[++I]));
      if (Opts.Alloc.K < 3) {
        std::fprintf(stderr, "rapcc: k must be at least 3\n");
        return 2;
      }
    } else if (startsWith(Arg, "--granularity=")) {
      std::string G = Arg + 14;
      if (G == "stmt")
        Opts.Granularity = RegionGranularity::PerStatement;
      else if (G == "merged")
        Opts.Granularity = RegionGranularity::Merged;
      else {
        std::fprintf(stderr, "rapcc: unknown granularity '%s'\n", G.c_str());
        return 2;
      }
    } else if (startsWith(Arg, "--copies=")) {
      std::string C = Arg + 9;
      if (C == "naive")
        Opts.Copies = CopyStyle::Naive;
      else if (C == "direct")
        Opts.Copies = CopyStyle::Direct;
      else {
        std::fprintf(stderr, "rapcc: unknown copy style '%s'\n", C.c_str());
        return 2;
      }
    } else if (std::strcmp(Arg, "--no-movement") == 0) {
      Opts.Alloc.SpillMovement = false;
    } else if (std::strcmp(Arg, "--no-peephole") == 0) {
      Opts.Alloc.Peephole = false;
    } else if (std::strcmp(Arg, "--no-cleanup") == 0) {
      Opts.Alloc.GlobalCleanup = false;
    } else if (startsWith(Arg, "--region-threads=")) {
      Opts.Alloc.RegionThreads = static_cast<unsigned>(std::atoi(Arg + 17));
      if (Opts.Alloc.RegionThreads == 0) {
        std::fprintf(stderr,
                     "rapcc: --region-threads needs a positive count\n");
        return 2;
      }
    } else if (startsWith(Arg, "--threads=")) {
      Opts.Alloc.Threads = static_cast<unsigned>(std::atoi(Arg + 10));
      if (Opts.Alloc.Threads == 0) {
        std::fprintf(stderr, "rapcc: --threads needs a positive count\n");
        return 2;
      }
    } else if (std::strcmp(Arg, "--verify") == 0) {
      Opts.Alloc.VerifyAssignments = true;
    } else if (std::strcmp(Arg, "--no-fallback") == 0) {
      Opts.Alloc.FallbackOnError = false;
    } else if (startsWith(Arg, "--dump=")) {
      Dump = Arg + 7;
    } else if (startsWith(Arg, "--func=")) {
      Func = Arg + 7;
    } else if (std::strcmp(Arg, "--stats") == 0) {
      StatsMode = "text";
    } else if (startsWith(Arg, "--stats=")) {
      StatsMode = Arg + 8;
      if (StatsMode != "text" && StatsMode != "json") {
        std::fprintf(stderr, "rapcc: unknown stats mode '%s'\n",
                     StatsMode.c_str());
        return 2;
      }
    } else if (startsWith(Arg, "--trace=")) {
      TracePath = Arg + 8;
      if (TracePath.empty()) {
        std::fprintf(stderr, "rapcc: --trace needs a file path\n");
        return 2;
      }
    } else if (startsWith(Arg, "--fuel=")) {
      long long Fuel = std::atoll(Arg + 7);
      if (Fuel <= 0) {
        std::fprintf(stderr, "rapcc: --fuel needs a positive budget\n");
        return 2;
      }
      Opts.InterpFuel = static_cast<uint64_t>(Fuel);
    } else if (startsWith(Arg, "--interp=")) {
      const char *Mode = Arg + 9;
      if (std::strcmp(Mode, "threaded") == 0) {
        InterpOpts.Dispatch = DispatchKind::Threaded;
      } else if (std::strcmp(Mode, "switch") == 0) {
        InterpOpts.Dispatch = DispatchKind::Switch;
      } else {
        std::fprintf(stderr, "rapcc: unknown interpreter engine '%s'\n", Mode);
        return 2;
      }
    } else if (std::strcmp(Arg, "--run") == 0) {
      Dump.clear();
    } else if (std::strcmp(Arg, "-") == 0) {
      Path = Arg; // stdin
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "rapcc: unknown option '%s'\n", Arg);
      usage();
      return 2;
    } else {
      Path = Arg;
    }
  }
  if (Path.empty()) {
    usage();
    return 2;
  }

  // '-' reads the source from stdin — the shared input path with rapd,
  // whose request trace scripts pipe sources instead of writing temp files.
  std::stringstream SS;
  if (Path == "-") {
    SS << std::cin.rdbuf();
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "rapcc: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    SS << In.rdbuf();
  }

  // Telemetry costs nothing unless a stats or trace consumer asked for it;
  // attaching the registry turns the allocator's instrumentation on.
  telemetry::Telemetry Telem;
  if (!StatsMode.empty() || !TracePath.empty())
    Opts.Alloc.Telem = &Telem;

  CompileResult CR = compileMiniC(SS.str(), Opts);
  if (!CR.ok()) {
    std::fprintf(stderr, "%s", CR.Errors.c_str());
    return 1;
  }
  // Per-function degradation summary: the program below is still correct,
  // but some function lost its optimized allocation.
  bool Degraded = CR.degraded();
  for (const AllocOutcome &O : CR.AllocOutcomes)
    if (O.degraded())
      std::fprintf(stderr,
                   "rapcc: '%s' degraded to spill-everything fallback: %s\n",
                   O.Function.c_str(), O.Error.c_str());

  ReportMeta Meta;
  Meta.Allocator = Opts.Allocator == AllocatorKind::Rap   ? "rap"
                   : Opts.Allocator == AllocatorKind::Gra ? "gra"
                                                          : "none";
  Meta.K = Opts.Alloc.K;
  Meta.Threads = Opts.Alloc.Threads;

  if (StatsMode == "text")
    std::fprintf(stderr, "%s", statsText(CR, Meta).c_str());

  if (!TracePath.empty()) {
    std::ofstream TraceOut(TracePath);
    if (!TraceOut) {
      std::fprintf(stderr, "rapcc: cannot write trace to '%s'\n",
                   TracePath.c_str());
      return 1;
    }
    Telem.writeChromeTrace(TraceOut);
  }

  if (!Dump.empty()) {
    if (StatsMode == "json")
      std::printf("%s\n", statsJson(CR, Meta).str(2).c_str());
    IlocFunction *F = CR.Prog->findFunction(Func);
    if (!F) {
      std::fprintf(stderr, "rapcc: no function '%s'\n", Func.c_str());
      return 1;
    }
    if (Dump == "iloc") {
      std::printf("%s", F->str().c_str());
    } else if (Dump == "tree") {
      std::printf("%s", regionTreeToText(*F).c_str());
    } else if (Dump == "dot") {
      std::printf("%s", pdgToDot(*F).c_str());
    } else if (Dump == "cfg") {
      LinearCode Code = linearize(*F);
      Cfg G(Code);
      std::printf("%s", G.str().c_str());
    } else {
      std::fprintf(stderr, "rapcc: unknown dump kind '%s'\n", Dump.c_str());
      return 2;
    }
    return Degraded ? 3 : 0;
  }

  Interpreter Interp(*CR.Prog, InterpOpts);
  RunResult R = Interp.run("main", Opts.InterpFuel);
  if (!R.Ok) {
    // Runtime traps get their own exit code (4): the compile succeeded, the
    // *program* faulted. The structured trap names the kind and location.
    std::fprintf(stderr, "rapcc: runtime trap: %s\n",
                 R.TrapInfo.Kind != TrapKind::None ? R.TrapInfo.str().c_str()
                                                   : R.Error.c_str());
    return 4;
  }
  if (StatsMode == "json") {
    // The machine-readable path: one JSON document on stdout, with the
    // run's dynamic counters embedded instead of the result lines.
    json::Value Doc = statsJson(CR, Meta);
    json::Object Exec;
    Exec["result"] = R.ReturnValue.str();
    Exec["cycles"] = R.Stats.Cycles;
    Exec["loads"] = R.Stats.Loads;
    Exec["spill_loads"] = R.Stats.SpillLoads;
    Exec["stores"] = R.Stats.Stores;
    Exec["spill_stores"] = R.Stats.SpillStores;
    Exec["copies"] = R.Stats.Copies;
    Exec["calls"] = R.Stats.Calls;
    Doc.asObject()["exec"] = json::Value(std::move(Exec));
    std::printf("%s\n", Doc.str(2).c_str());
    return Degraded ? 3 : 0;
  }
  std::printf("result: %s\n", R.ReturnValue.str().c_str());
  std::printf("cycles: %llu  loads: %llu (spill %llu)  stores: %llu "
              "(spill %llu)  copies: %llu  calls: %llu\n",
              static_cast<unsigned long long>(R.Stats.Cycles),
              static_cast<unsigned long long>(R.Stats.Loads),
              static_cast<unsigned long long>(R.Stats.SpillLoads),
              static_cast<unsigned long long>(R.Stats.Stores),
              static_cast<unsigned long long>(R.Stats.SpillStores),
              static_cast<unsigned long long>(R.Stats.Copies),
              static_cast<unsigned long long>(R.Stats.Calls));
  return Degraded ? 3 : 0;
}
