//===- driver/Report.cpp - Stats rendering (text + JSON) --------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "driver/Report.h"

#include <cstdio>

using namespace rap;

namespace {

const char *statusName(AllocStatus S) {
  switch (S) {
  case AllocStatus::Allocated:
    return "allocated";
  case AllocStatus::Fallback:
    return "fallback";
  case AllocStatus::Failed:
    return "failed";
  }
  return "unknown";
}

} // namespace

json::Value rap::allocStatsJson(const AllocStats &S) {
  json::Object A;
  A["graph_builds"] = S.GraphBuilds;
  A["spilled_vregs"] = S.SpilledVRegs;
  A["max_graph_nodes"] = S.MaxGraphNodes;
  A["regions_processed"] = S.RegionsProcessed;
  A["spill_rounds"] = S.SpillRounds;
  A["spill_loads_inserted"] = S.SpillLoadsInserted;
  A["spill_stores_inserted"] = S.SpillStoresInserted;
  A["hoisted_loads"] = S.HoistedLoads;
  A["sunk_stores"] = S.SunkStores;
  A["movement_removed_loads"] = S.MovementRemovedLoads;
  A["movement_removed_stores"] = S.MovementRemovedStores;
  A["peephole_removed_loads"] = S.PeepholeRemovedLoads;
  A["peephole_removed_stores"] = S.PeepholeRemovedStores;
  A["peephole_loads_to_copies"] = S.PeepholeLoadsToCopies;
  A["cleanup_removed_loads"] = S.CleanupRemovedLoads;
  A["cleanup_removed_stores"] = S.CleanupRemovedStores;
  A["copies_deleted"] = S.CopiesDeleted;
  A["peak_graph_bytes"] = static_cast<uint64_t>(S.PeakGraphBytes);
  return json::Value(std::move(A));
}

json::Value rap::statsJson(const CompileResult &R, const ReportMeta &Meta) {
  json::Object Root;
  Root["schema"] = "rap-stats-v1";
  Root["allocator"] = Meta.Allocator;
  Root["k"] = Meta.K;
  Root["threads"] = Meta.Threads;

  unsigned Degraded = 0;
  json::Array PerFunction;
  for (const AllocOutcome &O : R.AllocOutcomes) {
    Degraded += O.degraded();
    json::Object F;
    F["function"] = O.Function;
    F["status"] = statusName(O.Status);
    F["alloc"] = allocStatsJson(O.Stats);
    if (!O.Error.empty())
      F["error"] = O.Error;
    PerFunction.push_back(json::Value(std::move(F)));
  }
  Root["functions"] = static_cast<uint64_t>(R.AllocOutcomes.size());
  Root["degraded_functions"] = Degraded;
  Root["per_function"] = json::Value(std::move(PerFunction));

  Root["alloc"] = allocStatsJson(R.Alloc);

  // Wall clocks: the only non-deterministic sections of the document.
  json::Object Timing;
  Timing["graph_build_s"] = R.Alloc.GraphBuildSeconds;
  Timing["liveness_s"] = R.Alloc.LivenessSeconds;
  Root["timing"] = json::Value(std::move(Timing));

  Root["counters"] = R.Telemetry.countersJson();
  Root["timers"] = R.Telemetry.timersJson();
  Root["telemetry_slices"] = R.Telemetry.NumSlices;

  // Compile-server counters (rapd only; rapcc documents stay unchanged).
  if (Meta.Server.Enabled) {
    json::Object S;
    S["cache_hits"] = Meta.Server.CacheHits;
    S["cache_misses"] = Meta.Server.CacheMisses;
    S["cache_bytes"] = Meta.Server.CacheBytes;
    S["queue_depth_max"] = Meta.Server.QueueDepthMax;
    S["rejected_requests"] = Meta.Server.RejectedRequests;
    S["deadline_exceeded"] = Meta.Server.DeadlineExceeded;
    S["cancelled"] = Meta.Server.Cancelled;
    S["watchdog_trips"] = Meta.Server.WatchdogTrips;
    S["drain_ms"] = Meta.Server.DrainMs;
    S["drain_degraded"] = Meta.Server.DrainDegraded;
    if (Meta.Server.Recovery.Enabled) {
      json::Object Rec;
      Rec["journal_frames_replayed"] =
          Meta.Server.Recovery.JournalFramesReplayed;
      Rec["snapshot_loaded"] = Meta.Server.Recovery.SnapshotLoaded;
      Rec["torn_tail_dropped"] = Meta.Server.Recovery.TornTailDropped;
      Rec["restarts"] = Meta.Server.Recovery.Restarts;
      S["recovery"] = json::Value(std::move(Rec));
    }
    Root["server"] = json::Value(std::move(S));
  }
  return json::Value(std::move(Root));
}

std::string rap::statsText(const CompileResult &R, const ReportMeta &Meta) {
  const AllocStats &A = R.Alloc;
  char Buf[512];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf),
                "alloc stats (%s, k=%u, threads=%u):\n",
                Meta.Allocator.c_str(), Meta.K, Meta.Threads);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  graphs=%u maxnodes=%u regions=%u rounds=%u spills=%u\n",
                A.GraphBuilds, A.MaxGraphNodes, A.RegionsProcessed,
                A.SpillRounds, A.SpilledVRegs);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  spill code: +%u loads +%u stores; movement hoisted=%u "
                "sunk=%u removed=%u/%u\n",
                A.SpillLoadsInserted, A.SpillStoresInserted, A.HoistedLoads,
                A.SunkStores, A.MovementRemovedLoads, A.MovementRemovedStores);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  cleanup: peephole=%u/%u (%u to copies) dataflow=%u/%u "
                "copies-deleted=%u\n",
                A.PeepholeRemovedLoads, A.PeepholeRemovedStores,
                A.PeepholeLoadsToCopies, A.CleanupRemovedLoads,
                A.CleanupRemovedStores, A.CopiesDeleted);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  time: graph-build=%.3fms liveness=%.3fms\n",
                A.GraphBuildSeconds * 1e3, A.LivenessSeconds * 1e3);
  Out += Buf;
  if (Meta.Server.Enabled) {
    std::snprintf(Buf, sizeof(Buf),
                  "  server: cache hits=%llu misses=%llu bytes=%llu "
                  "queue-depth-max=%llu rejected=%llu\n",
                  static_cast<unsigned long long>(Meta.Server.CacheHits),
                  static_cast<unsigned long long>(Meta.Server.CacheMisses),
                  static_cast<unsigned long long>(Meta.Server.CacheBytes),
                  static_cast<unsigned long long>(Meta.Server.QueueDepthMax),
                  static_cast<unsigned long long>(
                      Meta.Server.RejectedRequests));
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "  server-drain: deadline-exceeded=%llu cancelled=%llu "
                  "watchdog-trips=%llu drain-ms=%u degraded=%s\n",
                  static_cast<unsigned long long>(
                      Meta.Server.DeadlineExceeded),
                  static_cast<unsigned long long>(Meta.Server.Cancelled),
                  static_cast<unsigned long long>(Meta.Server.WatchdogTrips),
                  Meta.Server.DrainMs,
                  Meta.Server.DrainDegraded ? "yes" : "no");
    Out += Buf;
    if (Meta.Server.Recovery.Enabled) {
      std::snprintf(
          Buf, sizeof(Buf),
          "  server-recovery: frames-replayed=%llu snapshot=%s "
          "torn-tail-dropped=%llu restarts=%llu\n",
          static_cast<unsigned long long>(
              Meta.Server.Recovery.JournalFramesReplayed),
          Meta.Server.Recovery.SnapshotLoaded ? "yes" : "no",
          static_cast<unsigned long long>(
              Meta.Server.Recovery.TornTailDropped),
          static_cast<unsigned long long>(Meta.Server.Recovery.Restarts));
      Out += Buf;
    }
  }
  if (!R.Telemetry.Counters.empty()) {
    std::snprintf(Buf, sizeof(Buf),
                  "  telemetry: %llu function(s), %llu slice(s)\n",
                  static_cast<unsigned long long>(R.Telemetry.NumFunctions),
                  static_cast<unsigned long long>(R.Telemetry.NumSlices));
    Out += Buf;
    for (const auto &[K, V] : R.Telemetry.Counters) {
      std::snprintf(Buf, sizeof(Buf), "    %-32s %llu\n", K.c_str(),
                    static_cast<unsigned long long>(V));
      Out += Buf;
    }
  }
  return Out;
}
