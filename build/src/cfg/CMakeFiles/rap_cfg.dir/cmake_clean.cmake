file(REMOVE_RECURSE
  "CMakeFiles/rap_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/rap_cfg.dir/Cfg.cpp.o.d"
  "CMakeFiles/rap_cfg.dir/Dominators.cpp.o"
  "CMakeFiles/rap_cfg.dir/Dominators.cpp.o.d"
  "CMakeFiles/rap_cfg.dir/Liveness.cpp.o"
  "CMakeFiles/rap_cfg.dir/Liveness.cpp.o.d"
  "CMakeFiles/rap_cfg.dir/LoopInfo.cpp.o"
  "CMakeFiles/rap_cfg.dir/LoopInfo.cpp.o.d"
  "librap_cfg.a"
  "librap_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
