file(REMOVE_RECURSE
  "librap_cfg.a"
)
