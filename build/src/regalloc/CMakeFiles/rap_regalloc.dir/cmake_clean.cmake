file(REMOVE_RECURSE
  "CMakeFiles/rap_regalloc.dir/AllocSupport.cpp.o"
  "CMakeFiles/rap_regalloc.dir/AllocSupport.cpp.o.d"
  "CMakeFiles/rap_regalloc.dir/AssignmentVerifier.cpp.o"
  "CMakeFiles/rap_regalloc.dir/AssignmentVerifier.cpp.o.d"
  "CMakeFiles/rap_regalloc.dir/Coalesce.cpp.o"
  "CMakeFiles/rap_regalloc.dir/Coalesce.cpp.o.d"
  "CMakeFiles/rap_regalloc.dir/Coloring.cpp.o"
  "CMakeFiles/rap_regalloc.dir/Coloring.cpp.o.d"
  "CMakeFiles/rap_regalloc.dir/GlobalSpillCleanup.cpp.o"
  "CMakeFiles/rap_regalloc.dir/GlobalSpillCleanup.cpp.o.d"
  "CMakeFiles/rap_regalloc.dir/Gra.cpp.o"
  "CMakeFiles/rap_regalloc.dir/Gra.cpp.o.d"
  "CMakeFiles/rap_regalloc.dir/InterferenceGraph.cpp.o"
  "CMakeFiles/rap_regalloc.dir/InterferenceGraph.cpp.o.d"
  "CMakeFiles/rap_regalloc.dir/Peephole.cpp.o"
  "CMakeFiles/rap_regalloc.dir/Peephole.cpp.o.d"
  "CMakeFiles/rap_regalloc.dir/PhysicalRewrite.cpp.o"
  "CMakeFiles/rap_regalloc.dir/PhysicalRewrite.cpp.o.d"
  "CMakeFiles/rap_regalloc.dir/Rap.cpp.o"
  "CMakeFiles/rap_regalloc.dir/Rap.cpp.o.d"
  "CMakeFiles/rap_regalloc.dir/SpillCodeMovement.cpp.o"
  "CMakeFiles/rap_regalloc.dir/SpillCodeMovement.cpp.o.d"
  "librap_regalloc.a"
  "librap_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
