file(REMOVE_RECURSE
  "librap_regalloc.a"
)
