# Empty dependencies file for rap_regalloc.
# This may be replaced when dependencies are built.
