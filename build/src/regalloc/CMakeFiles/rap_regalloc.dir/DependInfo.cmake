
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regalloc/AllocSupport.cpp" "src/regalloc/CMakeFiles/rap_regalloc.dir/AllocSupport.cpp.o" "gcc" "src/regalloc/CMakeFiles/rap_regalloc.dir/AllocSupport.cpp.o.d"
  "/root/repo/src/regalloc/AssignmentVerifier.cpp" "src/regalloc/CMakeFiles/rap_regalloc.dir/AssignmentVerifier.cpp.o" "gcc" "src/regalloc/CMakeFiles/rap_regalloc.dir/AssignmentVerifier.cpp.o.d"
  "/root/repo/src/regalloc/Coalesce.cpp" "src/regalloc/CMakeFiles/rap_regalloc.dir/Coalesce.cpp.o" "gcc" "src/regalloc/CMakeFiles/rap_regalloc.dir/Coalesce.cpp.o.d"
  "/root/repo/src/regalloc/Coloring.cpp" "src/regalloc/CMakeFiles/rap_regalloc.dir/Coloring.cpp.o" "gcc" "src/regalloc/CMakeFiles/rap_regalloc.dir/Coloring.cpp.o.d"
  "/root/repo/src/regalloc/GlobalSpillCleanup.cpp" "src/regalloc/CMakeFiles/rap_regalloc.dir/GlobalSpillCleanup.cpp.o" "gcc" "src/regalloc/CMakeFiles/rap_regalloc.dir/GlobalSpillCleanup.cpp.o.d"
  "/root/repo/src/regalloc/Gra.cpp" "src/regalloc/CMakeFiles/rap_regalloc.dir/Gra.cpp.o" "gcc" "src/regalloc/CMakeFiles/rap_regalloc.dir/Gra.cpp.o.d"
  "/root/repo/src/regalloc/InterferenceGraph.cpp" "src/regalloc/CMakeFiles/rap_regalloc.dir/InterferenceGraph.cpp.o" "gcc" "src/regalloc/CMakeFiles/rap_regalloc.dir/InterferenceGraph.cpp.o.d"
  "/root/repo/src/regalloc/Peephole.cpp" "src/regalloc/CMakeFiles/rap_regalloc.dir/Peephole.cpp.o" "gcc" "src/regalloc/CMakeFiles/rap_regalloc.dir/Peephole.cpp.o.d"
  "/root/repo/src/regalloc/PhysicalRewrite.cpp" "src/regalloc/CMakeFiles/rap_regalloc.dir/PhysicalRewrite.cpp.o" "gcc" "src/regalloc/CMakeFiles/rap_regalloc.dir/PhysicalRewrite.cpp.o.d"
  "/root/repo/src/regalloc/Rap.cpp" "src/regalloc/CMakeFiles/rap_regalloc.dir/Rap.cpp.o" "gcc" "src/regalloc/CMakeFiles/rap_regalloc.dir/Rap.cpp.o.d"
  "/root/repo/src/regalloc/SpillCodeMovement.cpp" "src/regalloc/CMakeFiles/rap_regalloc.dir/SpillCodeMovement.cpp.o" "gcc" "src/regalloc/CMakeFiles/rap_regalloc.dir/SpillCodeMovement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/rap_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/rap_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/pdg/CMakeFiles/rap_pdg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
