file(REMOVE_RECURSE
  "librap_frontend.a"
)
