# Empty dependencies file for rap_frontend.
# This may be replaced when dependencies are built.
