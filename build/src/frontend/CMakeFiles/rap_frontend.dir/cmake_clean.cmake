file(REMOVE_RECURSE
  "CMakeFiles/rap_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/rap_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/rap_frontend.dir/Parser.cpp.o"
  "CMakeFiles/rap_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/rap_frontend.dir/Sema.cpp.o"
  "CMakeFiles/rap_frontend.dir/Sema.cpp.o.d"
  "librap_frontend.a"
  "librap_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
