file(REMOVE_RECURSE
  "librap_driver.a"
)
