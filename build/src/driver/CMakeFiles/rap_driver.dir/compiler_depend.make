# Empty compiler generated dependencies file for rap_driver.
# This may be replaced when dependencies are built.
