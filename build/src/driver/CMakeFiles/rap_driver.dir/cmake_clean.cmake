file(REMOVE_RECURSE
  "CMakeFiles/rap_driver.dir/Pipeline.cpp.o"
  "CMakeFiles/rap_driver.dir/Pipeline.cpp.o.d"
  "librap_driver.a"
  "librap_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
