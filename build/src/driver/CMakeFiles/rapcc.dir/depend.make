# Empty dependencies file for rapcc.
# This may be replaced when dependencies are built.
