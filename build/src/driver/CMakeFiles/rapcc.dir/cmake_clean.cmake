file(REMOVE_RECURSE
  "CMakeFiles/rapcc.dir/rapcc.cpp.o"
  "CMakeFiles/rapcc.dir/rapcc.cpp.o.d"
  "rapcc"
  "rapcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
