file(REMOVE_RECURSE
  "librap_ir.a"
)
