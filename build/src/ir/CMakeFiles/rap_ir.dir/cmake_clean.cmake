file(REMOVE_RECURSE
  "CMakeFiles/rap_ir.dir/Linearize.cpp.o"
  "CMakeFiles/rap_ir.dir/Linearize.cpp.o.d"
  "CMakeFiles/rap_ir.dir/Printer.cpp.o"
  "CMakeFiles/rap_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/rap_ir.dir/RegionTree.cpp.o"
  "CMakeFiles/rap_ir.dir/RegionTree.cpp.o.d"
  "librap_ir.a"
  "librap_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
