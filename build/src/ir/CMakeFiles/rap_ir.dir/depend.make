# Empty dependencies file for rap_ir.
# This may be replaced when dependencies are built.
