file(REMOVE_RECURSE
  "CMakeFiles/rap_benchprogs.dir/BenchPrograms.cpp.o"
  "CMakeFiles/rap_benchprogs.dir/BenchPrograms.cpp.o.d"
  "CMakeFiles/rap_benchprogs.dir/BenchProgramsLivermore.cpp.o"
  "CMakeFiles/rap_benchprogs.dir/BenchProgramsLivermore.cpp.o.d"
  "CMakeFiles/rap_benchprogs.dir/BenchProgramsMisc.cpp.o"
  "CMakeFiles/rap_benchprogs.dir/BenchProgramsMisc.cpp.o.d"
  "CMakeFiles/rap_benchprogs.dir/BenchProgramsStanford.cpp.o"
  "CMakeFiles/rap_benchprogs.dir/BenchProgramsStanford.cpp.o.d"
  "librap_benchprogs.a"
  "librap_benchprogs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_benchprogs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
