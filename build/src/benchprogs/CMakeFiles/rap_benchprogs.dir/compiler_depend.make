# Empty compiler generated dependencies file for rap_benchprogs.
# This may be replaced when dependencies are built.
