
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchprogs/BenchPrograms.cpp" "src/benchprogs/CMakeFiles/rap_benchprogs.dir/BenchPrograms.cpp.o" "gcc" "src/benchprogs/CMakeFiles/rap_benchprogs.dir/BenchPrograms.cpp.o.d"
  "/root/repo/src/benchprogs/BenchProgramsLivermore.cpp" "src/benchprogs/CMakeFiles/rap_benchprogs.dir/BenchProgramsLivermore.cpp.o" "gcc" "src/benchprogs/CMakeFiles/rap_benchprogs.dir/BenchProgramsLivermore.cpp.o.d"
  "/root/repo/src/benchprogs/BenchProgramsMisc.cpp" "src/benchprogs/CMakeFiles/rap_benchprogs.dir/BenchProgramsMisc.cpp.o" "gcc" "src/benchprogs/CMakeFiles/rap_benchprogs.dir/BenchProgramsMisc.cpp.o.d"
  "/root/repo/src/benchprogs/BenchProgramsStanford.cpp" "src/benchprogs/CMakeFiles/rap_benchprogs.dir/BenchProgramsStanford.cpp.o" "gcc" "src/benchprogs/CMakeFiles/rap_benchprogs.dir/BenchProgramsStanford.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
