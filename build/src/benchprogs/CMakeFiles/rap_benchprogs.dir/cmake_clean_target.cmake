file(REMOVE_RECURSE
  "librap_benchprogs.a"
)
