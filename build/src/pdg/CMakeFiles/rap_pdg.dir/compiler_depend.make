# Empty compiler generated dependencies file for rap_pdg.
# This may be replaced when dependencies are built.
