file(REMOVE_RECURSE
  "CMakeFiles/rap_pdg.dir/ControlDependence.cpp.o"
  "CMakeFiles/rap_pdg.dir/ControlDependence.cpp.o.d"
  "CMakeFiles/rap_pdg.dir/DataDependence.cpp.o"
  "CMakeFiles/rap_pdg.dir/DataDependence.cpp.o.d"
  "CMakeFiles/rap_pdg.dir/Dot.cpp.o"
  "CMakeFiles/rap_pdg.dir/Dot.cpp.o.d"
  "librap_pdg.a"
  "librap_pdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_pdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
