file(REMOVE_RECURSE
  "librap_pdg.a"
)
