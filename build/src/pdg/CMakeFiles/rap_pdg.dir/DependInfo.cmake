
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdg/ControlDependence.cpp" "src/pdg/CMakeFiles/rap_pdg.dir/ControlDependence.cpp.o" "gcc" "src/pdg/CMakeFiles/rap_pdg.dir/ControlDependence.cpp.o.d"
  "/root/repo/src/pdg/DataDependence.cpp" "src/pdg/CMakeFiles/rap_pdg.dir/DataDependence.cpp.o" "gcc" "src/pdg/CMakeFiles/rap_pdg.dir/DataDependence.cpp.o.d"
  "/root/repo/src/pdg/Dot.cpp" "src/pdg/CMakeFiles/rap_pdg.dir/Dot.cpp.o" "gcc" "src/pdg/CMakeFiles/rap_pdg.dir/Dot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/rap_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/rap_cfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
