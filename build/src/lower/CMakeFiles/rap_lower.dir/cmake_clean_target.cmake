file(REMOVE_RECURSE
  "librap_lower.a"
)
