file(REMOVE_RECURSE
  "CMakeFiles/rap_lower.dir/AstLowering.cpp.o"
  "CMakeFiles/rap_lower.dir/AstLowering.cpp.o.d"
  "librap_lower.a"
  "librap_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
