# Empty dependencies file for rap_lower.
# This may be replaced when dependencies are built.
