file(REMOVE_RECURSE
  "librap_interp.a"
)
