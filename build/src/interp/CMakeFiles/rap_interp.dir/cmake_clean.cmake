file(REMOVE_RECURSE
  "CMakeFiles/rap_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/rap_interp.dir/Interpreter.cpp.o.d"
  "librap_interp.a"
  "librap_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
