# Empty compiler generated dependencies file for rap_interp.
# This may be replaced when dependencies are built.
