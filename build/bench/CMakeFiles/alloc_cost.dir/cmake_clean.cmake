file(REMOVE_RECURSE
  "CMakeFiles/alloc_cost.dir/alloc_cost.cpp.o"
  "CMakeFiles/alloc_cost.dir/alloc_cost.cpp.o.d"
  "alloc_cost"
  "alloc_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
