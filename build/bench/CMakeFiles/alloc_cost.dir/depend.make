# Empty dependencies file for alloc_cost.
# This may be replaced when dependencies are built.
