# Empty dependencies file for table1_rap_vs_gra.
# This may be replaced when dependencies are built.
