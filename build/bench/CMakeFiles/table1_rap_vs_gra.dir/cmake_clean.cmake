file(REMOVE_RECURSE
  "CMakeFiles/table1_rap_vs_gra.dir/table1_rap_vs_gra.cpp.o"
  "CMakeFiles/table1_rap_vs_gra.dir/table1_rap_vs_gra.cpp.o.d"
  "table1_rap_vs_gra"
  "table1_rap_vs_gra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rap_vs_gra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
