file(REMOVE_RECURSE
  "CMakeFiles/fig7_region_granularity.dir/fig7_region_granularity.cpp.o"
  "CMakeFiles/fig7_region_granularity.dir/fig7_region_granularity.cpp.o.d"
  "fig7_region_granularity"
  "fig7_region_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_region_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
