# Empty dependencies file for fig7_region_granularity.
# This may be replaced when dependencies are built.
