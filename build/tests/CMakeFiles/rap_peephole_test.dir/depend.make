# Empty dependencies file for rap_peephole_test.
# This may be replaced when dependencies are built.
