file(REMOVE_RECURSE
  "CMakeFiles/rap_peephole_test.dir/peephole_test.cpp.o"
  "CMakeFiles/rap_peephole_test.dir/peephole_test.cpp.o.d"
  "rap_peephole_test"
  "rap_peephole_test.pdb"
  "rap_peephole_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_peephole_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
