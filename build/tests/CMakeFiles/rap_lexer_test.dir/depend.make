# Empty dependencies file for rap_lexer_test.
# This may be replaced when dependencies are built.
