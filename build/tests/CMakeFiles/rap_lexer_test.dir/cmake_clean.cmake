file(REMOVE_RECURSE
  "CMakeFiles/rap_lexer_test.dir/lexer_test.cpp.o"
  "CMakeFiles/rap_lexer_test.dir/lexer_test.cpp.o.d"
  "rap_lexer_test"
  "rap_lexer_test.pdb"
  "rap_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
