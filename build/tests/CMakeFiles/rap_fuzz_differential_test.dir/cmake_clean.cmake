file(REMOVE_RECURSE
  "CMakeFiles/rap_fuzz_differential_test.dir/fuzz_differential_test.cpp.o"
  "CMakeFiles/rap_fuzz_differential_test.dir/fuzz_differential_test.cpp.o.d"
  "rap_fuzz_differential_test"
  "rap_fuzz_differential_test.pdb"
  "rap_fuzz_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_fuzz_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
