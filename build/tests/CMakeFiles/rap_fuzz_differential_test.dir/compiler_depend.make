# Empty compiler generated dependencies file for rap_fuzz_differential_test.
# This may be replaced when dependencies are built.
