file(REMOVE_RECURSE
  "CMakeFiles/rap_benchprogs_test.dir/benchprogs_test.cpp.o"
  "CMakeFiles/rap_benchprogs_test.dir/benchprogs_test.cpp.o.d"
  "rap_benchprogs_test"
  "rap_benchprogs_test.pdb"
  "rap_benchprogs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_benchprogs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
