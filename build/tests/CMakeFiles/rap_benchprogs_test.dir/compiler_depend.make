# Empty compiler generated dependencies file for rap_benchprogs_test.
# This may be replaced when dependencies are built.
