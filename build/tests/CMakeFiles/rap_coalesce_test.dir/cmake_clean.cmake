file(REMOVE_RECURSE
  "CMakeFiles/rap_coalesce_test.dir/coalesce_test.cpp.o"
  "CMakeFiles/rap_coalesce_test.dir/coalesce_test.cpp.o.d"
  "rap_coalesce_test"
  "rap_coalesce_test.pdb"
  "rap_coalesce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_coalesce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
