# Empty dependencies file for rap_coalesce_test.
# This may be replaced when dependencies are built.
