
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coalesce_test.cpp" "tests/CMakeFiles/rap_coalesce_test.dir/coalesce_test.cpp.o" "gcc" "tests/CMakeFiles/rap_coalesce_test.dir/coalesce_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/rap_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/rap_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/lower/CMakeFiles/rap_lower.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/rap_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/pdg/CMakeFiles/rap_pdg.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/rap_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/rap_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/rap_driver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
