# Empty dependencies file for rap_rap_regiongraph_test.
# This may be replaced when dependencies are built.
