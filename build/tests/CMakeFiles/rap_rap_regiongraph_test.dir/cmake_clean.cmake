file(REMOVE_RECURSE
  "CMakeFiles/rap_rap_regiongraph_test.dir/rap_regiongraph_test.cpp.o"
  "CMakeFiles/rap_rap_regiongraph_test.dir/rap_regiongraph_test.cpp.o.d"
  "rap_rap_regiongraph_test"
  "rap_rap_regiongraph_test.pdb"
  "rap_rap_regiongraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_rap_regiongraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
