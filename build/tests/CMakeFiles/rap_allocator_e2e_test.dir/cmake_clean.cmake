file(REMOVE_RECURSE
  "CMakeFiles/rap_allocator_e2e_test.dir/allocator_e2e_test.cpp.o"
  "CMakeFiles/rap_allocator_e2e_test.dir/allocator_e2e_test.cpp.o.d"
  "rap_allocator_e2e_test"
  "rap_allocator_e2e_test.pdb"
  "rap_allocator_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_allocator_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
