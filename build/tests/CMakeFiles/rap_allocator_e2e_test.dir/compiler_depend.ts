# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rap_allocator_e2e_test.
