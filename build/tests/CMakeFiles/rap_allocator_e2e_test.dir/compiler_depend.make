# Empty compiler generated dependencies file for rap_allocator_e2e_test.
# This may be replaced when dependencies are built.
