file(REMOVE_RECURSE
  "CMakeFiles/rap_interference_test.dir/interference_test.cpp.o"
  "CMakeFiles/rap_interference_test.dir/interference_test.cpp.o.d"
  "rap_interference_test"
  "rap_interference_test.pdb"
  "rap_interference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_interference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
