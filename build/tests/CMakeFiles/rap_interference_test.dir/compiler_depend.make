# Empty compiler generated dependencies file for rap_interference_test.
# This may be replaced when dependencies are built.
