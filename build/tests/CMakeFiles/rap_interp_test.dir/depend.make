# Empty dependencies file for rap_interp_test.
# This may be replaced when dependencies are built.
