file(REMOVE_RECURSE
  "CMakeFiles/rap_interp_test.dir/interp_test.cpp.o"
  "CMakeFiles/rap_interp_test.dir/interp_test.cpp.o.d"
  "rap_interp_test"
  "rap_interp_test.pdb"
  "rap_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
