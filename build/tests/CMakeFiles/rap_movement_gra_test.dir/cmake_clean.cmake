file(REMOVE_RECURSE
  "CMakeFiles/rap_movement_gra_test.dir/movement_gra_test.cpp.o"
  "CMakeFiles/rap_movement_gra_test.dir/movement_gra_test.cpp.o.d"
  "rap_movement_gra_test"
  "rap_movement_gra_test.pdb"
  "rap_movement_gra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_movement_gra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
