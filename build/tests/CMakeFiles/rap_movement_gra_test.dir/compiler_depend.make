# Empty compiler generated dependencies file for rap_movement_gra_test.
# This may be replaced when dependencies are built.
