file(REMOVE_RECURSE
  "CMakeFiles/rap_pipeline_smoke_test.dir/pipeline_smoke_test.cpp.o"
  "CMakeFiles/rap_pipeline_smoke_test.dir/pipeline_smoke_test.cpp.o.d"
  "rap_pipeline_smoke_test"
  "rap_pipeline_smoke_test.pdb"
  "rap_pipeline_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_pipeline_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
