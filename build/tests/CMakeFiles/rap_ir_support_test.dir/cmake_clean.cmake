file(REMOVE_RECURSE
  "CMakeFiles/rap_ir_support_test.dir/ir_support_test.cpp.o"
  "CMakeFiles/rap_ir_support_test.dir/ir_support_test.cpp.o.d"
  "rap_ir_support_test"
  "rap_ir_support_test.pdb"
  "rap_ir_support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_ir_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
