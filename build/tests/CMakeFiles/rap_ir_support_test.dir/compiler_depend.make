# Empty compiler generated dependencies file for rap_ir_support_test.
# This may be replaced when dependencies are built.
