# Empty compiler generated dependencies file for rap_cfg_test.
# This may be replaced when dependencies are built.
