file(REMOVE_RECURSE
  "CMakeFiles/rap_cfg_test.dir/cfg_test.cpp.o"
  "CMakeFiles/rap_cfg_test.dir/cfg_test.cpp.o.d"
  "rap_cfg_test"
  "rap_cfg_test.pdb"
  "rap_cfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_cfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
