file(REMOVE_RECURSE
  "CMakeFiles/rap_parser_sema_test.dir/parser_sema_test.cpp.o"
  "CMakeFiles/rap_parser_sema_test.dir/parser_sema_test.cpp.o.d"
  "rap_parser_sema_test"
  "rap_parser_sema_test.pdb"
  "rap_parser_sema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_parser_sema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
