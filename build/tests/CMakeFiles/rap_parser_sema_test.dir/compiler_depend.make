# Empty compiler generated dependencies file for rap_parser_sema_test.
# This may be replaced when dependencies are built.
