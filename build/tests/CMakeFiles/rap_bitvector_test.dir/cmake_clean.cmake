file(REMOVE_RECURSE
  "CMakeFiles/rap_bitvector_test.dir/bitvector_test.cpp.o"
  "CMakeFiles/rap_bitvector_test.dir/bitvector_test.cpp.o.d"
  "rap_bitvector_test"
  "rap_bitvector_test.pdb"
  "rap_bitvector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_bitvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
