# Empty compiler generated dependencies file for rap_bitvector_test.
# This may be replaced when dependencies are built.
