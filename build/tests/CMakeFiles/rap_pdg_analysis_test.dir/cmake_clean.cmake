file(REMOVE_RECURSE
  "CMakeFiles/rap_pdg_analysis_test.dir/pdg_analysis_test.cpp.o"
  "CMakeFiles/rap_pdg_analysis_test.dir/pdg_analysis_test.cpp.o.d"
  "rap_pdg_analysis_test"
  "rap_pdg_analysis_test.pdb"
  "rap_pdg_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_pdg_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
