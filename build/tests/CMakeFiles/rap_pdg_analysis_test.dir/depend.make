# Empty dependencies file for rap_pdg_analysis_test.
# This may be replaced when dependencies are built.
