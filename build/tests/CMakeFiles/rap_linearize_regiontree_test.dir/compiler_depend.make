# Empty compiler generated dependencies file for rap_linearize_regiontree_test.
# This may be replaced when dependencies are built.
