file(REMOVE_RECURSE
  "CMakeFiles/rap_linearize_regiontree_test.dir/linearize_regiontree_test.cpp.o"
  "CMakeFiles/rap_linearize_regiontree_test.dir/linearize_regiontree_test.cpp.o.d"
  "rap_linearize_regiontree_test"
  "rap_linearize_regiontree_test.pdb"
  "rap_linearize_regiontree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_linearize_regiontree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
