file(REMOVE_RECURSE
  "CMakeFiles/rap_cleanup_verifier_test.dir/cleanup_verifier_test.cpp.o"
  "CMakeFiles/rap_cleanup_verifier_test.dir/cleanup_verifier_test.cpp.o.d"
  "rap_cleanup_verifier_test"
  "rap_cleanup_verifier_test.pdb"
  "rap_cleanup_verifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_cleanup_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
