# Empty dependencies file for rap_cleanup_verifier_test.
# This may be replaced when dependencies are built.
