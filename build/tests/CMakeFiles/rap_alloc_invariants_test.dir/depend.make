# Empty dependencies file for rap_alloc_invariants_test.
# This may be replaced when dependencies are built.
