file(REMOVE_RECURSE
  "CMakeFiles/rap_alloc_invariants_test.dir/alloc_invariants_test.cpp.o"
  "CMakeFiles/rap_alloc_invariants_test.dir/alloc_invariants_test.cpp.o.d"
  "rap_alloc_invariants_test"
  "rap_alloc_invariants_test.pdb"
  "rap_alloc_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_alloc_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
