# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rap_pipeline_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/rap_allocator_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/rap_fuzz_differential_test[1]_include.cmake")
include("/root/repo/build/tests/rap_benchprogs_test[1]_include.cmake")
include("/root/repo/build/tests/rap_bitvector_test[1]_include.cmake")
include("/root/repo/build/tests/rap_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/rap_parser_sema_test[1]_include.cmake")
include("/root/repo/build/tests/rap_cfg_test[1]_include.cmake")
include("/root/repo/build/tests/rap_interference_test[1]_include.cmake")
include("/root/repo/build/tests/rap_interp_test[1]_include.cmake")
include("/root/repo/build/tests/rap_peephole_test[1]_include.cmake")
include("/root/repo/build/tests/rap_linearize_regiontree_test[1]_include.cmake")
include("/root/repo/build/tests/rap_pdg_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/rap_rap_regiongraph_test[1]_include.cmake")
include("/root/repo/build/tests/rap_cleanup_verifier_test[1]_include.cmake")
include("/root/repo/build/tests/rap_movement_gra_test[1]_include.cmake")
include("/root/repo/build/tests/rap_coalesce_test[1]_include.cmake")
include("/root/repo/build/tests/rap_ir_support_test[1]_include.cmake")
include("/root/repo/build/tests/rap_alloc_invariants_test[1]_include.cmake")
