file(REMOVE_RECURSE
  "CMakeFiles/pdg_viewer.dir/pdg_viewer.cpp.o"
  "CMakeFiles/pdg_viewer.dir/pdg_viewer.cpp.o.d"
  "pdg_viewer"
  "pdg_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdg_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
