# Empty dependencies file for pdg_viewer.
# This may be replaced when dependencies are built.
