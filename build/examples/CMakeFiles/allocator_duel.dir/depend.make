# Empty dependencies file for allocator_duel.
# This may be replaced when dependencies are built.
