//===- tests/cfg_test.cpp - CFG, dominators, loops, liveness ------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "cfg/Cfg.h"
#include "cfg/Dominators.h"
#include "cfg/Liveness.h"
#include "cfg/LoopInfo.h"
#include "ir/Linearize.h"

#include "gtest/gtest.h"

using namespace rap;
using rap::test::compile;

namespace {

struct Built {
  std::unique_ptr<IlocProgram> Prog;
  IlocFunction *F = nullptr;
  LinearCode Code;
};

Built build(const std::string &Src, const char *Func = "main") {
  Built B;
  B.Prog = compile(Src, RegionGranularity::Merged);
  if (!B.Prog)
    return B;
  B.F = B.Prog->findFunction(Func);
  B.Code = linearize(*B.F);
  return B;
}

TEST(Cfg, StraightLineIsOneBlock) {
  Built B = build("int main() { int a = 1; int b = a + 2; return b; }");
  Cfg G(B.Code);
  EXPECT_EQ(G.numBlocks(), 1u);
  EXPECT_TRUE(G.block(0).Succs.empty());
  ASSERT_EQ(G.exitBlocks().size(), 1u);
}

TEST(Cfg, IfElseMakesDiamond) {
  Built B = build(R"(
    int main() {
      int a = 1;
      if (a > 0) { a = 2; } else { a = 3; }
      return a;
    }
  )");
  Cfg G(B.Code);
  // entry, then, else, join.
  ASSERT_EQ(G.numBlocks(), 4u);
  EXPECT_EQ(G.block(0).Succs.size(), 2u);
  EXPECT_EQ(G.block(1).Succs, std::vector<unsigned>{3});
  EXPECT_EQ(G.block(2).Succs, std::vector<unsigned>{3});
  EXPECT_EQ(G.block(3).Preds.size(), 2u);
}

TEST(Cfg, WhileLoopHasBackEdge) {
  Built B = build(R"(
    int main() {
      int i = 0;
      while (i < 5) { i = i + 1; }
      return i;
    }
  )");
  Cfg G(B.Code);
  // entry, head, body, exit.
  ASSERT_EQ(G.numBlocks(), 4u);
  const BasicBlock &Head = G.block(1);
  EXPECT_EQ(Head.Preds.size(), 2u) << "entry and back edge";
  EXPECT_EQ(G.block(2).Succs, std::vector<unsigned>{1});
}

TEST(Dominators, DiamondDominance) {
  Built B = build(R"(
    int main() {
      int a = 1;
      if (a > 0) { a = 2; } else { a = 3; }
      return a;
    }
  )");
  Cfg G(B.Code);
  DominatorTree Dom(G, /*Post=*/false);
  EXPECT_TRUE(Dom.dominates(0, 1));
  EXPECT_TRUE(Dom.dominates(0, 2));
  EXPECT_TRUE(Dom.dominates(0, 3));
  EXPECT_FALSE(Dom.dominates(1, 3)) << "join reachable around the then-arm";
  EXPECT_FALSE(Dom.dominates(2, 3));
  EXPECT_EQ(Dom.idom(3), 0);
  EXPECT_TRUE(Dom.dominates(2, 2)) << "dominance is reflexive";
}

TEST(Dominators, PostDominanceOfDiamond) {
  Built B = build(R"(
    int main() {
      int a = 1;
      if (a > 0) { a = 2; } else { a = 3; }
      return a;
    }
  )");
  Cfg G(B.Code);
  DominatorTree Post(G, /*Post=*/true);
  EXPECT_TRUE(Post.dominates(3, 0)) << "join postdominates entry";
  EXPECT_TRUE(Post.dominates(3, 1));
  EXPECT_FALSE(Post.dominates(1, 0)) << "arm is avoidable";
  EXPECT_EQ(Post.idom(1), 3);
}

TEST(Dominators, LoopHeaderDominatesBody) {
  Built B = build(R"(
    int main() {
      int i = 0;
      while (i < 5) { i = i + 1; }
      return i;
    }
  )");
  Cfg G(B.Code);
  DominatorTree Dom(G, false);
  EXPECT_TRUE(Dom.dominates(1, 2));
  EXPECT_FALSE(Dom.dominates(2, 1));
}

TEST(LoopInfo, FindsNaturalLoopsAndDepths) {
  Built B = build(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 3; i = i + 1) {
        for (int j = 0; j < 3; j = j + 1) {
          s = s + i * j;
        }
      }
      return s;
    }
  )");
  Cfg G(B.Code);
  DominatorTree Dom(G, false);
  LoopInfo LI(G, Dom);
  ASSERT_EQ(LI.loops().size(), 2u);
  unsigned MaxDepth = 0;
  for (unsigned Blk = 0; Blk != G.numBlocks(); ++Blk)
    MaxDepth = std::max(MaxDepth, LI.loopDepth(Blk));
  EXPECT_EQ(MaxDepth, 2u) << "the inner body nests two deep";
  EXPECT_EQ(LI.loopDepth(0), 0u) << "entry is in no loop";
}

TEST(Liveness, StraightLineKillAndUse) {
  Built B = build("int main() { int a = 1; int b = a + 2; return b; }");
  Cfg G(B.Code);
  Liveness Live(B.Code, G, B.F->numVRegs());
  // Find the add instruction; its source (a) must be live before and the
  // result (b) live after.
  for (unsigned P = 0; P != B.Code.Instrs.size(); ++P) {
    const Instr *I = B.Code.Instrs[P];
    if (I->Op == Opcode::Add) {
      for (Reg R : I->Src)
        EXPECT_TRUE(Live.liveBefore(P).test(R));
      EXPECT_TRUE(Live.liveAfter(P).test(I->Dst));
      EXPECT_FALSE(Live.liveAfter(B.Code.Instrs.size() - 1)
                       .test(I->Dst))
          << "nothing lives after ret";
    }
  }
}

TEST(Liveness, LoopCarriedValueLiveAroundBackEdge) {
  Built B = build(R"(
    int main() {
      int i = 0;
      while (i < 5) { i = i + 1; }
      return i;
    }
  )");
  Cfg G(B.Code);
  Liveness Live(B.Code, G, B.F->numVRegs());
  // i (vreg of the local) is live at the loop head on every path. Find the
  // cmp: its source i is live-before, and also live at the end of the body.
  for (unsigned P = 0; P != B.Code.Instrs.size(); ++P) {
    const Instr *I = B.Code.Instrs[P];
    if (I->Op == Opcode::CmpLT) {
      Reg IVar = I->Src[0];
      EXPECT_TRUE(Live.liveBefore(P).test(IVar));
      const BasicBlock &Body = G.block(2);
      EXPECT_TRUE(Live.liveAfter(Body.End - 1).test(IVar))
          << "live around the back edge";
    }
  }
}

TEST(Liveness, RegionLevelQueriesMatchStructure) {
  auto Prog = compile(R"(
    int main() {
      int keep = 7;
      int i = 0;
      while (i < 4) { i = i + 1; }
      return i + keep;
    }
  )", RegionGranularity::Merged);
  ASSERT_NE(Prog, nullptr);
  IlocFunction *F = Prog->findFunction("main");
  LinearCode Code = linearize(*F);
  Cfg G(Code);
  Liveness Live(Code, G, F->numVRegs());
  // Find the loop region: `keep` must be live into and out of it.
  const PdgNode *Loop = nullptr;
  F->root()->forEachNode([&](const PdgNode *N) {
    if (N->isRegion() && N->IsLoop)
      Loop = N;
  });
  ASSERT_NE(Loop, nullptr);
  unsigned LiveThrough = 0;
  Live.liveInOf(*Loop).forEach([&](unsigned R) {
    if (Live.liveOutOf(*Loop).test(R))
      ++LiveThrough;
  });
  EXPECT_GE(LiveThrough, 2u) << "keep and i are live through the loop";
}

TEST(Cfg, EarlyReturnCreatesMultipleExits) {
  Built B = build(R"(
    int f(int x) {
      if (x < 0) { return 0; }
      return x;
    }
  )", "f");
  Cfg G(B.Code);
  EXPECT_EQ(G.exitBlocks().size(), 2u);
}

} // namespace
