//===- tests/interp_superinstr_test.cpp - Superinstruction fusion tests ---===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the threaded engine's superinstruction fusion (DESIGN.md
/// §11). Each test compiles a source shape known to decode into the
/// superinstruction under test, asserts the fusion actually happened
/// (decodedOpCount — a test that silently stopped exercising its pattern
/// would be worthless), and then checks the fused execution against the
/// reference switch engine: identical results, identical counters,
/// identical traps, and identical outcomes at every fuel value, so that a
/// budget expiring or a trap firing in the middle of a fused stretch is
/// indistinguishable from the unfused sequence.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"

#include "gtest/gtest.h"

#include <string>

using namespace rap;

namespace {

/// Both engines over the same program; constructed together so every check
/// compares the same allocation of the same source.
struct EnginePair {
  CompileResult CR;
  std::unique_ptr<Interpreter> Sw, Th;

  explicit EnginePair(const std::string &Source,
                      AllocatorKind Alloc = AllocatorKind::None,
                      unsigned K = 5) {
    CompileOptions Options;
    Options.Allocator = Alloc;
    Options.Alloc.K = K;
    CR = compileMiniC(Source, Options);
    if (!CR.ok()) {
      ADD_FAILURE() << "compile failed:\n" << CR.Errors;
      return;
    }
    InterpOptions SwOpts, ThOpts;
    SwOpts.Dispatch = DispatchKind::Switch;
    ThOpts.Dispatch = DispatchKind::Threaded;
    Sw = std::make_unique<Interpreter>(*CR.Prog, SwOpts);
    Th = std::make_unique<Interpreter>(*CR.Prog, ThOpts);
  }
};

void expectSameRun(const RunResult &S, const RunResult &T,
                   const std::string &What) {
  EXPECT_EQ(S.Ok, T.Ok) << What;
  EXPECT_EQ(S.Error, T.Error) << What;
  EXPECT_EQ(S.TrapInfo.Kind, T.TrapInfo.Kind) << What;
  EXPECT_EQ(S.TrapInfo.PC, T.TrapInfo.PC) << What;
  EXPECT_EQ(S.TrapInfo.Function, T.TrapInfo.Function) << What;
  EXPECT_EQ(S.TrapInfo.Detail, T.TrapInfo.Detail) << What;
  EXPECT_EQ(S.ReturnValue, T.ReturnValue) << What;
  EXPECT_EQ(S.Stats.Cycles, T.Stats.Cycles) << What;
  EXPECT_EQ(S.Stats.Loads, T.Stats.Loads) << What;
  EXPECT_EQ(S.Stats.Stores, T.Stats.Stores) << What;
  EXPECT_EQ(S.Stats.SpillLoads, T.Stats.SpillLoads) << What;
  EXPECT_EQ(S.Stats.SpillStores, T.Stats.SpillStores) << What;
  EXPECT_EQ(S.Stats.Copies, T.Stats.Copies) << What;
  EXPECT_EQ(S.Stats.Calls, T.Stats.Calls) << What;
  EXPECT_EQ(S.Stats.MaxCallDepth, T.Stats.MaxCallDepth) << What;
  ASSERT_EQ(S.PerFunction.size(), T.PerFunction.size()) << What;
  for (size_t I = 0; I != S.PerFunction.size(); ++I) {
    EXPECT_EQ(S.PerFunction[I].first, T.PerFunction[I].first) << What;
    EXPECT_EQ(S.PerFunction[I].second.Cycles, T.PerFunction[I].second.Cycles)
        << What << " fn " << S.PerFunction[I].first;
  }
}

/// The core property: with the pattern fused, the threaded engine is
/// observationally identical to the reference — for the unlimited run, and
/// at EVERY fuel value up to just past the full run's cost, which walks a
/// fuel boundary through every fused stretch of the program (including the
/// interior of every superinstruction).
void checkPattern(const std::string &Source, const char *Mnemonic,
                  AllocatorKind Alloc = AllocatorKind::None, unsigned K = 5) {
  EnginePair E(Source, Alloc, K);
  if (!E.Th)
    return;
  ASSERT_GT(E.Th->decodedOpCount(Mnemonic), 0u)
      << "source no longer decodes to '" << Mnemonic
      << "' — the test is not exercising its pattern:\n"
      << Source;
  EXPECT_EQ(E.Sw->decodedOpCount(Mnemonic), 0u)
      << "the switch engine must not decode";

  RunResult S = E.Sw->run("main", 500'000'000, /*CollectPerFunction=*/true);
  RunResult T = E.Th->run("main", 500'000'000, /*CollectPerFunction=*/true);
  expectSameRun(S, T, std::string("full run of ") + Mnemonic);

  const uint64_t Full = S.Stats.Cycles;
  ASSERT_LT(Full, 20000u) << "keep the fuel sweep cheap";
  for (uint64_t Fuel = 1; Fuel <= Full + 1; ++Fuel) {
    RunResult FS = E.Sw->run("main", Fuel);
    RunResult FT = E.Th->run("main", Fuel);
    expectSameRun(FS, FT,
                  std::string(Mnemonic) + " at fuel " + std::to_string(Fuel));
  }
}

// ---- pair and triple patterns ------------------------------------------

TEST(InterpSuperinstr, CmpCbr) {
  checkPattern(R"(
    int main() {
      int i = 0; int n = 9; int s = 0;
      while (i < n) { s = s + 2; i = i + 1; }
      return s;
    }
  )",
               "cmp_lt_cbr");
}

TEST(InterpSuperinstr, LoadICmpCbr) {
  checkPattern(R"(
    int main() {
      int i = 0; int s = 0;
      while (i < 9) { s = s + i; i = i + 1; }
      return s;
    }
  )",
               "loadi_cmp_lt_cbr");
}

TEST(InterpSuperinstr, LoadIOp) {
  checkPattern("int main() { int x = 3; int y = x * 7; return y + x; }",
               "loadi_mul");
}

TEST(InterpSuperinstr, LoadIDivByZeroTrapsMidPair) {
  // The div component of a fused loadI+div traps; kind, PC, and message
  // must name the div, not the pair. (The add keeps the greedy fuser from
  // stealing an earlier loadI into a different pair.)
  checkPattern(R"(
    int main() {
      int q = 7;
      int z = q + q;
      return z / 0;
    }
  )",
               "loadi_div");
}

TEST(InterpSuperinstr, SpillTriple) {
  // k=3 under RAP forces spills in a function with many simultaneously
  // live values; the allocator's ldm/op/stm shape fuses to a triple.
  checkPattern(R"(
    int main() {
      int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
      int f = 6; int g = 7; int h = 8;
      int s = a + b + c + d + e + f + g + h;
      int t = a * b + c * d + e * f + g * h;
      int u = (a + h) * (b + g) + (c + f) * (d + e);
      return s + t + u;
    }
  )",
               "ld_add_st", AllocatorKind::Rap, 3);
}

// ---- memory pairs -------------------------------------------------------

TEST(InterpSuperinstr, LdIdxLdIdx) {
  checkPattern(R"(
    int a[8];
    int main() {
      int i = 0;
      while (i < 8) { a[i] = i * 3; i = i + 1; }
      int j = 2; int k = 5;
      return a[j] + a[k];
    }
  )",
               "ldx_ldx");
}

TEST(InterpSuperinstr, LdIdxStIdxSwap) {
  checkPattern(R"(
    int a[6];
    int main() {
      int i = 0;
      while (i < 6) { a[i] = i + 10; i = i + 1; }
      int j = 1; int k = 4;
      int t = a[j];
      a[j] = a[k];
      a[k] = t;
      return a[1] * 100 + a[4];
    }
  )",
               "ldx_stx");
}

TEST(InterpSuperinstr, StIdxStIdx) {
  checkPattern(R"(
    int a[6];
    int main() {
      int i = 2; int j = 3; int x = 40; int y = 50;
      a[i] = x;
      a[j] = y;
      return a[2] + a[3];
    }
  )",
               "stx_stx");
}

TEST(InterpSuperinstr, StIdxStIdxSecondStoreTraps) {
  // First store commits, second traps: global memory and the trap must
  // match the reference exactly (the fused handler may not reorder).
  checkPattern(R"(
    int a[4];
    int main() {
      int i = 1; int j = 9; int x = 7; int y = 8;
      a[i] = x;
      a[j] = y;
      return 0;
    }
  )",
               "stx_stx");
}

// ---- chains -------------------------------------------------------------

TEST(InterpSuperinstr, LoadIAddMvJmpLatch) {
  checkPattern(R"(
    int main() {
      int s = 0; int i = 0;
      while (i < 12) { s = s + i; i = i + 1; }
      return s;
    }
  )",
               "loadi_add_mv_jmp");
}

TEST(InterpSuperinstr, MulAddLdIdx) {
  // The indexing expression sits at the top of the loop body, so the mul
  // opens its stretch and nothing earlier can steal it into a pair.
  checkPattern(R"(
    int a[16];
    int main() {
      int n = 4;
      int i = 2; int c = 3;
      int s = 0;
      int k = 0;
      while (k < 2) {
        s = s + a[i * n + c];
        k = k + 1;
      }
      return s;
    }
  )",
               "mul_add_ldx");
}

TEST(InterpSuperinstr, MulAddLdIdxTrapsAtChainEnd) {
  // Same shape, but the array is too small: the chain's load component is
  // out of bounds, and the trap PC is the ldx's own linear position (two
  // past the chain head).
  checkPattern(R"(
    int a[4];
    int main() {
      int n = 4;
      int i = 2; int c = 3;
      int s = 0;
      int k = 0;
      while (k < 2) {
        s = s + a[i * n + c];
        k = k + 1;
      }
      return s;
    }
  )",
               "mul_add_ldx");
}

TEST(InterpSuperinstr, GlobalIncrementChain) {
  checkPattern(R"(
    int g;
    int main() {
      g = 3;
      g = g + 5;
      g = g + 5;
      return g;
    }
  )",
               "ldg_loadi_add_stg");
}

TEST(InterpSuperinstr, GlobalCompareChain) {
  checkPattern(R"(
    int g;
    int main() {
      g = 0;
      int s = 0;
      int n = 7;
      while (g < n) { s = s + g; g = g + 1; }
      return s;
    }
  )",
               "ldg_cmp_lt_cbr");
}

// ---- decode-level invariants -------------------------------------------

TEST(InterpSuperinstr, FusionTelemetryIsConsistent) {
  EnginePair E(R"(
    int a[8];
    int main() {
      int s = 0; int i = 0;
      while (i < 8) { a[i] = i * 2; s = s + a[i]; i = i + 1; }
      return s;
    }
  )");
  ASSERT_TRUE(E.Th);
  EXPECT_GT(E.Th->fusedPairs(), 0u);
  // The switch engine never decodes, so its telemetry is all zero.
  EXPECT_EQ(E.Sw->fusedPairs(), 0u);
  EXPECT_EQ(E.Sw->fusedCmpCbr(), 0u);
  EXPECT_EQ(E.Sw->decodeBytes(), 0u);
  EXPECT_GT(E.Th->decodeBytes(), 0u);
}

TEST(InterpSuperinstr, BranchTargetBlocksFusion) {
  // The loop header is a label target between the compare and the add that
  // would otherwise be fusible with it; the decoded program must still have
  // an op starting exactly at every label target (fusion never swallows
  // one), which the correct looping behavior demonstrates.
  EnginePair E(R"(
    int main() {
      int i = 0;
      int s = 1;
      while (i < 20) {
        s = s + s;
        if (s > 100) { s = s - 100; }
        i = i + 1;
      }
      return s;
    }
  )");
  ASSERT_TRUE(E.Th);
  RunResult S = E.Sw->run();
  RunResult T = E.Th->run();
  expectSameRun(S, T, "label-dense loop");
}

} // namespace
