//===- tests/pipeline_smoke_test.cpp - End-to-end smoke test ---------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interpreter.h"

using namespace rap;
using rap::test::compile;

TEST(PipelineSmoke, ArithmeticAndLoops) {
  auto Prog = compile(R"(
    int main() {
      int sum = 0;
      int i = 1;
      while (i <= 10) {
        sum = sum + i;
        i = i + 1;
      }
      return sum;
    }
  )");
  ASSERT_NE(Prog, nullptr);
  Interpreter Interp(*Prog);
  RunResult R = Interp.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.asInt(), 55);
  EXPECT_GT(R.Stats.Cycles, 0u);
}

TEST(PipelineSmoke, RecursionAndGlobals) {
  auto Prog = compile(R"(
    int depth;
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() {
      depth = fib(10);
      return depth;
    }
  )");
  ASSERT_NE(Prog, nullptr);
  Interpreter Interp(*Prog);
  RunResult R = Interp.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.asInt(), 55);
  EXPECT_GT(R.Stats.Calls, 100u);
}

TEST(PipelineSmoke, FloatsArraysAndFor) {
  auto Prog = compile(R"(
    float a[10];
    float b[10];
    int main() {
      for (int i = 0; i < 10; i = i + 1) {
        a[i] = i * 1.5;
        b[i] = 2.0;
      }
      float dot = 0.0;
      for (int i = 0; i < 10; i = i + 1) {
        dot = dot + a[i] * b[i];
      }
      return dot;  /* implicit f2i: 1.5 * (0+..+9) * 2 = 135 */
    }
  )");
  ASSERT_NE(Prog, nullptr);
  Interpreter Interp(*Prog);
  RunResult R = Interp.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.asInt(), 135);
  EXPECT_GT(R.Stats.Loads, 0u);
  EXPECT_GT(R.Stats.Stores, 0u);
}
