//===- tests/interference_test.cpp - InterferenceGraph + coloring ------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coloring.h"
#include "regalloc/InterferenceGraph.h"

#include "gtest/gtest.h"

using namespace rap;

namespace {

TEST(InterferenceGraph, NodesAndEdges) {
  InterferenceGraph G;
  unsigned A = G.getOrCreateNode(1);
  unsigned B = G.getOrCreateNode(2);
  EXPECT_EQ(G.getOrCreateNode(1), A) << "idempotent";
  EXPECT_FALSE(G.interfere(A, B));
  G.addEdge(1, 2);
  EXPECT_TRUE(G.interfere(A, B));
  G.addEdge(1, 2); // duplicate edges collapse
  EXPECT_EQ(G.adjacency(A).size(), 1u);
  EXPECT_EQ(G.numAliveNodes(), 2u);
}

TEST(InterferenceGraph, SelfEdgeIsNoop) {
  InterferenceGraph G;
  G.getOrCreateNode(1);
  G.addEdge(1, 1);
  EXPECT_EQ(G.adjacency(0).size(), 0u);
}

TEST(InterferenceGraph, MergeUnionsMembersAndEdges) {
  InterferenceGraph G;
  unsigned A = G.getOrCreateNode(1);
  unsigned B = G.getOrCreateNode(2);
  unsigned C = G.getOrCreateNode(3);
  G.addEdgeNodes(A, C);
  unsigned M = G.mergeNodes(A, B);
  EXPECT_EQ(M, A);
  EXPECT_FALSE(G.node(B).Alive);
  EXPECT_EQ(G.node(A).VRegs, (std::vector<Reg>{1, 2}));
  EXPECT_EQ(G.nodeOf(2), static_cast<int>(A));
  EXPECT_TRUE(G.interfere(A, C));
  EXPECT_EQ(G.numAliveNodes(), 2u);
}

TEST(InterferenceGraph, RenameKeepsNodeIdentity) {
  InterferenceGraph G;
  unsigned A = G.getOrCreateNode(5);
  G.renameReg(5, 9);
  EXPECT_EQ(G.nodeOf(9), static_cast<int>(A));
  EXPECT_EQ(G.nodeOf(5), -1);
  G.renameReg(42, 43); // absent: no-op
  EXPECT_EQ(G.nodeOf(43), -1);
}

TEST(InterferenceGraph, EffectiveDegreeCountsGlobalPairs) {
  // Paper Figure 5: two global nodes with no edge still raise each other's
  // degree.
  InterferenceGraph G;
  unsigned A = G.getOrCreateNode(1);
  unsigned B = G.getOrCreateNode(2);
  unsigned C = G.getOrCreateNode(3);
  G.addEdgeNodes(A, C);
  G.node(A).Global = true;
  G.node(B).Global = true;
  EXPECT_EQ(G.effectiveDegree(A), 2u) << "edge to C plus global pair with B";
  EXPECT_EQ(G.effectiveDegree(B), 1u) << "global pair with A only";
  EXPECT_EQ(G.effectiveDegree(C), 1u) << "locals see only real edges";
}

TEST(InterferenceGraph, CombineByColorGroupsAndConnects) {
  InterferenceGraph G;
  unsigned A = G.getOrCreateNode(1);
  unsigned B = G.getOrCreateNode(2);
  [[maybe_unused]] unsigned C = G.getOrCreateNode(3);
  G.addEdgeNodes(A, B);
  G.addEdgeNodes(B, C);
  G.node(A).Color = 0;
  G.node(B).Color = 1;
  G.node(C).Color = 0; // A and C share a color and no edge
  InterferenceGraph Combined = G.combinedByColor();
  EXPECT_EQ(Combined.numAliveNodes(), 2u);
  int N0 = Combined.nodeOf(1);
  EXPECT_EQ(Combined.nodeOf(3), N0) << "same color, same node";
  int N1 = Combined.nodeOf(2);
  ASSERT_GE(N0, 0);
  ASSERT_GE(N1, 0);
  EXPECT_TRUE(Combined.interfere(static_cast<unsigned>(N0),
                                 static_cast<unsigned>(N1)));
}

//===----------------------------------------------------------------------===//
// Coloring
//===----------------------------------------------------------------------===//

TEST(Coloring, TriangleNeedsThreeColors) {
  InterferenceGraph G;
  for (Reg R = 1; R <= 3; ++R)
    G.getOrCreateNode(R);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(1, 3);
  ColorResult R2 = colorGraph(G, 2);
  EXPECT_EQ(R2.SpillList.size(), 1u);
  ColorResult R3 = colorGraph(G, 3);
  EXPECT_TRUE(R3.fullyColored());
  std::set<int> Colors;
  for (unsigned N : G.aliveNodes())
    Colors.insert(G.node(N).Color);
  EXPECT_EQ(Colors.size(), 3u);
}

TEST(Coloring, BriggsOptimismColorsTheDiamond) {
  // The classic example: a 4-cycle (diamond) is 2-colorable, but every node
  // has degree 2, so Chaitin's pessimistic rule (spill when no node has
  // degree < k) would spill at k=2. Briggs' deferred spilling colors it
  // (paper §3.1.3 adopts exactly this enhancement).
  InterferenceGraph G;
  for (Reg R = 1; R <= 4; ++R)
    G.getOrCreateNode(R);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 4);
  G.addEdge(4, 1);
  for (unsigned N : G.aliveNodes())
    G.node(N).SpillCost = 1.0;
  ColorResult R = colorGraph(G, 2);
  EXPECT_TRUE(R.fullyColored()) << "optimistic coloring succeeds on C4";
  EXPECT_NE(G.colorOf(1), G.colorOf(2));
  EXPECT_NE(G.colorOf(3), G.colorOf(4));
}

TEST(Coloring, FirstFitPrefersLowColors) {
  InterferenceGraph G;
  G.getOrCreateNode(1);
  G.getOrCreateNode(2);
  // No edges: both can share color 0 (the copy-elimination mechanism the
  // paper credits for RAP's wins, §4).
  colorGraph(G, 4);
  EXPECT_EQ(G.colorOf(1), 0);
  EXPECT_EQ(G.colorOf(2), 0);
}

TEST(Coloring, GlobalsNeverShareEvenWithoutEdges) {
  InterferenceGraph G;
  unsigned A = G.getOrCreateNode(1);
  unsigned B = G.getOrCreateNode(2);
  [[maybe_unused]] unsigned C = G.getOrCreateNode(3);
  G.node(A).Global = true;
  G.node(B).Global = true;
  // C is local: it may share with a global.
  ColorResult R = colorGraph(G, 2);
  EXPECT_TRUE(R.fullyColored());
  EXPECT_NE(G.colorOf(1), G.colorOf(2))
      << "paper §3.1.3: global-global exclusion";
  EXPECT_EQ(G.colorOf(3), 0) << "locals use first fit freely";
}

TEST(Coloring, SpillPicksCheapestWhenBlocked) {
  // K4 at k=3: one node must go; it should be the cheapest.
  InterferenceGraph G;
  for (Reg R = 1; R <= 4; ++R)
    G.getOrCreateNode(R);
  for (Reg A = 1; A <= 4; ++A)
    for (Reg B = static_cast<Reg>(A + 1); B <= 4; ++B)
      G.addEdge(A, B);
  G.node(0).SpillCost = 10;
  G.node(1).SpillCost = 0.5; // cheapest
  G.node(2).SpillCost = 10;
  G.node(3).SpillCost = 10;
  ColorResult R = colorGraph(G, 3);
  ASSERT_EQ(R.SpillList.size(), 1u);
  EXPECT_EQ(G.node(R.SpillList[0]).VRegs.front(), 2u)
      << "vreg 2 (node 1) has the least spill cost";
}

TEST(Coloring, EmptyGraphColorsTrivially) {
  InterferenceGraph G;
  ColorResult R = colorGraph(G, 3);
  EXPECT_TRUE(R.fullyColored());
}

} // namespace
