//===- tests/interp_differential_test.cpp - Threaded vs switch engines ----===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential testing of the two interpreter engines (DESIGN.md §11): over
/// the fuzz corpus — generator seeds plus AST-level mutants of them — the
/// pre-decoded threaded engine must be observationally identical to the
/// reference switch engine. "Observationally identical" is the full
/// RunResult: success flag, error text, every trap field, return value, all
/// eight ExecStats counters, the per-function breakdown, and global memory
/// afterwards. Fuel is swept across values that land inside basic-block
/// stretches and fused superinstructions, where the threaded engine's bulk
/// cycle charging and mid-flight bail-out to the switch engine have to
/// reproduce per-instruction accounting exactly.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"
#include "fuzz/RandomProgram.h"

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"

#include "gtest/gtest.h"

#include <memory>
#include <string>
#include <vector>

using namespace rap;

namespace {

void expectSameRun(const RunResult &S, const RunResult &T,
                   const std::string &What) {
  EXPECT_EQ(S.Ok, T.Ok) << What;
  EXPECT_EQ(S.Error, T.Error) << What;
  EXPECT_EQ(S.TrapInfo.Kind, T.TrapInfo.Kind) << What;
  EXPECT_EQ(S.TrapInfo.PC, T.TrapInfo.PC) << What;
  EXPECT_EQ(S.TrapInfo.Function, T.TrapInfo.Function) << What;
  EXPECT_EQ(S.TrapInfo.Detail, T.TrapInfo.Detail) << What;
  EXPECT_EQ(S.ReturnValue, T.ReturnValue) << What;
  EXPECT_EQ(S.Stats.Cycles, T.Stats.Cycles) << What;
  EXPECT_EQ(S.Stats.Loads, T.Stats.Loads) << What;
  EXPECT_EQ(S.Stats.Stores, T.Stats.Stores) << What;
  EXPECT_EQ(S.Stats.SpillLoads, T.Stats.SpillLoads) << What;
  EXPECT_EQ(S.Stats.SpillStores, T.Stats.SpillStores) << What;
  EXPECT_EQ(S.Stats.Copies, T.Stats.Copies) << What;
  EXPECT_EQ(S.Stats.Calls, T.Stats.Calls) << What;
  EXPECT_EQ(S.Stats.MaxCallDepth, T.Stats.MaxCallDepth) << What;
  ASSERT_EQ(S.PerFunction.size(), T.PerFunction.size()) << What;
  for (size_t I = 0; I != S.PerFunction.size(); ++I) {
    EXPECT_EQ(S.PerFunction[I].first, T.PerFunction[I].first) << What;
    const ExecStats &A = S.PerFunction[I].second;
    const ExecStats &B = T.PerFunction[I].second;
    EXPECT_EQ(A.Cycles, B.Cycles) << What << " fn " << S.PerFunction[I].first;
    EXPECT_EQ(A.Loads, B.Loads) << What << " fn " << S.PerFunction[I].first;
    EXPECT_EQ(A.Stores, B.Stores) << What << " fn " << S.PerFunction[I].first;
    EXPECT_EQ(A.Copies, B.Copies) << What << " fn " << S.PerFunction[I].first;
    EXPECT_EQ(A.Calls, B.Calls) << What << " fn " << S.PerFunction[I].first;
  }
}

/// Runs both engines over one compiled program at an unlimited budget plus
/// a sweep of fuel values chosen to land inside stretches, and compares the
/// complete observable behavior including post-run global memory.
void diffProgram(const IlocProgram &Prog, const std::string &What) {
  InterpOptions SwOpts, ThOpts;
  SwOpts.Dispatch = DispatchKind::Switch;
  ThOpts.Dispatch = DispatchKind::Threaded;
  Interpreter Sw(Prog, SwOpts);
  Interpreter Th(Prog, ThOpts);

  const uint64_t Budget = 2'000'000; // generous; traps compare equal too
  RunResult S = Sw.run("main", Budget, /*CollectPerFunction=*/true);
  RunResult T = Th.run("main", Budget, /*CollectPerFunction=*/true);
  expectSameRun(S, T, What + " (full)");
  EXPECT_EQ(Sw.globalMemory().size(), Th.globalMemory().size()) << What;
  for (size_t I = 0; I != Sw.globalMemory().size(); ++I)
    EXPECT_EQ(Sw.globalMemory()[I], Th.globalMemory()[I])
        << What << " global cell " << I;

  // Fuel sweep: absolute low values walk budget expiry through the entry
  // block's first stretches; values pinned just around the run's true cost
  // walk it through the last ones. Mid-run values land wherever the program
  // spends its time. Every value must stop at the identical instruction
  // with identical partial counters.
  const uint64_t Full = S.Stats.Cycles;
  std::vector<uint64_t> Fuels = {1, 2, 3, 5, 9, 17};
  for (uint64_t F : {Full / 7, Full / 3, Full / 2, (Full * 3) / 4})
    Fuels.push_back(F);
  for (uint64_t D = 0; D != 4 && D < Full; ++D)
    Fuels.push_back(Full - D);
  Fuels.push_back(Full + 1);
  for (uint64_t Fuel : Fuels) {
    if (Fuel == 0 || Fuel > Budget)
      continue;
    RunResult FS = Sw.run("main", Fuel);
    RunResult FT = Th.run("main", Fuel);
    expectSameRun(FS, FT, What + " fuel=" + std::to_string(Fuel));
  }
}

class InterpDifferential : public ::testing::TestWithParam<unsigned> {};

/// Generator seeds, unallocated and under both allocators: the three IR
/// shapes the engines actually see (virtual registers, GRA's assignment,
/// RAP's assignment with spill code).
TEST_P(InterpDifferential, SeedProgramsMatch) {
  unsigned Seed = GetParam();
  std::string Source = fuzz::RandomProgramBuilder(Seed).build();

  struct Config {
    AllocatorKind Kind;
    unsigned K;
    const char *Name;
  };
  const Config Configs[] = {
      {AllocatorKind::None, 5, "none"},
      {AllocatorKind::Gra, 4, "gra/k4"},
      {AllocatorKind::Rap, 3, "rap/k3"},
  };
  for (const Config &C : Configs) {
    CompileOptions Opts;
    Opts.Allocator = C.Kind;
    Opts.Alloc.K = C.K;
    CompileResult CR = compileMiniC(Source, Opts);
    ASSERT_TRUE(CR.ok()) << "seed " << Seed << " " << C.Name << ": "
                         << CR.Errors;
    diffProgram(*CR.Prog,
                "seed " + std::to_string(Seed) + " " + C.Name);
  }
}

/// AST-level mutants of the seed programs: still-parseable but semantically
/// warped variants that reach traps (division by zero, out-of-bounds,
/// runaway loops) far more often than the generator's well-behaved output.
/// Mutants that no longer compile are skipped — compile-time behavior is
/// the frontend suite's concern, not the engines'.
TEST_P(InterpDifferential, MutantProgramsMatch) {
  unsigned Seed = GetParam();
  std::string Base = fuzz::RandomProgramBuilder(Seed).build();

  unsigned Compiled = 0;
  for (uint32_t MSeed = 0; MSeed != 6; ++MSeed) {
    std::string Mutant =
        fuzz::mutate(Base, fuzz::MutationLevel::Ast, Seed * 97 + MSeed);
    CompileOptions Opts;
    if (MSeed % 2) {
      Opts.Allocator = AllocatorKind::Rap;
      Opts.Alloc.K = 4;
    }
    CompileResult CR = compileMiniC(Mutant, Opts);
    if (!CR.ok())
      continue;
    ++Compiled;
    diffProgram(*CR.Prog, "seed " + std::to_string(Seed) + " mutant " +
                              std::to_string(MSeed));
  }
  // The AST mutator keeps sources parseable, so most mutants compile; if
  // none did, the test silently stopped testing engines.
  EXPECT_GT(Compiled, 0u) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpDifferential, ::testing::Range(0u, 25u));

} // namespace
