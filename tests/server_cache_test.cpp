//===- tests/server_cache_test.cpp - Allocation-cache correctness -----------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile server's core promise, tested through CompileService:
///
///  * a warm (fully cached) response is bit-identical to the cold compile —
///    function text, output hash, allocation ledger, and interpreted
///    execution all match;
///  * editing one function in a multi-function module re-allocates exactly
///    that function, and the edited module's warm output is bit-identical
///    to a from-scratch cold compile of the same source;
///  * a small --cache-bytes budget evicts LRU entries (and a zero budget
///    disables caching) without changing any compiled output;
///  * the whole request sequence produces byte-identical results at shard
///    count 1 and 4 — the determinism acceptance criterion.
///
//===----------------------------------------------------------------------===//

#include "server/CompileService.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace rap;
using namespace rap::server;

namespace {

/// A module of pressure-heavy functions; \p Versions[i] is spliced into
/// work<i>'s body as a literal, so bumping it models a source edit that
/// changes exactly that function's lowered ILOC.
std::string moduleSource(const std::vector<unsigned> &Versions) {
  std::string S;
  for (unsigned I = 0; I != Versions.size(); ++I) {
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf),
                  "int work%u(int n) {\n"
                  "  int a = n + %u;\n"
                  "  int b = a * 3 + %u;\n"
                  "  int c = a - b + 7;\n"
                  "  int d = a * b %% 997;\n"
                  "  for (int i = 0; i < n; i = i + 1) {\n"
                  "    a = a + b * i %% 613;\n"
                  "    b = b + c - i;\n"
                  "    c = c + d %% 409;\n"
                  "    d = d + a - b;\n"
                  "  }\n"
                  "  return a + b + c + d;\n"
                  "}\n",
                  I, Versions[I] * 7 + I, Versions[I] * 13 + 5);
    S += Buf;
  }
  S += "int main() {\n  int acc = 0;\n";
  for (unsigned I = 0; I != Versions.size(); ++I) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "  acc = acc + work%u(9);\n", I);
    S += Buf;
  }
  S += "  return acc;\n}\n";
  return S;
}

std::string programText(const IlocProgram &Prog) {
  std::string Text;
  for (const auto &F : Prog.functions())
    Text += F->str();
  return Text;
}

RequestOptions rapOptions(bool Run = false) {
  RequestOptions O;
  O.Allocator = AllocatorKind::Rap;
  O.K = 3;
  O.Run = Run;
  return O;
}

void expectSameExecution(const RunResult &A, const RunResult &B) {
  ASSERT_TRUE(A.Ok);
  ASSERT_TRUE(B.Ok);
  EXPECT_EQ(A.ReturnValue.asInt(), B.ReturnValue.asInt());
  EXPECT_EQ(A.Stats.Cycles, B.Stats.Cycles);
  EXPECT_EQ(A.Stats.Loads, B.Stats.Loads);
  EXPECT_EQ(A.Stats.SpillLoads, B.Stats.SpillLoads);
  EXPECT_EQ(A.Stats.Stores, B.Stats.Stores);
  EXPECT_EQ(A.Stats.SpillStores, B.Stats.SpillStores);
  EXPECT_EQ(A.Stats.Copies, B.Stats.Copies);
  EXPECT_EQ(A.Stats.Calls, B.Stats.Calls);
}

TEST(ServerCache, WarmReplayIsByteIdenticalToCold) {
  ServiceConfig Config;
  Config.Shards = 2;
  CompileService Service(Config);
  std::string Src = moduleSource({0, 0, 0});

  ServiceResult Cold = Service.compile(Src, rapOptions(/*Run=*/true));
  ASSERT_TRUE(Cold.Ok) << Cold.Errors;
  EXPECT_EQ(Cold.CacheHits, 0u);
  EXPECT_EQ(Cold.CacheMisses, 4u); // work0..2 + main

  ServiceResult Warm = Service.compile(Src, rapOptions(/*Run=*/true));
  ASSERT_TRUE(Warm.Ok) << Warm.Errors;
  EXPECT_EQ(Warm.CacheHits, 4u);
  EXPECT_EQ(Warm.CacheMisses, 0u);

  // Bit-identity: the text the backend would consume, the hash the
  // protocol transmits, the ledger, and the interpreted execution.
  EXPECT_EQ(programText(*Warm.Prog), programText(*Cold.Prog));
  EXPECT_EQ(Warm.OutputHash, Cold.OutputHash);
  EXPECT_TRUE(Warm.Alloc.structuralEq(Cold.Alloc));
  expectSameExecution(Warm.Exec, Cold.Exec);
  ASSERT_EQ(Warm.Functions.size(), Cold.Functions.size());
  for (size_t I = 0; I != Warm.Functions.size(); ++I) {
    EXPECT_EQ(Warm.Functions[I].Fingerprint, Cold.Functions[I].Fingerprint);
    EXPECT_EQ(Warm.Functions[I].Status, Cold.Functions[I].Status);
  }
}

TEST(ServerCache, EditReallocatesExactlyTheEditedFunction) {
  ServiceConfig Config;
  Config.Shards = 2;
  CompileService Service(Config);

  ServiceResult Base =
      Service.compile(moduleSource({0, 0, 0, 0}), rapOptions(/*Run=*/true));
  ASSERT_TRUE(Base.Ok) << Base.Errors;

  // Edit work2 only: one miss (work2 itself), every other function —
  // including main, whose call operands name callee *indices*, not text —
  // replays from the cache.
  std::string Edited = moduleSource({0, 0, 1, 0});
  ServiceResult Warm = Service.compile(Edited, rapOptions(/*Run=*/true));
  ASSERT_TRUE(Warm.Ok) << Warm.Errors;
  EXPECT_EQ(Warm.CacheMisses, 1u);
  EXPECT_EQ(Warm.CacheHits, 4u);
  for (const FunctionReport &F : Warm.Functions)
    EXPECT_EQ(F.CacheHit, F.Name != "work2") << F.Name;

  // The warm compile of the edited module must be bit-identical to a cold
  // compile of the same source on a fresh service.
  ServiceConfig FreshConfig;
  FreshConfig.Shards = 2;
  FreshConfig.CacheBytes = 0; // caching off: the pure cold path
  CompileService Fresh(FreshConfig);
  ServiceResult Cold = Fresh.compile(Edited, rapOptions(/*Run=*/true));
  ASSERT_TRUE(Cold.Ok) << Cold.Errors;
  EXPECT_EQ(programText(*Warm.Prog), programText(*Cold.Prog));
  EXPECT_EQ(Warm.OutputHash, Cold.OutputHash);
  EXPECT_TRUE(Warm.Alloc.structuralEq(Cold.Alloc));
  expectSameExecution(Warm.Exec, Cold.Exec);

  // And the edit must actually have changed the output.
  EXPECT_NE(Warm.OutputHash, Base.OutputHash);
}

TEST(ServerCache, ZeroBudgetDisablesCaching) {
  ServiceConfig Config;
  Config.Shards = 2;
  Config.CacheBytes = 0;
  CompileService Service(Config);
  std::string Src = moduleSource({0, 0});

  ServiceResult First = Service.compile(Src, rapOptions());
  ServiceResult Second = Service.compile(Src, rapOptions());
  ASSERT_TRUE(First.Ok && Second.Ok);
  EXPECT_EQ(Second.CacheHits, 0u);
  EXPECT_EQ(Second.CacheMisses, 3u);
  // Caching off still compiles identically.
  EXPECT_EQ(Second.OutputHash, First.OutputHash);
}

TEST(ServerCache, TinyBudgetEvictsLruWithoutChangingOutput) {
  ServiceConfig Config;
  Config.Shards = 1;
  // Room for roughly one module's entries (work body ~5.8k + main ~0.5k by
  // estimateFunctionBytes): inserting a second module must evict the first
  // module's LRU entries to get back under budget.
  Config.CacheBytes = 7000;
  CompileService Service(Config);

  std::string A = moduleSource({0});
  std::string B = moduleSource({9});
  ServiceResult ColdA = Service.compile(A, rapOptions());
  ASSERT_TRUE(ColdA.Ok);
  ServiceResult ColdB = Service.compile(B, rapOptions());
  ASSERT_TRUE(ColdB.Ok);
  EXPECT_GT(Service.counters().CacheEvictions, 0u);
  EXPECT_LE(Service.counters().CacheBytes, 7000u);

  // A's entries were evicted, so recompiling A misses again — but the
  // output is still bit-identical to its first compile.
  ServiceResult AgainA = Service.compile(A, rapOptions());
  ASSERT_TRUE(AgainA.Ok);
  EXPECT_GT(AgainA.CacheMisses, 0u);
  EXPECT_EQ(AgainA.OutputHash, ColdA.OutputHash);
  EXPECT_EQ(programText(*AgainA.Prog), programText(*ColdA.Prog));
}

TEST(ServerCache, RequestSequenceIsDeterministicAcrossShardCounts) {
  // The acceptance criterion: an identical request sequence — including
  // the hit/miss classification, which depends on cache state evolving
  // identically — produces byte-identical responses at any shard count.
  std::vector<std::string> Sequence = {
      moduleSource({0, 0, 0, 0, 0}), moduleSource({0, 1, 0, 0, 0}),
      moduleSource({0, 1, 0, 2, 0}), moduleSource({0, 1, 0, 0, 0}),
      moduleSource({3, 1, 0, 0, 4}),
  };

  auto Replay = [&](unsigned Shards) {
    ServiceConfig Config;
    Config.Shards = Shards;
    CompileService Service(Config);
    struct Snapshot {
      std::string Text;
      uint64_t Hash;
      unsigned Hits, Misses;
      std::vector<bool> Cached;
    };
    std::vector<Snapshot> Out;
    for (const std::string &Src : Sequence) {
      ServiceResult R = Service.compile(Src, rapOptions());
      EXPECT_TRUE(R.Ok) << R.Errors;
      Snapshot S;
      S.Text = programText(*R.Prog);
      S.Hash = R.OutputHash;
      S.Hits = R.CacheHits;
      S.Misses = R.CacheMisses;
      for (const FunctionReport &F : R.Functions)
        S.Cached.push_back(F.CacheHit);
      Out.push_back(std::move(S));
    }
    return Out;
  };

  auto One = Replay(1);
  auto Four = Replay(4);
  ASSERT_EQ(One.size(), Four.size());
  for (size_t I = 0; I != One.size(); ++I) {
    EXPECT_EQ(One[I].Text, Four[I].Text) << "request " << I;
    EXPECT_EQ(One[I].Hash, Four[I].Hash) << "request " << I;
    EXPECT_EQ(One[I].Hits, Four[I].Hits) << "request " << I;
    EXPECT_EQ(One[I].Misses, Four[I].Misses) << "request " << I;
    EXPECT_EQ(One[I].Cached, Four[I].Cached) << "request " << I;
  }
}

TEST(ServerCache, DifferentOptionsDoNotShareEntries) {
  ServiceConfig Config;
  Config.Shards = 1;
  CompileService Service(Config);
  std::string Src = moduleSource({0});

  RequestOptions K3 = rapOptions();
  RequestOptions K5 = rapOptions();
  K5.K = 5;
  ServiceResult A = Service.compile(Src, K3);
  ServiceResult B = Service.compile(Src, K5);
  ASSERT_TRUE(A.Ok && B.Ok);
  // Same source under different k must miss (different fingerprints), and
  // a GRA request never replays a RAP entry.
  EXPECT_EQ(B.CacheHits, 0u);
  RequestOptions Gra = rapOptions();
  Gra.Allocator = AllocatorKind::Gra;
  ServiceResult C = Service.compile(Src, Gra);
  ASSERT_TRUE(C.Ok);
  EXPECT_EQ(C.CacheHits, 0u);
}

} // namespace
