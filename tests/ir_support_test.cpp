//===- tests/ir_support_test.cpp - IR types, printing, diagnostics ------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/IlocProgram.h"
#include "ir/Instr.h"
#include "ir/RtValue.h"
#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/SmallVector.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

using namespace rap;

namespace {

TEST(RtValue, TaggedAccess) {
  RtValue I = RtValue::makeInt(-42);
  EXPECT_FALSE(I.isFloat());
  EXPECT_EQ(I.asInt(), -42);
  EXPECT_DOUBLE_EQ(I.asNumber(), -42.0);

  RtValue F = RtValue::makeFloat(2.5);
  EXPECT_TRUE(F.isFloat());
  EXPECT_DOUBLE_EQ(F.asFloat(), 2.5);
  EXPECT_DOUBLE_EQ(F.asNumber(), 2.5);
}

TEST(RtValue, EqualityIsTagAware) {
  EXPECT_EQ(RtValue::makeInt(3), RtValue::makeInt(3));
  EXPECT_NE(RtValue::makeInt(3), RtValue::makeInt(4));
  EXPECT_NE(RtValue::makeInt(3), RtValue::makeFloat(3.0))
      << "an int 3 and a float 3.0 are distinct cells";
  EXPECT_EQ(RtValue::makeFloat(1.5), RtValue::makeFloat(1.5));
}

TEST(InstrPrinting, IlocFlavouredForms) {
  IlocFunction F("t");
  Instr *Ld = F.createInstr(Opcode::LdSpill);
  Ld->Dst = 2;
  Ld->Slot = 20;
  EXPECT_EQ(Ld->str(), "ldm %2, s20") << "the paper's Figure 6 spelling";

  Instr *St = F.createInstr(Opcode::StSpill);
  St->Slot = 20;
  St->Src = {2};
  EXPECT_EQ(St->str(), "stm s20, %2");

  Instr *Add = F.createInstr(Opcode::Add);
  Add->Dst = 3;
  Add->Src = {1, 2};
  EXPECT_EQ(Add->str(), "%3 = add %1, %2");

  Instr *Cbr = F.createInstr(Opcode::Cbr);
  Cbr->Src = {4};
  Cbr->Label0 = 1;
  Cbr->Label1 = 2;
  EXPECT_EQ(Cbr->str(), "cbr %4 -> L1, L2");

  Instr *Call = F.createInstr(Opcode::Call);
  Call->Dst = 5;
  Call->Callee = 0;
  Call->Src = {6, 7};
  EXPECT_EQ(Call->str(), "%5 = call f0(%6, %7)");

  Instr *Mv = F.createInstr(Opcode::Mv);
  Mv->Dst = 1;
  Mv->Src = {2};
  EXPECT_EQ(Mv->str(), "%1 = mv %2");
}

TEST(Opcode, ClassPredicates) {
  EXPECT_TRUE(isLoadOpcode(Opcode::LdSpill));
  EXPECT_TRUE(isLoadOpcode(Opcode::LdGlob));
  EXPECT_TRUE(isLoadOpcode(Opcode::LdIdx));
  EXPECT_FALSE(isLoadOpcode(Opcode::StSpill));
  EXPECT_TRUE(isStoreOpcode(Opcode::StIdx));
  EXPECT_FALSE(isStoreOpcode(Opcode::Add));
  EXPECT_TRUE(isBranchOpcode(Opcode::Ret));
  EXPECT_TRUE(isBranchOpcode(Opcode::Jmp));
  EXPECT_TRUE(isBranchOpcode(Opcode::Cbr));
  EXPECT_FALSE(isBranchOpcode(Opcode::Call))
      << "calls fall through within the caller's block";
}

TEST(IlocProgram, GlobalLayoutIsPacked) {
  IlocProgram P;
  // addGlobal's reference is invalidated by the next insertion; look the
  // globals up once the table is complete.
  P.addGlobal("a", 10, TypeKind::Int, true);
  P.addGlobal("s", 1, TypeKind::Float, false);
  EXPECT_EQ(P.findGlobal("a")->Addr, 0);
  EXPECT_EQ(P.findGlobal("s")->Addr, 10);
  EXPECT_EQ(P.globalMemorySize(), 11);
  EXPECT_EQ(P.findGlobal("a")->Size, 10);
  EXPECT_EQ(P.findGlobal("missing"), nullptr);
}

TEST(IlocProgram, FunctionLookupAndIds) {
  IlocProgram P;
  IlocFunction *F0 = P.createFunction("alpha");
  IlocFunction *F1 = P.createFunction("beta");
  EXPECT_EQ(P.functionId(F0), 0);
  EXPECT_EQ(P.functionId(F1), 1);
  EXPECT_EQ(P.findFunction("beta"), F1);
  EXPECT_EQ(P.findFunction("gamma"), nullptr);
}

TEST(IlocFunction, ParamRegsDefaultToIdentity) {
  IlocFunction F("t");
  F.setNumParams(3);
  EXPECT_EQ(F.paramReg(0), 0u);
  EXPECT_EQ(F.paramReg(2), 2u);
  F.setParamRegs({4, 0, 1});
  EXPECT_EQ(F.paramReg(0), 4u);
  EXPECT_EQ(F.paramReg(2), 1u);
}

TEST(Arena, AlignmentAndDistinctness) {
  Arena A;
  char *C = A.alloc<char>(3);
  uint64_t *U = A.alloc<uint64_t>(2);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(U) % alignof(uint64_t), 0u);
  U[0] = 1;
  U[1] = 2;
  C[0] = 'x';
  EXPECT_EQ(U[0], 1u) << "allocations must not overlap";
  EXPECT_EQ(A.bytesAllocated(), 3 + 2 * sizeof(uint64_t));
}

TEST(Arena, CopySurvivesSourceDeath) {
  Arena A;
  int *Copy;
  {
    std::vector<int> Src = {5, 6, 7, 8};
    Copy = A.copy(Src.data(), Src.size());
  }
  EXPECT_EQ(Copy[0], 5);
  EXPECT_EQ(Copy[3], 8);
}

TEST(Arena, GrowsAcrossChunksAndResetKeepsLargest) {
  Arena A;
  // Force several chunk growths well past the initial chunk size.
  for (int I = 0; I != 8; ++I) {
    char *P = A.alloc<char>(8192);
    P[0] = static_cast<char>(I);
    P[8191] = static_cast<char>(I);
  }
  EXPECT_EQ(A.bytesAllocated(), 8u * 8192);
  size_t Reserved = A.bytesReserved();
  EXPECT_GE(Reserved, A.bytesAllocated());

  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_LT(A.bytesReserved(), Reserved)
      << "reset keeps only the largest chunk";
  EXPECT_GT(A.bytesReserved(), 0u);

  // Steady-state reuse: an allocation fitting the kept chunk must not grow.
  size_t Kept = A.bytesReserved();
  char *P = A.alloc<char>(Kept / 2);
  P[0] = 1;
  EXPECT_EQ(A.bytesReserved(), Kept) << "reuse must not touch the heap";
}

TEST(Arena, ZeroByteAllocationIsSafe) {
  Arena A;
  void *P = A.allocate(0, 8);
  EXPECT_NE(P, nullptr);
  EXPECT_EQ(A.bytesAllocated(), 0u);
}

TEST(SmallVector, StaysInlineThenSpills) {
  SmallVector<int, 2> V;
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.capacity(), 2u);
  V.push_back(10);
  V.push_back(20);
  EXPECT_EQ(V.capacity(), 2u) << "two elements fit inline";
  V.push_back(30);
  EXPECT_GT(V.capacity(), 2u) << "third element spills to the heap";
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], 10);
  EXPECT_EQ(V[1], 20);
  EXPECT_EQ(V[2], 30);
  EXPECT_EQ(V.front(), 10);
  EXPECT_EQ(V.back(), 30);
}

TEST(SmallVector, AssignCopyMoveEquality) {
  SmallVector<int, 2> A = {1, 2, 3, 4};
  SmallVector<int, 2> B(A);
  EXPECT_EQ(A, B);
  B.push_back(5);
  EXPECT_NE(A, B);

  SmallVector<int, 2> C;
  C = A;
  EXPECT_EQ(C, A);

  std::vector<int> Std = {7, 8};
  C = Std;
  ASSERT_EQ(C.size(), 2u);
  EXPECT_EQ(C[0], 7);

  // Move steals the heap buffer and leaves the source empty and reusable.
  SmallVector<int, 2> D(std::move(A));
  ASSERT_EQ(D.size(), 4u);
  EXPECT_EQ(D[3], 4);
  EXPECT_TRUE(A.empty());
  A.push_back(99);
  EXPECT_EQ(A[0], 99);
}

TEST(SmallVector, IteratorsWorkWithStdAlgorithms) {
  SmallVector<int, 4> V = {3, 1, 2};
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V[0], 1);
  EXPECT_EQ(V[2], 3);
  int Sum = 0;
  for (int X : V)
    Sum += X;
  EXPECT_EQ(Sum, 6);
  V.pop_back();
  EXPECT_EQ(V.size(), 2u);
  V.clear();
  EXPECT_TRUE(V.empty());
}

TEST(Diagnostics, CollectsAndRenders) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc{3, 7}, "something odd");
  D.error(SourceLoc{9, 1}, "another thing");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.diagnostics().size(), 2u);
  std::string S = D.str();
  EXPECT_NE(S.find("3:7: error: something odd"), std::string::npos);
  EXPECT_NE(S.find("9:1: error: another thing"), std::string::npos);
}

} // namespace
