//===- tests/ir_support_test.cpp - IR types, printing, diagnostics ------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/IlocProgram.h"
#include "ir/Instr.h"
#include "ir/RtValue.h"
#include "support/Diagnostics.h"

#include "gtest/gtest.h"

using namespace rap;

namespace {

TEST(RtValue, TaggedAccess) {
  RtValue I = RtValue::makeInt(-42);
  EXPECT_FALSE(I.isFloat());
  EXPECT_EQ(I.asInt(), -42);
  EXPECT_DOUBLE_EQ(I.asNumber(), -42.0);

  RtValue F = RtValue::makeFloat(2.5);
  EXPECT_TRUE(F.isFloat());
  EXPECT_DOUBLE_EQ(F.asFloat(), 2.5);
  EXPECT_DOUBLE_EQ(F.asNumber(), 2.5);
}

TEST(RtValue, EqualityIsTagAware) {
  EXPECT_EQ(RtValue::makeInt(3), RtValue::makeInt(3));
  EXPECT_NE(RtValue::makeInt(3), RtValue::makeInt(4));
  EXPECT_NE(RtValue::makeInt(3), RtValue::makeFloat(3.0))
      << "an int 3 and a float 3.0 are distinct cells";
  EXPECT_EQ(RtValue::makeFloat(1.5), RtValue::makeFloat(1.5));
}

TEST(InstrPrinting, IlocFlavouredForms) {
  IlocFunction F("t");
  Instr *Ld = F.createInstr(Opcode::LdSpill);
  Ld->Dst = 2;
  Ld->Slot = 20;
  EXPECT_EQ(Ld->str(), "ldm %2, s20") << "the paper's Figure 6 spelling";

  Instr *St = F.createInstr(Opcode::StSpill);
  St->Slot = 20;
  St->Src = {2};
  EXPECT_EQ(St->str(), "stm s20, %2");

  Instr *Add = F.createInstr(Opcode::Add);
  Add->Dst = 3;
  Add->Src = {1, 2};
  EXPECT_EQ(Add->str(), "%3 = add %1, %2");

  Instr *Cbr = F.createInstr(Opcode::Cbr);
  Cbr->Src = {4};
  Cbr->Label0 = 1;
  Cbr->Label1 = 2;
  EXPECT_EQ(Cbr->str(), "cbr %4 -> L1, L2");

  Instr *Call = F.createInstr(Opcode::Call);
  Call->Dst = 5;
  Call->Callee = 0;
  Call->Src = {6, 7};
  EXPECT_EQ(Call->str(), "%5 = call f0(%6, %7)");

  Instr *Mv = F.createInstr(Opcode::Mv);
  Mv->Dst = 1;
  Mv->Src = {2};
  EXPECT_EQ(Mv->str(), "%1 = mv %2");
}

TEST(Opcode, ClassPredicates) {
  EXPECT_TRUE(isLoadOpcode(Opcode::LdSpill));
  EXPECT_TRUE(isLoadOpcode(Opcode::LdGlob));
  EXPECT_TRUE(isLoadOpcode(Opcode::LdIdx));
  EXPECT_FALSE(isLoadOpcode(Opcode::StSpill));
  EXPECT_TRUE(isStoreOpcode(Opcode::StIdx));
  EXPECT_FALSE(isStoreOpcode(Opcode::Add));
  EXPECT_TRUE(isBranchOpcode(Opcode::Ret));
  EXPECT_TRUE(isBranchOpcode(Opcode::Jmp));
  EXPECT_TRUE(isBranchOpcode(Opcode::Cbr));
  EXPECT_FALSE(isBranchOpcode(Opcode::Call))
      << "calls fall through within the caller's block";
}

TEST(IlocProgram, GlobalLayoutIsPacked) {
  IlocProgram P;
  // addGlobal's reference is invalidated by the next insertion; look the
  // globals up once the table is complete.
  P.addGlobal("a", 10, TypeKind::Int, true);
  P.addGlobal("s", 1, TypeKind::Float, false);
  EXPECT_EQ(P.findGlobal("a")->Addr, 0);
  EXPECT_EQ(P.findGlobal("s")->Addr, 10);
  EXPECT_EQ(P.globalMemorySize(), 11);
  EXPECT_EQ(P.findGlobal("a")->Size, 10);
  EXPECT_EQ(P.findGlobal("missing"), nullptr);
}

TEST(IlocProgram, FunctionLookupAndIds) {
  IlocProgram P;
  IlocFunction *F0 = P.createFunction("alpha");
  IlocFunction *F1 = P.createFunction("beta");
  EXPECT_EQ(P.functionId(F0), 0);
  EXPECT_EQ(P.functionId(F1), 1);
  EXPECT_EQ(P.findFunction("beta"), F1);
  EXPECT_EQ(P.findFunction("gamma"), nullptr);
}

TEST(IlocFunction, ParamRegsDefaultToIdentity) {
  IlocFunction F("t");
  F.setNumParams(3);
  EXPECT_EQ(F.paramReg(0), 0u);
  EXPECT_EQ(F.paramReg(2), 2u);
  F.setParamRegs({4, 0, 1});
  EXPECT_EQ(F.paramReg(0), 4u);
  EXPECT_EQ(F.paramReg(2), 1u);
}

TEST(Diagnostics, CollectsAndRenders) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc{3, 7}, "something odd");
  D.error(SourceLoc{9, 1}, "another thing");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.diagnostics().size(), 2u);
  std::string S = D.str();
  EXPECT_NE(S.find("3:7: error: something odd"), std::string::npos);
  EXPECT_NE(S.find("9:1: error: another thing"), std::string::npos);
}

} // namespace
