//===- tests/fuzz_harness_test.cpp - Fuzzing infrastructure tests -------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// The fuzzer is load-bearing for the crash-free contract (DESIGN.md §10), so
// its own pieces need pinning: mutation must be deterministic (a failure is
// replayable from (seed, mutation) alone), the AST printer must emit
// reparseable source (or AST-level mutants silently degrade to token-level),
// the runner must classify the four corners correctly, and the reducer must
// actually shrink while preserving the failure signature.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fuzz/AstPrinter.h"
#include "fuzz/Mutator.h"
#include "fuzz/RandomProgram.h"
#include "fuzz/Reducer.h"
#include "fuzz/Runner.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

using namespace rap;

namespace {

//===----------------------------------------------------------------------===//
// Mutators
//===----------------------------------------------------------------------===//

const char *SeedProgram = R"(
int g[8];
int helper(int a, int b) { return a * b - a % (b + 7); }
int main() {
  int s = 0;
  for (int i = 0; i < 8; i = i + 1) {
    g[i] = helper(i, i + 2);
    s = s + g[i];
  }
  if (s > 10) { s = s - 10; } else { s = 0 - s; }
  return s;
}
)";

TEST(FuzzMutator, DeterministicInSourceAndSeed) {
  for (fuzz::MutationLevel Level :
       {fuzz::MutationLevel::Byte, fuzz::MutationLevel::Token,
        fuzz::MutationLevel::Ast}) {
    for (uint32_t Seed = 0; Seed != 20; ++Seed) {
      std::string A = fuzz::mutate(SeedProgram, Level, Seed);
      std::string B = fuzz::mutate(SeedProgram, Level, Seed);
      EXPECT_EQ(A, B) << "level=" << fuzz::mutationLevelName(Level)
                      << " seed=" << Seed;
    }
  }
}

TEST(FuzzMutator, SeedsActuallyVaryTheOutput) {
  // Not a strict requirement per seed, but if 50 seeds all collide the
  // mutator is degenerate and the fuzzer explores nothing.
  for (fuzz::MutationLevel Level :
       {fuzz::MutationLevel::Byte, fuzz::MutationLevel::Token,
        fuzz::MutationLevel::Ast}) {
    std::set<std::string> Mutants;
    for (uint32_t Seed = 0; Seed != 50; ++Seed)
      Mutants.insert(fuzz::mutate(SeedProgram, Level, Seed));
    EXPECT_GT(Mutants.size(), 10u)
        << "level=" << fuzz::mutationLevelName(Level);
  }
}

TEST(FuzzMutator, AstMutantsReparse) {
  // The point of the AST level: mutants stay syntactically valid so they
  // reach the stages past the parser.
  for (uint32_t Seed = 0; Seed != 50; ++Seed) {
    std::string Mutant =
        fuzz::mutate(SeedProgram, fuzz::MutationLevel::Ast, Seed);
    DiagnosticEngine Diags;
    Lexer Lex(Mutant, Diags);
    Parser P(Lex.lexAll(), Diags);
    (void)P.parseTranslationUnit();
    EXPECT_FALSE(Diags.hasErrors())
        << "seed " << Seed << " produced unparseable AST mutant:\n"
        << Mutant << "\n"
        << Diags.str();
  }
}

TEST(FuzzMutator, SurvivesHostileInput) {
  // Mutating garbage (including NULs) must not crash and must stay
  // deterministic; Token/Ast levels fall back rather than die.
  std::string Garbage("\x00\xff((((\"unclosed 9999999999999999999999", 38);
  for (fuzz::MutationLevel Level :
       {fuzz::MutationLevel::Byte, fuzz::MutationLevel::Token,
        fuzz::MutationLevel::Ast}) {
    for (uint32_t Seed = 0; Seed != 10; ++Seed) {
      std::string A = fuzz::mutate(Garbage, Level, Seed);
      EXPECT_EQ(A, fuzz::mutate(Garbage, Level, Seed));
    }
  }
  // Empty input too.
  for (uint32_t Seed = 0; Seed != 5; ++Seed)
    (void)fuzz::mutate("", fuzz::MutationLevel::Byte, Seed);
}

//===----------------------------------------------------------------------===//
// AstPrinter round trip
//===----------------------------------------------------------------------===//

TEST(FuzzAstPrinter, RoundTripIsAFixedPoint) {
  // print(parse(print(parse(S)))) == print(parse(S)): printed source must
  // reparse, and printing is canonical (a second round changes nothing).
  for (unsigned Seed = 0; Seed != 25; ++Seed) {
    std::string Source = fuzz::RandomProgramBuilder(Seed).build();

    auto Print = [](const std::string &Src, std::string &Out) {
      DiagnosticEngine Diags;
      Lexer Lex(Src, Diags);
      Parser P(Lex.lexAll(), Diags);
      TranslationUnit TU = P.parseTranslationUnit();
      if (Diags.hasErrors())
        return false;
      Out = fuzz::printMiniC(TU);
      return true;
    };

    std::string Once, Twice;
    ASSERT_TRUE(Print(Source, Once)) << "seed " << Seed;
    ASSERT_TRUE(Print(Once, Twice))
        << "seed " << Seed << ": printed source does not reparse:\n"
        << Once;
    EXPECT_EQ(Once, Twice) << "seed " << Seed;
  }
}

TEST(FuzzAstPrinter, RoundTripPreservesBehaviour) {
  // Full parenthesization must not change evaluation: the printed program
  // returns the same value as the original.
  CompileOptions Opts; // reference pipeline, no allocation
  for (unsigned Seed = 100; Seed != 110; ++Seed) {
    std::string Source = fuzz::RandomProgramBuilder(Seed).build();

    DiagnosticEngine Diags;
    Lexer Lex(Source, Diags);
    Parser P(Lex.lexAll(), Diags);
    TranslationUnit TU = P.parseTranslationUnit();
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
    std::string Printed = fuzz::printMiniC(TU);

    RunResult Orig = compileAndRun(Source, Opts);
    RunResult Round = compileAndRun(Printed, Opts);
    ASSERT_TRUE(Orig.Ok) << Orig.Error;
    ASSERT_TRUE(Round.Ok) << "seed " << Seed << ":\n" << Printed << "\n"
                          << Round.Error;
    EXPECT_EQ(Orig.ReturnValue.asInt(), Round.ReturnValue.asInt())
        << "seed " << Seed;
  }
}

TEST(FuzzAstPrinter, NegativeLiteralsPrintReparseably) {
  // The AST mutator plants negative literals (including INT64_MIN) directly
  // into the tree. "-9223372036854775808" does not lex as a single literal
  // (the positive half overflows), so the printer must render them another
  // way — as (0 - N), which for INT64_MIN means (0 - MAX - 1)-style
  // arithmetic that stays in range.
  for (int64_t V : {int64_t(-1), int64_t(-1000000007), INT64_MIN}) {
    Expr Lit(ExprKind::IntLit, SourceLoc{});
    Lit.IntValue = V;
    std::string Printed = fuzz::printExpr(Lit);

    std::string Src = "int main() { return " + Printed + "; }";
    DiagnosticEngine Diags;
    Lexer Lex(Src, Diags);
    Parser P(Lex.lexAll(), Diags);
    (void)P.parseTranslationUnit();
    EXPECT_FALSE(Diags.hasErrors())
        << "value " << V << " printed as " << Printed << "\n"
        << Diags.str();
  }
}

//===----------------------------------------------------------------------===//
// Runner classification
//===----------------------------------------------------------------------===//

TEST(FuzzRunner, CleanProgramIsCleanRun) {
  fuzz::FuzzLimits Limits;
  fuzz::FuzzReport R =
      runContract("int main() { return 41; }", Limits);
  EXPECT_EQ(R.Outcome, fuzz::FuzzOutcome::CleanRun) << R.Detail;
  EXPECT_FALSE(R.failing());
  EXPECT_TRUE(R.Signature.empty());
}

TEST(FuzzRunner, SyntaxGarbageIsCleanCompileError) {
  fuzz::FuzzLimits Limits;
  fuzz::FuzzReport R = runContract("int main( { return ; @", Limits);
  EXPECT_EQ(R.Outcome, fuzz::FuzzOutcome::CleanCompileError) << R.Detail;
  EXPECT_FALSE(R.failing());
}

TEST(FuzzRunner, UniformTrapIsCleanTrap) {
  // Every configuration divides by zero the same way: the contract holds.
  fuzz::FuzzLimits Limits;
  fuzz::FuzzReport R =
      runContract("int main() { int z = 0; return 3 / z; }", Limits);
  EXPECT_EQ(R.Outcome, fuzz::FuzzOutcome::CleanTrap) << R.Detail;
  EXPECT_FALSE(R.failing());
}

TEST(FuzzRunner, ReferenceFuelExhaustionIsCleanTrap) {
  // A non-terminating input is unobservable, not a failure.
  fuzz::FuzzLimits Limits;
  Limits.Fuel = 20000;
  fuzz::FuzzReport R =
      runContract("int main() { while (1 == 1) { } return 0; }", Limits);
  EXPECT_EQ(R.Outcome, fuzz::FuzzOutcome::CleanTrap) << R.Detail;
}

TEST(FuzzRunner, OversizedInputIsCleanlyRejected) {
  fuzz::FuzzLimits Limits;
  Limits.MaxSourceBytes = 64;
  std::string Big(1000, 'x');
  fuzz::FuzzReport R = runContract(Big, Limits);
  EXPECT_FALSE(R.failing());
}

TEST(FuzzRunner, InjectedFaultIsAFailingAllocFailure) {
  // The fault drill: with injection on and fallback off, the contract run
  // must produce a failing, reducible report — this is how we prove the
  // failure path works end to end.
  fuzz::FuzzLimits Limits;
  Limits.Faults = FaultPlan::fromString("color:1");
  fuzz::FuzzReport R =
      runContract("int main() { return 41; }", Limits);
  EXPECT_EQ(R.Outcome, fuzz::FuzzOutcome::AllocFailure) << R.Detail;
  EXPECT_TRUE(R.failing());
  EXPECT_FALSE(R.Signature.empty());
  EXPECT_NE(R.Signature.find("alloc-error:"), std::string::npos)
      << R.Signature;
}

//===----------------------------------------------------------------------===//
// Reducer
//===----------------------------------------------------------------------===//

TEST(FuzzReducer, ShrinksWhilePreservingSignature) {
  // End-to-end drill on a generator program ~1KB: inject a coloring fault,
  // reduce under signature equality, and require the acceptance bound —
  // minimized repro at most 25% of the original and still failing the same
  // way.
  std::string Source = fuzz::RandomProgramBuilder(3).build();
  ASSERT_GT(Source.size(), 400u) << "generator program suspiciously small";

  fuzz::FuzzLimits Limits;
  Limits.Faults = FaultPlan::fromString("color:1");
  fuzz::FuzzReport Original = runContract(Source, Limits);
  ASSERT_TRUE(Original.failing()) << Original.Detail;

  auto StillFails = [&](const std::string &Candidate) {
    fuzz::FuzzReport R = runContract(Candidate, Limits);
    return R.failing() && R.Signature == Original.Signature;
  };
  fuzz::ReduceResult Red = fuzz::reduceSource(Source, StillFails);

  EXPECT_TRUE(StillFails(Red.Reduced)) << Red.Reduced;
  EXPECT_LE(Red.Reduced.size() * 4, Source.size())
      << "reduced " << Source.size() << " -> " << Red.Reduced.size()
      << " bytes; acceptance requires <= 25%:\n"
      << Red.Reduced;
  EXPECT_GT(Red.PredicateCalls, 0u);
}

TEST(FuzzReducer, ResultAlwaysSatisfiesPredicateEvenOnTinyBudget) {
  std::string Source = fuzz::RandomProgramBuilder(4).build();
  fuzz::FuzzLimits Limits;
  Limits.Faults = FaultPlan::fromString("spill:1");
  fuzz::FuzzReport Original = runContract(Source, Limits);
  ASSERT_TRUE(Original.failing()) << Original.Detail;

  auto StillFails = [&](const std::string &Candidate) {
    fuzz::FuzzReport R = runContract(Candidate, Limits);
    return R.failing() && R.Signature == Original.Signature;
  };
  fuzz::ReduceResult Red =
      fuzz::reduceSource(Source, StillFails, /*MaxCalls=*/20);
  EXPECT_TRUE(StillFails(Red.Reduced));
  EXPECT_LE(Red.Reduced.size(), Source.size());
}

//===----------------------------------------------------------------------===//
// Repro artifacts
//===----------------------------------------------------------------------===//

TEST(FuzzRepro, ArtifactIsWrittenAndReplayable) {
  fuzz::FuzzLimits Limits;
  Limits.Faults = FaultPlan::fromString("color:1");
  const std::string Source = "int main() { return 41; }";
  fuzz::FuzzReport R = runContract(Source, Limits);
  ASSERT_TRUE(R.failing());

  std::string Dir = ::testing::TempDir() + "rap_fuzz_repro_test";
  std::string Path = fuzz::writeRepro(Dir, "repro-unit-1.mc", Source, R, Limits);
  ASSERT_FALSE(Path.empty());

  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << Path;
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Contents = SS.str();

  // Header records the signature; body is the source itself. Because the
  // header is // comments, the artifact replays by feeding the whole file
  // back through the contract.
  EXPECT_NE(Contents.find(R.Signature), std::string::npos) << Contents;
  EXPECT_NE(Contents.find(Source), std::string::npos) << Contents;
  fuzz::FuzzReport Replayed = runContract(Contents, Limits);
  EXPECT_EQ(Replayed.Signature, R.Signature) << Replayed.Detail;

  std::remove(Path.c_str());
}

} // namespace
