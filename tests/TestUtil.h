//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#ifndef RAP_TESTS_TESTUTIL_H
#define RAP_TESTS_TESTUTIL_H

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "lower/AstLowering.h"

#include "gtest/gtest.h"

#include <memory>
#include <string>

namespace rap::test {

/// Compiles MiniC source to an unallocated IlocProgram, failing the current
/// test on any diagnostic.
inline std::unique_ptr<IlocProgram>
compile(const std::string &Source,
        RegionGranularity G = RegionGranularity::PerStatement) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  TranslationUnit TU = P.parseTranslationUnit();
  if (Diags.hasErrors()) {
    ADD_FAILURE() << "compile errors:\n" << Diags.str();
    return nullptr;
  }
  if (!analyze(TU, Diags)) {
    ADD_FAILURE() << "sema errors:\n" << Diags.str();
    return nullptr;
  }
  return lowerToIloc(TU, G);
}

/// Parses and type-checks, returning the diagnostics text ("" on success).
inline std::string diagnose(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  TranslationUnit TU = P.parseTranslationUnit();
  if (!Diags.hasErrors())
    analyze(TU, Diags);
  return Diags.str();
}

} // namespace rap::test

#endif // RAP_TESTS_TESTUTIL_H
