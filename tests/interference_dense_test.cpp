//===- tests/interference_dense_test.cpp - Dense graph cross-check ----------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests for the bit-matrix InterferenceGraph: a naive
/// map/set-based reference model replays the same operation sequence, and
/// every query (node membership, interfere, adjacency-as-set, alive counts,
/// effective degree) must agree after each mutation. Sequences come from a
/// seeded random op generator and from real liveness-derived interference
/// over generated MiniC programs.
///
//===----------------------------------------------------------------------===//

#include "regalloc/InterferenceGraph.h"

#include "cfg/Cfg.h"
#include "cfg/Liveness.h"
#include "driver/Pipeline.h"
#include "ir/Linearize.h"

#include "fuzz/RandomProgram.h"

#include "gtest/gtest.h"

#include <map>
#include <random>
#include <set>
#include <utility>
#include <vector>

using namespace rap;

namespace {

/// Naive reference model mirroring InterferenceGraph's contract with
/// ordinary containers: O(n) everywhere, trivially auditable.
class RefGraph {
public:
  struct Node {
    std::set<Reg> VRegs;
    bool Global = false;
    bool Alive = true;
  };

  unsigned getOrCreateNode(Reg R) {
    auto It = NodeOf.find(R);
    if (It != NodeOf.end())
      return It->second;
    Nodes.push_back(Node{{R}, false, true});
    unsigned Id = static_cast<unsigned>(Nodes.size() - 1);
    NodeOf[R] = Id;
    return Id;
  }

  int nodeOf(Reg R) const {
    auto It = NodeOf.find(R);
    return It == NodeOf.end() ? -1 : static_cast<int>(It->second);
  }

  void addEdgeNodes(unsigned N1, unsigned N2) {
    if (N1 != N2)
      Edges.insert(key(N1, N2));
  }

  void addEdge(Reg A, Reg B) {
    addEdgeNodes(NodeOf.at(A), NodeOf.at(B));
  }

  unsigned mergeNodes(unsigned N1, unsigned N2) {
    for (Reg R : Nodes[N2].VRegs) {
      Nodes[N1].VRegs.insert(R);
      NodeOf[R] = N1;
    }
    Nodes[N1].Global = Nodes[N1].Global || Nodes[N2].Global;
    // Move N2's edges to N1, then kill N2.
    std::vector<unsigned> Neighbors;
    for (unsigned X = 0; X != Nodes.size(); ++X)
      if (X != N2 && Edges.count(key(X, N2)))
        Neighbors.push_back(X);
    for (unsigned X : Neighbors) {
      Edges.erase(key(X, N2));
      if (X != N1)
        Edges.insert(key(X, N1));
    }
    Nodes[N2].Alive = false;
    Nodes[N2].VRegs.clear();
    return N1;
  }

  void renameReg(Reg OldReg, Reg NewReg) {
    auto It = NodeOf.find(OldReg);
    if (It == NodeOf.end())
      return;
    unsigned Id = It->second;
    NodeOf.erase(It);
    Nodes[Id].VRegs.erase(OldReg);
    Nodes[Id].VRegs.insert(NewReg);
    NodeOf[NewReg] = Id;
  }

  void addRegToNode(unsigned Id, Reg R) {
    Nodes[Id].VRegs.insert(R);
    NodeOf[R] = Id;
  }

  bool interfere(unsigned N1, unsigned N2) const {
    return N1 != N2 && Edges.count(key(N1, N2)) != 0;
  }

  std::set<unsigned> aliveNeighbors(unsigned Id) const {
    std::set<unsigned> Out;
    for (unsigned X = 0; X != Nodes.size(); ++X)
      if (X != Id && Nodes[X].Alive && Edges.count(key(X, Id)))
        Out.insert(X);
    return Out;
  }

  unsigned effectiveDegree(unsigned Id) const {
    std::set<unsigned> Neighbors = aliveNeighbors(Id);
    unsigned Degree = static_cast<unsigned>(Neighbors.size());
    if (Nodes[Id].Global)
      for (unsigned X = 0; X != Nodes.size(); ++X)
        if (X != Id && Nodes[X].Alive && Nodes[X].Global &&
            !Neighbors.count(X))
          ++Degree;
    return Degree;
  }

  unsigned numAliveNodes() const {
    unsigned N = 0;
    for (const Node &Nd : Nodes)
      N += Nd.Alive;
    return N;
  }

  std::vector<Node> Nodes;

private:
  static std::pair<unsigned, unsigned> key(unsigned A, unsigned B) {
    return A < B ? std::make_pair(A, B) : std::make_pair(B, A);
  }

  std::set<std::pair<unsigned, unsigned>> Edges;
  std::map<Reg, unsigned> NodeOf;
};

/// Full-state comparison after a mutation. Plain comparisons with a single
/// EXPECT on mismatch: the pairwise sweep runs millions of times across the
/// random sequences and per-comparison gtest bookkeeping dominates
/// otherwise.
void expectEqual(const InterferenceGraph &G, const RefGraph &R,
                 unsigned MaxReg) {
  ASSERT_EQ(G.numNodesTotal(), R.Nodes.size());
  EXPECT_EQ(G.numAliveNodes(), R.numAliveNodes());

  for (Reg V = 0; V <= MaxReg; ++V)
    if (G.nodeOf(V) != R.nodeOf(V))
      FAIL() << "nodeOf(%" << V << "): " << G.nodeOf(V) << " vs "
             << R.nodeOf(V);

  std::vector<unsigned> AliveVec = G.aliveNodes();
  std::set<unsigned> Alive(AliveVec.begin(), AliveVec.end());
  for (unsigned Id = 0; Id != G.numNodesTotal(); ++Id) {
    EXPECT_EQ(G.node(Id).Alive, R.Nodes[Id].Alive) << "node " << Id;
    EXPECT_EQ(Alive.count(Id) != 0, R.Nodes[Id].Alive) << "node " << Id;
    if (!R.Nodes[Id].Alive)
      continue;
    std::set<Reg> Members(G.node(Id).VRegs.begin(), G.node(Id).VRegs.end());
    EXPECT_EQ(Members, R.Nodes[Id].VRegs) << "node " << Id;
    std::set<unsigned> AdjSet(G.adjacency(Id).begin(),
                              G.adjacency(Id).end());
    EXPECT_EQ(AdjSet.size(), G.adjacency(Id).size())
        << "duplicate neighbor in node " << Id;
    EXPECT_EQ(AdjSet, R.aliveNeighbors(Id)) << "node " << Id;
    EXPECT_EQ(G.effectiveDegree(Id), R.effectiveDegree(Id))
        << "node " << Id;
    for (unsigned Other = 0; Other != G.numNodesTotal(); ++Other)
      if (R.Nodes[Other].Alive &&
          G.interfere(Id, Other) != R.interfere(Id, Other))
        FAIL() << "interfere(" << Id << "," << Other << ") disagrees";
  }
}

TEST(InterferenceDense, RandomOpSequences) {
  for (unsigned Seed = 0; Seed != 20; ++Seed) {
    std::mt19937 Rng(Seed);
    InterferenceGraph G;
    RefGraph R;
    const unsigned MaxReg = 40;
    Reg NextFresh = MaxReg + 1; // renameReg targets, outside the pool
    unsigned MaxSeen = MaxReg;

    for (unsigned Step = 0; Step != 120; ++Step) {
      unsigned Op = Rng() % 10;
      if (Op < 3 || G.numNodesTotal() == 0) {
        Reg V = Rng() % (MaxReg + 1);
        ASSERT_EQ(G.getOrCreateNode(V), R.getOrCreateNode(V));
      } else if (Op < 6) {
        // Edge between two random alive nodes.
        std::vector<unsigned> Alive = G.aliveNodes();
        unsigned N1 = Alive[Rng() % Alive.size()];
        unsigned N2 = Alive[Rng() % Alive.size()];
        if (Rng() % 2) {
          G.addEdgeNodes(N1, N2);
          R.addEdgeNodes(N1, N2);
        } else {
          Reg A = *R.Nodes[N1].VRegs.begin();
          Reg B = *R.Nodes[N2].VRegs.begin();
          G.addEdge(A, B);
          R.addEdge(A, B);
        }
      } else if (Op == 6) {
        // Merge two distinct, non-interfering alive nodes.
        std::vector<unsigned> Alive = G.aliveNodes();
        if (Alive.size() >= 2) {
          unsigned N1 = Alive[Rng() % Alive.size()];
          unsigned N2 = Alive[Rng() % Alive.size()];
          if (N1 != N2 && !R.interfere(N1, N2)) {
            ASSERT_EQ(G.mergeNodes(N1, N2), R.mergeNodes(N1, N2));
          }
        }
      } else if (Op == 7) {
        // Rename a random in-graph register to a fresh one.
        std::vector<unsigned> Alive = G.aliveNodes();
        unsigned N = Alive[Rng() % Alive.size()];
        Reg Old = *R.Nodes[N].VRegs.begin();
        Reg Fresh = NextFresh++;
        MaxSeen = Fresh;
        G.renameReg(Old, Fresh);
        R.renameReg(Old, Fresh);
      } else if (Op == 8) {
        // Import a fresh register into an existing node.
        std::vector<unsigned> Alive = G.aliveNodes();
        unsigned N = Alive[Rng() % Alive.size()];
        Reg Fresh = NextFresh++;
        MaxSeen = Fresh;
        G.addRegToNode(N, Fresh);
        R.addRegToNode(N, Fresh);
      } else {
        // Toggle a Global flag (kept mirrored by hand).
        std::vector<unsigned> Alive = G.aliveNodes();
        unsigned N = Alive[Rng() % Alive.size()];
        bool Flag = Rng() % 2;
        G.node(N).Global = Flag;
        R.Nodes[N].Global = Flag;
      }
      expectEqual(G, R, MaxSeen);
      EXPECT_GT(G.memoryBytes(), 0u);
    }
  }
}

/// Builds interference the standard way — each definition interferes with
/// everything live after it — over real (generated) programs, in both the
/// dense graph and the reference, then compares all queries. Exercises the
/// dense layout on realistic degree distributions rather than uniform
/// random edges.
TEST(InterferenceDense, LivenessDerivedGraphs) {
  for (unsigned Seed = 100; Seed != 108; ++Seed) {
    std::string Source = rap::fuzz::RandomProgramBuilder(Seed).build();
    CompileOptions Options; // Allocator = None
    CompileResult CR = compileMiniC(Source, Options);
    ASSERT_TRUE(CR.ok()) << CR.Errors;
    for (const auto &F : CR.Prog->functions()) {
      LinearCode Code = linearize(*F);
      Cfg Graph(Code);
      Liveness Live(Code, Graph, F->numVRegs());

      InterferenceGraph G;
      RefGraph R;
      unsigned MaxSeen = 0;
      for (unsigned P = 0; P != Code.Instrs.size(); ++P) {
        const Instr *I = Code.Instrs[P];
        if (!I->hasDef())
          continue;
        G.getOrCreateNode(I->Dst);
        R.getOrCreateNode(I->Dst);
        MaxSeen = std::max(MaxSeen, I->Dst);
        Live.liveAfter(P).forEach([&](unsigned L) {
          G.getOrCreateNode(L);
          R.getOrCreateNode(L);
          G.addEdge(I->Dst, L);
          R.addEdge(I->Dst, L);
          MaxSeen = std::max(MaxSeen, L);
        });
      }
      expectEqual(G, R, MaxSeen);
    }
  }
}

} // namespace
