//===- tests/parser_sema_test.cpp - Parser and Sema unit tests ---------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

#include "gtest/gtest.h"

using namespace rap;
using rap::test::diagnose;

namespace {

TranslationUnit parseOk(const std::string &Src) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  Parser P(L.lexAll(), Diags);
  TranslationUnit TU = P.parseTranslationUnit();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return TU;
}

//===----------------------------------------------------------------------===//
// Parser structure
//===----------------------------------------------------------------------===//

TEST(Parser, GlobalsAndFunctions) {
  TranslationUnit TU = parseOk(R"(
    int g;
    float arr[10];
    int f(int a, float b) { return a; }
    void main() { }
  )");
  ASSERT_EQ(TU.Globals.size(), 2u);
  EXPECT_EQ(TU.Globals[0].Name, "g");
  EXPECT_EQ(TU.Globals[0].ArraySize, -1);
  EXPECT_EQ(TU.Globals[1].Name, "arr");
  EXPECT_EQ(TU.Globals[1].ArraySize, 10);
  EXPECT_EQ(TU.Globals[1].Type, TypeKind::Float);
  ASSERT_EQ(TU.Functions.size(), 2u);
  EXPECT_EQ(TU.Functions[0]->Name, "f");
  ASSERT_EQ(TU.Functions[0]->Params.size(), 2u);
  EXPECT_EQ(TU.Functions[0]->Params[1].Type, TypeKind::Float);
  EXPECT_EQ(TU.Functions[1]->ReturnType, TypeKind::Void);
}

TEST(Parser, PrecedenceMultiplicationBindsTighter) {
  TranslationUnit TU = parseOk("int f() { return 1 + 2 * 3; }");
  const Stmt &Ret = *TU.Functions[0]->Body->Body[0];
  ASSERT_EQ(Ret.Kind, StmtKind::Return);
  const Expr &E = *Ret.Value;
  ASSERT_EQ(E.Kind, ExprKind::Binary);
  EXPECT_EQ(E.BinOp, BinaryOp::Add);
  EXPECT_EQ(E.Rhs->BinOp, BinaryOp::Mul);
}

TEST(Parser, PrecedenceComparisonsAboveLogical) {
  TranslationUnit TU = parseOk("int f() { return 1 < 2 && 3 > 4; }");
  const Expr &E = *TU.Functions[0]->Body->Body[0]->Value;
  EXPECT_EQ(E.BinOp, BinaryOp::LogicalAnd);
  EXPECT_EQ(E.Lhs->BinOp, BinaryOp::Lt);
  EXPECT_EQ(E.Rhs->BinOp, BinaryOp::Gt);
}

TEST(Parser, LeftAssociativeSubtraction) {
  TranslationUnit TU = parseOk("int f() { return 10 - 4 - 3; }");
  const Expr &E = *TU.Functions[0]->Body->Body[0]->Value;
  EXPECT_EQ(E.BinOp, BinaryOp::Sub);
  EXPECT_EQ(E.Lhs->BinOp, BinaryOp::Sub) << "(10-4)-3, not 10-(4-3)";
}

TEST(Parser, IfElseBindsToNearestIf) {
  TranslationUnit TU = parseOk(R"(
    int f(int x) {
      if (x > 0)
        if (x > 10) { return 2; }
        else { return 1; }
      return 0;
    }
  )");
  const Stmt &Outer = *TU.Functions[0]->Body->Body[0];
  ASSERT_EQ(Outer.Kind, StmtKind::If);
  EXPECT_EQ(Outer.Else, nullptr) << "else belongs to the inner if";
  ASSERT_EQ(Outer.Then->Kind, StmtKind::If);
  EXPECT_NE(Outer.Then->Else, nullptr);
}

TEST(Parser, ForLoopPieces) {
  TranslationUnit TU = parseOk(
      "int f() { for (int i = 0; i < 3; i = i + 1) { } return 0; }");
  const Stmt &For = *TU.Functions[0]->Body->Body[0];
  ASSERT_EQ(For.Kind, StmtKind::For);
  EXPECT_EQ(For.ForInit->Kind, StmtKind::VarDecl);
  EXPECT_NE(For.Cond, nullptr);
  EXPECT_EQ(For.ForStep->Kind, StmtKind::Assign);
}

TEST(Parser, ArrayAssignVersusArrayRead) {
  TranslationUnit TU = parseOk(R"(
    int a[4];
    int f(int i) {
      a[i] = a[i + 1] + 2;
      return a[0];
    }
  )");
  const Stmt &S = *TU.Functions[0]->Body->Body[0];
  ASSERT_EQ(S.Kind, StmtKind::Assign);
  EXPECT_NE(S.Index, nullptr);
  EXPECT_EQ(S.Value->Kind, ExprKind::Binary);
}

TEST(Parser, CallsWithArguments) {
  TranslationUnit TU = parseOk(R"(
    int g(int a, int b) { return a + b; }
    int f() { return g(1, g(2, 3)); }
  )");
  const Expr &E = *TU.Functions[1]->Body->Body[0]->Value;
  ASSERT_EQ(E.Kind, ExprKind::Call);
  ASSERT_EQ(E.Args.size(), 2u);
  EXPECT_EQ(E.Args[1]->Kind, ExprKind::Call);
}

TEST(Parser, ReportsMissingSemicolonAndRecovers) {
  std::string D = diagnose("int f() { int x = 1 int y = 2; return x; }");
  EXPECT_NE(D.find("expected ';'"), std::string::npos);
}

TEST(Parser, ReportsUnbalancedParens) {
  std::string D = diagnose("int f() { return (1 + 2; }");
  EXPECT_NE(D.find("expected ')'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

TEST(Sema, UndeclaredVariable) {
  EXPECT_NE(diagnose("int f() { return zzz; }").find("undeclared"),
            std::string::npos);
}

TEST(Sema, UndeclaredFunction) {
  EXPECT_NE(diagnose("int f() { return nope(1); }").find("undeclared"),
            std::string::npos);
}

TEST(Sema, ArityMismatch) {
  std::string D = diagnose(R"(
    int g(int a) { return a; }
    int f() { return g(1, 2); }
  )");
  EXPECT_NE(D.find("2 arguments; expected 1"), std::string::npos);
}

TEST(Sema, RedefinitionInSameScope) {
  EXPECT_NE(diagnose("int f() { int x = 1; int x = 2; return x; }")
                .find("redefinition"),
            std::string::npos);
}

TEST(Sema, ShadowingInNestedScopeIsFine) {
  EXPECT_EQ(diagnose("int f() { int x = 1; { int x = 2; x = 3; } return x; }"),
            "");
}

TEST(Sema, FloatConditionRejected) {
  EXPECT_NE(diagnose("int f(float x) { if (x) { return 1; } return 0; }")
                .find("condition must have int type"),
            std::string::npos);
}

TEST(Sema, ModuloRequiresInts) {
  EXPECT_NE(diagnose("int f(float x) { return x % 2; }")
                .find("'%' requires int operands"),
            std::string::npos);
}

TEST(Sema, VoidValueUseRejected) {
  std::string D = diagnose(R"(
    void g() { return; }
    int f() { return g() + 1; }
  )");
  EXPECT_NE(D.find("void"), std::string::npos);
}

TEST(Sema, VoidCallStatementAllowed) {
  EXPECT_EQ(diagnose(R"(
    int c;
    void g() { c = c + 1; }
    int f() { g(); return c; }
  )"),
            "");
}

TEST(Sema, ReturnValueFromVoidRejected) {
  EXPECT_NE(diagnose("void f() { return 1; }").find("void function"),
            std::string::npos);
}

TEST(Sema, MissingReturnValueRejected) {
  EXPECT_NE(diagnose("int f() { return; }").find("returns no value"),
            std::string::npos);
}

TEST(Sema, ImplicitIntToFloatCastInserted) {
  DiagnosticEngine Diags;
  Lexer L("float f(int x) { return x + 1.5; }", Diags);
  Parser P(L.lexAll(), Diags);
  TranslationUnit TU = P.parseTranslationUnit();
  ASSERT_TRUE(analyze(TU, Diags)) << Diags.str();
  const Expr &E = *TU.Functions[0]->Body->Body[0]->Value;
  ASSERT_EQ(E.Kind, ExprKind::Binary);
  EXPECT_EQ(E.Type, TypeKind::Float);
  EXPECT_EQ(E.Lhs->Kind, ExprKind::Cast) << "int side coerced to float";
}

TEST(Sema, ArrayUsedWithoutIndexRejected) {
  std::string D = diagnose(R"(
    int a[3];
    int f() { return a; }
  )");
  EXPECT_NE(D.find("without an index"), std::string::npos);
}

TEST(Sema, IndexingScalarRejected) {
  std::string D = diagnose(R"(
    int g;
    int f() { return g[0]; }
  )");
  EXPECT_NE(D.find("not a global array"), std::string::npos);
}

TEST(Sema, AssigningToArrayNameRejected) {
  std::string D = diagnose(R"(
    int a[3];
    int f() { a = 1; return 0; }
  )");
  EXPECT_NE(D.find("cannot assign to array"), std::string::npos);
}

TEST(Sema, GlobalScalarResolved) {
  DiagnosticEngine Diags;
  Lexer L("int g; int f() { g = 2; return g; }", Diags);
  Parser P(L.lexAll(), Diags);
  TranslationUnit TU = P.parseTranslationUnit();
  ASSERT_TRUE(analyze(TU, Diags));
  const Stmt &Assign = *TU.Functions[0]->Body->Body[0];
  EXPECT_TRUE(Assign.TargetIsGlobal);
  const Expr &Ret = *TU.Functions[0]->Body->Body[1]->Value;
  EXPECT_TRUE(Ret.ResolvedGlobal);
}

TEST(Sema, LocalShadowsGlobalScalar) {
  DiagnosticEngine Diags;
  Lexer L("int g; int f() { int g = 1; return g; }", Diags);
  Parser P(L.lexAll(), Diags);
  TranslationUnit TU = P.parseTranslationUnit();
  ASSERT_TRUE(analyze(TU, Diags));
  const Expr &Ret = *TU.Functions[0]->Body->Body[1]->Value;
  EXPECT_FALSE(Ret.ResolvedGlobal);
}

TEST(Sema, DuplicateGlobalRejected) {
  EXPECT_NE(diagnose("int g; int g;").find("redefinition"),
            std::string::npos);
}

TEST(Sema, DuplicateFunctionRejected) {
  EXPECT_NE(diagnose("int f() { return 1; } int f() { return 2; }")
                .find("redefinition"),
            std::string::npos);
}

} // namespace
